(* Command-line interface to the widening-resources study.

   widening-cli experiment fig2          reproduce a figure/table
   widening-cli schedule daxpy -c 4w2(128:2)
   widening-cli configs -g 0.18          implementable configurations
   widening-cli workload                 suite statistics
   widening-cli dot dot_product          DOT dump of a kernel *)

open Cmdliner

module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Resource = Wr_machine.Resource
module Loop = Wr_ir.Loop

(* --store falls back to WR_STORE so a warm cache can follow a user
   across invocations without repeating the flag. *)
let store_or_env store =
  match store with
  | Some _ as s -> s
  | None -> ( match Sys.getenv_opt "WR_STORE" with Some "" | None -> None | s -> s)

let suite_of_sample sample =
  match sample with
  | None -> (Wr_workload.Suite.perfect_club_like (), "full")
  | Some n -> (Wr_workload.Suite.sample n, Printf.sprintf "sample%d" n)

(* --- experiment ------------------------------------------------------- *)

let experiment_ids =
  [
    "table1"; "table2"; "table3"; "table4"; "table5"; "table6"; "fig2"; "fig3"; "fig4";
    "fig6"; "fig7"; "fig8"; "fig9"; "conclusion"; "ablation-compact"; "ablation-levers";
    "ablation-rotating"; "ablation-ordering"; "icache"; "traffic"; "dcache"; "balance"; "all";
  ]

let run_experiment id sample jobs trace metrics strict journal store budget backend ledger =
  let store = store_or_env store in
  Option.iter Wr_sched.Backend.set backend;
  Option.iter Wr_util.Pool.set_default_jobs jobs;
  if trace <> None || metrics <> None then Wr_obs.Obs.set_enabled true;
  if ledger <> None then Core.Provenance.set_capture true;
  if strict then Core.Evaluate.set_strict true;
  Core.Evaluate.set_loop_budget_ms budget;
  Option.iter
    (fun path ->
      let replayed = Core.Evaluate.attach_journal path in
      if replayed > 0 then
        Printf.eprintf "[journal] resumed %d completed points from %s\n%!" replayed path)
    journal;
  Option.iter
    (fun dir ->
      match Core.Evaluate.attach_store dir with
      | r ->
          Printf.eprintf "[store] %s: %d entries in %d segment(s)%s%s\n%!" dir
            r.Core.Store.entries r.Core.Store.segments
            (if r.Core.Store.quarantined_segments > 0 then
               Printf.sprintf ", %d quarantined" r.Core.Store.quarantined_segments
             else "")
            (if r.Core.Store.truncated_bytes > 0 then
               Printf.sprintf ", %d torn byte(s) truncated" r.Core.Store.truncated_bytes
             else "")
      | exception Core.Store.Locked msg ->
          prerr_endline msg;
          exit 2)
    store;
  let loops, suite_id = suite_of_sample sample in
  let print = print_string in
  let dispatch = function
    | "table1" -> print (Core.Cost_tables.table1 ())
    | "table2" -> print (Core.Cost_tables.table2 ())
    | "table3" -> print (Core.Cost_tables.table3 ())
    | "table4" -> print (Core.Cost_tables.table4 ())
    | "table5" -> print (Core.Implementability.to_text (Core.Implementability.run ()))
    | "table6" -> print (Core.Cost_tables.table6 ())
    | "fig2" -> print (Core.Peak_study.to_text (Core.Peak_study.run loops))
    | "fig3" -> print (Core.Spill_study.to_text (Core.Spill_study.run ~suite_id loops))
    | "fig4" -> print (Core.Cost_tables.figure4 ())
    | "fig6" -> print (Core.Cost_tables.figure6 ())
    | "fig7" -> print (Core.Code_size_study.to_text (Core.Code_size_study.run ~suite_id loops))
    | "fig8" -> print (Core.Tradeoff.figure8 ~suite_id loops)
    | "fig9" -> print (Core.Tradeoff.figure9_text (Core.Tradeoff.figure9 ~suite_id loops))
    | "conclusion" -> print (Core.Tradeoff.conclusion ~suite_id loops)
    | "ablation-compact" -> print (Core.Ablation.compactability ())
    | "ablation-levers" -> print (Core.Ablation.pressure_levers (Wr_workload.Suite.sample 150))
    | "ablation-rotating" -> print (Core.Ablation.rotating_file (Wr_workload.Suite.sample 80))
    | "ablation-ordering" ->
        print (Core.Ablation.scheduler_orderings (Wr_workload.Suite.sample 150))
    | "icache" -> print (Core.Icache_study.to_text (Core.Icache_study.run loops))
    | "traffic" -> print (Core.Traffic_study.to_text (Core.Traffic_study.run loops))
    | "balance" -> print (Core.Balance_study.to_text (Core.Balance_study.run loops))
    | "dcache" ->
        print (Core.Dcache_study.to_text (Core.Dcache_study.run (Wr_workload.Suite.sample 120)))
    | id -> Printf.eprintf "unknown experiment %s\n" id
  in
  if id = "all" then
    List.iter
      (fun e ->
        if e <> "all" then begin
          dispatch e;
          print_newline ()
        end)
      experiment_ids
  else dispatch id;
  Option.iter
    (fun path ->
      Wr_obs.Obs.write_trace path;
      Printf.eprintf "[trace] wrote %s\n" path)
    trace;
  Option.iter
    (fun path ->
      Wr_obs.Obs.write_metrics path;
      Printf.eprintf "[metrics] wrote %s\n" path)
    metrics;
  Option.iter
    (fun path ->
      Core.Provenance.write path;
      Printf.eprintf "[ledger] wrote %s (%d points)\n" path
        (List.length (Core.Provenance.records ())))
    ledger;
  Option.iter
    (fun dir ->
      let s = Core.Evaluate.cache_stats `Store in
      Printf.eprintf "[store] %s: %d entries, %d hits, %d misses, %d appended\n%!" dir
        (Core.Evaluate.store_entries ()) s.Core.Evaluate.hits s.Core.Evaluate.misses
        (Core.Evaluate.store_appended ());
      Core.Evaluate.detach_store ())
    store;
  Core.Evaluate.detach_journal ();
  (* Completed-with-quarantine is exit 3 (see README "Exit codes"):
     distinct from success and from hard failure, so CI can tell a
     degraded sweep from a crashed one. *)
  match Core.Evaluate.quarantined () with
  | [] -> ()
  | qs ->
      Printf.eprintf "\nQuarantined points (%d): degraded to the unpipelined fallback\n"
        (List.length qs);
      List.iter
        (fun (q : Core.Evaluate.quarantine_record) ->
          Printf.eprintf "  %s loop %d (%s) on %s regs=%d model=%d: %s\n"
            q.Core.Evaluate.q_suite q.Core.Evaluate.q_index q.Core.Evaluate.q_loop
            q.Core.Evaluate.q_config q.Core.Evaluate.q_registers
            q.Core.Evaluate.q_cycle_model q.Core.Evaluate.q_reason)
        qs;
      exit 3

let sample_arg =
  let doc = "Evaluate on a deterministic N-loop subsample of the 1180-loop suite." in
  Arg.(value & opt (some int) None & info [ "s"; "sample" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Size of the domain pool used for parallel evaluation (also the WR_JOBS environment \
     variable; defaults to the number of cores).  The results are bit-identical for any \
     value; 1 forces fully sequential evaluation."
  in
  let positive =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | _ -> Error (`Msg "JOBS must be a positive integer")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt (some positive) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let trace_arg =
  let doc =
    "Enable pipeline telemetry and write a Chrome trace-event JSON file (load it in \
     chrome://tracing or https://ui.perfetto.dev): one lane per domain, spans for every \
     pipeline stage (widen, schedule, allocate, spill, verify, pool tasks)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Enable pipeline telemetry and write a flat JSON snapshot of every counter, histogram \
     and span aggregate (scheduler attempts/evictions, spill rounds, cache hit rates, pool \
     utilization)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let strict_arg =
  let doc =
    "Fail fast: a loop evaluation that raises aborts the run instead of degrading the point \
     to the unpipelined fallback (also the WR_STRICT environment variable)."
  in
  Arg.(value & flag & info [ "strict" ] ~doc)

let journal_arg =
  let doc =
    "Journal each completed evaluation point to FILE and, if FILE already holds a previous \
     (possibly interrupted) run, resume from it: completed points are replayed instead of \
     recomputed, and the final output is byte-identical to an uninterrupted run."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)

let budget_arg =
  let doc =
    "Wall-clock budget per loop evaluation in milliseconds, enforced cooperatively at \
     scheduler and spill boundaries; an overrun degrades the point to the unpipelined \
     fallback and quarantines it."
  in
  let positive =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | _ -> Error (`Msg "budget must be a positive integer (milliseconds)")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt (some positive) None & info [ "loop-budget-ms" ] ~docv:"MS" ~doc)

let backend_arg =
  let doc =
    "Modulo-scheduler backend: $(b,heuristic) (the HRMS-style default), $(b,exact) \
     (branch-and-bound refinement of the heuristic schedule), or $(b,portfolio) (race \
     both and keep the better result).  Also the WR_SCHED_BACKEND environment variable."
  in
  let backend_conv =
    let parse s =
      match Wr_sched.Backend.of_string s with
      | Some k -> Ok k
      | None -> Error (`Msg "BACKEND must be heuristic, exact or portfolio")
    in
    Arg.conv
      (parse, fun fmt k -> Format.pp_print_string fmt (Wr_sched.Backend.to_string k))
  in
  Arg.(value & opt (some backend_conv) None & info [ "backend" ] ~docv:"BACKEND" ~doc)

let ledger_arg =
  let doc =
    "Record one provenance record per evaluated point (content hash, II vs MII, backend, \
     spill traffic, oracle verdict, quarantine tag) and write them as a checksummed run \
     ledger at FILE — the input of $(b,bench) $(b,report)/$(b,diff).  Byte-identical for \
     any --jobs; per-point wall times are opt-in via WR_LEDGER_WALL=1."
  in
  Arg.(value & opt (some string) None & info [ "ledger" ] ~docv:"FILE" ~doc)

let store_arg =
  let doc =
    "Consult and append to a persistent content-addressed result store at DIR: evaluation \
     points already present (keyed by provenance hash) are answered from the store without \
     re-evaluation, and every fresh clean evaluation is appended.  The store is crash-safe \
     (checksummed append-only segments; torn tails and corrupt segments are recovered on \
     open) and single-writer (a stale lock from a killed process is broken automatically)."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let experiment_cmd =
  let id =
    let doc = "Experiment id: " ^ String.concat ", " experiment_ids ^ "." in
    Arg.(required & pos 0 (some (enum (List.map (fun x -> (x, x)) experiment_ids))) None
         & info [] ~docv:"EXPERIMENT" ~doc)
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Reproduce one of the paper's tables or figures")
    Term.(const run_experiment $ id $ sample_arg $ jobs_arg $ trace_arg $ metrics_arg
          $ strict_arg $ journal_arg $ store_arg $ budget_arg $ backend_arg $ ledger_arg)

(* --- schedule --------------------------------------------------------- *)

let find_kernel name =
  match List.assoc_opt name (Wr_workload.Kernels.all ()) with
  | Some k -> Ok k
  | None ->
      Error
        (Printf.sprintf "unknown kernel %s (available: %s)" name
           (String.concat ", " (List.map fst (Wr_workload.Kernels.all ()))))

let run_schedule kernel config_str verbose backend =
  Option.iter Wr_sched.Backend.set backend;
  match (find_kernel kernel, Config.parse config_str) with
  | Error e, _ -> prerr_endline e; exit 1
  | _, Error e -> prerr_endline e; exit 1
  | Ok loop, Ok cfg ->
      let tc = Wr_cost.Access_time.relative cfg in
      let cm = Wr_cost.Access_time.cycle_model_of cfg in
      let prepared, stats = Wr_widen.Transform.widen loop ~width:cfg.Config.width in
      Printf.printf "kernel %s on %s: Tc=%.2f, %s\n" kernel (Config.label cfg) tc
        (Cycle_model.to_string cm);
      Format.printf "%a@." Wr_widen.Transform.pp_stats stats;
      (match
         Wr_regalloc.Driver.run (Resource.of_config cfg) ~cycle_model:cm
           ~registers:cfg.Config.registers prepared.Loop.ddg
       with
      | Wr_regalloc.Driver.Scheduled s ->
          Printf.printf "II=%d (MII=%d), stages=%d, registers=%d (MaxLives=%d), spill=%d+%d\n"
            s.Wr_regalloc.Driver.schedule.Wr_sched.Schedule.ii s.Wr_regalloc.Driver.mii
            (Wr_sched.Schedule.stage_count s.Wr_regalloc.Driver.schedule)
            s.Wr_regalloc.Driver.alloc.Wr_regalloc.Alloc.required
            s.Wr_regalloc.Driver.alloc.Wr_regalloc.Alloc.max_lives
            s.Wr_regalloc.Driver.stores_added s.Wr_regalloc.Driver.loads_added;
          if verbose then
            print_string
              (Wr_sched.Schedule.kernel_view prepared.Loop.ddg (Resource.of_config cfg)
                 s.Wr_regalloc.Driver.schedule)
      | Wr_regalloc.Driver.Unschedulable msg ->
          Printf.printf "unschedulable: %s\n" msg)

let schedule_cmd =
  let kernel =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc:"Kernel name.")
  in
  let config =
    Arg.(value & opt string "4w2(128:2)"
         & info [ "c"; "config" ] ~docv:"CONFIG" ~doc:"Configuration, e.g. 4w2(128:2).")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the full kernel schedule.")
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Software-pipeline one kernel on a configuration")
    Term.(const run_schedule $ kernel $ config $ verbose $ backend_arg)

(* --- configs ---------------------------------------------------------- *)

let run_configs lambda =
  match Wr_cost.Sia.by_lambda lambda with
  | None -> Printf.eprintf "no SIA generation with lambda=%.2f\n" lambda
  | Some g ->
      Printf.printf "Implementable configurations at %s (20%% budget):\n" (Wr_cost.Sia.label g);
      List.iter
        (fun c ->
          Printf.printf "  %-14s area=%7.0fe6 l^2 (%4.1f%% die)  Tc=%.2f (%s)\n"
            (Config.label c)
            (Wr_cost.Area.total_area c /. 1e6)
            (100.0 *. Wr_cost.Area.chip_fraction c g)
            (Wr_cost.Access_time.relative c)
            (Cycle_model.to_string (Wr_cost.Access_time.cycle_model_of c)))
        (Core.Implementability.implementable_configs g)

let configs_cmd =
  let lambda =
    Arg.(value & opt float 0.25
         & info [ "g"; "lambda" ] ~docv:"UM" ~doc:"Feature size: 0.25, 0.18, 0.13, 0.10 or 0.07.")
  in
  Cmd.v
    (Cmd.info "configs" ~doc:"List implementable configurations for a technology")
    Term.(const run_configs $ lambda)

(* --- file --------------------------------------------------------------- *)

let file_cmd =
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Loop source file.")
  in
  let config =
    Arg.(value & opt (some string) None
         & info [ "c"; "config" ] ~docv:"CONFIG"
             ~doc:"Also software-pipeline each loop on this configuration.")
  in
  let run path config_str =
    let source = In_channel.with_open_text path In_channel.input_all in
    match Wr_ir.Text_format.parse source with
    | Error e ->
        (* The file exists but its content is bad: a runtime failure
           (2), not a usage error (1). *)
        Printf.eprintf "%s: %s
" path e;
        exit 2
    | Ok loops ->
        Printf.printf "%s: %d loop(s)
" path (List.length loops);
        List.iter
          (fun (l : Loop.t) ->
            Printf.printf "  %s: %d ops, trip %d, weight %g%s
" l.Loop.name (Loop.num_ops l)
              l.Loop.trip_count l.Loop.weight
              (if Wr_ir.Ddg.has_recurrence l.Loop.ddg then " (recurrence)" else ""))
          loops;
        match config_str with
        | None -> ()
        | Some cs -> (
            match Config.parse cs with
            | Error e ->
                prerr_endline e;
                exit 1
            | Ok cfg ->
                let cm = Wr_cost.Access_time.cycle_model_of cfg in
                List.iter
                  (fun (l : Loop.t) ->
                    let wide, _ = Wr_widen.Transform.widen l ~width:cfg.Config.width in
                    match
                      Wr_regalloc.Driver.run (Resource.of_config cfg) ~cycle_model:cm
                        ~registers:cfg.Config.registers wide.Loop.ddg
                    with
                    | Wr_regalloc.Driver.Scheduled s ->
                        Printf.printf "  %s on %s: II=%d (MII=%d), %d registers
" l.Loop.name
                          (Config.label cfg) s.Wr_regalloc.Driver.schedule.Wr_sched.Schedule.ii
                          s.Wr_regalloc.Driver.mii
                          s.Wr_regalloc.Driver.alloc.Wr_regalloc.Alloc.required
                    | Wr_regalloc.Driver.Unschedulable m ->
                        Printf.printf "  %s on %s: unschedulable (%s)
" l.Loop.name
                          (Config.label cfg) m)
                  loops)
  in
  Cmd.v
    (Cmd.info "file" ~doc:"Parse loops from a text file and optionally schedule them")
    Term.(const run $ path $ config)

(* --- check -------------------------------------------------------------- *)

let check_cmd =
  let target =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"TARGET"
             ~doc:"Kernel name, or a .wr loop file path (e.g. a fuzz reproducer).")
  in
  let config =
    Arg.(value & opt string "4w2(128)"
         & info [ "c"; "config" ] ~docv:"CONFIG"
             ~doc:"Configuration to verify on, e.g. 4w2(64); the register count in \
                   parentheses is the file size used.")
  in
  let cycles =
    Arg.(value & opt (some int) None
         & info [ "cycles" ] ~docv:"N"
             ~doc:"Cycle model (1-4); defaults to the one the configuration's access \
                   time implies.")
  in
  let policy =
    let values =
      [ ("combined", Wr_regalloc.Driver.Combined);
        ("spill", Wr_regalloc.Driver.Spill_only);
        ("escalate", Wr_regalloc.Driver.Escalate_only) ]
    in
    Arg.(value & opt (enum values) Wr_regalloc.Driver.Combined
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"Register-pressure policy: combined, spill or escalate.")
  in
  let run target config_str cycles policy =
    let loops =
      if Sys.file_exists target then begin
        let source = In_channel.with_open_text target In_channel.input_all in
        match Wr_ir.Text_format.parse source with
        | Ok loops -> loops
        | Error e -> prerr_endline e; exit 2
      end
      else
        match find_kernel target with
        | Ok loop -> [ loop ]
        | Error e -> prerr_endline e; exit 1
    in
    match Config.parse config_str with
    | Error e -> prerr_endline e; exit 1
    | Ok cfg ->
        let cm =
          match cycles with
          | None -> Wr_cost.Access_time.cycle_model_of cfg
          | Some n -> (
              match Cycle_model.of_cycles n with
              | Some m -> m
              | None ->
                  Printf.eprintf "--cycles must be 1..4, got %d\n" n;
                  exit 1)
        in
        let registers = cfg.Config.registers in
        let failed = ref false in
        List.iter
          (fun (l : Loop.t) ->
            let r = Wr_check.Oracle.check_point cfg ~cycle_model:cm ~registers ~policy l in
            let status =
              if not r.Wr_check.Oracle.schedulable then "unschedulable (nothing to verify)"
              else
                Printf.sprintf "II=%d%s"
                  (Option.value ~default:0 r.Wr_check.Oracle.ii)
                  (if r.Wr_check.Oracle.spilled then ", spill code verified" else "")
            in
            match r.Wr_check.Oracle.violations with
            | [] ->
                Printf.printf "  %-24s %s on %s (%s): all oracles passed\n" l.Loop.name
                  status (Config.label cfg)
                  (Cycle_model.to_string cm)
            | vs ->
                failed := true;
                Printf.printf "  %-24s %s on %s (%s): %d VIOLATION(S)\n%s\n" l.Loop.name
                  status (Config.label cfg)
                  (Cycle_model.to_string cm)
                  (List.length vs)
                  (Wr_check.Oracle.to_string vs))
          loops;
        if !failed then exit 2
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Verify the full pipeline (widen, schedule, allocate, spill) on a kernel or \
             loop file with the independent invariant oracles")
    Term.(const run $ target $ config $ cycles $ policy)

(* --- codegen / simulate -------------------------------------------------- *)

let prepare_for kernel config_str =
  match (find_kernel kernel, Config.parse config_str) with
  | Error e, _ | _, Error e ->
      prerr_endline e;
      exit 1
  | Ok loop, Ok cfg ->
      let wide, _ = Wr_widen.Transform.widen loop ~width:cfg.Config.width in
      let g = wide.Loop.ddg in
      let r =
        Wr_sched.Backend.run (Resource.of_config cfg) ~cycle_model:Cycle_model.Cycles_4 g
      in
      (loop, wide, g, r.Wr_sched.Modulo.schedule, cfg)

let codegen_cmd =
  let kernel =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc:"Kernel name.")
  in
  let config =
    Arg.(value & opt string "2w2(64)"
         & info [ "c"; "config" ] ~docv:"CONFIG" ~doc:"Configuration, e.g. 2w2(64).")
  in
  let full =
    Arg.(value & opt (some int) None
         & info [ "full" ] ~docv:"N"
             ~doc:"Emit the complete flat program for N iterations (prologue/kernel/drain) \
                   instead of the steady-state kernel.")
  in
  let run kernel config_str full =
    let _, _, g, s, cfg = prepare_for kernel config_str in
    let a = Wr_vliw.Codegen.allocate g s in
    (match full with
    | Some n -> print_string (Wr_vliw.Codegen.emit_program g s a cfg ~iterations:n)
    | None -> print_string (Wr_vliw.Codegen.emit g s a cfg));
    let counts = Wr_vliw.Codegen.word_counts g s a cfg in
    Printf.printf
      "
; prologue %d words, kernel %d words, epilogue %d words; %d filled / %d nop slots
"
      counts.Wr_vliw.Codegen.prologue_words counts.Wr_vliw.Codegen.kernel_words
      counts.Wr_vliw.Codegen.epilogue_words counts.Wr_vliw.Codegen.filled_slots
      counts.Wr_vliw.Codegen.nop_slots
  in
  Cmd.v
    (Cmd.info "codegen" ~doc:"Emit the MVE-unrolled VLIW kernel for a kernel/configuration")
    Term.(const run $ kernel $ config $ full)

let simulate_cmd =
  let kernel =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc:"Kernel name.")
  in
  let config =
    Arg.(value & opt string "2w2(64)"
         & info [ "c"; "config" ] ~docv:"CONFIG" ~doc:"Configuration, e.g. 2w2(64).")
  in
  let iters =
    Arg.(value & opt int 20 & info [ "n"; "iterations" ] ~docv:"N" ~doc:"Wide iterations.")
  in
  let run kernel config_str iterations =
    match (find_kernel kernel, Config.parse config_str) with
    | Error e, _ | _, Error e ->
        prerr_endline e;
        exit 1
    | Ok loop, Ok cfg -> (
        match Wr_vliw.Sim.check_against_reference loop cfg ~iterations with
        | Ok sim ->
            Printf.printf
              "simulated %d wide iterations on %s: %d cycles (steady-state model %d), %d                instances issued
               memory image matches the reference interpreter bit-for-bit.
"
              iterations (Config.label cfg) sim.Wr_vliw.Sim.cycles
              sim.Wr_vliw.Sim.kernel_cycles sim.Wr_vliw.Sim.issued
        | Error msg ->
            Printf.printf "MISMATCH: %s
" msg;
            exit 2)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Cycle-level simulation of a kernel, validated against the interpreter")
    Term.(const run $ kernel $ config $ iters)

(* --- workload / dot ---------------------------------------------------- *)

let workload_cmd =
  let run sample =
    let loops, _ = suite_of_sample sample in
    print_string (Wr_workload.Suite.statistics loops)
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Print aggregate statistics of the loop suite")
    Term.(const run $ sample_arg)

let dot_cmd =
  let kernel =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"KERNEL" ~doc:"Kernel name, or a .wr loop file path.")
  in
  let run kernel =
    if Sys.file_exists kernel then begin
      let source = In_channel.with_open_text kernel In_channel.input_all in
      match Wr_ir.Text_format.parse source with
      | Ok loops -> List.iter (fun l -> print_string (Wr_ir.Dot.of_loop l)) loops
      | Error e -> prerr_endline e; exit 2
    end
    else
      match find_kernel kernel with
      | Ok loop -> print_string (Wr_ir.Dot.of_loop loop)
      | Error e -> prerr_endline e; exit 1
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Dump a kernel's (or .wr file's) dependence graph as Graphviz DOT")
    Term.(const run $ kernel)

(* --- serve / query / store ---------------------------------------------- *)

let socket_arg =
  let doc = "Listen on (serve) or connect to (query) a Unix-domain socket at PATH." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let port_arg =
  let doc = "Listen on (serve) or connect to (query) TCP port N." in
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"N" ~doc)

let host_arg =
  let doc = "Host for --port (bind address for serve, server address for query)." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)

let endpoint_of socket port host =
  match (socket, port) with
  | Some path, None -> `Unix path
  | None, Some p -> `Tcp (host, p)
  | Some _, Some _ ->
      prerr_endline "--socket and --port are mutually exclusive";
      exit 1
  | None, None ->
      prerr_endline "one of --socket PATH or --port N is required";
      exit 1

let run_serve socket port host store queue_max budget_ms jobs ledger metrics trace strict
    loop_budget backend =
  let store = store_or_env store in
  Option.iter Wr_sched.Backend.set backend;
  Option.iter Wr_util.Pool.set_default_jobs jobs;
  if strict then Core.Evaluate.set_strict true;
  Core.Evaluate.set_loop_budget_ms loop_budget;
  let listen = endpoint_of socket port host in
  let cfg =
    {
      Wr_serve.Server.listen;
      queue_max;
      request_budget_ms = budget_ms;
      store;
      ledger;
      metrics;
      trace;
    }
  in
  match Wr_serve.Server.run cfg with
  | () -> ()
  | exception Core.Store.Locked msg ->
      prerr_endline msg;
      exit 2
  | exception Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "serve: %s: %s %s\n" (Unix.error_message e) fn arg;
      exit 2

let serve_cmd =
  let queue_max =
    let doc =
      "Admission bound: at most N requests outstanding (queued or evaluating); requests \
       beyond that are shed immediately with an explicit busy reply, so memory stays \
       bounded under any offered load."
    in
    Arg.(value & opt int Wr_serve.Server.default_queue_max
         & info [ "queue-max" ] ~docv:"N" ~doc)
  in
  let budget_ms =
    let doc =
      "Default per-request deadline in milliseconds (a request's own deadline_ms field \
       overrides it); an overrun degrades the point through the quarantine path and the \
       reply says so."
    in
    Arg.(value & opt (some int) None & info [ "request-budget-ms" ] ~docv:"MS" ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the design-space query daemon: concurrent study/point queries over a \
             Unix or TCP socket, with duplicate-request coalescing, bounded admission \
             with explicit load shedding, per-request deadlines, and an optional \
             crash-safe persistent result store for zero-re-evaluation warm starts. \
             SIGTERM/SIGINT drain gracefully.")
    Term.(const run_serve $ socket_arg $ port_arg $ host_arg $ store_arg $ queue_max
          $ budget_ms $ jobs_arg $ ledger_arg $ metrics_arg $ trace_arg $ strict_arg
          $ budget_arg $ backend_arg)

let query_ops = [ ("point", `Point); ("suite", `Suite); ("health", `Health); ("shutdown", `Shutdown) ]

let run_query op socket port host suite index config_str cycles registers deadline_ms id
    timeout_ms retries base_ms max_ms =
  let module P = Wr_serve.Protocol in
  let module J = Core.Bench_schema in
  let target = (endpoint_of socket port host :> Wr_serve.Client.target) in
  let line =
    match op with
    | `Health -> P.req_health ?id ()
    | `Shutdown -> P.req_shutdown ?id ()
    | `Point ->
        P.req_eval ?id ?registers ?cycles ?deadline_ms ~suite ~index ~config:config_str ()
    | `Suite -> P.req_suite ?id ?registers ?cycles ?deadline_ms ~suite ~config:config_str ()
  in
  (* Seed the backoff jitter from the pid so a herd of concurrent
     clients retrying against a busy server desynchronizes. *)
  let seed = Int64.of_int (Unix.getpid ()) in
  match
    Wr_serve.Client.query target ~timeout_ms ~attempts:retries ~base_ms ~max_ms ~seed line
  with
  | Error (Wr_serve.Client.Busy msg) ->
      Printf.eprintf "query: still busy after %d attempt(s): %s\n" retries msg;
      (* 4 = busy-after-retries (see README "Exit codes"): retryable by
         the caller, distinct from a hard failure. *)
      exit 4
  | Error e ->
      Printf.eprintf "query: %s\n" (Wr_serve.Client.error_message e);
      exit 2
  | Ok reply -> (
      (match J.member "result" reply with
      | Some r -> print_endline (J.to_string r)
      | None -> print_endline (J.to_string reply));
      match op with
      | `Point | `Suite ->
          let field k =
            match J.member k reply with
            | Some (J.Str v) -> v
            | Some (J.Bool b) -> string_of_bool b
            | _ -> "-"
          in
          Printf.eprintf "[query] source=%s degraded=%s coalesced=%s\n" (field "source")
            (field "degraded") (field "coalesced")
      | `Health | `Shutdown -> ())

let query_cmd =
  let op =
    let doc =
      "Operation: $(b,point) (evaluate one suite point), $(b,suite) (aggregate over the \
       whole suite), $(b,health) (server metrics, cache hit rates, queue depth), or \
       $(b,shutdown) (graceful drain)."
    in
    Arg.(required & pos 0 (some (enum query_ops)) None & info [] ~docv:"OP" ~doc)
  in
  let suite =
    Arg.(value & opt string "full"
         & info [ "suite" ] ~docv:"SUITE"
             ~doc:"Suite id: $(b,full) or $(b,sampleN) (e.g. sample50).")
  in
  let index =
    Arg.(value & opt int 0 & info [ "i"; "index" ] ~docv:"N" ~doc:"Loop index for point.")
  in
  let config =
    Arg.(value & opt string "4w2(64)"
         & info [ "c"; "config" ] ~docv:"CONFIG" ~doc:"Configuration, e.g. 4w2(64).")
  in
  let cycles =
    Arg.(value & opt (some int) None
         & info [ "cycles" ] ~docv:"N"
             ~doc:"Cycle model (1-4); defaults to the one the configuration implies.")
  in
  let registers =
    Arg.(value & opt (some int) None
         & info [ "registers" ] ~docv:"N"
             ~doc:"Register file size; defaults to the configuration's.")
  in
  let deadline =
    Arg.(value & opt (some int) None
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Per-request deadline; an overrun degrades the point server-side.")
  in
  let id =
    Arg.(value & opt (some string) None
         & info [ "id" ] ~docv:"ID" ~doc:"Request id echoed back in the reply.")
  in
  let timeout =
    Arg.(value & opt int 30000
         & info [ "timeout-ms" ] ~docv:"MS" ~doc:"Socket connect/read timeout per attempt.")
  in
  let retries =
    Arg.(value & opt int 5
         & info [ "retries" ] ~docv:"N"
             ~doc:"Total attempts on busy replies or connection failures (jittered \
                   exponential backoff between them); 1 disables retrying.")
  in
  let base =
    Arg.(value & opt int 100
         & info [ "backoff-base-ms" ] ~docv:"MS" ~doc:"First retry delay before jitter.")
  in
  let cap =
    Arg.(value & opt int 2000
         & info [ "backoff-max-ms" ] ~docv:"MS" ~doc:"Retry delay ceiling before jitter.")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Query a running widening-serve daemon.  Prints the result JSON to stdout and \
             reply metadata (cache source, degradation, coalescing) to stderr.  Exit 0 on \
             success, 2 on a definitive server or connection error, 4 when the server was \
             still shedding load after every retry.")
    Term.(const run_query $ op $ socket_arg $ port_arg $ host_arg $ suite $ index $ config
          $ cycles $ registers $ deadline $ id $ timeout $ retries $ base $ cap)

let store_cmd =
  let action =
    let doc = "$(b,stat) (report segments/entries/recovery) or $(b,compact) (rewrite as \
               one sorted, deduplicated segment — the canonical byte-comparable form)." in
    Arg.(required & pos 0 (some (enum [ ("stat", `Stat); ("compact", `Compact) ])) None
         & info [] ~docv:"ACTION" ~doc)
  in
  let dir =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"DIR" ~doc:"Store directory.")
  in
  let run action dir =
    match Core.Store.open_dir dir with
    | exception Core.Store.Locked msg ->
        prerr_endline msg;
        exit 2
    | t, r ->
        Printf.printf "%s: %d entries in %d segment(s)\n" dir r.Core.Store.entries
          r.Core.Store.segments;
        if r.Core.Store.quarantined_segments > 0 then
          Printf.printf "  recovery: %d corrupt segment(s) quarantined\n"
            r.Core.Store.quarantined_segments;
        if r.Core.Store.truncated_bytes > 0 then
          Printf.printf "  recovery: %d torn byte(s) truncated\n" r.Core.Store.truncated_bytes;
        (match action with
        | `Stat -> ()
        | `Compact ->
            Core.Store.compact t;
            Printf.printf "compacted to 1 segment (%d entries)\n" (Core.Store.length t));
        Core.Store.close t
  in
  Cmd.v
    (Cmd.info "store" ~doc:"Inspect or compact a persistent result store directory")
    Term.(const run $ action $ dir)

let () =
  let info =
    Cmd.info "widening-cli" ~version:"1.0.0"
      ~doc:"Replication vs. widening design-space study (Lopez et al., MICRO 1998)"
  in
  let code =
    Cmd.eval
      (Cmd.group info
         [
           experiment_cmd; schedule_cmd; configs_cmd; workload_cmd; dot_cmd; codegen_cmd;
           simulate_cmd; file_cmd; check_cmd; serve_cmd; query_cmd; store_cmd;
         ])
  in
  (* Standardized exit codes: cmdliner reports its own parse/usage
     errors as 124 (and internal errors as 125); fold both into the
     1 = usage, 2 = runtime-failure convention the other entry points
     use. *)
  let code = if code = Cmd.Exit.cli_error then 1
             else if code = Cmd.Exit.internal_error then 2
             else code in
  exit code
