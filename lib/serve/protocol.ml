module J = Core.Bench_schema
module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model

type point = {
  suite : string;
  index : int;
  config : Config.t;
  registers : int;
  cycle_model : Cycle_model.t;
  deadline_ms : int option;
}

type request =
  | Eval of point
  | Suite of point
  | Health
  | Shutdown

type envelope = { id : string option; req : request }

let opt_member key v = J.member key v

let str_field key v =
  match opt_member key v with
  | Some (J.Str s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string" key)
  | None -> Ok None

let int_field key v =
  match opt_member key v with
  | Some j -> (
      match J.to_int j with
      | Some n -> Ok (Some n)
      | None -> Error (Printf.sprintf "field %S must be an integer" key))
  | None -> Ok None

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let parse_point v =
  let* suite = str_field "suite" v in
  let suite = Option.value suite ~default:"full" in
  let* index = int_field "index" v in
  let index = Option.value index ~default:0 in
  let* config_str = str_field "config" v in
  let* config =
    match config_str with
    | None -> Error "field \"config\" is required"
    | Some s -> (
        match Config.parse s with
        | Ok c -> Ok c
        | Error msg -> Error (Printf.sprintf "bad config %S: %s" s msg))
  in
  let* registers = int_field "registers" v in
  let registers = Option.value registers ~default:config.Config.registers in
  let* cycles = int_field "cycles" v in
  let* cycle_model =
    match cycles with
    | None -> Ok (Wr_cost.Access_time.cycle_model_of config)
    | Some n -> (
        match Cycle_model.of_cycles n with
        | Some m -> Ok m
        | None -> Error (Printf.sprintf "no cycle model with %d cycles" n))
  in
  let* deadline_ms = int_field "deadline_ms" v in
  let* () =
    match deadline_ms with
    | Some ms when ms <= 0 -> Error "field \"deadline_ms\" must be positive"
    | _ -> Ok ()
  in
  if registers < 1 then Error "field \"registers\" must be positive"
  else if index < 0 then Error "field \"index\" must be non-negative"
  else Ok { suite; index; config; registers; cycle_model; deadline_ms }

let parse_request line =
  match J.parse line with
  | Error msg -> Error (None, "request is not valid JSON: " ^ msg)
  | Ok v -> (
      let id = match J.member "id" v with Some (J.Str s) -> Some s | _ -> None in
      let fail msg = Error (id, msg) in
      match J.member "op" v with
      | Some (J.Str "health") -> Ok { id; req = Health }
      | Some (J.Str "shutdown") -> Ok { id; req = Shutdown }
      | Some (J.Str (("eval" | "suite") as op)) -> (
          match parse_point v with
          | Ok p -> Ok { id; req = (if op = "eval" then Eval p else Suite p) }
          | Error msg -> fail msg)
      | Some (J.Str op) -> fail (Printf.sprintf "unknown op %S" op)
      | Some _ -> fail "field \"op\" must be a string"
      | None -> fail "field \"op\" is required")

(* --- replies ----------------------------------------------------------- *)

let result_json (r : Core.Evaluate.loop_result) =
  J.Obj
    [
      ("ii", J.int r.Core.Evaluate.ii);
      ("cycles", J.float r.Core.Evaluate.cycles);
      ("required_regs", J.int r.Core.Evaluate.required_regs);
      ("spill_stores", J.int r.Core.Evaluate.spill_stores);
      ("spill_loads", J.int r.Core.Evaluate.spill_loads);
      ("spill_rounds", J.int r.Core.Evaluate.spill_rounds);
      ("pipelined", J.Bool r.Core.Evaluate.pipelined);
      ("mii", J.int r.Core.Evaluate.mii);
      ("trip_count", J.int r.Core.Evaluate.trip_count);
    ]

let aggregate_json (a : Core.Evaluate.aggregate) =
  J.Obj
    [
      ("total_cycles", J.float a.Core.Evaluate.total_cycles);
      ("loops", J.int a.Core.Evaluate.loops);
      ("unpipelined", J.int a.Core.Evaluate.unpipelined);
      ("unpipelined_weight", J.float a.Core.Evaluate.unpipelined_weight);
      ("spilled_loops", J.int a.Core.Evaluate.spilled_loops);
      ("total_stores", J.int a.Core.Evaluate.total_stores);
      ("total_loads", J.int a.Core.Evaluate.total_loads);
      ("acceptable", J.Bool (Core.Evaluate.acceptable a));
    ]

let with_id id fields =
  match id with Some s -> ("id", J.Str s) :: fields | None -> fields

let render fields = J.to_string (J.Obj fields)

let eval_reply ~id ~source ~degraded ~coalesced r =
  render
    (with_id id
       [
         ("ok", J.Bool true);
         ("op", J.Str "eval");
         ("source", J.Str source);
         ("degraded", J.Bool degraded);
         ("coalesced", J.Bool coalesced);
         ("result", result_json r);
       ])

let suite_reply ~id a =
  render
    (with_id id [ ("ok", J.Bool true); ("op", J.Str "suite"); ("result", aggregate_json a) ])

let health_reply ~id fields =
  render
    (with_id id [ ("ok", J.Bool true); ("op", J.Str "health"); ("result", J.Obj fields) ])

let busy_reply ~id msg =
  render (with_id id [ ("ok", J.Bool false); ("busy", J.Bool true); ("error", J.Str msg) ])

let error_reply ~id msg =
  render (with_id id [ ("ok", J.Bool false); ("busy", J.Bool false); ("error", J.Str msg) ])

let shutdown_reply ~id =
  render (with_id id [ ("ok", J.Bool true); ("op", J.Str "shutdown") ])

(* --- requests ---------------------------------------------------------- *)

let opt_field key v fields =
  match v with Some n -> (key, J.int n) :: fields | None -> fields

let req_point_fields ?id ?registers ?cycles ?deadline_ms ~op ~suite ~config fields =
  let fields =
    opt_field "registers" registers (opt_field "cycles" cycles (opt_field "deadline_ms" deadline_ms fields))
  in
  let fields = ("suite", J.Str suite) :: ("config", J.Str config) :: fields in
  let fields = ("op", J.Str op) :: fields in
  render (match id with Some s -> ("id", J.Str s) :: fields | None -> fields)

let req_eval ?id ?registers ?cycles ?deadline_ms ~suite ~index ~config () =
  req_point_fields ?id ?registers ?cycles ?deadline_ms ~op:"eval" ~suite ~config
    [ ("index", J.int index) ]

let req_suite ?id ?registers ?cycles ?deadline_ms ~suite ~config () =
  req_point_fields ?id ?registers ?cycles ?deadline_ms ~op:"suite" ~suite ~config []

let req_health ?id () = render (with_id id [ ("op", J.Str "health") ])

let req_shutdown ?id () = render (with_id id [ ("op", J.Str "shutdown") ])
