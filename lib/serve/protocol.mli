(** The service wire protocol: one request per line, one JSON object
    per line back, over a Unix or TCP socket.

    Requests are JSON objects with an [op] field; everything else is
    op-specific.  Clients may pipeline: requests on one connection are
    answered in completion order, matched by the optional [id] string
    the client sent (echoed verbatim in the reply).

    {v
    {"op":"eval","suite":"sample120","index":3,"config":"4w2(64)"}
    {"op":"suite","suite":"sample120","config":"4w2(64)","cycles":29}
    {"op":"health"}
    {"op":"shutdown"}
    v}

    [eval] and [suite] accept optional [registers] (default: the
    config's register count), [cycles] (cycle-model cycles; default:
    the access-time model of the config) and [deadline_ms] (per-request
    evaluation budget, see {!Wr_util.Deadline}).

    Replies always carry ["ok"] ([true]/[false]) and the echoed [id].
    Failure replies are distinguished by ["busy"]: [true] means the
    request was shed (admission queue full, or the server is draining)
    and is worth retrying after a backoff; a plain error ([busy] absent
    or [false]) is not retryable.  Successful [eval] replies carry the
    result object plus [source] ([memo]/[store]/[fresh]), [degraded]
    (the point was quarantined and carries the fallback cost), and
    [coalesced] (this reply was satisfied by another client's in-flight
    evaluation of the same point).

    The JSON syntax is {!Core.Bench_schema}'s — the repo's own parser
    and printer, so the service adds no dependencies. *)

type point = {
  suite : string;  (** ["full"] or ["sampleN"] *)
  index : int;  (** loop index within the suite; ignored by [suite] requests *)
  config : Wr_machine.Config.t;
  registers : int;
  cycle_model : Wr_machine.Cycle_model.t;
  deadline_ms : int option;
}

type request =
  | Eval of point
  | Suite of point
  | Health
  | Shutdown

type envelope = { id : string option; req : request }

val parse_request : string -> (envelope, string option * string) result
(** Parse one request line.  The error carries the request [id] when
    the line was at least valid JSON (so the reply can still be
    matched) and a message naming what was wrong. *)

(** {2 Reply rendering} — each returns a single line without the
    trailing newline.  [result_json] is the stable rendering of a
    {!Core.Evaluate.loop_result}; [eval_reply] and [suite_reply] embed
    it under ["result"], and clients that only need the payload print
    that member verbatim, which is what makes warm-start byte-identity
    checkable from the outside. *)

val result_json : Core.Evaluate.loop_result -> Core.Bench_schema.json

val aggregate_json : Core.Evaluate.aggregate -> Core.Bench_schema.json

val eval_reply :
  id:string option ->
  source:string ->
  degraded:bool ->
  coalesced:bool ->
  Core.Evaluate.loop_result ->
  string

val suite_reply : id:string option -> Core.Evaluate.aggregate -> string

val health_reply : id:string option -> (string * Core.Bench_schema.json) list -> string

val busy_reply : id:string option -> string -> string

val error_reply : id:string option -> string -> string

val shutdown_reply : id:string option -> string

(** {2 Request rendering} — the client half. *)

val req_eval :
  ?id:string ->
  ?registers:int ->
  ?cycles:int ->
  ?deadline_ms:int ->
  suite:string ->
  index:int ->
  config:string ->
  unit ->
  string

val req_suite :
  ?id:string ->
  ?registers:int ->
  ?cycles:int ->
  ?deadline_ms:int ->
  suite:string ->
  config:string ->
  unit ->
  string

val req_health : ?id:string -> unit -> string

val req_shutdown : ?id:string -> unit -> string
