(** Client side of the query service: one request per connection, with
    timeout and bounded jittered-backoff retry (see
    {!Wr_util.Backoff}).

    Retry policy: a [busy] reply (shed or draining server) and
    connection-level failures (refused while the server restarts, read
    timeout) are retryable; a definitive error reply is not.  The
    caller distinguishes the terminal outcomes for exit-code purposes:
    {!error} [Busy] means the server was still overloaded after every
    attempt — the CLI maps it to exit code 4. *)

type target = [ `Unix of string | `Tcp of string * int ]

type error =
  | Busy of string  (** shed/draining after all retries *)
  | Remote of string  (** definitive error reply from the server *)
  | Io of string  (** connect/read/write failure after all retries *)
  | Bad_reply of string  (** reply was not a valid protocol line *)

val error_message : error -> string

val round_trip : target -> timeout_ms:int -> string -> (string, error) result
(** Connect, send one request line, read one reply line, close.  No
    retries; [timeout_ms] bounds both connect-to-write and the read. *)

val query :
  target ->
  timeout_ms:int ->
  attempts:int ->
  ?base_ms:int ->
  ?max_ms:int ->
  ?seed:int64 ->
  string ->
  (Core.Bench_schema.json, error) result
(** {!round_trip} with parsing and retry: up to [attempts] tries,
    backing off with jitter between them on [Busy]/[Io].  Returns the
    parsed reply object when it has ["ok"]: [true]; a reply with
    ["busy"]: [true] after the final attempt returns [Busy], any other
    ["ok"]: [false] returns [Remote] immediately. *)
