module J = Core.Bench_schema

type target = [ `Unix of string | `Tcp of string * int ]

type error =
  | Busy of string
  | Remote of string
  | Io of string
  | Bad_reply of string

let error_message = function
  | Busy m -> "server busy: " ^ m
  | Remote m -> "server error: " ^ m
  | Io m -> "connection error: " ^ m
  | Bad_reply m -> "bad reply: " ^ m

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

(* Read up to the first newline.  The protocol is one reply per
   request, so a small buffer loop suffices; SO_RCVTIMEO turns a hung
   server into a timeout error instead of a wedge. *)
let read_line fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    let n = Unix.read fd chunk 0 (Bytes.length chunk) in
    if n = 0 then Error (Io "connection closed before reply")
    else begin
      match Bytes.index_opt (Bytes.sub chunk 0 n) '\n' with
      | Some i ->
          Buffer.add_subbytes buf chunk 0 i;
          Ok (Buffer.contents buf)
      | None ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
    end
  in
  go ()

let round_trip target ~timeout_ms line =
  let domain, addr =
    match target with
    | `Unix path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | `Tcp (host, port) -> (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
  in
  match Unix.socket domain Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let tmo = float_of_int timeout_ms /. 1000.0 in
          (try
             Unix.setsockopt_float fd Unix.SO_RCVTIMEO tmo;
             Unix.setsockopt_float fd Unix.SO_SNDTIMEO tmo
           with Unix.Unix_error _ -> ());
          match
            Unix.connect fd addr;
            write_all fd (line ^ "\n")
          with
          | () -> (
              try read_line fd
              with Unix.Unix_error (e, _, _) ->
                Error
                  (Io
                     (match e with
                     | Unix.EAGAIN | Unix.EWOULDBLOCK -> "read timed out"
                     | e -> Unix.error_message e)))
          | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e)))

let classify line =
  match J.parse line with
  | Error msg -> Error (Bad_reply msg)
  | Ok reply -> (
      match J.member "ok" reply with
      | Some (J.Bool true) -> Ok reply
      | Some (J.Bool false) -> (
          let msg =
            match J.member "error" reply with Some (J.Str m) -> m | _ -> "unspecified"
          in
          match J.member "busy" reply with
          | Some (J.Bool true) -> Error (Busy msg)
          | _ -> Error (Remote msg))
      | _ -> Error (Bad_reply "reply has no boolean \"ok\" field"))

let query target ~timeout_ms ~attempts ?(base_ms = 100) ?(max_ms = 2000) ?(seed = 1L) line =
  Wr_util.Backoff.retry ~attempts ~base_ms ~max_ms ~jitter:0.25 ~seed
    ~retryable:(function Busy _ | Io _ -> true | Remote _ | Bad_reply _ -> false)
    (fun ~attempt:_ ->
      match round_trip target ~timeout_ms line with
      | Ok reply_line -> classify reply_line
      | Error _ as e -> e)
