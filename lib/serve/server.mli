(** The [widening-serve] daemon: concurrent design-space queries over a
    Unix or TCP socket, answered from the evaluation engine's caches
    and an optional persistent {!Core.Store}.

    {2 Architecture}

    One reader thread per connection parses line-delimited requests
    (see {!Protocol}) and admits them under a single lock; one
    dispatcher thread pops admitted work in batches and fans each batch
    onto the shared {!Wr_util.Pool}, so evaluation parallelism is the
    pool's, not the connection count's.  Replies are written by the
    evaluating task itself, under a per-connection write mutex.

    {2 Robustness invariants}

    {ul
    {- {b Bounded admission}: at most [queue_max] requests are
       outstanding (queued or evaluating).  A request beyond that is
       shed immediately with the explicit busy reply — memory stays
       bounded no matter the offered load.}
    {- {b Coalescing}: an [eval] request whose {!Core.Provenance}
       point hash matches one already in flight attaches to it as a
       waiter (without consuming an admission slot) and receives the
       same result bytes; duplicate traffic costs one evaluation.}
    {- {b Deadlines}: a request's [deadline_ms] (or the server-wide
       [request_budget_ms]) becomes a {!Wr_util.Deadline} budget
       installed inside the pool task; an overrun degrades that point
       through {!Core.Evaluate}'s quarantine path — the reply says
       [degraded], the server keeps running.}
    {- {b Quarantine, not crash}: any exception inside an evaluation
       is absorbed exactly as [Evaluate.loop_cached] absorbs it
       (strict mode excepted); an exception anywhere else in request
       handling produces an error reply on that request only.}
    {- {b Graceful drain}: SIGTERM, SIGINT, or a [shutdown] request
       stop admission (late requests get the busy reply), let in-flight
       work finish, flush and close the store and ledger, and return.}}

    {2 Warm starts}

    With [store] set, every clean evaluation is appended to the
    persistent store and every miss consults it, so a server killed
    with [SIGKILL] and restarted on the same directory (the stale lock
    is broken automatically) answers repeated queries byte-identically
    with zero re-evaluations; the store's recovery pass truncates any
    torn tail and quarantines corrupt segments first. *)

type listen = [ `Unix of string | `Tcp of string * int ]

type config = {
  listen : listen;
  queue_max : int;  (** outstanding-request bound; excess is shed *)
  request_budget_ms : int option;  (** default per-request deadline *)
  store : string option;  (** persistent store directory *)
  ledger : string option;  (** write a [wr-ledger/1] file on drain *)
  metrics : string option;  (** write an Obs metrics file on drain *)
  trace : string option;  (** write an Obs trace file on drain *)
}

val default_queue_max : int
(** 64: deep enough to keep the pool fed, shallow enough that a shed
    reply arrives while retrying is still cheaper than waiting. *)

val run : config -> unit
(** Bind, serve until drained (signal or [shutdown] request), then
    clean up and return.  Prints one [[serve]] line to stderr on start
    and one on drain.  Raises on bind/store-open failures — before any
    request was accepted, failing loudly is the right report. *)
