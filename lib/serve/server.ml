module J = Core.Bench_schema
module Evaluate = Core.Evaluate
module Store = Core.Store
module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Loop = Wr_ir.Loop
module Pool = Wr_util.Pool
module Obs = Wr_obs.Obs
module P = Protocol

type listen = [ `Unix of string | `Tcp of string * int ]

type config = {
  listen : listen;
  queue_max : int;
  request_budget_ms : int option;
  store : string option;
  ledger : string option;
  metrics : string option;
  trace : string option;
}

let default_queue_max = 64

(* A connection is shared between its reader thread and the pool tasks
   answering its requests; everything mutable is under [wmutex].  The
   fd is closed only when the reader has seen EOF AND no admitted
   request still owes a reply — closing earlier would let the kernel
   reuse the fd number and a late reply would land on a stranger's
   socket. *)
type conn = {
  fd : Unix.file_descr;
  wmutex : Mutex.t;
  mutable alive : bool;  (** writes still possible *)
  mutable closing : bool;  (** reader saw EOF/error *)
  mutable owed : int;  (** admitted replies not yet written *)
}

type job =
  | Point of { id : string option; p : P.point; loop : Loop.t; key : int64; conn : conn }
  | Agg of { id : string option; p : P.point; loops : Loop.t array; conn : conn }

(* In-flight eval requests by content hash; a duplicate attaches here
   instead of taking an admission slot. *)
type flight = { mutable waiters : (conn * string option) list }

type t = {
  cfg : config;
  qmutex : Mutex.t;
  qcond : Condition.t;
  queue : job Queue.t;
  inflight : (int64, flight) Hashtbl.t;
  mutable outstanding : int;  (** admitted (queued + evaluating) primaries *)
  draining : bool Atomic.t;
  served : int Atomic.t;
  shed : int Atomic.t;
  coalesced : int Atomic.t;
  started_ns : int;
  suites : (string, Loop.t array) Hashtbl.t;
  smutex : Mutex.t;
}

(* --- plumbing ---------------------------------------------------------- *)

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Write one reply line.  [owed] marks replies that were admitted (and
   so were counted in [conn.owed] at admission time). *)
let send ?(owed = false) conn line =
  Mutex.lock conn.wmutex;
  (if conn.alive then
     try write_all conn.fd (line ^ "\n")
     with Unix.Unix_error _ | Sys_error _ -> conn.alive <- false);
  if owed then begin
    conn.owed <- conn.owed - 1;
    if conn.closing && conn.owed = 0 then begin
      conn.alive <- false;
      close_quiet conn.fd
    end
  end;
  Mutex.unlock conn.wmutex

(* Called under [qmutex] (lock order is always qmutex -> wmutex). *)
let expect_reply conn =
  Mutex.lock conn.wmutex;
  conn.owed <- conn.owed + 1;
  Mutex.unlock conn.wmutex

(* --- suites ------------------------------------------------------------ *)

let resolve_suite t name =
  Mutex.lock t.smutex;
  let cached = Hashtbl.find_opt t.suites name in
  Mutex.unlock t.smutex;
  match cached with
  | Some loops -> Ok loops
  | None -> (
      let generated =
        if String.equal name "full" then Ok (Wr_workload.Suite.perfect_club_like ())
        else if String.length name > 6 && String.equal (String.sub name 0 6) "sample" then
          match int_of_string_opt (String.sub name 6 (String.length name - 6)) with
          | Some n when n >= 1 -> Ok (Wr_workload.Suite.sample n)
          | _ -> Error (Printf.sprintf "bad suite %S: sampleN needs a positive N" name)
        else Error (Printf.sprintf "unknown suite %S (expected \"full\" or \"sampleN\")" name)
      in
      match generated with
      | Ok loops ->
          (* Racing readers generate the same deterministic array; the
             replace is idempotent. *)
          Mutex.lock t.smutex;
          Hashtbl.replace t.suites name loops;
          Mutex.unlock t.smutex;
          Ok loops
      | Error _ as e -> e)

(* --- health ------------------------------------------------------------ *)

let stats_obj (s : Evaluate.cache_stats) =
  J.Obj [ ("hits", J.int s.Evaluate.hits); ("misses", J.int s.Evaluate.misses) ]

let health_fields t =
  Mutex.lock t.qmutex;
  let queue_depth = Queue.length t.queue in
  let outstanding = t.outstanding in
  let inflight = Hashtbl.length t.inflight in
  Mutex.unlock t.qmutex;
  let store_fields =
    match Evaluate.store_dir () with
    | None -> [ ("attached", J.Bool false) ]
    | Some dir ->
        let s = Evaluate.cache_stats `Store in
        [
          ("attached", J.Bool true);
          ("dir", J.Str dir);
          ("entries", J.int (Evaluate.store_entries ()));
          ("hits", J.int s.Evaluate.hits);
          ("misses", J.int s.Evaluate.misses);
          ("appended", J.int (Evaluate.store_appended ()));
        ]
  in
  [
    ("uptime_s", J.float (float_of_int (Obs.now_ns () - t.started_ns) /. 1e9));
    ("draining", J.Bool (Atomic.get t.draining));
    ("jobs", J.int (Pool.jobs (Pool.default ())));
    ("queue_depth", J.int queue_depth);
    ("queue_max", J.int t.cfg.queue_max);
    ("outstanding", J.int outstanding);
    ("inflight_points", J.int inflight);
    ("pool_queue_depth", J.int (Pool.queue_depth (Pool.default ())));
    ("served", J.int (Atomic.get t.served));
    ("shed", J.int (Atomic.get t.shed));
    ("coalesced", J.int (Atomic.get t.coalesced));
    ("evaluations", J.int (Evaluate.evaluations ()));
    ("quarantined", J.int (Evaluate.quarantined_count ()));
    ("loop_cache", stats_obj (Evaluate.cache_stats `Loop));
    ("suite_cache", stats_obj (Evaluate.cache_stats `Suite));
    ("store", J.Obj store_fields);
    ("obs_enabled", J.Bool (Obs.enabled ()));
  ]

(* --- admission --------------------------------------------------------- *)

let signal_dispatcher t =
  Mutex.lock t.qmutex;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qmutex

let admit_eval t conn id (p : P.point) loop =
  let key =
    Core.Provenance.point_hash ~suite_id:p.P.suite ~index:p.P.index ~config:p.P.config
      ~registers:p.P.registers ~cycle_model:p.P.cycle_model loop
  in
  Mutex.lock t.qmutex;
  if Atomic.get t.draining then begin
    Mutex.unlock t.qmutex;
    send conn (P.busy_reply ~id "server is draining")
  end
  else
    match Hashtbl.find_opt t.inflight key with
    | Some fl ->
        (* Duplicate of an in-flight point: ride along free of charge.
           Coalescing is checked before the admission bound on purpose —
           a waiter costs no evaluation and no queue slot, so shedding
           it would only lose work already paid for. *)
        fl.waiters <- (conn, id) :: fl.waiters;
        Atomic.incr t.coalesced;
        expect_reply conn;
        Mutex.unlock t.qmutex
    | None ->
        if t.outstanding >= t.cfg.queue_max then begin
          Atomic.incr t.shed;
          Mutex.unlock t.qmutex;
          send conn
            (P.busy_reply ~id
               (Printf.sprintf "admission queue full (%d outstanding, max %d)" t.outstanding
                  t.cfg.queue_max))
        end
        else begin
          Hashtbl.add t.inflight key { waiters = [] };
          t.outstanding <- t.outstanding + 1;
          expect_reply conn;
          Queue.add (Point { id; p; loop; key; conn }) t.queue;
          Condition.signal t.qcond;
          Mutex.unlock t.qmutex
        end

let admit_agg t conn id (p : P.point) loops =
  Mutex.lock t.qmutex;
  if Atomic.get t.draining then begin
    Mutex.unlock t.qmutex;
    send conn (P.busy_reply ~id "server is draining")
  end
  else if t.outstanding >= t.cfg.queue_max then begin
    Atomic.incr t.shed;
    Mutex.unlock t.qmutex;
    send conn
      (P.busy_reply ~id
         (Printf.sprintf "admission queue full (%d outstanding, max %d)" t.outstanding
            t.cfg.queue_max))
  end
  else begin
    t.outstanding <- t.outstanding + 1;
    expect_reply conn;
    Queue.add (Agg { id; p; loops; conn }) t.queue;
    Condition.signal t.qcond;
    Mutex.unlock t.qmutex
  end

let handle_line t conn line =
  match P.parse_request line with
  | Error (id, msg) -> send conn (P.error_reply ~id msg)
  | Ok { id; req } -> (
      match req with
      | P.Health -> send conn (P.health_reply ~id (health_fields t))
      | P.Shutdown ->
          Atomic.set t.draining true;
          signal_dispatcher t;
          send conn (P.shutdown_reply ~id)
      | P.Eval p | P.Suite p -> (
          match resolve_suite t p.P.suite with
          | Error msg -> send conn (P.error_reply ~id msg)
          | Ok loops -> (
              match req with
              | P.Eval p ->
                  if p.P.index >= Array.length loops then
                    send conn
                      (P.error_reply ~id
                         (Printf.sprintf "index %d out of range: suite %s has %d loops"
                            p.P.index p.P.suite (Array.length loops)))
                  else admit_eval t conn id p loops.(p.P.index)
              | P.Suite p -> admit_agg t conn id p loops
              | P.Health | P.Shutdown -> assert false)))

let reader t conn =
  let ic = Unix.in_channel_of_descr conn.fd in
  (try
     while true do
       let line = input_line ic in
       if not (String.equal (String.trim line) "") then handle_line t conn line
     done
   with End_of_file | Sys_error _ | Unix.Unix_error _ -> ());
  Mutex.lock conn.wmutex;
  conn.alive <- false;
  conn.closing <- true;
  if conn.owed = 0 then close_quiet conn.fd;
  Mutex.unlock conn.wmutex

(* --- evaluation -------------------------------------------------------- *)

let degraded_point (p : P.point) =
  let label = Config.label p.P.config in
  let cycles = Cycle_model.cycles p.P.cycle_model in
  List.exists
    (fun (q : Evaluate.quarantine_record) ->
      String.equal q.Evaluate.q_suite p.P.suite
      && q.Evaluate.q_index = p.P.index
      && String.equal q.Evaluate.q_config label
      && q.Evaluate.q_registers = p.P.registers
      && q.Evaluate.q_cycle_model = cycles)
    (Evaluate.quarantined ())

let with_budget t (p : P.point) f =
  match (p.P.deadline_ms, t.cfg.request_budget_ms) with
  | Some ms, _ | None, Some ms ->
      (* Installed inside the pool task: tasks of one domain run
         sequentially, so the domain-local deadline slot is save/
         restored correctly even with nested budgets. *)
      Wr_util.Deadline.with_budget_ms ms f
  | None, None -> f ()

let process_point t ~id ~(p : P.point) ~loop ~key ~conn =
  let source =
    match
      Evaluate.probe ~suite_id:p.P.suite ~index:p.P.index p.P.config
        ~cycle_model:p.P.cycle_model ~registers:p.P.registers
    with
    | Some _ -> "memo"
    | None ->
        if
          Evaluate.probe_store ~suite_id:p.P.suite ~index:p.P.index p.P.config
            ~cycle_model:p.P.cycle_model ~registers:p.P.registers loop
        then "store"
        else "fresh"
  in
  let outcome =
    (* A strict-mode failure (or any bug outside the quarantine net)
       becomes an error reply on this request; the server survives. *)
    try
      Ok
        (with_budget t p (fun () ->
             Evaluate.loop_cached ~suite_id:p.P.suite ~index:p.P.index p.P.config
               ~cycle_model:p.P.cycle_model ~registers:p.P.registers loop))
    with
    | Out_of_memory -> raise Out_of_memory
    | e -> Error (Printexc.to_string e)
  in
  Mutex.lock t.qmutex;
  let waiters =
    match Hashtbl.find_opt t.inflight key with Some fl -> fl.waiters | None -> []
  in
  Hashtbl.remove t.inflight key;
  t.outstanding <- t.outstanding - 1;
  Mutex.unlock t.qmutex;
  let reply ~coalesced id =
    match outcome with
    | Ok r -> P.eval_reply ~id ~source ~degraded:(degraded_point p) ~coalesced r
    | Error msg -> P.error_reply ~id msg
  in
  Atomic.incr t.served;
  send ~owed:true conn (reply ~coalesced:false id);
  List.iter
    (fun (wconn, wid) ->
      Atomic.incr t.served;
      send ~owed:true wconn (reply ~coalesced:true wid))
    (List.rev waiters)

let process_agg t ~id ~(p : P.point) ~loops ~conn =
  let outcome =
    try
      Ok
        (with_budget t p (fun () ->
             Evaluate.suite_on ~suite_id:p.P.suite p.P.config ~cycle_model:p.P.cycle_model
               ~registers:p.P.registers loops))
    with
    | Out_of_memory -> raise Out_of_memory
    | e -> Error (Printexc.to_string e)
  in
  Mutex.lock t.qmutex;
  t.outstanding <- t.outstanding - 1;
  Mutex.unlock t.qmutex;
  Atomic.incr t.served;
  send ~owed:true conn
    (match outcome with Ok a -> P.suite_reply ~id a | Error msg -> P.error_reply ~id msg)

let process t = function
  | Point { id; p; loop; key; conn } -> process_point t ~id ~p ~loop ~key ~conn
  | Agg { id; p; loops; conn } -> process_agg t ~id ~p ~loops ~conn

(* One dispatcher: pops admitted jobs in batches sized to the pool and
   fans each batch out with [parallel_map].  Each task writes its own
   replies, so a slow point delays only the barrier, never the wire. *)
let dispatcher t =
  let pool = Pool.default () in
  let batch_max = max 1 (4 * Pool.jobs pool) in
  let rec loop () =
    Mutex.lock t.qmutex;
    let rec await () =
      if not (Queue.is_empty t.queue) then true
      else if Atomic.get t.draining then false
      else begin
        Condition.wait t.qcond t.qmutex;
        await ()
      end
    in
    if not (await ()) then Mutex.unlock t.qmutex
    else begin
      let batch = ref [] in
      let n = ref 0 in
      while (not (Queue.is_empty t.queue)) && !n < batch_max do
        batch := Queue.pop t.queue :: !batch;
        incr n
      done;
      Mutex.unlock t.qmutex;
      let jobs = Array.of_list (List.rev !batch) in
      (try ignore (Pool.parallel_map ~pool jobs ~f:(fun job -> process t job))
       with Pool.Batch_failure _ -> () (* each job already replied or died alone *));
      loop ()
    end
  in
  loop ()

(* --- lifecycle --------------------------------------------------------- *)

let bind_listener = function
  | `Unix path ->
      (* A previous kill -9 leaves the socket file behind; binding over
         it is the restart path. *)
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | `Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      Unix.listen fd 64;
      fd

let listen_label = function
  | `Unix path -> "unix:" ^ path
  | `Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let run cfg =
  if cfg.queue_max < 1 then invalid_arg "Server.run: queue_max must be >= 1";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let t =
    {
      cfg;
      qmutex = Mutex.create ();
      qcond = Condition.create ();
      queue = Queue.create ();
      inflight = Hashtbl.create 64;
      outstanding = 0;
      draining = Atomic.make false;
      served = Atomic.make 0;
      shed = Atomic.make 0;
      coalesced = Atomic.make 0;
      started_ns = Obs.now_ns ();
      suites = Hashtbl.create 8;
      smutex = Mutex.create ();
    }
  in
  (match cfg.store with
  | None -> ()
  | Some dir ->
      let r = Evaluate.attach_store dir in
      Printf.eprintf "[serve] store %s: %d entries in %d segment(s)%s%s\n%!" dir
        r.Store.entries r.Store.segments
        (if r.Store.quarantined_segments > 0 then
           Printf.sprintf ", %d quarantined" r.Store.quarantined_segments
         else "")
        (if r.Store.truncated_bytes > 0 then
           Printf.sprintf ", %d torn byte(s) truncated" r.Store.truncated_bytes
         else ""));
  if cfg.ledger <> None then Core.Provenance.set_capture true;
  if cfg.metrics <> None || cfg.trace <> None then Obs.set_enabled true;
  let lfd = bind_listener cfg.listen in
  let drain _ = Atomic.set t.draining true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle drain);
  Sys.set_signal Sys.sigint (Sys.Signal_handle drain);
  Printf.eprintf "[serve] listening on %s (jobs=%d, queue_max=%d)\n%!"
    (listen_label cfg.listen)
    (Pool.jobs (Pool.default ()))
    cfg.queue_max;
  let disp = Thread.create dispatcher t in
  let rec accept_loop () =
    if not (Atomic.get t.draining) then begin
      (match Unix.select [ lfd ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept lfd with
          | fd, _ ->
              let conn =
                { fd; wmutex = Mutex.create (); alive = true; closing = false; owed = 0 }
              in
              ignore (Thread.create (reader t) conn)
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.ECONNABORTED), _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  (* Drain: stop admitting (readers now answer busy), let the
     dispatcher finish everything admitted, then persist state. *)
  signal_dispatcher t;
  Thread.join disp;
  close_quiet lfd;
  (match cfg.listen with
  | `Unix path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | `Tcp _ -> ());
  (match cfg.ledger with
  | None -> ()
  | Some path ->
      Core.Provenance.write path;
      Printf.eprintf "[ledger] wrote %s (%d records)\n%!" path
        (List.length (Core.Provenance.records ())));
  Evaluate.detach_store ();
  Option.iter
    (fun path ->
      Obs.write_trace path;
      Printf.eprintf "[trace] wrote %s\n%!" path)
    cfg.trace;
  Option.iter
    (fun path ->
      Obs.write_metrics path;
      Printf.eprintf "[metrics] wrote %s\n%!" path)
    cfg.metrics;
  Printf.eprintf "[serve] drained: served=%d shed=%d coalesced=%d evaluations=%d quarantined=%d\n%!"
    (Atomic.get t.served) (Atomic.get t.shed) (Atomic.get t.coalesced)
    (Evaluate.evaluations ())
    (Evaluate.quarantined_count ())
