(** Checksummed JSONL run-ledger files.

    A ledger is an ordinary text file of one JSON object per line,
    where each line wraps an opaque JSON payload together with its
    FNV-1a 64-bit checksum:

    {v {"p":<payload>,"c":"<16 hex digits>"} v}

    The checksum covers exactly the payload substring, so every line is
    both strict JSON (tools can [jq '.p'] a ledger directly) and
    independently verifiable — the same line discipline [Core.Journal]
    uses for its checkpoint files, minus the truncation-on-corruption
    recovery: a ledger is written whole at the end of a run, never
    appended to across crashes, so any bad line is a hard error rather
    than a torn tail.

    The first line of a file is a header payload (schema tag and
    run-level fields); the rest are records.  Writers are responsible
    for emitting records in a deterministic order — this module adds
    nothing placement-dependent, so a byte-identical payload sequence
    yields a byte-identical file. *)

val fnv1a64 : string -> int64
(** FNV-1a 64-bit hash of a string (same function as
    [Core.Journal]'s line checksums). *)

val hex64 : int64 -> string
(** 16 lowercase hex digits, zero-padded. *)

val line : string -> string
(** [line payload] is the checksummed ledger line for one payload,
    including the trailing newline.  The payload must be a valid JSON
    value; this module does not check. *)

val write : path:string -> header:string -> records:string list -> unit
(** Write a whole ledger file: the header payload line followed by one
    line per record payload, in the given order. *)

val load : string -> (string * string list, string) result
(** Read a ledger file back, verifying every line's shape and
    checksum.  Returns [(header_payload, record_payloads)] or a
    message naming the first offending line.  Unlike journal recovery,
    corruption anywhere is an error: ledgers are immutable run
    artifacts, so a bad byte means the artifact is untrustworthy. *)
