(** Low-overhead, pool-aware telemetry: spans, counters, histograms.

    Every recording primitive is a single [Atomic.get] + branch when
    telemetry is disabled (the default), so instrumentation can live
    permanently in the hot paths of the scheduler and the evaluation
    engine.  When enabled, each domain records into its own {e sink}
    (domain-local storage, no cross-domain contention on the hot path);
    sinks register themselves in a global registry and {!snapshot}
    merges them deterministically:

    - {b counters} and {b histograms} merge by summation, which is
      commutative — a study instrumented only through tasks whose work
      is independent of placement produces identical merged values for
      any pool size;
    - {b runtime} counters/histograms (pool queue depths, per-worker
      busy/idle time) are inherently placement-dependent and are kept
      in a separate per-lane section, excluded from the determinism
      contract;
    - {b spans} (monotonic-clock timed scopes) keep their lane of
      origin, one lane per domain, and serialize to Chrome trace-event
      JSON loadable in [chrome://tracing] / Perfetto.

    Merging and serialization are only meant to run while the process
    is quiescent (no pool tasks in flight), e.g. after a study driver
    returns. *)

(** {1 Global switch} *)

val enabled : unit -> bool
(** One atomic load; the only cost the disabled mode pays. *)

val set_enabled : bool -> unit

val reset : unit -> unit
(** Clear every sink's counters, histograms, and events in place (the
    sinks themselves stay registered with their lanes).  Call only when
    no recording is in flight. *)

(** {1 Recording} *)

val now_ns : unit -> int
(** [CLOCK_MONOTONIC] in nanoseconds, as an untagged int (no
    allocation). *)

val incr : string -> unit
(** Add 1 to a deterministic counter. *)

val add : string -> int -> unit
(** Add [n] to a deterministic counter. *)

val observe : string -> int -> unit
(** Record one occurrence of an exact integer value into a
    deterministic histogram. *)

val observe_clamped : string -> top:int -> int -> unit
(** [observe_clamped name ~top v] records [v] into the histogram
    [name], except that every value above [top] lands in a single
    overflow bucket at [top + 1].  The overflow bucket keeps the exact
    count of clamped observations, so cross-domain merges stay
    loss-free in count (only the value resolution above [top] is
    given up) and the bin cardinality is bounded — use this for
    open-ended quantities like search node counts or II escalation,
    where {!observe} would create one bin per distinct value. *)

val runtime_add : string -> int -> unit
(** Add to a per-lane runtime counter (placement-dependent values:
    busy nanoseconds, task counts per worker...). *)

val runtime_observe : string -> int -> unit
(** Record into a per-lane runtime histogram (queue depths...). *)

val span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()]; when telemetry is enabled, the scope is
    timed with the monotonic clock and recorded as a complete event on
    the calling domain's lane (also on exceptional exit, before the
    exception is re-raised with its backtrace).  When building [?args]
    at the call site would itself allocate, guard the call on
    {!enabled}. *)

(** {1 Snapshots} *)

type histogram = (int * int) list
(** [(value, count)] pairs, sorted by value. *)

type span_stat = { span_count : int; span_total_ns : int; span_max_ns : int }

type lane = {
  lane_id : int;
  lane_counters : (string * int) list;
  lane_histograms : (string * histogram) list;
}

type event = {
  ev_lane : int;
  ev_name : string;
  ev_args : (string * string) list;
  ev_start_ns : int;  (** relative to process start *)
  ev_dur_ns : int;
}

type snapshot = {
  counters : (string * int) list;  (** merged over all sinks, sorted by name *)
  histograms : (string * histogram) list;  (** merged, sorted by name *)
  spans : (string * span_stat) list;  (** merged per-name aggregates, sorted *)
  lanes : lane list;  (** runtime (non-deterministic) section, by lane *)
}

val snapshot : unit -> snapshot

val events : unit -> event list
(** All recorded complete events, sorted by start time. *)

(** {1 Serialization} *)

val metrics_json : unit -> string
(** Flat JSON object with [counters], [histograms], [spans], and a
    per-lane [runtime] array. *)

val trace_json : unit -> string
(** Chrome trace-event JSON ([traceEvents] of ["ph":"X"] complete
    events, one [tid] lane per domain plus [thread_name] metadata);
    loads in [chrome://tracing] and Perfetto. *)

val write_metrics : string -> unit
(** Write {!metrics_json} to a file. *)

val write_trace : string -> unit
(** Write {!trace_json} to a file. *)
