external now_ns : unit -> int = "wr_obs_monotonic_ns" [@@noalloc]

let start_ns = now_ns ()

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let set_enabled b = Atomic.set enabled_flag b

(* --- sinks ------------------------------------------------------------- *)

type raw_event = {
  re_name : string;
  re_args : (string * string) list;
  re_start_ns : int;
  re_dur_ns : int;
}

let dummy_event = { re_name = ""; re_args = []; re_start_ns = 0; re_dur_ns = 0 }

type sink = {
  lane : int;
  counters : (string, int ref) Hashtbl.t;
  hists : (string, (int, int ref) Hashtbl.t) Hashtbl.t;
  rt_counters : (string, int ref) Hashtbl.t;
  rt_hists : (string, (int, int ref) Hashtbl.t) Hashtbl.t;
  mutable events : raw_event array;
  mutable n_events : int;
}

(* Registry of every sink ever created.  Sinks are domain-local for
   recording (no lock on the hot path) but live here for merging; a
   sink outlives its domain so counters from a drained pool still merge. *)
let registry : sink list ref = ref []

let registry_mutex = Mutex.create ()

let next_lane = ref 0

let make_sink () =
  Mutex.lock registry_mutex;
  let lane = !next_lane in
  incr next_lane;
  let s =
    {
      lane;
      counters = Hashtbl.create 32;
      hists = Hashtbl.create 16;
      rt_counters = Hashtbl.create 16;
      rt_hists = Hashtbl.create 8;
      events = Array.make 256 dummy_event;
      n_events = 0;
    }
  in
  registry := s :: !registry;
  Mutex.unlock registry_mutex;
  s

let sink_key = Domain.DLS.new_key make_sink

let sink () = Domain.DLS.get sink_key

let reset () =
  Mutex.lock registry_mutex;
  List.iter
    (fun s ->
      Hashtbl.reset s.counters;
      Hashtbl.reset s.hists;
      Hashtbl.reset s.rt_counters;
      Hashtbl.reset s.rt_hists;
      s.events <- Array.make 256 dummy_event;
      s.n_events <- 0)
    !registry;
  Mutex.unlock registry_mutex

(* --- recording --------------------------------------------------------- *)

let tbl_add tbl name n =
  match Hashtbl.find_opt tbl name with
  | Some r -> r := !r + n
  | None -> Hashtbl.add tbl name (ref n)

let hist_observe hists name v =
  let h =
    match Hashtbl.find_opt hists name with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 16 in
        Hashtbl.add hists name h;
        h
  in
  match Hashtbl.find_opt h v with Some r -> incr r | None -> Hashtbl.add h v (ref 1)

let add name n = if enabled () then tbl_add (sink ()).counters name n

let incr name = add name 1

let observe name v = if enabled () then hist_observe (sink ()).hists name v

let observe_clamped name ~top v =
  if enabled () then
    hist_observe (sink ()).hists name (if v > top then top + 1 else v)

let runtime_add name n = if enabled () then tbl_add (sink ()).rt_counters name n

let runtime_observe name v = if enabled () then hist_observe (sink ()).rt_hists name v

let record_event s name args start_ns dur_ns =
  if s.n_events = Array.length s.events then begin
    let bigger = Array.make (2 * s.n_events) dummy_event in
    Array.blit s.events 0 bigger 0 s.n_events;
    s.events <- bigger
  end;
  s.events.(s.n_events) <-
    { re_name = name; re_args = args; re_start_ns = start_ns; re_dur_ns = dur_ns };
  s.n_events <- s.n_events + 1

let span ?(args = []) name f =
  if not (enabled ()) then f ()
  else begin
    let s = sink () in
    let t0 = now_ns () in
    match f () with
    | v ->
        record_event s name args (t0 - start_ns) (now_ns () - t0);
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        record_event s name args (t0 - start_ns) (now_ns () - t0);
        Printexc.raise_with_backtrace e bt
  end

(* --- snapshots --------------------------------------------------------- *)

type histogram = (int * int) list

type span_stat = { span_count : int; span_total_ns : int; span_max_ns : int }

type lane = {
  lane_id : int;
  lane_counters : (string * int) list;
  lane_histograms : (string * histogram) list;
}

type event = {
  ev_lane : int;
  ev_name : string;
  ev_args : (string * string) list;
  ev_start_ns : int;
  ev_dur_ns : int;
}

type snapshot = {
  counters : (string * int) list;
  histograms : (string * histogram) list;
  spans : (string * span_stat) list;
  lanes : lane list;
}

let sinks () =
  Mutex.lock registry_mutex;
  let l = !registry in
  Mutex.unlock registry_mutex;
  l

let sorted_bindings tbl =
  List.sort compare (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl [])

let sorted_hists hists =
  List.sort compare
    (Hashtbl.fold (fun name h acc -> (name, sorted_bindings h) :: acc) hists [])

(* Merging sums per key, so the result is independent of sink order —
   the registry list order depends on domain spawn interleaving. *)
let merge_counters sinks select =
  let out : (string, int ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s -> Hashtbl.iter (fun name r -> tbl_add out name !r) (select s))
    sinks;
  sorted_bindings out

let merge_hists sinks select =
  let out : (string, (int, int ref) Hashtbl.t) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun s ->
      Hashtbl.iter
        (fun name h ->
          Hashtbl.iter
            (fun v r ->
              let dst =
                match Hashtbl.find_opt out name with
                | Some d -> d
                | None ->
                    let d = Hashtbl.create 16 in
                    Hashtbl.add out name d;
                    d
              in
              match Hashtbl.find_opt dst v with
              | Some c -> c := !c + !r
              | None -> Hashtbl.add dst v (ref !r))
            h)
        (select s))
    sinks;
  sorted_hists out

let events () =
  let all =
    List.concat_map
      (fun s ->
        List.init s.n_events (fun i ->
            let e = s.events.(i) in
            {
              ev_lane = s.lane;
              ev_name = e.re_name;
              ev_args = e.re_args;
              ev_start_ns = e.re_start_ns;
              ev_dur_ns = e.re_dur_ns;
            }))
      (sinks ())
  in
  List.sort (fun a b -> compare (a.ev_start_ns, a.ev_lane) (b.ev_start_ns, b.ev_lane)) all

let snapshot () =
  let sinks = sinks () in
  let span_stats : (string, span_stat ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun s ->
      for i = 0 to s.n_events - 1 do
        let e = s.events.(i) in
        match Hashtbl.find_opt span_stats e.re_name with
        | Some r ->
            r :=
              {
                span_count = !r.span_count + 1;
                span_total_ns = !r.span_total_ns + e.re_dur_ns;
                span_max_ns = Stdlib.max !r.span_max_ns e.re_dur_ns;
              }
        | None ->
            Hashtbl.add span_stats e.re_name
              (ref { span_count = 1; span_total_ns = e.re_dur_ns; span_max_ns = e.re_dur_ns })
      done)
    sinks;
  {
    counters = merge_counters sinks (fun s -> s.counters);
    histograms = merge_hists sinks (fun s -> s.hists);
    spans =
      List.sort compare
        (Hashtbl.fold (fun name r acc -> (name, !r) :: acc) span_stats []);
    lanes =
      List.filter_map
        (fun s ->
          if Hashtbl.length s.rt_counters = 0 && Hashtbl.length s.rt_hists = 0 then None
          else
            Some
              {
                lane_id = s.lane;
                lane_counters = sorted_bindings s.rt_counters;
                lane_histograms = sorted_hists s.rt_hists;
              })
        (List.sort (fun a b -> compare a.lane b.lane) sinks);
  }

(* --- serialization ----------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let buf_concat buf sep emit = function
  | [] -> ()
  | x :: rest ->
      emit x;
      List.iter
        (fun x ->
          Buffer.add_string buf sep;
          emit x)
        rest

let add_hist buf (name, bins) =
  Buffer.add_string buf (Printf.sprintf "\"%s\": [" (escape name));
  buf_concat buf ", "
    (fun (v, c) -> Buffer.add_string buf (Printf.sprintf "{\"value\": %d, \"count\": %d}" v c))
    bins;
  Buffer.add_string buf "]"

let metrics_json () =
  let s = snapshot () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"counters\": {";
  buf_concat buf ", "
    (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "\"%s\": %d" (escape name) v))
    s.counters;
  Buffer.add_string buf "},\n  \"histograms\": {";
  buf_concat buf ", " (add_hist buf) s.histograms;
  Buffer.add_string buf "},\n  \"spans\": {";
  buf_concat buf ", "
    (fun (name, st) ->
      Buffer.add_string buf
        (Printf.sprintf "\"%s\": {\"count\": %d, \"total_ns\": %d, \"max_ns\": %d}"
           (escape name) st.span_count st.span_total_ns st.span_max_ns))
    s.spans;
  Buffer.add_string buf "},\n  \"runtime\": [";
  buf_concat buf ", "
    (fun lane ->
      Buffer.add_string buf (Printf.sprintf "{\"lane\": %d, \"counters\": {" lane.lane_id);
      buf_concat buf ", "
        (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "\"%s\": %d" (escape name) v))
        lane.lane_counters;
      Buffer.add_string buf "}, \"histograms\": {";
      buf_concat buf ", " (add_hist buf) lane.lane_histograms;
      Buffer.add_string buf "}}")
    s.lanes;
  Buffer.add_string buf "]\n}\n";
  Buffer.contents buf

let trace_json () =
  let evs = events () in
  let lanes = List.sort_uniq compare (List.map (fun e -> e.ev_lane) evs) in
  let buf = Buffer.create (256 * (List.length evs + 4)) in
  Buffer.add_string buf "{\"traceEvents\": [\n";
  let emit_event e =
    Buffer.add_string buf
      (Printf.sprintf
         "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"pid\": 1, \"tid\": %d, \
          \"ts\": %.3f, \"dur\": %.3f"
         (escape e.ev_name)
         (escape
            (match String.index_opt e.ev_name '/' with
            | Some i -> String.sub e.ev_name 0 i
            | None -> e.ev_name))
         e.ev_lane
         (float_of_int e.ev_start_ns /. 1e3)
         (float_of_int e.ev_dur_ns /. 1e3));
    if e.ev_args <> [] then begin
      Buffer.add_string buf ", \"args\": {";
      buf_concat buf ", "
        (fun (k, v) ->
          Buffer.add_string buf (Printf.sprintf "\"%s\": \"%s\"" (escape k) (escape v)))
        e.ev_args;
      Buffer.add_string buf "}"
    end;
    Buffer.add_string buf "}"
  in
  let first = ref true in
  List.iter
    (fun lane ->
      if not !first then Buffer.add_string buf ",\n";
      first := false;
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": %d, \
            \"args\": {\"name\": \"domain-%d\"}}"
           lane lane))
    lanes;
  List.iter
    (fun e ->
      if not !first then Buffer.add_string buf ",\n";
      first := false;
      emit_event e)
    evs;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write_file path contents =
  Out_channel.with_open_text path (fun oc -> output_string oc contents)

let write_metrics path = write_file path (metrics_json ())

let write_trace path = write_file path (trace_json ())
