/* Monotonic clock for Wr_obs spans: CLOCK_MONOTONIC nanoseconds as an
   untagged OCaml int (63 bits hold ~146 years of nanoseconds), so a
   timestamp read never allocates. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value wr_obs_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
