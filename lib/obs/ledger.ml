let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let hex64 h = Printf.sprintf "%016Lx" h

let line payload = Printf.sprintf "{\"p\":%s,\"c\":\"%s\"}\n" payload (hex64 (fnv1a64 payload))

let write ~path ~header ~records =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (line header);
      List.iter (fun r -> output_string oc (line r)) records)

let prefix = "{\"p\":"

(* ,"c":"0123456789abcdef"} *)
let suffix_len = 6 + 16 + 2

let parse_line lineno s =
  let n = String.length s in
  let fail msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  if n < String.length prefix + suffix_len + 1 then fail "truncated ledger line"
  else if not (String.starts_with ~prefix s) then fail "missing ledger line prefix"
  else if not (String.sub s (n - 2) 2 = "\"}") then fail "missing ledger line suffix"
  else
    let payload_end = n - suffix_len in
    if String.sub s payload_end 4 <> ",\"c\"" || s.[payload_end + 4] <> ':'
       || s.[payload_end + 5] <> '"'
    then fail "malformed checksum field"
    else
      let payload = String.sub s (String.length prefix) (payload_end - String.length prefix) in
      let crc = String.sub s (payload_end + 6) 16 in
      if crc <> hex64 (fnv1a64 payload) then fail "checksum mismatch"
      else Ok payload

let load path =
  match In_channel.with_open_text path In_channel.input_lines with
  | exception Sys_error msg -> Error msg
  | [] -> Error "empty ledger file"
  | lines -> (
      let rec parse_all i acc = function
        | [] -> Ok (List.rev acc)
        | l :: rest -> (
            match parse_line i l with
            | Ok p -> parse_all (i + 1) (p :: acc) rest
            | Error _ as e -> e)
      in
      match parse_all 1 [] lines with
      | Error _ as e -> e
      | Ok [] -> Error "empty ledger file"
      | Ok (header :: records) -> Ok (header, records))
