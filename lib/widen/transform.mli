(** The widening transform: unroll-and-pack a loop for a width-[y]
    datapath.

    Conceptually the loop is unrolled [y] times and the [y] copies of
    every compactable operation (see {!Compact}) are packed into one
    wide operation of [lanes = y]; the copies of every other operation
    stay scalar.  The transform builds the packed graph directly,
    without materializing the unrolled intermediate:

    {ul
    {- a compactable operation becomes one wide operation defining one
       wide virtual register (its [y] results share the register — the
       extra storage capacity the paper credits to widening);}
    {- a non-compactable operation becomes [y] scalar copies with [y]
       distinct virtual registers — each result occupies a full wide
       register, so no capacity is gained;}
    {- a dependence of distance [d] between original operations becomes
       edges between the copies [j -> (j + d) mod y] with distance
       [(j + d) / y], merged per node pair with the minimum (binding)
       distance;}
    {- stride-1 memory references widen to stride [y] (one wide access
       covers [y] consecutive words per wide iteration);}
    {- the trip count divides by [y] (rounded up).}}

    Width 1 returns the loop unchanged. *)

type stats = {
  width : int;
  original_ops : int;
  wide_ops : int;  (** operations in the transformed body *)
  compactable_ops : int;  (** original operations that packed *)
  scalar_copies : int;  (** scalar operations materialized by unrolling *)
}

val widen : Wr_ir.Loop.t -> width:int -> Wr_ir.Loop.t * stats
(** Raises [Invalid_argument] when [width < 1]. *)

val unroll : Wr_ir.Loop.t -> factor:int -> Wr_ir.Loop.t
(** Plain unrolling, no packing: every operation (scalar or wide) is
    copied [factor] times, memory references shift by one iteration's
    stride per copy, dependences map exactly as in {!widen}, and the
    trip count divides by [factor].  Replicated datapaths need this to
    initiate more than one source iteration per cycle (the modulo
    schedule is quantized at II >= 1); the study unrolls every loop by
    the bus count [X] after widening, so all configurations of equal
    [X*Y] process the same work per scheduled iteration. *)

val for_config : Wr_ir.Loop.t -> buses:int -> width:int -> Wr_ir.Loop.t * stats
(** [widen ~width] followed by [unroll ~factor:buses] — the standard
    preparation of a loop for an [XwY] machine. *)

val pp_stats : Format.formatter -> stats -> unit
