module Ddg = Wr_ir.Ddg
module Operation = Wr_ir.Operation
module Opcode = Wr_ir.Opcode
module Memref = Wr_ir.Memref

type t = {
  compactable : bool array;
  on_cycle : bool array;
  num_compactable : int;
  num_ops : int;
}

let analyze ?(width = 1) g =
  let n = Ddg.num_ops g in
  let on_cycle = Ddg.recurrence_ops g in
  (* Local eligibility: off-cycle, and stride-1 if a memory access. *)
  let eligible =
    Array.init n (fun i ->
        let o = Ddg.op g i in
        (not on_cycle.(i))
        &&
        match o.Operation.mem with
        | Some m -> m.Memref.stride = 1
        | None -> true)
  in
  (* Producer closure: a compactable operation needs every register
     input packed, i.e. live-in or produced by a compactable op.  The
     def-use graph restricted to off-cycle operations is acyclic, so a
     simple fixpoint (deactivate and propagate) terminates quickly. *)
  let compactable = Array.copy eligible in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if compactable.(i) then begin
        let inputs_ok =
          List.for_all
            (fun (x : Ddg.operand) ->
              match x.Ddg.producer with
              | None -> true  (* live-in: broadcast *)
              | Some d ->
                  compactable.(d)
                  (* A packed producer read across iterations must stay
                     lane-aligned: both ops advance [width] source
                     iterations per wide iteration, so only distances
                     that are multiples of the width keep each lane
                     inside one wide register. *)
                  && (width = 1 || x.Ddg.distance mod width = 0))
            (Ddg.operands g i)
        in
        if not inputs_ok then begin
          compactable.(i) <- false;
          changed := true
        end
      end
    done
  done;
  let num_compactable = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 compactable in
  { compactable; on_cycle; num_compactable; num_ops = n }

let fraction t =
  if t.num_ops = 0 then 0.0 else float_of_int t.num_compactable /. float_of_int t.num_ops
