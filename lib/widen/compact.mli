(** Compactability analysis (paper, Section 2).

    Widening only pays off for {e compactable} operations: the same
    operation applied to multiple independent data items that a single
    wide functional unit can process at once.  After unrolling a loop
    [Y] times, the [Y] copies of an operation are compactable into one
    wide operation when

    {ul
    {- the operation is not part of any dependence recurrence (a copy
       would depend on an earlier copy);}
    {- for memory operations, the access has stride 1, so the copies
       touch consecutive words that one wide bus transaction covers
       (the paper: two accesses with a stride other than one must be
       scheduled in different cycles on a wide bus);}
    {- every register input is either loop-invariant (broadcast) or
       itself produced by a compactable operation, so the wide
       operation finds its operands packed in wide registers.  Reading
       a single lane {e out of} a wide register is allowed — ports are
       word-addressable — so scalar consumers of wide producers are
       fine; the closure is only required on the producer side;}
    {- a packed input carried across iterations must have a dependence
       distance divisible by the width: otherwise the consumer's lanes
       would straddle two wide registers of the producer (an alignment
       shift the datapath does not provide), so such consumers stay
       scalar.}} *)

type t = {
  compactable : bool array;  (** indexed by operation id *)
  on_cycle : bool array;  (** operation participates in a recurrence *)
  num_compactable : int;
  num_ops : int;
}

val analyze : ?width:int -> Wr_ir.Ddg.t -> t
(** [width] (default 1 = no alignment constraint) is the packing width
    the analysis is for; it only affects the carried-distance alignment
    rule above. *)

val fraction : t -> float
(** Fraction of operations that are compactable (0 when the graph is
    empty). *)
