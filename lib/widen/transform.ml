module Ddg = Wr_ir.Ddg
module Operation = Wr_ir.Operation
module Opcode = Wr_ir.Opcode
module Memref = Wr_ir.Memref
module Dependence = Wr_ir.Dependence
module Loop = Wr_ir.Loop

type stats = {
  width : int;
  original_ops : int;
  wide_ops : int;
  compactable_ops : int;
  scalar_copies : int;
}

let pp_stats fmt s =
  Format.fprintf fmt "width=%d: %d ops -> %d (%d packed, %d scalar copies)" s.width
    s.original_ops s.wide_ops s.compactable_ops s.scalar_copies

let operand_sources g = Array.init (Ddg.num_ops g) (fun v -> Ddg.operands g v)

(* Shared replication machinery: copy every operation [y] times; the
   operations flagged in [wide] are packed into one wide operation
   instead (their [y] copies merge).  [widen] passes the compactability
   analysis; [unroll] passes all-false. *)
let replicate (loop : Loop.t) ~y ~wide ~suffix =
  let g = loop.Loop.ddg in
  let n = Ddg.num_ops g in
  begin
    (* Assign new node ids: one node for a packed op, [y] for the
       copies of a scalar op. *)
    let node_base = Array.make n 0 in
    let next_node = ref 0 in
    for u = 0 to n - 1 do
      node_base.(u) <- !next_node;
      next_node := !next_node + if wide.(u) then 1 else y
    done;
    let node_of u j = if wide.(u) then node_base.(u) else node_base.(u) + j in
    (* Assign new vregs: defs first, then live-ins (one wide register
       per live-in: the invariant value is broadcast). *)
    let next_vreg = ref 0 in
    let fresh () =
      let v = !next_vreg in
      incr next_vreg;
      v
    in
    let def_vreg = Array.make n [||] in
    for u = 0 to n - 1 do
      match (Ddg.op g u).Operation.def with
      | None -> ()
      | Some _ ->
          def_vreg.(u) <- (if wide.(u) then [| fresh () |] else Array.init y (fun _ -> fresh ()))
    done;
    let live_in_vreg = Hashtbl.create 8 in
    let live_in r =
      match Hashtbl.find_opt live_in_vreg r with
      | Some v -> v
      | None ->
          let v = fresh () in
          Hashtbl.add live_in_vreg r v;
          v
    in
    let sources = operand_sources g in
    (* Uses of copy [j] of operation [v] (or of the packed op when
       [j = -1], in which case scalar producers are impossible by the
       compactability closure). *)
    (* Operands of copy [j] of operation [v] (packed op when [j = -1]):
       the register read plus, when a scalar copy reads a packed
       producer, which lane of the wide register holds its value.  An
       operand that already selected a lane in the source graph (this
       graph was itself widened) keeps its selection: its producer's
       copies preserve their lane layout. *)
    let uses_of v j =
      List.map
        (fun (o : Ddg.operand) ->
          match o.Ddg.producer with
          | None -> (live_in o.Ddg.reg, o.Ddg.lane)
          | Some u ->
              if wide.(u) then
                if j < 0 then (def_vreg.(u).(0), None)
                else
                  let lane = ((j - o.Ddg.distance) mod y + y) mod y in
                  (def_vreg.(u).(0), Some lane)
              else begin
                assert (j >= 0);
                let lane = ((j - o.Ddg.distance) mod y + y) mod y in
                (def_vreg.(u).(lane), o.Ddg.lane)
              end)
        sources.(v)
    in
    let new_ops = Array.make !next_node None in
    for u = 0 to n - 1 do
      let o = Ddg.op g u in
      if wide.(u) then begin
        let mem =
          Option.map
            (fun (m : Memref.t) ->
              (* Stride-1 accesses widen: one access per wide iteration
                 covering [y] consecutive words. *)
              Memref.make ~array_id:m.Memref.array_id ~stride:(m.Memref.stride * y)
                ~offset:m.Memref.offset)
            o.Operation.mem
        in
        let id = node_of u 0 in
        let operands = uses_of u (-1) in
        new_ops.(id) <-
          Some
            (Operation.make ~id ~opcode:o.Operation.opcode
               ?def:(match o.Operation.def with Some _ -> Some def_vreg.(u).(0) | None -> None)
               ~uses:(List.map fst operands)
               ~lane_sel:(List.map snd operands)
               ?mem ~lanes:y ())
      end
      else
        for j = 0 to y - 1 do
          let mem =
            Option.map
              (fun (m : Memref.t) ->
                Memref.make ~array_id:m.Memref.array_id ~stride:(m.Memref.stride * y)
                  ~offset:(m.Memref.offset + (m.Memref.stride * j)))
              o.Operation.mem
          in
          let id = node_of u j in
          let operands = uses_of u j in
          new_ops.(id) <-
            Some
              (Operation.make ~id ~opcode:o.Operation.opcode
                 ?def:
                   (match o.Operation.def with
                   | Some _ -> Some def_vreg.(u).(j)
                   | None -> None)
                 ~uses:(List.map fst operands)
                 ~lane_sel:(List.map snd operands)
                 ?mem ~lanes:o.Operation.lanes ())
        done
    done;
    let ops = Array.map Option.get new_ops in
    (* Edges: member edges merged per (src, dst, kind) with the minimum
       (binding) distance. *)
    let merged : (int * int * Dependence.kind, int) Hashtbl.t = Hashtbl.create 64 in
    let add src dst kind dd =
      let key = (src, dst, kind) in
      match Hashtbl.find_opt merged key with
      | Some old -> if dd < old then Hashtbl.replace merged key dd
      | None -> Hashtbl.add merged key dd
    in
    List.iter
      (fun (e : Dependence.t) ->
        for j = 0 to y - 1 do
          let j' = (j + e.distance) mod y in
          let dd = (j + e.distance) / y in
          add (node_of e.src j) (node_of e.dst j') e.kind dd
        done)
      (Ddg.edges g);
    let edges =
      Hashtbl.fold
        (fun (src, dst, kind) distance acc -> Dependence.make ~src ~dst ~kind ~distance :: acc)
        merged []
    in
    let ddg = Ddg.create ~num_vregs:!next_vreg ~ops ~edges in
    let trip_count = Stdlib.max 1 ((loop.Loop.trip_count + y - 1) / y) in
    Loop.make
      ~name:(loop.Loop.name ^ suffix)
      ~ddg ~trip_count ~weight:loop.Loop.weight ()
  end

let widen (loop : Loop.t) ~width:y =
  if y < 1 then invalid_arg "Transform.widen: width must be >= 1";
  let g = loop.Loop.ddg in
  let n = Ddg.num_ops g in
  let analysis = Compact.analyze ~width:y g in
  let compactable_ops = analysis.Compact.num_compactable in
  if y = 1 then
    ( loop,
      { width = 1; original_ops = n; wide_ops = n; compactable_ops; scalar_copies = 0 } )
  else
    let loop' =
      replicate loop ~y ~wide:analysis.Compact.compactable
        ~suffix:(Printf.sprintf "@w%d" y)
    in
    let scalar_copies = (n - compactable_ops) * y in
    ( loop',
      {
        width = y;
        original_ops = n;
        wide_ops = compactable_ops + scalar_copies;
        compactable_ops;
        scalar_copies;
      } )

let unroll (loop : Loop.t) ~factor =
  if factor < 1 then invalid_arg "Transform.unroll: factor must be >= 1";
  if factor = 1 then loop
  else
    let n = Ddg.num_ops loop.Loop.ddg in
    replicate loop ~y:factor ~wide:(Array.make n false)
      ~suffix:(Printf.sprintf "@u%d" factor)

let for_config (loop : Loop.t) ~buses ~width =
  let wide, stats = widen loop ~width in
  (unroll wide ~factor:buses, stats)
