(* Fixed domain pool with a shared FIFO of tasks.

   Concurrency discipline: a batch's caller never blocks while the
   queue is non-empty — it pops and runs tasks itself.  Any thread
   sleeping on a batch therefore observed an empty queue, meaning every
   unfinished task of its batch is executing in some other domain; by
   induction over nesting depth those tasks terminate, so the sleeper
   is always woken.  This is what makes nested [parallel_map] calls on
   the same pool safe. *)

type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  pending : (unit -> unit) Queue.t;
  mutable shutting_down : bool;
  mutable workers : unit Domain.t array;
  jobs : int;
}

let parse_jobs s =
  match int_of_string_opt (String.trim s) with Some n when n >= 1 -> Some n | _ -> None

(* A bad WR_JOBS must not be silently swallowed (a typo like
   WR_JOBS=-4 or WR_JOBS=four would otherwise quietly run at the core
   count); warn once, naming both the bad value and the default used. *)
let default_jobs () =
  match Sys.getenv_opt "WR_JOBS" with
  | None -> Domain.recommended_domain_count ()
  | Some s -> (
      match parse_jobs s with
      | Some n -> n
      | None ->
          let d = Domain.recommended_domain_count () in
          Env.warn_invalid ~name:"WR_JOBS" ~value:s ~expected:"a positive integer"
            ~default:(Printf.sprintf "the default of %d" d);
          d)

let jobs t = t.jobs

module Obs = Wr_obs.Obs

(* Telemetry: each executed task is a span on the executing domain's
   lane, and per-worker busy time and task counts accumulate as
   runtime (placement-dependent) metrics.  All of it is behind the
   single [Obs.enabled] branch.

   Tasks nest (a task's own [parallel_map] makes the domain "help" run
   inner tasks), so busy time is only accumulated for the outermost
   task of each domain — otherwise a helping domain would double-count
   every nested task and report more busy time than wall time. *)
let task_depth = Domain.DLS.new_key (fun () -> ref 0)

let run_task task =
  if Obs.enabled () then begin
    let depth = Domain.DLS.get task_depth in
    Stdlib.incr depth;
    let t0 = Obs.now_ns () in
    let finish () =
      Stdlib.decr depth;
      if !depth = 0 then Obs.runtime_add "pool/busy_ns" (Obs.now_ns () - t0);
      Obs.runtime_add "pool/tasks_run" 1
    in
    (match Obs.span "pool/task" task with
    | () -> finish ()
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish ();
        Printexc.raise_with_backtrace e bt)
  end
  else task ()

let worker_loop t =
  (* Drain the queue before honouring shutdown: a task accepted by
     [submit] must run even when [shutdown] lands right behind it. *)
  let rec next_task () =
    match Queue.take_opt t.pending with
    | Some _ as task -> task
    | None ->
        if t.shutting_down then None
        else begin
          if Obs.enabled () then begin
            let t0 = Obs.now_ns () in
            Condition.wait t.nonempty t.mutex;
            Obs.runtime_add "pool/idle_ns" (Obs.now_ns () - t0)
          end
          else Condition.wait t.nonempty t.mutex;
          next_task ()
        end
  in
  let rec run () =
    Mutex.lock t.mutex;
    let task = next_task () in
    Mutex.unlock t.mutex;
    match task with
    | None -> ()
    | Some task ->
        run_task task;
        run ()
  in
  run ()

let create ?jobs () =
  let jobs =
    match jobs with
    | None -> default_jobs ()
    | Some j when j >= 1 -> j
    | Some j -> invalid_arg (Printf.sprintf "Pool.create: jobs must be >= 1, got %d" j)
  in
  let t =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      pending = Queue.create ();
      shutting_down = false;
      workers = [||];
      jobs;
    }
  in
  t.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.shutting_down <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.workers;
  t.workers <- [||];
  (* Run anything still queued in the calling domain (a size-1 pool has
     no workers to drain it): every task accepted by [submit] runs. *)
  let rec drain () =
    Mutex.lock t.mutex;
    let task = Queue.take_opt t.pending in
    Mutex.unlock t.mutex;
    match task with
    | Some task ->
        run_task task;
        drain ()
    | None -> ()
  in
  drain ()

let submit t task =
  Mutex.lock t.mutex;
  if t.shutting_down then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.add task t.pending;
  (* Sample the gauge under the same mutex that guards the queue (and
     after the add, so the submitted task is counted): deriving depth
     from submitted-minus-run counters instead would go transiently
     negative under work-helping, where a task can finish before the
     submitting thread's counter update is visible. *)
  if Obs.enabled () then begin
    Obs.runtime_add "pool/tasks_submitted" 1;
    Obs.runtime_observe "pool/queue_depth" (Queue.length t.pending)
  end;
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex

let queue_depth t =
  Mutex.lock t.mutex;
  let n = Queue.length t.pending in
  Mutex.unlock t.mutex;
  n

(* --- default pool ----------------------------------------------------- *)

let default_pool : t option ref = ref None

let default_mutex = Mutex.create ()

let default () =
  Mutex.lock default_mutex;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create () in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_mutex;
  p

let set_default_jobs j =
  if j < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  Mutex.lock default_mutex;
  let old = !default_pool in
  default_pool := Some (create ~jobs:j ());
  Mutex.unlock default_mutex;
  (* The swap is already visible, so new [default ()] callers get the
     fresh pool; shutting the old one down then drains every task it
     accepted (its workers finish the queue before exiting, and
     [shutdown] itself runs any leftovers), so a batch in flight on the
     old pool completes with correct results.  A domain that raced
     [default ()] and submits after the drain gets the explicit
     [Invalid_argument] from {!submit} rather than a silent hang. *)
  Option.iter shutdown old

(* --- batches ----------------------------------------------------------- *)

exception Batch_failure of (int * exn * Printexc.raw_backtrace) list

let () =
  Printexc.register_printer (function
    | Batch_failure fails ->
        Some
          (Printf.sprintf "Wr_util.Pool.Batch_failure: %d item(s) failed: %s"
             (List.length fails)
             (String.concat "; "
                (List.map
                   (fun (i, e, _) -> Printf.sprintf "[%d] %s" i (Printexc.to_string e))
                   fails)))
    | _ -> None)

type batch = {
  b_mutex : Mutex.t;
  b_done : Condition.t;
  mutable unfinished : int;
  mutable failures : (int * exn * Printexc.raw_backtrace) list;
}

let finish_one batch fails =
  Mutex.lock batch.b_mutex;
  batch.failures <- List.rev_append fails batch.failures;
  batch.unfinished <- batch.unfinished - 1;
  if batch.unfinished = 0 then Condition.broadcast batch.b_done;
  Mutex.unlock batch.b_mutex

(* Apply [f] to every item of [lo, lo+len); a failing item is recorded
   with its input index and the rest of the chunk still runs, so one
   bad point cannot shadow failures (or discard results) behind it. *)
let run_items arr ~f out ~lo ~len =
  let fails = ref [] in
  for i = lo to lo + len - 1 do
    match f arr.(i) with
    | v -> out.(i) <- Some v
    | exception e -> fails := (i, e, Printexc.get_raw_backtrace ()) :: !fails
  done;
  !fails

let guarded batch arr ~f out ~lo ~len () =
  match run_items arr ~f out ~lo ~len with
  | fails -> finish_one batch fails
  | exception e ->
      (* run_items only raises on an asynchronous exception; never leave
         the batch hanging. *)
      finish_one batch [ (lo, e, Printexc.get_raw_backtrace ()) ]

(* Run queued tasks until the batch completes, then sleep for stragglers
   still executing in other domains. *)
let help_until_done t batch =
  let rec drain () =
    let finished =
      Mutex.lock batch.b_mutex;
      let f = batch.unfinished = 0 in
      Mutex.unlock batch.b_mutex;
      f
    in
    if not finished then begin
      Mutex.lock t.mutex;
      let task = Queue.take_opt t.pending in
      Mutex.unlock t.mutex;
      match task with
      | Some task ->
          run_task task;
          drain ()
      | None ->
          Mutex.lock batch.b_mutex;
          while batch.unfinished > 0 do
            Condition.wait batch.b_done batch.b_mutex
          done;
          Mutex.unlock batch.b_mutex
    end
  in
  drain ()

(* Raise if any item failed, sorted by input index so the report (and
   any test asserting on it) is deterministic for every pool size. *)
let raise_failures = function
  | [] -> ()
  | fails ->
      raise
        (Batch_failure (List.sort (fun (a, _, _) (b, _, _) -> compare a b) fails))

let collect out =
  Array.map
    (function Some v -> v | None -> failwith "Pool.parallel_map: missing item result")
    out

let parallel_map ?pool arr ~f =
  let n = Array.length arr in
  if n = 0 then [||]
  else
    let t = match pool with Some p -> p | None -> default () in
    if t.jobs = 1 || n = 1 then begin
      (* Sequential path, same contract as the parallel one: every item
         is attempted and all failures are reported together, so jobs=1
         and jobs=N are behaviourally identical. *)
      let out = Array.make n None in
      raise_failures (run_items arr ~f out ~lo:0 ~len:n);
      collect out
    end
    else begin
      (* Several chunks per worker so an unlucky chunk of hard loops
         doesn't serialize the tail of the batch. *)
      let chunk_size = Stdlib.max 1 ((n + (4 * t.jobs) - 1) / (4 * t.jobs)) in
      let nchunks = (n + chunk_size - 1) / chunk_size in
      let out = Array.make n None in
      let batch =
        {
          b_mutex = Mutex.create ();
          b_done = Condition.create ();
          unfinished = nchunks;
          failures = [];
        }
      in
      for c = 0 to nchunks - 1 do
        let lo = c * chunk_size in
        let len = Stdlib.min chunk_size (n - lo) in
        submit t (guarded batch arr ~f out ~lo ~len)
      done;
      help_until_done t batch;
      raise_failures batch.failures;
      collect out
    end

let parallel_list_map ?pool l ~f =
  Array.to_list (parallel_map ?pool (Array.of_list l) ~f)
