let sum xs =
  (* Kahan summation: the experiment drivers accumulate millions of
     per-loop cycle counts, where naive summation loses precision. *)
  let s = ref 0.0 and c = ref 0.0 in
  Array.iter
    (fun x ->
      let y = x -. !c in
      let t = !s +. y in
      c := t -. !s -. y;
      s := t)
    xs;
  !s

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else sum xs /. float_of_int n

let geomean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    Array.iter (fun x -> if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value") xs;
    exp (sum (Array.map log xs) /. float_of_int n)
  end

let harmonic_mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    Array.iter (fun x -> if x <= 0.0 then invalid_arg "Stats.harmonic_mean: non-positive value") xs;
    float_of_int n /. sum (Array.map (fun x -> 1.0 /. x) xs)
  end

let stddev xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else
    let m = mean xs in
    sqrt (sum (Array.map (fun x -> (x -. m) ** 2.0) xs) /. float_of_int n)

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let median xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.median: empty array";
  let ys = sorted_copy xs in
  if n mod 2 = 1 then ys.(n / 2) else (ys.((n / 2) - 1) +. ys.(n / 2)) /. 2.0

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let ys = sorted_copy xs in
  if n = 1 then ys.(0)
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (ys.(lo) *. (1.0 -. frac)) +. (ys.(hi) *. frac)

let weighted_mean pairs =
  let wsum = sum (Array.map snd pairs) in
  if wsum = 0.0 then 0.0
  else sum (Array.map (fun (v, w) -> v *. w) pairs) /. wsum

let minimum xs =
  if Array.length xs = 0 then invalid_arg "Stats.minimum: empty array";
  Array.fold_left Stdlib.min xs.(0) xs

let maximum xs =
  if Array.length xs = 0 then invalid_arg "Stats.maximum: empty array";
  Array.fold_left Stdlib.max xs.(0) xs
