type t = { path : string; mutable released : bool }

let pid_alive pid =
  if pid <= 0 then false
  else
    match Unix.kill pid 0 with
    | () -> true
    | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
    (* EPERM: the pid exists but is owned by someone else — alive.  Any
       other failure is read conservatively as alive, so we never break
       a lock we cannot prove stale. *)
    | exception Unix.Unix_error _ -> true

let read_pid path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let contents =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> try really_input_string ic (min 64 (in_channel_length ic)) with _ -> "")
      in
      int_of_string_opt (String.trim contents)

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let rec acquire_attempts path attempts =
  match Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> write_all fd (string_of_int (Unix.getpid ()) ^ "\n"));
      Ok { path; released = false }
  | exception Unix.Unix_error (Unix.EEXIST, _, _) ->
      if attempts <= 0 then
        Error (Printf.sprintf "lock %s: still contended after repeated stale-lock breaks" path)
      else begin
        match read_pid path with
        | Some pid when pid_alive pid ->
            Error
              (Printf.sprintf
                 "lock %s is held by live process %d; a second writer would corrupt the \
                  resource (remove the lock file only if that process is not a real owner)"
                 path pid)
        | _ ->
            (* Dead owner, or a corpse with no pid written: break it and
               retry the atomic create.  A concurrent breaker may win the
               recreate race, in which case the next round reads a live
               pid and reports it. *)
            (try Unix.unlink path with Unix.Unix_error _ -> ());
            acquire_attempts path (attempts - 1)
      end
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "lock %s: %s" path (Unix.error_message e))

let acquire path = acquire_attempts path 5

let release t =
  if not t.released then begin
    t.released <- true;
    try Unix.unlink t.path with Unix.Unix_error _ | Sys_error _ -> ()
  end

let path t = t.path
