module Obs = Wr_obs.Obs

exception Expired

let () =
  Printexc.register_printer (function
    | Expired -> Some "Wr_util.Deadline.Expired (loop wall-clock budget exceeded)"
    | _ -> None)

(* Fast path: processes that never install a budget pay one atomic
   load per check, not a DLS lookup. *)
let any_budget = Atomic.make false

(* 0 = no deadline; otherwise an absolute Obs.now_ns timestamp. *)
let deadline_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let with_budget_ms ms f =
  Atomic.set any_budget true;
  let slot = Domain.DLS.get deadline_key in
  let saved = !slot in
  let dl = Obs.now_ns () + (ms * 1_000_000) in
  slot := (if saved <> 0 then Stdlib.min saved dl else dl);
  Fun.protect ~finally:(fun () -> slot := saved) f

let active () = Atomic.get any_budget && !(Domain.DLS.get deadline_key) <> 0

let check () =
  if Atomic.get any_budget then begin
    let dl = !(Domain.DLS.get deadline_key) in
    if dl <> 0 && Obs.now_ns () > dl then raise Expired
  end
