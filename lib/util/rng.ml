type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64 output function: mix the advanced state through two
   xor-shift-multiply rounds (variant "mix13" from the reference
   implementation). *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  (* Mixing again decorrelates the child stream from the parent. *)
  { state = mix64 seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits: OCaml ints are 63-bit, so converting a 63-bit value
     would wrap negative when the top bit is set. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 high bits give a uniform double in [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let choose_weighted t items =
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 items in
  if total <= 0.0 then invalid_arg "Rng.choose_weighted: weights sum to zero";
  let x = float t total in
  let n = Array.length items in
  let rec pick i acc =
    if i = n - 1 then fst items.(i)
    else
      let acc = acc +. snd items.(i) in
      if x < acc then fst items.(i) else pick (i + 1) acc
  in
  pick 0 0.0

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p must be in (0,1]";
  if p = 1.0 then 0
  else
    let u = Stdlib.max 1e-300 (float t 1.0) in
    int_of_float (Float.of_int 0 +. floor (log u /. log (1.0 -. p)))

let exponential t ~mean =
  let u = Stdlib.max 1e-300 (float t 1.0) in
  -.mean *. log u
