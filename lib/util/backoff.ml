let delay_ms ~base_ms ~max_ms ~jitter ~rng ~attempt =
  if base_ms < 1 then invalid_arg "Backoff.delay_ms: base_ms must be >= 1";
  if jitter < 0.0 || jitter >= 1.0 then
    invalid_arg "Backoff.delay_ms: jitter must be in [0, 1)";
  (* Cap the exponent well before the multiply can overflow. *)
  let exp = min attempt 20 in
  let raw = min max_ms (base_ms * (1 lsl exp)) in
  let factor = 1.0 -. jitter +. Rng.float rng (2.0 *. jitter) in
  max 1 (int_of_float (float_of_int raw *. factor))

let default_sleep ms = Unix.sleepf (float_of_int ms /. 1000.0)

let retry ?(sleep = default_sleep) ~attempts ~base_ms ~max_ms ~jitter ~seed ~retryable f =
  if attempts < 1 then invalid_arg "Backoff.retry: attempts must be >= 1";
  let rng = Rng.create ~seed in
  let rec go attempt =
    match f ~attempt with
    | Ok _ as ok -> ok
    | Error e as err ->
        if attempt + 1 >= attempts || not (retryable e) then err
        else begin
          sleep (delay_ms ~base_ms ~max_ms ~jitter ~rng ~attempt);
          go (attempt + 1)
        end
  in
  go 0
