(** Uniform parsing of [WR_*] environment variables.

    Every variable in the project follows one discipline: an unset
    variable means the documented default, a well-formed value is
    honoured, and a malformed value falls back to the default with a
    one-line warning on stderr (printed once per variable per process)
    naming both the bad value and the default used — a typo like
    [WR_VERIFY=ture] or [WR_JOBS=-4] must never silently change
    behaviour.  See the [WR_*] table in README.md for the full list. *)

val warn_invalid : name:string -> value:string -> expected:string -> default:string -> unit
(** Print the standard one-line warning for a malformed value, at most
    once per [name] per process (thread-safe). *)

val bool : ?default:bool -> string -> bool
(** Read a boolean variable: [1]/[true]/[yes]/[on] is [true],
    [0]/[false]/[no]/[off] and the empty string are [false], unset is
    [default] (itself defaulting to [false]), anything else warns via
    {!warn_invalid} and yields [default]. *)

val parse_bool : string -> bool option
(** The boolean grammar above, without the environment lookup. *)

val int : ?min:int -> default:int -> string -> int
(** Read an integer variable; values below [min] (default: no lower
    bound) count as malformed and warn via {!warn_invalid}. *)

val float : ?min:float -> default:float -> string -> float
(** Read a float variable; NaN and values below [min] (default: no
    lower bound) count as malformed and warn via {!warn_invalid}. *)
