(** Deterministic fault injection for resilience testing.

    A fault spec names a pipeline {e site} (e.g. ["sched"], ["alloc"],
    ["spill"], ["widen"]), a per-hit probability, and a SplitMix64 seed;
    instrumented code calls {!hit} at each site and the spec decides —
    replayably — whether to raise {!Injected} (or spin for a configured
    delay) there.  Specs come from the [WR_FAULT] environment variable
    ([site:prob:seed], optionally [:delay=MS], comma-separated for
    several sites) or from {!configure}.

    {2 Determinism}

    Decisions must not depend on pool size or task interleaving, so
    they are not drawn from one global stream.  Instead the evaluation
    engine brackets each (loop, machine point) evaluation with
    {!with_context}, and every site draws from a stream seeded by
    [(spec seed, context, site)] with a per-context draw counter kept
    in domain-local storage.  A given point therefore sees the same
    faults whether the study runs on 1 domain or 16 — and even when two
    domains race to evaluate the same memo key, both compute the same
    (possibly degraded) result.  Outside any context, {!hit} never
    fires: direct CLI scheduling, the fuzzer, and unit tests are
    unaffected by a stray [WR_FAULT].

    When no spec is configured, {!hit} is a single atomic load. *)

type action =
  | Raise  (** raise {!Injected} at the site *)
  | Delay_ms of int  (** spin for the given wall-clock milliseconds *)

type spec = { site : string; prob : float; seed : int64; action : action }

exception Injected of string
(** Argument is the site name.  Raised by {!hit}; the evaluation
    engine's supervision turns it into a quarantined, degraded point. *)

val parse : string -> (spec list, string) result
(** Parse a [WR_FAULT] value: comma-separated [site:prob:seed] or
    [site:prob:seed:delay=MS] specs ([prob] a float in [0,1]; [seed]
    accepts [0x] hex). *)

val configure : spec list -> unit
(** Replace the active specs (programmatic override of [WR_FAULT];
    [configure []] disables injection). *)

val active : unit -> bool
(** Whether any spec is configured (from [WR_FAULT] or {!configure}). *)

val specs : unit -> spec list

val with_context : string -> (unit -> 'a) -> 'a
(** [with_context key f] runs [f] with a fresh per-site draw stream
    deterministically derived from [key]; restores the previous context
    (if any) on exit.  The key should uniquely name the unit of work,
    e.g. ["suite|index|config|registers|cycles"]. *)

val hit : string -> unit
(** Maybe inject at the named site: no-op unless a spec for the site is
    configured {e and} a {!with_context} is in scope. *)

val injected : unit -> int
(** Total injections performed since process start (both raises and
    delays), across all domains. *)
