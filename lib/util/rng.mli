(** Deterministic pseudo-random number generation.

    All randomness in the library flows through this module so that the
    synthetic workload (and therefore every experiment) is bit-for-bit
    reproducible across runs and machines.  The generator is SplitMix64
    (Steele, Lea & Flood, OOPSLA 2014): a tiny, high-quality, splittable
    64-bit generator with a one-word state. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream.  Used to
    give every synthetic loop its own sub-stream so that changing how
    many numbers one loop consumes does not perturb the next loop. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val choose : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val choose_weighted : t -> ('a * float) array -> 'a
(** [choose_weighted t items] picks an element with probability
    proportional to its weight.  Weights must be non-negative with a
    positive sum. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val geometric : t -> p:float -> int
(** [geometric t ~p] is the number of failures before the first success
    of a Bernoulli([p]) sequence; mean [(1-p)/p].  [p] must be in
    (0, 1]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean. *)
