module Obs = Wr_obs.Obs

type action = Raise | Delay_ms of int

type spec = { site : string; prob : float; seed : int64; action : action }

exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected site -> Some (Printf.sprintf "Wr_util.Fault.Injected(%s)" site)
    | _ -> None)

(* --- spec parsing ----------------------------------------------------- *)

let parse_one s =
  let ( let* ) = Result.bind in
  match String.split_on_char ':' (String.trim s) with
  | site :: prob :: seed :: rest when site <> "" ->
      let* prob =
        match float_of_string_opt prob with
        | Some p when p >= 0.0 && p <= 1.0 -> Ok p
        | Some p -> Error (Printf.sprintf "probability %g out of [0,1]" p)
        | None -> Error (Printf.sprintf "bad probability %S" prob)
      in
      let* seed =
        match Int64.of_string_opt seed with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "bad seed %S" seed)
      in
      let* action =
        match rest with
        | [] -> Ok Raise
        | [ d ] when String.length d > 6 && String.sub d 0 6 = "delay=" -> (
            match int_of_string_opt (String.sub d 6 (String.length d - 6)) with
            | Some ms when ms >= 0 -> Ok (Delay_ms ms)
            | _ -> Error (Printf.sprintf "bad delay %S" d))
        | _ -> Error (Printf.sprintf "trailing fields in %S" s)
      in
      Ok { site; prob; seed; action }
  | _ -> Error (Printf.sprintf "malformed spec %S (want site:prob:seed[:delay=MS])" s)

let parse s =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | piece :: rest -> ( match parse_one piece with Ok sp -> go (sp :: acc) rest | Error e -> Error e)
  in
  go [] (String.split_on_char ',' s)

(* --- active specs ----------------------------------------------------- *)

let current : spec list Atomic.t =
  Atomic.make
    (match Sys.getenv_opt "WR_FAULT" with
    | None | Some "" -> []
    | Some s -> (
        match parse s with
        | Ok specs -> specs
        | Error e ->
            Env.warn_invalid ~name:"WR_FAULT" ~value:s
              ~expected:(Printf.sprintf "site:prob:seed[:delay=MS][,...] — %s" e)
              ~default:"no fault injection";
            []))

let configure specs = Atomic.set current specs

let specs () = Atomic.get current

let active () = Atomic.get current <> []

let injected_count = Atomic.make 0

let injected () = Atomic.get injected_count

(* --- deterministic per-context streams -------------------------------- *)

let fnv1a64 s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    s;
  !h

type context = { ctx_hash : int64; streams : (string, Rng.t) Hashtbl.t }

let context_key : context option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let with_context key f =
  let slot = Domain.DLS.get context_key in
  let saved = !slot in
  slot := Some { ctx_hash = fnv1a64 key; streams = Hashtbl.create 4 };
  Fun.protect ~finally:(fun () -> slot := saved) f

(* Spin rather than sleep: the point of a delay fault is to burn the
   loop's wall-clock budget, and Wr_util must stay Unix-free. *)
let spin_ms ms =
  let deadline = Obs.now_ns () + (ms * 1_000_000) in
  while Obs.now_ns () < deadline do
    Domain.cpu_relax ()
  done

let fire site action =
  Atomic.incr injected_count;
  if Obs.enabled () then Obs.incr ("fault/injected/" ^ site);
  match action with Raise -> raise (Injected site) | Delay_ms ms -> spin_ms ms

let hit site =
  match Atomic.get current with
  | [] -> ()
  | specs -> (
      match !(Domain.DLS.get context_key) with
      | None -> ()
      | Some ctx ->
          List.iter
            (fun sp ->
              if String.equal sp.site site then begin
                let rng =
                  match Hashtbl.find_opt ctx.streams site with
                  | Some r -> r
                  | None ->
                      (* Seed from (spec seed, context, site): the draw
                         sequence within one evaluation is a pure
                         function of the point being evaluated. *)
                      let seed =
                        Int64.add sp.seed
                          (Int64.add
                             (Int64.mul ctx.ctx_hash 0x9E3779B97F4A7C15L)
                             (fnv1a64 site))
                      in
                      let r = Rng.create ~seed in
                      Hashtbl.add ctx.streams site r;
                      r
                in
                if Rng.float rng 1.0 < sp.prob then fire site sp.action
              end)
            specs)
