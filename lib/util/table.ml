type align = Left | Right | Center

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let gap = width - n in
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s
    | Center ->
        let l = gap / 2 in
        String.make l ' ' ^ s ^ String.make (gap - l) ' '

let rule widths =
  "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"

let render ?title ~headers ?aligns rows =
  let ncols =
    List.fold_left (fun acc r -> Stdlib.max acc (List.length r)) (List.length headers) rows
  in
  let get lst i = match List.nth_opt lst i with Some x -> x | None -> "" in
  let aligns =
    match aligns with
    | Some a -> Array.init ncols (fun i -> match List.nth_opt a i with Some x -> x | None -> Right)
    | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let widths = Array.make ncols 0 in
  let feed row =
    List.iteri (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell)) row
  in
  feed headers;
  List.iter feed rows;
  let widths = Array.to_list widths in
  let line row =
    let cells =
      List.mapi
        (fun i w -> " " ^ pad (Array.get aligns i) w (get row i) ^ " ")
        widths
    in
    "|" ^ String.concat "|" cells ^ "|"
  in
  let buf = Buffer.create 1024 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  Buffer.add_string buf (rule widths);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (rule widths);
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (line r);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf (rule widths);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let render_floats ?title ~headers ?(decimals = 2) ~row_label ~cells items =
  let fmt x = Printf.sprintf "%.*f" decimals x in
  let rows = List.map (fun it -> row_label it :: List.map fmt (cells it)) items in
  render ?title ~headers rows

let bar_chart ?title ?(width = 50) ?(unit = "") entries =
  let vmax = List.fold_left (fun acc (_, v) -> Stdlib.max acc v) 0.0 entries in
  let label_w =
    List.fold_left (fun acc (l, _) -> Stdlib.max acc (String.length l)) 0 entries
  in
  let buf = Buffer.create 1024 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  List.iter
    (fun (label, v) ->
      if v < 0.0 then invalid_arg "Table.bar_chart: negative value";
      let n =
        if vmax = 0.0 then 0 else int_of_float (Float.round (v /. vmax *. float_of_int width))
      in
      Buffer.add_string buf
        (Printf.sprintf "%s | %s %.3f%s\n" (pad Left label_w label) (String.make n '#') v unit))
    entries;
  Buffer.contents buf

(* Shared plotting grid for [scatter] and [series_chart]. *)
let plot_grid ?title ?(width = 64) ?(height = 20) ?(x_label = "") ?(y_label = "") points =
  match points with
  | [] -> "(no points)\n"
  | _ ->
      let xs = List.map (fun (_, x, _) -> x) points in
      let ys = List.map (fun (_, _, y) -> y) points in
      let xmin = List.fold_left Stdlib.min (List.hd xs) xs in
      let xmax = List.fold_left Stdlib.max (List.hd xs) xs in
      let ymin = List.fold_left Stdlib.min (List.hd ys) ys in
      let ymax = List.fold_left Stdlib.max (List.hd ys) ys in
      let xspan = if xmax = xmin then 1.0 else xmax -. xmin in
      let yspan = if ymax = ymin then 1.0 else ymax -. ymin in
      let grid = Array.make_matrix height width ' ' in
      List.iter
        (fun (c, x, y) ->
          let i = int_of_float ((x -. xmin) /. xspan *. float_of_int (width - 1)) in
          let j = int_of_float ((y -. ymin) /. yspan *. float_of_int (height - 1)) in
          let j = height - 1 - j in
          grid.(j).(i) <- c)
        points;
      let buf = Buffer.create 2048 in
      (match title with
      | Some t ->
          Buffer.add_string buf t;
          Buffer.add_char buf '\n'
      | None -> ());
      if y_label <> "" then Buffer.add_string buf (y_label ^ "\n");
      Buffer.add_string buf (Printf.sprintf "%10.3f +\n" ymax);
      Array.iter
        (fun row ->
          Buffer.add_string buf "           |";
          Buffer.add_string buf (String.init width (Array.get row));
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_string buf (Printf.sprintf "%10.3f +%s\n" ymin (String.make width '-'));
      Buffer.add_string buf
        (Printf.sprintf "            %.3f%s%.3f  %s\n" xmin
           (String.make (Stdlib.max 1 (width - 16)) ' ')
           xmax x_label);
      Buffer.contents buf

let scatter ?title ?width ?height ?x_label ?y_label labelled_points =
  let points =
    List.map
      (fun (label, x, y) ->
        let c = if String.length label = 0 then '*' else label.[0] in
        (c, x, y))
      labelled_points
  in
  let body = plot_grid ?title ?width ?height ?x_label ?y_label points in
  let legend =
    List.map
      (fun (label, x, y) ->
        let c = if String.length label = 0 then '*' else label.[0] in
        Printf.sprintf "  %c = %-20s (%.3f, %.3f)" c label x y)
      labelled_points
  in
  body ^ String.concat "\n" legend ^ "\n"

let series_chart ?title ?width ?height ~series () =
  let marks = "*o+x#@%&=~" in
  let points =
    List.concat
      (List.mapi
         (fun i (_, pts) ->
           let c = marks.[i mod String.length marks] in
           List.map (fun (x, y) -> (c, x, y)) pts)
         series)
  in
  let body = plot_grid ?title ?width ?height points in
  let legend =
    List.mapi
      (fun i (name, _) -> Printf.sprintf "  %c = %s" marks.[i mod String.length marks] name)
      series
  in
  body ^ String.concat "\n" legend ^ "\n"
