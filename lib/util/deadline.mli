(** Cooperative per-task wall-clock deadlines.

    A deadline is domain-local state checked voluntarily at safe
    boundaries (II escalation, scheduler attempts, spill rounds) using
    the noalloc monotonic clock — no signals, no domain kills, so a
    task is only ever interrupted between self-contained steps and
    shared state (memo caches, reservation tables) stays consistent.
    The evaluation engine installs one deadline per loop evaluation
    ([--loop-budget-ms]); an overrun raises {!Expired}, which the
    supervision layer degrades to the unpipelined-fallback result.

    With no deadline ever installed, {!check} is one atomic load. *)

exception Expired
(** Raised by {!check} when the calling domain's deadline has passed. *)

val with_budget_ms : int -> (unit -> 'a) -> 'a
(** Run the thunk with a deadline of now + the given milliseconds.
    Nested budgets keep the tighter deadline; the previous deadline is
    restored on exit. *)

val check : unit -> unit
(** Raise {!Expired} if the calling domain has a deadline and the
    monotonic clock has passed it; otherwise a no-op. *)

val active : unit -> bool
(** Whether the calling domain currently has a deadline installed. *)
