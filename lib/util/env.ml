let warned : (string, unit) Hashtbl.t = Hashtbl.create 8

let warned_mutex = Mutex.create ()

let warn_invalid ~name ~value ~expected ~default =
  Mutex.lock warned_mutex;
  let first = not (Hashtbl.mem warned name) in
  if first then Hashtbl.add warned name ();
  Mutex.unlock warned_mutex;
  if first then
    Printf.eprintf "warning: invalid %s value %S (expected %s); using %s\n%!" name value
      expected default

let parse_bool s =
  match String.lowercase_ascii (String.trim s) with
  | "1" | "true" | "yes" | "on" -> Some true
  | "0" | "false" | "no" | "off" | "" -> Some false
  | _ -> None

let bool ?(default = false) name =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
      match parse_bool s with
      | Some b -> b
      | None ->
          warn_invalid ~name ~value:s ~expected:"1/true/yes/on or 0/false/no/off"
            ~default:(if default then "the default (on)" else "the default (off)");
          default)

let int ?(min = Stdlib.min_int) ~default name =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= min -> n
      | _ ->
          warn_invalid ~name ~value:s
            ~expected:(if min = Stdlib.min_int then "an integer"
                       else Printf.sprintf "an integer >= %d" min)
            ~default:(Printf.sprintf "the default (%d)" default);
          default)

let float ?(min = Stdlib.neg_infinity) ~default name =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some f when f >= min && not (Float.is_nan f) -> f
      | _ ->
          warn_invalid ~name ~value:s
            ~expected:(if min = Stdlib.neg_infinity then "a number"
                       else Printf.sprintf "a number >= %g" min)
            ~default:(Printf.sprintf "the default (%g)" default);
          default)
