(** Bounded retry with jittered exponential backoff.

    The service client retries two kinds of transient failure: a busy
    reply from a loaded server (the admission queue shed the request)
    and connection-level errors during server startup or restart.
    Retrying immediately would synchronize the very burst that caused
    the shedding, so each attempt waits [base_ms * 2^attempt] capped at
    [max_ms], multiplied by a uniform jitter factor in
    [[1 - jitter, 1 + jitter]].

    The jitter stream is a {!Rng} seeded by the caller, so a test (or a
    reproducibility-minded client) gets the same delay sequence every
    run; wall-clock sleeping is injected via [~sleep] and defaults to
    [Unix.sleepf]. *)

val delay_ms : base_ms:int -> max_ms:int -> jitter:float -> rng:Rng.t -> attempt:int -> int
(** Delay before retry number [attempt] (0-based), in milliseconds:
    [min max_ms (base_ms * 2^attempt)] scaled by the jitter factor
    drawn from [rng].  [jitter] must be in [[0, 1)]; the result is at
    least 1 ms. *)

val retry :
  ?sleep:(int -> unit) ->
  attempts:int ->
  base_ms:int ->
  max_ms:int ->
  jitter:float ->
  seed:int64 ->
  retryable:('e -> bool) ->
  (attempt:int -> ('a, 'e) result) ->
  ('a, 'e) result
(** Run the thunk up to [attempts] times (so at most [attempts - 1]
    sleeps), backing off between attempts.  A non-retryable error — or
    the error of the final attempt — is returned as is.  [sleep]
    receives each delay in milliseconds (default: [Unix.sleepf]). *)
