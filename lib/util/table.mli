(** Plain-text rendering of tables and simple charts.

    The benchmark harness regenerates every table and figure of the
    paper as text; this module provides the shared rendering.  Output
    is plain ASCII so that it diffs cleanly and reads in any
    terminal. *)

type align = Left | Right | Center

val render :
  ?title:string ->
  headers:string list ->
  ?aligns:align list ->
  string list list ->
  string
(** [render ~headers rows] lays the rows out in a boxed grid.  Missing
    cells render empty; [aligns] defaults to left for the first column
    and right for the rest. *)

val render_floats :
  ?title:string ->
  headers:string list ->
  ?decimals:int ->
  row_label:('a -> string) ->
  cells:('a -> float list) ->
  'a list ->
  string
(** Convenience wrapper for numeric tables: one row per item, first
    column the label, remaining columns formatted with [decimals]
    (default 2) fraction digits. *)

val bar_chart :
  ?title:string ->
  ?width:int ->
  ?unit:string ->
  (string * float) list ->
  string
(** Horizontal bar chart scaled so the longest bar fills [width]
    (default 50) characters.  Values must be non-negative. *)

val scatter :
  ?title:string ->
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  (string * float * float) list ->
  string
(** [scatter points] draws labelled points in a character grid; each
    point is plotted with the first character of its label, and a
    legend maps characters back to full labels.  Used for the
    performance/area trade-off figures. *)

val series_chart :
  ?title:string ->
  ?width:int ->
  ?height:int ->
  series:(string * (float * float) list) list ->
  unit ->
  string
(** Multi-series line-ish chart: each series plots its points with a
    distinct character.  Axes are scaled to the union of all points. *)
