(** Single-writer pid lockfiles for on-disk state (journals, stores).

    A lock is a small file created with [O_CREAT | O_EXCL] holding the
    owner's pid.  Creation is atomic, so exactly one process can hold a
    given lock at a time; a second acquirer gets a diagnostic naming the
    live owner instead of silently sharing the resource.

    {2 Stale locks}

    A process killed with [SIGKILL] cannot release its lock, and a
    crash-then-restart workflow (the whole point of the journal and the
    store) must not wedge on the corpse.  [acquire] therefore reads the
    recorded pid and breaks the lock when that process no longer exists
    ([kill pid 0] raising [ESRCH]); an unreadable or garbled pid — a
    crash between creating the file and writing it — is treated as
    stale too.  [EPERM] counts as alive: the owner exists but belongs
    to another user.  Breaking races are resolved by retrying the
    atomic create a bounded number of times. *)

type t

val acquire : string -> (t, string) result
(** Take the lock at [path], breaking it first if its recorded owner is
    dead.  [Error msg] names the path and the live owning pid (or the
    I/O failure); nothing was acquired. *)

val release : t -> unit
(** Remove the lock file.  Idempotent; never raises. *)

val path : t -> string
