(** Small statistics helpers used by the experiment drivers. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val geomean : float array -> float
(** Geometric mean; all values must be positive.  0 on the empty
    array. *)

val harmonic_mean : float array -> float
(** Harmonic mean; all values must be positive. *)

val stddev : float array -> float
(** Population standard deviation. *)

val median : float array -> float
(** Median (average of the two middle values for even lengths).  Does
    not mutate its argument. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation.
    Does not mutate its argument. *)

val weighted_mean : (float * float) array -> float
(** [weighted_mean pairs] where each pair is [(value, weight)]. *)

val minimum : float array -> float
val maximum : float array -> float

val sum : float array -> float
(** Kahan-compensated sum. *)
