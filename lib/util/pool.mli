(** Fixed-size domain pool for embarrassingly parallel evaluation.

    The study evaluates ~1000 loops on each point of a configuration
    grid; every (loop, configuration) pair is an independent
    schedule/allocate/spill run, so the natural execution model is a
    shared pool of OCaml 5 domains fed chunks of an input array.

    {2 Sizing}

    A pool holds [jobs - 1] worker domains; the domain that calls
    {!parallel_map} acts as the [jobs]-th worker while it waits, so a
    pool of size 1 spawns no domains at all and runs strictly
    sequentially.  The size is resolved, in order of precedence, from
    the explicit [~jobs] argument to {!create}, the [WR_JOBS]
    environment variable, and [Domain.recommended_domain_count ()].

    {2 Determinism}

    [parallel_map] preserves input order: the result array holds
    [f arr.(i)] at index [i] regardless of execution interleaving, so a
    caller that folds the result sequentially gets bit-identical output
    (including float summation order) for any pool size.

    {2 Nesting}

    A task may itself call {!parallel_map} on the same pool.  Waiters
    never block while the task queue is non-empty — they execute queued
    tasks themselves ("helping") — so nested maps cannot deadlock even
    on a pool of size 2.

    {2 Exceptions}

    If [f] raises on any item, every item is still attempted, the
    whole batch drains, and {!Batch_failure} is raised in the calling
    domain carrying {e all} failures with their input indices (sorted
    by index, so the report is identical for any pool size — the
    sequential [jobs = 1] path follows the same contract).  The pool
    itself is unaffected and stays usable for subsequent batches.

    {2 Telemetry}

    When {!Wr_obs.Obs} is enabled, every executed task is recorded as a
    [pool/task] span on the executing domain's lane, and each worker
    accumulates [pool/busy_ns] / [pool/idle_ns] / [pool/tasks_run]
    runtime metrics; [submit] samples [pool/queue_depth].  Disabled
    (the default), each hook is a single atomic-load branch. *)

type t

exception Batch_failure of (int * exn * Printexc.raw_backtrace) list
(** Raised by {!parallel_map} / {!parallel_list_map} when one or more
    applications of [f] raised: every failure in the batch, tagged with
    the index of the input item that caused it, sorted by index. *)

val default_jobs : unit -> int
(** [WR_JOBS] if set to a positive integer, else
    [Domain.recommended_domain_count ()].  An invalid [WR_JOBS] value
    falls back to the latter with a one-line warning on stderr (printed
    once per process) naming the bad value and the default used. *)

val create : ?jobs:int -> unit -> t
(** Spawn a pool of [jobs - 1] worker domains (default {!default_jobs}).
    Raises [Invalid_argument] if [jobs < 1]. *)

val jobs : t -> int
(** The concurrency of the pool, including the calling domain. *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent.  Every task accepted by
    {!submit} before the shutdown still runs: workers drain the queue
    before exiting and [shutdown] itself executes any leftovers (a
    size-1 pool has no workers), so a [parallel_map] in flight
    completes with correct results. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue one task for the pool's workers.  Raises [Invalid_argument]
    if the pool is shutting down or already shut down — a submit can
    never be silently dropped. *)

val queue_depth : t -> int
(** Number of tasks currently queued and not yet picked up, sampled
    under the queue's own mutex — the same guard the busy/idle lanes
    use — so the reading is a consistent snapshot and never negative
    (a derived submitted-minus-run gauge can be, transiently, under
    work-helping).  This is the depth the service's [health] reply and
    [bench profile] report. *)

val default : unit -> t
(** The process-wide shared pool, created on first use. *)

val set_default_jobs : int -> unit
(** Replace the default pool with one of the given size.  The swap is
    safe against concurrent users of the old default: the old pool is
    shut down only after the new one is published, its accepted tasks
    all drain (see {!shutdown}), and any straggler submitting to it
    afterwards gets the explicit {!submit} error instead of a lost
    task.  Drivers call this once at startup for [--jobs N]. *)

val parallel_map : ?pool:t -> 'a array -> f:('a -> 'b) -> 'b array
(** Order-preserving chunked map over the pool ({!default} if [?pool]
    is omitted).  Sequential when the pool size is 1 or the input has
    fewer than 2 elements. *)

val parallel_list_map : ?pool:t -> 'a list -> f:('a -> 'b) -> 'b list
(** {!parallel_map} for lists (order preserved). *)
