(** Instruction-cache model.

    The paper notes (Section 2) that widening's shorter instruction
    words "can reduce the miss rate of the instruction cache and
    further improve performance", but excludes the effect from its
    study by assuming perfect memory (Section 4.3).  This module
    supplies the missing piece: a streaming-loop I-cache model that the
    {!Core.Icache_study} extension uses to quantify the effect.

    A software-pipelined loop's instruction stream is its prologue +
    unrolled kernel + epilogue, fetched front to back each kernel pass.
    For such a streaming access pattern:

    {ul
    {- a resident loop (code <= cache) pays only cold misses: one per
       line;}
    {- an oversized loop evicts itself every pass (cyclic streaming has
       no temporal locality a LRU or direct-mapped cache can keep), so
       every line misses on every kernel pass.}} *)

type t = {
  size_bytes : int;
  line_bytes : int;
  miss_penalty : int;  (** cycles per miss *)
}

val make : ?line_bytes:int -> ?miss_penalty:int -> size_bytes:int -> unit -> t
(** Defaults: 32-byte lines, 12-cycle penalty (a late-90s L2 round
    trip).  Raises [Invalid_argument] on non-positive sizes or a line
    exceeding the cache. *)

val resident : t -> code_bytes:int -> bool

val fetch_stall_cycles : t -> code_bytes:int -> kernel_passes:int -> int
(** Total fetch-stall cycles for a loop of the given static size
    executing the given number of kernel passes. *)

val overhead :
  t -> code_bytes:int -> kernel_passes:int -> kernel_cycles:int -> float
(** Fetch stalls as a fraction of the loop's compute cycles
    ([II * iterations]). *)
