(** Register-file access-time model (paper, Section 4.2; Table 4).

    Following the CACTI adaptation the paper cites (Farkas; Wilton &
    Jouppi), the read path is a sum of decoder, wordline, bitline,
    sense, output-drive and precharge terms.  The dominant geometric
    drivers are the number of registers (decoder depth and bitline
    length), the row width in bits (wordline length) and the cell
    dimensions (which grow with port count):

    [t = a*ln(Z) + b*(B*Wc)^p + c*Hc^r*Z^s + d]

    where [Z] is the register count, [B] the bits per register and
    [Wc x Hc] the cell dimensions for the per-partition port counts.
    The coefficients were fitted offline (see [tools/fit_access_time])
    against the 60 relative access times of Table 4; the fit reproduces
    the table with a 3.6% rms relative error (8.9% worst case).  All
    times are relative to the 1w1 32-register single-partition
    baseline, as in the paper. *)

type coefficients = {
  decode : float;  (** [a] *)
  wordline : float;  (** [b] *)
  wordline_exp : float;  (** [p] *)
  bitline : float;  (** [c] *)
  height_exp : float;  (** [r] *)
  regs_exp : float;  (** [s] *)
  constant : float;  (** [d] *)
}

val default_coefficients : coefficients

val raw_time : ?coefficients:coefficients -> Wr_machine.Config.t -> float
(** Unnormalized model value. *)

val relative : ?coefficients:coefficients -> Wr_machine.Config.t -> float
(** Access time relative to 1w1(32:1) — the paper's Table 4 metric,
    and the relative cycle time [Tc] used for latency adaptation in
    Section 5. *)

val cycle_model_of : Wr_machine.Config.t -> Wr_machine.Cycle_model.t
(** The latency model the configuration runs under when the processor
    is clocked at its register file's access time (Section 5.2). *)
