(** Multiported register-cell geometry (paper, Table 2).

    Each read port adds an access transistor, a select line (height)
    and a data line (width); each write port adds a select line and two
    data lines with their transistors.  The cell therefore grows in
    both dimensions roughly linearly in ports — area quadratically.
    The model is piecewise-linear in [(reads + 2*writes)] for the width
    and [(reads + writes)] for the height, anchored exactly on the five
    cells the paper publishes, and extrapolates with the outer segment
    slopes for larger port counts (needed for 8w1 and beyond, and for
    partitioned files). *)

type dims = { width : float; height : float }
(** In lambda. *)

val dimensions : reads:int -> writes:int -> dims
(** Raises [Invalid_argument] on non-positive port counts. *)

val area : reads:int -> writes:int -> float
(** [width * height], lambda^2. *)

val paper_table : ((int * int) * (int * int)) list
(** The exact Table 2 rows: [((reads, writes), (width, height))]. *)
