(** Semiconductor Industry Association 1994 roadmap data (paper,
    Table 1): feature size and chip area for the five process
    generations the study projects onto. *)

type generation = {
  year : int;
  lambda_um : float;  (** feature size in micrometres *)
  chip_mm2 : float;  (** manufacturable die area *)
  lambda2_per_chip : float;  (** total chip capacity in lambda^2 *)
  lambda2_per_mm2 : float;
}

val generations : generation list
(** 1998, 2001, 2004, 2007, 2010 — in order. *)

val by_year : int -> generation option
val by_lambda : float -> generation option
(** Lookup by feature size (0.25, 0.18, 0.13, 0.10, 0.07). *)

val label : generation -> string
(** E.g. ["0.25um (1998)"]. *)
