(** Area model for the datapath the study sizes: register file plus
    FPUs (paper, Section 4.1).

    The FPU reference point is the MIPS R10000 floating-point unit
    (multiplier + adder + divider): 12 mm^2 at 0.25 um, i.e.
    192e6 lambda^2 per scalar FPU; a width-[Y] unit replicates the
    datapath [Y] times.  The register file is dominated by its cell
    array: [registers * bits * cell_area], where the cell is sized by
    the per-partition port counts; [n] partitions replicate the whole
    array [n] times (every copy holds all the data). *)

val fpu_lambda2 : float
(** 192e6 — one scalar general-purpose FPU. *)

val fpu_area : Wr_machine.Config.t -> float
(** All FPUs: [fpus * width * fpu_lambda2]. *)

val rf_area : Wr_machine.Config.t -> float
(** Whole register file, all partitions, lambda^2. *)

val total_area : Wr_machine.Config.t -> float
(** [rf_area + fpu_area]. *)

val chip_fraction : Wr_machine.Config.t -> Sia.generation -> float
(** Share of the generation's die the datapath occupies. *)

val implementable : ?budget:float -> Wr_machine.Config.t -> Sia.generation -> bool
(** Whether the datapath fits the area budget (default 0.20 — the
    paper's 20% limit for functional units plus register file). *)
