type generation = {
  year : int;
  lambda_um : float;
  chip_mm2 : float;
  lambda2_per_chip : float;
  lambda2_per_mm2 : float;
}

(* Paper, Table 1 (SIA 1994 roadmap).  Capacities are in raw lambda^2
   (the paper's table lists them in units of 10^6). *)
let generations =
  [
    {
      year = 1998;
      lambda_um = 0.25;
      chip_mm2 = 300.0;
      lambda2_per_chip = 4800.0e6;
      lambda2_per_mm2 = 16.0e6;
    };
    {
      year = 2001;
      lambda_um = 0.18;
      chip_mm2 = 360.0;
      lambda2_per_chip = 11111.0e6;
      lambda2_per_mm2 = 30.86e6;
    };
    {
      year = 2004;
      lambda_um = 0.13;
      chip_mm2 = 430.0;
      lambda2_per_chip = 25443.0e6;
      lambda2_per_mm2 = 59.17e6;
    };
    {
      year = 2007;
      lambda_um = 0.10;
      chip_mm2 = 520.0;
      lambda2_per_chip = 52000.0e6;
      lambda2_per_mm2 = 100.0e6;
    };
    {
      year = 2010;
      lambda_um = 0.07;
      chip_mm2 = 620.0;
      lambda2_per_chip = 126530.0e6;
      lambda2_per_mm2 = 204.08e6;
    };
  ]

let by_year y = List.find_opt (fun g -> g.year = y) generations

let by_lambda l = List.find_opt (fun g -> Float.abs (g.lambda_um -. l) < 1e-9) generations

let label g = Printf.sprintf "%.2fum (%d)" g.lambda_um g.year
