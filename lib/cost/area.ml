module Config = Wr_machine.Config

let fpu_lambda2 = 192.0e6

let fpu_area (c : Config.t) = float_of_int (c.Config.fpus * c.Config.width) *. fpu_lambda2

let rf_area (c : Config.t) =
  let cell =
    Register_cell.area
      ~reads:(Config.read_ports_per_partition c)
      ~writes:(Config.write_ports_per_partition c)
  in
  float_of_int (c.Config.partitions * c.Config.registers * Config.bits_per_register c) *. cell

let total_area c = rf_area c +. fpu_area c

let chip_fraction c (g : Sia.generation) = total_area c /. g.Sia.lambda2_per_chip

let implementable ?(budget = 0.20) c g = chip_fraction c g <= budget
