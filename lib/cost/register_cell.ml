type dims = { width : float; height : float }

(* Paper, Table 2. *)
let paper_table =
  [
    ((1, 1), (50, 41));
    ((2, 1), (64, 41));
    ((5, 3), (162, 81));
    ((10, 6), (316, 145));
    ((20, 12), (568, 257));
  ]

(* Width anchors in x = reads + 2*writes; height anchors in
   x = reads + writes — the per-port line counts. *)
let width_anchors = [ (3.0, 50.0); (4.0, 64.0); (11.0, 162.0); (22.0, 316.0); (44.0, 568.0) ]

let height_anchors = [ (2.0, 41.0); (3.0, 41.0); (8.0, 81.0); (16.0, 145.0); (32.0, 257.0) ]

(* Piecewise-linear through the anchors, extrapolating with the outer
   segment slopes. *)
let interpolate anchors x =
  let rec segments = function
    | (x1, y1) :: ((x2, y2) :: _ as rest) ->
        if x <= x2 then
          let slope = (y2 -. y1) /. (x2 -. x1) in
          y1 +. ((x -. x1) *. slope)
        else segments rest
    | [ (x1, y1) ] ->
        (* Beyond the last anchor: should have been caught by the
           two-element case; extrapolate flat as a fallback. *)
        y1 +. (x -. x1) *. 0.0
    | [] -> invalid_arg "Register_cell.interpolate: no anchors"
  in
  match anchors with
  | (x0, y0) :: (x1, y1) :: _ when x < x0 ->
      (* Below the first anchor: first segment slope. *)
      y0 +. ((x -. x0) *. (y1 -. y0) /. (x1 -. x0))
  | _ ->
      let rec last_two = function
        | [ (x1, y1); (x2, y2) ] -> ((x1, y1), (x2, y2))
        | _ :: rest -> last_two rest
        | [] -> invalid_arg "Register_cell.interpolate: no anchors"
      in
      let (x1, y1), (x2, y2) = last_two anchors in
      if x > x2 then y2 +. ((x -. x2) *. (y2 -. y1) /. (x2 -. x1)) else segments anchors

let dimensions ~reads ~writes =
  if reads <= 0 || writes <= 0 then
    invalid_arg "Register_cell.dimensions: ports must be positive";
  let width = interpolate width_anchors (float_of_int (reads + (2 * writes))) in
  let height = interpolate height_anchors (float_of_int (reads + writes)) in
  { width; height }

let area ~reads ~writes =
  let d = dimensions ~reads ~writes in
  d.width *. d.height
