(** VLIW code-size model (paper, Section 4.3; Figure 7).

    An instruction word carries one field per issue slot: [X] memory
    fields plus [2X] FPU fields.  A wide operation occupies a single
    field — compacting reduces the number of fields, not their size —
    so the word length of [XwY] is proportional to [X] and the static
    code of a software-pipelined loop is [II * word_length] (the kernel
    dominates; prologue/epilogue scale the same way). *)

val field_bits : int
(** Bits per operation field (32 — a generous fixed encoding;
    relative comparisons do not depend on it). *)

val word_bits : Wr_machine.Config.t -> int
(** Instruction word length in bits: [(buses + fpus) * field_bits]. *)

val loop_code_bits : Wr_machine.Config.t -> ii:int -> int
(** Static kernel size of one software-pipelined loop. *)

val relative :
  Wr_machine.Config.t -> ii:int -> baseline:Wr_machine.Config.t -> baseline_ii:int -> float
(** Code size relative to a baseline configuration (Figure 7 compares
    configurations of equal peak performance against the pure
    replication member of the group). *)
