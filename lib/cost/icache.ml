type t = { size_bytes : int; line_bytes : int; miss_penalty : int }

let make ?(line_bytes = 32) ?(miss_penalty = 12) ~size_bytes () =
  if size_bytes <= 0 || line_bytes <= 0 || miss_penalty < 0 then
    invalid_arg "Icache.make: non-positive parameter";
  if line_bytes > size_bytes then invalid_arg "Icache.make: line larger than cache";
  { size_bytes; line_bytes; miss_penalty }

let lines t ~code_bytes = (code_bytes + t.line_bytes - 1) / t.line_bytes

let resident t ~code_bytes = code_bytes <= t.size_bytes

let fetch_stall_cycles t ~code_bytes ~kernel_passes =
  if code_bytes <= 0 || kernel_passes <= 0 then 0
  else
    let l = lines t ~code_bytes in
    if resident t ~code_bytes then l * t.miss_penalty
    else l * kernel_passes * t.miss_penalty

let overhead t ~code_bytes ~kernel_passes ~kernel_cycles =
  if kernel_cycles <= 0 then 0.0
  else
    float_of_int (fetch_stall_cycles t ~code_bytes ~kernel_passes)
    /. float_of_int kernel_cycles
