module Config = Wr_machine.Config

let field_bits = 32

let word_bits (c : Config.t) = (c.Config.buses + c.Config.fpus) * field_bits

let loop_code_bits c ~ii = ii * word_bits c

let relative c ~ii ~baseline ~baseline_ii =
  float_of_int (loop_code_bits c ~ii) /. float_of_int (loop_code_bits baseline ~ii:baseline_ii)
