module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model

type coefficients = {
  decode : float;
  wordline : float;
  wordline_exp : float;
  bitline : float;
  height_exp : float;
  regs_exp : float;
  constant : float;
}

(* Fitted against the 60 relative access times of Table 4 by
   tools/fit_access_time (grid search over the exponents, least squares
   over the linear coefficients): rms error 3.6%, max 8.9%.  The
   bitline term comes out proportional to the cell height (port count)
   with a weak register-count correction, and the wordline term is
   mildly sub-linear in row length — consistent with the CACTI
   decomposition the paper cites. *)
let default_coefficients =
  {
    decode = 0.111684;
    wordline = 1.75924e-05;
    wordline_exp = 0.9;
    bitline = 0.0059325;
    height_exp = 1.0;
    regs_exp = 0.06;
    constant = -0.0494126;
  }

let raw_time ?(coefficients = default_coefficients) (c : Config.t) =
  let z = float_of_int c.Config.registers in
  let b = float_of_int (Config.bits_per_register c) in
  let cell =
    Register_cell.dimensions
      ~reads:(Config.read_ports_per_partition c)
      ~writes:(Config.write_ports_per_partition c)
  in
  let k = coefficients in
  (k.decode *. log z)
  +. (k.wordline *. ((b *. cell.Register_cell.width) ** k.wordline_exp))
  +. (k.bitline *. (cell.Register_cell.height ** k.height_exp) *. (z ** k.regs_exp))
  +. k.constant

let baseline_config = Config.xwy ~registers:32 ~partitions:1 ~x:1 ~y:1 ()

let relative ?coefficients c =
  raw_time ?coefficients c /. raw_time ?coefficients baseline_config

let cycle_model_of c = Cycle_model.of_relative_cycle_time (relative c)
