(** Figure 3: performance with spill code under finite register files.

    Configurations of scaling factors 2-8 are evaluated with 32, 64,
    128 and 256 registers under the 4-cycle latency model; loops that
    exceed the file are spilled and rescheduled.  The baseline is 1w1
    with 256 registers (which needs essentially no spill, so it matches
    Figure 2's infinite-register baseline).  A configuration whose
    register pressure cannot be contained for some loops even after
    spilling reports {!Not_schedulable} — the paper's missing 8w1
    32-register bar. *)

type cell = Speedup of float | Not_schedulable

type row = { config : Wr_machine.Config.t; cells : (int * cell) list }

type t = row list

val run :
  ?registers:int list -> ?suite_id:string -> Wr_ir.Loop.t array -> t
(** [registers] defaults to [32; 64; 128; 256]. *)

val run_families :
  ?registers:int list ->
  ?suite_id:string ->
  (string * Wr_ir.Loop.t array) list ->
  (string * t) list
(** {!run} per family ({!Wr_workload.Suite.families_for}): the
    synthetic-vs-real cut of Figure 3.  The ["synthetic"] family reuses
    [suite_id] itself (it is the main run's loop array, so its points
    come from the evaluation cache); every other family evaluates under
    [suite_id ^ ":" ^ family]. *)

val to_text : t -> string
