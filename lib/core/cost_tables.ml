module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Sia = Wr_cost.Sia
module Register_cell = Wr_cost.Register_cell
module Area = Wr_cost.Area
module Access_time = Wr_cost.Access_time
module Table = Wr_util.Table

(* The published Table 4 values, kept here as the reference the model
   is validated against. *)
let paper_table4 =
  [
    ((1, 1), [| 1.00; 1.05; 1.18; 1.34 |]);
    ((2, 1), [| 1.49; 1.54; 1.70; 1.87 |]);
    ((1, 2), [| 1.10; 1.15; 1.29; 1.45 |]);
    ((4, 1), [| 2.44; 2.51; 2.69; 2.90 |]);
    ((2, 2), [| 1.65; 1.72; 1.87; 2.06 |]);
    ((1, 4), [| 1.22; 1.27; 1.43; 1.60 |]);
    ((8, 1), [| 4.32; 4.41; 4.61; 4.87 |]);
    ((4, 2), [| 2.75; 2.82; 3.00; 3.23 |]);
    ((2, 4), [| 1.85; 1.92; 2.09; 2.29 |]);
    ((1, 8), [| 1.39; 1.45; 1.62; 1.80 |]);
    ((16, 1), [| 8.04; 8.15; 8.39; 8.72 |]);
    ((8, 2), [| 4.89; 4.99; 5.20; 5.48 |]);
    ((4, 4), [| 3.10; 3.18; 3.38; 3.61 |]);
    ((2, 8), [| 2.12; 2.20; 2.38; 2.60 |]);
    ((1, 16), [| 1.68; 1.75; 1.93; 2.14 |]);
  ]

let register_sizes = [ 32; 64; 128; 256 ]

let config_grid =
  List.concat_map
    (fun factor ->
      let rec splits x acc = if x = 0 then List.rev acc else splits (x / 2) (x :: acc) in
      List.map (fun x -> (x, factor / x)) (splits factor []))
    [ 1; 2; 4; 8; 16 ]

let table1 () =
  Table.render ~title:"Table 1: SIA predictions (1994)"
    ~headers:[ "generation"; "lambda (um)"; "size (mm^2)"; "lambda^2/chip (x10^6)"; "lambda^2/mm^2 (x10^6)" ]
    (List.map
       (fun (g : Sia.generation) ->
         [
           string_of_int g.Sia.year;
           Printf.sprintf "%.2f" g.Sia.lambda_um;
           Printf.sprintf "%.0f" g.Sia.chip_mm2;
           Printf.sprintf "%.0f" (g.Sia.lambda2_per_chip /. 1e6);
           Printf.sprintf "%.2f" (g.Sia.lambda2_per_mm2 /. 1e6);
         ])
       Sia.generations)

let table2 () =
  Table.render ~title:"Table 2: multiported register cells (model vs paper)"
    ~headers:[ "ports"; "W model"; "H model"; "W paper"; "H paper"; "area model"; "rel" ]
    (List.map
       (fun ((r, w), (pw, ph)) ->
         let d = Register_cell.dimensions ~reads:r ~writes:w in
         let area = d.Register_cell.width *. d.Register_cell.height in
         let base = Register_cell.area ~reads:1 ~writes:1 in
         [
           Printf.sprintf "%dR,%dW" r w;
           Printf.sprintf "%.0f" d.Register_cell.width;
           Printf.sprintf "%.0f" d.Register_cell.height;
           string_of_int pw;
           string_of_int ph;
           Printf.sprintf "%.0f" area;
           Printf.sprintf "%.2f" (area /. base);
         ])
       Register_cell.paper_table)

let table3 () =
  Table.render ~title:"Table 3: register file area, 64 registers (lambda^2)"
    ~headers:[ "config"; "ports"; "cell area"; "bits/reg"; "total RF area (x10^6)" ]
    (List.map
       (fun (x, y) ->
         let c = Config.xwy ~registers:64 ~x ~y () in
         let r = Config.read_ports c and w = Config.write_ports c in
         [
           Config.label_short c;
           Printf.sprintf "%dR+%dW" r w;
           Printf.sprintf "%.0f" (Register_cell.area ~reads:r ~writes:w);
           string_of_int (Config.bits_per_register c);
           Printf.sprintf "%.0f" (Area.rf_area c /. 1e6);
         ])
       [ (4, 1); (2, 2); (1, 4) ])

let figure4 () =
  let headers =
    "config" :: List.map (fun z -> Printf.sprintf "%d-RF" z) register_sizes
  in
  let rows =
    List.map
      (fun (x, y) ->
        Printf.sprintf "%dw%d" x y
        :: List.map
             (fun z ->
               let c = Config.xwy ~registers:z ~x ~y () in
               Printf.sprintf "%.0f" (Area.total_area c /. 1e6))
             register_sizes)
      config_grid
  in
  let bands =
    String.concat "\n"
      (List.map
         (fun (g : Sia.generation) ->
           Printf.sprintf "  %s: 10%% = %.0f, 20%% = %.0f (x10^6 lambda^2)" (Sia.label g)
             (0.10 *. g.Sia.lambda2_per_chip /. 1e6)
             (0.20 *. g.Sia.lambda2_per_chip /. 1e6))
         Sia.generations)
  in
  Table.render ~title:"Figure 4: area of RF + FPUs (x10^6 lambda^2)" ~headers rows
  ^ "SIA area bands (budget for RF + FPUs):\n" ^ bands ^ "\n"

let table4_pairs () =
  List.concat_map
    (fun ((x, y), times) ->
      List.mapi
        (fun i z ->
          let c = Config.xwy ~registers:z ~x ~y () in
          ((x, y, z), Access_time.relative c, times.(i)))
        register_sizes)
    paper_table4

let table4 () =
  let headers = [ "config"; "32"; "64"; "128"; "256" ] in
  let rows =
    List.map
      (fun ((x, y), times) ->
        Printf.sprintf "%dw%d" x y
        :: List.mapi
             (fun i z ->
               let c = Config.xwy ~registers:z ~x ~y () in
               Printf.sprintf "%.2f/%.2f" (Access_time.relative c) times.(i))
             register_sizes)
      paper_table4
  in
  Table.render ~title:"Table 4: relative RF access time (model/paper; baseline 1w1 32-RF)"
    ~headers rows

let figure6 () =
  let base = Config.xwy ~registers:64 ~partitions:1 ~x:8 ~y:1 () in
  let base_area = Area.rf_area base and base_time = Access_time.raw_time base in
  Table.render ~title:"Figure 6: partitioning an 8w1 64-RF register file"
    ~headers:[ "partitions"; "ports/copy"; "relative area"; "relative access time" ]
    (List.map
       (fun n ->
         let c = Config.xwy ~registers:64 ~partitions:n ~x:8 ~y:1 () in
         [
           string_of_int n;
           Printf.sprintf "%dR+%dW"
             (Config.read_ports_per_partition c)
             (Config.write_ports_per_partition c);
           Printf.sprintf "%.2f" (Area.rf_area c /. base_area);
           Printf.sprintf "%.2f" (Access_time.raw_time c /. base_time);
         ])
       [ 1; 2; 4; 8 ])

let table6 () =
  Table.render ~title:"Table 6: cycles per operation under the latency models"
    ~headers:[ "model"; "store"; "+,*,load"; "div"; "sqrt" ]
    (List.map
       (fun cm ->
         [
           Cycle_model.to_string cm;
           string_of_int (Cycle_model.latency cm Wr_ir.Opcode.Store_op);
           string_of_int (Cycle_model.latency cm Wr_ir.Opcode.Short_op);
           string_of_int (Cycle_model.latency cm Wr_ir.Opcode.Div_op);
           string_of_int (Cycle_model.latency cm Wr_ir.Opcode.Sqrt_op);
         ])
       [ Cycle_model.Cycles_4; Cycle_model.Cycles_3; Cycle_model.Cycles_2; Cycle_model.Cycles_1 ])
