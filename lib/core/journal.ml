type key = {
  suite_id : string;
  index : int;
  buses : int;
  width : int;
  registers : int;
  cycles : int;
}

type entry = {
  key : key;
  ii : int;
  cycles_bits : int64;
  required_regs : int;
  spill_stores : int;
  spill_loads : int;
  spill_rounds : int;
  pipelined : bool;
  mii : int;
  trip_count : int;
}

type t = {
  path : string;
  fd : Unix.file_descr;
  lock : Wr_util.Lockfile.t;
  buf : Buffer.t;
  mutable pending : int;
  mutable closed : bool;
  mutex : Mutex.t;
}

exception Locked of string

let () =
  Printexc.register_printer (function
    | Locked msg -> Some ("Wr_core journal: " ^ msg)
    | _ -> None)

let batch_records = 64

(* FNV-1a, matching Wr_util.Fault's string hash; cheap and has no
   dependency on any checksum library. *)
let fnv1a64 s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun ch ->
      h := Int64.logxor !h (Int64.of_int (Char.code ch));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

(* Suite ids are caller-chosen strings; percent-encode anything that
   would collide with the space-separated record format. *)
let encode_id s =
  let plain = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' | '/' -> true
    | _ -> false
  in
  if String.for_all plain s then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun ch ->
        if plain ch then Buffer.add_char b ch
        else Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code ch)))
      s;
    Buffer.contents b
  end

let decode_id s =
  if not (String.contains s '%') then s
  else begin
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      (if s.[!i] = '%' && !i + 2 < n then begin
         Buffer.add_char b (Char.chr (int_of_string ("0x" ^ String.sub s (!i + 1) 2)));
         i := !i + 3
       end
       else begin
         Buffer.add_char b s.[!i];
         incr i
       end)
    done;
    Buffer.contents b
  end

(* wrj2: wrj1 plus the spill-round count (provenance records need it);
   wrj1 lines fail the shape test below, so a pre-existing journal is
   treated as a torn tail and its points simply re-evaluate. *)
let payload_of_entry e =
  let k = e.key in
  Printf.sprintf "wrj2 %s %d %d %d %d %d %d %Lx %d %d %d %d %d %d %d" (encode_id k.suite_id)
    k.index k.buses k.width k.registers k.cycles e.ii e.cycles_bits e.required_regs
    e.spill_stores e.spill_loads e.spill_rounds
    (if e.pipelined then 1 else 0)
    e.mii e.trip_count

let line_of_entry e =
  let payload = payload_of_entry e in
  Printf.sprintf "%s %Lx\n" payload (fnv1a64 payload)

(* A line parses iff it has exactly the expected shape AND its checksum
   matches the stored payload; anything else marks the torn tail. *)
let entry_of_line line =
  match String.split_on_char ' ' line with
  | [
   "wrj2"; sid; index; buses; width; registers; cycles; ii; bits; required; stores; loads;
   rounds; pipelined; mii; trip; crc;
  ] -> (
      let payload = String.sub line 0 (String.length line - String.length crc - 1) in
      let sum = Printf.sprintf "%Lx" (fnv1a64 payload) in
      if not (String.equal sum crc) then None
      else
        try
          let int s = int_of_string s in
          Some
            {
              key =
                {
                  suite_id = decode_id sid;
                  index = int index;
                  buses = int buses;
                  width = int width;
                  registers = int registers;
                  cycles = int cycles;
                };
              ii = int ii;
              cycles_bits = Int64.of_string ("0x" ^ bits);
              required_regs = int required;
              spill_stores = int stores;
              spill_loads = int loads;
              spill_rounds = int rounds;
              pipelined = (match pipelined with "1" -> true | "0" -> false | _ -> raise Exit);
              mii = int mii;
              trip_count = int trip;
            }
        with _ -> None)
  | _ -> None

(* Scan the file for its intact prefix: newline-terminated lines whose
   checksums verify, stopping at the first failure.  Returns the entries
   and the byte length of the prefix. *)
let read_prefix path =
  let contents =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let n = String.length contents in
  let entries = ref [] in
  let ok = ref 0 in
  let pos = ref 0 in
  (try
     while !pos < n do
       match String.index_from_opt contents !pos '\n' with
       | None -> raise Exit (* torn final line: no newline yet *)
       | Some nl -> (
           let line = String.sub contents !pos (nl - !pos) in
           match entry_of_line line with
           | None -> raise Exit
           | Some e ->
               entries := e :: !entries;
               pos := nl + 1;
               ok := !pos)
     done
   with Exit -> ());
  (List.rev !entries, !ok)

let open_for_resume path =
  (* Single-writer discipline: take the lock before even scanning, so
     two processes can never interleave appends (or race the torn-tail
     truncation) on one journal.  Stale locks from killed runs are
     broken by Lockfile itself — the crash/resume workflow stays one
     command. *)
  let lock =
    match Wr_util.Lockfile.acquire (path ^ ".lock") with
    | Ok l -> l
    | Error msg ->
        raise
          (Locked
             (Printf.sprintf
                "cannot attach journal %s: %s (a second writer would interleave appends)" path
                msg))
  in
  match
    let entries, valid_len =
      if Sys.file_exists path then read_prefix path else ([], 0)
    in
    let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
    (* Drop the torn tail so appended records start on a clean boundary. *)
    Unix.ftruncate fd valid_len;
    ignore (Unix.lseek fd valid_len Unix.SEEK_SET);
    let t =
      {
        path;
        fd;
        lock;
        buf = Buffer.create 4096;
        pending = 0;
        closed = false;
        mutex = Mutex.create ();
      }
    in
    (t, entries)
  with
  | result -> result
  | exception e ->
      Wr_util.Lockfile.release lock;
      raise e

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let flush_locked t =
  if Buffer.length t.buf > 0 then begin
    write_all t.fd (Buffer.contents t.buf);
    Buffer.clear t.buf;
    t.pending <- 0;
    Unix.fsync t.fd
  end

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let append t e =
  locked t (fun () ->
      if t.closed then invalid_arg "Journal.append: journal is closed";
      Buffer.add_string t.buf (line_of_entry e);
      t.pending <- t.pending + 1;
      if t.pending >= batch_records then flush_locked t)

let flush t = locked t (fun () -> if not t.closed then flush_locked t)

let close t =
  locked t (fun () ->
      if not t.closed then begin
        flush_locked t;
        t.closed <- true;
        Unix.close t.fd;
        Wr_util.Lockfile.release t.lock
      end)

let path t = t.path
