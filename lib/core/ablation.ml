module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Resource = Wr_machine.Resource
module Loop = Wr_ir.Loop
module Schedule = Wr_sched.Schedule
module Driver = Wr_regalloc.Driver
module Table = Wr_util.Table

let cm = Cycle_model.Cycles_4

(* --- compactability sensitivity ---------------------------------------- *)

let compactability ?(stride1_probs = [ 0.5; 0.7; 0.85; 0.95; 1.0 ]) ?(num_loops = 300) () =
  let speedups p =
    let params =
      {
        Wr_workload.Generator.default with
        Wr_workload.Generator.stride1_prob = p;
        num_loops;
        (* A distinct seed per point would conflate sampling noise with
           the knob; share the seed so only the strides move. *)
      }
    in
    let loops = Wr_workload.Generator.generate params in
    let peak = Peak_study.run ~max_factor:32 loops in
    let find factor x y =
      let _, points = List.find (fun (f, _) -> f = factor) peak in
      (List.find
         (fun (pt : Peak_study.point) ->
           pt.Peak_study.config.Config.buses = x && pt.Peak_study.config.Config.width = y)
         points)
        .Peak_study.speedup
    in
    (find 8 8 1, find 8 2 4, find 8 1 8, find 32 1 32)
  in
  let rows =
    List.map
      (fun p ->
        let s81, s24, s18, s132 = speedups p in
        [
          Printf.sprintf "%.2f" p;
          Printf.sprintf "%.2f" s81;
          Printf.sprintf "%.2f" s24;
          Printf.sprintf "%.2f" s18;
          Printf.sprintf "%.2f" s132;
        ])
      stride1_probs
  in
  Table.render
    ~title:
      "Ablation: peak speed-up vs stride-1 fraction (widening lives and dies on compactable \
       memory; replication barely moves)"
    ~headers:[ "stride-1 prob"; "8w1 (x8)"; "2w4 (x8)"; "1w8 (x8)"; "1w32 (x32)" ]
    rows

(* --- register-pressure levers ------------------------------------------- *)

let pressure_levers ?(suite_id = "ablation") loops =
  ignore suite_id;
  let evaluate policy (x, y) registers =
    let config = Config.xwy ~registers ~x ~y () in
    let resource = Resource.of_config config in
    let cycles = ref 0.0 and fallback_weight = ref 0.0 and total_weight = ref 0.0 in
    Array.iter
      (fun (loop : Loop.t) ->
        let wide, _ = Wr_widen.Transform.widen loop ~width:y in
        total_weight := !total_weight +. loop.Loop.weight;
        match Driver.run resource ~cycle_model:cm ~registers ~policy wide.Loop.ddg with
        | Driver.Scheduled s ->
            cycles :=
              !cycles
              +. (float_of_int (s.Driver.schedule.Schedule.ii * wide.Loop.trip_count)
                 *. loop.Loop.weight)
        | Driver.Unschedulable _ ->
            (* Charge the sequential fallback so policies stay
               comparable on the same loop set. *)
            let r = Evaluate.loop_on config ~cycle_model:cm ~registers loop in
            cycles := !cycles +. r.Evaluate.cycles;
            fallback_weight := !fallback_weight +. loop.Loop.weight)
      loops;
    (!cycles, 100.0 *. !fallback_weight /. Stdlib.max 1e-9 !total_weight)
  in
  let baseline =
    let config = Config.xwy ~registers:256 ~x:1 ~y:1 () in
    let resource = Resource.of_config config in
    Wr_util.Stats.sum
      (Array.map
         (fun (loop : Loop.t) ->
           match Driver.run resource ~cycle_model:cm ~registers:256 loop.Loop.ddg with
           | Driver.Scheduled s ->
               float_of_int (s.Driver.schedule.Schedule.ii * loop.Loop.trip_count)
               *. loop.Loop.weight
           | Driver.Unschedulable _ -> 0.0)
         loops)
  in
  let rows =
    List.concat_map
      (fun (x, y) ->
        List.concat_map
          (fun registers ->
            List.map
              (fun (name, policy) ->
                let cycles, fallback = evaluate policy (x, y) registers in
                [
                  Printf.sprintf "%dw%d/%d" x y registers;
                  name;
                  Printf.sprintf "%.2f" (baseline /. cycles);
                  Printf.sprintf "%.1f%%" fallback;
                ])
              [
                ("spill only", Driver.Spill_only);
                ("escalate only", Driver.Escalate_only);
                ("combined", Driver.Combined);
              ])
          [ 32; 64 ])
      [ (4, 2); (8, 1) ]
  in
  Table.render
    ~title:
      "Ablation: the two register-pressure levers (speed-up vs 1w1/256; fallback = weight \
       compiled without pipelining)"
    ~headers:[ "config"; "policy"; "speed-up"; "fallback" ]
    rows

(* --- scheduler orderings -------------------------------------------------- *)

let scheduler_orderings loops =
  let evaluate ordering (x, y) =
    let resource = Resource.of_config (Config.xwy ~x ~y ()) in
    let ii_excess = ref 0 and total = ref 0 and regs = ref 0 in
    Array.iter
      (fun (loop : Loop.t) ->
        let wide, _ = Wr_widen.Transform.widen loop ~width:y in
        let g = wide.Loop.ddg in
        let r = Wr_sched.Modulo.run resource ~cycle_model:cm ~ordering g in
        let s = r.Wr_sched.Modulo.schedule in
        incr total;
        if s.Schedule.ii > r.Wr_sched.Modulo.mii then incr ii_excess;
        let lts = Wr_regalloc.Lifetime.of_schedule g s in
        let a = Wr_regalloc.Alloc.allocate ~ii:s.Schedule.ii lts in
        regs := !regs + a.Wr_regalloc.Alloc.required)
      loops;
    ( 100.0 *. float_of_int !ii_excess /. float_of_int (Stdlib.max 1 !total),
      float_of_int !regs /. float_of_int (Stdlib.max 1 !total) )
  in
  let rows =
    List.concat_map
      (fun (x, y) ->
        List.map
          (fun (name, ordering) ->
            let miss, regs = evaluate ordering (x, y) in
            [
              Printf.sprintf "%dw%d" x y;
              name;
              Printf.sprintf "%.1f%%" miss;
              Printf.sprintf "%.1f" regs;
            ])
          [ ("IMS height", `Ims); ("SMS swing", `Sms) ])
      [ (1, 1); (2, 1); (2, 2); (4, 2); (8, 1) ]
  in
  Table.render
    ~title:
      "Ablation: scheduler orderings — loops not achieving the MII, and mean register \
       requirement (lower is better on both)"
    ~headers:[ "config"; "ordering"; "II > MII"; "mean regs" ]
    rows

(* --- rotating vs conventional register file ------------------------------ *)

let rotating_file loops =
  let evaluate (x, y) =
    let config = Config.xwy ~x ~y () in
    let resource = Resource.of_config config in
    let wands_total = ref 0 and rotating_total = ref 0 and mve_total = ref 0 in
    let unrolls = ref [] in
    let counted = ref 0 in
    Array.iter
      (fun (loop : Loop.t) ->
        let wide, _ = Wr_widen.Transform.widen loop ~width:y in
        let g = wide.Loop.ddg in
        let r = Wr_sched.Modulo.run resource ~cycle_model:cm g in
        let s = r.Wr_sched.Modulo.schedule in
        let lts = Wr_regalloc.Lifetime.of_schedule g s in
        let wands = Wr_regalloc.Alloc.allocate ~ii:s.Schedule.ii lts in
        let rotating = Wr_vliw.Rotating.allocate g s in
        let mve = Wr_vliw.Codegen.allocate g s in
        incr counted;
        wands_total := !wands_total + wands.Wr_regalloc.Alloc.required;
        rotating_total := !rotating_total + rotating.Wr_vliw.Rotating.num_rotating;
        mve_total := !mve_total + mve.Wr_vliw.Codegen.live_in_base;
        unrolls := float_of_int mve.Wr_vliw.Codegen.unroll :: !unrolls)
      loops;
    let n = float_of_int (Stdlib.max 1 !counted) in
    ( float_of_int !wands_total /. n,
      float_of_int !rotating_total /. n,
      float_of_int !mve_total /. n,
      Wr_util.Stats.mean (Array.of_list !unrolls) )
  in
  let rows =
    List.map
      (fun (x, y) ->
        let wands, rotating, mve, unroll = evaluate (x, y) in
        [
          Printf.sprintf "%dw%d" x y;
          Printf.sprintf "%.1f" wands;
          Printf.sprintf "%.1f" rotating;
          Printf.sprintf "%.1f" mve;
          Printf.sprintf "%.2fx" (mve /. Stdlib.max 1e-9 rotating);
          Printf.sprintf "%.2fx" unroll;
        ])
      [ (1, 1); (2, 1); (1, 2); (4, 1); (2, 2); (8, 1); (4, 2) ]
  in
  Table.render
    ~title:
      "Ablation: register files — wands model vs actual rotating packing vs conventional \
       (MVE), mean registers per loop and the kernel unrolling MVE needs"
    ~headers:
      [ "config"; "wands model"; "rotating"; "MVE"; "MVE/rotating"; "kernel growth" ]
    rows
