(** Table 5: which configurations each SIA generation can implement.

    A configuration [XwY(Z:n)] is implementable when its register file
    plus FPUs fit in 20% of the generation's die.  The table reports,
    for every configuration, register file size and applicable
    partitioning, the {e first} generation that can build it (a later
    generation can always build everything an earlier one could). *)

type verdict =
  | First_at of int  (** year of the first generation that fits it *)
  | Never  (** not implementable even at 0.07 um *)
  | Not_applicable  (** partition count does not divide the datapath *)

type cell = { registers : int; partitions : int; verdict : verdict }

type row = { x : int; y : int; cells : cell list }

val run : ?budget:float -> unit -> row list
(** The paper's grid: factors 1-16, register files 32-256, partitions
    1-16.  [budget] is the die-area share allowed for the datapath
    (default 0.20; the paper's Figure 4 also draws the 10% band). *)

val to_text : row list -> string

val implementable_configs : ?budget:float -> Wr_cost.Sia.generation -> Wr_machine.Config.t list
(** All concrete [XwY(Z:n)] points (factors up to 16) the generation
    can build — the candidate set for the Section 5 performance
    ranking. *)
