module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Resource = Wr_machine.Resource
module Loop = Wr_ir.Loop
module Driver = Wr_regalloc.Driver
module Dcache = Wr_vliw.Dcache

type row = {
  config : Config.t;
  miss_rate_ample : float;
  miss_rate_tight : float;
  extra_accesses : float;
}

type t = row list

let cm = Cycle_model.Cycles_4

let grid = [ (2, 1); (4, 1); (2, 2); (8, 1); (4, 2); (2, 4); (1, 8) ]

let run ?(cache_kb = 16) ?(iterations_cap = 128) loops =
  List.map
    (fun (x, y) ->
      let resource = Resource.of_config (Config.xwy ~x ~y ()) in
      (* Evaluate each loop under both register files and keep only the
         loops schedulable under both, so the traces compare the same
         program. *)
      let tight = ref (0, 0, 0) and ample = ref (0, 0, 0) in
      Array.iter
        (fun (loop : Loop.t) ->
          let wide, _ = Wr_widen.Transform.widen loop ~width:y in
          let schedule_at registers =
            match Driver.run resource ~cycle_model:cm ~registers wide.Loop.ddg with
            | Driver.Scheduled s -> Some s
            | Driver.Unschedulable _ -> None
          in
          match (schedule_at 256, schedule_at 32) with
          | Some sa, Some st_sched ->
              let trace (s : Driver.success) acc =
                (* A fresh cache per loop: loops are distinct program
                   regions; the cap keeps the trace cheap while passing
                   the cold-start transient. *)
                let cache = Dcache.make ~size_bytes:(cache_kb * 1024) () in
                let iterations = Stdlib.min iterations_cap wide.Loop.trip_count in
                let st = Dcache.replay cache s.Driver.graph s.Driver.schedule ~iterations in
                let m, l, a = !acc in
                acc := (m + st.Dcache.misses, l + st.Dcache.loads, a + st.Dcache.accesses)
              in
              trace sa ample;
              trace st_sched tight
          | _ -> ())
        loops;
      let rate (m, l, _) = if l = 0 then 0.0 else float_of_int m /. float_of_int l in
      let acc (_, _, a) = float_of_int a in
      let ample_rate, ample_acc = (rate !ample, acc !ample) in
      let tight_rate, tight_acc = (rate !tight, acc !tight) in
      {
        config = Config.xwy ~x ~y ();
        miss_rate_ample = ample_rate;
        miss_rate_tight = tight_rate;
        extra_accesses = (tight_acc /. Stdlib.max 1.0 ample_acc) -. 1.0;
      })
    grid

let to_text t =
  Wr_util.Table.render
    ~title:
      "Extension: data-cache cost of spill code (direct-mapped L1; miss rates with an ample \
       vs a tight register file, and the extra memory transactions)"
    ~headers:[ "config"; "miss rate (256-RF)"; "miss rate (32-RF)"; "extra accesses" ]
    (List.map
       (fun r ->
         [
           Config.label_short r.config;
           Printf.sprintf "%.2f%%" (100.0 *. r.miss_rate_ample);
           Printf.sprintf "%.2f%%" (100.0 *. r.miss_rate_tight);
           Printf.sprintf "%+.1f%%" (100.0 *. r.extra_accesses);
         ])
       t)
