(** Extension study: spill memory traffic.

    The paper (Section 3.2) warns that "spill code increases the memory
    traffic and can result in an increase of the II".  Figure 3 shows
    the II side; this study shows the traffic side: per configuration
    and register file size, the extra loads and stores the spiller
    inserts, as a fraction of the program's own memory traffic.

    Together with {!Icache_study} this covers both memory-system
    effects the paper's perfect-memory assumption hides. *)

type cell = {
  config : Wr_machine.Config.t;
  registers : int;
  spilled_loops : float;  (** fraction of loops that needed spill code *)
  slowed_loops : float;
      (** fraction that resolved the pressure by running above the MII
          without spilling (the II-escalation lever) *)
  failed_loops : float;  (** fraction neither lever could fit *)
  traffic_overhead : float;
      (** (spill loads + stores) / (program loads + stores), weighted
          by execution *)
}

type t = cell list

val run : ?registers:int list -> ?suite_id:string -> Wr_ir.Loop.t array -> t

val to_text : t -> string
