(* Cross-run regression observatory over provenance ledgers and
   BENCH_*.json artifacts.  Pure functions over already-loaded records:
   the bench driver owns file IO and exit codes. *)

type divergence = {
  d_class : string;
  d_regression : bool;
  d_point : string;
  d_detail : string;
}

let point_label (r : Provenance.t) =
  Printf.sprintf "%s #%d %s %s r%d cm%d" r.Provenance.suite r.Provenance.index
    r.Provenance.loop r.Provenance.config r.Provenance.registers r.Provenance.cycle_model

(* Collapse the exact tally to one comparable verdict.  The order is a
   strength ranking: proving optimality beats an unproved improvement
   beats falling back to the heuristic. *)
let exact_verdict (e : Provenance.exact) =
  if e.Provenance.solves = 0 then "none"
  else if e.Provenance.fallback > 0 then "fallback"
  else if e.Provenance.unproved > 0 then "unproved"
  else "proved"

let verdict_rank = function
  | "proved" -> 0
  | "unproved" -> 1
  | "fallback" -> 2
  | _ -> 3 (* "none": no exact solves ran; rank changes involving it are benign *)

let compare_point ~threshold_pct (o : Provenance.t) (n : Provenance.t) =
  let ds = ref [] in
  let push d = ds := d :: !ds in
  let point = point_label n in
  (* Cycles: the one numeric class with a noise threshold. *)
  let oc = o.Provenance.cycles and nc = n.Provenance.cycles in
  if nc <> oc then begin
    let margin = Float.abs oc *. threshold_pct /. 100.0 in
    if nc > oc +. margin then
      push
        {
          d_class = "cycles_regression";
          d_regression = true;
          d_point = point;
          d_detail = Printf.sprintf "cycles %.2f -> %.2f (+%.2f%%)" oc nc
              (if oc = 0.0 then Float.infinity else (nc -. oc) /. oc *. 100.0);
        }
    else if nc < oc -. margin then
      push
        {
          d_class = "cycles_improvement";
          d_regression = false;
          d_point = point;
          d_detail = Printf.sprintf "cycles %.2f -> %.2f (%.2f%%)" oc nc
              (if oc = 0.0 then Float.neg_infinity else (nc -. oc) /. oc *. 100.0);
        }
  end;
  if n.Provenance.ii <> o.Provenance.ii then
    push
      {
        d_class = "ii_changed";
        d_regression = n.Provenance.ii > o.Provenance.ii;
        d_point = point;
        d_detail =
          Printf.sprintf "II %d -> %d (MII %d -> %d)" o.Provenance.ii n.Provenance.ii
            o.Provenance.mii n.Provenance.mii;
      };
  let verdict ~regression detail =
    push { d_class = "verdict_changed"; d_regression = regression; d_point = point; d_detail = detail }
  in
  if o.Provenance.pipelined <> n.Provenance.pipelined then
    verdict ~regression:(not n.Provenance.pipelined)
      (Printf.sprintf "pipelined %b -> %b" o.Provenance.pipelined n.Provenance.pipelined);
  if o.Provenance.oracle <> n.Provenance.oracle then
    verdict
      ~regression:(o.Provenance.oracle = "verified" && n.Provenance.oracle <> "verified")
      (Printf.sprintf "oracle %s -> %s" o.Provenance.oracle n.Provenance.oracle);
  if o.Provenance.quarantined <> n.Provenance.quarantined then
    verdict ~regression:n.Provenance.quarantined
      (if n.Provenance.quarantined then
         Printf.sprintf "newly quarantined (%s)" n.Provenance.tag
       else "no longer quarantined");
  let ov = exact_verdict o.Provenance.exact and nv = exact_verdict n.Provenance.exact in
  if ov <> nv then
    verdict
      ~regression:(verdict_rank nv > verdict_rank ov && nv <> "none")
      (Printf.sprintf "exact status %s -> %s" ov nv);
  if
    o.Provenance.spill_stores + o.Provenance.spill_loads
    <> n.Provenance.spill_stores + n.Provenance.spill_loads
  then
    verdict ~regression:false
      (Printf.sprintf "spill ops %d -> %d"
         (o.Provenance.spill_stores + o.Provenance.spill_loads)
         (n.Provenance.spill_stores + n.Provenance.spill_loads));
  if o.Provenance.backend <> n.Provenance.backend then
    verdict ~regression:false
      (Printf.sprintf "backend %s -> %s" o.Provenance.backend n.Provenance.backend);
  List.rev !ds

let diff ?(threshold_pct = 0.0) old_records new_records =
  let old_by_hash = Hashtbl.create (List.length old_records) in
  List.iter
    (fun (r : Provenance.t) ->
      if not (Hashtbl.mem old_by_hash r.Provenance.hash) then
        Hashtbl.add old_by_hash r.Provenance.hash r)
    old_records;
  let matched = Hashtbl.create (List.length new_records) in
  let joined =
    List.concat_map
      (fun (n : Provenance.t) ->
        match Hashtbl.find_opt old_by_hash n.Provenance.hash with
        | Some o ->
            Hashtbl.replace matched n.Provenance.hash ();
            compare_point ~threshold_pct o n
        | None ->
            [
              {
                d_class = "appeared";
                d_regression = false;
                d_point = point_label n;
                d_detail = Printf.sprintf "new point (cycles %.2f, II %d)" n.Provenance.cycles n.Provenance.ii;
              };
            ])
      new_records
  in
  let vanished =
    List.filter_map
      (fun (o : Provenance.t) ->
        if Hashtbl.mem matched o.Provenance.hash || not (Hashtbl.mem old_by_hash o.Provenance.hash)
        then None
        else begin
          (* Only report the first occurrence of a duplicated old hash. *)
          Hashtbl.remove old_by_hash o.Provenance.hash;
          Some
            {
              d_class = "vanished";
              d_regression = true;
              d_point = point_label o;
              d_detail = "point present in the old run only";
            }
        end)
      old_records
  in
  joined @ vanished

let has_regressions = List.exists (fun d -> d.d_regression)

let render_diff ds =
  match ds with
  | [] -> "no divergences\n"
  | _ ->
      let buf = Buffer.create 1024 in
      List.iter
        (fun d ->
          Buffer.add_string buf
            (Printf.sprintf "%-10s %-20s %s: %s\n"
               (if d.d_regression then "REGRESSION" else "benign")
               d.d_class d.d_point d.d_detail))
        ds;
      let regressions = List.length (List.filter (fun d -> d.d_regression) ds) in
      Buffer.add_string buf
        (Printf.sprintf "%d divergence(s): %d regression(s), %d benign\n" (List.length ds)
           regressions
           (List.length ds - regressions));
      Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Single-run dashboard                                                *)

let top_n = 10

let report (records : Provenance.t list) =
  let buf = Buffer.create 4096 in
  let n = List.length records in
  Buffer.add_string buf (Printf.sprintf "Run ledger report: %d point(s)\n\n" n);
  if n = 0 then Buffer.contents buf
  else begin
    (* Stage table per (suite, config): the same aggregate shape the
       studies print, recomputed from provenance alone. *)
    let keys =
      List.sort_uniq compare
        (List.map (fun (r : Provenance.t) -> (r.Provenance.suite, r.Provenance.config)) records)
    in
    Buffer.add_string buf
      (Printf.sprintf "%-16s %-12s %7s %6s %8s %7s %6s %6s %14s\n" "suite" "config" "points"
         "pipe" "spilled" "quar" "ii_sum" "evict" "cycles_total");
    List.iter
      (fun (suite, config) ->
        let rs =
          List.filter
            (fun (r : Provenance.t) -> r.Provenance.suite = suite && r.Provenance.config = config)
            records
        in
        let count p = List.length (List.filter p rs) in
        Buffer.add_string buf
          (Printf.sprintf "%-16s %-12s %7d %6d %8d %7d %6d %6d %14.1f\n" suite config
             (List.length rs)
             (count (fun r -> r.Provenance.pipelined))
             (count (fun r -> r.Provenance.spill_stores + r.Provenance.spill_loads > 0))
             (count (fun r -> r.Provenance.quarantined))
             (List.fold_left (fun acc r -> acc + r.Provenance.ii) 0 rs)
             (List.fold_left (fun acc r -> acc + r.Provenance.evictions) 0 rs)
             (List.fold_left (fun acc r -> acc +. r.Provenance.cycles) 0.0 rs)))
      keys;
    (* II-over-MII histogram: how far the pipeline sits from its bound. *)
    let deltas =
      List.filter_map
        (fun (r : Provenance.t) ->
          if r.Provenance.pipelined then Some (r.Provenance.ii - r.Provenance.mii) else None)
        records
    in
    Buffer.add_string buf "\nII over MII (pipelined points):\n";
    if deltas = [] then Buffer.add_string buf "  (no pipelined points)\n"
    else begin
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun d ->
          let d = if d > 16 then 17 else d in
          Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d)))
        deltas;
      let bins = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []) in
      let total = List.length deltas in
      List.iter
        (fun (d, c) ->
          let label = if d > 16 then ">16" else Printf.sprintf "+%d" d in
          Buffer.add_string buf
            (Printf.sprintf "  %-4s %7d  (%5.1f%%)\n" label c
               (100.0 *. float_of_int c /. float_of_int total)))
        bins
    end;
    (* Backend and exact-status breakdown. *)
    let backends =
      List.sort_uniq compare (List.map (fun (r : Provenance.t) -> r.Provenance.backend) records)
    in
    Buffer.add_string buf "\nBackend breakdown:\n";
    List.iter
      (fun b ->
        let rs = List.filter (fun (r : Provenance.t) -> r.Provenance.backend = b) records in
        let sum f = List.fold_left (fun acc (r : Provenance.t) -> acc + f r.Provenance.exact) 0 rs in
        Buffer.add_string buf
          (Printf.sprintf
             "  %-10s %6d point(s), %d exact solve(s): %d proved, %d unproved, %d fallback, \
              %d node(s), %d II(s) refuted\n"
             b (List.length rs)
             (sum (fun e -> e.Provenance.solves))
             (sum (fun e -> e.Provenance.proved))
             (sum (fun e -> e.Provenance.unproved))
             (sum (fun e -> e.Provenance.fallback))
             (sum (fun e -> e.Provenance.nodes))
             (sum (fun e -> e.Provenance.iis_refuted))))
      backends;
    (* Top-N slowest: wall time when the ledger recorded it, cycles
       otherwise (the deterministic default has no wall times). *)
    let have_wall = List.exists (fun (r : Provenance.t) -> r.Provenance.wall_us <> None) records in
    let slow_key (r : Provenance.t) =
      if have_wall then float_of_int (Option.value ~default:0 r.Provenance.wall_us)
      else r.Provenance.cycles
    in
    let slowest =
      List.filteri (fun i _ -> i < top_n)
        (List.stable_sort (fun a b -> compare (slow_key b) (slow_key a)) records)
    in
    Buffer.add_string buf
      (Printf.sprintf "\nTop %d slowest points (%s):\n" top_n
         (if have_wall then "by wall time" else "by weighted cycles"));
    List.iter
      (fun (r : Provenance.t) ->
        Buffer.add_string buf
          (if have_wall then
             Printf.sprintf "  %10.2f ms  %s\n"
               (float_of_int (Option.value ~default:0 r.Provenance.wall_us) /. 1e3)
               (point_label r)
           else Printf.sprintf "  %14.1f cy  %s\n" r.Provenance.cycles (point_label r)))
      slowest;
    (* Top-N most-evicted: where the scheduler fought hardest. *)
    let evicted =
      List.filteri (fun i _ -> i < top_n)
        (List.stable_sort
           (fun (a : Provenance.t) (b : Provenance.t) ->
             compare b.Provenance.evictions a.Provenance.evictions)
           records)
    in
    if List.exists (fun (r : Provenance.t) -> r.Provenance.evictions > 0) evicted then begin
      Buffer.add_string buf (Printf.sprintf "\nTop %d most-evicted points:\n" top_n);
      List.iter
        (fun (r : Provenance.t) ->
          if r.Provenance.evictions > 0 then
            Buffer.add_string buf
              (Printf.sprintf "  %6d eviction(s)  %s\n" r.Provenance.evictions (point_label r)))
        evicted
    end;
    let quarantined = List.filter (fun (r : Provenance.t) -> r.Provenance.quarantined) records in
    if quarantined <> [] then begin
      Buffer.add_string buf
        (Printf.sprintf "\nQuarantined points (%d):\n" (List.length quarantined));
      List.iter
        (fun (r : Provenance.t) ->
          Buffer.add_string buf (Printf.sprintf "  %s: %s\n" (point_label r) r.Provenance.tag))
        quarantined
    end;
    Buffer.contents buf
  end

(* ------------------------------------------------------------------ *)
(* BENCH_*.json diff                                                   *)

let ( let* ) = Result.bind

let str_member key obj = Option.bind (Bench_schema.member key obj) Bench_schema.to_str

let num_member key obj = Option.bind (Bench_schema.member key obj) Bench_schema.to_float

let rows_of key j =
  match Bench_schema.member key j with Some (Bench_schema.List l) -> l | _ -> []

(* gap rows carry discrete results: II movements and status changes
   gate like ledger points do. *)
let diff_gap old_j new_j =
  let key row =
    match (str_member "family" row, str_member "loop" row, str_member "config" row) with
    | Some f, Some l, Some c -> Some (f ^ "/" ^ l ^ "/" ^ c)
    | _ -> None
  in
  let old_rows = Hashtbl.create 64 in
  List.iter
    (fun row ->
      match key row with
      | Some k when not (Hashtbl.mem old_rows k) -> Hashtbl.add old_rows k row
      | _ -> ())
    (rows_of "rows" old_j);
  let matched = Hashtbl.create 64 in
  let joined =
    List.concat_map
      (fun nrow ->
        match key nrow with
        | None -> []
        | Some k -> (
            match Hashtbl.find_opt old_rows k with
            | None ->
                [ { d_class = "appeared"; d_regression = false; d_point = k;
                    d_detail = "new gap row" } ]
            | Some orow ->
                Hashtbl.replace matched k ();
                let ds = ref [] in
                let push d = ds := d :: !ds in
                let field name = (num_member name orow, num_member name nrow) in
                (match field "heur_ii" with
                | Some o, Some n when o <> n ->
                    push
                      { d_class = "ii_changed"; d_regression = n > o; d_point = k;
                        d_detail = Printf.sprintf "heuristic II %.0f -> %.0f" o n }
                | _ -> ());
                (match field "exact_ii" with
                | Some o, Some n when o <> n ->
                    push
                      { d_class = (if n > o then "cycles_regression" else "cycles_improvement");
                        d_regression = n > o; d_point = k;
                        d_detail = Printf.sprintf "exact II %.0f -> %.0f" o n }
                | _ -> ());
                (match (str_member "status" orow, str_member "status" nrow) with
                | Some o, Some n when o <> n ->
                    let rank = function
                      | "proved_optimal" -> 0
                      | "improved_unproved" -> 1
                      | _ -> 2
                    in
                    push
                      { d_class = "verdict_changed"; d_regression = rank n > rank o;
                        d_point = k; d_detail = Printf.sprintf "status %s -> %s" o n }
                | _ -> ());
                List.rev !ds))
      (rows_of "rows" new_j)
  in
  let vanished =
    List.filter_map
      (fun orow ->
        match key orow with
        | Some k when Hashtbl.mem old_rows k && not (Hashtbl.mem matched k) ->
            Hashtbl.remove old_rows k;
            Some
              { d_class = "vanished"; d_regression = true; d_point = k;
                d_detail = "gap row present in the old run only" }
        | _ -> None)
      (rows_of "rows" old_j)
  in
  joined @ vanished

(* sched/interp rows carry wall times: noisy, so deltas are reported
   but never gate. *)
let diff_timing ~threshold_pct ~metric old_j new_j =
  let old_rows = Hashtbl.create 64 in
  List.iter
    (fun row ->
      match str_member "name" row with
      | Some k when not (Hashtbl.mem old_rows k) -> Hashtbl.add old_rows k row
      | _ -> ())
    (rows_of "loops" old_j);
  List.filter_map
    (fun nrow ->
      match str_member "name" nrow with
      | None -> None
      | Some k -> (
          match Hashtbl.find_opt old_rows k with
          | None -> None
          | Some orow -> (
              match (num_member metric orow, num_member metric nrow) with
              | Some o, Some n
                when o > 0.0 && Float.abs (n -. o) /. o *. 100.0 > threshold_pct ->
                  Some
                    { d_class = (if n > o then "cycles_regression" else "cycles_improvement");
                      d_regression = false; d_point = k;
                      d_detail =
                        Printf.sprintf "%s %.3f -> %.3f (%+.1f%%, timing: never gates)" metric
                          o n ((n -. o) /. o *. 100.0) }
              | _ -> None)))
    (rows_of "loops" new_j)

let diff_bench ?(threshold_pct = 0.0) old_j new_j =
  let* old_kind = Bench_schema.validate old_j in
  let* new_kind = Bench_schema.validate new_j in
  if old_kind <> new_kind then
    Error (Printf.sprintf "kind mismatch: %s vs %s" old_kind new_kind)
  else
    match old_kind with
    | "gap" -> Ok (diff_gap old_j new_j)
    | "sched" -> Ok (diff_timing ~threshold_pct ~metric:"wall_s" old_j new_j)
    | "interp" -> Ok (diff_timing ~threshold_pct ~metric:"flat_ns_per_iter" old_j new_j)
    | k -> Error (Printf.sprintf "unknown bench kind %s" k)
