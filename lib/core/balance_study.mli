(** Extension study: the bus : FPU balance.

    The paper fixes 2 FPUs per bus with a footnote: "preliminary
    studies show that a relation of 2 FPUs for each bus is the most
    balanced configuration" (and the MIPS R10000's 1 memory + 2 FP
    issue).  This study reruns that preliminary experiment: at a fixed
    area-ish budget (constant number of issue slots), sweep the FPU :
    bus ratio and measure the suite's peak throughput.

    A machine with [b] buses and [f] FPUs has [b + f] issue slots; we
    compare all splits of a fixed slot budget and report the weighted
    cycles of the suite under perfect scheduling (the Figure-2 rate
    model, which is exact for this purpose). *)

type point = {
  buses : int;
  fpus : int;
  ratio : float;  (** [fpus / buses] *)
  relative_cycles : float;  (** weighted cycles, normalized to the best split *)
}

type t = (int * point list) list
(** Per slot budget, the splits in ascending bus count. *)

val run : ?slot_budgets:int list -> Wr_ir.Loop.t array -> t
(** [slot_budgets] defaults to [[3; 6; 12]] (the 1w1, 2w1 and 4w1
    totals). *)

val to_text : t -> string
