(** Decision provenance: one structured record per evaluated point.

    Every point the evaluation engine settles — a (suite, loop index,
    config, registers, cycle model) coordinate — can emit one record
    saying {e what} was decided (II vs MII, cycles, spill traffic,
    pipelined or fallback) and {e how} (which backend, how the exact
    lane fared, whether the oracles checked it, whether it was
    quarantined and under what exception).  Records carry the content
    hash of the point's full input — the identity ROADMAP item 1's
    persistent result store will key on — and are written as a
    checksummed {!Wr_obs.Ledger} file.

    {2 Determinism}

    The ledger is byte-identical for any [--jobs]: records are
    buffered in memory as points complete (any order) and written
    sorted by (suite, index, config, registers, cycle model) when the
    run ends.  Two fields can break byte-identity and are therefore
    off by default: wall time (opt in with [WR_LEDGER_WALL=1] or
    [--ledger-wall]; the field is absent otherwise) and any
    non-default backend whose budget expiry depends on the wall clock
    (the [exact]/[portfolio] statuses are documented as
    best-effort).  A journal-resumed run re-emits records only for the
    points it actually evaluated — replayed points are cache entries,
    not decisions of this run. *)

type exact = {
  solves : int;
  proved : int;
  unproved : int;
  fallback : int;
  nodes : int;
  iis_refuted : int;
}

type t = {
  hash : int64;  (** {!point_hash} of the full point input *)
  suite : string;
  index : int;
  loop : string;
  config : string;  (** [Config.label] *)
  registers : int;
  cycle_model : int;  (** cycle-model cycles *)
  ii : int;
  mii : int;
  cycles : float;
  pipelined : bool;
  spill_rounds : int;
  spill_stores : int;
  spill_loads : int;
  backend : string;  (** [Backend.to_string] of the active backend *)
  sched_runs : int;  (** scheduler requests the point made *)
  evictions : int;  (** scheduler evictions summed over those runs *)
  exact : exact;
  oracle : string;  (** ["verified"] or ["unverified"] *)
  quarantined : bool;
  tag : string;  (** printed exception when quarantined, else [""] *)
  wall_us : int option;  (** only under {!set_wall}; breaks byte-identity *)
}

val point_hash :
  suite_id:string ->
  index:int ->
  config:Wr_machine.Config.t ->
  registers:int ->
  cycle_model:Wr_machine.Cycle_model.t ->
  Wr_ir.Loop.t ->
  int64
(** FNV-1a 64 over a canonical rendering of the whole point input:
    suite id, loop index, config label, register count, cycle-model
    cycles, and the loop body itself (name, trip count, weight bits,
    every operation, every dependence edge).  Two points hash equal
    iff the evaluation engine would be handed the same problem, so
    cross-run joins survive reordering, suite growth, and renumbering
    of unrelated loops. *)

(** {2 Capture} *)

val set_capture : bool -> unit
(** Master switch; off by default (the disabled mode costs the
    evaluation path one atomic load per point). *)

val capture_enabled : unit -> bool

val set_wall : bool -> unit
(** Include per-record wall time.  Initialized from [WR_LEDGER_WALL];
    documents away byte-identity when on. *)

val wall_enabled : unit -> bool

val record : t -> unit
(** Buffer one record (thread-safe).  The caller is responsible for
    at-most-once per point per run — in the evaluation engine that is
    the cache's first-store-wins discipline. *)

val records : unit -> t list
(** Buffered records in ledger order (the deterministic sort). *)

val reset : unit -> unit

(** {2 Ledger files} *)

val schema : string
(** ["wr-ledger/1"], the header tag. *)

val write : string -> unit
(** Write the buffered records as a ledger file at the given path. *)

val load : string -> (t list, string) result
(** Read a ledger back, verifying every line checksum and the header
    tag; any corruption is an error. *)
