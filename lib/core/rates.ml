module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Ddg = Wr_ir.Ddg
module Operation = Wr_ir.Operation
module Opcode = Wr_ir.Opcode
module Loop = Wr_ir.Loop

type t = {
  rec_rate : float;
  bus_rate : float;
  fpu_rate : float;
  cycles_per_iteration : float;
}

(* Recurrence rates depend only on the graph and the cycle model, and
   are queried for every configuration of the grid; memoize per loop.

   Thread-safety discipline: both memo tables are shared across pool
   domains and every access is guarded by [cache_mutex]; the analyses
   run outside the lock, so concurrent misses on one key duplicate a
   deterministic computation and the duplicate [Hashtbl.replace] is
   harmless.  Cached values are immutable once published (the
   compactable array is written only by Compact.analyze before it is
   stored). *)
let cache_mutex = Mutex.create ()

let rec_rate_cache : (int * int, float) Hashtbl.t = Hashtbl.create 4096

let loop_key (l : Loop.t) = Hashtbl.hash (l.Loop.name, Ddg.num_ops l.Loop.ddg)

let memoized table key compute =
  Mutex.lock cache_mutex;
  let hit = Hashtbl.find_opt table key in
  Mutex.unlock cache_mutex;
  match hit with
  | Some v -> v
  | None ->
      let v = compute () in
      Mutex.lock cache_mutex;
      Hashtbl.replace table key v;
      Mutex.unlock cache_mutex;
      v

let rec_rate_of ~cycle_model (l : Loop.t) =
  let key = (loop_key l, Cycle_model.cycles cycle_model) in
  memoized rec_rate_cache key (fun () -> Wr_sched.Mii.rec_rate ~cycle_model l.Loop.ddg)

let compact_cache : (int * int, bool array) Hashtbl.t = Hashtbl.create 4096

let compactable_of ~width (l : Loop.t) =
  let key = (loop_key l, width) in
  memoized compact_cache key (fun () ->
      (Wr_widen.Compact.analyze ~width l.Loop.ddg).Wr_widen.Compact.compactable)

(* Figure 2 is a limits study: perfect scheduling with unbounded
   unrolling hides the II >= 1 quantization, so the cost per source
   iteration is the continuous rate — compactable work needs 1/Y of a
   slot on a width-Y machine, everything else a full slot, and
   recurrences impose their cycle ratio regardless of resources.  (The
   finite-register experiments in Evaluate use the real scheduler on
   the non-unrolled body instead.) *)
let of_loop (c : Config.t) ~cycle_model (l : Loop.t) =
  let g = l.Loop.ddg in
  let compactable = compactable_of ~width:c.Config.width l in
  let y = float_of_int c.Config.width in
  let bus = ref 0.0 and fpu = ref 0.0 in
  Array.iter
    (fun (o : Operation.t) ->
      let occ = float_of_int (Cycle_model.occupancy cycle_model o.Operation.opcode) in
      let demand = if compactable.(o.Operation.id) then occ /. y else occ in
      match Opcode.resource_class o.Operation.opcode with
      | Opcode.Bus -> bus := !bus +. demand
      | Opcode.Fpu -> fpu := !fpu +. demand)
    (Ddg.ops g);
  let bus_rate = !bus /. float_of_int c.Config.buses in
  let fpu_rate = !fpu /. float_of_int c.Config.fpus in
  let rec_rate = rec_rate_of ~cycle_model l in
  let cycles_per_iteration =
    Stdlib.max 1e-6 (Stdlib.max rec_rate (Stdlib.max bus_rate fpu_rate))
  in
  { rec_rate; bus_rate; fpu_rate; cycles_per_iteration }

let loop_cycles c ~cycle_model l =
  let r = of_loop c ~cycle_model l in
  r.cycles_per_iteration *. float_of_int l.Loop.trip_count *. l.Loop.weight
