type entry = {
  hash : int64;
  ii : int;
  cycles_bits : int64;
  required_regs : int;
  spill_stores : int;
  spill_loads : int;
  spill_rounds : int;
  pipelined : bool;
  mii : int;
  trip_count : int;
}

type recovery = {
  segments : int;
  entries : int;
  quarantined_segments : int;
  truncated_bytes : int;
}

exception Locked of string

type t = {
  dir : string;
  lock : Wr_util.Lockfile.t;
  table : (int64, entry) Hashtbl.t;
  buf : Buffer.t;
  segment_records : int;
  mutable fd : Unix.file_descr;
  mutable active_seg : int;  (** number of the segment [fd] appends to *)
  mutable active_count : int;  (** records in the active segment *)
  mutable pending : int;
  mutable appended : int;
  mutable closed : bool;
  mutex : Mutex.t;
}

let version_tag = "wrstore/1"

let header_line = version_tag ^ "\n"

let batch_records = 64

let default_segment_records = 4096

(* Same FNV-1a as the journal: every record line is self-checking and
   the format needs no checksum library. *)
let fnv1a64 = Journal.fnv1a64

let line_of_entry e =
  let payload =
    Printf.sprintf "e %Lx %d %Lx %d %d %d %d %d %d %d" e.hash e.ii e.cycles_bits
      e.required_regs e.spill_stores e.spill_loads e.spill_rounds
      (if e.pipelined then 1 else 0)
      e.mii e.trip_count
  in
  Printf.sprintf "%s %Lx\n" payload (fnv1a64 payload)

let entry_of_line line =
  match String.split_on_char ' ' line with
  | [ "e"; hash; ii; bits; required; stores; loads; rounds; pipelined; mii; trip; crc ] -> (
      let payload = String.sub line 0 (String.length line - String.length crc - 1) in
      if not (String.equal (Printf.sprintf "%Lx" (fnv1a64 payload)) crc) then None
      else
        try
          let int s = int_of_string s in
          Some
            {
              hash = Int64.of_string ("0x" ^ hash);
              ii = int ii;
              cycles_bits = Int64.of_string ("0x" ^ bits);
              required_regs = int required;
              spill_stores = int stores;
              spill_loads = int loads;
              spill_rounds = int rounds;
              pipelined = (match pipelined with "1" -> true | "0" -> false | _ -> raise Exit);
              mii = int mii;
              trip_count = int trip;
            }
        with _ -> None)
  | _ -> None

let segment_name n = Printf.sprintf "seg-%06d.wrs" n

let segment_path dir n = Filename.concat dir (segment_name n)

let segment_number name =
  if String.length name = 14 && String.sub name 0 4 = "seg-" && Filename.check_suffix name ".wrs"
  then int_of_string_opt (String.sub name 4 6)
  else None

let list_segments dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun name ->
         match segment_number name with Some n -> Some (n, name) | None -> None)
  |> List.sort compare

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

(* Scan one segment: a good header followed by intact record lines.
   Returns the header verdict, the intact entries in file order, the
   byte length of the intact prefix, and whether anything beyond it
   remains in the file. *)
type scan = {
  s_header_ok : bool;
  s_entries : entry list;
  s_valid_len : int;
  s_has_tail : bool;
  s_records : int;
}

let scan_segment path =
  let contents = read_file path in
  let n = String.length contents in
  let hlen = String.length header_line in
  if n < hlen || not (String.equal (String.sub contents 0 hlen) header_line) then
    { s_header_ok = false; s_entries = []; s_valid_len = 0; s_has_tail = n > 0; s_records = 0 }
  else begin
    let entries = ref [] in
    let records = ref 0 in
    let ok = ref hlen in
    let pos = ref hlen in
    (try
       while !pos < n do
         match String.index_from_opt contents !pos '\n' with
         | None -> raise Exit
         | Some nl -> (
             match entry_of_line (String.sub contents !pos (nl - !pos)) with
             | None -> raise Exit
             | Some e ->
                 entries := e :: !entries;
                 incr records;
                 pos := nl + 1;
                 ok := !pos)
       done
     with Exit -> ());
    {
      s_header_ok = true;
      s_entries = List.rev !entries;
      s_valid_len = !ok;
      s_has_tail = !ok < n;
      s_records = !records;
    }
  end

(* Move a damaged segment aside without destroying the evidence; pick a
   fresh name if a previous recovery already parked one there. *)
let quarantine_rename path =
  let rec pick i =
    let candidate = if i = 0 then path ^ ".quarantined" else Printf.sprintf "%s.quarantined.%d" path i in
    if Sys.file_exists candidate then pick (i + 1) else candidate
  in
  Sys.rename path (pick 0)

(* Atomically replace a sealed segment with just its intact prefix
   (write a sibling temp file, then rename over). *)
let rewrite_prefix path entries =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let b = Buffer.create 4096 in
      Buffer.add_string b header_line;
      List.iter (fun e -> Buffer.add_string b (line_of_entry e)) entries;
      write_all fd (Buffer.contents b);
      Unix.fsync fd);
  Sys.rename tmp path

let fsync_dir dir =
  (* Make renames and creations durable on filesystems that need the
     directory entry synced; best-effort elsewhere. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let open_dir ?(segment_records = default_segment_records) dir =
  if segment_records < 1 then invalid_arg "Store.open_dir: segment_records must be >= 1";
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Store.open_dir: %s exists and is not a directory" dir);
  let lock =
    match Wr_util.Lockfile.acquire (Filename.concat dir "LOCK") with
    | Ok l -> l
    | Error msg -> raise (Locked (Printf.sprintf "store %s: %s" dir msg))
  in
  match
    let table = Hashtbl.create 4096 in
    let quarantined = ref 0 in
    let truncated = ref 0 in
    let segs = list_segments dir in
    let last = match List.rev segs with [] -> None | (n, _) :: _ -> Some n in
    let surviving = ref [] in
    List.iter
      (fun (n, name) ->
        let path = Filename.concat dir name in
        let s = scan_segment path in
        if not s.s_header_ok then begin
          (* Wrong or missing version header: nothing in the file can be
             trusted, park the whole segment. *)
          quarantine_rename path;
          incr quarantined
        end
        else begin
          if s.s_has_tail then
            if Some n = last then begin
              (* Torn tail of the newest segment: the crash interrupted
                 an append; drop the tail and keep appending here. *)
              truncated := !truncated + ((Unix.stat path).Unix.st_size - s.s_valid_len)
            end
            else begin
              (* Corruption inside a sealed segment: park the original
                 and keep its intact prefix as the replacement. *)
              quarantine_rename path;
              rewrite_prefix path s.s_entries;
              incr quarantined
            end;
          (* Earliest segment wins a duplicate hash, matching the
             first-store-wins discipline of the in-memory caches. *)
          List.iter
            (fun e -> if not (Hashtbl.mem table e.hash) then Hashtbl.add table e.hash e)
            s.s_entries;
          surviving := (n, s) :: !surviving
        end)
      segs;
    let active_seg, active_count, valid_len =
      match !surviving with
      | (n, s) :: _ when Some n = last -> (n, s.s_records, s.s_valid_len)
      | _ -> (
          (* No usable newest segment (empty dir, or it was quarantined
             whole): start a fresh one after the highest number ever
             used, so a parked segment's name is never reused. *)
          match List.rev segs with [] -> (1, 0, -1) | (n, _) :: _ -> (n + 1, 0, -1))
    in
    let path = segment_path dir active_seg in
    let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
    (if valid_len >= 0 then begin
       Unix.ftruncate fd valid_len;
       ignore (Unix.lseek fd valid_len Unix.SEEK_SET)
     end
     else begin
       write_all fd header_line;
       Unix.fsync fd
     end);
    fsync_dir dir;
    let t =
      {
        dir;
        lock;
        table;
        buf = Buffer.create 4096;
        segment_records;
        fd;
        active_seg;
        active_count;
        pending = 0;
        appended = 0;
        closed = false;
        mutex = Mutex.create ();
      }
    in
    let recovery =
      {
        segments = List.length !surviving + (if valid_len < 0 then 1 else 0);
        entries = Hashtbl.length table;
        quarantined_segments = !quarantined;
        truncated_bytes = !truncated;
      }
    in
    (t, recovery)
  with
  | result -> result
  | exception e ->
      Wr_util.Lockfile.release lock;
      raise e

let flush_locked t =
  if Buffer.length t.buf > 0 then begin
    write_all t.fd (Buffer.contents t.buf);
    Buffer.clear t.buf;
    t.pending <- 0;
    Unix.fsync t.fd
  end

let rotate_locked t =
  flush_locked t;
  Unix.close t.fd;
  t.active_seg <- t.active_seg + 1;
  t.active_count <- 0;
  let path = segment_path t.dir t.active_seg in
  t.fd <- Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644;
  write_all t.fd header_line;
  Unix.fsync t.fd;
  fsync_dir t.dir

let find t hash =
  locked t (fun () ->
      if t.closed then invalid_arg "Store.find: store is closed";
      Hashtbl.find_opt t.table hash)

let add t e =
  locked t (fun () ->
      if t.closed then invalid_arg "Store.add: store is closed";
      if not (Hashtbl.mem t.table e.hash) then begin
        Hashtbl.add t.table e.hash e;
        if t.active_count >= t.segment_records then rotate_locked t;
        Buffer.add_string t.buf (line_of_entry e);
        t.active_count <- t.active_count + 1;
        t.pending <- t.pending + 1;
        t.appended <- t.appended + 1;
        if t.pending >= batch_records then flush_locked t
      end)

let length t = locked t (fun () -> Hashtbl.length t.table)

let appended t = locked t (fun () -> t.appended)

let flush t = locked t (fun () -> if not t.closed then flush_locked t)

(* Merge every live entry into a single segment, sorted by hash and
   deduplicated, so two stores holding the same entry set compact to
   byte-identical files regardless of the order (or pool interleaving)
   the entries arrived in.  The compacted data is fully written and
   renamed into place as seg-000001 before the other segments are
   unlinked; a crash in between leaves duplicates that the first-wins
   load discipline resolves. *)
let compact t =
  locked t (fun () ->
      if t.closed then invalid_arg "Store.compact: store is closed";
      flush_locked t;
      Unix.close t.fd;
      let entries =
        Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
        |> List.sort (fun a b -> Int64.unsigned_compare a.hash b.hash)
      in
      let target = segment_path t.dir 1 in
      let tmp = target ^ ".tmp" in
      let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let b = Buffer.create (65 * (List.length entries + 1)) in
          Buffer.add_string b header_line;
          List.iter (fun e -> Buffer.add_string b (line_of_entry e)) entries;
          write_all fd (Buffer.contents b);
          Unix.fsync fd);
      Sys.rename tmp target;
      fsync_dir t.dir;
      List.iter
        (fun (n, name) -> if n <> 1 then Sys.remove (Filename.concat t.dir name))
        (list_segments t.dir);
      fsync_dir t.dir;
      t.active_seg <- 1;
      t.active_count <- List.length entries;
      t.fd <- Unix.openfile target [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644)

let close t =
  locked t (fun () ->
      if not t.closed then begin
        flush_locked t;
        t.closed <- true;
        Unix.close t.fd;
        Wr_util.Lockfile.release t.lock
      end)

let dir t = t.dir
