(** Append-only evaluation journal: checkpoint/resume for long sweeps.

    One record per completed (suite, loop index, machine point)
    evaluation, written as a single self-checking text line.  On
    restart {!open_for_resume} replays every intact record into the
    caller's cache and positions the file for appending, so an
    interrupted study resumes where it died and — because the [cycles]
    float is stored as its IEEE-754 bit pattern — reproduces the
    uninterrupted run's output byte for byte.

    {2 Crash safety}

    The format is a log, never rewritten: a crash (or [kill -9]) can
    only damage the {e tail} of the file, and only the records since
    the last fsync batch can be lost entirely.  Each line carries an
    FNV-1a checksum over its payload and must be newline-terminated;
    replay stops at the first line that fails either test and
    truncates the file there, so a torn final write costs exactly the
    points it described — they are simply re-evaluated.  Appends are
    buffered and fsynced every {!batch_records} records (and on
    {!flush}/{!close}), batching the sync cost across the pool's
    completion rate. *)

type key = {
  suite_id : string;
  index : int;
  buses : int;
  width : int;
  registers : int;
  cycles : int;  (** cycle-model cycles, the last component of the memo key *)
}

type entry = {
  key : key;
  ii : int;
  cycles_bits : int64;  (** [Int64.bits_of_float] of the weighted cycles *)
  required_regs : int;
  spill_stores : int;
  spill_loads : int;
  spill_rounds : int;
  pipelined : bool;
  mii : int;
  trip_count : int;
}
(** Format tag [wrj2] (was [wrj1] before [spill_rounds]); a journal
    written by an older build fails the shape check line by line and
    is discarded like any torn tail — the run re-evaluates instead of
    resuming. *)

type t

exception Locked of string
(** Raised by {!open_for_resume} when another live process holds the
    journal's lockfile ([<path>.lock]); the message names the journal
    and the owning pid.  Two writers interleaving appends would corrupt
    the record stream silently, so a second attach fails loudly
    instead.  Locks left by killed processes are detected (the owner
    pid no longer exists) and broken automatically, keeping
    crash-then-resume a single command. *)

val fnv1a64 : string -> int64
(** The line checksum (FNV-1a 64, matching [Wr_util.Fault]'s string
    hash), shared with {!Store}'s segment format. *)

val batch_records : int
(** Records buffered between fsyncs (bounds what a crash can lose). *)

val open_for_resume : string -> t * entry list
(** Open (creating if absent) a journal for appending and return the
    entries of its intact prefix, in file order.  A corrupt or torn
    tail is discarded and truncated away before the first append. *)

val append : t -> entry -> unit
(** Buffer one record; thread-safe.  Raises [Invalid_argument] if the
    journal is closed. *)

val flush : t -> unit
(** Write out and fsync any buffered records. *)

val close : t -> unit
(** {!flush}, then close the file.  Idempotent. *)

val path : t -> string
