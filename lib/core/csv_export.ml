(* Canonical CSV serialisations of the figure studies.  The bench
   harness writes results/*.csv through these builders and the golden
   tests regenerate the same strings, so the two can never drift on
   format. *)

module Config = Wr_machine.Config

let fig2_header = [ "factor"; "config"; "speedup" ]

let fig2_rows (t : Peak_study.t) =
  List.concat_map
    (fun (factor, points) ->
      List.map
        (fun (p : Peak_study.point) ->
          [
            string_of_int factor;
            Config.label_short p.Peak_study.config;
            Printf.sprintf "%.4f" p.Peak_study.speedup;
          ])
        points)
    t

let fig3_header = [ "config"; "registers"; "speedup" ]

let fig3_rows (t : Spill_study.t) =
  List.concat_map
    (fun (r : Spill_study.row) ->
      List.map
        (fun (z, cell) ->
          [
            Config.label_short r.Spill_study.config;
            string_of_int z;
            (match cell with
            | Spill_study.Speedup s -> Printf.sprintf "%.4f" s
            | Spill_study.Not_schedulable -> "NA");
          ])
        r.Spill_study.cells)
    t

let fig9_header = [ "year"; "config"; "tc"; "speedup"; "die_percent" ]

let fig9_rows (t : (Wr_cost.Sia.generation * Tradeoff.point list) list) =
  List.concat_map
    (fun ((g : Wr_cost.Sia.generation), points) ->
      List.map
        (fun (p : Tradeoff.point) ->
          [
            string_of_int g.Wr_cost.Sia.year;
            Config.label p.Tradeoff.config;
            Printf.sprintf "%.3f" p.Tradeoff.tc;
            Printf.sprintf "%.4f" p.Tradeoff.speedup;
            Printf.sprintf "%.2f" (100.0 *. p.Tradeoff.area /. g.Wr_cost.Sia.lambda2_per_chip);
          ])
        points)
    t

let fig3_families_header = "family" :: fig3_header

let fig3_families_rows results =
  List.concat_map (fun (family, t) -> List.map (fun row -> family :: row) (fig3_rows t)) results

let fig9_families_header = "family" :: fig9_header

let fig9_families_rows results =
  List.concat_map (fun (family, t) -> List.map (fun row -> family :: row) (fig9_rows t)) results

let gap_header =
  [ "family"; "loop"; "index"; "config"; "ops"; "mii"; "heur_ii"; "exact_ii"; "gap";
    "status"; "nodes" ]

let gap_rows (t : Gap_study.t) =
  List.map
    (fun (r : Gap_study.row) ->
      [
        r.Gap_study.family;
        r.Gap_study.loop_name;
        string_of_int r.Gap_study.index;
        Config.label_short r.Gap_study.config;
        string_of_int r.Gap_study.ops;
        string_of_int r.Gap_study.mii;
        string_of_int r.Gap_study.heur_ii;
        string_of_int r.Gap_study.exact_ii;
        string_of_int r.Gap_study.gap;
        Gap_study.status_string r.Gap_study.status;
        string_of_int r.Gap_study.nodes;
      ])
    t.Gap_study.rows

let to_string ~header rows =
  String.concat "" (List.map (fun row -> String.concat "," row ^ "\n") (header :: rows))
