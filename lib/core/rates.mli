(** Analytic ILP limits under perfect scheduling (paper, Section 3.1).

    Figure 2 assumes a perfect schedule, perfect memory and an infinite
    register file, so a loop's steady-state cost on a configuration is
    the larger of two {e rates} (cycles per source iteration):

    {ul
    {- the recurrence rate — the critical cycle ratio of the dependence
       graph, independent of resources;}
    {- the resource rate — total slot occupancy per iteration divided
       by slots per cycle, where a compactable operation on a width-[Y]
       machine needs only [1/Y] of a slot.}}

    Computing the rates directly (instead of materializing the widened
    and unrolled graph) makes the 128-wide corner of the design space
    tractable.

    Thread-safe: the per-loop recurrence-rate and compactability memo
    tables are mutex-guarded (analyses run outside the lock; concurrent
    misses duplicate a deterministic computation at worst), so
    {!of_loop} may be called freely from {!Wr_util.Pool} tasks. *)

type t = {
  rec_rate : float;
  bus_rate : float;
  fpu_rate : float;
  cycles_per_iteration : float;  (** max of the three; never below a hair above 0 *)
}

val of_loop :
  Wr_machine.Config.t -> cycle_model:Wr_machine.Cycle_model.t -> Wr_ir.Loop.t -> t

val loop_cycles :
  Wr_machine.Config.t -> cycle_model:Wr_machine.Cycle_model.t -> Wr_ir.Loop.t -> float
(** [cycles_per_iteration * trip_count * weight] — the loop's weighted
    contribution to total execution cycles. *)
