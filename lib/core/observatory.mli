(** The cross-run regression observatory: render one run's ledger as a
    dashboard, and join two ledgers by content hash to classify every
    divergence.

    The join key is {!Provenance.point_hash} — not file position — so
    two runs compare point-for-point even when suites grew, loops were
    renumbered, or the pool completed work in another order.  [diff]
    is what CI gates on: divergence classes are marked regression or
    benign, and the [bench diff] command exits 2 iff any regression
    survives. *)

type divergence = {
  d_class : string;
      (** [cycles_regression], [cycles_improvement], [ii_changed],
          [verdict_changed], [appeared], [vanished] *)
  d_regression : bool;
  d_point : string;  (** human-readable point coordinates *)
  d_detail : string;
}

val diff :
  ?threshold_pct:float -> Provenance.t list -> Provenance.t list -> divergence list
(** [diff old_records new_records]: joined by hash.  Cycles changes
    within [threshold_pct] percent (default 0: any change counts) are
    ignored; a cycles increase beyond it is a regression, a decrease an
    improvement.  An II increase, a lost pipelined flag, a lost
    [verified] verdict, a new quarantine, a weakened exact status, and
    a vanished point are regressions; the symmetric movements and
    appeared points are benign.  Deterministic order (ledger order of
    the new run, vanished points last in old-ledger order). *)

val has_regressions : divergence list -> bool

val render_diff : divergence list -> string
(** Classified divergences plus a summary line; ["no divergences\n"]
    when empty. *)

val report : Provenance.t list -> string
(** The per-run dashboard: per-suite/config stage table, II-over-MII
    histogram, backend and exact-status breakdown, top-N slowest (by
    wall time when recorded, else by cycles) and most-evicted
    points. *)

val diff_bench :
  ?threshold_pct:float ->
  Bench_schema.json ->
  Bench_schema.json ->
  (divergence list, string) result
(** Diff two [BENCH_*.json] artifacts of the same kind.  [gap] files
    join rows by (family, loop, config) and classify gap/II/status
    movements like ledger points; [sched]/[interp] files report timing
    deltas beyond the threshold as benign divergences only — wall
    times are noisy, so they never gate. *)
