module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model

type point = { config : Config.t; speedup : float }

type t = (int * point list) list

let cycle_model = Cycle_model.Cycles_4

(* Per-loop rates are independent; the sum folds the order-preserving
   parallel map's output left-to-right, so the total is bit-identical
   for any pool size. *)
let total_cycles config loops =
  Wr_util.Stats.sum
    (Wr_util.Pool.parallel_map loops ~f:(fun l -> Rates.loop_cycles config ~cycle_model l))

let run ?(max_factor = 128) loops =
  let base = total_cycles (Config.xwy ~x:1 ~y:1 ()) loops in
  let rec factors f = if f > max_factor then [] else f :: factors (2 * f) in
  Wr_util.Pool.parallel_list_map (factors 2) ~f:(fun factor ->
      let rec splits x acc = if x = 0 then List.rev acc else splits (x / 2) (x :: acc) in
      let xs = splits factor [] in
      let points =
        List.map
          (fun x ->
            let config = Config.xwy ~x ~y:(factor / x) () in
            { config; speedup = base /. total_cycles config loops })
          xs
      in
      (factor, points))

let to_text t =
  let headers = [ "factor"; "configs: speed-up (replication-heavy first)" ] in
  let rows =
    List.map
      (fun (factor, points) ->
        [
          Printf.sprintf "x%d" factor;
          String.concat "  "
            (List.map
               (fun p -> Printf.sprintf "%s=%.2f" (Config.label_short p.config) p.speedup)
               points);
        ])
      t
  in
  let table = Wr_util.Table.render ~title:"Figure 2: peak speed-up (infinite registers)" ~headers rows in
  let series name f =
    ( name,
      List.filter_map
        (fun (factor, points) ->
          List.find_opt (fun p -> f p.config) points
          |> Option.map (fun p -> (log (float_of_int factor) /. log 2.0, p.speedup)))
        t )
  in
  let chart =
    Wr_util.Table.series_chart ~title:"log2(factor) vs speed-up"
      ~series:
        [
          series "pure replication Xw1" (fun c -> c.Config.width = 1);
          series "pure widening 1wY" (fun c -> c.Config.buses = 1);
          series "balanced (X=Y or closest)" (fun c ->
              let x = c.Config.buses and y = c.Config.width in
              x = y || x = 2 * y);
        ]
      ()
  in
  table ^ "\n" ^ chart
