(** The one versioned schema behind every [BENCH_*.json] artifact.

    PRs 2, 6, and 7 each grew an ad-hoc emitter ([BENCH_sched.json],
    [BENCH_interp.json], [BENCH_gap.json]) with three incompatible
    layouts and no way to tell a current file from a stale one.  This
    module owns a tiny JSON value type (printer {e and} parser — the
    repo takes no dependencies, so the grammar lives here), plus the
    envelope every benchmark artifact now shares:

    {v {"schema": "wr-bench/2", "kind": "sched|interp|gap", ...} v}

    The payload keys stay exactly what each emitter historically
    wrote — the envelope adds [schema]/[kind] in front, so existing
    consumers (the CI assertions, human eyeballs) keep working —
    and {!validate} checks the per-kind required keys, which is what
    the [bench validate] command and the CI schema step run. *)

type json =
  | Null
  | Bool of bool
  | Num of float * string  (** parsed value + source literal (emit verbatim) *)
  | Str of string
  | List of json list
  | Obj of (string * json) list

val int : int -> json

val float : ?fmt:(float -> string) -> float -> json
(** Default format is ["%.17g"] (round-trips every double). *)

val str : string -> json

val member : string -> json -> json option
(** Key lookup in an [Obj]; [None] on anything else. *)

val to_float : json -> float option
(** The numeric value of a [Num]. *)

val to_int : json -> int option

val to_str : json -> string option

val to_string : json -> string
(** Compact single-line rendering. *)

val to_file_string : json -> string
(** Rendering for committed artifacts: top-level object keys one per
    line, list elements one per line (each element compact), so row
    diffs stay reviewable.  Ends with a newline. *)

val parse : string -> (json, string) result
(** Full JSON grammar (numbers keep their literal for re-emission;
    [\uXXXX] escapes decode to UTF-8; no surrogate-pair support). *)

val version : string
(** ["wr-bench/2"]: version 1 is the retroactive name for the
    pre-envelope ad-hoc layouts. *)

val envelope : kind:string -> (string * json) list -> json
(** Wrap payload fields with the [schema]/[kind] header fields. *)

val validate : json -> (string, string) result
(** Check the envelope and the per-kind required payload keys;
    returns the kind.  [Error] messages name the missing or
    ill-typed key. *)

val load_file : string -> (json, string) result

val write_file : string -> json -> unit
(** {!to_file_string} to disk. *)
