(** Figure 7: relative static code size of configurations with equal
    peak performance.

    The instruction word of [XwY] carries [3X] operation fields, so at
    comparable kernel lengths (II), widening shrinks code by the width
    factor.  The study schedules the suite with an effectively
    unbounded register file under the 4-cycle model and reports each
    configuration's total kernel bits relative to the pure-replication
    member of its factor group. *)

type entry = {
  config : Wr_machine.Config.t;
  best_case : float;
      (** the paper's Figure 7 series: equal instruction counts, so the
          ratio of instruction-word lengths *)
  measured : float;
      (** total kernel bits from our schedules — non-compactable work
          erodes part of the best-case advantage *)
}

type t = (int * entry list) list
(** Per factor group (2, 4, 8). *)

val run : ?suite_id:string -> Wr_ir.Loop.t array -> t

val to_text : t -> string
