(** HRMS-vs-optimal II gap study: the figure the paper could not cut.

    Every (family, loop, configuration) point is widened, scheduled by
    the heuristic, and then handed to the exact branch-and-bound
    backend ({!Wr_sched.Exact.solve}), which either proves the
    heuristic II optimal, improves on it, or times out.  By
    construction the gap [heuristic II - exact II] is never negative —
    the exact backend refines the heuristic result and falls back to it
    on budget expiry. *)

type row = {
  family : string;
  loop_name : string;
  index : int;
  config : Wr_machine.Config.t;
  ops : int;  (** operations in the widened graph actually scheduled *)
  mii : int;
  heur_ii : int;
  exact_ii : int;
  gap : int;  (** [heur_ii - exact_ii], always >= 0 *)
  status : Wr_sched.Exact.status;
  nodes : int;
  evictions : int;  (** heuristic scheduler evictions on this point *)
}

type t = {
  rows : row list;
  points : int;
  proved_optimal : int;
  improved : int;
  fallback : int;
  gap_total : int;
  max_gap : int;
  nodes_total : int;
}

val default_configs : Wr_machine.Config.t list
(** 2w1, 1w2, 4w1, 2w2, 1w4 — the mixes where the heuristic departs
    from the MII often enough to measure. *)

val status_string : Wr_sched.Exact.status -> string
(** Stable CSV/JSON names: [proved_optimal], [improved_unproved],
    [timeout]. *)

val run :
  ?configs:Wr_machine.Config.t list ->
  ?cycle_model:Wr_machine.Cycle_model.t ->
  ?max_nodes:int ->
  ?budget_ms:int ->
  (string * Wr_ir.Loop.t array) list ->
  t
(** Evaluate every family x loop x config point on the pool
    (order-preserving, so the row order is deterministic for any
    [--jobs]).  [max_nodes] (default 200_000) bounds each II attempt of
    the exact search; [budget_ms] additionally bounds a point's wall
    time but is off by default — with the node budget alone the whole
    table, node counts included, is bit-identical for any pool size. *)

val to_text : t -> string
(** Per-(family, config) aggregate table plus the overall counts. *)
