module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Code_size = Wr_cost.Code_size

type entry = { config : Config.t; best_case : float; measured : float }

type t = (int * entry list) list

let cycle_model = Cycle_model.Cycles_4

(* Static code: one kernel per loop — no trip counts, no weights.
   Loops are scheduled independently in parallel; the sum folds the
   order-preserving map output sequentially, keeping the total
   deterministic for any pool size.  Schedules come from the loop-level
   cache, so the base configuration of each factor group (evaluated
   both as the divisor and as its own table row) is scheduled once. *)
let total_bits ~suite_id config loops =
  let indexed = Array.mapi (fun i loop -> (i, loop)) loops in
  Wr_util.Stats.sum
    (Wr_util.Pool.parallel_map indexed ~f:(fun (i, loop) ->
         let r =
           Evaluate.loop_cached ~suite_id ~index:i config ~cycle_model
             ~registers:1_000_000 loop
         in
         float_of_int (Code_size.loop_code_bits config ~ii:r.Evaluate.ii)))

let run ?(suite_id = "suite") loops =
  List.map
    (fun factor ->
      let rec splits x acc = if x = 0 then List.rev acc else splits (x / 2) (x :: acc) in
      let configs =
        List.map (fun x -> Config.xwy ~x ~y:(factor / x) ()) (splits factor [])
      in
      let base_bits, base_words =
        match configs with
        | base :: _ -> (total_bits ~suite_id base loops, Code_size.word_bits base)
        | [] -> (1.0, 1)
      in
      ( factor,
        Wr_util.Pool.parallel_list_map configs ~f:(fun c ->
            {
              config = c;
              (* The paper's Figure 7: at equal peak performance the
                 compactable best case needs the same number of
                 instructions, so code shrinks by the word-length
                 ratio. *)
              best_case = float_of_int (Code_size.word_bits c) /. float_of_int base_words;
              (* Our scheduler's actual kernels: non-compactable work
                 inflates the narrow machines' II and eats part of the
                 advantage. *)
              measured = total_bits ~suite_id c loops /. base_bits;
            }) ))
    [ 2; 4; 8 ]

let to_text t =
  let rows =
    List.concat_map
      (fun (_, es) ->
        List.map
          (fun e ->
            [
              Config.label_short e.config;
              Printf.sprintf "%.3f" e.best_case;
              Printf.sprintf "%.3f" e.measured;
            ])
          es)
      t
  in
  Wr_util.Table.render
    ~title:
      "Figure 7: relative code size vs the Xw1 of each factor group (best case = paper's \
       equal-instruction-count assumption; measured = scheduled kernels)"
    ~headers:[ "config"; "best case"; "measured" ]
    rows
  ^ Wr_util.Table.bar_chart ~title:"best case (paper's Figure 7)"
      (List.concat_map
         (fun (_, es) ->
           List.map (fun e -> (Config.label_short e.config, e.best_case)) es)
         t)
