module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model

type point = { buses : int; fpus : int; ratio : float; relative_cycles : float }

type t = (int * point list) list

let cycle_model = Cycle_model.Cycles_4

let run ?(slot_budgets = [ 3; 6; 12 ]) loops =
  List.map
    (fun budget ->
      let splits =
        List.filter_map
          (fun buses ->
            let fpus = budget - buses in
            if buses >= 1 && fpus >= 1 then Some (buses, fpus) else None)
          (List.init budget (fun i -> i + 1))
      in
      let cycles_of (buses, fpus) =
        let config = Config.make ~buses ~fpus ~width:1 ~registers:256 () in
        Wr_util.Stats.sum
          (Array.map (fun l -> Rates.loop_cycles config ~cycle_model l) loops)
      in
      let raw = List.map (fun s -> (s, cycles_of s)) splits in
      let best = List.fold_left (fun acc (_, c) -> Stdlib.min acc c) infinity raw in
      ( budget,
        List.map
          (fun ((buses, fpus), cycles) ->
            {
              buses;
              fpus;
              ratio = float_of_int fpus /. float_of_int buses;
              relative_cycles = cycles /. best;
            })
          raw ))
    slot_budgets

let to_text t =
  String.concat "\n"
    (List.map
       (fun (budget, points) ->
         Wr_util.Table.render
           ~title:
             (Printf.sprintf
                "Extension: bus/FPU balance at %d issue slots (cycles relative to the best \
                 split; the paper fixes FPUs = 2 x buses)"
                budget)
           ~headers:[ "buses"; "fpus"; "fpus/bus"; "relative cycles" ]
           (List.map
              (fun p ->
                [
                  string_of_int p.buses;
                  string_of_int p.fpus;
                  Printf.sprintf "%.1f" p.ratio;
                  Printf.sprintf "%.3f%s" p.relative_cycles
                    (if p.relative_cycles < 1.0005 then "  <- best" else "");
                ])
              points))
       t)
