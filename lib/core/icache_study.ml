module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Resource = Wr_machine.Resource
module Loop = Wr_ir.Loop
module Schedule = Wr_sched.Schedule
module Codegen = Wr_vliw.Codegen
module Icache = Wr_cost.Icache
module Code_size = Wr_cost.Code_size

type cell = {
  config : Config.t;
  cache_kb : int;
  over_capacity_share : float;
  mean_overhead : float;
}

type t = cell list

let cm = Cycle_model.Cycles_4

let grid = [ (2, 1); (1, 2); (4, 1); (2, 2); (1, 4); (8, 1); (4, 2); (2, 4); (1, 8) ]

(* Static footprint and steady-state cost of one loop on one machine. *)
let footprint (x, y) (loop : Loop.t) =
  let config = Config.xwy ~x ~y () in
  let wide, _ = Wr_widen.Transform.widen loop ~width:y in
  let g = wide.Loop.ddg in
  let r = Wr_sched.Modulo.run (Resource.of_config config) ~cycle_model:cm g in
  let s = r.Wr_sched.Modulo.schedule in
  let a = Codegen.allocate g s in
  let counts = Codegen.word_counts g s a config in
  let words =
    counts.Codegen.prologue_words + counts.Codegen.kernel_words + counts.Codegen.epilogue_words
  in
  let code_bytes = words * Code_size.word_bits config / 8 in
  let kernel_passes =
    Stdlib.max 1 (wide.Loop.trip_count / Stdlib.max 1 a.Codegen.unroll)
  in
  let kernel_cycles = s.Schedule.ii * wide.Loop.trip_count in
  (code_bytes, kernel_passes, kernel_cycles)

let run ?(cache_sizes_kb = [ 4; 8; 16; 32 ]) loops =
  (* Scheduling + codegen per loop dominates; fan it out per machine,
     and over machines (nested maps on the shared pool are safe). *)
  List.concat
    (Wr_util.Pool.parallel_list_map grid ~f:(fun (x, y) ->
      let stats = Wr_util.Pool.parallel_map loops ~f:(footprint (x, y)) in
      List.map
        (fun kb ->
          let cache = Icache.make ~size_bytes:(kb * 1024) () in
          let over = ref 0 in
          let total_stalls = ref 0.0 and total_compute = ref 0.0 in
          Array.iter
            (fun (code_bytes, kernel_passes, kernel_cycles) ->
              if not (Icache.resident cache ~code_bytes) then incr over;
              total_stalls :=
                !total_stalls
                +. float_of_int (Icache.fetch_stall_cycles cache ~code_bytes ~kernel_passes);
              total_compute := !total_compute +. float_of_int kernel_cycles)
            stats;
          let n = float_of_int (Stdlib.max 1 (Array.length loops)) in
          {
            config = Config.xwy ~x ~y ();
            cache_kb = kb;
            over_capacity_share = float_of_int !over /. n;
            mean_overhead = !total_stalls /. Stdlib.max 1.0 !total_compute;
          })
        cache_sizes_kb))

let to_text t =
  let cache_sizes = List.sort_uniq compare (List.map (fun c -> c.cache_kb) t) in
  let headers =
    "config"
    :: List.concat_map
         (fun kb -> [ Printf.sprintf "%dKB !fit" kb; Printf.sprintf "%dKB stall" kb ])
         cache_sizes
  in
  let configs =
    List.sort_uniq compare (List.map (fun c -> Config.label_short c.config) t)
  in
  (* Preserve grid order rather than alphabetical. *)
  let ordered =
    List.filter
      (fun label -> List.mem label configs)
      (List.map (fun (x, y) -> Printf.sprintf "%dw%d" x y) grid)
  in
  let rows =
    List.map
      (fun label ->
        label
        :: List.concat_map
             (fun kb ->
               match
                 List.find_opt
                   (fun c -> Config.label_short c.config = label && c.cache_kb = kb)
                   t
               with
               | Some c ->
                   [
                     Printf.sprintf "%.0f%%" (100.0 *. c.over_capacity_share);
                     Printf.sprintf "%.1f%%" (100.0 *. c.mean_overhead);
                   ]
               | None -> [ "-"; "-" ])
             cache_sizes)
      ordered
  in
  Wr_util.Table.render
    ~title:
      "Extension: instruction-cache pressure of the static code (share of loops over \
       capacity; aggregate fetch-stall overhead vs compute cycles)"
    ~headers rows
