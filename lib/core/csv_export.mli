(** Canonical CSV serialisations of the figure studies — the single
    source of truth for the [results/fig{2,3,9}.csv] format, shared by
    the bench harness and the golden-file tests. *)

val fig2_header : string list

val fig2_rows : Peak_study.t -> string list list

val fig3_header : string list

val fig3_rows : Spill_study.t -> string list list

val fig9_header : string list

val fig9_rows : (Wr_cost.Sia.generation * Tradeoff.point list) list -> string list list

val to_string : header:string list -> string list list -> string
(** The full file contents: header line plus one line per row, each
    comma-joined and newline-terminated. *)
