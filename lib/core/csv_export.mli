(** Canonical CSV serialisations of the figure studies — the single
    source of truth for the [results/fig{2,3,9}.csv] format, shared by
    the bench harness and the golden-file tests. *)

val fig2_header : string list

val fig2_rows : Peak_study.t -> string list list

val fig3_header : string list

val fig3_rows : Spill_study.t -> string list list

val fig9_header : string list

val fig9_rows : (Wr_cost.Sia.generation * Tradeoff.point list) list -> string list list

val fig3_families_header : string list

val fig3_families_rows : (string * Spill_study.t) list -> string list list
(** {!fig3_rows} with a leading [family] column, one block per family
    in input order. *)

val fig9_families_header : string list

val fig9_families_rows :
  (string * (Wr_cost.Sia.generation * Tradeoff.point list) list) list -> string list list

val gap_header : string list

val gap_rows : Gap_study.t -> string list list
(** One row per (family, loop, config) point of the optimality-gap
    study. *)

val to_string : header:string list -> string list list -> string
(** The full file contents: header line plus one line per row, each
    comma-joined and newline-terminated. *)
