(** Figure 2: maximum achievable ILP under perfect conditions.

    For every power-of-two scaling factor up to 128 and every [XwY]
    split of it, the speed-up over the 1w1 baseline assuming perfect
    scheduling, perfect memory and an infinite register file — computed
    from the analytic rates of {!Rates}. *)

type point = { config : Wr_machine.Config.t; speedup : float }

type t = (int * point list) list
(** Per factor (2, 4, ..., max), the configurations of that factor in
    the paper's order (replication-heavy first). *)

val run : ?max_factor:int -> Wr_ir.Loop.t array -> t
(** [max_factor] defaults to 128. *)

val to_text : t -> string
(** The figure as a table plus an ASCII rendering of the two pure
    series (Xw1 and 1wY). *)
