(** Extension study: the instruction-cache side of widening.

    The paper's Figure 7 shows widening shrinks static code; Section 2
    predicts this "can reduce the miss rate of the instruction cache",
    but the study never quantifies it (perfect memory).  Here we do:
    each loop of the suite is scheduled, code-generated with modulo
    variable expansion, and its full static footprint (prologue +
    unrolled kernel + epilogue, one word = slots x 32 bits) is run
    through the streaming I-cache model of {!Wr_cost.Icache}.

    Reported per factor-group configuration and cache size:

    {ul
    {- the fraction of suite loops whose code does not fit the cache;}
    {- the aggregate fetch-stall overhead relative to compute
       cycles.}}

    Expectation (and the measured outcome): at equal peak capability,
    the replication-heavy machines' wider words and larger MVE unroll
    factors overflow small instruction caches on a substantial share of
    loops, while the widened machines stay resident — turning Figure
    7's static observation into a performance argument. *)

type cell = {
  config : Wr_machine.Config.t;
  cache_kb : int;
  over_capacity_share : float;  (** fraction of loops not resident, in [0,1] *)
  mean_overhead : float;
      (** aggregate fetch stalls / aggregate compute cycles over the
          suite *)
}

type t = cell list

val run : ?cache_sizes_kb:int list -> Wr_ir.Loop.t array -> t
(** [cache_sizes_kb] defaults to [4; 8; 16; 32]. *)

val to_text : t -> string
