module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model

type cell = Speedup of float | Not_schedulable

type row = { config : Config.t; cells : (int * cell) list }

type t = row list

let cycle_model = Cycle_model.Cycles_4

let grid = [ (2, 1); (1, 2); (4, 1); (2, 2); (1, 4); (8, 1); (4, 2); (2, 4); (1, 8) ]

let run ?(registers = [ 32; 64; 128; 256 ]) ?(suite_id = "suite") loops =
  let baseline_cfg = Config.xwy ~registers:256 ~x:1 ~y:1 () in
  let base = Evaluate.suite_on ~suite_id baseline_cfg ~cycle_model ~registers:256 loops in
  if base.Evaluate.unpipelined > 0 then
    if Evaluate.quarantined_count () = 0 then
      failwith "Spill_study: baseline 1w1/256 must pipeline every loop"
    else
      (* Under supervision a quarantined baseline point is expected: the
         study completes and reports the degraded points instead of
         aborting. *)
      Printf.eprintf
        "warning: spill study baseline 1w1/256 has %d degraded (quarantined) loops; speedups \
         are computed against the degraded baseline\n\
         %!"
        base.Evaluate.unpipelined;
  (* Grid rows are independent; each cell's suite evaluation fans out
     over loops on the same pool (nested maps are safe). *)
  Wr_util.Pool.parallel_list_map grid ~f:(fun (x, y) ->
      let cells =
        List.map
          (fun z ->
            let config = Config.xwy ~registers:z ~x ~y () in
            let agg = Evaluate.suite_on ~suite_id config ~cycle_model ~registers:z loops in
            if not (Evaluate.acceptable agg) then (z, Not_schedulable)
            else (z, Speedup (base.Evaluate.total_cycles /. agg.Evaluate.total_cycles)))
          registers
      in
      { config = Config.xwy ~x ~y (); cells })

(* Per-family cut of the same table.  The synthetic family of a bench
   run is the very loop array the main figure ran on, so it keeps the
   main run's suite id (and therefore hits the evaluation cache); other
   families get a derived id of their own. *)
let run_families ?registers ?(suite_id = "suite") families =
  List.map
    (fun (name, loops) ->
      let sid = if name = "synthetic" then suite_id else suite_id ^ ":" ^ name in
      (name, run ?registers ~suite_id:sid loops))
    families

let to_text t =
  let registers = match t with [] -> [] | r :: _ -> List.map fst r.cells in
  let headers = "config" :: List.map (fun z -> Printf.sprintf "%d-RF" z) registers in
  let rows =
    List.map
      (fun r ->
        Config.label_short r.config
        :: List.map
             (fun (_, c) ->
               match c with
               | Speedup s -> Printf.sprintf "%.2f" s
               | Not_schedulable -> "n/a")
             r.cells)
      t
  in
  Wr_util.Table.render
    ~title:"Figure 3: speed-up with spill code (baseline 1w1 256-RF, 4-cycle model)" ~headers
    rows
