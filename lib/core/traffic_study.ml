module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Loop = Wr_ir.Loop
module Ddg = Wr_ir.Ddg
module Opcode = Wr_ir.Opcode

type cell = {
  config : Config.t;
  registers : int;
  spilled_loops : float;
  slowed_loops : float;
  failed_loops : float;
  traffic_overhead : float;
}

type t = cell list

let cm = Cycle_model.Cycles_4

let grid = [ (2, 1); (4, 1); (2, 2); (8, 1); (4, 2); (2, 4); (1, 8) ]

(* Per-loop outcome on one configuration: how the allocator responded
   and the loop's contributions to program and spill traffic. *)
type loop_response = {
  r_spilled : bool;
  r_slowed : bool;
  r_failed : bool;
  r_program : float;
  r_spill : float;
}

(* The schedule-and-allocate outcome comes through the loop-level cache
   ({!Evaluate.loop_cached}), so grid cells that share a machine point
   with other studies in the same process reuse their work; the spill
   and slowdown classification reads the cached result's fields. *)
let classify ~suite_id ~index config ~registers:z (loop : Loop.t) =
  (* Program traffic in scalar words per source execution. *)
  let mem_ops = Ddg.scalar_count_class loop.Loop.ddg Opcode.Bus in
  let r_program = float_of_int (mem_ops * loop.Loop.trip_count) *. loop.Loop.weight in
  let r = Evaluate.loop_cached ~suite_id ~index config ~cycle_model:cm ~registers:z loop in
  let spill_static = r.Evaluate.spill_stores + r.Evaluate.spill_loads in
  if not r.Evaluate.pipelined then
    { r_spilled = false; r_slowed = false; r_failed = true; r_program; r_spill = 0.0 }
  else if spill_static > 0 then
    {
      r_spilled = true;
      r_slowed = false;
      r_failed = false;
      r_program;
      r_spill = float_of_int (spill_static * r.Evaluate.trip_count) *. loop.Loop.weight;
    }
  else
    {
      r_spilled = false;
      r_slowed = r.Evaluate.ii > r.Evaluate.mii;
      r_failed = false;
      r_program;
      r_spill = 0.0;
    }

let run ?(registers = [ 32; 64; 128 ]) ?(suite_id = "traffic") loops =
  (* Grid cells in parallel; within a cell the loops are classified in
     parallel and the responses folded in input order, keeping the
     traffic sums bit-identical for any pool size. *)
  List.concat
    (Wr_util.Pool.parallel_list_map grid ~f:(fun (x, y) ->
      List.map
        (fun z ->
          let config = Config.xwy ~registers:z ~x ~y () in
          let indexed = Array.mapi (fun i loop -> (i, loop)) loops in
          let responses =
            Wr_util.Pool.parallel_map indexed ~f:(fun (i, loop) ->
                classify ~suite_id ~index:i config ~registers:z loop)
          in
          let spilled = ref 0 and slowed = ref 0 and failed = ref 0 in
          let program_traffic = ref 0.0 and spill_traffic = ref 0.0 in
          Array.iter
            (fun r ->
              if r.r_spilled then incr spilled;
              if r.r_slowed then incr slowed;
              if r.r_failed then incr failed;
              program_traffic := !program_traffic +. r.r_program;
              spill_traffic := !spill_traffic +. r.r_spill)
            responses;
          let n = float_of_int (Stdlib.max 1 (Array.length responses)) in
          {
            config;
            registers = z;
            spilled_loops = float_of_int !spilled /. n;
            slowed_loops = float_of_int !slowed /. n;
            failed_loops = float_of_int !failed /. n;
            traffic_overhead = !spill_traffic /. Stdlib.max 1.0 !program_traffic;
          })
        registers))

let to_text t =
  let registers = List.sort_uniq compare (List.map (fun c -> c.registers) t) in
  let headers =
    "config"
    :: List.concat_map
         (fun z ->
           [
             Printf.sprintf "%d-RF spill/slow/fail" z; Printf.sprintf "%d-RF traffic" z;
           ])
         registers
  in
  let rows =
    List.map
      (fun (x, y) ->
        Printf.sprintf "%dw%d" x y
        :: List.concat_map
             (fun z ->
               match
                 List.find_opt
                   (fun c ->
                     c.config.Config.buses = x && c.config.Config.width = y
                     && c.registers = z)
                   t
               with
               | Some c ->
                   [
                     Printf.sprintf "%.0f/%.0f/%.0f%%" (100.0 *. c.spilled_loops)
                       (100.0 *. c.slowed_loops) (100.0 *. c.failed_loops);
                     Printf.sprintf "+%.1f%%" (100.0 *. c.traffic_overhead);
                   ]
               | None -> [ "-"; "-" ])
             registers)
      grid
  in
  Wr_util.Table.render
    ~title:
      "Extension: register-pressure responses (loops that spill / slow down / fail per RF \
       size) and spill memory traffic vs program traffic, execution-weighted"
    ~headers rows
