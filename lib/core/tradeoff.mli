(** Section 5: performance/cost trade-offs under a technology limit
    (Figures 8 and 9 and the paper's concluding comparison).

    Each configuration [XwY(Z:n)] is clocked at its register file's
    access time: the relative cycle time [Tc] selects the latency model
    ([z = ceil(4/Tc)] cycles, Table 6), the suite is scheduled under
    that model with [Z] registers (spilling as needed), and the final
    performance is [1 / (total cycles * Tc)].  Speed-ups are reported
    against 1w1(32:1), whose cycle time defines [Tc = 1]. *)

type point = {
  config : Wr_machine.Config.t;
  tc : float;  (** relative cycle time *)
  cycle_model : Wr_machine.Cycle_model.t;
  total_cycles : float;
  speedup : float;  (** vs 1w1(32:1) at matched wall-clock *)
  area : float;  (** RF + FPUs, lambda^2 *)
}

val evaluate :
  ?suite_id:string -> Wr_ir.Loop.t array -> Wr_machine.Config.t -> point option
(** [None] when some loop cannot be scheduled within the register
    file. *)

val figure8 : ?suite_id:string -> Wr_ir.Loop.t array -> string
(** The four panels: (a) RF size sweep on 1w1; (b) pure replication;
    (c) pure widening; (d) the factor-8 configurations — each as a
    table of speed-up vs area. *)

val figure9 :
  ?suite_id:string -> ?top:int -> Wr_ir.Loop.t array -> (Wr_cost.Sia.generation * point list) list
(** Per generation, the best-performing implementable configurations
    (default top 5), each with its die share. *)

val figure9_families :
  ?suite_id:string ->
  ?top:int ->
  (string * Wr_ir.Loop.t array) list ->
  (string * (Wr_cost.Sia.generation * point list) list) list
(** {!figure9} per family: which configurations win on synthetic versus
    real/stencil loops.  Suite-id convention as in
    {!Spill_study.run_families}. *)

val figure9_text : (Wr_cost.Sia.generation * point list) list -> string

val conclusion : ?suite_id:string -> Wr_ir.Loop.t array -> string
(** The 4w2(128) vs 8w1(128) headline comparison: performance ratio and
    area ratio (best partitioning for each). *)
