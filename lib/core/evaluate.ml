module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Resource = Wr_machine.Resource
module Loop = Wr_ir.Loop
module Ddg = Wr_ir.Ddg
module Operation = Wr_ir.Operation
module Schedule = Wr_sched.Schedule
module Driver = Wr_regalloc.Driver
module Obs = Wr_obs.Obs

type loop_result = {
  ii : int;
  cycles : float;
  required_regs : int;
  spill_stores : int;
  spill_loads : int;
  spill_rounds : int;
  pipelined : bool;
  mii : int;
  trip_count : int;
}

(* Total full-pipeline evaluations performed (scheduler actually
   invoked, as opposed to answered from the loop-level cache); a test
   hook for the caching discipline. *)
let eval_count = Atomic.make 0

let evaluations () = Atomic.get eval_count

(* Per-level cache accounting, always on (atomic increments are cheap
   next to even a cache hit's hashing) so the telemetry snapshot and
   the tests can read hit rates without enabling full tracing. *)
type cache_stats = { hits : int; misses : int }

let suite_hits = Atomic.make 0

let suite_misses = Atomic.make 0

let loop_hits = Atomic.make 0

let loop_misses = Atomic.make 0

let store_hits = Atomic.make 0

let store_misses = Atomic.make 0

let cache_stats = function
  | `Suite -> { hits = Atomic.get suite_hits; misses = Atomic.get suite_misses }
  | `Loop -> { hits = Atomic.get loop_hits; misses = Atomic.get loop_misses }
  | `Store -> { hits = Atomic.get store_hits; misses = Atomic.get store_misses }

(* Verification mode: every (loop, machine point) result is re-derived
   by the independent Wr_check oracles; any broken invariant raises
   [Wr_check.Oracle.Violation].  Off by default — the oracles run the
   reference interpreter and O(II) re-derivations, so a verified run
   costs a small constant factor over a plain one. *)
let verify_flag = Atomic.make (Wr_util.Env.bool "WR_VERIFY" ~default:false)

let set_verify b = Atomic.set verify_flag b

let verify_enabled () = Atomic.get verify_flag

(* Strict mode restores fail-fast: a loop evaluation that raises kills
   the study instead of degrading to the unpipelined fallback. *)
let strict_flag = Atomic.make (Wr_util.Env.bool "WR_STRICT" ~default:false)

let set_strict b = Atomic.set strict_flag b

let strict_enabled () = Atomic.get strict_flag

(* Per-loop wall-clock budget in milliseconds; 0 means unbudgeted. *)
let loop_budget = Atomic.make 0

let set_loop_budget_ms = function
  | None -> Atomic.set loop_budget 0
  | Some ms when ms > 0 -> Atomic.set loop_budget ms
  | Some ms -> invalid_arg (Printf.sprintf "Evaluate.set_loop_budget_ms: %d <= 0" ms)

let loop_budget_ms () = match Atomic.get loop_budget with 0 -> None | ms -> Some ms

type quarantine_record = {
  q_suite : string;
  q_index : int;
  q_loop : string;
  q_config : string;
  q_registers : int;
  q_cycle_model : int;
  q_reason : string;
  q_backtrace : string;
}

let quarantine_mutex = Mutex.create ()

let quarantine_list : quarantine_record list ref = ref []

let quarantine q =
  Mutex.lock quarantine_mutex;
  quarantine_list := q :: !quarantine_list;
  Mutex.unlock quarantine_mutex;
  if Obs.enabled () then Obs.incr "eval/quarantined"

let quarantined () =
  Mutex.lock quarantine_mutex;
  let l = !quarantine_list in
  Mutex.unlock quarantine_mutex;
  (* Stable report order regardless of pool completion order. *)
  List.sort
    (fun a b ->
      compare
        (a.q_suite, a.q_index, a.q_config, a.q_registers, a.q_cycle_model)
        (b.q_suite, b.q_index, b.q_config, b.q_registers, b.q_cycle_model))
    l

let quarantined_count () =
  Mutex.lock quarantine_mutex;
  let n = List.length !quarantine_list in
  Mutex.unlock quarantine_mutex;
  n

let reset_quarantine () =
  Mutex.lock quarantine_mutex;
  quarantine_list := [];
  Mutex.unlock quarantine_mutex

let verified_count = Atomic.make 0

let verified_points () = Atomic.get verified_count

(* Sequential fallback: iterations execute back-to-back with no
   software pipelining.  The per-iteration cost is the flat schedule's
   span plus the latency drain of the last operations; register demand
   collapses to within-iteration concurrency, which always fits the
   smallest file studied. *)
let sequential_cost ~cycle_model g =
  let resource_free =
    (* Schedule at an II no smaller than the span so iterations never
       overlap. *)
    let upper =
      Array.fold_left
        (fun acc (o : Operation.t) ->
          acc + Cycle_model.occupancy cycle_model o.Operation.opcode)
        1 (Ddg.ops g)
      + List.fold_left
          (fun acc (e : Wr_ir.Dependence.t) ->
            acc
            + Wr_ir.Dependence.delay_rule e.Wr_ir.Dependence.kind
                ~producer_latency:
                  (Cycle_model.latency_of_op cycle_model
                     (Ddg.op g e.Wr_ir.Dependence.src).Operation.opcode))
          0 (Ddg.edges g)
    in
    upper
  in
  resource_free

(* Compiled interpreter plans, cached per (suite, loop index, width)
   alongside the loop-level result cache: a verified study revisits one
   loop at many (buses, registers, cycle model) points, and the oracles
   interpret the original and widened bodies at each of them.  Plans
   are iteration-count independent and immutable, so one entry serves
   every point; width 0 keys the unwidened original.  Guarded by its
   own mutex with the same discipline as the other memo tables (the
   compile itself runs outside the lock). *)
let plan_cache : (string * int * int, Wr_vliw.Interp.plan) Hashtbl.t = Hashtbl.create 1024

let plan_cache_mutex = Mutex.create ()

let cached_plan ~plan_key ~width loop =
  match plan_key with
  | None -> Some (Wr_vliw.Interp.compile loop)
  | Some (suite_id, index) -> (
      let key = (suite_id, index, width) in
      Mutex.lock plan_cache_mutex;
      let hit = Hashtbl.find_opt plan_cache key in
      Mutex.unlock plan_cache_mutex;
      match hit with
      | Some p -> Some p
      | None ->
          let p = Wr_vliw.Interp.compile loop in
          Mutex.lock plan_cache_mutex;
          (* First store wins, mirroring the loop cache. *)
          let stored =
            match Hashtbl.find_opt plan_cache key with
            | Some q -> q
            | None ->
                Hashtbl.add plan_cache key p;
                p
          in
          Mutex.unlock plan_cache_mutex;
          Some stored)

let loop_on_impl ?plan_key (c : Config.t) ~cycle_model ~registers (loop : Loop.t) =
  Atomic.incr eval_count;
  if Obs.enabled () then Obs.incr "eval/evaluations";
  (* The body is widened for the machine's width but NOT unrolled by
     the bus count: like the paper's compiler, the scheduler works on
     the loop as written, so the initiation interval (and with it the
     register pressure of aggressive machines) is quantized at
     II >= 1 per (wide) iteration. *)
  Wr_util.Fault.hit "widen";
  let prepared, _stats =
    Obs.span "widen" (fun () -> Wr_widen.Transform.widen loop ~width:c.Config.width)
  in
  let resource = Resource.of_config c in
  let outcome = Driver.run resource ~cycle_model ~registers prepared.Loop.ddg in
  let verifying = verify_enabled () in
  if verifying then begin
    let context =
      Printf.sprintf "%s on %s (%d regs, %s)" loop.Loop.name (Config.label c) registers
        (Cycle_model.to_string cycle_model)
    in
    let vs =
      Obs.span "verify" (fun () ->
          (* Compile failures surface through the same guard as
             interpreter failures did before plans existed. *)
          let original_plan =
            try cached_plan ~plan_key ~width:0 loop with Invalid_argument _ -> None
          in
          let widened_plan =
            try cached_plan ~plan_key ~width:c.Config.width prepared
            with Invalid_argument _ -> None
          in
          Wr_check.Oracle.check_widening ?original_plan ?widened_plan ~original:loop
            ~widened:prepared ~width:c.Config.width ()
          @ Wr_check.Oracle.check_driver ?pre_plan:widened_plan resource ~registers
              ~pre:prepared outcome)
    in
    Wr_check.Oracle.fail_if_any ~context vs;
    Atomic.incr verified_count
  end;
  match outcome with
  | Driver.Scheduled s ->
      let ii = s.Driver.schedule.Schedule.ii in
      (* The widened loop executes trip/Y iterations of II cycles each;
         trip_count was already divided by the transform. *)
      let cycles = float_of_int (ii * prepared.Loop.trip_count) *. loop.Loop.weight in
      {
        ii;
        cycles;
        required_regs = s.Driver.alloc.Wr_regalloc.Alloc.required;
        spill_stores = s.Driver.stores_added;
        spill_loads = s.Driver.loads_added;
        spill_rounds = s.Driver.spill_rounds;
        pipelined = true;
        mii = s.Driver.mii;
        trip_count = prepared.Loop.trip_count;
      }
  | Driver.Unschedulable _ ->
      let resource_free = sequential_cost ~cycle_model prepared.Loop.ddg in
      (* A list schedule is far shorter than the sum above; use the
         modulo scheduler once at a non-overlapping II to get the real
         span. *)
      let r =
        Wr_sched.Backend.run resource ~cycle_model ~min_ii:resource_free prepared.Loop.ddg
      in
      if verifying then
        Wr_check.Oracle.fail_if_any
          ~context:
            (Printf.sprintf "%s sequential fallback on %s" loop.Loop.name (Config.label c))
          (Wr_check.Oracle.check_schedule prepared.Loop.ddg resource
             r.Wr_sched.Modulo.schedule);
      let span =
        Schedule.span r.Wr_sched.Modulo.schedule
        + Cycle_model.latency cycle_model Wr_ir.Opcode.Short_op
      in
      {
        ii = span;
        cycles = float_of_int (span * prepared.Loop.trip_count) *. loop.Loop.weight;
        required_regs = registers;
        spill_stores = 0;
        spill_loads = 0;
        spill_rounds = 0;
        pipelined = false;
        mii = r.Wr_sched.Modulo.mii;
        trip_count = prepared.Loop.trip_count;
      }

let loop_on ?plan_key (c : Config.t) ~cycle_model ~registers (loop : Loop.t) =
  if not (Obs.enabled ()) then loop_on_impl ?plan_key c ~cycle_model ~registers loop
  else
    (* The args list is only built when tracing is on. *)
    Obs.span "eval/loop"
      ~args:[ ("loop", loop.Loop.name); ("config", Config.label c) ]
      (fun () -> loop_on_impl ?plan_key c ~cycle_model ~registers loop)

type aggregate = {
  total_cycles : float;
  loops : int;
  unpipelined : int;
  unpipelined_weight : float;
  spilled_loops : int;
  total_stores : int;
  total_loads : int;
}

(* Thread-safety discipline: both memo tables are shared across the
   pool's domains and every access goes through [cache_mutex].  Lookups
   and stores are short critical sections; the evaluation itself runs
   outside the lock, so two domains racing on the same key at most
   duplicate a deterministic computation and [Hashtbl.replace] makes
   the second store a no-op in effect.

   Two levels: [cache] memoizes whole-suite aggregates (the technology
   studies revisit operating points), while [loop_cache] memoizes
   individual loop evaluations keyed by (suite, loop index, machine
   point) so that different studies — and different aggregations over
   the same suite — share the expensive schedule-and-allocate work. *)
let cache : (string * int * int * int * int, aggregate) Hashtbl.t = Hashtbl.create 256

let loop_cache : (string * int * int * int * int * int, loop_result) Hashtbl.t =
  Hashtbl.create 4096

let cache_mutex = Mutex.create ()

let clear_cache () =
  Mutex.lock cache_mutex;
  Hashtbl.reset cache;
  Hashtbl.reset loop_cache;
  Mutex.unlock cache_mutex;
  Mutex.lock plan_cache_mutex;
  Hashtbl.reset plan_cache;
  Mutex.unlock plan_cache_mutex;
  (* The hit/miss statistics describe the cache contents; dropping one
     without the other would make subsequent hit rates unreadable. *)
  Atomic.set suite_hits 0;
  Atomic.set suite_misses 0;
  Atomic.set loop_hits 0;
  Atomic.set loop_misses 0;
  Atomic.set store_hits 0;
  Atomic.set store_misses 0

let cache_find key =
  Mutex.lock cache_mutex;
  let r = Hashtbl.find_opt cache key in
  Mutex.unlock cache_mutex;
  (match r with
  | Some _ ->
      Atomic.incr suite_hits;
      if Obs.enabled () then Obs.incr "eval/suite_cache_hits"
  | None ->
      Atomic.incr suite_misses;
      if Obs.enabled () then Obs.incr "eval/suite_cache_misses");
  r

let cache_store key agg =
  Mutex.lock cache_mutex;
  Hashtbl.replace cache key agg;
  Mutex.unlock cache_mutex

(* Checkpoint/resume.  The journal records exactly the loop-level memo
   entries — the unit of work worth not repeating — so replay is a bulk
   load into [loop_cache] and appending happens where the cache is
   filled.  Only cleanly computed results are journaled: a quarantined
   point must be re-evaluated on resume, when the fault may be gone. *)
let journal : Journal.t option ref = ref None

let journal_mutex = Mutex.create ()

let entry_of_result (key : string * int * int * int * int * int) (r : loop_result) =
  let suite_id, index, buses, width, registers, cycles = key in
  {
    Journal.key = { Journal.suite_id; index; buses; width; registers; cycles };
    ii = r.ii;
    cycles_bits = Int64.bits_of_float r.cycles;
    required_regs = r.required_regs;
    spill_stores = r.spill_stores;
    spill_loads = r.spill_loads;
    spill_rounds = r.spill_rounds;
    pipelined = r.pipelined;
    mii = r.mii;
    trip_count = r.trip_count;
  }

let result_of_entry (e : Journal.entry) =
  {
    ii = e.Journal.ii;
    cycles = Int64.float_of_bits e.Journal.cycles_bits;
    required_regs = e.Journal.required_regs;
    spill_stores = e.Journal.spill_stores;
    spill_loads = e.Journal.spill_loads;
    spill_rounds = e.Journal.spill_rounds;
    pipelined = e.Journal.pipelined;
    mii = e.Journal.mii;
    trip_count = e.Journal.trip_count;
  }

let detach_journal () =
  Mutex.lock journal_mutex;
  let j = !journal in
  journal := None;
  Mutex.unlock journal_mutex;
  match j with None -> () | Some t -> Journal.close t

let attach_journal path =
  detach_journal ();
  let t, entries = Journal.open_for_resume path in
  Mutex.lock cache_mutex;
  List.iter
    (fun (e : Journal.entry) ->
      let k = e.Journal.key in
      Hashtbl.replace loop_cache
        (k.Journal.suite_id, k.Journal.index, k.Journal.buses, k.Journal.width,
         k.Journal.registers, k.Journal.cycles)
        (result_of_entry e))
    entries;
  Mutex.unlock cache_mutex;
  Mutex.lock journal_mutex;
  journal := Some t;
  Mutex.unlock journal_mutex;
  List.length entries

let flush_journal () =
  Mutex.lock journal_mutex;
  let j = !journal in
  Mutex.unlock journal_mutex;
  match j with None -> () | Some t -> Journal.flush t

let journal_append key r =
  Mutex.lock journal_mutex;
  let j = !journal in
  Mutex.unlock journal_mutex;
  match j with None -> () | Some t -> Journal.append t (entry_of_result key r)

(* Persistent content-addressed store (see {!Store}).  Unlike the
   journal — whose entries are bulk-replayed into [loop_cache] on
   attach — the store is keyed by content hash, so it is consulted
   lazily on each loop-cache miss: the hash needs the loop body, which
   only the miss path holds.  Store hits become ordinary cache entries;
   they are neither journaled (they were not evaluated by this run) nor
   recorded in the provenance ledger (same rule as journal replays). *)
let store : Store.t option ref = ref None

let store_mutex = Mutex.create ()

let current_store () =
  Mutex.lock store_mutex;
  let s = !store in
  Mutex.unlock store_mutex;
  s

let detach_store () =
  Mutex.lock store_mutex;
  let s = !store in
  store := None;
  Mutex.unlock store_mutex;
  match s with None -> () | Some t -> Store.close t

let attach_store path =
  detach_store ();
  let t, recovery = Store.open_dir path in
  Mutex.lock store_mutex;
  store := Some t;
  Mutex.unlock store_mutex;
  recovery

let store_dir () = match current_store () with None -> None | Some s -> Some (Store.dir s)

let store_entries () = match current_store () with None -> 0 | Some s -> Store.length s

let store_appended () = match current_store () with None -> 0 | Some s -> Store.appended s

let store_entry_of_result hash (r : loop_result) =
  {
    Store.hash;
    ii = r.ii;
    cycles_bits = Int64.bits_of_float r.cycles;
    required_regs = r.required_regs;
    spill_stores = r.spill_stores;
    spill_loads = r.spill_loads;
    spill_rounds = r.spill_rounds;
    pipelined = r.pipelined;
    mii = r.mii;
    trip_count = r.trip_count;
  }

let result_of_store_entry (e : Store.entry) =
  {
    ii = e.Store.ii;
    cycles = Int64.float_of_bits e.Store.cycles_bits;
    required_regs = e.Store.required_regs;
    spill_stores = e.Store.spill_stores;
    spill_loads = e.Store.spill_loads;
    spill_rounds = e.Store.spill_rounds;
    pipelined = e.Store.pipelined;
    mii = e.Store.mii;
    trip_count = e.Store.trip_count;
  }

(* Paper-faithful degradation: when an evaluation dies (injected fault,
   budget overrun, scheduler bug), the point becomes what a real
   compiler ships when it gives up — the loop compiled without software
   pipelining.  Computed by pure arithmetic over the UNwidened body (no
   scheduler call: the degrade path must not be able to fail itself),
   so it slightly over-costs the fallback relative to the list-schedule
   span used on the normal Unschedulable path; quarantined points are
   flagged, never silently mixed in as exact. *)
let degraded_result ~cycle_model ~registers (loop : Loop.t) =
  let span = sequential_cost ~cycle_model loop.Loop.ddg in
  {
    ii = span;
    cycles = float_of_int (span * loop.Loop.trip_count) *. loop.Loop.weight;
    required_regs = registers;
    spill_stores = 0;
    spill_loads = 0;
    spill_rounds = 0;
    pipelined = false;
    mii = 0;
    trip_count = loop.Loop.trip_count;
  }

(* Provenance record for one freshly evaluated point; called only when
   capture is on and this call's result won the first-store race, so a
   run emits at most one record per point. *)
let prov_record ~suite_id ~index (c : Config.t) ~cycle_model ~registers loop
    (r : loop_result) ~clean ~tag (t : Wr_sched.Backend.tally) ~wall_us =
  {
    Provenance.hash =
      Provenance.point_hash ~suite_id ~index ~config:c ~registers ~cycle_model loop;
    suite = suite_id;
    index;
    loop = loop.Loop.name;
    config = Config.label c;
    registers;
    cycle_model = Cycle_model.cycles cycle_model;
    ii = r.ii;
    mii = r.mii;
    cycles = r.cycles;
    pipelined = r.pipelined;
    spill_rounds = r.spill_rounds;
    spill_stores = r.spill_stores;
    spill_loads = r.spill_loads;
    backend = Wr_sched.Backend.to_string (Wr_sched.Backend.current ());
    sched_runs = t.Wr_sched.Backend.runs;
    evictions = t.Wr_sched.Backend.evictions;
    exact =
      {
        Provenance.solves = t.Wr_sched.Backend.solves;
        proved = t.Wr_sched.Backend.proved;
        unproved = t.Wr_sched.Backend.unproved;
        fallback = t.Wr_sched.Backend.fallback;
        nodes = t.Wr_sched.Backend.nodes;
        iis_refuted = t.Wr_sched.Backend.iis_refuted;
      };
    oracle = (if clean && verify_enabled () then "verified" else "unverified");
    quarantined = not clean;
    tag;
    wall_us;
  }

let loop_cached ~suite_id ~index (c : Config.t) ~cycle_model ~registers loop =
  let key =
    ( suite_id,
      index,
      c.Config.buses,
      c.Config.width,
      registers,
      Cycle_model.cycles cycle_model )
  in
  Mutex.lock cache_mutex;
  let hit = Hashtbl.find_opt loop_cache key in
  Mutex.unlock cache_mutex;
  match hit with
  | Some r ->
      Atomic.incr loop_hits;
      if Obs.enabled () then Obs.incr "eval/loop_cache_hits";
      r
  | None -> (
      Atomic.incr loop_misses;
      if Obs.enabled () then Obs.incr "eval/loop_cache_misses";
      (* Second chance: the persistent store, keyed by the point's
         content hash.  A hit is a prior run's (or another client's)
         clean result; it enters the loop cache like any other entry
         and is served without touching the scheduler. *)
      let attached_store = current_store () in
      let point_hash =
        match attached_store with
        | None -> 0L
        | Some _ ->
            Provenance.point_hash ~suite_id ~index ~config:c ~registers ~cycle_model loop
      in
      let from_store =
        match attached_store with
        | None -> None
        | Some st -> (
            match Store.find st point_hash with
            | Some e ->
                Atomic.incr store_hits;
                if Obs.enabled () then Obs.incr "eval/store_hits";
                Some (result_of_store_entry e)
            | None ->
                Atomic.incr store_misses;
                if Obs.enabled () then Obs.incr "eval/store_misses";
                None)
      in
      match from_store with
      | Some r ->
          Mutex.lock cache_mutex;
          let stored =
            match Hashtbl.find_opt loop_cache key with
            | Some r' -> r'
            | None ->
                Hashtbl.add loop_cache key r;
                r
          in
          Mutex.unlock cache_mutex;
          stored
      | None ->
      (* Supervision: the whole widen/schedule/allocate pipeline for
         this one point runs under the point's fault-injection context
         and (if set) wall-clock budget.  The context string doubles as
         the deterministic seed component for Wr_util.Fault, which is
         why it is the cache key, not the pool task id: the same point
         draws the same fault stream at any pool size. *)
      let context =
        Printf.sprintf "%s|%d|%s|%d|%d" suite_id index (Config.label c) registers
          (Cycle_model.cycles cycle_model)
      in
      let evaluate () =
        let plan_key = (suite_id, index) in
        Wr_util.Fault.with_context context (fun () ->
            match Atomic.get loop_budget with
            | 0 -> loop_on ~plan_key c ~cycle_model ~registers loop
            | ms ->
                Wr_util.Deadline.with_budget_ms ms (fun () ->
                    loop_on ~plan_key c ~cycle_model ~registers loop))
      in
      let cap = Provenance.capture_enabled () in
      let wall = cap && Provenance.wall_enabled () in
      let t0 = if wall then Obs.now_ns () else 0 in
      let run_point () =
        match evaluate () with
        | r -> (r, true, "")
        | exception Out_of_memory ->
            (* Never absorb resource exhaustion into a data point. *)
            raise Out_of_memory
        | exception e when not (strict_enabled ()) ->
            let bt = Printexc.get_backtrace () in
            let reason = Printexc.to_string e in
            quarantine
              {
                q_suite = suite_id;
                q_index = index;
                q_loop = loop.Loop.name;
                q_config = Config.label c;
                q_registers = registers;
                q_cycle_model = Cycle_model.cycles cycle_model;
                q_reason = reason;
                q_backtrace = bt;
              };
            (degraded_result ~cycle_model ~registers loop, false, reason)
      in
      let (r, clean, tag), tally =
        if cap then Wr_sched.Backend.with_tally run_point
        else (run_point (), Wr_sched.Backend.empty_tally ())
      in
      Mutex.lock cache_mutex;
      (* First store wins so concurrent callers settle on one physical
         result record. *)
      let stored =
        match Hashtbl.find_opt loop_cache key with
        | Some r' -> r'
        | None ->
            Hashtbl.add loop_cache key r;
            r
      in
      Mutex.unlock cache_mutex;
      if clean && stored == r then begin
        journal_append key r;
        (* The store shares the journal's discipline — only the winning
           clean evaluation persists; quarantined points must re-run.
           An append racing a detach is dropped, not fatal. *)
        match attached_store with
        | Some st -> (
            (* Flush per append: an evaluation costs far more than an
               fsync, and a SIGKILLed process must not lose results it
               already served (the warm-start guarantee). *)
            try
              Store.add st (store_entry_of_result point_hash r);
              Store.flush st
            with Invalid_argument _ -> ())
        | None -> ()
      end;
      (* Same first-store-wins discipline: only the winning evaluation
         describes the point, and — unlike the journal — a quarantined
         point is recorded too, exception tag and all. *)
      if cap && stored == r then begin
        let wall_us = if wall then Some ((Obs.now_ns () - t0) / 1000) else None in
        Provenance.record
          (prov_record ~suite_id ~index c ~cycle_model ~registers loop r ~clean ~tag tally
             ~wall_us)
      end;
      stored)

(* Counter-free probes for the service's per-reply source labels: they
   must not perturb the hit/miss statistics the same reply reports. *)
let probe ~suite_id ~index (c : Config.t) ~cycle_model ~registers =
  let key =
    ( suite_id,
      index,
      c.Config.buses,
      c.Config.width,
      registers,
      Cycle_model.cycles cycle_model )
  in
  Mutex.lock cache_mutex;
  let r = Hashtbl.find_opt loop_cache key in
  Mutex.unlock cache_mutex;
  r

let probe_store ~suite_id ~index (c : Config.t) ~cycle_model ~registers loop =
  match current_store () with
  | None -> false
  | Some st ->
      Store.find st (Provenance.point_hash ~suite_id ~index ~config:c ~registers ~cycle_model loop)
      <> None

let suite_on ?pool ~suite_id (c : Config.t) ~cycle_model ~registers loops =
  let key =
    (suite_id, c.Config.buses, c.Config.width, registers, Cycle_model.cycles cycle_model)
  in
  match cache_find key with
  | Some agg -> agg
  | None ->
      (* Per-loop evaluations are independent; fan them out over the
         pool.  The fold below walks the order-preserving result array
         sequentially, so float accumulation order — and with it the
         aggregate, bit for bit — is identical for any pool size. *)
      let indexed = Array.mapi (fun i loop -> (i, loop)) loops in
      let results =
        (if not (Obs.enabled ()) then fun f -> f ()
         else Obs.span "eval/suite" ~args:[ ("config", Config.label c) ])
          (fun () ->
            Wr_util.Pool.parallel_map ?pool indexed ~f:(fun (i, loop) ->
                loop_cached ~suite_id ~index:i c ~cycle_model ~registers loop))
      in
      let total_cycles = ref 0.0 in
      let unpipelined = ref 0 and spilled = ref 0 in
      let stores = ref 0 and loads = ref 0 in
      let weight = ref 0.0 and fallback_weight = ref 0.0 in
      Array.iteri
        (fun i (r : loop_result) ->
          let loop = loops.(i) in
          total_cycles := !total_cycles +. r.cycles;
          weight := !weight +. loop.Loop.weight;
          if not r.pipelined then begin
            incr unpipelined;
            fallback_weight := !fallback_weight +. loop.Loop.weight
          end;
          if r.spill_stores > 0 then incr spilled;
          stores := !stores + r.spill_stores;
          loads := !loads + r.spill_loads)
        results;
      let agg =
        {
          total_cycles = !total_cycles;
          loops = Array.length loops;
          unpipelined = !unpipelined;
          unpipelined_weight = (if !weight > 0.0 then !fallback_weight /. !weight else 0.0);
          spilled_loops = !spilled;
          total_stores = !stores;
          total_loads = !loads;
        }
      in
      cache_store key agg;
      agg

let acceptable agg = agg.unpipelined_weight <= 0.10
