module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Resource = Wr_machine.Resource
module Loop = Wr_ir.Loop
module Ddg = Wr_ir.Ddg
module Operation = Wr_ir.Operation
module Schedule = Wr_sched.Schedule
module Driver = Wr_regalloc.Driver
module Obs = Wr_obs.Obs

type loop_result = {
  ii : int;
  cycles : float;
  required_regs : int;
  spill_stores : int;
  spill_loads : int;
  pipelined : bool;
  mii : int;
  trip_count : int;
}

(* Total full-pipeline evaluations performed (scheduler actually
   invoked, as opposed to answered from the loop-level cache); a test
   hook for the caching discipline. *)
let eval_count = Atomic.make 0

let evaluations () = Atomic.get eval_count

(* Per-level cache accounting, always on (atomic increments are cheap
   next to even a cache hit's hashing) so the telemetry snapshot and
   the tests can read hit rates without enabling full tracing. *)
type cache_stats = { hits : int; misses : int }

let suite_hits = Atomic.make 0

let suite_misses = Atomic.make 0

let loop_hits = Atomic.make 0

let loop_misses = Atomic.make 0

let cache_stats = function
  | `Suite -> { hits = Atomic.get suite_hits; misses = Atomic.get suite_misses }
  | `Loop -> { hits = Atomic.get loop_hits; misses = Atomic.get loop_misses }

(* Verification mode: every (loop, machine point) result is re-derived
   by the independent Wr_check oracles; any broken invariant raises
   [Wr_check.Oracle.Violation].  Off by default — the oracles run the
   reference interpreter and O(II) re-derivations, so a verified run
   costs a small constant factor over a plain one. *)
let verify_flag =
  Atomic.make
    (match Sys.getenv_opt "WR_VERIFY" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | Some ("0" | "false" | "no" | "off" | "") | None -> false
    | Some bad ->
        (* A typo like WR_VERIFY=ture must not silently disable the
           oracles the caller asked for. *)
        Printf.eprintf
          "warning: invalid WR_VERIFY value %S (expected 1/true/yes/on or 0/false/no/off); \
           verification stays off\n\
           %!"
          bad;
        false)

let set_verify b = Atomic.set verify_flag b

let verify_enabled () = Atomic.get verify_flag

let verified_count = Atomic.make 0

let verified_points () = Atomic.get verified_count

(* Sequential fallback: iterations execute back-to-back with no
   software pipelining.  The per-iteration cost is the flat schedule's
   span plus the latency drain of the last operations; register demand
   collapses to within-iteration concurrency, which always fits the
   smallest file studied. *)
let sequential_cost ~cycle_model g =
  let resource_free =
    (* Schedule at an II no smaller than the span so iterations never
       overlap. *)
    let upper =
      Array.fold_left
        (fun acc (o : Operation.t) ->
          acc + Cycle_model.occupancy cycle_model o.Operation.opcode)
        1 (Ddg.ops g)
      + List.fold_left
          (fun acc (e : Wr_ir.Dependence.t) ->
            acc
            + Wr_ir.Dependence.delay_rule e.Wr_ir.Dependence.kind
                ~producer_latency:
                  (Cycle_model.latency_of_op cycle_model
                     (Ddg.op g e.Wr_ir.Dependence.src).Operation.opcode))
          0 (Ddg.edges g)
    in
    upper
  in
  resource_free

let loop_on_impl (c : Config.t) ~cycle_model ~registers (loop : Loop.t) =
  Atomic.incr eval_count;
  if Obs.enabled () then Obs.incr "eval/evaluations";
  (* The body is widened for the machine's width but NOT unrolled by
     the bus count: like the paper's compiler, the scheduler works on
     the loop as written, so the initiation interval (and with it the
     register pressure of aggressive machines) is quantized at
     II >= 1 per (wide) iteration. *)
  let prepared, _stats =
    Obs.span "widen" (fun () -> Wr_widen.Transform.widen loop ~width:c.Config.width)
  in
  let resource = Resource.of_config c in
  let outcome = Driver.run resource ~cycle_model ~registers prepared.Loop.ddg in
  let verifying = verify_enabled () in
  if verifying then begin
    let context =
      Printf.sprintf "%s on %s (%d regs, %s)" loop.Loop.name (Config.label c) registers
        (Cycle_model.to_string cycle_model)
    in
    let vs =
      Obs.span "verify" (fun () ->
          Wr_check.Oracle.check_widening ~original:loop ~widened:prepared
            ~width:c.Config.width
          @ Wr_check.Oracle.check_driver resource ~registers ~pre:prepared outcome)
    in
    Wr_check.Oracle.fail_if_any ~context vs;
    Atomic.incr verified_count
  end;
  match outcome with
  | Driver.Scheduled s ->
      let ii = s.Driver.schedule.Schedule.ii in
      (* The widened loop executes trip/Y iterations of II cycles each;
         trip_count was already divided by the transform. *)
      let cycles = float_of_int (ii * prepared.Loop.trip_count) *. loop.Loop.weight in
      {
        ii;
        cycles;
        required_regs = s.Driver.alloc.Wr_regalloc.Alloc.required;
        spill_stores = s.Driver.stores_added;
        spill_loads = s.Driver.loads_added;
        pipelined = true;
        mii = s.Driver.mii;
        trip_count = prepared.Loop.trip_count;
      }
  | Driver.Unschedulable _ ->
      let resource_free = sequential_cost ~cycle_model prepared.Loop.ddg in
      (* A list schedule is far shorter than the sum above; use the
         modulo scheduler once at a non-overlapping II to get the real
         span. *)
      let r =
        Wr_sched.Modulo.run resource ~cycle_model ~min_ii:resource_free prepared.Loop.ddg
      in
      if verifying then
        Wr_check.Oracle.fail_if_any
          ~context:
            (Printf.sprintf "%s sequential fallback on %s" loop.Loop.name (Config.label c))
          (Wr_check.Oracle.check_schedule prepared.Loop.ddg resource
             r.Wr_sched.Modulo.schedule);
      let span =
        Schedule.span r.Wr_sched.Modulo.schedule
        + Cycle_model.latency cycle_model Wr_ir.Opcode.Short_op
      in
      {
        ii = span;
        cycles = float_of_int (span * prepared.Loop.trip_count) *. loop.Loop.weight;
        required_regs = registers;
        spill_stores = 0;
        spill_loads = 0;
        pipelined = false;
        mii = r.Wr_sched.Modulo.mii;
        trip_count = prepared.Loop.trip_count;
      }

let loop_on (c : Config.t) ~cycle_model ~registers (loop : Loop.t) =
  if not (Obs.enabled ()) then loop_on_impl c ~cycle_model ~registers loop
  else
    (* The args list is only built when tracing is on. *)
    Obs.span "eval/loop"
      ~args:[ ("loop", loop.Loop.name); ("config", Config.label c) ]
      (fun () -> loop_on_impl c ~cycle_model ~registers loop)

type aggregate = {
  total_cycles : float;
  loops : int;
  unpipelined : int;
  unpipelined_weight : float;
  spilled_loops : int;
  total_stores : int;
  total_loads : int;
}

(* Thread-safety discipline: both memo tables are shared across the
   pool's domains and every access goes through [cache_mutex].  Lookups
   and stores are short critical sections; the evaluation itself runs
   outside the lock, so two domains racing on the same key at most
   duplicate a deterministic computation and [Hashtbl.replace] makes
   the second store a no-op in effect.

   Two levels: [cache] memoizes whole-suite aggregates (the technology
   studies revisit operating points), while [loop_cache] memoizes
   individual loop evaluations keyed by (suite, loop index, machine
   point) so that different studies — and different aggregations over
   the same suite — share the expensive schedule-and-allocate work. *)
let cache : (string * int * int * int * int, aggregate) Hashtbl.t = Hashtbl.create 256

let loop_cache : (string * int * int * int * int * int, loop_result) Hashtbl.t =
  Hashtbl.create 4096

let cache_mutex = Mutex.create ()

let clear_cache () =
  Mutex.lock cache_mutex;
  Hashtbl.reset cache;
  Hashtbl.reset loop_cache;
  Mutex.unlock cache_mutex;
  (* The hit/miss statistics describe the cache contents; dropping one
     without the other would make subsequent hit rates unreadable. *)
  Atomic.set suite_hits 0;
  Atomic.set suite_misses 0;
  Atomic.set loop_hits 0;
  Atomic.set loop_misses 0

let cache_find key =
  Mutex.lock cache_mutex;
  let r = Hashtbl.find_opt cache key in
  Mutex.unlock cache_mutex;
  (match r with
  | Some _ ->
      Atomic.incr suite_hits;
      if Obs.enabled () then Obs.incr "eval/suite_cache_hits"
  | None ->
      Atomic.incr suite_misses;
      if Obs.enabled () then Obs.incr "eval/suite_cache_misses");
  r

let cache_store key agg =
  Mutex.lock cache_mutex;
  Hashtbl.replace cache key agg;
  Mutex.unlock cache_mutex

let loop_cached ~suite_id ~index (c : Config.t) ~cycle_model ~registers loop =
  let key =
    ( suite_id,
      index,
      c.Config.buses,
      c.Config.width,
      registers,
      Cycle_model.cycles cycle_model )
  in
  Mutex.lock cache_mutex;
  let hit = Hashtbl.find_opt loop_cache key in
  Mutex.unlock cache_mutex;
  match hit with
  | Some r ->
      Atomic.incr loop_hits;
      if Obs.enabled () then Obs.incr "eval/loop_cache_hits";
      r
  | None ->
      Atomic.incr loop_misses;
      if Obs.enabled () then Obs.incr "eval/loop_cache_misses";
      let r = loop_on c ~cycle_model ~registers loop in
      Mutex.lock cache_mutex;
      (* First store wins so concurrent callers settle on one physical
         result record. *)
      let stored =
        match Hashtbl.find_opt loop_cache key with
        | Some r' -> r'
        | None ->
            Hashtbl.add loop_cache key r;
            r
      in
      Mutex.unlock cache_mutex;
      stored

let suite_on ?pool ~suite_id (c : Config.t) ~cycle_model ~registers loops =
  let key =
    (suite_id, c.Config.buses, c.Config.width, registers, Cycle_model.cycles cycle_model)
  in
  match cache_find key with
  | Some agg -> agg
  | None ->
      (* Per-loop evaluations are independent; fan them out over the
         pool.  The fold below walks the order-preserving result array
         sequentially, so float accumulation order — and with it the
         aggregate, bit for bit — is identical for any pool size. *)
      let indexed = Array.mapi (fun i loop -> (i, loop)) loops in
      let results =
        (if not (Obs.enabled ()) then fun f -> f ()
         else Obs.span "eval/suite" ~args:[ ("config", Config.label c) ])
          (fun () ->
            Wr_util.Pool.parallel_map ?pool indexed ~f:(fun (i, loop) ->
                loop_cached ~suite_id ~index:i c ~cycle_model ~registers loop))
      in
      let total_cycles = ref 0.0 in
      let unpipelined = ref 0 and spilled = ref 0 in
      let stores = ref 0 and loads = ref 0 in
      let weight = ref 0.0 and fallback_weight = ref 0.0 in
      Array.iteri
        (fun i (r : loop_result) ->
          let loop = loops.(i) in
          total_cycles := !total_cycles +. r.cycles;
          weight := !weight +. loop.Loop.weight;
          if not r.pipelined then begin
            incr unpipelined;
            fallback_weight := !fallback_weight +. loop.Loop.weight
          end;
          if r.spill_stores > 0 then incr spilled;
          stores := !stores + r.spill_stores;
          loads := !loads + r.spill_loads)
        results;
      let agg =
        {
          total_cycles = !total_cycles;
          loops = Array.length loops;
          unpipelined = !unpipelined;
          unpipelined_weight = (if !weight > 0.0 then !fallback_weight /. !weight else 0.0);
          spilled_loops = !spilled;
          total_stores = !stores;
          total_loads = !loads;
        }
      in
      cache_store key agg;
      agg

let acceptable agg = agg.unpipelined_weight <= 0.10
