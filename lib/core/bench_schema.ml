type json =
  | Null
  | Bool of bool
  | Num of float * string
  | Str of string
  | List of json list
  | Obj of (string * json) list

let int n = Num (float_of_int n, string_of_int n)

let float ?(fmt = Printf.sprintf "%.17g") f = Num (f, fmt f)

let str s = Str s

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float = function Num (f, _) -> Some f | _ -> None

let to_int = function
  | Num (f, _) when Float.is_integer f && Float.abs f <= 2. ** 52. -> Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

(* --- printing ----------------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num (_, lit) -> Buffer.add_string buf lit
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ", ";
          emit buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

(* Committed artifacts: one top-level key per line; lists put one
   (compact) element per line so a changed row is one changed line. *)
let to_file_string v =
  let buf = Buffer.create 4096 in
  (match v with
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (Printf.sprintf "  \"%s\": " (escape k));
          match v with
          | List (_ :: _ as items) ->
              Buffer.add_string buf "[\n";
              List.iteri
                (fun j item ->
                  if j > 0 then Buffer.add_string buf ",\n";
                  Buffer.add_string buf "    ";
                  emit buf item)
                items;
              Buffer.add_string buf "\n  ]"
          | v -> emit buf v)
        fields;
      Buffer.add_string buf "\n}"
  | v -> emit buf v);
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------ *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let utf8_of_code buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   (match int_of_string_opt ("0x" ^ hex) with
                   | Some code ->
                       utf8_of_code buf code;
                       pos := !pos + 4
                   | None -> fail "bad \\u escape")
               | c -> fail (Printf.sprintf "bad escape \\%C" c));
            go ()
        | c when Char.code c < 32 -> fail "raw control character in string"
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      && match s.[!pos] with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false
    do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match float_of_string_opt lit with
    | Some f -> Num (f, lit)
    | None -> fail (Printf.sprintf "bad number %S" lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          List (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- envelope ----------------------------------------------------------- *)

let version = "wr-bench/2"

let envelope ~kind payload = Obj (("schema", Str version) :: ("kind", Str kind) :: payload)

(* Required payload keys per kind, with a coarse type tag. *)
let required = function
  | "sched" -> Some [ ("suite", `Str); ("reps", `Num); ("loops", `List); ("total_s", `Num) ]
  | "interp" ->
      Some [ ("suite", `Str); ("iterations", `Num); ("loops", `List); ("speedup", `Num) ]
  | "gap" ->
      Some
        [
          ("suite", `Str);
          ("points", `Num);
          ("proved_optimal", `Num);
          ("rows", `List);
        ]
  | _ -> None

let validate v =
  match v with
  | Obj _ -> (
      match member "schema" v with
      | Some (Str sv) when sv = version -> (
          match member "kind" v with
          | Some (Str kind) -> (
              match required kind with
              | None -> Error (Printf.sprintf "unknown kind %S" kind)
              | Some keys ->
                  let bad =
                    List.find_map
                      (fun (k, ty) ->
                        match (member k v, ty) with
                        | None, _ -> Some (Printf.sprintf "missing key %S" k)
                        | Some (Str _), `Str | Some (Num _), `Num | Some (List _), `List ->
                            None
                        | Some _, _ -> Some (Printf.sprintf "key %S has the wrong type" k))
                      keys
                  in
                  (match bad with None -> Ok kind | Some msg -> Error msg))
          | _ -> Error "missing or non-string \"kind\"")
      | Some (Str sv) -> Error (Printf.sprintf "schema %S (this build reads %S)" sv version)
      | _ -> Error "missing \"schema\" tag (pre-envelope artifact?)")
  | _ -> Error "top-level value is not an object"

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> parse contents

let write_file path v =
  Out_channel.with_open_text path (fun oc -> output_string oc (to_file_string v))
