module Config = Wr_machine.Config
module Sia = Wr_cost.Sia
module Area = Wr_cost.Area

type verdict = First_at of int | Never | Not_applicable

type cell = { registers : int; partitions : int; verdict : verdict }

type row = { x : int; y : int; cells : cell list }

let register_sizes = [ 32; 64; 128; 256 ]

let partition_options = [ 1; 2; 4; 8; 16 ]

let grid =
  List.concat_map
    (fun factor ->
      let rec splits x acc = if x = 0 then List.rev acc else splits (x / 2) (x :: acc) in
      List.map (fun x -> (x, factor / x)) (splits factor []))
    [ 1; 2; 4; 8; 16 ]

let verdict_of ~budget x y z n =
  if n > x || x mod n <> 0 then Not_applicable
  else begin
    let c = Config.xwy ~registers:z ~partitions:n ~x ~y () in
    let first =
      List.find_opt (fun g -> Area.implementable ~budget c g) Sia.generations
    in
    match first with Some g -> First_at g.Sia.year | None -> Never
  end

let run ?(budget = 0.20) () =
  List.map
    (fun (x, y) ->
      let cells =
        List.concat_map
          (fun z ->
            List.map
              (fun n ->
                { registers = z; partitions = n; verdict = verdict_of ~budget x y z n })
              partition_options)
          register_sizes
      in
      { x; y; cells })
    grid

(* Table 5's symbols, one per generation. *)
let symbol = function
  | Not_applicable -> "."
  | Never -> "X"
  | First_at 1998 -> "a"
  | First_at 2001 -> "b"
  | First_at 2004 -> "c"
  | First_at 2007 -> "d"
  | First_at 2010 -> "e"
  | First_at _ -> "?"

let to_text rows =
  let headers =
    "config"
    :: List.map
         (fun z -> Printf.sprintf "%d-RF n=1,2,4,8,16" z)
         register_sizes
  in
  let body =
    List.map
      (fun r ->
        let by_registers =
          List.map
            (fun z ->
              String.concat ""
                (List.filter_map
                   (fun c ->
                     if c.registers = z then Some (symbol c.verdict) else None)
                   r.cells))
            register_sizes
        in
        Printf.sprintf "%dw%d" r.x r.y :: by_registers)
      rows
  in
  Wr_util.Table.render
    ~title:
      "Table 5: first implementable generation (a=0.25um 1998, b=0.18, c=0.13, d=0.10, \
       e=0.07; X=never, .=partitioning not applicable)"
    ~headers body

let implementable_configs ?(budget = 0.20) g =
  List.concat_map
    (fun (x, y) ->
      List.concat_map
        (fun z ->
          List.filter_map
            (fun n ->
              if n > x || x mod n <> 0 then None
              else
                let c = Config.xwy ~registers:z ~partitions:n ~x ~y () in
                if Area.implementable ~budget c g then Some c else None)
            partition_options)
        register_sizes)
    grid
