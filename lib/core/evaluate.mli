(** Full-pipeline evaluation of loops on configurations: widen,
    modulo-schedule, allocate registers, spill/slow down and reschedule
    — the machinery behind the finite-register-file experiments
    (Figure 3 and Section 5).

    A loop whose register pressure cannot be contained even by spilling
    and by slowing the pipeline down is compiled {e without} software
    pipelining (iterations run back-to-back, no overlap, negligible
    register demand) — what a real compiler falls back to.  A
    configuration where such fallbacks carry more than a small share of
    the execution weight is reported as not schedulable, matching the
    paper's missing 8w1 32-register bar.

    Aggregates over a suite are memoized on
    [(suite, buses, width, registers, cycle model)] because the
    technology studies revisit the same operating points many times
    (partition variants share everything but the clock).

    {2 Concurrency}

    [suite_on] evaluates loops in parallel on a {!Wr_util.Pool} (the
    process-wide default unless [?pool] is given) and is itself safe to
    call from pool tasks, so study drivers may fan out over
    configurations while each configuration fans out over loops.  The
    memo table is guarded by a mutex: lookups and stores are short
    critical sections, the evaluation runs outside the lock, and two
    domains racing on one key merely duplicate a deterministic
    computation.  Results are bit-identical for any pool size because
    the per-loop results are reduced sequentially in input order. *)

type loop_result = {
  ii : int;  (** initiation interval, or the sequential span when not pipelined *)
  cycles : float;  (** weighted execution cycles *)
  required_regs : int;
  spill_stores : int;
  spill_loads : int;
  spill_rounds : int;  (** spill/reschedule iterations the driver took *)
  pipelined : bool;
  mii : int;  (** MII of the widened body (from the pre-spill graph) *)
  trip_count : int;  (** trip count of the widened loop *)
}

val loop_on :
  ?plan_key:string * int ->
  Wr_machine.Config.t ->
  cycle_model:Wr_machine.Cycle_model.t ->
  registers:int ->
  Wr_ir.Loop.t ->
  loop_result
(** Uncached full-pipeline evaluation of one loop; increments
    {!evaluations}.  [plan_key] ([suite_id], [index]) keys the memo of
    compiled {!Wr_vliw.Interp} plans used by the verification oracles,
    so a verified study interprets each loop through one compiled plan
    across all its machine points; without it plans are compiled per
    call.  It must uniquely name the loop, like the cache key of
    {!loop_cached} (which passes it automatically). *)

val loop_cached :
  suite_id:string ->
  index:int ->
  Wr_machine.Config.t ->
  cycle_model:Wr_machine.Cycle_model.t ->
  registers:int ->
  Wr_ir.Loop.t ->
  loop_result
(** Loop-level memo over {!loop_on}, keyed by
    [(suite_id, index, buses, width, registers, cycle model)].
    [suite_id] and [index] must uniquely name the loop passed.  Repeated
    calls with one key return the physically same record; concurrent
    callers settle on the first stored result.  Thread-safe. *)

val evaluations : unit -> int
(** Number of times {!loop_on} actually ran the widen/schedule/allocate
    pipeline since process start (cache hits do not count) — a test
    hook for the caching discipline. *)

type cache_stats = { hits : int; misses : int }

val cache_stats : [ `Suite | `Loop | `Store ] -> cache_stats
(** Hit/miss counts per memo level ([`Suite]: whole-suite aggregates;
    [`Loop]: per-loop results; [`Store]: the attached persistent store,
    consulted on loop-cache misses).  Always counted, thread-safe, and
    reset by {!clear_cache} alongside the cached entries themselves
    (the store's on-disk contents survive, only the counters reset). *)

val set_verify : bool -> unit
(** Toggle verification mode: when on, every {!loop_on} result is
    re-derived by the independent {!Wr_check.Oracle} oracles (widening,
    schedule, allocation, spill semantics) and a broken invariant
    raises {!Wr_check.Oracle.Violation} with the loop and machine point
    named.  Initialized from the [WR_VERIFY] environment variable
    ([1]/[true]/[yes]/[on]). *)

val verify_enabled : unit -> bool

val verified_points : unit -> int
(** Number of (loop, machine point) results that passed all oracles
    since process start — a verified run can report "N points, zero
    violations". *)

(** {2 Supervision}

    A loop evaluation that raises (an injected fault, a cooperative
    budget overrun, a latent scheduler bug) does not kill the study: by
    default the point degrades to the paper's "compiler gives up"
    unpipelined fallback — costed by pure arithmetic over the unwidened
    body, so the degrade path itself cannot fail — and a quarantine
    record is kept for the end-of-run report.  [Out_of_memory] is never
    absorbed.  Strict mode ([WR_STRICT], or [--strict] in the drivers)
    restores fail-fast. *)

val set_strict : bool -> unit
(** Toggle fail-fast.  Initialized from the [WR_STRICT] environment
    variable. *)

val strict_enabled : unit -> bool

val set_loop_budget_ms : int option -> unit
(** Wall-clock budget per loop evaluation, enforced cooperatively at
    II-escalation, scheduler-attempt, and spill-round boundaries (see
    {!Wr_util.Deadline}); an overrun degrades the point through the
    quarantine path.  [None] (the default) disables the budget; raises
    [Invalid_argument] on a non-positive budget. *)

val loop_budget_ms : unit -> int option

type quarantine_record = {
  q_suite : string;
  q_index : int;  (** loop index within the suite *)
  q_loop : string;  (** loop name *)
  q_config : string;  (** [Config.label] of the machine point *)
  q_registers : int;
  q_cycle_model : int;  (** cycle-model cycles *)
  q_reason : string;  (** the exception, printed *)
  q_backtrace : string;  (** backtrace, when recording is enabled *)
}

val quarantined : unit -> quarantine_record list
(** Every degraded point since the last {!reset_quarantine}, in a
    stable (suite, index, config, registers, model) order regardless of
    pool completion order.  Thread-safe. *)

val quarantined_count : unit -> int

val reset_quarantine : unit -> unit

(** {2 Checkpoint/resume}

    The journal (see {!Journal}) records each cleanly completed
    loop-level point; attaching one replays its intact prefix into the
    loop cache, so a re-run after a crash recomputes only the missing
    points and — floats round-tripping through their bit patterns —
    produces output byte-identical to an uninterrupted run.
    Quarantined points are deliberately not journaled: a resume retries
    them. *)

val attach_journal : string -> int
(** Open (creating if absent) a journal at the given path, replay its
    intact prefix into the loop cache, and append every subsequent
    clean evaluation to it.  Returns the number of points replayed.
    Detaches any previously attached journal first.  Note that
    {!clear_cache} drops replayed entries like any others; attach after
    clearing. *)

val detach_journal : unit -> unit
(** Flush, close, and stop journaling.  No-op when none is attached. *)

val flush_journal : unit -> unit
(** Force buffered journal records to disk (also done on detach). *)

(** {2 Persistent store}

    The content-addressed result store (see {!Store}) is the cross-run
    complement of the journal: keyed by {!Provenance.point_hash}, it is
    consulted on every loop-cache miss and appended to on every clean
    first-store-wins evaluation, so any process attached to the same
    store directory — a restarted server, a fresh sweep — warm-starts
    with zero re-evaluations for points it has seen.  Store hits become
    ordinary cache entries: they are neither journaled nor emitted as
    provenance records (they are not decisions of this run), and they
    are not re-verified under {!set_verify} (the entry was verified, if
    at all, by the run that evaluated it).  Quarantined points are
    never stored; a later run retries them. *)

val attach_store : string -> Store.recovery
(** Open (creating if absent) a store directory, recover its segments,
    and serve/append through it until {!detach_store}.  Detaches any
    previously attached store first.  Raises {!Store.Locked} when
    another live process holds the store. *)

val detach_store : unit -> unit
(** Flush, close, release the store's lockfile, and stop consulting
    it.  No-op when none is attached. *)

val store_dir : unit -> string option
(** Directory of the attached store, if any. *)

val store_entries : unit -> int
(** Distinct entries in the attached store (0 when none). *)

val store_appended : unit -> int
(** Entries this process appended to the attached store. *)

val probe :
  suite_id:string ->
  index:int ->
  Wr_machine.Config.t ->
  cycle_model:Wr_machine.Cycle_model.t ->
  registers:int ->
  loop_result option
(** Loop-cache lookup without evaluating and without touching the
    hit/miss counters — the service uses it to label each reply's
    source ([memo]/[store]/[fresh]) before running {!loop_cached}. *)

val probe_store :
  suite_id:string ->
  index:int ->
  Wr_machine.Config.t ->
  cycle_model:Wr_machine.Cycle_model.t ->
  registers:int ->
  Wr_ir.Loop.t ->
  bool
(** Whether the attached store holds this point (counter-free, like
    {!probe}); [false] when no store is attached. *)

type aggregate = {
  total_cycles : float;  (** weighted cycles over all loops *)
  loops : int;
  unpipelined : int;  (** loops that fell back to sequential iteration *)
  unpipelined_weight : float;  (** weight share of the fallbacks, in [0,1] *)
  spilled_loops : int;
  total_stores : int;
  total_loads : int;
}

val suite_on :
  ?pool:Wr_util.Pool.t ->
  suite_id:string ->
  Wr_machine.Config.t ->
  cycle_model:Wr_machine.Cycle_model.t ->
  registers:int ->
  Wr_ir.Loop.t array ->
  aggregate
(** Memoized; [suite_id] must uniquely name the loop array passed.
    Evaluates loops in parallel on [pool] (default: the shared pool);
    deterministic for any pool size. *)

val acceptable : aggregate -> bool
(** Whether the configuration point counts as schedulable: fallbacks
    carry at most 10% of the execution weight. *)

val clear_cache : unit -> unit
(** Drops all memo levels: the suite aggregates, the per-loop results,
    and the compiled interpreter plans.  Also resets {!cache_stats} for
    both counted levels. *)
