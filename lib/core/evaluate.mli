(** Full-pipeline evaluation of loops on configurations: widen,
    modulo-schedule, allocate registers, spill/slow down and reschedule
    — the machinery behind the finite-register-file experiments
    (Figure 3 and Section 5).

    A loop whose register pressure cannot be contained even by spilling
    and by slowing the pipeline down is compiled {e without} software
    pipelining (iterations run back-to-back, no overlap, negligible
    register demand) — what a real compiler falls back to.  A
    configuration where such fallbacks carry more than a small share of
    the execution weight is reported as not schedulable, matching the
    paper's missing 8w1 32-register bar.

    Aggregates over a suite are memoized on
    [(suite, buses, width, registers, cycle model)] because the
    technology studies revisit the same operating points many times
    (partition variants share everything but the clock).

    {2 Concurrency}

    [suite_on] evaluates loops in parallel on a {!Wr_util.Pool} (the
    process-wide default unless [?pool] is given) and is itself safe to
    call from pool tasks, so study drivers may fan out over
    configurations while each configuration fans out over loops.  The
    memo table is guarded by a mutex: lookups and stores are short
    critical sections, the evaluation runs outside the lock, and two
    domains racing on one key merely duplicate a deterministic
    computation.  Results are bit-identical for any pool size because
    the per-loop results are reduced sequentially in input order. *)

type loop_result = {
  ii : int;  (** initiation interval, or the sequential span when not pipelined *)
  cycles : float;  (** weighted execution cycles *)
  required_regs : int;
  spill_stores : int;
  spill_loads : int;
  pipelined : bool;
}

val loop_on :
  Wr_machine.Config.t ->
  cycle_model:Wr_machine.Cycle_model.t ->
  registers:int ->
  Wr_ir.Loop.t ->
  loop_result

type aggregate = {
  total_cycles : float;  (** weighted cycles over all loops *)
  loops : int;
  unpipelined : int;  (** loops that fell back to sequential iteration *)
  unpipelined_weight : float;  (** weight share of the fallbacks, in [0,1] *)
  spilled_loops : int;
  total_stores : int;
  total_loads : int;
}

val suite_on :
  ?pool:Wr_util.Pool.t ->
  suite_id:string ->
  Wr_machine.Config.t ->
  cycle_model:Wr_machine.Cycle_model.t ->
  registers:int ->
  Wr_ir.Loop.t array ->
  aggregate
(** Memoized; [suite_id] must uniquely name the loop array passed.
    Evaluates loops in parallel on [pool] (default: the shared pool);
    deterministic for any pool size. *)

val acceptable : aggregate -> bool
(** Whether the configuration point counts as schedulable: fallbacks
    carry at most 10% of the execution weight. *)

val clear_cache : unit -> unit
