(** Full-pipeline evaluation of loops on configurations: widen,
    modulo-schedule, allocate registers, spill/slow down and reschedule
    — the machinery behind the finite-register-file experiments
    (Figure 3 and Section 5).

    A loop whose register pressure cannot be contained even by spilling
    and by slowing the pipeline down is compiled {e without} software
    pipelining (iterations run back-to-back, no overlap, negligible
    register demand) — what a real compiler falls back to.  A
    configuration where such fallbacks carry more than a small share of
    the execution weight is reported as not schedulable, matching the
    paper's missing 8w1 32-register bar.

    Aggregates over a suite are memoized on
    [(suite, buses, width, registers, cycle model)] because the
    technology studies revisit the same operating points many times
    (partition variants share everything but the clock).

    {2 Concurrency}

    [suite_on] evaluates loops in parallel on a {!Wr_util.Pool} (the
    process-wide default unless [?pool] is given) and is itself safe to
    call from pool tasks, so study drivers may fan out over
    configurations while each configuration fans out over loops.  The
    memo table is guarded by a mutex: lookups and stores are short
    critical sections, the evaluation runs outside the lock, and two
    domains racing on one key merely duplicate a deterministic
    computation.  Results are bit-identical for any pool size because
    the per-loop results are reduced sequentially in input order. *)

type loop_result = {
  ii : int;  (** initiation interval, or the sequential span when not pipelined *)
  cycles : float;  (** weighted execution cycles *)
  required_regs : int;
  spill_stores : int;
  spill_loads : int;
  pipelined : bool;
  mii : int;  (** MII of the widened body (from the pre-spill graph) *)
  trip_count : int;  (** trip count of the widened loop *)
}

val loop_on :
  Wr_machine.Config.t ->
  cycle_model:Wr_machine.Cycle_model.t ->
  registers:int ->
  Wr_ir.Loop.t ->
  loop_result
(** Uncached full-pipeline evaluation of one loop; increments
    {!evaluations}. *)

val loop_cached :
  suite_id:string ->
  index:int ->
  Wr_machine.Config.t ->
  cycle_model:Wr_machine.Cycle_model.t ->
  registers:int ->
  Wr_ir.Loop.t ->
  loop_result
(** Loop-level memo over {!loop_on}, keyed by
    [(suite_id, index, buses, width, registers, cycle model)].
    [suite_id] and [index] must uniquely name the loop passed.  Repeated
    calls with one key return the physically same record; concurrent
    callers settle on the first stored result.  Thread-safe. *)

val evaluations : unit -> int
(** Number of times {!loop_on} actually ran the widen/schedule/allocate
    pipeline since process start (cache hits do not count) — a test
    hook for the caching discipline. *)

type cache_stats = { hits : int; misses : int }

val cache_stats : [ `Suite | `Loop ] -> cache_stats
(** Hit/miss counts per memo level ([`Suite]: whole-suite aggregates;
    [`Loop]: per-loop results).  Always counted, thread-safe, and reset
    by {!clear_cache} alongside the cached entries themselves. *)

val set_verify : bool -> unit
(** Toggle verification mode: when on, every {!loop_on} result is
    re-derived by the independent {!Wr_check.Oracle} oracles (widening,
    schedule, allocation, spill semantics) and a broken invariant
    raises {!Wr_check.Oracle.Violation} with the loop and machine point
    named.  Initialized from the [WR_VERIFY] environment variable
    ([1]/[true]/[yes]/[on]). *)

val verify_enabled : unit -> bool

val verified_points : unit -> int
(** Number of (loop, machine point) results that passed all oracles
    since process start — a verified run can report "N points, zero
    violations". *)

type aggregate = {
  total_cycles : float;  (** weighted cycles over all loops *)
  loops : int;
  unpipelined : int;  (** loops that fell back to sequential iteration *)
  unpipelined_weight : float;  (** weight share of the fallbacks, in [0,1] *)
  spilled_loops : int;
  total_stores : int;
  total_loads : int;
}

val suite_on :
  ?pool:Wr_util.Pool.t ->
  suite_id:string ->
  Wr_machine.Config.t ->
  cycle_model:Wr_machine.Cycle_model.t ->
  registers:int ->
  Wr_ir.Loop.t array ->
  aggregate
(** Memoized; [suite_id] must uniquely name the loop array passed.
    Evaluates loops in parallel on [pool] (default: the shared pool);
    deterministic for any pool size. *)

val acceptable : aggregate -> bool
(** Whether the configuration point counts as schedulable: fallbacks
    carry at most 10% of the execution weight. *)

val clear_cache : unit -> unit
(** Drops both memo levels: the suite aggregates and the per-loop
    results.  Also resets {!cache_stats} for both levels. *)
