(** Ablation studies for the design choices DESIGN.md calls out.

    These go beyond the paper's published artefacts: each isolates one
    modelling knob and shows how the headline results move with it —
    the sensitivity analysis a reviewer would ask for.

    {ul
    {- {b compactability}: Figure 2's widening series as a function of
       the workload's stride-1 fraction — the knob the 1wY saturation
       level stands on;}
    {- {b register-pressure levers}: the spill study rerun with only
       spilling, with only II escalation, and with both (the two
       MICRO-29 heuristics), showing how much each lever contributes;}
    {- {b rotating vs conventional register file}: the wands
       requirement (rotating file, the paper's PLDI-92 allocator)
       against modulo-variable-expansion on a conventional file, plus
       the kernel unrolling and code growth MVE costs — the hardware
       trade-off the paper's register file model abstracts away.}} *)

val compactability :
  ?stride1_probs:float list -> ?num_loops:int -> unit -> string
(** Regenerate mini-suites at several stride-1 fractions and report the
    x8 and x32 peak speed-ups of 8w1, 2w4 and 1w8. *)

val pressure_levers : ?suite_id:string -> Wr_ir.Loop.t array -> string
(** 4w2 and 8w1 at 32/64 registers under three driver policies:
    spill-only, escalate-only, combined — reporting speed-up and the
    fraction of loops that fail to pipeline. *)

val scheduler_orderings : Wr_ir.Loop.t array -> string
(** IMS height-priority vs SMS swing ordering: achieved II relative to
    the MII and the register requirement, per configuration — the
    scheduler-quality ablation. *)

val rotating_file : Wr_ir.Loop.t array -> string
(** Register requirements per configuration under three views: the
    wands pricing model (what the study's allocator charges), an actual
    rotating-file packing ({!Wr_vliw.Rotating}), and
    modulo-variable-expansion on a conventional file
    ({!Wr_vliw.Codegen}), with MVE's kernel unrolling factor. *)
