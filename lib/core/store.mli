(** Persistent content-addressed result store: the crash-safe cache
    behind warm-started studies and the query service.

    Where {!Journal} checkpoints {e one run} (records keyed by the memo
    coordinates, replayed wholesale on resume), the store is a
    {e cross-run} cache keyed by {!Provenance.point_hash} — the FNV-1a
    content hash of a point's full input.  Any process pointed at the
    same directory ([--store], or the daemon's store) answers a point it
    has seen before without re-running the scheduler, whether the
    earlier writer was a batch sweep, a CLI run, or a server that was
    [kill -9]ed mid-stream.

    {2 On-disk format}

    A store is a directory of append-only segments
    ([seg-NNNNNN.wrs]) plus a single-writer pid lockfile ([LOCK], see
    {!Wr_util.Lockfile}).  Each segment begins with the version header
    [wrstore/1] followed by one self-checking text line per entry (the
    journal's FNV-1a line discipline); segments rotate after
    [segment_records] entries so damage is compartmentalized.

    {2 Recovery}

    {!open_dir} trusts nothing: a segment with a missing or stale
    version header is quarantined whole (renamed to
    [*.quarantined]); a checksum failure in the {e newest} segment is
    a torn tail and is truncated away; a checksum failure inside a
    sealed segment parks the damaged original and keeps its intact
    prefix.  Recovery never deletes bytes that might be evidence and
    never aborts the open — the surviving entries are served and the
    rest simply re-evaluate.  Duplicate hashes resolve first-segment
    wins, mirroring the in-memory caches' first-store-wins.

    {2 Determinism}

    Append order depends on pool completion order, so raw segment
    bytes differ between runs; {!compact} rewrites the store as a
    single segment sorted by hash and deduplicated, after which two
    stores holding the same entries are byte-identical regardless of
    the [--jobs] (or traffic interleaving) that produced them.

    {2 Collisions}

    Two distinct points with equal 64-bit hashes would alias; with
    FNV-1a 64 over the canonical point rendering the chance is
    negligible at any realistic store size, and the journal — keyed by
    coordinates, not content — remains the exact-resume mechanism. *)

type entry = {
  hash : int64;  (** {!Provenance.point_hash} of the point's full input *)
  ii : int;
  cycles_bits : int64;  (** [Int64.bits_of_float] of the weighted cycles *)
  required_regs : int;
  spill_stores : int;
  spill_loads : int;
  spill_rounds : int;
  pipelined : bool;
  mii : int;
  trip_count : int;
}

type recovery = {
  segments : int;  (** live segments after recovery *)
  entries : int;  (** distinct entries loaded *)
  quarantined_segments : int;  (** segments parked (whole or rewritten to their prefix) *)
  truncated_bytes : int;  (** torn tail dropped from the newest segment *)
}

type t

exception Locked of string
(** Raised by {!open_dir} when another live process holds the store's
    lockfile; the message names the directory and the owning pid. *)

val version_tag : string
(** ["wrstore/1"], the segment header. *)

val open_dir : ?segment_records:int -> string -> t * recovery
(** Open (creating if absent) the store directory, take its lockfile,
    recover every segment as described above, and position the newest
    for appending.  [segment_records] (default 4096) bounds entries per
    segment.  Raises {!Locked} on a live second writer; stale locks
    from dead processes are broken silently. *)

val find : t -> int64 -> entry option
(** Constant-time lookup by content hash.  Thread-safe. *)

val add : t -> entry -> unit
(** Append one entry; a hash already present is ignored (first wins).
    Buffered and fsynced in batches like the journal.  Thread-safe;
    raises [Invalid_argument] if the store is closed. *)

val length : t -> int
(** Distinct entries currently held (loaded + appended). *)

val appended : t -> int
(** Entries appended by this handle since {!open_dir} — the
    new-results counter the drivers report. *)

val flush : t -> unit
(** Write out and fsync buffered entries. *)

val compact : t -> unit
(** Rewrite the store as one segment, sorted by hash and deduplicated
    (see Determinism above).  Crash-safe: the replacement is fully
    written and renamed into place before old segments are removed. *)

val close : t -> unit
(** Flush, close, and release the lockfile.  Idempotent. *)

val dir : t -> string
