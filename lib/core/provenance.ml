module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Loop = Wr_ir.Loop
module Ddg = Wr_ir.Ddg
module Operation = Wr_ir.Operation
module Dependence = Wr_ir.Dependence
module Ledger = Wr_obs.Ledger
module J = Bench_schema

type exact = {
  solves : int;
  proved : int;
  unproved : int;
  fallback : int;
  nodes : int;
  iis_refuted : int;
}

type t = {
  hash : int64;
  suite : string;
  index : int;
  loop : string;
  config : string;
  registers : int;
  cycle_model : int;
  ii : int;
  mii : int;
  cycles : float;
  pipelined : bool;
  spill_rounds : int;
  spill_stores : int;
  spill_loads : int;
  backend : string;
  sched_runs : int;
  evictions : int;
  exact : exact;
  oracle : string;
  quarantined : bool;
  tag : string;
  wall_us : int option;
}

let schema = "wr-ledger/1"

(* --- content hash ------------------------------------------------------- *)

(* Canonical rendering of the full point input.  The weight goes in as
   its IEEE-754 bits (hex), not a decimal rendering, so the hash is
   exactly as discriminating as the float itself. *)
let point_hash ~suite_id ~index ~(config : Config.t) ~registers ~cycle_model (loop : Loop.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "wrpoint/1\n";
  Buffer.add_string buf
    (Printf.sprintf "suite=%s\nindex=%d\nconfig=%s\nregisters=%d\ncycle_model=%d\n" suite_id
       index (Config.label config) registers
       (Cycle_model.cycles cycle_model));
  Buffer.add_string buf
    (Printf.sprintf "loop=%s trip=%d weight=%Lx\n" loop.Loop.name loop.Loop.trip_count
       (Int64.bits_of_float loop.Loop.weight));
  let g = loop.Loop.ddg in
  Array.iteri
    (fun i (o : Operation.t) ->
      Buffer.add_string buf (Printf.sprintf "op%d=%s\n" i (Operation.to_string o)))
    (Ddg.ops g);
  List.iter
    (fun (e : Dependence.t) ->
      Buffer.add_string buf
        (Printf.sprintf "edge=%d %d %s %d\n" e.Dependence.src e.Dependence.dst
           (Dependence.kind_to_string e.Dependence.kind)
           e.Dependence.distance))
    (Ddg.edges g);
  Ledger.fnv1a64 (Buffer.contents buf)

(* --- capture state ------------------------------------------------------ *)

let capture_flag = Atomic.make false

let set_capture b = Atomic.set capture_flag b

let capture_enabled () = Atomic.get capture_flag

let wall_flag = Atomic.make (Wr_util.Env.bool "WR_LEDGER_WALL" ~default:false)

let set_wall b = Atomic.set wall_flag b

let wall_enabled () = Atomic.get wall_flag

let buffer_mutex = Mutex.create ()

let buffer : t list ref = ref []

let record r =
  Mutex.lock buffer_mutex;
  buffer := r :: !buffer;
  Mutex.unlock buffer_mutex

let reset () =
  Mutex.lock buffer_mutex;
  buffer := [];
  Mutex.unlock buffer_mutex

(* Ledger order: the pool completes points in any order, so the file
   order is re-derived from the point coordinates alone. *)
let records () =
  Mutex.lock buffer_mutex;
  let l = !buffer in
  Mutex.unlock buffer_mutex;
  List.sort
    (fun a b ->
      compare
        (a.suite, a.index, a.config, a.registers, a.cycle_model)
        (b.suite, b.index, b.config, b.registers, b.cycle_model))
    l

(* --- (de)serialization -------------------------------------------------- *)

let json_of_record r =
  J.Obj
    ([
       ("hash", J.str (Ledger.hex64 r.hash));
       ("suite", J.str r.suite);
       ("index", J.int r.index);
       ("loop", J.str r.loop);
       ("config", J.str r.config);
       ("registers", J.int r.registers);
       ("cycle_model", J.int r.cycle_model);
       ("ii", J.int r.ii);
       ("mii", J.int r.mii);
       ("cycles", J.float r.cycles);
       ("pipelined", J.Bool r.pipelined);
       ("spill_rounds", J.int r.spill_rounds);
       ("spill_stores", J.int r.spill_stores);
       ("spill_loads", J.int r.spill_loads);
       ("backend", J.str r.backend);
       ("sched_runs", J.int r.sched_runs);
       ("evictions", J.int r.evictions);
       ("solves", J.int r.exact.solves);
       ("proved", J.int r.exact.proved);
       ("unproved", J.int r.exact.unproved);
       ("fallback", J.int r.exact.fallback);
       ("nodes", J.int r.exact.nodes);
       ("iis_refuted", J.int r.exact.iis_refuted);
       ("oracle", J.str r.oracle);
       ("quarantined", J.Bool r.quarantined);
       ("tag", J.str r.tag);
     ]
    @ match r.wall_us with None -> [] | Some us -> [ ("wall_us", J.int us) ])

let record_of_json v =
  let str k = match J.member k v with Some (J.Str s) -> Some s | _ -> None in
  let int k = Option.bind (J.member k v) J.to_int in
  let flt k = Option.bind (J.member k v) J.to_float in
  let bool k = match J.member k v with Some (J.Bool b) -> Some b | _ -> None in
  let ( let* ) = Option.bind in
  let* hash_hex = str "hash" in
  let* hash = Int64.of_string_opt ("0x" ^ hash_hex) in
  let* suite = str "suite" in
  let* index = int "index" in
  let* loop = str "loop" in
  let* config = str "config" in
  let* registers = int "registers" in
  let* cycle_model = int "cycle_model" in
  let* ii = int "ii" in
  let* mii = int "mii" in
  let* cycles = flt "cycles" in
  let* pipelined = bool "pipelined" in
  let* spill_rounds = int "spill_rounds" in
  let* spill_stores = int "spill_stores" in
  let* spill_loads = int "spill_loads" in
  let* backend = str "backend" in
  let* sched_runs = int "sched_runs" in
  let* evictions = int "evictions" in
  let* solves = int "solves" in
  let* proved = int "proved" in
  let* unproved = int "unproved" in
  let* fallback = int "fallback" in
  let* nodes = int "nodes" in
  let* iis_refuted = int "iis_refuted" in
  let* oracle = str "oracle" in
  let* quarantined = bool "quarantined" in
  let* tag = str "tag" in
  Some
    {
      hash;
      suite;
      index;
      loop;
      config;
      registers;
      cycle_model;
      ii;
      mii;
      cycles;
      pipelined;
      spill_rounds;
      spill_stores;
      spill_loads;
      backend;
      sched_runs;
      evictions;
      exact = { solves; proved; unproved; fallback; nodes; iis_refuted };
      oracle;
      quarantined;
      tag;
      wall_us = int "wall_us";
    }

let write path =
  let rs = records () in
  let header =
    J.to_string (J.Obj [ ("schema", J.str schema); ("points", J.int (List.length rs)) ])
  in
  Ledger.write ~path ~header ~records:(List.map (fun r -> J.to_string (json_of_record r)) rs)

let load path =
  match Ledger.load path with
  | Error _ as e -> e
  | Ok (header, payloads) -> (
      match J.parse header with
      | Error msg -> Error ("header: " ^ msg)
      | Ok h -> (
          match J.member "schema" h with
          | Some (J.Str s) when s = schema -> (
              let rec go i acc = function
                | [] -> Ok (List.rev acc)
                | p :: rest -> (
                    match J.parse p with
                    | Error msg -> Error (Printf.sprintf "record %d: %s" i msg)
                    | Ok v -> (
                        match record_of_json v with
                        | Some r -> go (i + 1) (r :: acc) rest
                        | None ->
                            Error (Printf.sprintf "record %d: missing or ill-typed field" i)))
              in
              go 1 [] payloads)
          | Some (J.Str s) ->
              Error (Printf.sprintf "ledger schema %S (this build reads %S)" s schema)
          | _ -> Error "ledger header carries no schema tag"))
