(** The paper's cost tables and figures that need no scheduling:
    Table 1 (SIA roadmap), Table 2 (register cells), Table 3 (RF area
    examples), Figure 4 (area of all configurations vs technology
    bands), Table 4 (relative access times), Figure 6 (partitioning an
    8w1 64-RF file), Table 6 (cycle models). *)

val table1 : unit -> string

val table2 : unit -> string
(** Model dimensions side by side with the paper's exact cells. *)

val table3 : unit -> string
(** RF area of 4w1, 2w2 and 1w4 with 64 registers. *)

val figure4 : unit -> string
(** Area (RF + FPUs) for the configuration grid at 32-256 registers,
    with the 10%/20% bands of each SIA generation. *)

val table4 : unit -> string
(** Model access times against the paper's: 60 entries. *)

val table4_pairs : unit -> ((int * int * int) * float * float) list
(** [(x, y, registers), model, paper] triples — used by the tests to
    bound the calibration error. *)

val figure6 : unit -> string
(** Area and access time of 8w1 64-RF under 1, 2, 4, 8 partitions,
    relative to the unpartitioned file. *)

val table6 : unit -> string
