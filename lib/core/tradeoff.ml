module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Sia = Wr_cost.Sia
module Area = Wr_cost.Area
module Access_time = Wr_cost.Access_time
module Table = Wr_util.Table

type point = {
  config : Config.t;
  tc : float;
  cycle_model : Cycle_model.t;
  total_cycles : float;
  speedup : float;
  area : float;
}

let baseline_cfg = Config.xwy ~registers:32 ~partitions:1 ~x:1 ~y:1 ()

let baseline_wallclock ~suite_id loops =
  let agg =
    Evaluate.suite_on ~suite_id baseline_cfg ~cycle_model:Cycle_model.Cycles_4 ~registers:32
      loops
  in
  if not (Evaluate.acceptable agg) then
    if Evaluate.quarantined_count () = 0 then
      failwith "Tradeoff: the 1w1(32:1) baseline must pipeline nearly every loop"
    else
      (* Under supervision a quarantined baseline point is expected: the
         study completes and reports the degraded points instead of
         aborting. *)
      Printf.eprintf
        "warning: tradeoff baseline 1w1(32:1) has %.0f%% fallback weight from degraded \
         (quarantined) loops; speedups are computed against the degraded baseline\n\
         %!"
        (100.0 *. agg.Evaluate.unpipelined_weight);
  agg.Evaluate.total_cycles *. 1.0

let evaluate ?(suite_id = "suite") loops (c : Config.t) =
  let tc = Access_time.relative c in
  let cycle_model = Access_time.cycle_model_of c in
  let agg = Evaluate.suite_on ~suite_id c ~cycle_model ~registers:c.Config.registers loops in
  if not (Evaluate.acceptable agg) then None
  else begin
    let wallclock = agg.Evaluate.total_cycles *. tc in
    let base = baseline_wallclock ~suite_id loops in
    Some
      {
        config = c;
        tc;
        cycle_model;
        total_cycles = agg.Evaluate.total_cycles;
        speedup = base /. wallclock;
        area = Area.total_area c;
      }
  end

let panel ~suite_id ~title loops configs =
  (* Fill the baseline's memo entry before fanning out so the parallel
     points don't all recompute it on a cold cache. *)
  ignore (baseline_wallclock ~suite_id loops);
  let rows =
    Wr_util.Pool.parallel_list_map configs ~f:(fun c ->
        match evaluate ~suite_id loops c with
        | Some p ->
            [
              Config.label p.config;
              Printf.sprintf "%.2f" p.tc;
              Cycle_model.to_string p.cycle_model;
              Printf.sprintf "%.2f" p.speedup;
              Printf.sprintf "%.0f" (p.area /. 1e6);
            ]
        | None -> [ Config.label c; "-"; "-"; "n/a"; "-" ])
  in
  Table.render ~title
    ~headers:[ "config"; "Tc"; "latency model"; "speed-up"; "area (x10^6 l^2)" ]
    rows

let figure8 ?(suite_id = "suite") loops =
  let a =
    panel ~suite_id ~title:"Figure 8a: register file size (1w1)" loops
      (List.map (fun z -> Config.xwy ~registers:z ~x:1 ~y:1 ()) [ 32; 64; 128; 256 ])
  in
  let b =
    panel ~suite_id ~title:"Figure 8b: pure replication, 128-RF, fully partitioned" loops
      (List.map
         (fun x -> Config.xwy ~registers:128 ~partitions:x ~x ~y:1 ())
         [ 1; 2; 4; 8 ])
  in
  let c =
    panel ~suite_id ~title:"Figure 8c: pure widening, 128-RF" loops
      (List.map (fun y -> Config.xwy ~registers:128 ~x:1 ~y ()) [ 1; 2; 4; 8 ])
  in
  let d =
    panel ~suite_id ~title:"Figure 8d: factor-8 configurations, 128-RF" loops
      [
        Config.xwy ~registers:128 ~partitions:8 ~x:8 ~y:1 ();
        Config.xwy ~registers:128 ~partitions:4 ~x:4 ~y:2 ();
        Config.xwy ~registers:128 ~partitions:2 ~x:2 ~y:4 ();
        Config.xwy ~registers:128 ~partitions:1 ~x:1 ~y:8 ();
      ]
  in
  String.concat "\n" [ a; b; c; d ]

let figure9 ?(suite_id = "suite") ?(top = 5) loops =
  ignore (baseline_wallclock ~suite_id loops);
  List.map
    (fun g ->
      let candidates = Implementability.implementable_configs g in
      (* Candidate configurations are independent design points; order
         is preserved so the stable part of the sort below is
         deterministic. *)
      let points =
        List.filter_map Fun.id
          (Wr_util.Pool.parallel_list_map candidates ~f:(evaluate ~suite_id loops))
      in
      let sorted = List.sort (fun a b -> compare b.speedup a.speedup) points in
      let rec take k = function
        | [] -> []
        | p :: rest -> if k = 0 then [] else p :: take (k - 1) rest
      in
      (g, take top sorted))
    Sia.generations

(* Per-family cut of Figure 9; same suite-id convention as
   Spill_study.run_families (the synthetic family shares the main run's
   cache, other families evaluate under a derived id). *)
let figure9_families ?(suite_id = "suite") ?top families =
  List.map
    (fun (name, loops) ->
      let sid = if name = "synthetic" then suite_id else suite_id ^ ":" ^ name in
      (name, figure9 ~suite_id:sid ?top loops))
    families

let figure9_text results =
  String.concat "\n"
    (List.map
       (fun ((g : Sia.generation), points) ->
         Table.render
           ~title:(Printf.sprintf "Figure 9: top configurations at %s" (Sia.label g))
           ~headers:[ "config"; "Tc"; "latency model"; "speed-up"; "% die area" ]
           (List.map
              (fun p ->
                [
                  Config.label p.config;
                  Printf.sprintf "%.2f" p.tc;
                  Cycle_model.to_string p.cycle_model;
                  Printf.sprintf "%.2f" p.speedup;
                  Printf.sprintf "%.1f" (100.0 *. p.area /. g.Sia.lambda2_per_chip);
                ])
              points))
       results)

let conclusion ?(suite_id = "suite") loops =
  ignore (baseline_wallclock ~suite_id loops);
  let best_partition x y =
    let candidates =
      List.filter_map Fun.id
        (Wr_util.Pool.parallel_list_map [ 1; 2; 4; 8 ] ~f:(fun n ->
             if n > x || x mod n <> 0 then None
             else evaluate ~suite_id loops (Config.xwy ~registers:128 ~partitions:n ~x ~y ())))
    in
    match List.sort (fun a b -> compare b.speedup a.speedup) candidates with
    | best :: _ -> Some best
    | [] -> None
  in
  match (best_partition 4 2, best_partition 8 1) with
  | Some p42, Some p81 ->
      Printf.sprintf
        "Conclusion check: %s speed-up %.2f, area %.0fe6 | %s speed-up %.2f, area %.0fe6\n\
         -> 4w2 achieves %.2fx the performance of 8w1 in %.0f%% of the area (paper: 1.66x in \
         81%%).\n"
        (Config.label p42.config) p42.speedup (p42.area /. 1e6) (Config.label p81.config)
        p81.speedup (p81.area /. 1e6)
        (p42.speedup /. p81.speedup)
        (100.0 *. p42.area /. p81.area)
  | _ -> "Conclusion check: one of the configurations could not be scheduled.\n"
