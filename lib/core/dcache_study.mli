(** Extension study: the data-cache cost of spill code.

    Figure 3 charges spill code its extra bus slots; this study charges
    its cache pollution too.  For each configuration, the suite's loops
    are scheduled at a tight register file (32) and at an ample one
    (256), the resulting memory traces (including the iteration-indexed
    spill arrays, in real issue order) are replayed through a
    direct-mapped L1 data cache, and the miss rates are compared.

    Spill slots are a streaming, write-then-read-once pattern that
    competes for cache sets with the program's own streams — the miss
    rate increase over the no-spill baseline is spill's hidden memory
    cost, on top of the bus slots the paper counts. *)

type row = {
  config : Wr_machine.Config.t;
  miss_rate_ample : float;  (** 256 registers: essentially no spill *)
  miss_rate_tight : float;  (** 32 registers: spill code included *)
  extra_accesses : float;  (** tight/ample transaction ratio - 1 *)
}

type t = row list

val run :
  ?cache_kb:int -> ?iterations_cap:int -> Wr_ir.Loop.t array -> t
(** Defaults: 16KB cache, traces capped at 128 iterations per loop. *)

val to_text : t -> string
