module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Resource = Wr_machine.Resource
module Loop = Wr_ir.Loop
module Ddg = Wr_ir.Ddg
module Exact = Wr_sched.Exact
module Modulo = Wr_sched.Modulo
module Schedule = Wr_sched.Schedule
module Pool = Wr_util.Pool
module Obs = Wr_obs.Obs

type row = {
  family : string;
  loop_name : string;
  index : int;
  config : Config.t;
  ops : int;
  mii : int;
  heur_ii : int;
  exact_ii : int;
  gap : int;
  status : Exact.status;
  nodes : int;
  evictions : int;
}

type t = {
  rows : row list;
  points : int;
  proved_optimal : int;
  improved : int;
  fallback : int;
  gap_total : int;
  max_gap : int;
  nodes_total : int;
}

(* The replication/widening mixes where the heuristic has real work to
   do: the 1w1 and the very wide machines schedule almost everything at
   the MII, which proves nothing about heuristic quality. *)
let default_configs =
  List.map (fun (x, y) -> Config.xwy ~x ~y ()) [ (2, 1); (1, 2); (4, 1); (2, 2); (1, 4) ]

let status_string = function
  | Exact.Proved_optimal -> "proved_optimal"
  | Exact.Feasible_unproved -> "improved_unproved"
  | Exact.Fallback -> "timeout"

let point ~cycle_model ~max_nodes ?budget_ms (family, index, loop, config) =
  let wall = Provenance.capture_enabled () && Provenance.wall_enabled () in
  let t0 = if wall then Obs.now_ns () else 0 in
  let row =
    (if not (Obs.enabled ()) then fun f -> f ()
     else
       Obs.span "gap/point"
         ~args:[ ("family", family); ("loop", loop.Loop.name); ("config", Config.label config) ])
    @@ fun () ->
    let wide, _ = Wr_widen.Transform.widen loop ~width:config.Config.width in
    let ddg = wide.Loop.ddg in
    let resource = Resource.of_config config in
    let r = Exact.solve resource ~cycle_model ~max_nodes ?budget_ms ddg in
    let heur_ii = r.Exact.base.Modulo.schedule.Schedule.ii in
    if Obs.enabled () then begin
      Obs.incr "gap/points";
      Obs.incr
        (match r.Exact.status with
        | Exact.Proved_optimal -> "gap/proved"
        | Exact.Feasible_unproved -> "gap/improved_unproved"
        | Exact.Fallback -> "gap/timeout");
      Obs.observe_clamped "gap/nodes_per_point" ~top:1024 r.Exact.nodes
    end;
    {
      family;
      loop_name = loop.Loop.name;
      index;
      config;
      ops = Ddg.num_ops ddg;
      mii = r.Exact.mii;
      heur_ii;
      exact_ii = r.Exact.ii;
      gap = heur_ii - r.Exact.ii;
      status = r.Exact.status;
      nodes = r.Exact.nodes;
      evictions = r.Exact.base.Modulo.evictions;
    }
  in
  (* Gap points flow into the same provenance ledger as study points,
     under a "gap:<family>" suite: [ii] carries the heuristic's II (an
     II increase diffs as a heuristic regression), [cycles] carries the
     exact reference II, and the exact tally carries the proof
     status. *)
  if Provenance.capture_enabled () then
    Provenance.record
      {
        Provenance.hash =
          Provenance.point_hash ~suite_id:("gap:" ^ family) ~index ~config ~registers:0
            ~cycle_model loop;
        suite = "gap:" ^ family;
        index;
        loop = loop.Loop.name;
        config = Config.label config;
        registers = 0;
        cycle_model = Cycle_model.cycles cycle_model;
        ii = row.heur_ii;
        mii = row.mii;
        cycles = float_of_int row.exact_ii;
        pipelined = true;
        spill_rounds = 0;
        spill_stores = 0;
        spill_loads = 0;
        backend = "exact";
        sched_runs = 1;
        evictions = row.evictions;
        exact =
          {
            Provenance.solves = 1;
            proved = (match row.status with Exact.Proved_optimal -> 1 | _ -> 0);
            unproved = (match row.status with Exact.Feasible_unproved -> 1 | _ -> 0);
            fallback = (match row.status with Exact.Fallback -> 1 | _ -> 0);
            nodes = row.nodes;
            iis_refuted = (if row.status = Exact.Proved_optimal then row.heur_ii - row.exact_ii else 0);
          };
        oracle = "unverified";
        quarantined = false;
        tag = "";
        wall_us = (if wall then Some ((Obs.now_ns () - t0) / 1000) else None);
      };
  row

let run ?(configs = default_configs) ?(cycle_model = Cycle_model.Cycles_4)
    ?(max_nodes = 200_000) ?budget_ms families =
  Obs.span "gap/run" @@ fun () ->
  let points =
    List.concat_map
      (fun (family, loops) ->
        List.concat
          (Array.to_list
             (Array.mapi
                (fun i loop -> List.map (fun c -> (family, i, loop, c)) configs)
                loops)))
      families
  in
  (* One point per pool task; order-preserving map keeps the row order
     (families, then suite order, then config order) deterministic for
     the CSV no matter the pool size — and with no wall budget by
     default, the node budget alone cuts the search, so every cell
     (status and node count included) is bit-identical for any
     [--jobs]. *)
  let rows = Pool.parallel_list_map points ~f:(point ~cycle_model ~max_nodes ?budget_ms) in
  let count p = List.length (List.filter p rows) in
  {
    rows;
    points = List.length rows;
    proved_optimal = count (fun r -> r.status = Exact.Proved_optimal);
    improved = count (fun r -> r.gap > 0);
    fallback = count (fun r -> r.status = Exact.Fallback);
    gap_total = List.fold_left (fun acc r -> acc + r.gap) 0 rows;
    max_gap = List.fold_left (fun acc r -> Stdlib.max acc r.gap) 0 rows;
    nodes_total = List.fold_left (fun acc r -> acc + r.nodes) 0 rows;
  }

let to_text t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "HRMS-vs-optimal II gap (exact branch-and-bound backend as the reference)\n\n";
  Buffer.add_string buf
    (Printf.sprintf "%-10s %-12s %7s %8s %9s %8s %8s %8s\n" "family" "config" "points"
       "proved" "improved" "timeout" "gap_sum" "gap_max");
  let keys =
    List.sort_uniq compare (List.map (fun r -> (r.family, Config.label r.config)) t.rows)
  in
  List.iter
    (fun (family, label) ->
      let rs =
        List.filter (fun r -> r.family = family && Config.label r.config = label) t.rows
      in
      let count p = List.length (List.filter p rs) in
      Buffer.add_string buf
        (Printf.sprintf "%-10s %-12s %7d %8d %9d %8d %8d %8d\n" family label
           (List.length rs)
           (count (fun r -> r.status = Exact.Proved_optimal))
           (count (fun r -> r.gap > 0))
           (count (fun r -> r.status = Exact.Fallback))
           (List.fold_left (fun acc r -> acc + r.gap) 0 rs)
           (List.fold_left (fun acc r -> Stdlib.max acc r.gap) 0 rs)))
    keys;
  Buffer.add_string buf
    (Printf.sprintf
       "\ntotal: %d points — %d proved optimal (%.1f%%), %d improved by the exact backend, \
        %d timed out, %d search nodes\n"
       t.points t.proved_optimal
       (100.0 *. float_of_int t.proved_optimal /. float_of_int (Stdlib.max 1 t.points))
       t.improved t.fallback t.nodes_total);
  Buffer.contents buf
