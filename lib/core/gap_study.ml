module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Resource = Wr_machine.Resource
module Loop = Wr_ir.Loop
module Ddg = Wr_ir.Ddg
module Exact = Wr_sched.Exact
module Modulo = Wr_sched.Modulo
module Schedule = Wr_sched.Schedule
module Pool = Wr_util.Pool
module Obs = Wr_obs.Obs

type row = {
  family : string;
  loop_name : string;
  index : int;
  config : Config.t;
  ops : int;
  mii : int;
  heur_ii : int;
  exact_ii : int;
  gap : int;
  status : Exact.status;
  nodes : int;
}

type t = {
  rows : row list;
  points : int;
  proved_optimal : int;
  improved : int;
  fallback : int;
  gap_total : int;
  max_gap : int;
  nodes_total : int;
}

(* The replication/widening mixes where the heuristic has real work to
   do: the 1w1 and the very wide machines schedule almost everything at
   the MII, which proves nothing about heuristic quality. *)
let default_configs =
  List.map (fun (x, y) -> Config.xwy ~x ~y ()) [ (2, 1); (1, 2); (4, 1); (2, 2); (1, 4) ]

let status_string = function
  | Exact.Proved_optimal -> "proved_optimal"
  | Exact.Feasible_unproved -> "improved_unproved"
  | Exact.Fallback -> "timeout"

let point ~cycle_model ~max_nodes ?budget_ms (family, index, loop, config) =
  let wide, _ = Wr_widen.Transform.widen loop ~width:config.Config.width in
  let ddg = wide.Loop.ddg in
  let resource = Resource.of_config config in
  let r = Exact.solve resource ~cycle_model ~max_nodes ?budget_ms ddg in
  let heur_ii = r.Exact.base.Modulo.schedule.Schedule.ii in
  {
    family;
    loop_name = loop.Loop.name;
    index;
    config;
    ops = Ddg.num_ops ddg;
    mii = r.Exact.mii;
    heur_ii;
    exact_ii = r.Exact.ii;
    gap = heur_ii - r.Exact.ii;
    status = r.Exact.status;
    nodes = r.Exact.nodes;
  }

let run ?(configs = default_configs) ?(cycle_model = Cycle_model.Cycles_4)
    ?(max_nodes = 200_000) ?budget_ms families =
  Obs.span "gap/run" @@ fun () ->
  let points =
    List.concat_map
      (fun (family, loops) ->
        List.concat
          (Array.to_list
             (Array.mapi
                (fun i loop -> List.map (fun c -> (family, i, loop, c)) configs)
                loops)))
      families
  in
  (* One point per pool task; order-preserving map keeps the row order
     (families, then suite order, then config order) deterministic for
     the CSV no matter the pool size — and with no wall budget by
     default, the node budget alone cuts the search, so every cell
     (status and node count included) is bit-identical for any
     [--jobs]. *)
  let rows = Pool.parallel_list_map points ~f:(point ~cycle_model ~max_nodes ?budget_ms) in
  let count p = List.length (List.filter p rows) in
  {
    rows;
    points = List.length rows;
    proved_optimal = count (fun r -> r.status = Exact.Proved_optimal);
    improved = count (fun r -> r.gap > 0);
    fallback = count (fun r -> r.status = Exact.Fallback);
    gap_total = List.fold_left (fun acc r -> acc + r.gap) 0 rows;
    max_gap = List.fold_left (fun acc r -> Stdlib.max acc r.gap) 0 rows;
    nodes_total = List.fold_left (fun acc r -> acc + r.nodes) 0 rows;
  }

let to_text t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "HRMS-vs-optimal II gap (exact branch-and-bound backend as the reference)\n\n";
  Buffer.add_string buf
    (Printf.sprintf "%-10s %-12s %7s %8s %9s %8s %8s %8s\n" "family" "config" "points"
       "proved" "improved" "timeout" "gap_sum" "gap_max");
  let keys =
    List.sort_uniq compare (List.map (fun r -> (r.family, Config.label r.config)) t.rows)
  in
  List.iter
    (fun (family, label) ->
      let rs =
        List.filter (fun r -> r.family = family && Config.label r.config = label) t.rows
      in
      let count p = List.length (List.filter p rs) in
      Buffer.add_string buf
        (Printf.sprintf "%-10s %-12s %7d %8d %9d %8d %8d %8d\n" family label
           (List.length rs)
           (count (fun r -> r.status = Exact.Proved_optimal))
           (count (fun r -> r.gap > 0))
           (count (fun r -> r.status = Exact.Fallback))
           (List.fold_left (fun acc r -> acc + r.gap) 0 rs)
           (List.fold_left (fun acc r -> Stdlib.max acc r.gap) 0 rs)))
    keys;
  Buffer.add_string buf
    (Printf.sprintf
       "\ntotal: %d points — %d proved optimal (%.1f%%), %d improved by the exact backend, \
        %d timed out, %d search nodes\n"
       t.points t.proved_optimal
       (100.0 *. float_of_int t.proved_optimal /. float_of_int (Stdlib.max 1 t.points))
       t.improved t.fallback t.nodes_total);
  Buffer.contents buf
