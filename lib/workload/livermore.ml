module B = Wr_ir.Builder

(* Kernel 1 — hydro fragment:
     x(k) = q + y(k)*(r*z(k+10) + t*z(k+11)) *)
let k1_hydro () =
  let b = B.create ~name:"lfk1_hydro" () in
  let q = B.live_in b and r = B.live_in b and t = B.live_in b in
  let y = B.load b ~array_id:0 () in
  let z10 = B.load b ~array_id:1 ~offset:10 () in
  let z11 = B.load b ~array_id:1 ~offset:11 () in
  let inner = B.fadd b (B.fmul b r z10) (B.fmul b t z11) in
  B.store b ~array_id:2 () (B.fadd b q (B.fmul b y inner));
  B.finish b ~trip_count:1001 ()

(* Kernel 2 — ICCG (incomplete Cholesky, conjugate gradient), the
   innermost elimination step over the active band.  The original
   halves the index range per outer sweep; one sweep's body is
     x(i) = x(i) - v(i)*x(i+1)
   over stride-2 positions. *)
let k2_iccg () =
  let b = B.create ~name:"lfk2_iccg" () in
  let xi = B.load b ~array_id:0 ~stride:2 () in
  let xip = B.load b ~array_id:0 ~stride:2 ~offset:1 () in
  let v = B.load b ~array_id:1 ~stride:2 () in
  B.store b ~array_id:2 ~stride:2 () (B.fsub b xi (B.fmul b v xip));
  B.finish b ~trip_count:500 ()

(* Kernel 3 — inner product: q = q + z(k)*x(k) *)
let k3_inner_product () =
  let b = B.create ~name:"lfk3_inner_product" () in
  let z = B.load b ~array_id:0 () in
  let x = B.load b ~array_id:1 () in
  let p = B.fmul b z x in
  let _q = B.feedback b ~distance:1 ~f:(fun prev -> B.fadd b prev p) in
  B.finish b ~trip_count:1001 ()

(* Kernel 4 — banded linear equations, the repeated inner update
     xz(k) = y(k) * (xz(k) - temp)   with temp a short dot product;
   the dot product is unrolled to its three band terms. *)
let k4_banded () =
  let b = B.create ~name:"lfk4_banded" () in
  let y = B.load b ~array_id:0 () in
  let xz = B.load b ~array_id:1 () in
  let b0 = B.load b ~array_id:2 ~stride:5 () in
  let b1 = B.load b ~array_id:2 ~stride:5 ~offset:1 () in
  let b2 = B.load b ~array_id:2 ~stride:5 ~offset:2 () in
  let t0 = B.fadd b (B.fadd b b0 b1) b2 in
  B.store b ~array_id:1 () (B.fmul b y (B.fsub b xz t0));
  B.finish b ~trip_count:201 ()

(* Kernel 5 — tridiagonal elimination, below diagonal:
     x(i) = z(i)*(y(i) - x(i-1)) *)
let k5_tridiag () =
  let b = B.create ~name:"lfk5_tridiag" () in
  let y = B.load b ~array_id:0 () in
  let z = B.load b ~array_id:1 () in
  let x = B.feedback b ~distance:1 ~f:(fun prev -> B.fmul b z (B.fsub b y prev)) in
  B.store b ~array_id:2 () x;
  B.finish b ~trip_count:1001 ()

(* Kernel 7 — equation of state fragment. *)
let k7_state () =
  let b = B.create ~name:"lfk7_state" () in
  let r = B.live_in b and t = B.live_in b in
  let u = B.load b ~array_id:0 () in
  let z5 = B.load b ~array_id:1 ~offset:5 () in
  let z6 = B.load b ~array_id:1 ~offset:6 () in
  let y4 = B.load b ~array_id:2 ~offset:4 () in
  let y5 = B.load b ~array_id:2 ~offset:5 () in
  let u3 = B.load b ~array_id:0 ~offset:3 () in
  let u2 = B.load b ~array_id:0 ~offset:2 () in
  (* x(k) = u(k) + r*(z(k+5) + r*z(k+6))
                 + t*(u(k+3) + r*(u(k+2) + r*u(k+1))
                 + t*(y(k+4) + r*y(k+5))) — abbreviated to the same
     operation mix and depth. *)
  let inner1 = B.fadd b z5 (B.fmul b r z6) in
  let inner2 = B.fadd b u2 (B.fmul b r u3) in
  let inner3 = B.fadd b y4 (B.fmul b r y5) in
  let mid = B.fadd b inner2 (B.fmul b t inner3) in
  let x = B.fadd b u (B.fadd b (B.fmul b r inner1) (B.fmul b t mid)) in
  B.store b ~array_id:3 () x;
  B.finish b ~trip_count:995 ()

(* Kernel 8 — ADI integration: the innermost sweep updates two
   solution arrays from six input streams. *)
let k8_adi () =
  let b = B.create ~name:"lfk8_adi" () in
  let a11 = B.live_in b and a12 = B.live_in b and a13 = B.live_in b in
  let du1 = B.load b ~array_id:0 () in
  let du2 = B.load b ~array_id:1 () in
  let du3 = B.load b ~array_id:2 () in
  let u1 = B.load b ~array_id:3 () in
  let u2 = B.load b ~array_id:4 () in
  let u3 = B.load b ~array_id:5 () in
  let t1 = B.fadd b (B.fmul b a11 du1) (B.fmul b a12 du2) in
  let t2 = B.fadd b t1 (B.fmul b a13 du3) in
  B.store b ~array_id:6 () (B.fadd b u1 t2);
  let s1 = B.fadd b (B.fmul b a12 du1) (B.fmul b a13 du2) in
  let s2 = B.fadd b s1 (B.fmul b a11 du3) in
  B.store b ~array_id:7 () (B.fadd b (B.fmul b u2 u3) s2);
  B.finish b ~trip_count:100 ()

(* Kernel 9 — numerical integration: ten-coefficient predictor. *)
let k9_integrate () =
  let b = B.create ~name:"lfk9_integrate" () in
  let dm = Array.init 5 (fun _ -> B.live_in b) in
  let px1 = B.load b ~array_id:0 () in
  let terms =
    Array.to_list
      (Array.mapi (fun i c -> B.fmul b c (B.load b ~array_id:(i + 1) ())) dm)
  in
  let sum = List.fold_left (fun acc t -> B.fadd b acc t) px1 terms in
  B.store b ~array_id:0 () sum;
  B.finish b ~trip_count:101 ()

(* Kernel 10 — numerical differentiation: cascading differences.  Each
   stage's output feeds the next and is stored. *)
let k10_differentiate () =
  let b = B.create ~name:"lfk10_differentiate" () in
  let ar = B.load b ~array_id:0 () in
  let bzero = B.load b ~array_id:1 () in
  let d1 = B.fsub b ar bzero in
  B.store b ~array_id:2 () d1;
  let c1 = B.load b ~array_id:3 () in
  let d2 = B.fsub b d1 c1 in
  B.store b ~array_id:4 () d2;
  let c2 = B.load b ~array_id:5 () in
  let d3 = B.fsub b d2 c2 in
  B.store b ~array_id:6 () d3;
  B.finish b ~trip_count:101 ()

(* Kernel 11 — first sum: x(k) = x(k-1) + y(k). *)
let k11_first_sum () =
  let b = B.create ~name:"lfk11_first_sum" () in
  let y = B.load b ~array_id:0 () in
  let x = B.feedback b ~distance:1 ~f:(fun prev -> B.fadd b prev y) in
  B.store b ~array_id:1 () x;
  B.finish b ~trip_count:1001 ()

(* Kernel 12 — first difference: x(k) = y(k+1) - y(k). *)
let k12_first_diff () =
  let b = B.create ~name:"lfk12_first_diff" () in
  let hi = B.load b ~array_id:0 ~offset:1 () in
  let lo = B.load b ~array_id:0 () in
  B.store b ~array_id:1 () (B.fsub b hi lo);
  B.finish b ~trip_count:1000 ()

(* Kernel 18 — 2-D explicit hydrodynamics, one row of the first sweep:
   neighbouring rows are separate streams at fixed j. *)
let k18_explicit_hydro () =
  let b = B.create ~name:"lfk18_explicit_hydro" () in
  let s = B.live_in b and t = B.live_in b in
  let za_j = B.load b ~array_id:0 () in
  let za_jm = B.load b ~array_id:1 () in
  let zp_j = B.load b ~array_id:2 () in
  let zp_jm = B.load b ~array_id:3 () in
  let zq_j = B.load b ~array_id:4 () in
  let zq_jm = B.load b ~array_id:5 () in
  let zr_j = B.load b ~array_id:6 () in
  let zm_k = B.load b ~array_id:7 () in
  let zm_km = B.load b ~array_id:7 ~offset:(-1) () in
  let d1 = B.fsub b zp_j zp_jm in
  let d2 = B.fsub b zq_j zq_jm in
  let num = B.fadd b (B.fmul b za_j d1) (B.fmul b za_jm d2) in
  let den = B.fadd b zm_k zm_km in
  let zu = B.fadd b zr_j (B.fmul b s (B.fdiv b num den)) in
  B.store b ~array_id:8 () zu;
  let zv = B.fsub b zr_j (B.fmul b t (B.fmul b za_j d2)) in
  B.store b ~array_id:9 () zv;
  B.finish b ~trip_count:100 ()

(* Kernel 19 — general linear recurrence: stb5 = sa(k)*stb5 + sb(k). *)
let k19_linear_recurrence () =
  let b = B.create ~name:"lfk19_linear_recurrence" () in
  let sa = B.load b ~array_id:0 () in
  let sb = B.load b ~array_id:1 () in
  let stb5 = B.feedback b ~distance:1 ~f:(fun prev -> B.fadd b (B.fmul b sa prev) sb) in
  B.store b ~array_id:2 () stb5;
  B.finish b ~trip_count:101 ()

(* Kernel 20 — discrete ordinates transport: a quotient feeds a carried
   product chain (abbreviated to the critical dependence shape:
   division and two multiplies on the cycle). *)
let k20_transport () =
  let b = B.create ~name:"lfk20_transport" () in
  let g = B.live_in b in
  let u = B.load b ~array_id:0 () in
  let v = B.load b ~array_id:1 () in
  let w = B.load b ~array_id:2 () in
  let xx =
    B.feedback b ~distance:1 ~f:(fun prev ->
        let di = B.fadd b u (B.fmul b v prev) in
        let dn = B.fdiv b w di in
        B.fmul b (B.fadd b prev g) dn)
  in
  B.store b ~array_id:3 () xx;
  B.finish b ~trip_count:1001 ()

(* Kernel 21 — matrix product inner loop with the accumulator in
   memory: px(i) = px(i) + vy(k)*cx(i), i inner. *)
let k21_matmul () =
  let b = B.create ~name:"lfk21_matmul" () in
  let vy = B.live_in b in
  let px = B.load b ~array_id:0 () in
  let cx = B.load b ~array_id:1 () in
  B.store b ~array_id:0 () (B.fadd b px (B.fmul b vy cx));
  B.finish b ~trip_count:25 ()

(* Kernel 23 — 2-D implicit hydrodynamics, one row:
     qa = za(j+1,k)*zr + za(j-1,k)*zb + za(j,k+1)*zu + za(j,k-1)*zv + zz
     za(j,k) += 0.175*(qa - za(j,k))
   with the k+-1 neighbours as shifted streams. *)
let k23_implicit_hydro () =
  let b = B.create ~name:"lfk23_implicit_hydro" () in
  let zr = B.live_in b and zb = B.live_in b and zu = B.live_in b in
  let zv = B.live_in b and f = B.live_in b in
  let za_jp = B.load b ~array_id:0 () in
  let za_jm = B.load b ~array_id:1 () in
  let za_kp = B.load b ~array_id:2 ~offset:1 () in
  let za_km = B.load b ~array_id:2 ~offset:(-1) () in
  let za = B.load b ~array_id:2 () in
  let zz = B.load b ~array_id:3 () in
  let qa =
    B.fadd b
      (B.fadd b (B.fmul b za_jp zr) (B.fmul b za_jm zb))
      (B.fadd b (B.fadd b (B.fmul b za_kp zu) (B.fmul b za_km zv)) zz)
  in
  B.store b ~array_id:2 () (B.fadd b za (B.fmul b f (B.fsub b qa za)));
  B.finish b ~trip_count:100 ()

let all () =
  [
    ("k1", k1_hydro ());
    ("k2", k2_iccg ());
    ("k3", k3_inner_product ());
    ("k4", k4_banded ());
    ("k5", k5_tridiag ());
    ("k7", k7_state ());
    ("k8", k8_adi ());
    ("k9", k9_integrate ());
    ("k10", k10_differentiate ());
    ("k11", k11_first_sum ());
    ("k12", k12_first_diff ());
    ("k18", k18_explicit_hydro ());
    ("k19", k19_linear_recurrence ());
    ("k20", k20_transport ());
    ("k21", k21_matmul ());
    ("k23", k23_implicit_hydro ());
  ]

let suite () = Array.of_list (List.map snd (all ()))
