module B = Wr_ir.Builder
module Rng = Wr_util.Rng

type params = {
  seed : int64;
  num_loops : int;
  statements_mean : float;
  statements_max : int;
  max_depth : int;
  depth_decay : float;
  stride1_prob : float;
  strides : (int * float) array;
  invariant_prob : float;
  reuse_prob : float;
  reduction_prob : float;
  chain_prob : float;
  recurrence_distances : (int * float) array;
  mul_prob : float;
  div_prob : float;
  sqrt_prob : float;
  fma_prob : float;
  trip_min : int;
  trip_max : int;
  weight_tail : float;
}

let default =
  {
    seed = 0x5EED_1998_0BADL;
    num_loops = 1180;
    statements_mean = 2.0;
    statements_max = 14;
    max_depth = 4;
    depth_decay = 0.66;
    stride1_prob = 0.95;
    strides = [| (2, 0.4); (4, 0.2); (0, 0.1); (8, 0.1); (-1, 0.2) |];
    invariant_prob = 0.25;
    reuse_prob = 0.30;
    reduction_prob = 0.06;
    chain_prob = 0.027;
    recurrence_distances = [| (1, 0.7); (2, 0.2); (4, 0.1) |];
    mul_prob = 0.45;
    div_prob = 0.03;
    sqrt_prob = 0.015;
    (* Default 0.0 keeps the RNG draw stream — and with it every golden
       CSV — bit-identical: the fma branch below short-circuits before
       drawing. *)
    fma_prob = 0.0;
    trip_min = 16;
    trip_max = 4096;
    weight_tail = 2.0;
  }

(* Per-loop generation state: the builder plus the pools expressions
   draw leaves from. *)
type state = {
  b : B.t;
  rng : Rng.t;
  p : params;
  mutable next_array : int;
  mutable values : B.value list;  (** previously computed values, for reuse *)
  mutable invariants : B.value list;
}

let fresh_array st =
  let a = st.next_array in
  st.next_array <- a + 1;
  a

let pick_stride st =
  if Rng.bernoulli st.rng st.p.stride1_prob then 1 else Rng.choose_weighted st.rng st.p.strides

let new_load st =
  let array_id = fresh_array st in
  let stride = pick_stride st in
  let offset = if Rng.bernoulli st.rng 0.15 then Rng.int_in st.rng (-4) 10 else 0 in
  let v = B.load st.b ~array_id ~stride ~offset () in
  st.values <- v :: st.values;
  v

let invariant st =
  (* Loops reference a handful of scalars (constants, loop-invariant
     parameters); reuse them rather than minting one per leaf. *)
  if st.invariants <> [] && Rng.bernoulli st.rng 0.5 then Rng.choose st.rng (Array.of_list st.invariants)
  else begin
    let v = B.live_in st.b in
    st.invariants <- v :: st.invariants;
    v
  end

let leaf st =
  let r = Rng.float st.rng 1.0 in
  if r < st.p.invariant_prob then invariant st
  else if r < st.p.invariant_prob +. st.p.reuse_prob && st.values <> [] then
    Rng.choose st.rng (Array.of_list st.values)
  else new_load st

let rec expr st depth =
  if depth >= st.p.max_depth || not (Rng.bernoulli st.rng st.p.depth_decay) then leaf st
  else begin
    let l = expr st (depth + 1) in
    let r = expr st (depth + 1) in
    let v =
      if st.p.fma_prob > 0.0 && Rng.bernoulli st.rng st.p.fma_prob then
        B.fma st.b l r (leaf st)
      else if Rng.bernoulli st.rng st.p.mul_prob then B.fmul st.b l r
      else if Rng.bernoulli st.rng 0.25 then B.fsub st.b l r
      else B.fadd st.b l r
    in
    st.values <- v :: st.values;
    v
  end

(* Optionally route a statement's value through an unpipelined
   operation — the tail of divides and square roots in numerical
   codes. *)
let maybe_slow st v =
  let r = Rng.float st.rng 1.0 in
  if r < st.p.div_prob then begin
    let d = B.fdiv st.b v (leaf st) in
    st.values <- d :: st.values;
    d
  end
  else if r < st.p.div_prob +. st.p.sqrt_prob then begin
    let s = B.fsqrt st.b v in
    st.values <- s :: st.values;
    s
  end
  else v

let statement st =
  let r = Rng.float st.rng 1.0 in
  if r < st.p.reduction_prob then begin
    (* s += expr: the loop's result is the accumulator, no store. *)
    let contribution = expr st 1 in
    let distance = Rng.choose_weighted st.rng st.p.recurrence_distances in
    let acc = B.feedback st.b ~distance ~f:(fun prev -> B.fadd st.b prev contribution) in
    st.values <- acc :: st.values
  end
  else if r < st.p.reduction_prob +. st.p.chain_prob then begin
    (* First-order carried chain through a multiply-add. *)
    let coeff = expr st 2 in
    let distance = Rng.choose_weighted st.rng st.p.recurrence_distances in
    let x =
      B.feedback st.b ~distance ~f:(fun prev ->
          let t = B.fmul st.b coeff prev in
          B.fadd st.b t (leaf st))
    in
    st.values <- x :: st.values;
    B.store st.b ~array_id:(fresh_array st) () x
  end
  else begin
    let v = maybe_slow st (expr st 0) in
    B.store st.b ~array_id:(fresh_array st) ~stride:(pick_stride st) () v
  end

let generate_one rng p ~index =
  let name = Printf.sprintf "synth_%04d" index in
  let st =
    { b = B.create ~name (); rng; p; next_array = 0; values = []; invariants = [] }
  in
  let n_statements =
    Stdlib.min p.statements_max (1 + Rng.geometric rng ~p:(1.0 /. (1.0 +. p.statements_mean)))
  in
  for _ = 1 to n_statements do
    statement st
  done;
  let trip =
    (* Log-uniform trip counts: short trip loops are common, very long
       ones exist. *)
    let lo = log (float_of_int p.trip_min) and hi = log (float_of_int p.trip_max) in
    int_of_float (exp (lo +. Rng.float rng (hi -. lo)))
  in
  (* Pareto execution weight: a few loops dominate runtime.  Capped so
     no single loop outweighs dozens of others — the paper's 1180 loops
     jointly cover 78% of the Perfect Club, none individually
     dominant. *)
  let u = Stdlib.max 1e-9 (Rng.float rng 1.0) in
  let weight = Stdlib.min 25.0 ((1.0 /. u) ** (1.0 /. p.weight_tail)) in
  B.finish st.b ~trip_count:(Stdlib.max p.trip_min trip) ~weight ()

let generate p =
  let root = Rng.create ~seed:p.seed in
  Array.init p.num_loops (fun index ->
      let rng = Rng.split root in
      generate_one rng p ~index)
