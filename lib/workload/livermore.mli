(** The Livermore FORTRAN Kernels (McMahon, 1986) — the classic
    floating-point loop suite of the paper's era — as loop dependence
    graphs.

    Sixteen of the twenty-four kernels have innermost loops expressible
    in this IR (affine accesses, no data-dependent control flow); for
    the multi-dimensional kernels the innermost loop is taken with the
    outer indices fixed, as a software pipeliner would see it.  The
    remaining eight need gather/scatter (13, 14), data-dependent
    control flow (15, 16, 17, 24), a non-affine carried index (6) or a
    transcendental (22), and are omitted — the omission is the honest
    boundary of the machine model, the same one the paper's own
    workbench of {e software-pipelinable} loops draws.

    Each kernel uses its traditional loop length; weights are uniform. *)

val k1_hydro : unit -> Wr_ir.Loop.t
(** [x(k) = q + y(k)*(r*z(k+10) + t*z(k+11))]. *)

val k2_iccg : unit -> Wr_ir.Loop.t
(** Inner ICCG step: [x(i) = x(i) - v(i)*x(i+1)] over the active band
    (stride-2 gather flavour kept as stride 2). *)

val k3_inner_product : unit -> Wr_ir.Loop.t
(** [q = q + z(k)*x(k)]. *)

val k4_banded : unit -> Wr_ir.Loop.t
(** Banded linear equations inner update. *)

val k5_tridiag : unit -> Wr_ir.Loop.t
(** [x(i) = z(i)*(y(i) - x(i-1))]. *)

val k7_state : unit -> Wr_ir.Loop.t
(** Equation of state fragment (the big multiply-add tree). *)

val k8_adi : unit -> Wr_ir.Loop.t
(** ADI integration innermost sweep (two output streams). *)

val k9_integrate : unit -> Wr_ir.Loop.t
(** Numerical integration: ten-coefficient predictor update. *)

val k10_differentiate : unit -> Wr_ir.Loop.t
(** Numerical differentiation: cascading difference chain. *)

val k11_first_sum : unit -> Wr_ir.Loop.t
(** [x(k) = x(k-1) + y(k)]. *)

val k12_first_diff : unit -> Wr_ir.Loop.t
(** [x(k) = y(k+1) - y(k)]. *)

val k18_explicit_hydro : unit -> Wr_ir.Loop.t
(** 2-D explicit hydrodynamics innermost row (fixed [j]). *)

val k19_linear_recurrence : unit -> Wr_ir.Loop.t
(** [stb5 = sa(k)*stb5 + sb(k)] — general first-order recurrence. *)

val k20_transport : unit -> Wr_ir.Loop.t
(** Discrete ordinates transport: a division feeding a carried
    product. *)

val k21_matmul : unit -> Wr_ir.Loop.t
(** Matrix product inner loop: [px(i) = px(i) + vy(k)*cx(i)] with the
    accumulator in memory (read-modify-write). *)

val k23_implicit_hydro : unit -> Wr_ir.Loop.t
(** 2-D implicit hydrodynamics innermost row. *)

val all : unit -> (string * Wr_ir.Loop.t) list
(** The sixteen kernels, labelled ["k1" .. "k23"]. *)

val suite : unit -> Wr_ir.Loop.t array
(** The kernels as an evaluation suite. *)
