module B = Wr_ir.Builder

(* Real stencil and recurrence kernels, written with fused multiply-add
   where a real compiler would contract — the counterpart of the
   synthetic suite for "synthetic vs real" study cuts.  Array-id
   conventions are local to each kernel.  Live-ins stand for the
   physical constants (diffusion rates, feed/kill rates, filter taps);
   the interpreter values them by position, so what matters here is the
   dependence and compactability structure, which is stated per
   kernel. *)

(* Gray-Scott reaction-diffusion, U field, one 1-D time-step row:
     u'(i) = u(i) + Du*(u(i-1) - 2u(i) + u(i+1)) - u(i)*v(i)^2 + F*(1 - u(i))
   Out-of-place (u' in its own array), so the loop carries no
   dependence: every operation is compactable, the three shifted loads
   of [u] overlap pairwise.  Three of the five multiplies contract into
   fmas. *)
let gray_scott_u () =
  let b = B.create ~name:"gray_scott_u" () in
  let du = B.live_in b and feed = B.live_in b in
  let neg_two = B.live_in b and one = B.live_in b in
  let um = B.load b ~array_id:0 ~offset:(-1) () in
  let u0 = B.load b ~array_id:0 () in
  let up = B.load b ~array_id:0 ~offset:1 () in
  let v0 = B.load b ~array_id:1 () in
  let lap = B.fma b neg_two u0 (B.fadd b um up) in
  let diffused = B.fma b du lap u0 in
  let uvv = B.fmul b (B.fmul b v0 v0) u0 in
  let fed = B.fma b feed (B.fsub b one u0) (B.fsub b diffused uvv) in
  B.store b ~array_id:2 () fed;
  B.finish b ~trip_count:1024 ()

(* Gray-Scott V field:
     v'(i) = v(i) + Dv*(v(i-1) - 2v(i) + v(i+1)) + u(i)*v(i)^2 - (F+k)*v(i) *)
let gray_scott_v () =
  let b = B.create ~name:"gray_scott_v" () in
  let dv = B.live_in b and fk = B.live_in b and neg_two = B.live_in b in
  let vm = B.load b ~array_id:1 ~offset:(-1) () in
  let v0 = B.load b ~array_id:1 () in
  let vp = B.load b ~array_id:1 ~offset:1 () in
  let u0 = B.load b ~array_id:0 () in
  let lap = B.fma b neg_two v0 (B.fadd b vm vp) in
  let diffused = B.fma b dv lap v0 in
  let uvv = B.fma b (B.fmul b u0 v0) v0 diffused in
  let decayed = B.fma b (B.fneg b fk) v0 uvv in
  B.store b ~array_id:3 () decayed;
  B.finish b ~trip_count:1024 ()

(* In-place 1-D heat equation step:
     a(i) = a(i) + alpha*(a(i-1) - 2a(i) + a(i+1))
   The store to a(i) conflicts with the load of a(i+1) one iteration
   later — a distance-1 memory dependence the scheduler must honour,
   and the reason the three loads of [a] cannot all compact. *)
let heat1d () =
  let b = B.create ~name:"heat1d" () in
  let alpha = B.live_in b and neg_two = B.live_in b in
  let am = B.load b ~array_id:0 ~offset:(-1) () in
  let a0 = B.load b ~array_id:0 () in
  let ap = B.load b ~array_id:0 ~offset:1 () in
  let lap = B.fma b neg_two a0 (B.fadd b am ap) in
  B.store b ~array_id:0 () (B.fma b alpha lap a0);
  B.finish b ~trip_count:1024 ()

(* 3-tap FIR filter, an fma chain with no recurrence:
     y(i) = c0*x(i-1) + c1*x(i) + c2*x(i+1) *)
let fir3 () =
  let b = B.create ~name:"fir3" () in
  let c0 = B.live_in b and c1 = B.live_in b and c2 = B.live_in b in
  let xm = B.load b ~array_id:0 ~offset:(-1) () in
  let x0 = B.load b ~array_id:0 () in
  let xp = B.load b ~array_id:0 ~offset:1 () in
  let acc = B.fmul b c0 xm in
  let acc = B.fma b c1 x0 acc in
  let acc = B.fma b c2 xp acc in
  B.store b ~array_id:1 () acc;
  B.finish b ~trip_count:1024 ()

(* Livermore kernel 6 shape — general first-order linear recurrence,
   with the fma sitting ON the carried cycle:
     w(i) = b(i) + a(i)*w(i-1)
   The recurrence bounds the II from below and keeps the fma
   non-compactable; the loads remain compactable. *)
let linrec_fma () =
  let b = B.create ~name:"linrec_fma" () in
  let a = B.load b ~array_id:0 () in
  let rhs = B.load b ~array_id:1 () in
  let w = B.feedback b ~distance:1 ~f:(fun prev -> B.fma b a prev rhs) in
  B.store b ~array_id:2 () w;
  B.finish b ~trip_count:1000 ()

(* Livermore kernel 7 (equation of state) as a contracted fma chain:
     x(i) = u(i) + r*(z(i+5) + r*y(i+4)) + t*(u(i+3) ...) fragment,
   here the four-term multiply-add tower:
     t1 = u + r*z5;  t2 = t1 + t*z6;  t3 = t2 + r*y4;  t4 = t3 + t*y5
   Straight-line dependent fmas: deep critical path, fully
   compactable, no recurrence. *)
let state_fma () =
  let b = B.create ~name:"state_fma" () in
  let r = B.live_in b and t = B.live_in b in
  let u = B.load b ~array_id:0 () in
  let z5 = B.load b ~array_id:1 ~offset:5 () in
  let z6 = B.load b ~array_id:1 ~offset:6 () in
  let y4 = B.load b ~array_id:2 ~offset:4 () in
  let y5 = B.load b ~array_id:2 ~offset:5 () in
  let t1 = B.fma b r z5 u in
  let t2 = B.fma b t z6 t1 in
  let t3 = B.fma b r y4 t2 in
  let t4 = B.fma b t y5 t3 in
  B.store b ~array_id:3 () t4;
  B.finish b ~trip_count:1001 ()

let all () =
  [
    ("gray_scott_u", gray_scott_u ());
    ("gray_scott_v", gray_scott_v ());
    ("heat1d", heat1d ());
    ("fir3", fir3 ());
    ("linrec_fma", linrec_fma ());
    ("state_fma", state_fma ());
  ]

let suite () = Array.of_list (List.map snd (all ()))
