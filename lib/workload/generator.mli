(** Synthetic numerical-loop generator.

    The paper's workload is 1180 innermost loops extracted from the
    Perfect Club by the Ictíneo tool — loops we cannot obtain.  This
    generator produces dependence graphs with the same aggregate
    characteristics the study depends on, each behind an explicit,
    documented knob:

    {ul
    {- {b loop size}: geometric statement count, expression trees of
       bounded depth — most loops are a handful of operations, with a
       long tail of big bodies;}
    {- {b memory behaviour}: a configurable fraction of stride-1
       streams (what widening can compact) versus strided/irregular
       streams;}
    {- {b recurrences}: reductions ([s += expr]) and first-order
       carried chains ([x(i) = f(x(i-1))]) with configurable frequency
       and distance — these bound the ILP of the replication-only
       configurations (Figure 2's saturation);}
    {- {b operation mix}: add/multiply dominated, with a small tail of
       unpipelined divides and square roots;}
    {- {b execution weights}: Pareto-distributed, so a minority of
       loops dominates execution time, as in real programs.}}

    Everything is driven by {!Wr_util.Rng} with per-loop split streams:
    the suite is bit-reproducible and insensitive to how many random
    draws any single loop consumes. *)

type params = {
  seed : int64;
  num_loops : int;
  statements_mean : float;  (** mean extra statements per loop (geometric) *)
  statements_max : int;
  max_depth : int;  (** expression tree depth bound *)
  depth_decay : float;  (** probability an expression node recurses *)
  stride1_prob : float;  (** fraction of streams with stride 1 *)
  strides : (int * float) array;  (** non-unit stride choices and weights *)
  invariant_prob : float;  (** expression leaf is a loop invariant *)
  reuse_prob : float;  (** expression leaf reuses an earlier value *)
  reduction_prob : float;  (** statement is an accumulation *)
  chain_prob : float;  (** statement is a first-order carried chain *)
  recurrence_distances : (int * float) array;
  mul_prob : float;  (** interior node is a multiply (vs add/sub) *)
  div_prob : float;  (** statement root passes through a divide *)
  sqrt_prob : float;  (** statement root passes through a square root *)
  fma_prob : float;
      (** interior node is a fused multiply-add.  Default 0.0, which
          draws nothing from the RNG — the default stream (and every
          golden CSV derived from it) is unchanged. *)
  trip_min : int;
  trip_max : int;
  weight_tail : float;  (** Pareto tail exponent for execution weights *)
}

val default : params
(** Calibrated so the suite-level peak-ILP study reproduces the shape
    of the paper's Figure 2 (replication saturating near 10x, pure
    widening near 5x); see EXPERIMENTS.md for the calibration notes. *)

val generate_one : Wr_util.Rng.t -> params -> index:int -> Wr_ir.Loop.t
(** One loop from the given generator state. *)

val generate : params -> Wr_ir.Loop.t array
(** The full suite for the parameters (deterministic in [seed]). *)
