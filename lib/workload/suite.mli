(** The study workload: 1180 synthetic Perfect-Club-like loops plus the
    named kernels as anchors.

    The paper's workbench is 1180 software-pipelinable innermost loops
    covering 78% of the Perfect Club's execution time.  Our suite is
    {!Generator.generate} with the calibrated default parameters —
    deterministic, so every experiment sees exactly the same loops. *)

val perfect_club_like : unit -> Wr_ir.Loop.t array
(** The full 1180-loop suite (memoized after the first call). *)

val sample : int -> Wr_ir.Loop.t array
(** A deterministic subset of the suite (every k-th loop), for fast
    tests and benchmark timing runs. *)

val with_kernels : unit -> Wr_ir.Loop.t array
(** The suite plus the hand-written kernels. *)

val real : unit -> Wr_ir.Loop.t array
(** The real-kernel family: the hand-written kernels, the Livermore
    loops, and the {!Stencil} stencil/recurrence family (Gray-Scott,
    heat, FIR, fma recurrences) — loops with exactly known dependence
    structure, as opposed to the synthetic generator's. *)

val families : unit -> (string * Wr_ir.Loop.t array) list
(** The study cut: [[("synthetic", ...); ("real", ...)]] — drivers
    report widening results per family so compactability claims can be
    compared between generated and real loops. *)

val families_for : sample:int option -> (string * Wr_ir.Loop.t array) list
(** {!families} with the synthetic family subsampled like {!sample}
    ([None] keeps the full 1180); the real family is always complete
    (it is already small).  This is the cut the bench drivers use so a
    [-s N] run's synthetic family coincides exactly with its main
    suite — per-family rows then reuse the evaluation cache instead of
    recomputing the suite. *)

val statistics : Wr_ir.Loop.t array -> string
(** Human-readable aggregate statistics (op counts, op mix, recurrence
    and compactability fractions) — printed by the bench harness so the
    workload substitution is auditable. *)
