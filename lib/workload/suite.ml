module Loop = Wr_ir.Loop
module Ddg = Wr_ir.Ddg
module Opcode = Wr_ir.Opcode
module Operation = Wr_ir.Operation

let cache = ref None

let perfect_club_like () =
  match !cache with
  | Some loops -> loops
  | None ->
      let loops = Generator.generate Generator.default in
      cache := Some loops;
      loops

let sample k =
  let all = perfect_club_like () in
  if k <= 0 then invalid_arg "Suite.sample: size must be positive";
  let n = Array.length all in
  let step = Stdlib.max 1 (n / k) in
  Array.init (Stdlib.min k ((n + step - 1) / step)) (fun i -> all.(i * step))

let with_kernels () =
  Array.append (Array.of_list (List.map snd (Kernels.all ()))) (perfect_club_like ())

let real () =
  Array.concat
    [
      Array.of_list (List.map snd (Kernels.all ()));
      Livermore.suite ();
      Stencil.suite ();
    ]

let families () = [ ("synthetic", perfect_club_like ()); ("real", real ()) ]

let families_for ~sample:k =
  [
    ("synthetic", (match k with None -> perfect_club_like () | Some k -> sample k));
    ("real", real ());
  ]

let statistics loops =
  let total_ops = ref 0 and total_loops = Array.length loops in
  let opcode_counts = Hashtbl.create 16 in
  let recurrence_loops = ref 0 in
  let sizes = ref [] in
  Array.iter
    (fun (l : Loop.t) ->
      let g = l.Loop.ddg in
      let n = Ddg.num_ops g in
      total_ops := !total_ops + n;
      sizes := float_of_int n :: !sizes;
      if Ddg.has_recurrence g then incr recurrence_loops;
      Array.iter
        (fun (o : Operation.t) ->
          let key = Opcode.to_string o.Operation.opcode in
          Hashtbl.replace opcode_counts key
            (1 + Option.value ~default:0 (Hashtbl.find_opt opcode_counts key)))
        (Ddg.ops g))
    loops;
  let sizes = Array.of_list !sizes in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "loops: %d, ops: %d (mean %.1f, median %.0f, p95 %.0f)\n" total_loops
       !total_ops
       (Wr_util.Stats.mean sizes)
       (Wr_util.Stats.median sizes)
       (Wr_util.Stats.percentile sizes 95.0));
  Buffer.add_string buf
    (Printf.sprintf "loops with recurrences: %d (%.1f%%)\n" !recurrence_loops
       (100.0 *. float_of_int !recurrence_loops /. float_of_int (Stdlib.max 1 total_loops)));
  let entries =
    List.sort (fun (_, a) (_, b) -> compare b a)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) opcode_counts [])
  in
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-6s %6d (%.1f%%)\n" k v
           (100.0 *. float_of_int v /. float_of_int (Stdlib.max 1 !total_ops))))
    entries;
  Buffer.contents buf
