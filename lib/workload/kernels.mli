(** Hand-written numerical inner loops.

    A small library of classic kernels (BLAS level 1, STREAM,
    Livermore-style fragments) used by the examples, the tests and as
    sanity anchors for the synthetic suite: their dependence structure
    is known, so expected scheduling behaviour (recurrence-bound or
    resource-bound, compactable or not) can be asserted exactly. *)

val daxpy : unit -> Wr_ir.Loop.t
(** [y(i) = a*x(i) + y(i)] — fully compactable, resource bound. *)

val dot_product : unit -> Wr_ir.Loop.t
(** [s += x(i)*y(i)] — sum recurrence; the multiply tree is
    compactable, the accumulation is not. *)

val vector_add : unit -> Wr_ir.Loop.t
(** [c(i) = a(i) + b(i)]. *)

val vector_scale : unit -> Wr_ir.Loop.t
(** [b(i) = s * a(i)]. *)

val stream_triad : unit -> Wr_ir.Loop.t
(** [a(i) = b(i) + s*c(i)]. *)

val first_difference : unit -> Wr_ir.Loop.t
(** [b(i) = a(i+1) - a(i)] — two shifted stride-1 loads. *)

val hydro_fragment : unit -> Wr_ir.Loop.t
(** Livermore kernel 1: [x(i) = q + y(i)*(r*z(i+10) + t*z(i+11))]. *)

val tridiag_elimination : unit -> Wr_ir.Loop.t
(** Livermore kernel 5: [x(i) = z(i)*(y(i) - x(i-1))] — a first-order
    recurrence through a multiply and a subtract. *)

val linear_recurrence : unit -> Wr_ir.Loop.t
(** Partial sums: [x(i) = x(i-1) + y(i)]. *)

val state_equation : unit -> Wr_ir.Loop.t
(** Livermore kernel 7 (equation of state fragment): a wide
    multiply-add tree over five stride-1 streams. *)

val adi_fragment : unit -> Wr_ir.Loop.t
(** An ADI-style sweep with a division on the critical path. *)

val norm2 : unit -> Wr_ir.Loop.t
(** [s += x(i)*x(i)] followed (conceptually) by sqrt outside the loop;
    the loop body is the reduction. *)

val euclidean_distance : unit -> Wr_ir.Loop.t
(** [d(i) = sqrt(dx(i)^2 + dy(i)^2)] — unpipelined sqrt pressure. *)

val pointwise_divide : unit -> Wr_ir.Loop.t
(** [c(i) = a(i) / b(i)] — unpipelined divide pressure. *)

val strided_gather : unit -> Wr_ir.Loop.t
(** [y(i) = a * x(2i) + y(i)] — a stride-2 stream that widening cannot
    compact. *)

val banded_matvec : unit -> Wr_ir.Loop.t
(** Five-diagonal matrix-vector product row: five shifted loads, four
    multiply-adds. *)

val horner : unit -> Wr_ir.Loop.t
(** Degree-4 polynomial evaluation per element (deep dependent chain,
    no recurrence). *)

val complex_multiply : unit -> Wr_ir.Loop.t
(** Interleaved complex product: strided real/imaginary parts. *)

val prefix_max_ratio : unit -> Wr_ir.Loop.t
(** [m(i) = m(i-1) / y(i)] — recurrence through an unpipelined divide
    (the worst recurrence the latency models admit). *)

val dense_update : unit -> Wr_ir.Loop.t
(** Rank-1 update row: [a(i) = a(i) + x * y(i)] read-modify-write. *)

val all : unit -> (string * Wr_ir.Loop.t) list
(** Every kernel, labelled. *)
