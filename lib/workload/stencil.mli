(** Real stencil and recurrence kernels with fused multiply-adds.

    The paper reports widening only on (synthetic stand-ins for)
    Perfect-Club loops; this family adds real kernels whose dependence
    structure is known exactly, so studies can be cut "synthetic vs
    real" and compactability claims checked against loops a compiler
    actually sees.  Every kernel uses [Fma] where a contracting
    compiler would, exercising the 3-operand pipeline end to end
    (builder, interpreter, scheduler, widening census). *)

val gray_scott_u : unit -> Wr_ir.Loop.t
(** Gray-Scott reaction-diffusion U update, out of place: 3-point
    Laplacian + reaction + feed.  No carried dependence — fully
    compactable. *)

val gray_scott_v : unit -> Wr_ir.Loop.t
(** Gray-Scott V update: Laplacian + reaction + kill term. *)

val heat1d : unit -> Wr_ir.Loop.t
(** In-place 3-point heat stencil — the store conflicts with next
    iteration's load at distance 1 (a memory-carried dependence). *)

val fir3 : unit -> Wr_ir.Loop.t
(** 3-tap FIR filter: an fma chain over three shifted loads, no
    recurrence. *)

val linrec_fma : unit -> Wr_ir.Loop.t
(** First-order linear recurrence [w(i) = b(i) + a(i)*w(i-1)] with the
    fma on the carried cycle (Livermore kernel 6 shape) — the fma is
    recurrence-bound and never compacts. *)

val state_fma : unit -> Wr_ir.Loop.t
(** Livermore kernel 7 fragment as a dependent fma tower — deep
    critical path, fully compactable. *)

val all : unit -> (string * Wr_ir.Loop.t) list
(** Every kernel, labelled. *)

val suite : unit -> Wr_ir.Loop.t array
(** The kernels as a loop array (study-cut building block; see
    {!Suite.families}). *)
