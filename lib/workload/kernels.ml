module B = Wr_ir.Builder

(* Array-id conventions are local to each kernel; ids only
   disambiguate objects within one loop. *)

let daxpy () =
  let b = B.create ~name:"daxpy" () in
  let a = B.live_in b in
  let x = B.load b ~array_id:0 () in
  let y = B.load b ~array_id:1 () in
  let r = B.fadd b (B.fmul b a x) y in
  B.store b ~array_id:1 () r;
  B.finish b ~trip_count:1000 ()

let dot_product () =
  let b = B.create ~name:"dot_product" () in
  let x = B.load b ~array_id:0 () in
  let y = B.load b ~array_id:1 () in
  let p = B.fmul b x y in
  let _sum = B.feedback b ~distance:1 ~f:(fun prev -> B.fadd b prev p) in
  B.finish b ~trip_count:1000 ()

let vector_add () =
  let b = B.create ~name:"vector_add" () in
  let x = B.load b ~array_id:0 () in
  let y = B.load b ~array_id:1 () in
  B.store b ~array_id:2 () (B.fadd b x y);
  B.finish b ~trip_count:1000 ()

let vector_scale () =
  let b = B.create ~name:"vector_scale" () in
  let s = B.live_in b in
  let x = B.load b ~array_id:0 () in
  B.store b ~array_id:1 () (B.fmul b s x);
  B.finish b ~trip_count:1000 ()

let stream_triad () =
  let b = B.create ~name:"stream_triad" () in
  let s = B.live_in b in
  let x = B.load b ~array_id:1 () in
  let y = B.load b ~array_id:2 () in
  B.store b ~array_id:0 () (B.fadd b x (B.fmul b s y));
  B.finish b ~trip_count:1000 ()

let first_difference () =
  let b = B.create ~name:"first_difference" () in
  let hi = B.load b ~array_id:0 ~offset:1 () in
  let lo = B.load b ~array_id:0 () in
  B.store b ~array_id:1 () (B.fsub b hi lo);
  B.finish b ~trip_count:1000 ()

let hydro_fragment () =
  let b = B.create ~name:"hydro_fragment" () in
  let q = B.live_in b and r = B.live_in b and t = B.live_in b in
  let y = B.load b ~array_id:0 () in
  let z10 = B.load b ~array_id:1 ~offset:10 () in
  let z11 = B.load b ~array_id:1 ~offset:11 () in
  let inner = B.fadd b (B.fmul b r z10) (B.fmul b t z11) in
  B.store b ~array_id:2 () (B.fadd b q (B.fmul b y inner));
  B.finish b ~trip_count:1000 ()

let tridiag_elimination () =
  let b = B.create ~name:"tridiag_elimination" () in
  let y = B.load b ~array_id:0 () in
  let z = B.load b ~array_id:1 () in
  let x =
    B.feedback b ~distance:1 ~f:(fun x_prev -> B.fmul b z (B.fsub b y x_prev))
  in
  B.store b ~array_id:2 () x;
  B.finish b ~trip_count:1000 ()

let linear_recurrence () =
  let b = B.create ~name:"linear_recurrence" () in
  let y = B.load b ~array_id:0 () in
  let x = B.feedback b ~distance:1 ~f:(fun prev -> B.fadd b prev y) in
  B.store b ~array_id:1 () x;
  B.finish b ~trip_count:1000 ()

let state_equation () =
  let b = B.create ~name:"state_equation" () in
  let r = B.live_in b and t = B.live_in b in
  let u = B.load b ~array_id:0 () in
  let z5 = B.load b ~array_id:1 ~offset:5 () in
  let z6 = B.load b ~array_id:1 ~offset:6 () in
  let y4 = B.load b ~array_id:2 ~offset:4 () in
  let y5 = B.load b ~array_id:2 ~offset:5 () in
  let t1 = B.fmul b r z5 in
  let t2 = B.fadd b u t1 in
  let t3 = B.fmul b t z6 in
  let t4 = B.fadd b t2 t3 in
  let t5 = B.fmul b r y4 in
  let t6 = B.fadd b t4 t5 in
  let t7 = B.fmul b t y5 in
  let t8 = B.fadd b t6 t7 in
  B.store b ~array_id:3 () t8;
  B.finish b ~trip_count:1000 ()

let adi_fragment () =
  let b = B.create ~name:"adi_fragment" () in
  let a = B.load b ~array_id:0 () in
  let c = B.load b ~array_id:1 () in
  let d = B.load b ~array_id:2 () in
  let num = B.fsub b d a in
  let quot = B.fdiv b num c in
  B.store b ~array_id:3 () quot;
  B.finish b ~trip_count:1000 ()

let norm2 () =
  let b = B.create ~name:"norm2" () in
  let x = B.load b ~array_id:0 () in
  let sq = B.fmul b x x in
  let _sum = B.feedback b ~distance:1 ~f:(fun prev -> B.fadd b prev sq) in
  B.finish b ~trip_count:1000 ()

let euclidean_distance () =
  let b = B.create ~name:"euclidean_distance" () in
  let dx = B.load b ~array_id:0 () in
  let dy = B.load b ~array_id:1 () in
  let s = B.fadd b (B.fmul b dx dx) (B.fmul b dy dy) in
  B.store b ~array_id:2 () (B.fsqrt b s);
  B.finish b ~trip_count:1000 ()

let pointwise_divide () =
  let b = B.create ~name:"pointwise_divide" () in
  let x = B.load b ~array_id:0 () in
  let y = B.load b ~array_id:1 () in
  B.store b ~array_id:2 () (B.fdiv b x y);
  B.finish b ~trip_count:1000 ()

let strided_gather () =
  let b = B.create ~name:"strided_gather" () in
  let a = B.live_in b in
  let x = B.load b ~array_id:0 ~stride:2 () in
  let y = B.load b ~array_id:1 () in
  B.store b ~array_id:1 () (B.fadd b (B.fmul b a x) y);
  B.finish b ~trip_count:1000 ()

let banded_matvec () =
  let b = B.create ~name:"banded_matvec" () in
  let d0 = B.load b ~array_id:0 () in
  let d1 = B.load b ~array_id:1 () in
  let d2 = B.load b ~array_id:2 () in
  let d3 = B.load b ~array_id:3 () in
  let d4 = B.load b ~array_id:4 () in
  let xm2 = B.load b ~array_id:5 ~offset:(-2) () in
  let xm1 = B.load b ~array_id:5 ~offset:(-1) () in
  let x0 = B.load b ~array_id:5 () in
  let xp1 = B.load b ~array_id:5 ~offset:1 () in
  let xp2 = B.load b ~array_id:5 ~offset:2 () in
  let acc = B.fmul b d0 xm2 in
  let acc = B.fadd b acc (B.fmul b d1 xm1) in
  let acc = B.fadd b acc (B.fmul b d2 x0) in
  let acc = B.fadd b acc (B.fmul b d3 xp1) in
  let acc = B.fadd b acc (B.fmul b d4 xp2) in
  B.store b ~array_id:6 () acc;
  B.finish b ~trip_count:1000 ()

let horner () =
  let b = B.create ~name:"horner" () in
  let c0 = B.live_in b and c1 = B.live_in b and c2 = B.live_in b in
  let c3 = B.live_in b and c4 = B.live_in b in
  let x = B.load b ~array_id:0 () in
  let acc = B.fadd b (B.fmul b c4 x) c3 in
  let acc = B.fadd b (B.fmul b acc x) c2 in
  let acc = B.fadd b (B.fmul b acc x) c1 in
  let acc = B.fadd b (B.fmul b acc x) c0 in
  B.store b ~array_id:1 () acc;
  B.finish b ~trip_count:1000 ()

let complex_multiply () =
  let b = B.create ~name:"complex_multiply" () in
  (* Split real/imaginary arrays keep all streams stride 1. *)
  let ar = B.load b ~array_id:0 () in
  let ai = B.load b ~array_id:1 () in
  let br = B.load b ~array_id:2 () in
  let bi = B.load b ~array_id:3 () in
  let re = B.fsub b (B.fmul b ar br) (B.fmul b ai bi) in
  let im = B.fadd b (B.fmul b ar bi) (B.fmul b ai br) in
  B.store b ~array_id:4 () re;
  B.store b ~array_id:5 () im;
  B.finish b ~trip_count:1000 ()

let prefix_max_ratio () =
  let b = B.create ~name:"prefix_max_ratio" () in
  let y = B.load b ~array_id:0 () in
  let m = B.feedback b ~distance:1 ~f:(fun prev -> B.fdiv b prev y) in
  B.store b ~array_id:1 () m;
  B.finish b ~trip_count:1000 ()

let dense_update () =
  let b = B.create ~name:"dense_update" () in
  let x = B.live_in b in
  let y = B.load b ~array_id:0 () in
  let a = B.load b ~array_id:1 () in
  B.store b ~array_id:1 () (B.fadd b a (B.fmul b x y));
  B.finish b ~trip_count:1000 ()

let all () =
  [
    ("daxpy", daxpy ());
    ("dot_product", dot_product ());
    ("vector_add", vector_add ());
    ("vector_scale", vector_scale ());
    ("stream_triad", stream_triad ());
    ("first_difference", first_difference ());
    ("hydro_fragment", hydro_fragment ());
    ("tridiag_elimination", tridiag_elimination ());
    ("linear_recurrence", linear_recurrence ());
    ("state_equation", state_equation ());
    ("adi_fragment", adi_fragment ());
    ("norm2", norm2 ());
    ("euclidean_distance", euclidean_distance ());
    ("pointwise_divide", pointwise_divide ());
    ("strided_gather", strided_gather ());
    ("banded_matvec", banded_matvec ());
    ("horner", horner ());
    ("complex_multiply", complex_multiply ());
    ("prefix_max_ratio", prefix_max_ratio ());
    ("dense_update", dense_update ());
  ]
