type t = { name : string; ddg : Ddg.t; trip_count : int; weight : float }

let make ~name ~ddg ~trip_count ?(weight = 1.0) () =
  if trip_count <= 0 then invalid_arg "Loop.make: trip_count must be positive";
  if weight <= 0.0 then invalid_arg "Loop.make: weight must be positive";
  { name; ddg; trip_count; weight }

let num_ops t = Ddg.num_ops t.ddg

let pp fmt t =
  Format.fprintf fmt "@[<v>loop %s (trip=%d, weight=%.3f)@,%a@]" t.name t.trip_count t.weight
    Ddg.pp t.ddg
