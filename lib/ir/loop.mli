(** An innermost loop: a dependence graph plus execution metadata.

    [trip_count] is the iteration count used to convert an initiation
    interval into execution cycles (paper, Section 5 footnote: cycles =
    II x iterations of the original loop).  [weight] is the loop's
    share of whole-program execution, used when aggregating the suite
    (the paper's 1180 loops account for 78% of the Perfect Club's
    execution time; loops contribute proportionally). *)

type t = {
  name : string;
  ddg : Ddg.t;
  trip_count : int;
  weight : float;
}

val make : name:string -> ddg:Ddg.t -> trip_count:int -> ?weight:float -> unit -> t
(** [weight] defaults to 1.0.  Raises [Invalid_argument] on a
    non-positive trip count or weight. *)

val num_ops : t -> int

val pp : Format.formatter -> t -> unit
