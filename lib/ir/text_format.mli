(** Textual loop format: parse and print loops, so custom workloads can
    live in files rather than OCaml code.

    Syntax (one statement per line; [#] starts a comment):

    {v
    loop daxpy trip 1000 weight 2.5
      a  = livein
      x  = load A0[i]
      y  = load A1[i]
      t  = fmul a x
      r  = fadd t y
      store A1[i] r
    end
    v}

    {ul
    {- Memory references: [A<id>[i]], [A2[2i]], [A2[i+4]], [A0[2i-3]],
       [A1[-1i+8]] — the affine form [stride*i + offset]; a bare [i]
       means stride 1, a bare constant means stride 0.}
    {- Recurrences: a use may read an earlier iteration with [@d]:
       [s = fadd s@1 x] accumulates into [s] ([s] from one iteration
       ago).  Self or forward references with [@d] are resolved through
       {!Builder.feedback}/{!Builder.carried}; a plain use of a name
       defined later in the body is an error.}
    {- [livein] declares a loop-invariant input.}
    {- Opcodes: [load], [store], [fadd], [fsub], [fmul], [fdiv],
       [fsqrt], [fneg], [fabs], [fcopy].}
    {- [trip] and [weight] are optional (defaults 1000 and 1.0); several
       loops may appear in one file.}} *)

val parse : string -> (Loop.t list, string) result
(** Parse the loops in a source string.  The error includes a line
    number. *)

val parse_one : string -> (Loop.t, string) result
(** Parse a source expected to contain exactly one loop. *)

val print : Loop.t -> string
(** Render a loop back to the textual format.  Lane selections and wide
    operations (post-widening artefacts) are not representable and
    raise [Invalid_argument]; print source-level loops only. *)

val roundtrip_normalizes : Loop.t -> bool
(** [parse (print l)] succeeds and yields a loop with the same
    operation count, edges, trip count and weight — the property the
    tests check. *)
