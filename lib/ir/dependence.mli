(** Dependence edges of the data dependence graph.

    An edge [(src, dst, kind, distance)] constrains the modulo schedule
    by [time(dst) >= time(src) + delay(kind, src) - II * distance],
    where the delay of a flow edge is the producer's latency under the
    active cycle model and the delays of the other kinds are small
    constants (see {!delay_rule}).  [distance] is the number of loop
    iterations the dependence spans: 0 for intra-iteration edges,
    [> 0] for loop-carried edges (recurrences). *)

type kind =
  | Flow  (** true (read-after-write) dependence through a register *)
  | Anti  (** write-after-read through a register *)
  | Output  (** write-after-write through a register *)
  | Memory  (** ordering dependence between memory operations *)

type t = { src : int; dst : int; kind : kind; distance : int }

val make : src:int -> dst:int -> kind:kind -> distance:int -> t
(** Raises [Invalid_argument] on a negative distance. *)

val delay_rule : kind -> producer_latency:int -> int
(** The scheduling delay contributed by an edge: a [Flow] edge delays
    by the producer's full latency; [Anti] edges allow same-cycle
    issue (delay 0, register reads happen before writes within a
    cycle); [Output] and [Memory] edges impose a one-cycle order. *)

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
val equal : t -> t -> bool
