let escape s =
  String.concat "\\\"" (String.split_on_char '"' s)

let of_ddg ?(name = "ddg") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  node [shape=box, fontname=\"monospace\"];\n";
  Array.iter
    (fun (o : Operation.t) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"];\n" o.id (escape (Operation.to_string o))))
    (Ddg.ops g);
  List.iter
    (fun (e : Dependence.t) ->
      let style =
        match e.kind with
        | Dependence.Flow -> "solid"
        | Dependence.Memory -> "dashed"
        | Dependence.Anti | Dependence.Output -> "dotted"
      in
      let label = if e.distance = 0 then "" else Printf.sprintf ", label=\"%d\"" e.distance in
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [style=%s%s];\n" e.src e.dst style label))
    (Ddg.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_loop (l : Loop.t) = of_ddg ~name:l.Loop.name l.Loop.ddg
