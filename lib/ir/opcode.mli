(** Operation codes of the loop IR.

    The study targets the numerical inner loops of the Perfect Club, so
    the instruction set is the floating-point/memory subset the paper
    schedules: memory accesses execute on buses, floating-point
    operations on FPUs.  Division and square root are not pipelined;
    everything else is fully pipelined (paper, Section 3 and
    Table 6). *)

type t =
  | Load
  | Store
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Fsqrt
  | Fneg
  | Fabs
  | Fcopy  (** register-to-register move; also used by spill-free renaming *)
  | Fma
      (** fused multiply-add [x*y + z] with a single rounding
          ([Float.fma] semantics); counts as one FPU operation and one
          flop per lane — the dominant primitive of the real stencil
          and recurrence kernels in [lib/workload] *)

type resource_class =
  | Bus  (** memory port between the register file and the L1 cache *)
  | Fpu  (** general-purpose floating-point unit *)

type latency_class =
  | Store_op  (** retires in one cycle *)
  | Short_op  (** fully pipelined: loads and simple FP arithmetic *)
  | Div_op    (** unpipelined division *)
  | Sqrt_op   (** unpipelined square root *)

val all : t list
(** Every opcode, in a fixed order. *)

val resource_class : t -> resource_class

val latency_class : t -> latency_class

val is_memory : t -> bool
val is_pipelined : t -> bool

val num_inputs : t -> int
(** Number of register inputs the opcode consumes ([Load] takes none:
    address arithmetic is carried by the memory reference, as in the
    paper's machine model where address computation is off the critical
    FP datapath). *)

val has_result : t -> bool
(** Whether the opcode defines a register ([Store] does not). *)

val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
