type t = { array_id : int; stride : int; offset : int }

let make ~array_id ~stride ~offset = { array_id; stride; offset }

let address_at t ~iteration = (t.stride * iteration) + t.offset

let same_location a b =
  a.array_id = b.array_id && a.stride = b.stride && a.offset = b.offset

type conflict = No_conflict | At_distance of int | Unknown

let conflict a b =
  if a.array_id <> b.array_id then No_conflict
  else if a.stride = b.stride then
    if a.stride = 0 then if a.offset = b.offset then At_distance 0 else No_conflict
    else
      (* a at iteration i touches s*i + oa; b at i + d touches
         s*(i+d) + ob.  Equality for all i requires s*d = oa - ob. *)
      let diff = a.offset - b.offset in
      if diff mod a.stride <> 0 then No_conflict
      else
        let d = diff / a.stride in
        if d >= 0 then At_distance d else No_conflict
  else
    (* Different strides: the accesses sweep the array at different
       rates; whether they collide depends on the trip count.  Be
       conservative. *)
    Unknown

let consecutive a b =
  a.array_id = b.array_id && a.stride = b.stride && b.offset = a.offset + 1

let equal a b = a.array_id = b.array_id && a.stride = b.stride && a.offset = b.offset

let to_string t = Printf.sprintf "A%d[%d*i%+d]" t.array_id t.stride t.offset

let pp fmt t = Format.pp_print_string fmt (to_string t)
