(** Graphviz export of dependence graphs, for debugging and docs. *)

val of_ddg : ?name:string -> Ddg.t -> string
(** DOT source for the graph.  Flow edges are solid, memory edges
    dashed, anti/output edges dotted; loop-carried edges are labelled
    with their distance. *)

val of_loop : Loop.t -> string
