(** Data dependence graph of an innermost loop body.

    Vertices are the operations of one iteration; edges are
    {!Dependence.t} values whose [distance] counts iterations.  The
    graph may contain cycles, but every cycle must have a strictly
    positive total distance — a zero-distance cycle has no valid
    execution order and is rejected by {!create}. *)

type t

val create : num_vregs:int -> ops:Operation.t array -> edges:Dependence.t list -> t
(** Builds and validates the graph.  Raises [Invalid_argument] when
    operation ids are not the dense range [0 .. n-1], when an edge
    endpoint or virtual register is out of range, when a flow edge's
    source does not define a register used by its destination, or when
    a zero-distance cycle exists. *)

val num_ops : t -> int
val num_vregs : t -> int
val op : t -> int -> Operation.t
val ops : t -> Operation.t array
(** The returned array must not be mutated. *)

val edges : t -> Dependence.t list
val succs : t -> int -> Dependence.t list
(** Outgoing edges of an operation. *)

val preds : t -> int -> Dependence.t list
(** Incoming edges of an operation. *)

val def_site : t -> Operation.vreg -> int option
(** The operation defining a virtual register, if any ([None] for
    live-in values produced outside the loop). *)

val users : t -> Operation.vreg -> int list
(** Operations reading a virtual register, ascending ids; an operation
    using the register twice appears twice. *)

val count_class : t -> Opcode.resource_class -> int
(** Number of operations of a resource class (wide operations count
    once — they occupy one slot). *)

val scalar_count_class : t -> Opcode.resource_class -> int
(** Total scalar work of a resource class: wide operations count
    [lanes] times. *)

val scc : t -> Scc.result
(** Strongly connected components over all edges. *)

val recurrence_ops : t -> bool array
(** [recurrence_ops g] flags the operations that belong to some cycle
    (a component of size [> 1], or a self-edge). *)

val has_recurrence : t -> bool

type operand = {
  reg : Operation.vreg;  (** register read *)
  distance : int;  (** iterations since the value was produced *)
  producer : int option;  (** defining operation; [None] for live-ins *)
  lane : int option;  (** lane selection, from the operation's [lane_sel] *)
}
(** A fully described register input: operations store only the vreg
    list, so the per-operand dependence distance is reconstructed from
    the incoming flow edges (occurrences pair up with edges in sorted
    order when a register is read at several distances). *)

val operands : t -> int -> operand list
(** Operand descriptors of one operation, in [uses] order. *)

val map_ops : t -> f:(Operation.t -> Operation.t) -> t
(** Rebuild the graph with transformed operations (ids must be
    preserved by [f]); edges are kept.  Revalidates. *)

val pp : Format.formatter -> t -> unit
