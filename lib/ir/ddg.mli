(** Data dependence graph of an innermost loop body.

    Vertices are the operations of one iteration; edges are
    {!Dependence.t} values whose [distance] counts iterations.  The
    graph may contain cycles, but every cycle must have a strictly
    positive total distance — a zero-distance cycle has no valid
    execution order and is rejected by {!create}. *)

type t

val create : num_vregs:int -> ops:Operation.t array -> edges:Dependence.t list -> t
(** Builds and validates the graph.  Raises [Invalid_argument] when
    operation ids are not the dense range [0 .. n-1], when an edge
    endpoint or virtual register is out of range, when a flow edge's
    source does not define a register used by its destination, or when
    a zero-distance cycle exists. *)

val num_ops : t -> int
val num_vregs : t -> int
val op : t -> int -> Operation.t
val ops : t -> Operation.t array
(** The returned array must not be mutated. *)

val edges : t -> Dependence.t list

type edge_view = {
  n_edges : int;
  e_src : int array;  (** source op of edge [e] *)
  e_dst : int array;  (** destination op of edge [e] *)
  e_dist : int array;  (** iteration distance of edge [e] *)
  e_kind : Dependence.kind array;
  succ_off : int array;
      (** CSR row starts: the out-edges of op [v] are
          [succ_edges.(succ_off.(v)) .. succ_edges.(succ_off.(v+1) - 1)] *)
  succ_edges : int array;  (** edge ids grouped by source, ascending *)
  pred_off : int array;
  pred_edges : int array;  (** edge ids grouped by destination, ascending *)
}
(** Flat, cache-friendly mirror of {!edges}: parallel [int] arrays
    indexed by edge id (the edge's position in the {!edges} list) plus
    CSR adjacency in both directions.  The scheduler's inner loops
    (Bellman-Ford relaxations, dependence-window scans) iterate these
    arrays instead of chasing list links and record fields.  The arrays
    must not be mutated. *)

val edge_view : t -> edge_view
(** Precomputed at {!create}; O(1). *)

val edge_delays : t -> key:int -> producer_latency:(Operation.t -> int) -> int array
(** Per-edge dependence delays ({!Dependence.delay_rule} applied to the
    producing operation), as an array indexed by edge id.  Memoized on
    the graph under the caller-chosen [key] (the scheduler uses the
    cycle-model's cycle count), so repeated scheduling of one body pays
    for the latency lookups once.  [producer_latency] must be a pure
    function of the operation consistent with [key].  Thread-safe; the
    returned array must not be mutated. *)

val cached_rec_info : t -> key:int -> compute:(unit -> int * int array) -> int * int array
(** Generic per-graph memo slot for recurrence analysis keyed like
    {!edge_delays} (the scheduler stores [(RecMII, per-op component
    RecMII)] per cycle model).  [compute] runs outside the lock and
    must be deterministic; the first stored value wins.  Thread-safe. *)

val succs : t -> int -> Dependence.t list
(** Outgoing edges of an operation. *)

val preds : t -> int -> Dependence.t list
(** Incoming edges of an operation. *)

val def_site : t -> Operation.vreg -> int option
(** The operation defining a virtual register, if any ([None] for
    live-in values produced outside the loop). *)

val users : t -> Operation.vreg -> int list
(** Operations reading a virtual register, ascending ids; an operation
    using the register twice appears twice. *)

val count_class : t -> Opcode.resource_class -> int
(** Number of operations of a resource class (wide operations count
    once — they occupy one slot). *)

val scalar_count_class : t -> Opcode.resource_class -> int
(** Total scalar work of a resource class: wide operations count
    [lanes] times. *)

val scc : t -> Scc.result
(** Strongly connected components over all edges. *)

val recurrence_ops : t -> bool array
(** [recurrence_ops g] flags the operations that belong to some cycle
    (a component of size [> 1], or a self-edge). *)

val has_recurrence : t -> bool

type operand = {
  reg : Operation.vreg;  (** register read *)
  distance : int;  (** iterations since the value was produced *)
  producer : int option;  (** defining operation; [None] for live-ins *)
  lane : int option;  (** lane selection, from the operation's [lane_sel] *)
}
(** A fully described register input: operations store only the vreg
    list, so the per-operand dependence distance is reconstructed from
    the incoming flow edges (occurrences pair up with edges in sorted
    order when a register is read at several distances). *)

val operands : t -> int -> operand list
(** Operand descriptors of one operation, in [uses] order. *)

val map_ops : t -> f:(Operation.t -> Operation.t) -> t
(** Rebuild the graph with transformed operations (ids must be
    preserved by [f]); edges are kept.  Revalidates. *)

val pp : Format.formatter -> t -> unit
