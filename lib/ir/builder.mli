(** Convenience DSL for constructing loop dependence graphs.

    The builder tracks def/use relations and memory references and, on
    {!finish}, derives all register flow edges and all conservative
    memory ordering edges automatically, so client code only describes
    the computation:

    {[
      let b = Builder.create ~name:"daxpy" () in
      let a = Builder.live_in b in
      let x = Builder.load b ~array_id:0 () in
      let y = Builder.load b ~array_id:1 () in
      let axy = Builder.fadd b (Builder.fmul b a x) y in
      Builder.store b ~array_id:1 () axy;
      let loop = Builder.finish b ~trip_count:1000 ()
    ]}

    Recurrences are expressed with {!feedback}:

    {[
      let _sum =
        Builder.feedback b ~distance:1 ~f:(fun prev -> Builder.fadd b prev x)
    ]} *)

type t

type value
(** A register value usable as an operand. *)

val create : ?name:string -> unit -> t

val live_in : t -> value
(** A loop-invariant input defined outside the loop.  Wands-only
    register allocation (the paper's strategy) excludes these from the
    loop register file demand. *)

val load : t -> array_id:int -> ?stride:int -> ?offset:int -> unit -> value
(** Stride defaults to 1, offset to 0. *)

val store : t -> array_id:int -> ?stride:int -> ?offset:int -> unit -> value -> unit

val fadd : t -> value -> value -> value
val fsub : t -> value -> value -> value
val fmul : t -> value -> value -> value
val fdiv : t -> value -> value -> value
val fsqrt : t -> value -> value
val fneg : t -> value -> value
val fabs : t -> value -> value
val fcopy : t -> value -> value

val fma : t -> value -> value -> value -> value
(** [fma b x y z] is the fused multiply-add [x*y + z] (one rounding). *)

val carried : value -> distance:int -> value
(** [carried v ~distance] is the value [v] produced [distance]
    iterations earlier.  [distance] must be positive. *)

val feedback : t -> distance:int -> f:(value -> value) -> value
(** [feedback b ~distance ~f] builds a recurrence: [f] receives the
    value of the recurrence from [distance] iterations ago and must
    return the freshly computed operation result that becomes the
    recurrence's value.  Raises [Invalid_argument] if [f] returns a
    value that is not a fresh operation result (e.g. a live-in). *)

val forward : t -> value
(** A forward reference: a value that will be defined later.  Until
    {!resolve} is called it may only be consumed through {!carried}
    (a zero-distance use would be a use-before-def; graph validation
    rejects the cycle it creates).  Generalizes {!feedback} to
    recurrences spanning several statements. *)

val resolve : t -> value -> value -> unit
(** [resolve b fwd actual] makes the forward reference [fwd] denote the
    operation result [actual]: the operation defining [actual] is
    patched to define [fwd]'s register, and uses of [actual] created in
    between are remapped.  Raises [Invalid_argument] if [actual] is not
    an operation result, is carried, or if [fwd] was already
    resolved. *)

val finish : t -> trip_count:int -> ?weight:float -> unit -> Loop.t
(** Assembles the loop: derives flow edges from def/use with recorded
    distances, adds conservative memory ordering edges between
    conflicting references, compacts virtual register numbering, and
    validates the graph.  The builder must not be reused
    afterwards. *)
