type value = { vreg : int; distance : int }

(* A pending operation: uses carry their iteration distance, which
   Operation.t does not record (distances become flow-edge distances at
   finish time). *)
type pending = {
  opcode : Opcode.t;
  mutable def : int option;
  mutable uses : (int * int) list;  (* (vreg, distance), operand order *)
  mem : Memref.t option;
}

type t = {
  name : string;
  mutable next_vreg : int;
  mutable ops_rev : pending list;
  mutable num_ops : int;
  mutable finished : bool;
}

let create ?(name = "loop") () =
  { name; next_vreg = 0; ops_rev = []; num_ops = 0; finished = false }

let check_open b = if b.finished then invalid_arg "Builder: already finished"

let fresh_vreg b =
  let v = b.next_vreg in
  b.next_vreg <- v + 1;
  v

let live_in b =
  check_open b;
  { vreg = fresh_vreg b; distance = 0 }

let push b opcode ~def ~uses ~mem =
  check_open b;
  b.ops_rev <- { opcode; def; uses; mem } :: b.ops_rev;
  b.num_ops <- b.num_ops + 1

let emit_result b opcode uses ~mem =
  let v = fresh_vreg b in
  push b opcode ~def:(Some v) ~uses:(List.map (fun u -> (u.vreg, u.distance)) uses) ~mem;
  { vreg = v; distance = 0 }

let load b ~array_id ?(stride = 1) ?(offset = 0) () =
  emit_result b Opcode.Load [] ~mem:(Some (Memref.make ~array_id ~stride ~offset))

let store b ~array_id ?(stride = 1) ?(offset = 0) () v =
  push b Opcode.Store ~def:None
    ~uses:[ (v.vreg, v.distance) ]
    ~mem:(Some (Memref.make ~array_id ~stride ~offset))

let fadd b x y = emit_result b Opcode.Fadd [ x; y ] ~mem:None
let fsub b x y = emit_result b Opcode.Fsub [ x; y ] ~mem:None
let fmul b x y = emit_result b Opcode.Fmul [ x; y ] ~mem:None
let fdiv b x y = emit_result b Opcode.Fdiv [ x; y ] ~mem:None
let fsqrt b x = emit_result b Opcode.Fsqrt [ x ] ~mem:None
let fneg b x = emit_result b Opcode.Fneg [ x ] ~mem:None
let fabs b x = emit_result b Opcode.Fabs [ x ] ~mem:None
let fcopy b x = emit_result b Opcode.Fcopy [ x ] ~mem:None
let fma b x y z = emit_result b Opcode.Fma [ x; y; z ] ~mem:None

let carried v ~distance =
  if distance <= 0 then invalid_arg "Builder.carried: distance must be positive";
  { v with distance = v.distance + distance }

let forward b =
  check_open b;
  { vreg = fresh_vreg b; distance = 0 }

(* Patch the operation defining [w] to define [v] instead, remapping
   uses of [w] recorded so far. *)
let patch_definition b ~context v w =
  let found = ref false in
  List.iter
    (fun p ->
      (match p.def with
      | Some d when d = w ->
          p.def <- Some v;
          found := true
      | _ -> ());
      p.uses <- List.map (fun (r, d) -> if r = w then (v, d) else (r, d)) p.uses)
    b.ops_rev;
  if not !found then
    invalid_arg (context ^ ": expected a fresh operation result")

let resolve b fwd actual =
  check_open b;
  if actual.distance <> 0 then invalid_arg "Builder.resolve: actual is a carried value";
  if fwd.vreg = actual.vreg then invalid_arg "Builder.resolve: already resolved";
  (* A previous resolve to the same forward register would have made it
     a definition already; patch_definition's uniqueness then fails at
     graph validation (double definition). *)
  patch_definition b ~context:"Builder.resolve" fwd.vreg actual.vreg

let feedback b ~distance ~f =
  check_open b;
  if distance <= 0 then invalid_arg "Builder.feedback: distance must be positive";
  let v = fresh_vreg b in
  let before = b.num_ops in
  let result = f { vreg = v; distance } in
  if result.distance <> 0 then invalid_arg "Builder.feedback: f returned a carried value";
  if b.num_ops = before then
    invalid_arg "Builder.feedback: f must create at least one operation";
  patch_definition b ~context:"Builder.feedback" v result.vreg;
  { vreg = v; distance = 0 }

(* Memory ordering edges between every conflicting (store, any) pair. *)
let memory_edges ops =
  let edges = ref [] in
  let n = Array.length ops in
  let add src dst kind distance = edges := Dependence.make ~src ~dst ~kind ~distance :: !edges in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then
        match (ops.(i).Operation.mem, ops.(j).Operation.mem) with
        | Some mi, Some mj
          when ops.(i).Operation.opcode = Opcode.Store
               || ops.(j).Operation.opcode = Opcode.Store -> (
            match Memref.conflict mi mj with
            | Memref.At_distance 0 ->
                (* Same-iteration conflict: order by position in the
                   body; emit once, from the earlier operation. *)
                if i < j then add i j Dependence.Memory 0
            | Memref.At_distance d -> add i j Dependence.Memory d
            | Memref.Unknown ->
                (* Conservative: serialize within the iteration and
                   across consecutive iterations. *)
                if i < j then begin
                  add i j Dependence.Memory 0;
                  add j i Dependence.Memory 1
                end
            | Memref.No_conflict -> ())
        | _ -> ()
    done
  done;
  !edges

let finish b ~trip_count ?weight () =
  check_open b;
  b.finished <- true;
  let pendings = Array.of_list (List.rev b.ops_rev) in
  (* Compact virtual registers to a dense range. *)
  let remap = Hashtbl.create 64 in
  let next = ref 0 in
  let lookup r =
    match Hashtbl.find_opt remap r with
    | Some r' -> r'
    | None ->
        let r' = !next in
        incr next;
        Hashtbl.add remap r r';
        r'
  in
  (* Number defs first so that produced values get stable low ids. *)
  Array.iter (fun p -> Option.iter (fun r -> ignore (lookup r)) p.def) pendings;
  Array.iter (fun p -> List.iter (fun (r, _) -> ignore (lookup r)) p.uses) pendings;
  let ops =
    Array.mapi
      (fun id p ->
        Operation.make ~id ~opcode:p.opcode
          ?def:(Option.map lookup p.def)
          ~uses:(List.map (fun (r, _) -> lookup r) p.uses)
          ?mem:p.mem ())
      pendings
  in
  (* Flow edges from recorded (use, distance) pairs. *)
  let def_site = Hashtbl.create 64 in
  Array.iteri
    (fun id p -> Option.iter (fun r -> Hashtbl.replace def_site (lookup r) id) p.def)
    pendings;
  let flow_edges = ref [] in
  Array.iteri
    (fun id p ->
      List.iter
        (fun (r, distance) ->
          match Hashtbl.find_opt def_site (lookup r) with
          | Some src ->
              flow_edges :=
                Dependence.make ~src ~dst:id ~kind:Dependence.Flow ~distance :: !flow_edges
          | None -> ()  (* live-in: produced outside the loop *))
        p.uses)
    pendings;
  let edges = List.rev_append !flow_edges (memory_edges ops) in
  let ddg = Ddg.create ~num_vregs:!next ~ops ~edges in
  Loop.make ~name:b.name ~ddg ~trip_count ?weight ()
