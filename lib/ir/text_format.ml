(* Hand-rolled recursive-descent parser: the format is line-oriented
   and tiny, so a lexer/parser generator would be heavier than the
   grammar itself. *)

type statement =
  | Def_live_in of string
  | Def_op of string * Opcode.t * (string * int) list * Memref.t option
  | Store of Memref.t * (string * int)

type parsed_loop = {
  name : string;
  trip : int;
  weight : float;
  body : (int * statement) list;  (* line number for diagnostics *)
}

exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun m -> raise (Parse_error (line, m))) fmt

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line = String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

(* [A3[2i+5]] / [A3[i]] / [A3[i-1]] / [A3[4]] / [A3[-2i+1]] *)
let parse_memref lineno tok =
  let err () = fail lineno "bad memory reference %S (expected A<n>[<stride>i<+offset>])" tok in
  if String.length tok < 4 || tok.[0] <> 'A' then err ();
  match String.index_opt tok '[' with
  | None -> err ()
  | Some lb ->
      if tok.[String.length tok - 1] <> ']' then err ();
      let array_id =
        match int_of_string_opt (String.sub tok 1 (lb - 1)) with
        | Some a when a >= 0 -> a
        | _ -> err ()
      in
      let inner = String.sub tok (lb + 1) (String.length tok - lb - 2) in
      (* Forms: "<k>i<+/-o>", "i<+/-o>", "<o>", "-<k>i<+/-o>" *)
      let stride, offset =
        match String.index_opt inner 'i' with
        | None -> (
            match int_of_string_opt inner with Some o -> (0, o) | None -> err ())
        | Some ipos ->
            let stride_str = String.sub inner 0 ipos in
            let stride =
              if stride_str = "" then 1
              else if stride_str = "-" then -1
              else match int_of_string_opt stride_str with Some s -> s | None -> err ()
            in
            let rest = String.sub inner (ipos + 1) (String.length inner - ipos - 1) in
            let offset =
              if rest = "" then 0
              else match int_of_string_opt rest with Some o -> o | None -> err ()
            in
            (stride, offset)
      in
      Memref.make ~array_id ~stride ~offset

(* [name] or [name@3] *)
let parse_use lineno tok =
  match String.index_opt tok '@' with
  | None -> (tok, 0)
  | Some i -> (
      let name = String.sub tok 0 i in
      let d = String.sub tok (i + 1) (String.length tok - i - 1) in
      match int_of_string_opt d with
      | Some d when d > 0 -> (name, d)
      | _ -> fail lineno "bad carried distance in %S" tok)

let opcode_of lineno tok =
  match Opcode.of_string tok with
  | Some op when op <> Opcode.Load && op <> Opcode.Store -> op
  | _ -> fail lineno "unknown opcode %S" tok

let parse_statement lineno toks =
  match toks with
  | [ name; "="; "livein" ] -> Def_live_in name
  | [ name; "="; "load"; aref ] ->
      Def_op (name, Opcode.Load, [], Some (parse_memref lineno aref))
  | "store" :: aref :: [ v ] -> Store (parse_memref lineno aref, parse_use lineno v)
  | name :: "=" :: opc :: args ->
      let op = opcode_of lineno opc in
      let uses = List.map (parse_use lineno) args in
      if List.length uses <> Opcode.num_inputs op then
        fail lineno "%s expects %d operands, got %d" (Opcode.to_string op)
          (Opcode.num_inputs op) (List.length uses);
      Def_op (name, op, uses, None)
  | _ -> fail lineno "cannot parse statement: %s" (String.concat " " toks)

let parse_header lineno toks =
  let rec options trip weight = function
    | [] -> (trip, weight)
    | "trip" :: n :: rest -> (
        match int_of_string_opt n with
        | Some t when t > 0 -> options t weight rest
        | _ -> fail lineno "bad trip count %S" n)
    | "weight" :: w :: rest -> (
        match float_of_string_opt w with
        | Some w when w > 0.0 -> options trip w rest
        | _ -> fail lineno "bad weight %S" w)
    | t :: _ -> fail lineno "unexpected token %S in loop header" t
  in
  match toks with
  | "loop" :: name :: rest ->
      let trip, weight = options 1000 1.0 rest in
      (name, trip, weight)
  | _ -> fail lineno "expected 'loop <name> [trip N] [weight W]'"

let split_loops source =
  let lines = String.split_on_char '\n' source in
  let rec scan lineno acc current = function
    | [] -> (
        match current with
        | Some (hl, _, _) -> fail hl "missing 'end'"
        | None -> List.rev acc)
    | line :: rest -> (
        let toks = tokens (strip_comment line) in
        match (toks, current) with
        | [], _ -> scan (lineno + 1) acc current rest
        | "loop" :: _, Some (hl, _, _) -> fail hl "missing 'end' before next loop"
        | "loop" :: _, None ->
            let name, trip, weight = parse_header lineno toks in
            scan (lineno + 1) acc (Some (lineno, (name, trip, weight), [])) rest
        | [ "end" ], Some (_, header, body) ->
            let name, trip, weight = header in
            scan (lineno + 1)
              ({ name; trip; weight; body = List.rev body } :: acc)
              None rest
        | [ "end" ], None -> fail lineno "'end' outside a loop"
        | _, None -> fail lineno "statement outside a loop"
        | _, Some (hl, header, body) ->
            let st = parse_statement lineno toks in
            scan (lineno + 1) acc (Some (hl, header, (lineno, st) :: body)) rest)
  in
  scan 1 [] None lines

let build (p : parsed_loop) =
  let b = Builder.create ~name:p.name () in
  (* Names defined anywhere in the body (for forward-reference
     checks). *)
  let defined = Hashtbl.create 16 in
  List.iter
    (fun (lineno, st) ->
      match st with
      | Def_live_in n | Def_op (n, _, _, _) ->
          if Hashtbl.mem defined n then fail lineno "duplicate definition of %S" n;
          Hashtbl.add defined n ()
      | Store _ -> ())
    p.body;
  let env : (string, Builder.value) Hashtbl.t = Hashtbl.create 16 in
  let forwards : (string, Builder.value) Hashtbl.t = Hashtbl.create 4 in
  let lookup lineno (name, distance) =
    let v =
      match Hashtbl.find_opt env name with
      | Some v -> v
      | None ->
          if not (Hashtbl.mem defined name) then fail lineno "unknown name %S" name
          else if distance = 0 then
            fail lineno "%S used before its definition (add @distance for a carried use)"
              name
          else begin
            match Hashtbl.find_opt forwards name with
            | Some f -> f
            | None ->
                let f = Builder.forward b in
                Hashtbl.add forwards name f;
                f
          end
    in
    if distance = 0 then v else Builder.carried v ~distance
  in
  List.iter
    (fun (lineno, st) ->
      match st with
      | Def_live_in name -> Hashtbl.replace env name (Builder.live_in b)
      | Store (m, use) ->
          Builder.store b ~array_id:m.Memref.array_id ~stride:m.Memref.stride
            ~offset:m.Memref.offset () (lookup lineno use)
      | Def_op (name, op, uses, mem) ->
          let value =
            match (op, mem) with
            | Opcode.Load, Some m ->
                Builder.load b ~array_id:m.Memref.array_id ~stride:m.Memref.stride
                  ~offset:m.Memref.offset ()
            | Opcode.Fadd, None ->
                let a, c = (List.nth uses 0, List.nth uses 1) in
                Builder.fadd b (lookup lineno a) (lookup lineno c)
            | Opcode.Fsub, None ->
                Builder.fsub b (lookup lineno (List.nth uses 0)) (lookup lineno (List.nth uses 1))
            | Opcode.Fmul, None ->
                Builder.fmul b (lookup lineno (List.nth uses 0)) (lookup lineno (List.nth uses 1))
            | Opcode.Fdiv, None ->
                Builder.fdiv b (lookup lineno (List.nth uses 0)) (lookup lineno (List.nth uses 1))
            | Opcode.Fsqrt, None -> Builder.fsqrt b (lookup lineno (List.nth uses 0))
            | Opcode.Fneg, None -> Builder.fneg b (lookup lineno (List.nth uses 0))
            | Opcode.Fabs, None -> Builder.fabs b (lookup lineno (List.nth uses 0))
            | Opcode.Fcopy, None -> Builder.fcopy b (lookup lineno (List.nth uses 0))
            | Opcode.Fma, None ->
                Builder.fma b
                  (lookup lineno (List.nth uses 0))
                  (lookup lineno (List.nth uses 1))
                  (lookup lineno (List.nth uses 2))
            | _ -> fail lineno "malformed statement"
          in
          (* If the name was forward-referenced, graft the definition
             onto the forward register. *)
          (match Hashtbl.find_opt forwards name with
          | Some f ->
              (try Builder.resolve b f value
               with Invalid_argument m -> fail lineno "%s" m);
              Hashtbl.remove forwards name;
              Hashtbl.replace env name f
          | None -> Hashtbl.replace env name value))
    p.body;
  (match Hashtbl.length forwards with
  | 0 -> ()
  | _ ->
      let names = Hashtbl.fold (fun n _ acc -> n :: acc) forwards [] in
      fail 0 "unresolved forward references: %s" (String.concat ", " names));
  try Builder.finish b ~trip_count:p.trip ~weight:p.weight ()
  with Invalid_argument m -> fail 0 "invalid loop: %s" m

let parse source =
  match List.map build (split_loops source) with
  | loops -> Ok loops
  | exception Parse_error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)

let parse_one source =
  match parse source with
  | Error e -> Error e
  | Ok [ l ] -> Ok l
  | Ok ls -> Error (Printf.sprintf "expected one loop, found %d" (List.length ls))

(* --- printing ------------------------------------------------------- *)

let memref_to_text (m : Memref.t) =
  let index =
    match (m.Memref.stride, m.Memref.offset) with
    | 0, o -> string_of_int o
    | 1, 0 -> "i"
    | 1, o -> Printf.sprintf "i%+d" o
    | s, 0 -> Printf.sprintf "%di" s
    | s, o -> Printf.sprintf "%di%+d" s o
  in
  Printf.sprintf "A%d[%s]" m.Memref.array_id index

let print (loop : Loop.t) =
  let g = loop.Loop.ddg in
  Array.iter
    (fun (o : Operation.t) ->
      if o.Operation.lanes > 1 || List.exists Option.is_some o.Operation.lane_sel then
        invalid_arg "Text_format.print: wide operations are not representable")
    (Ddg.ops g);
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "loop %s trip %d weight %.17g\n" loop.Loop.name loop.Loop.trip_count
       loop.Loop.weight);
  (* Names: vN for results, cN for live-ins (first-use order). *)
  let live_in_names = Hashtbl.create 8 in
  Array.iter
    (fun (o : Operation.t) ->
      List.iter
        (fun r ->
          if Ddg.def_site g r = None && not (Hashtbl.mem live_in_names r) then begin
            let name = Printf.sprintf "c%d" (Hashtbl.length live_in_names) in
            Hashtbl.add live_in_names r name;
            Buffer.add_string buf (Printf.sprintf "  %s = livein\n" name)
          end)
        o.Operation.uses)
    (Ddg.ops g);
  let name_of r =
    match Hashtbl.find_opt live_in_names r with
    | Some n -> n
    | None -> Printf.sprintf "v%d" r
  in
  Array.iter
    (fun (o : Operation.t) ->
      let use (x : Ddg.operand) =
        if x.Ddg.distance = 0 then name_of x.Ddg.reg
        else Printf.sprintf "%s@%d" (name_of x.Ddg.reg) x.Ddg.distance
      in
      let uses = List.map use (Ddg.operands g o.Operation.id) in
      let line =
        match (o.Operation.opcode, o.Operation.def, o.Operation.mem) with
        | Opcode.Load, Some r, Some m ->
            Printf.sprintf "  %s = load %s" (name_of r) (memref_to_text m)
        | Opcode.Store, None, Some m -> (
            match uses with
            | [ v ] -> Printf.sprintf "  store %s %s" (memref_to_text m) v
            | _ -> invalid_arg "Text_format.print: malformed store")
        | opc, Some r, None ->
            Printf.sprintf "  %s = %s %s" (name_of r) (Opcode.to_string opc)
              (String.concat " " uses)
        | _ -> invalid_arg "Text_format.print: malformed operation"
      in
      Buffer.add_string buf (line ^ "\n"))
    (Ddg.ops g);
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let roundtrip_normalizes (loop : Loop.t) =
  match parse_one (print loop) with
  | Error _ -> false
  | Ok l2 ->
      Ddg.num_ops l2.Loop.ddg = Ddg.num_ops loop.Loop.ddg
      && List.length (Ddg.edges l2.Loop.ddg) = List.length (Ddg.edges loop.Loop.ddg)
      && l2.Loop.trip_count = loop.Loop.trip_count
      && Float.abs (l2.Loop.weight -. loop.Loop.weight) < 1e-9
