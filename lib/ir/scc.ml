type result = { component : int array; count : int }

(* Iterative Tarjan: an explicit work stack holds (vertex, next child
   index) frames so that graphs with thousands of nodes (unrolled wide
   loops) cannot overflow the OCaml call stack. *)
let compute ~n ~succs =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let component = Array.make n (-1) in
  let next_index = ref 0 in
  let count = ref 0 in
  let visit root =
    let work = ref [ (root, ref (succs root)) ] in
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    stack := root :: !stack;
    on_stack.(root) <- true;
    while !work <> [] do
      match !work with
      | [] -> ()
      | (v, children) :: rest -> (
          match !children with
          | w :: tl ->
              children := tl;
              if index.(w) = -1 then begin
                index.(w) <- !next_index;
                lowlink.(w) <- !next_index;
                incr next_index;
                stack := w :: !stack;
                on_stack.(w) <- true;
                work := (w, ref (succs w)) :: !work
              end
              else if on_stack.(w) then lowlink.(v) <- Stdlib.min lowlink.(v) index.(w)
          | [] ->
              work := rest;
              (match rest with
              | (parent, _) :: _ -> lowlink.(parent) <- Stdlib.min lowlink.(parent) lowlink.(v)
              | [] -> ());
              if lowlink.(v) = index.(v) then begin
                (* Pop the component rooted at v. *)
                let rec pop () =
                  match !stack with
                  | [] -> assert false
                  | w :: tl ->
                      stack := tl;
                      on_stack.(w) <- false;
                      component.(w) <- !count;
                      if w <> v then pop ()
                in
                pop ();
                incr count
              end)
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then visit v
  done;
  (* Tarjan emits components in reverse topological order already:
     component id a > b implies no path from b's component to a's.
     We keep that numbering (documented in the interface). *)
  { component; count = !count }

let members r =
  let buckets = Array.make r.count [] in
  for v = Array.length r.component - 1 downto 0 do
    let c = r.component.(v) in
    buckets.(c) <- v :: buckets.(c)
  done;
  buckets
