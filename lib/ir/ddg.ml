type edge_view = {
  n_edges : int;
  e_src : int array;
  e_dst : int array;
  e_dist : int array;
  e_kind : Dependence.kind array;
  succ_off : int array;  (* n_ops+1 row starts into succ_edges *)
  succ_edges : int array;  (* edge ids grouped by source, ascending *)
  pred_off : int array;
  pred_edges : int array;  (* edge ids grouped by destination, ascending *)
}

type t = {
  ops : Operation.t array;
  num_vregs : int;
  edges : Dependence.t list;
  succ : Dependence.t list array;
  pred : Dependence.t list array;
  def_site : int option array;  (* vreg -> defining op *)
  users : int list array;  (* vreg -> using ops, ascending *)
  view : edge_view;
  (* Derived per-cycle-model data, memoized on the graph so the many
     scheduler invocations Driver.run makes against one body pay for it
     once.  Guarded by [cache_mutex]: the graph itself is immutable and
     shared across pool domains, and a racing recomputation is merely a
     duplicated deterministic computation. *)
  cache_mutex : Mutex.t;
  mutable delay_cache : (int * int array) list;
  mutable rec_cache : (int * (int * int array)) list;
}

let compile_edges ~n edges =
  let n_edges = List.length edges in
  let e_src = Array.make n_edges 0
  and e_dst = Array.make n_edges 0
  and e_dist = Array.make n_edges 0
  and e_kind = Array.make n_edges Dependence.Flow in
  List.iteri
    (fun i (e : Dependence.t) ->
      e_src.(i) <- e.src;
      e_dst.(i) <- e.dst;
      e_dist.(i) <- e.distance;
      e_kind.(i) <- e.kind)
    edges;
  let csr endpoint =
    let off = Array.make (n + 1) 0 in
    for i = 0 to n_edges - 1 do
      off.(endpoint.(i) + 1) <- off.(endpoint.(i) + 1) + 1
    done;
    for v = 0 to n - 1 do
      off.(v + 1) <- off.(v + 1) + off.(v)
    done;
    let ids = Array.make n_edges 0 in
    let cursor = Array.copy off in
    for i = 0 to n_edges - 1 do
      let v = endpoint.(i) in
      ids.(cursor.(v)) <- i;
      cursor.(v) <- cursor.(v) + 1
    done;
    (off, ids)
  in
  let succ_off, succ_edges = csr e_src in
  let pred_off, pred_edges = csr e_dst in
  { n_edges; e_src; e_dst; e_dist; e_kind; succ_off; succ_edges; pred_off; pred_edges }

let validate_ops ops num_vregs =
  Array.iteri
    (fun i (o : Operation.t) ->
      if o.id <> i then
        invalid_arg (Printf.sprintf "Ddg.create: op at index %d has id %d" i o.id);
      let check_vreg r =
        if r < 0 || r >= num_vregs then
          invalid_arg (Printf.sprintf "Ddg.create: op%d refers to vreg %d out of range" i r)
      in
      Option.iter check_vreg o.def;
      List.iter check_vreg o.uses)
    ops

let validate_edges ops edges =
  let n = Array.length ops in
  List.iter
    (fun (e : Dependence.t) ->
      if e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n then
        invalid_arg "Ddg.create: edge endpoint out of range";
      match e.kind with
      | Dependence.Flow -> (
          let src = ops.(e.src) and dst = ops.(e.dst) in
          match src.Operation.def with
          | Some r when List.mem r dst.Operation.uses -> ()
          | _ ->
              invalid_arg
                (Printf.sprintf "Ddg.create: flow edge op%d->op%d has no matching def/use"
                   e.src e.dst))
      | Dependence.Anti | Dependence.Output | Dependence.Memory -> ())
    edges

let check_no_zero_distance_cycle n edges =
  let zero_succs = Array.make n [] in
  List.iter
    (fun (e : Dependence.t) ->
      if e.distance = 0 then begin
        if e.src = e.dst then
          invalid_arg (Printf.sprintf "Ddg.create: zero-distance self edge on op%d" e.src);
        zero_succs.(e.src) <- e.dst :: zero_succs.(e.src)
      end)
    edges;
  let r = Scc.compute ~n ~succs:(fun v -> zero_succs.(v)) in
  let sizes = Array.make r.Scc.count 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) r.Scc.component;
  Array.iter
    (fun size ->
      if size > 1 then invalid_arg "Ddg.create: zero-distance dependence cycle")
    sizes

let create ~num_vregs ~ops ~edges =
  if num_vregs < 0 then invalid_arg "Ddg.create: negative num_vregs";
  validate_ops ops num_vregs;
  validate_edges ops edges;
  let n = Array.length ops in
  check_no_zero_distance_cycle n edges;
  let succ = Array.make n [] and pred = Array.make n [] in
  List.iter
    (fun (e : Dependence.t) ->
      succ.(e.src) <- e :: succ.(e.src);
      pred.(e.dst) <- e :: pred.(e.dst))
    edges;
  let def_site = Array.make num_vregs None and users = Array.make num_vregs [] in
  Array.iter
    (fun (o : Operation.t) ->
      (match o.def with
      | Some r ->
          (match def_site.(r) with
          | Some other ->
              invalid_arg
                (Printf.sprintf "Ddg.create: vreg %d defined by both op%d and op%d" r other
                   o.id)
          | None -> ());
          def_site.(r) <- Some o.id
      | None -> ());
      List.iter (fun r -> users.(r) <- o.id :: users.(r)) o.uses)
    ops;
  Array.iteri (fun r l -> users.(r) <- List.rev l) users;
  {
    ops;
    num_vregs;
    edges;
    succ;
    pred;
    def_site;
    users;
    view = compile_edges ~n edges;
    cache_mutex = Mutex.create ();
    delay_cache = [];
    rec_cache = [];
  }

let edge_view t = t.view

let edge_delays t ~key ~producer_latency =
  Mutex.lock t.cache_mutex;
  let hit = List.assoc_opt key t.delay_cache in
  Mutex.unlock t.cache_mutex;
  match hit with
  | Some d -> d
  | None ->
      (* Computed outside the lock: deterministic, so a racing domain at
         worst duplicates the work and the first store wins. *)
      let v = t.view in
      let d =
        Array.init v.n_edges (fun e ->
            Dependence.delay_rule v.e_kind.(e)
              ~producer_latency:(producer_latency t.ops.(v.e_src.(e))))
      in
      Mutex.lock t.cache_mutex;
      let stored =
        match List.assoc_opt key t.delay_cache with
        | Some d' -> d'
        | None ->
            t.delay_cache <- (key, d) :: t.delay_cache;
            d
      in
      Mutex.unlock t.cache_mutex;
      stored

let cached_rec_info t ~key ~compute =
  Mutex.lock t.cache_mutex;
  let hit = List.assoc_opt key t.rec_cache in
  Mutex.unlock t.cache_mutex;
  match hit with
  | Some info -> info
  | None ->
      let info = compute () in
      Mutex.lock t.cache_mutex;
      let stored =
        match List.assoc_opt key t.rec_cache with
        | Some info' -> info'
        | None ->
            t.rec_cache <- (key, info) :: t.rec_cache;
            info
      in
      Mutex.unlock t.cache_mutex;
      stored

let num_ops t = Array.length t.ops
let num_vregs t = t.num_vregs
let op t i = t.ops.(i)
let ops t = t.ops
let edges t = t.edges
let succs t i = t.succ.(i)
let preds t i = t.pred.(i)
let def_site t r = t.def_site.(r)
let users t r = t.users.(r)

let count_class t cls =
  Array.fold_left
    (fun acc (o : Operation.t) -> if Opcode.resource_class o.opcode = cls then acc + 1 else acc)
    0 t.ops

let scalar_count_class t cls =
  Array.fold_left
    (fun acc (o : Operation.t) ->
      if Opcode.resource_class o.opcode = cls then acc + o.lanes else acc)
    0 t.ops

let scc t =
  let n = num_ops t in
  Scc.compute ~n ~succs:(fun v -> List.map (fun (e : Dependence.t) -> e.dst) t.succ.(v))

let recurrence_ops t =
  let r = scc t in
  let sizes = Array.make r.Scc.count 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) r.Scc.component;
  let flags = Array.make (num_ops t) false in
  Array.iteri (fun v c -> if sizes.(c) > 1 then flags.(v) <- true) r.Scc.component;
  (* Self edges form one-vertex cycles. *)
  List.iter
    (fun (e : Dependence.t) -> if e.src = e.dst then flags.(e.src) <- true)
    t.edges;
  flags

let has_recurrence t = Array.exists (fun b -> b) (recurrence_ops t)

type operand = { reg : Operation.vreg; distance : int; producer : int option; lane : int option }

let operands t v =
  let flow_regs = Hashtbl.create 4 in
  List.iter
    (fun (e : Dependence.t) ->
      if e.kind = Dependence.Flow then
        match t.ops.(e.src).Operation.def with
        | Some r -> Hashtbl.add flow_regs r e.distance
        | None -> ())
    t.pred.(v);
  let consumed = Hashtbl.create 4 in
  let describe k r =
    let lane = Operation.lane_of_operand t.ops.(v) k in
    match def_site t r with
    | None -> { reg = r; distance = 0; producer = None; lane }
    | Some d ->
        (* Pair the k-th occurrence of [r] with the k-th smallest
           recorded distance: deterministic, and consistent with how
           edge-driven rewrites enumerate the same multiset. *)
        let seen = match Hashtbl.find_opt consumed r with Some k -> k | None -> 0 in
        Hashtbl.replace consumed r (seen + 1);
        let distances = List.sort compare (Hashtbl.find_all flow_regs r) in
        let distance = match List.nth_opt distances seen with Some x -> x | None -> 0 in
        { reg = r; distance; producer = Some d; lane }
  in
  List.mapi describe t.ops.(v).Operation.uses

let map_ops t ~f =
  let ops = Array.map f t.ops in
  create ~num_vregs:t.num_vregs ~ops ~edges:t.edges

let pp fmt t =
  Format.fprintf fmt "@[<v>ddg: %d ops, %d vregs, %d edges@," (num_ops t) t.num_vregs
    (List.length t.edges);
  Array.iter (fun o -> Format.fprintf fmt "  %s@," (Operation.to_string o)) t.ops;
  List.iter (fun e -> Format.fprintf fmt "  %a@," Dependence.pp e) t.edges;
  Format.fprintf fmt "@]"
