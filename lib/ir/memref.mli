(** Affine memory references.

    Every memory operation accesses [array\[stride * i + offset\]] in
    64-bit words, where [i] is the normalized loop counter.  Strides
    and offsets are what the widening analysis consumes: a group of
    accesses to the same array whose offsets form a consecutive run at
    stride 1 can be compacted into one wide access (paper, Section 2).
    The same descriptors drive the conservative cross-iteration memory
    dependence analysis in {!Ddg}. *)

type t = {
  array_id : int;  (** which array object is accessed *)
  stride : int;  (** words advanced per loop iteration; may be 0 or negative *)
  offset : int;  (** constant word offset *)
}

val make : array_id:int -> stride:int -> offset:int -> t

val address_at : t -> iteration:int -> int
(** Word address touched at a given iteration. *)

val same_location : t -> t -> bool
(** Whether the two references always touch the same address at the
    same iteration. *)

type conflict =
  | No_conflict  (** the two references can never touch the same word *)
  | At_distance of int
      (** [At_distance d] (with [d >= 0]): the word touched by the
          first reference at iteration [i] is touched by the second at
          iteration [i + d], for all [i]. *)
  | Unknown  (** possibly conflicting, but not at a constant distance *)

val conflict : t -> t -> conflict
(** Directional conflict test; callers interested in both directions
    must also query [conflict b a]. *)

val consecutive : t -> t -> bool
(** [consecutive a b] holds when [b] accesses exactly the next word
    after [a] within the same iteration — the condition for packing the
    two accesses into one wide access. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
