type kind = Flow | Anti | Output | Memory

type t = { src : int; dst : int; kind : kind; distance : int }

let make ~src ~dst ~kind ~distance =
  if distance < 0 then invalid_arg "Dependence.make: negative distance";
  { src; dst; kind; distance }

let delay_rule kind ~producer_latency =
  match kind with
  | Flow -> producer_latency
  | Anti -> 0
  | Output -> 1
  | Memory -> 1

let kind_to_string = function
  | Flow -> "flow"
  | Anti -> "anti"
  | Output -> "output"
  | Memory -> "mem"

let pp fmt t =
  Format.fprintf fmt "op%d -[%s,d=%d]-> op%d" t.src (kind_to_string t.kind) t.distance t.dst

let compare (a : t) (b : t) = Stdlib.compare a b

let equal (a : t) (b : t) = a = b
