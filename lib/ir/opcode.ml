type t =
  | Load
  | Store
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Fsqrt
  | Fneg
  | Fabs
  | Fcopy
  | Fma

type resource_class = Bus | Fpu

type latency_class = Store_op | Short_op | Div_op | Sqrt_op

let all = [ Load; Store; Fadd; Fsub; Fmul; Fdiv; Fsqrt; Fneg; Fabs; Fcopy; Fma ]

let resource_class = function
  | Load | Store -> Bus
  | Fadd | Fsub | Fmul | Fdiv | Fsqrt | Fneg | Fabs | Fcopy | Fma -> Fpu

let latency_class = function
  | Store -> Store_op
  | Load | Fadd | Fsub | Fmul | Fneg | Fabs | Fcopy | Fma -> Short_op
  | Fdiv -> Div_op
  | Fsqrt -> Sqrt_op

let is_memory op = resource_class op = Bus

let is_pipelined op =
  match latency_class op with
  | Store_op | Short_op -> true
  | Div_op | Sqrt_op -> false

let num_inputs = function
  | Load -> 0
  | Store -> 1
  | Fadd | Fsub | Fmul | Fdiv -> 2
  | Fsqrt | Fneg | Fabs | Fcopy -> 1
  | Fma -> 3

let has_result = function Store -> false | _ -> true

let to_string = function
  | Load -> "load"
  | Store -> "store"
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"
  | Fsqrt -> "fsqrt"
  | Fneg -> "fneg"
  | Fabs -> "fabs"
  | Fcopy -> "fcopy"
  | Fma -> "fma"

let of_string = function
  | "load" -> Some Load
  | "store" -> Some Store
  | "fadd" -> Some Fadd
  | "fsub" -> Some Fsub
  | "fmul" -> Some Fmul
  | "fdiv" -> Some Fdiv
  | "fsqrt" -> Some Fsqrt
  | "fneg" -> Some Fneg
  | "fabs" -> Some Fabs
  | "fcopy" -> Some Fcopy
  | "fma" -> Some Fma
  | _ -> None

let pp fmt op = Format.pp_print_string fmt (to_string op)

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = Stdlib.compare a b
