type vreg = int

type t = {
  id : int;
  opcode : Opcode.t;
  def : vreg option;
  uses : vreg list;
  lane_sel : int option list;
  mem : Memref.t option;
  lanes : int;
}

let make ~id ~opcode ?def ?(uses = []) ?(lane_sel = []) ?mem ?(lanes = 1) () =
  if lanes < 1 then invalid_arg "Operation.make: lanes must be >= 1";
  (* Wide operations may read a different number of registers than the
     scalar arity: a wide consumer fed by scalar producers reads one
     register per lane per operand. *)
  if lanes = 1 && List.length uses <> Opcode.num_inputs opcode then
    invalid_arg
      (Printf.sprintf "Operation.make: %s expects %d register inputs, got %d"
         (Opcode.to_string opcode) (Opcode.num_inputs opcode) (List.length uses));
  if lane_sel <> [] && List.length lane_sel <> List.length uses then
    invalid_arg "Operation.make: lane_sel must match uses";
  List.iter
    (fun sel ->
      match sel with
      | Some k when k < 0 -> invalid_arg "Operation.make: negative lane"
      | _ -> ())
    lane_sel;
  (match (def, Opcode.has_result opcode) with
  | Some _, false ->
      invalid_arg
        (Printf.sprintf "Operation.make: %s defines no register" (Opcode.to_string opcode))
  | None, true ->
      invalid_arg
        (Printf.sprintf "Operation.make: %s must define a register" (Opcode.to_string opcode))
  | _ -> ());
  (match (mem, Opcode.is_memory opcode) with
  | None, true ->
      invalid_arg
        (Printf.sprintf "Operation.make: %s needs a memory reference" (Opcode.to_string opcode))
  | Some _, false ->
      invalid_arg
        (Printf.sprintf "Operation.make: %s takes no memory reference"
           (Opcode.to_string opcode))
  | _ -> ());
  { id; opcode; def; uses; lane_sel; mem; lanes }

let is_memory t = Opcode.is_memory t.opcode

let is_wide t = t.lanes > 1

let lane_of_operand t k =
  match List.nth_opt t.lane_sel k with Some sel -> sel | None -> None

let to_string t =
  let buf = Buffer.create 32 in
  Buffer.add_string buf (Printf.sprintf "op%d: " t.id);
  (match t.def with
  | Some r -> Buffer.add_string buf (Printf.sprintf "v%d = " r)
  | None -> ());
  Buffer.add_string buf (Opcode.to_string t.opcode);
  if t.lanes > 1 then Buffer.add_string buf (Printf.sprintf ".w%d" t.lanes);
  List.iteri
    (fun k r ->
      match lane_of_operand t k with
      | None -> Buffer.add_string buf (Printf.sprintf " v%d" r)
      | Some lane -> Buffer.add_string buf (Printf.sprintf " v%d[%d]" r lane))
    t.uses;
  (match t.mem with
  | Some m -> Buffer.add_string buf (" " ^ Memref.to_string m)
  | None -> ());
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_string t)
