(** Strongly connected components (Tarjan's algorithm, iterative).

    Used to separate the recurrences of a dependence graph from its
    acyclic part: every cycle of the graph lives inside one component,
    so a loop is recurrence-free exactly when every component is a
    singleton without a self-edge. *)

type result = {
  component : int array;  (** [component.(v)] is the component id of vertex [v] *)
  count : int;  (** number of components *)
}

val compute : n:int -> succs:(int -> int list) -> result
(** [compute ~n ~succs] over vertices [0 .. n-1].  Component ids are
    assigned in reverse topological order of the condensation: if there
    is an edge from component [a] to component [b] (with [a <> b]) then
    [a > b]. *)

val members : result -> int list array
(** [members r] lists the vertices of each component, each list in
    ascending vertex order. *)
