(** Operations of the loop body.

    An operation reads virtual registers, optionally accesses memory,
    and optionally defines one virtual register.  After the widening
    transform ({!module:Wr_widen} in the widen library), operations may
    be {e wide}: [lanes > 1] means the operation performs that many
    scalar operations on packed data in a single resource slot. *)

type vreg = int
(** Virtual register number; dense from 0 within a loop. *)

type t = {
  id : int;  (** dense index within the owning graph *)
  opcode : Opcode.t;
  def : vreg option;  (** register defined, if any *)
  uses : vreg list;  (** registers read, in operand order *)
  lane_sel : int option list;
      (** per-operand lane selection: [Some k] when the operand reads
          word [k] of a wide register (a scalar consumer of a packed
          producer); [None] reads the whole register (scalar-of-scalar
          or wide-of-wide).  Empty means all-[None]. *)
  mem : Memref.t option;  (** memory reference for [Load]/[Store] *)
  lanes : int;  (** 1 for scalar operations; [> 1] after packing *)
}

val make :
  id:int ->
  opcode:Opcode.t ->
  ?def:vreg ->
  ?uses:vreg list ->
  ?lane_sel:int option list ->
  ?mem:Memref.t ->
  ?lanes:int ->
  unit ->
  t
(** Smart constructor; validates operand counts against the opcode
    (arity, result presence, memory reference presence) and raises
    [Invalid_argument] on mismatch.  Wide operations ([lanes > 1]) are
    exempt from the arity check: a wide consumer whose operand is
    produced by scalar operations reads one register per lane. *)

val is_memory : t -> bool
val is_wide : t -> bool

val lane_of_operand : t -> int -> int option
(** Lane selection of the k-th operand ([None] = whole register). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
