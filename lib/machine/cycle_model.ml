module Opcode = Wr_ir.Opcode

type t = Cycles_1 | Cycles_2 | Cycles_3 | Cycles_4

let all = [ Cycles_1; Cycles_2; Cycles_3; Cycles_4 ]

let cycles = function Cycles_1 -> 1 | Cycles_2 -> 2 | Cycles_3 -> 3 | Cycles_4 -> 4

let of_cycles = function
  | 1 -> Some Cycles_1
  | 2 -> Some Cycles_2
  | 3 -> Some Cycles_3
  | 4 -> Some Cycles_4
  | _ -> None

let of_relative_cycle_time tc =
  if tc <= 0.0 then invalid_arg "Cycle_model.of_relative_cycle_time: non-positive";
  let z = int_of_float (ceil (4.0 /. tc -. 1e-9)) in
  match Stdlib.max 1 (Stdlib.min 4 z) with
  | 1 -> Cycles_1
  | 2 -> Cycles_2
  | 3 -> Cycles_3
  | _ -> Cycles_4

(* Table 6 of the paper. *)
let latency t (cls : Opcode.latency_class) =
  match (t, cls) with
  | _, Opcode.Store_op -> 1
  | Cycles_4, Opcode.Short_op -> 4
  | Cycles_3, Opcode.Short_op -> 3
  | Cycles_2, Opcode.Short_op -> 2
  | Cycles_1, Opcode.Short_op -> 1
  | Cycles_4, Opcode.Div_op -> 19
  | Cycles_3, Opcode.Div_op -> 15
  | Cycles_2, Opcode.Div_op -> 10
  | Cycles_1, Opcode.Div_op -> 5
  | Cycles_4, Opcode.Sqrt_op -> 27
  | Cycles_3, Opcode.Sqrt_op -> 21
  | Cycles_2, Opcode.Sqrt_op -> 14
  | Cycles_1, Opcode.Sqrt_op -> 7

let latency_of_op t op = latency t (Opcode.latency_class op)

let occupancy t op = if Opcode.is_pipelined op then 1 else latency_of_op t op

let to_string t = Printf.sprintf "%d-cycles" (cycles t)

let pp fmt t = Format.pp_print_string fmt (to_string t)
