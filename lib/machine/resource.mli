(** Per-cycle issue slots of a configuration.

    A configuration of [X] buses and [F] FPUs issues at most [X] memory
    operations and [F] FPU operations per cycle; each operation —
    scalar or wide — occupies exactly one slot of its class for
    {!Cycle_model.occupancy} consecutive cycles.  Width does not add
    slots: it lets one slot carry [lanes <= width] scalar
    operations. *)

type t = private { bus_slots : int; fpu_slots : int }

val of_config : Config.t -> t

val slots : t -> Wr_ir.Opcode.resource_class -> int

val fits : Config.t -> Wr_ir.Operation.t -> bool
(** Whether the operation's [lanes] fit the configuration's width. *)

val total_slot_demand : t -> cycle_model:Cycle_model.t -> Wr_ir.Ddg.t -> int * int
(** [(bus_cycles, fpu_cycles)] — the total occupancy the graph's
    operations impose per iteration on each resource class; the
    resource-bound lower limit of the initiation interval divides these
    by the slot counts (see {!Wr_sched.Mii}). *)
