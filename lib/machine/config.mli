(** VLIW datapath configurations.

    The paper's design space is spanned by configurations [XwY(Z:n)]:
    [X] buses and [2X] general-purpose FPUs, all of width [Y] (each
    resource processes [Y] 64-bit words per operation), a register file
    of [Z] registers each [Y] words wide, implemented as [n] identical
    copies (partitions).  The 2-FPUs-per-bus ratio follows the paper's
    balance study (and the MIPS R10000 issue mix); {!make} also accepts
    arbitrary bus/FPU counts for off-grid exploration. *)

type t = private {
  buses : int;  (** number of memory ports, [X] *)
  fpus : int;  (** number of floating-point units, [2X] on the paper grid *)
  width : int;  (** resource width in 64-bit words, [Y] *)
  registers : int;  (** registers in the file, [Z]; each [Y] words wide *)
  partitions : int;  (** identical RF copies, [n] *)
}

val make :
  buses:int -> fpus:int -> width:int -> registers:int -> ?partitions:int -> unit -> t
(** General constructor.  Raises [Invalid_argument] unless all counts
    are positive, [partitions] divides both [buses] and [fpus], and
    [partitions <= buses]. *)

val xwy : ?registers:int -> ?partitions:int -> x:int -> y:int -> unit -> t
(** Paper-grid constructor: [x] buses, [2x] FPUs, width [y].
    [registers] defaults to 256 (the largest file studied),
    [partitions] to 1. *)

val with_registers : t -> int -> t
val with_partitions : t -> int -> t

val factor : t -> int
(** [buses * width]: the configuration's peak-capability scaling
    factor.  All [XwY] with equal [X*Y] can issue the same number of
    scalar memory accesses (and FPU operations) per cycle in the best
    case. *)

val read_ports : t -> int
(** Register-file read ports: 2 per FPU plus 1 per bus. *)

val write_ports : t -> int
(** Register-file write ports: 1 per FPU plus 1 per bus. *)

val read_ports_per_partition : t -> int
(** With [n] partitions, the buses and FPUs are split into [n] groups,
    each reading one copy, so each copy carries [read_ports / n] read
    ports. *)

val write_ports_per_partition : t -> int
(** Every unit writes all copies to keep them coherent, so each copy
    carries all [write_ports] write ports. *)

val bits_per_register : t -> int
(** [64 * width]. *)

val label : t -> string
(** ["4w2(128:2)"]; partition suffix omitted when [n = 1] and register
    suffix omitted when the register count is the 256 default — the
    short form used in the paper's figures is [label_short]. *)

val label_short : t -> string
(** ["4w2"] — buses and width only. *)

val parse : string -> (t, string) result
(** Parses ["XwY"], ["XwY(Z)"] and ["XwY(Z:n)"]. *)

val valid_partitions : t -> int list
(** The partition counts applicable to this configuration (divisors of
    [buses] that also divide [fpus]), ascending. *)

val paper_grid : max_factor:int -> registers:int list -> t list
(** All power-of-two [XwY] configurations with [X*Y <= max_factor],
    crossed with the given register file sizes, partitions = 1.
    Ordered by factor, then by descending [X] (the paper's
    presentation order: 2w1, 1w2, 4w1, 2w2, 1w4, ...). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
