type t = { buses : int; fpus : int; width : int; registers : int; partitions : int }

let make ~buses ~fpus ~width ~registers ?(partitions = 1) () =
  if buses <= 0 then invalid_arg "Config.make: buses must be positive";
  if fpus <= 0 then invalid_arg "Config.make: fpus must be positive";
  if width <= 0 then invalid_arg "Config.make: width must be positive";
  if registers <= 0 then invalid_arg "Config.make: registers must be positive";
  if partitions <= 0 then invalid_arg "Config.make: partitions must be positive";
  if partitions > buses then invalid_arg "Config.make: more partitions than buses";
  if buses mod partitions <> 0 || fpus mod partitions <> 0 then
    invalid_arg "Config.make: partitions must divide both buses and fpus";
  { buses; fpus; width; registers; partitions }

let xwy ?(registers = 256) ?(partitions = 1) ~x ~y () =
  make ~buses:x ~fpus:(2 * x) ~width:y ~registers ~partitions ()

let with_registers t registers = make ~buses:t.buses ~fpus:t.fpus ~width:t.width ~registers ~partitions:t.partitions ()

let with_partitions t partitions = make ~buses:t.buses ~fpus:t.fpus ~width:t.width ~registers:t.registers ~partitions ()

let factor t = t.buses * t.width

let read_ports t = (2 * t.fpus) + t.buses

let write_ports t = t.fpus + t.buses

let read_ports_per_partition t = read_ports t / t.partitions

let write_ports_per_partition t = write_ports t

let bits_per_register t = 64 * t.width

let label_short t =
  if t.fpus = 2 * t.buses then Printf.sprintf "%dw%d" t.buses t.width
  else Printf.sprintf "%db%df_w%d" t.buses t.fpus t.width

let label t =
  if t.partitions = 1 && t.registers = 256 then label_short t
  else if t.partitions = 1 then Printf.sprintf "%s(%d)" (label_short t) t.registers
  else Printf.sprintf "%s(%d:%d)" (label_short t) t.registers t.partitions

let parse s =
  (* Accepted forms: XwY, XwY(Z), XwY(Z:n). *)
  let fail () = Error (Printf.sprintf "Config.parse: cannot parse %S" s) in
  let parse_int str = int_of_string_opt (String.trim str) in
  let body, suffix =
    match String.index_opt s '(' with
    | None -> (s, None)
    | Some i ->
        if String.length s = 0 || s.[String.length s - 1] <> ')' then (s, None)
        else (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 2)))
  in
  match String.split_on_char 'w' body with
  | [ xs; ys ] -> (
      match (parse_int xs, parse_int ys) with
      | Some x, Some y when x > 0 && y > 0 -> (
          let finish registers partitions =
            match
              make ~buses:x ~fpus:(2 * x) ~width:y ~registers ~partitions ()
            with
            | cfg -> Ok cfg
            | exception Invalid_argument msg -> Error msg
          in
          match suffix with
          | None -> finish 256 1
          | Some suf -> (
              match String.split_on_char ':' suf with
              | [ zs ] -> (
                  match parse_int zs with Some z -> finish z 1 | None -> fail ())
              | [ zs; ns ] -> (
                  match (parse_int zs, parse_int ns) with
                  | Some z, Some n -> finish z n
                  | _ -> fail ())
              | _ -> fail ()))
      | _ -> fail ())
  | _ -> fail ()

let valid_partitions t =
  let rec divisors n acc =
    if n = 0 then List.rev acc
    else divisors (n - 1) (if t.buses mod n = 0 && t.fpus mod n = 0 then n :: acc else acc)
  in
  List.rev (divisors t.buses [])

let paper_grid ~max_factor ~registers =
  let rec powers_upto acc p = if p > max_factor then List.rev acc else powers_upto (p :: acc) (2 * p) in
  let factors = List.filter (fun f -> f > 1) (powers_upto [] 1) in
  List.concat_map
    (fun f ->
      (* Descending X: pure replication first, pure widening last. *)
      let rec splits x acc = if x = 0 then List.rev acc else splits (x / 2) ((x, f / x) :: acc) in
      let xys = splits f [] in
      List.concat_map
        (fun (x, y) -> List.map (fun z -> xwy ~registers:z ~x ~y ()) registers)
        xys)
    factors

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = Stdlib.compare a b

let pp fmt t = Format.pp_print_string fmt (label t)
