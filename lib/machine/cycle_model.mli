(** Operation latency models (paper, Table 6).

    The paper compares configurations at matched clock: a configuration
    whose register file is slower gets a longer cycle, so FPU latencies
    {e in cycles} shrink.  A configuration with relative cycle time
    [Tc] (against the 1w1 32-register baseline) belongs to the
    [z]-cycles model with [z = ceil(4 / Tc)], clamped to the four
    models of Table 6.  Stores always retire in one cycle; division and
    square root are not pipelined; all other operations are fully
    pipelined. *)

type t = Cycles_1 | Cycles_2 | Cycles_3 | Cycles_4

val all : t list

val cycles : t -> int
(** 1, 2, 3 or 4. *)

val of_cycles : int -> t option

val of_relative_cycle_time : float -> t
(** [of_relative_cycle_time tc] classifies a configuration; [tc] must
    be positive.  Values faster than the baseline clamp to
    {!Cycles_4} (the paper does not consider deeper pipelining), and
    very slow clocks clamp to {!Cycles_1}. *)

val latency : t -> Wr_ir.Opcode.latency_class -> int
(** Result latency in cycles (Table 6). *)

val latency_of_op : t -> Wr_ir.Opcode.t -> int

val occupancy : t -> Wr_ir.Opcode.t -> int
(** Number of consecutive cycles the operation blocks its functional
    unit: 1 for pipelined operations, the full latency for division and
    square root. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
