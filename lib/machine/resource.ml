module Opcode = Wr_ir.Opcode

type t = { bus_slots : int; fpu_slots : int }

let of_config (c : Config.t) = { bus_slots = c.Config.buses; fpu_slots = c.Config.fpus }

let slots t = function Opcode.Bus -> t.bus_slots | Opcode.Fpu -> t.fpu_slots

let fits (c : Config.t) (op : Wr_ir.Operation.t) = op.Wr_ir.Operation.lanes <= c.Config.width

let total_slot_demand t ~cycle_model g =
  ignore t;
  let bus = ref 0 and fpu = ref 0 in
  Array.iter
    (fun (o : Wr_ir.Operation.t) ->
      let occ = Cycle_model.occupancy cycle_model o.Wr_ir.Operation.opcode in
      match Opcode.resource_class o.Wr_ir.Operation.opcode with
      | Opcode.Bus -> bus := !bus + occ
      | Opcode.Fpu -> fpu := !fpu + occ)
    (Wr_ir.Ddg.ops g);
  (!bus, !fpu)
