(* Fault injection belongs to the verification toolkit alongside the
   oracles and the fuzzer, so it is re-exported here as Wr_check.Fault.
   The implementation lives in Wr_util.Fault because the injection
   sites sit in layers (sched, regalloc) that Wr_check depends on and
   that therefore cannot call back into this library. *)
include Wr_util.Fault
