(** Independent invariant verification of the compilation pipeline.

    Every stage of the pipeline — widening, modulo scheduling, register
    allocation, spilling — maintains invariants that the implementation
    enforces by construction through carefully optimized data
    structures (flat edge arrays, O(occupancy) reservation tables,
    end-fit arc chains).  This module re-derives each invariant from
    first principles, deliberately {e not} sharing those structures:

    {ul
    {- {!check_schedule} walks the plain dependence {e list} (never the
       scheduler's flat {!Wr_ir.Ddg.edge_view}) and rebuilds resource
       usage with a naive O(II)-per-operation reservation table;}
    {- {!check_alloc} re-derives lifetimes, replays every residual arc
       onto an explicit II-slot ring per physical register (wraparound
       included), and re-counts the register requirement;}
    {- {!check_widening} re-runs the compactability analysis and
       compares the widened loop against the original under the
       {!Wr_vliw.Interp} reference interpreter;}
    {- {!check_spill} runs the interpreter on the pre- and post-spill
       graphs and demands bit-identical program-visible memory.}}

    An empty violation list certifies the result against these oracles;
    a non-empty one describes every broken invariant found.  The
    oracles favour clarity over speed — they exist to catch the
    optimized paths lying. *)

type violation = {
  oracle : string;  (** which oracle fired, e.g. ["schedule.dependence"] *)
  detail : string;  (** human-readable description of the broken invariant *)
}

val pp_violation : Format.formatter -> violation -> unit

val to_string : violation list -> string
(** One line per violation. *)

exception Violation of string
(** Raised by {!fail_if_any}; the payload names the context and lists
    every violation. *)

val fail_if_any : context:string -> violation list -> unit
(** No-op on an empty list; raises {!Violation} otherwise. *)

val check_schedule :
  Wr_ir.Ddg.t -> Wr_machine.Resource.t -> Wr_sched.Schedule.t -> violation list
(** Schedule oracle.  Re-checks [time(dst) >= time(src) + delay -
    II * distance] for every edge of {!Wr_ir.Ddg.edges} and re-derives
    per-slot resource usage by walking each operation's occupancy one
    modulo slot at a time into a fresh per-class table, comparing
    against the configuration's slot counts. *)

val check_alloc :
  Wr_ir.Ddg.t ->
  Wr_sched.Schedule.t ->
  Wr_regalloc.Alloc.t ->
  available:int option ->
  violation list
(** Regalloc oracle.  Recomputes the lifetimes, then checks that the
    assignment covers exactly the defined vregs, that whole-register
    counts match each lifetime's length, that no two residual arcs
    sharing a physical register overlap anywhere on the II-slot ring
    (wraparound included), that the reported requirement equals whole
    registers plus distinct arc registers and is at least MaxLives,
    and — when [available] is given — that MaxLives and the requirement
    fit the file. *)

val check_widening :
  ?original_plan:Wr_vliw.Interp.plan ->
  ?widened_plan:Wr_vliw.Interp.plan ->
  original:Wr_ir.Loop.t ->
  widened:Wr_ir.Loop.t ->
  width:int ->
  unit ->
  violation list
(** Widening oracle.  Re-runs {!Wr_widen.Compact.analyze} on the
    original body and checks the widened graph against it: exactly one
    wide operation per compactable original (with [lanes = width] and,
    for memory, stride widened to [width]), [width] scalar copies of
    everything else, no wide operation on a recurrence (the witness
    that its lanes are pairwise independent), trip count divided by
    [width] — and bit-identical memory plus equal scalar work under the
    reference interpreter ([k * width] source iterations against [k]
    wide ones).  [original_plan]/[widened_plan] are optional
    pre-compiled interpreter plans for the two loops (see
    {!Wr_vliw.Interp.compile}); callers that verify one loop at many
    machine points pass cached plans so compilation is paid once. *)

val check_spill :
  ?pre_plan:Wr_vliw.Interp.plan ->
  pre:Wr_ir.Loop.t ->
  post:Wr_ir.Ddg.t ->
  ?iterations:int ->
  unit ->
  violation list
(** Spill/semantics oracle.  Interprets the pre-spill loop and the
    post-spill graph for [iterations] (default 8) iterations and
    compares the memory images restricted to the program-visible
    arrays of [pre] (the spill slot arrays are invisible).  [pre_plan]
    is an optional pre-compiled plan for [pre]; the post-spill graph is
    unique to the machine point and always compiled fresh. *)

val check_driver :
  ?pre_plan:Wr_vliw.Interp.plan ->
  Wr_machine.Resource.t ->
  registers:int ->
  pre:Wr_ir.Loop.t ->
  Wr_regalloc.Driver.outcome ->
  violation list
(** Composite oracle over a register-constrained scheduling outcome:
    {!check_schedule} and {!check_alloc} on the final
    graph/schedule/allocation trio, plus {!check_spill} against [pre]
    (the widened loop handed to the driver) whenever spill code was
    inserted.  An [Unschedulable] outcome has nothing to verify. *)

type point_report = {
  violations : violation list;
  schedulable : bool;  (** the driver produced a schedule *)
  spilled : bool;  (** spill code was inserted *)
  ii : int option;  (** final initiation interval when schedulable *)
}

val check_point :
  Wr_machine.Config.t ->
  cycle_model:Wr_machine.Cycle_model.t ->
  registers:int ->
  ?policy:Wr_regalloc.Driver.policy ->
  Wr_ir.Loop.t ->
  point_report
(** Full-pipeline check of one (loop, machine point): widen for the
    configuration's width under {!check_widening}, run the
    register-constrained driver (under [policy], default [Combined]),
    verify the outcome with {!check_driver}.  The fuzzer forces
    [Spill_only] on some cases so the spill oracle sees real spill
    code, not just the escalation path. *)
