(** Randomized end-to-end verification: drive seeded random (generator
    loop x design-space point) pairs through
    widen -> schedule -> allocate -> spill -> reschedule under every
    oracle of {!Oracle}.

    Each case draws a loop from {!Wr_workload.Generator} (cycling over
    a few parameter variants that stress non-compactable streams,
    recurrences, unpipelined operations and large bodies) and a machine
    point from the paper's design space — including a deliberately tiny
    16-register file so the spill path and the unschedulable fallback
    both get exercised.  Everything derives from the one [seed] via
    split streams, so a failing case replays exactly.

    On failure, {!reproducer} renders the loop in the {!
    Wr_ir.Text_format} syntax together with the machine point and a
    replay command line, ready to paste into a file for
    [widening-cli check]. *)

type failure = {
  case : int;  (** case index within the run *)
  loop : Wr_ir.Loop.t;
  config : Wr_machine.Config.t;
  cycle_model : Wr_machine.Cycle_model.t;
  registers : int;
  policy : Wr_regalloc.Driver.policy;  (** register-pressure lever the case used *)
  violations : Oracle.violation list;
}

type stats = {
  cases : int;
  schedulable : int;  (** cases where the driver produced a schedule *)
  spilled : int;  (** schedulable cases that needed spill code *)
  unschedulable : int;
  failures : failure list;  (** in case order *)
}

val run : ?on_case:(int -> unit) -> seed:int64 -> cases:int -> unit -> stats
(** Runs [cases] independent cases.  [on_case] (default ignore) is
    called with each finished case index — a progress hook. *)

val reproducer : failure -> string
(** A self-contained textual reproducer: the loop source plus comment
    lines naming the machine point and the replay command. *)

val summary : stats -> string
(** One line: case counts and failure count. *)
