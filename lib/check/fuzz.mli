(** Randomized end-to-end verification: drive seeded random (generator
    loop x design-space point) pairs through
    widen -> schedule -> allocate -> spill -> reschedule under every
    oracle of {!Oracle}.

    Each case draws a loop from {!Wr_workload.Generator} (cycling over
    a few parameter variants that stress non-compactable streams,
    recurrences, unpipelined operations and large bodies) and a machine
    point from the paper's design space — including a deliberately tiny
    16-register file so the spill path and the unschedulable fallback
    both get exercised.  Everything derives from the one [seed] via
    split streams, so a failing case replays exactly.

    On failure, {!reproducer} renders the loop in the {!
    Wr_ir.Text_format} syntax together with the machine point and a
    replay command line, ready to paste into a file for
    [widening-cli check]. *)

type failure = {
  case : int;  (** case index within the run *)
  loop : Wr_ir.Loop.t;
  config : Wr_machine.Config.t;
  cycle_model : Wr_machine.Cycle_model.t;
  registers : int;
  policy : Wr_regalloc.Driver.policy;  (** register-pressure lever the case used *)
  violations : Oracle.violation list;
}

type stats = {
  cases : int;
  schedulable : int;  (** cases where the driver produced a schedule *)
  spilled : int;  (** schedulable cases that needed spill code *)
  unschedulable : int;
  failures : failure list;  (** in case order *)
}

val run : ?on_case:(int -> unit) -> seed:int64 -> cases:int -> unit -> stats
(** Runs [cases] independent cases.  [on_case] (default ignore) is
    called with each finished case index — a progress hook. *)

val reproducer : failure -> string
(** A self-contained textual reproducer: the loop source plus comment
    lines naming the machine point and the replay command. *)

val summary : stats -> string
(** One line: case counts and failure count. *)

(** {2 Backend differential mode}

    Seeded small loops scheduled by both the heuristic and the exact
    backend, every discrepancy triaged: [exact < heuristic] with both
    schedules passing the independent oracle is a logged optimality gap
    (a lead on heuristic quality, not a bug); a heuristic or exact
    schedule failing the oracle, an exact II above the heuristic's, or
    an exact II below the MII is a bug.  No wall budgets are involved,
    so a case replays bit-identically from (seed, index). *)

type diff_case = {
  dcase : int;
  dloop : Wr_ir.Loop.t;
  dconfig : Wr_machine.Config.t;
  dcycle_model : Wr_machine.Cycle_model.t;
  dmii : int;
  dheur_ii : int;
  dexact_ii : int;
  dstatus : Wr_sched.Exact.status;
  dbugs : string list;  (** empty for a clean case or a pure gap lead *)
}

type diff_stats = {
  dcases : int;
  dagreed : int;  (** equal II, both valid *)
  dproved : int;  (** cases where the exact backend proved optimality *)
  dtimeouts : int;  (** exact search exhausted its node budget *)
  dgaps : diff_case list;  (** exact beat the heuristic; logged leads *)
  dbug_cases : diff_case list;
}

val run_backend_diff :
  ?on_case:(int -> unit) ->
  ?max_nodes:int ->
  seed:int64 ->
  cases:int ->
  unit ->
  diff_stats
(** [max_nodes] (default 400_000) bounds each exact II attempt. *)

val diff_reproducer : diff_case -> string

val diff_summary : diff_stats -> string
