module Rng = Wr_util.Rng
module Loop = Wr_ir.Loop
module Text_format = Wr_ir.Text_format
module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Generator = Wr_workload.Generator

type failure = {
  case : int;
  loop : Loop.t;
  config : Config.t;
  cycle_model : Cycle_model.t;
  registers : int;
  policy : Wr_regalloc.Driver.policy;
  violations : Oracle.violation list;
}

type stats = {
  cases : int;
  schedulable : int;
  spilled : int;
  unschedulable : int;
  failures : failure list;
}

(* Generator parameter variants: the default suite mix plus corners
   that stress specific pipeline paths — strided streams defeat
   compaction, recurrences bound the II from below, unpipelined
   operations stress the occupancy bookkeeping, big bodies stress the
   allocator. *)
let param_variants =
  let d = Generator.default in
  [|
    d;
    { d with Generator.stride1_prob = 0.6 };
    { d with Generator.reduction_prob = 0.20; chain_prob = 0.10 };
    { d with Generator.div_prob = 0.12; sqrt_prob = 0.05 };
    { d with Generator.statements_mean = 6.0; statements_max = 20 };
    (* Fused multiply-adds exercise the 3-operand paths in the
       interpreter, compaction census, and schedulers. *)
    { d with Generator.fma_prob = 0.30 };
  |]

(* The paper's XwY grid up to factor 8, crossed below with register
   files down to a deliberately starved 16 entries so spilling and the
   unschedulable fallback both occur. *)
let shapes = [| (1, 1); (2, 1); (1, 2); (4, 1); (2, 2); (1, 4); (8, 1); (4, 2); (2, 4); (1, 8) |]

let register_files = [| 16; 32; 64; 128; 256 |]

let run ?(on_case = fun (_ : int) -> ()) ~seed ~cases () =
  let master = Rng.create ~seed in
  let schedulable = ref 0 and spilled = ref 0 and unschedulable = ref 0 in
  let failures = ref [] in
  for case = 0 to cases - 1 do
    (* One split stream per case: a case's draw count never perturbs
       the next case, so any failure replays from (seed, index). *)
    let rng = Rng.split master in
    let params = Rng.choose rng param_variants in
    let loop = Generator.generate_one rng params ~index:case in
    let x, y = Rng.choose rng shapes in
    let registers = Rng.choose rng register_files in
    let config = Config.xwy ~registers ~x ~y () in
    let cycle_model = Rng.choose rng [| Cycle_model.Cycles_1; Cycles_2; Cycles_3; Cycles_4 |] in
    (* Bias toward Spill_only: the combined driver usually prefers II
       escalation, which would leave the spill oracle idle. *)
    let policy =
      Rng.choose_weighted rng
        [|
          (Wr_regalloc.Driver.Combined, 0.4);
          (Wr_regalloc.Driver.Spill_only, 0.4);
          (Wr_regalloc.Driver.Escalate_only, 0.2);
        |]
    in
    let report = Oracle.check_point config ~cycle_model ~registers ~policy loop in
    if report.Oracle.schedulable then begin
      incr schedulable;
      if report.Oracle.spilled then incr spilled
    end
    else incr unschedulable;
    if report.Oracle.violations <> [] then
      failures :=
        { case; loop; config; cycle_model; registers; policy;
          violations = report.Oracle.violations }
        :: !failures;
    on_case case
  done;
  {
    cases;
    schedulable = !schedulable;
    spilled = !spilled;
    unschedulable = !unschedulable;
    failures = List.rev !failures;
  }

let reproducer f =
  let source =
    (* Generator loops are source-level and print; guard anyway so a
       reporting path never masks the underlying failure. *)
    match Text_format.print f.loop with
    | s -> s
    | exception Invalid_argument _ ->
        Printf.sprintf "# loop %s is not representable in the text format\n"
          f.loop.Loop.name
  in
  String.concat "\n"
    [
      Printf.sprintf "# fuzz case %d: %s, %s, %d registers" f.case (Config.label f.config)
        (Cycle_model.to_string f.cycle_model)
        f.registers;
      Printf.sprintf "# replay: widening-cli check repro.wr -c '%s' --cycles %d --policy %s"
        (Config.label f.config)
        (Cycle_model.cycles f.cycle_model)
        (match f.policy with
        | Wr_regalloc.Driver.Combined -> "combined"
        | Wr_regalloc.Driver.Spill_only -> "spill"
        | Wr_regalloc.Driver.Escalate_only -> "escalate");
      Printf.sprintf "# violations:";
      String.concat "\n"
        (List.map (fun v -> Printf.sprintf "#   [%s] %s" v.Oracle.oracle v.Oracle.detail)
           f.violations);
      source;
    ]

let summary s =
  Printf.sprintf
    "fuzz: %d cases — %d schedulable (%d with spill code), %d unschedulable, %d oracle \
     failure(s)"
    s.cases s.schedulable s.spilled s.unschedulable (List.length s.failures)
