module Rng = Wr_util.Rng
module Loop = Wr_ir.Loop
module Text_format = Wr_ir.Text_format
module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Generator = Wr_workload.Generator

type failure = {
  case : int;
  loop : Loop.t;
  config : Config.t;
  cycle_model : Cycle_model.t;
  registers : int;
  policy : Wr_regalloc.Driver.policy;
  violations : Oracle.violation list;
}

type stats = {
  cases : int;
  schedulable : int;
  spilled : int;
  unschedulable : int;
  failures : failure list;
}

(* Generator parameter variants: the default suite mix plus corners
   that stress specific pipeline paths — strided streams defeat
   compaction, recurrences bound the II from below, unpipelined
   operations stress the occupancy bookkeeping, big bodies stress the
   allocator. *)
let param_variants =
  let d = Generator.default in
  [|
    d;
    { d with Generator.stride1_prob = 0.6 };
    { d with Generator.reduction_prob = 0.20; chain_prob = 0.10 };
    { d with Generator.div_prob = 0.12; sqrt_prob = 0.05 };
    { d with Generator.statements_mean = 6.0; statements_max = 20 };
    (* Fused multiply-adds exercise the 3-operand paths in the
       interpreter, compaction census, and schedulers. *)
    { d with Generator.fma_prob = 0.30 };
  |]

(* The paper's XwY grid up to factor 8, crossed below with register
   files down to a deliberately starved 16 entries so spilling and the
   unschedulable fallback both occur. *)
let shapes = [| (1, 1); (2, 1); (1, 2); (4, 1); (2, 2); (1, 4); (8, 1); (4, 2); (2, 4); (1, 8) |]

let register_files = [| 16; 32; 64; 128; 256 |]

let run ?(on_case = fun (_ : int) -> ()) ~seed ~cases () =
  let master = Rng.create ~seed in
  let schedulable = ref 0 and spilled = ref 0 and unschedulable = ref 0 in
  let failures = ref [] in
  for case = 0 to cases - 1 do
    (* One split stream per case: a case's draw count never perturbs
       the next case, so any failure replays from (seed, index). *)
    let rng = Rng.split master in
    let params = Rng.choose rng param_variants in
    let loop = Generator.generate_one rng params ~index:case in
    let x, y = Rng.choose rng shapes in
    let registers = Rng.choose rng register_files in
    let config = Config.xwy ~registers ~x ~y () in
    let cycle_model = Rng.choose rng [| Cycle_model.Cycles_1; Cycles_2; Cycles_3; Cycles_4 |] in
    (* Bias toward Spill_only: the combined driver usually prefers II
       escalation, which would leave the spill oracle idle. *)
    let policy =
      Rng.choose_weighted rng
        [|
          (Wr_regalloc.Driver.Combined, 0.4);
          (Wr_regalloc.Driver.Spill_only, 0.4);
          (Wr_regalloc.Driver.Escalate_only, 0.2);
        |]
    in
    let report = Oracle.check_point config ~cycle_model ~registers ~policy loop in
    if report.Oracle.schedulable then begin
      incr schedulable;
      if report.Oracle.spilled then incr spilled
    end
    else incr unschedulable;
    if report.Oracle.violations <> [] then
      failures :=
        { case; loop; config; cycle_model; registers; policy;
          violations = report.Oracle.violations }
        :: !failures;
    on_case case
  done;
  {
    cases;
    schedulable = !schedulable;
    spilled = !spilled;
    unschedulable = !unschedulable;
    failures = List.rev !failures;
  }

(* ------------------------------------------------------------------ *)
(* Backend differential mode: heuristic vs exact scheduler.            *)

type diff_case = {
  dcase : int;
  dloop : Loop.t;
  dconfig : Config.t;
  dcycle_model : Cycle_model.t;
  dmii : int;
  dheur_ii : int;
  dexact_ii : int;
  dstatus : Wr_sched.Exact.status;
  dbugs : string list;  (** empty for a clean case or a pure gap lead *)
}

type diff_stats = {
  dcases : int;
  dagreed : int;
  dproved : int;
  dtimeouts : int;
  dgaps : diff_case list;  (** exact < heuristic with both schedules valid *)
  dbug_cases : diff_case list;  (** ordering or validity violations: bugs *)
}

(* Small bodies: the exact search must be effectively exhaustive for a
   discrepancy to mean anything, and small graphs are where refutation
   completes within the node budget. *)
let diff_params =
  let d = Generator.default in
  [|
    { d with Generator.statements_mean = 1.5; statements_max = 4 };
    { d with Generator.statements_mean = 2.0; statements_max = 5; reduction_prob = 0.25;
      chain_prob = 0.15 };
    { d with Generator.statements_mean = 1.5; statements_max = 4; div_prob = 0.15;
      sqrt_prob = 0.08 };
    { d with Generator.statements_mean = 2.0; statements_max = 5; stride1_prob = 0.6 };
  |]

let diff_shapes = [| (1, 1); (2, 1); (1, 2); (2, 2); (4, 1); (1, 4) |]

let run_backend_diff ?(on_case = fun (_ : int) -> ()) ?(max_nodes = 400_000) ~seed ~cases () =
  let master = Rng.create ~seed in
  let agreed = ref 0 and proved = ref 0 and timeouts = ref 0 in
  let gaps = ref [] and bug_cases = ref [] in
  for case = 0 to cases - 1 do
    let rng = Rng.split master in
    let params = Rng.choose rng diff_params in
    let loop = Generator.generate_one rng params ~index:case in
    let x, y = Rng.choose rng diff_shapes in
    let config = Config.xwy ~x ~y () in
    let cycle_model = Rng.choose rng [| Cycle_model.Cycles_1; Cycles_2; Cycles_3; Cycles_4 |] in
    let wide, _ = Wr_widen.Transform.widen loop ~width:y in
    let ddg = wide.Loop.ddg in
    let resource = Wr_machine.Resource.of_config config in
    let heur = Wr_sched.Modulo.run resource ~cycle_model ddg in
    (* No wall budget: the node budget alone decides, so every case
       replays bit-identically from (seed, index). *)
    let exact = Wr_sched.Exact.solve resource ~cycle_model ~max_nodes ~base:heur ddg in
    let heur_ii = heur.Wr_sched.Modulo.schedule.Wr_sched.Schedule.ii in
    let exact_ii = exact.Wr_sched.Exact.ii in
    let bugs = ref [] in
    let oracle_check name s =
      match Oracle.check_schedule ddg resource s with
      | [] -> ()
      | vs ->
          bugs :=
            Printf.sprintf "%s schedule fails the independent oracle: %s" name
              (Oracle.to_string vs)
            :: !bugs
    in
    oracle_check "heuristic" heur.Wr_sched.Modulo.schedule;
    oracle_check "exact" exact.Wr_sched.Exact.schedule;
    if exact_ii > heur_ii then
      bugs :=
        Printf.sprintf "exact backend regressed the II (%d > heuristic %d)" exact_ii heur_ii
        :: !bugs;
    if exact_ii < exact.Wr_sched.Exact.mii then
      bugs :=
        Printf.sprintf "exact II %d below the MII %d — the MII bound or the search is wrong"
          exact_ii exact.Wr_sched.Exact.mii
        :: !bugs;
    let entry =
      {
        dcase = case;
        dloop = loop;
        dconfig = config;
        dcycle_model = cycle_model;
        dmii = exact.Wr_sched.Exact.mii;
        dheur_ii = heur_ii;
        dexact_ii = exact_ii;
        dstatus = exact.Wr_sched.Exact.status;
        dbugs = List.rev !bugs;
      }
    in
    if entry.dbugs <> [] then bug_cases := entry :: !bug_cases
    else if exact_ii < heur_ii then gaps := entry :: !gaps
    else incr agreed;
    (match exact.Wr_sched.Exact.status with
    | Wr_sched.Exact.Proved_optimal -> incr proved
    | Wr_sched.Exact.Fallback -> incr timeouts
    | Wr_sched.Exact.Feasible_unproved -> ());
    on_case case
  done;
  {
    dcases = cases;
    dagreed = !agreed;
    dproved = !proved;
    dtimeouts = !timeouts;
    dgaps = List.rev !gaps;
    dbug_cases = List.rev !bug_cases;
  }

let diff_reproducer d =
  let source =
    match Text_format.print d.dloop with
    | s -> s
    | exception Invalid_argument _ ->
        Printf.sprintf "# loop %s is not representable in the text format\n"
          d.dloop.Loop.name
  in
  String.concat "\n"
    [
      Printf.sprintf "# backend-diff case %d: %s, %s — mii %d, heuristic II %d, exact II %d (%s)"
        d.dcase (Config.label d.dconfig)
        (Cycle_model.to_string d.dcycle_model)
        d.dmii d.dheur_ii d.dexact_ii
        (match d.dstatus with
        | Wr_sched.Exact.Proved_optimal -> "proved optimal"
        | Wr_sched.Exact.Feasible_unproved -> "improved, unproved"
        | Wr_sched.Exact.Fallback -> "timeout");
      (match d.dbugs with
      | [] -> "# optimality gap (logged lead, not a bug)"
      | bugs -> String.concat "\n" (List.map (fun b -> "# BUG: " ^ b) bugs));
      source;
    ]

let diff_summary s =
  Printf.sprintf
    "backend-diff: %d cases — %d agreed, %d optimality gap(s) (exact beat the heuristic), \
     %d proved optimal, %d exact-search timeout(s), %d bug(s)"
    s.dcases s.dagreed (List.length s.dgaps) s.dproved s.dtimeouts
    (List.length s.dbug_cases)

let reproducer f =
  let source =
    (* Generator loops are source-level and print; guard anyway so a
       reporting path never masks the underlying failure. *)
    match Text_format.print f.loop with
    | s -> s
    | exception Invalid_argument _ ->
        Printf.sprintf "# loop %s is not representable in the text format\n"
          f.loop.Loop.name
  in
  String.concat "\n"
    [
      Printf.sprintf "# fuzz case %d: %s, %s, %d registers" f.case (Config.label f.config)
        (Cycle_model.to_string f.cycle_model)
        f.registers;
      Printf.sprintf "# replay: widening-cli check repro.wr -c '%s' --cycles %d --policy %s"
        (Config.label f.config)
        (Cycle_model.cycles f.cycle_model)
        (match f.policy with
        | Wr_regalloc.Driver.Combined -> "combined"
        | Wr_regalloc.Driver.Spill_only -> "spill"
        | Wr_regalloc.Driver.Escalate_only -> "escalate");
      Printf.sprintf "# violations:";
      String.concat "\n"
        (List.map (fun v -> Printf.sprintf "#   [%s] %s" v.Oracle.oracle v.Oracle.detail)
           f.violations);
      source;
    ]

let summary s =
  Printf.sprintf
    "fuzz: %d cases — %d schedulable (%d with spill code), %d unschedulable, %d oracle \
     failure(s)"
    s.cases s.schedulable s.spilled s.unschedulable (List.length s.failures)
