module Ddg = Wr_ir.Ddg
module Dependence = Wr_ir.Dependence
module Operation = Wr_ir.Operation
module Opcode = Wr_ir.Opcode
module Memref = Wr_ir.Memref
module Loop = Wr_ir.Loop
module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Resource = Wr_machine.Resource
module Schedule = Wr_sched.Schedule
module Lifetime = Wr_regalloc.Lifetime
module Alloc = Wr_regalloc.Alloc
module Driver = Wr_regalloc.Driver
module Compact = Wr_widen.Compact
module Transform = Wr_widen.Transform
module Interp = Wr_vliw.Interp

type violation = { oracle : string; detail : string }

let pp_violation fmt v = Format.fprintf fmt "[%s] %s" v.oracle v.detail

let to_string vs =
  String.concat "\n" (List.map (fun v -> Printf.sprintf "[%s] %s" v.oracle v.detail) vs)

exception Violation of string

let fail_if_any ~context = function
  | [] -> ()
  | vs ->
      raise
        (Violation
           (Printf.sprintf "%d oracle violation(s) in %s:\n%s" (List.length vs) context
              (to_string vs)))

(* Accumulator: oracles push violations in discovery order.  Top-level
   so each call site gets its own format type. *)
let add buf oracle fmt =
  Printf.ksprintf (fun detail -> buf := { oracle; detail } :: !buf) fmt

let class_name = function Opcode.Bus -> "bus" | Opcode.Fpu -> "FPU"

(* --- schedule oracle --------------------------------------------------- *)

let check_schedule g resource (s : Schedule.t) =
  let buf = ref [] in
  let n = Ddg.num_ops g in
  let ii = s.Schedule.ii in
  if Array.length s.Schedule.times <> n then
    add buf "schedule.shape" "schedule has %d times for %d operations"
      (Array.length s.Schedule.times) n
  else begin
    let times = s.Schedule.times in
    (* Every dependence, straight off the canonical edge list — never
       the scheduler's flat edge view, which is exactly the structure
       under test. *)
    List.iter
      (fun (e : Dependence.t) ->
        let producer = Ddg.op g e.Dependence.src in
        let delay =
          Dependence.delay_rule e.Dependence.kind
            ~producer_latency:
              (Cycle_model.latency_of_op s.Schedule.cycle_model
                 producer.Operation.opcode)
        in
        let slack =
          times.(e.Dependence.dst) - times.(e.Dependence.src) - delay
          + (ii * e.Dependence.distance)
        in
        if slack < 0 then
          add buf "schedule.dependence"
            "%s edge op%d@%d -> op%d@%d violated by %d cycle(s) (delay %d, distance \
             %d, II %d)"
            (Dependence.kind_to_string e.Dependence.kind)
            e.Dependence.src
            times.(e.Dependence.src)
            e.Dependence.dst
            times.(e.Dependence.dst)
            (-slack) delay e.Dependence.distance ii)
      (Ddg.edges g);
    (* Re-derive the reservation table the slow way: one increment per
       occupied modulo slot per operation, O(II) each — the reference
       the O(occupancy) windowed Mrt must agree with. *)
    let check_class cls =
      let capacity = Resource.slots resource cls in
      let usage = Array.make ii 0 in
      Array.iter
        (fun (o : Operation.t) ->
          if Opcode.resource_class o.Operation.opcode = cls then begin
            let occ = Cycle_model.occupancy s.Schedule.cycle_model o.Operation.opcode in
            let start = ((times.(o.Operation.id) mod ii) + ii) mod ii in
            for k = 0 to occ - 1 do
              let slot = (start + k) mod ii in
              usage.(slot) <- usage.(slot) + 1
            done
          end)
        (Ddg.ops g);
      Array.iteri
        (fun slot used ->
          if used > capacity then
            add buf "schedule.resource"
              "kernel slot %d uses %d %s slot(s) of %d available (II %d)" slot used
              (class_name cls) capacity ii)
        usage
    in
    check_class Opcode.Bus;
    check_class Opcode.Fpu
  end;
  List.rev !buf

(* --- regalloc oracle --------------------------------------------------- *)

let check_alloc g (s : Schedule.t) (alloc : Alloc.t) ~available =
  let buf = ref [] in
  let ii = s.Schedule.ii in
  if alloc.Alloc.ii <> ii then
    add buf "alloc.shape" "allocation computed at II %d for a schedule at II %d"
      alloc.Alloc.ii ii;
  let lifetimes = Lifetime.of_schedule g s in
  let by_vreg = Hashtbl.create 64 in
  List.iter
    (fun (a : Alloc.assignment) -> Hashtbl.replace by_vreg a.Alloc.vreg a)
    alloc.Alloc.assignments;
  if List.length alloc.Alloc.assignments <> List.length lifetimes then
    add buf "alloc.shape" "%d assignments for %d lifetimes"
      (List.length alloc.Alloc.assignments)
      (List.length lifetimes);
  (* Replay every residual arc onto an explicit ring per register. *)
  let rings : (int, int array) Hashtbl.t = Hashtbl.create 16 in
  let whole_total = ref 0 in
  List.iter
    (fun (lt : Lifetime.t) ->
      match Hashtbl.find_opt by_vreg lt.Lifetime.vreg with
      | None -> add buf "alloc.coverage" "vreg %d has a lifetime but no assignment" lt.Lifetime.vreg
      | Some a ->
          let len = Lifetime.length lt in
          let whole = len / ii and rem = len mod ii in
          whole_total := !whole_total + whole;
          if a.Alloc.whole_registers <> whole then
            add buf "alloc.whole"
              "vreg %d: lifetime length %d at II %d needs %d whole register(s), \
               assignment says %d"
              lt.Lifetime.vreg len ii whole a.Alloc.whole_registers;
          if rem = 0 then begin
            if a.Alloc.register >= 0 then
              add buf "alloc.arc"
                "vreg %d has no residual arc (length %d divides II %d) but occupies \
                 register %d"
                lt.Lifetime.vreg len ii a.Alloc.register
          end
          else if a.Alloc.register < 0 then
            add buf "alloc.arc"
              "vreg %d has a residual arc of %d slot(s) but no register" lt.Lifetime.vreg
              rem
          else begin
            let ring =
              match Hashtbl.find_opt rings a.Alloc.register with
              | Some r -> r
              | None ->
                  let r = Array.make ii 0 in
                  Hashtbl.add rings a.Alloc.register r;
                  r
            in
            let start = ((lt.Lifetime.start mod ii) + ii) mod ii in
            for k = 0 to rem - 1 do
              let slot = (start + k) mod ii in
              ring.(slot) <- ring.(slot) + 1;
              if ring.(slot) = 2 then
                add buf "alloc.overlap"
                  "register %d is claimed twice at kernel slot %d (vreg %d overlaps an \
                   earlier arc, wraparound included)"
                  a.Alloc.register slot lt.Lifetime.vreg
            done
          end)
    lifetimes;
  let distinct_arc_registers = Hashtbl.length rings in
  if alloc.Alloc.required <> !whole_total + distinct_arc_registers then
    add buf "alloc.required"
      "reported requirement %d, but re-count gives %d whole + %d arc register(s) = %d"
      alloc.Alloc.required !whole_total distinct_arc_registers
      (!whole_total + distinct_arc_registers);
  let max_lives = Lifetime.max_lives ~ii lifetimes in
  if alloc.Alloc.max_lives <> max_lives then
    add buf "alloc.maxlives" "reported MaxLives %d, recomputed %d" alloc.Alloc.max_lives
      max_lives;
  if alloc.Alloc.required < max_lives then
    add buf "alloc.maxlives"
      "requirement %d below MaxLives %d — impossible for a correct allocation"
      alloc.Alloc.required max_lives;
  (match available with
  | None -> ()
  | Some file ->
      if max_lives > file then
        add buf "alloc.file" "MaxLives %d exceeds the %d-register file after allocation"
          max_lives file;
      if alloc.Alloc.required > file then
        add buf "alloc.file" "allocation requires %d registers of %d available"
          alloc.Alloc.required file);
  List.rev !buf

(* --- widening oracle --------------------------------------------------- *)

let interp_guard ~oracle buf f =
  match f () with
  | v -> Some v
  | exception Invalid_argument msg ->
      add buf oracle "reference interpreter rejected the graph: %s" msg;
      None

let show_diffs diffs =
  String.concat ", "
    (List.map
       (fun ((a, addr), l, r) ->
         let v = function Some x -> Printf.sprintf "%h" x | None -> "unwritten" in
         Printf.sprintf "A%d[%d]: %s vs %s" a addr (v l) (v r))
       (List.filteri (fun i _ -> i < 3) diffs))

(* Run through a pre-compiled plan when the caller has one (Evaluate
   caches them per loop so a verified study compiles once per loop, not
   once per machine point); compile on the fly otherwise. *)
let interp_run ?plan ~iterations loop =
  match plan with
  | Some p -> Interp.run_plan ~iterations p
  | None -> Interp.run ~iterations loop

let check_widening ?original_plan ?widened_plan ~original ~widened ~width () =
  if width = 1 then []
  else begin
    let buf = ref [] in
    let analysis = Compact.analyze ~width original.Loop.ddg in
    let gw = widened.Loop.ddg in
    (* Per-opcode census: every compactable original must appear as one
       wide op of its own opcode (compacted groups are same-opcode by
       construction — the census would catch a mixed group), everything
       else as [width] scalar copies. *)
    let census = Hashtbl.create 8 in
    let bump tbl key by =
      Hashtbl.replace tbl key (by + Option.value ~default:0 (Hashtbl.find_opt tbl key))
    in
    Array.iteri
      (fun i compactable ->
        let opc = (Ddg.op original.Loop.ddg i).Operation.opcode in
        bump census (opc, compactable) 1)
      analysis.Compact.compactable;
    let seen = Hashtbl.create 8 in
    let rec_ops = Ddg.recurrence_ops gw in
    Array.iter
      (fun (o : Operation.t) ->
        let lanes = o.Operation.lanes in
        if lanes <> 1 && lanes <> width then
          add buf "widening.lanes" "op%d has %d lanes in a width-%d loop" o.Operation.id
            lanes width
        else begin
          bump seen (o.Operation.opcode, lanes = width) 1;
          if lanes = width then begin
            if rec_ops.(o.Operation.id) then
              add buf "widening.independence"
                "wide op%d (%s) sits on a dependence recurrence — its lanes cannot be \
                 pairwise independent"
                o.Operation.id
                (Opcode.to_string o.Operation.opcode);
            match o.Operation.mem with
            | Some m when m.Memref.stride <> width ->
                add buf "widening.stride"
                  "wide memory op%d has stride %d; a compacted stride-1 access must \
                   widen to stride %d"
                  o.Operation.id m.Memref.stride width
            | _ -> ()
          end
        end)
      (Ddg.ops gw);
    Hashtbl.iter
      (fun (opc, compactable) count ->
        let expected = if compactable then count else count * width in
        let got = Option.value ~default:0 (Hashtbl.find_opt seen (opc, compactable)) in
        if got <> expected then
          add buf "widening.census"
            "%d original %s op(s) (%s) should yield %d %s op(s), widened body has %d"
            count (Opcode.to_string opc)
            (if compactable then "compactable" else "not compactable")
            expected
            (if compactable then "wide" else "scalar")
            got)
      census;
    let expected_trip = (original.Loop.trip_count + width - 1) / width in
    if widened.Loop.trip_count <> expected_trip then
      add buf "widening.trip" "trip count %d should divide to %d at width %d, loop says %d"
        original.Loop.trip_count expected_trip width widened.Loop.trip_count;
    (* Semantic equivalence: k wide iterations replay k*width source
       iterations bit-exactly (the transform never reassociates). *)
    let k = 3 in
    (match
       ( interp_guard ~oracle:"widening.interp" buf (fun () ->
             interp_run ?plan:original_plan ~iterations:(k * width) original),
         interp_guard ~oracle:"widening.interp" buf (fun () ->
             interp_run ?plan:widened_plan ~iterations:k widened) )
     with
    | Some a, Some b ->
        if not (Interp.equal_memory a b) then
          add buf "widening.semantics"
            "memory images diverge after %d source iterations: %s" (k * width)
            (show_diffs (Interp.diff_memory a b));
        if (a.Interp.loads, a.Interp.stores, a.Interp.flops)
           <> (b.Interp.loads, b.Interp.stores, b.Interp.flops)
        then
          add buf "widening.work"
            "scalar work diverges: original %d/%d/%d loads/stores/flops, widened \
             %d/%d/%d"
            a.Interp.loads a.Interp.stores a.Interp.flops b.Interp.loads b.Interp.stores
            b.Interp.flops
    | _ -> ());
    List.rev !buf
  end

(* --- spill/semantics oracle -------------------------------------------- *)

let check_spill ?pre_plan ~pre ~post ?(iterations = 8) () =
  let buf = ref [] in
  let post_loop =
    Loop.make
      ~name:(pre.Loop.name ^ "/spilled")
      ~ddg:post ~trip_count:pre.Loop.trip_count ~weight:pre.Loop.weight ()
  in
  (* The spilled graph is unique to this machine point, so its plan is
     compiled fresh; only the pre-spill side can reuse a cached plan. *)
  (match
     ( interp_guard ~oracle:"spill.interp" buf (fun () ->
           interp_run ?plan:pre_plan ~iterations pre),
       interp_guard ~oracle:"spill.interp" buf (fun () ->
           Interp.run ~iterations post_loop) )
   with
  | Some a, Some b ->
      (* Spill slots live in fresh arrays; the program-visible image is
         the original's arrays only. *)
      let visible = Interp.arrays_of pre in
      let b = Interp.restrict b ~arrays:visible in
      if not (Interp.equal_memory a b) then
        add buf "spill.semantics"
          "memory images diverge after %d iterations (visible arrays only): %s"
          iterations
          (show_diffs (Interp.diff_memory a b));
      if a.Interp.flops <> b.Interp.flops then
        add buf "spill.work" "spilling changed the arithmetic: %d flops before, %d after"
          a.Interp.flops b.Interp.flops
  | _ -> ());
  List.rev !buf

(* --- composite oracles ------------------------------------------------- *)

let check_driver ?pre_plan resource ~registers ~pre outcome =
  match outcome with
  | Driver.Unschedulable _ -> []
  | Driver.Scheduled s ->
      let vs = check_schedule s.Driver.graph resource s.Driver.schedule in
      let vs =
        vs
        @ check_alloc s.Driver.graph s.Driver.schedule s.Driver.alloc
            ~available:(Some registers)
      in
      if s.Driver.stores_added > 0 || s.Driver.loads_added > 0 then
        vs @ check_spill ?pre_plan ~pre ~post:s.Driver.graph ()
      else vs

type point_report = {
  violations : violation list;
  schedulable : bool;
  spilled : bool;
  ii : int option;
}

let check_point (c : Config.t) ~cycle_model ~registers ?(policy = Driver.Combined) loop =
  let widened, _stats = Transform.widen loop ~width:c.Config.width in
  let wv = check_widening ~original:loop ~widened ~width:c.Config.width () in
  let resource = Resource.of_config c in
  let outcome = Driver.run resource ~cycle_model ~registers ~policy widened.Loop.ddg in
  let dv = check_driver resource ~registers ~pre:widened outcome in
  match outcome with
  | Driver.Scheduled s ->
      {
        violations = wv @ dv;
        schedulable = true;
        spilled = s.Driver.stores_added > 0 || s.Driver.loads_added > 0;
        ii = Some s.Driver.schedule.Schedule.ii;
      }
  | Driver.Unschedulable _ ->
      { violations = wv @ dv; schedulable = false; spilled = false; ii = None }
