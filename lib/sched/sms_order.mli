(** Swing Modulo Scheduling node ordering (Llosa, González, Ayguadé &
    Valero, PACT'96) — the lifetime-sensitive ordering by the paper's
    own authors.

    The ordering guarantees that every node (except the first of each
    connected region) is placed adjacent to an already-ordered
    neighbour, and alternates sweep direction ("swings") so producers
    and consumers end up close in the final schedule — short lifetimes,
    hence low register pressure, without backtracking:

    {ul
    {- recurrence groups are ordered first, most critical (highest
       RecMII) first;}
    {- within a region the next node is taken from the unordered
       predecessors (bottom-up swing) or successors (top-down swing) of
       the ordered set: top-down picks the lowest ALAP (ties: higher
       mobility), bottom-up the highest ASAP (ties: higher mobility);}
    {- when one side is exhausted the direction swings.}} *)

val compute :
  cycle_model:Wr_machine.Cycle_model.t -> Wr_ir.Ddg.t -> ii:int -> int array
(** The order in which the scheduler should place operations
    (a permutation of [0 .. n-1]); [ii] is the MII the ASAP/ALAP times
    are computed at. *)
