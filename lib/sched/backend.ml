module Resource = Wr_machine.Resource
module Cycle_model = Wr_machine.Cycle_model
module Ddg = Wr_ir.Ddg
module Pool = Wr_util.Pool
module Env = Wr_util.Env

type kind = Heuristic | Exact | Portfolio

let to_string = function
  | Heuristic -> "heuristic"
  | Exact -> "exact"
  | Portfolio -> "portfolio"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "heuristic" | "hrms" -> Some Heuristic
  | "exact" | "bnb" -> Some Exact
  | "portfolio" | "race" -> Some Portfolio
  | _ -> None

let all = [ Heuristic; Exact; Portfolio ]

(* Selection is process-global (studies fan points out over the pool;
   a per-call parameter would have to thread through every driver) and
   atomic so a CLI/env race with worker domains reads a whole value. *)
let current_kind : kind Atomic.t =
  let initial =
    match Sys.getenv_opt "WR_SCHED_BACKEND" with
    | None | Some "" -> Heuristic
    | Some s -> (
        match of_string s with
        | Some k -> k
        | None ->
            Env.warn_invalid ~name:"WR_SCHED_BACKEND" ~value:s
              ~expected:"heuristic|exact|portfolio" ~default:"heuristic";
            Heuristic)
  in
  Atomic.make initial

let set k = Atomic.set current_kind k
let current () = Atomic.get current_kind

(* --- per-point tally ---------------------------------------------------- *)

type tally = {
  mutable runs : int;
  mutable evictions : int;
  mutable solves : int;
  mutable proved : int;
  mutable unproved : int;
  mutable fallback : int;
  mutable nodes : int;
  mutable iis_refuted : int;
}

let empty_tally () =
  {
    runs = 0;
    evictions = 0;
    solves = 0;
    proved = 0;
    unproved = 0;
    fallback = 0;
    nodes = 0;
    iis_refuted = 0;
  }

(* The tally is domain-local (a point's whole pipeline — probes,
   escalation, spill rescheduling — runs on one domain), with a
   process-wide active count so the disabled mode pays one atomic load
   per [run].  Save/restore makes nesting safe: a domain that
   work-helps another point's task mid-portfolio records into that
   task's own tally and then comes back. *)
let active_tallies = Atomic.make 0

let tally_slot : tally option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let with_tally f =
  let t = empty_tally () in
  let slot = Domain.DLS.get tally_slot in
  let saved = !slot in
  slot := Some t;
  Atomic.incr active_tallies;
  let restore () =
    Atomic.decr active_tallies;
    slot := saved
  in
  match f () with
  | v ->
      restore ();
      (v, t)
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      restore ();
      Printexc.raise_with_backtrace e bt

let note f =
  if Atomic.get active_tallies > 0 then
    match !(Domain.DLS.get tally_slot) with Some t -> f t | None -> ()

let note_sched t (r : Modulo.result) =
  t.runs <- t.runs + 1;
  t.evictions <- t.evictions + r.Modulo.evictions

let note_exact t (r : Exact.t) =
  t.solves <- t.solves + 1;
  (match r.Exact.status with
  | Exact.Proved_optimal -> t.proved <- t.proved + 1
  | Exact.Feasible_unproved -> t.unproved <- t.unproved + 1
  | Exact.Fallback -> t.fallback <- t.fallback + 1);
  t.nodes <- t.nodes + r.Exact.nodes;
  t.iis_refuted <- t.iis_refuted + r.Exact.iis_refuted

(* Exact-lane budgets when the exact backend runs inside the study
   pipeline (as opposed to the gap study, which passes its own): small
   enough that a pathological refutation cannot stall a point, large
   enough to catch the common one-II improvements. *)
let exact_max_nodes = 200_000
let exact_budget_ms = 50

let refined (r : Exact.t) : Modulo.result =
  { r.base with Modulo.schedule = r.schedule }

let run resource ~cycle_model ?budget_ratio ?min_ii ?max_ii ?ordering g =
  match Atomic.get current_kind with
  | Heuristic ->
      (* The default: a verbatim heuristic call, so every study CSV is
         byte-identical to the pre-seam pipeline. *)
      let r = Modulo.run resource ~cycle_model ?budget_ratio ?min_ii ?max_ii ?ordering g in
      note (fun t -> note_sched t r);
      r
  | Exact ->
      let base = Modulo.run resource ~cycle_model ?budget_ratio ?min_ii ?max_ii ?ordering g in
      let e =
        Exact.solve resource ~cycle_model ~max_nodes:exact_max_nodes
          ~budget_ms:exact_budget_ms ?min_ii ?max_ii ~base g
      in
      note (fun t ->
          note_sched t base;
          note_exact t e);
      refined e
  | Portfolio ->
      (* Race both lanes on the pool: the heuristic answers fast, the
         exact lane refines or confirms when it finishes inside its
         budget.  The merge is value-deterministic — the exact result
         is taken only when it strictly beats the heuristic II, and
         ties keep the heuristic schedule. *)
      let lanes =
        Pool.parallel_list_map [ `H; `E ] ~f:(fun lane ->
            match lane with
            | `H ->
                `H (Modulo.run resource ~cycle_model ?budget_ratio ?min_ii ?max_ii ?ordering g)
            | `E ->
                `E
                  (Exact.solve resource ~cycle_model ~max_nodes:exact_max_nodes
                     ~budget_ms:exact_budget_ms ?min_ii ?max_ii g))
      in
      let heur = List.find_map (function `H r -> Some r | _ -> None) lanes in
      let exact = List.find_map (function `E r -> Some r | _ -> None) lanes in
      let heur = Option.get heur and exact = Option.get exact in
      (* Lanes ran on pool domains; the tally is noted here on the
         calling domain, where the point's tally slot lives. *)
      note (fun t ->
          note_sched t heur;
          note_exact t exact);
      if
        exact.Exact.status <> Exact.Fallback
        && exact.Exact.schedule.Schedule.ii < heur.Modulo.schedule.Schedule.ii
      then { heur with Modulo.schedule = exact.Exact.schedule }
      else heur
