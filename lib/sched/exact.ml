module Ddg = Wr_ir.Ddg
module Dependence = Wr_ir.Dependence
module Operation = Wr_ir.Operation
module Opcode = Wr_ir.Opcode
module Cycle_model = Wr_machine.Cycle_model
module Resource = Wr_machine.Resource
module Obs = Wr_obs.Obs

type outcome = Feasible of Schedule.t | Infeasible | Gave_up

type status = Proved_optimal | Feasible_unproved | Fallback

type t = {
  base : Modulo.result;
  schedule : Schedule.t;
  ii : int;
  mii : int;
  status : status;
  nodes : int;
  iis_refuted : int;
}

exception Out_of_budget

let neg_inf = min_int / 4

(* The scratch matrix must be at least n x n; rows are reset here, so a
   caller (solve/min_ii) can hand the same buffer to every II attempt
   instead of paying an O(n^2) allocation per retry. *)
let path_matrix ?scratch n =
  match scratch with
  | Some m when Array.length m >= n && (n = 0 || Array.length m.(0) >= n) ->
      for i = 0 to n - 1 do
        Array.fill m.(i) 0 n neg_inf
      done;
      m
  | _ -> Array.make_matrix n n neg_inf

(* Exhaustive branch-and-bound search for a modulo schedule at exactly
   [ii], following the SMT-paper encoding (per-op start time, pairwise
   dependence inequalities [t_dst - t_src >= delay - II*distance],
   modulo resource constraints) but solved by backtracking over the
   CSR edge view and the MRT instead of an external solver.

   Soundness of [Infeasible] (this is what optimality proofs rest on):
   each weakly-connected component's first operation ("anchor") ranges
   over [0, II-1] — any schedule can be shifted per-component so this
   holds.  Every other operation ranges over its full transitive
   dependence window intersected with the box [anchor +/- B], where
   B = (n+1) * (max_delay + II).  If a schedule exists at this II, one
   exists inside that box: take a solution minimising the sum of start
   times with the component non-negative; any operation at t >= II
   whose time dropped by II would stay resource-identical, so it must
   be dependence-blocked within (max_delay + II) of some predecessor,
   and chaining that argument from an operation below II bounds every
   start time by n * (max_delay + II).  Re-anchoring shifts by at most
   that again, hence the box.  Enumerating every in-box, in-window slot
   with backtracking is therefore exhaustive: [Infeasible] is a proof,
   [Gave_up] (node budget or [stop ()]) is not. *)
let at_ii resource ~cycle_model ~ii ?(max_nodes = 200_000)
    ?(stop = fun () -> false) ?scratch ?(nodes_out = ref 0) g =
  let n = Ddg.num_ops g in
  if n = 0 then Feasible (Schedule.make ~ii ~times:[||] ~cycle_model)
  else begin
    (* Assignment order: critical recurrences, then height — the same
       priority the heuristic uses, which keeps windows tight early. *)
    let critical = Mii.critical_recurrence_ops ~cycle_model g ~ii:(Mii.rec_mii ~cycle_model g) in
    let h = Modulo.heights ~cycle_model g ~ii in
    let priority = Array.init n (fun i -> i) in
    Array.sort
      (fun a b ->
        match compare critical.(b) critical.(a) with
        | 0 -> ( match compare h.(b) h.(a) with 0 -> compare a b | c -> c)
        | c -> c)
      priority;
    (* Traverse each weakly-connected component contiguously (BFS over
       undirected adjacency from the highest-priority seed): every
       operation after a component's anchor has an assigned neighbour,
       and only anchors may pin a fresh [0, II-1] region. *)
    let order = Array.make n 0 in
    let anchor = Array.make n false in
    let visited = Array.make n false in
    let pos = ref 0 in
    let neighbours v =
      List.map (fun (e : Dependence.t) -> e.dst) (Ddg.succs g v)
      @ List.map (fun (e : Dependence.t) -> e.src) (Ddg.preds g v)
    in
    Array.iter
      (fun seed ->
        if not visited.(seed) then begin
          let queue = Queue.create () in
          Queue.add seed queue;
          visited.(seed) <- true;
          anchor.(seed) <- true;
          while not (Queue.is_empty queue) do
            let v = Queue.pop queue in
            order.(!pos) <- v;
            incr pos;
            List.iter
              (fun w ->
                if not visited.(w) then begin
                  visited.(w) <- true;
                  Queue.add w queue
                end)
              (neighbours v)
          done
        end)
      priority;
    let time = Array.make n (-1) in
    let assigned = Array.make n false in
    let mrt = Mrt.create ~ii resource in
    let nodes = nodes_out in
    let start_nodes = !nodes in
    let cls i = Opcode.resource_class (Ddg.op g i).Operation.opcode in
    let occ i = Cycle_model.occupancy cycle_model (Ddg.op g i).Operation.opcode in
    (* All-pairs longest dependence paths at this II (max-plus
       Floyd-Warshall over weights [delay - II*distance]; no positive
       cycles at II >= RecMII).  Windows below use the TRANSITIVE
       bounds — an operation's window accounts for chains through
       still-unassigned intermediates, which direct-neighbour bounds
       miss. *)
    let path = path_matrix ?scratch n in
    for v = 0 to n - 1 do
      path.(v).(v) <- 0
    done;
    let view = Ddg.edge_view g in
    let delays = Mii.edge_delays ~cycle_model g in
    let max_delay = Array.fold_left Stdlib.max 1 delays in
    (* The completeness box (see the header comment). *)
    let box = (n + 1) * (max_delay + ii) in
    for e = 0 to view.Ddg.n_edges - 1 do
      let w = delays.(e) - (ii * view.Ddg.e_dist.(e)) in
      if w > path.(view.Ddg.e_src.(e)).(view.Ddg.e_dst.(e)) then
        path.(view.Ddg.e_src.(e)).(view.Ddg.e_dst.(e)) <- w
    done;
    for k = 0 to n - 1 do
      for i = 0 to n - 1 do
        if path.(i).(k) > neg_inf then
          for j = 0 to n - 1 do
            if path.(k).(j) > neg_inf && path.(i).(k) + path.(k).(j) > path.(i).(j) then
              path.(i).(j) <- path.(i).(k) + path.(k).(j)
          done
      done
    done;
    (* Window of [op] given the assigned set: times may go negative (a
       producer assigned after its consumer sits below it); the final
       schedule is shifted to non-negative.  A component anchor pins
       [0, II-1].  In the clipped pass every other operation's window
       is narrowed to II consecutive slots — all residues mod II, a
       fast heuristic-complete probe for feasibility.  In the proving
       pass it keeps its full dependence window clamped to the
       completeness box, which is what makes a refutation sound. *)
    let window ~clip op =
      let lo = ref None and hi = ref None in
      for v = 0 to n - 1 do
        if assigned.(v) then begin
          if path.(v).(op) > neg_inf then
            lo :=
              Some
                (Stdlib.max (Option.value ~default:min_int !lo) (time.(v) + path.(v).(op)));
          if path.(op).(v) > neg_inf then
            hi :=
              Some
                (Stdlib.min (Option.value ~default:max_int !hi) (time.(v) - path.(op).(v)))
        end
      done;
      if anchor.(op) then (0, ii - 1)
      else if clip then
        match (!lo, !hi) with
        | None, None -> (0, ii - 1)
        | Some lo, None -> (lo, lo + ii - 1)
        | None, Some hi -> (hi - ii + 1, hi)
        | Some lo, Some hi -> (lo, Stdlib.min hi (lo + ii - 1))
      else
        (Stdlib.max (Option.value ~default:(-box) !lo) (-box),
         Stdlib.min (Option.value ~default:box !hi) box)
    in
    (* Prune tallies live in plain refs (the search loop pays one
       local increment) and are flushed to [Obs] once per at_ii call:
       [prune_resource] counts slots rejected by the MRT,
       [prune_window] counts operations whose dependence window came
       up empty, [prune_backtrack] counts exhausted windows that undid
       a placement. *)
    let prune_resource = ref 0 in
    let prune_window = ref 0 in
    let prune_backtrack = ref 0 in
    let ran_phase2 = ref false in
    let attempt ~clip =
      Array.fill time 0 n (-1);
      Array.fill assigned 0 n false;
      Mrt.reset mrt ~ii;
      let rec assign k =
        if k = n then true
        else begin
          let op = order.(k) in
          let lo, hi = window ~clip op in
          if lo > hi then incr prune_window;
          let rec try_time t =
            if t > hi then begin
              if k > 0 then incr prune_backtrack;
              false
            end
            else begin
              incr nodes;
              if !nodes - start_nodes > max_nodes then raise Out_of_budget;
              if (!nodes - start_nodes) land 1023 = 0 && stop () then raise Out_of_budget;
              if Mrt.can_place mrt (cls op) ~time:t ~occupancy:(occ op) then begin
                Mrt.place mrt (cls op) ~time:t ~occupancy:(occ op);
                time.(op) <- t;
                assigned.(op) <- true;
                if assign (k + 1) then true
                else begin
                  Mrt.remove mrt (cls op) ~time:t ~occupancy:(occ op);
                  assigned.(op) <- false;
                  try_time (t + 1)
                end
              end
              else begin
                incr prune_resource;
                try_time (t + 1)
              end
            end
          in
          try_time lo
        end
      in
      assign 0
    in
    (* Two passes sharing one node budget: the clipped probe finds
       feasible schedules as fast as the historical search did; only
       when it comes back empty does the exhaustive pass run, turning
       "not found" into a proof (or, rarely, finding a schedule the
       clipped windows missed). *)
    let search () =
      if attempt ~clip:true then true
      else begin
        ran_phase2 := true;
        attempt ~clip:false
      end
    in
    let flush outcome_counter =
      if Obs.enabled () then begin
        Obs.incr "search/at_ii";
        Obs.add "search/nodes" (!nodes - start_nodes);
        Obs.observe_clamped "search/nodes_per_attempt" ~top:1024 (!nodes - start_nodes);
        Obs.incr "search/phase1_probes";
        if !ran_phase2 then Obs.incr "search/phase2_probes";
        Obs.add "search/prune_resource" !prune_resource;
        Obs.add "search/prune_window" !prune_window;
        Obs.add "search/prune_backtrack" !prune_backtrack;
        Obs.incr outcome_counter
      end
    in
    match search () with
    | exception Out_of_budget ->
        flush "search/gave_up";
        Gave_up
    | false ->
        flush "search/infeasible";
        Infeasible
    | true -> (
        flush "search/feasible";
        (* Normalize to non-negative times: a uniform shift preserves
           dependences and rotates the reservation table consistently. *)
        let lowest = Array.fold_left Stdlib.min time.(0) time in
        let shift = if lowest < 0 then -lowest else 0 in
        let time = Array.map (fun t -> t + shift) time in
        let schedule = Schedule.make ~ii ~times:time ~cycle_model in
        match Schedule.validate g resource schedule with
        | Ok () -> Feasible schedule
        | Error msg -> failwith ("Exact.at_ii: produced an invalid schedule: " ^ msg))
  end

let min_ii resource ~cycle_model ?max_nodes g =
  let mii = Mii.mii resource ~cycle_model g in
  (* One scratch path matrix shared by all (up to 32) II attempts. *)
  let n = Ddg.num_ops g in
  let scratch = Array.make_matrix n n neg_inf in
  let rec go ii attempts_left =
    (* Scheduler-attempt boundary: each at_ii call is already bounded
       by max_nodes, so a wall-clock budget only needs to fire between
       attempts. *)
    Wr_util.Deadline.check ();
    if attempts_left = 0 then None
    else
      match at_ii resource ~cycle_model ~ii ?max_nodes ~scratch g with
      | Feasible s -> Some (ii, s)
      | Infeasible | Gave_up -> go (ii + 1) (attempts_left - 1)
  in
  let r = Obs.span "search/min_ii" (fun () -> go mii 32) in
  if Obs.enabled () then begin
    Obs.incr "search/runs";
    match r with
    | Some (ii, _) -> Obs.observe "search/ii_minus_mii" (ii - mii)
    | None -> Obs.incr "search/exhausted"
  end;
  r

(* Refinement driver: the heuristic result is both the upper bound and
   the fallback payload.  The exact search only ever has to decide the
   IIs in [mii, heuristic_ii - 1]; refuting all of them proves the
   heuristic optimal, finding a schedule at one of them improves it. *)
let solve resource ~cycle_model ?(max_nodes = 200_000) ?budget_ms ?min_ii:minimum
    ?max_ii ?base g =
  Obs.span "exact/solve" @@ fun () ->
  let base =
    match base with
    | Some b -> b
    | None -> Modulo.run resource ~cycle_model ?min_ii:minimum ?max_ii g
  in
  let n = Ddg.num_ops g in
  let hii = base.Modulo.schedule.Schedule.ii in
  let mii =
    if n = 0 then hii
    else Stdlib.max (Mii.mii resource ~cycle_model g) (Option.value minimum ~default:1)
  in
  let finish status schedule ii nodes iis_refuted =
    if Obs.enabled () then begin
      Obs.add "exact/nodes" nodes;
      Obs.observe_clamped "exact/nodes_per_solve" ~top:1024 nodes;
      Obs.incr
        (match status with
        | Proved_optimal -> "exact/proved"
        | Feasible_unproved -> "exact/feasible"
        | Fallback -> "exact/fallback");
      if ii < hii then Obs.incr "exact/improved";
      Obs.observe "exact/gap" (hii - ii)
    end;
    { base; schedule; ii; mii; status; nodes; iis_refuted }
  in
  if n = 0 || hii <= mii then finish Proved_optimal base.Modulo.schedule hii 0 0
  else begin
    let deadline_ns =
      Option.map (fun ms -> Obs.now_ns () + (ms * 1_000_000)) budget_ms
    in
    let stop =
      match deadline_ns with
      | None -> fun () -> false
      (* >= so a zero budget expires at the very first poll even when
         the clock has not ticked past the capture instant — the
         budget-expired fallback must be deterministic. *)
      | Some d -> fun () -> Obs.now_ns () >= d
    in
    let scratch = Array.make_matrix n n neg_inf in
    let nodes = ref 0 in
    let rec go ii all_refuted =
      (* Global supervision budget still fires at II boundaries; the
         local [stop] budget is what bounds the exact search itself. *)
      Wr_util.Deadline.check ();
      if ii >= hii then
        if all_refuted then
          (* Every II below the heuristic's refuted: proved optimal. *)
          finish Proved_optimal base.Modulo.schedule hii !nodes (hii - mii)
        else finish Fallback base.Modulo.schedule hii !nodes 0
      else if stop () then finish Fallback base.Modulo.schedule hii !nodes 0
      else
        match at_ii resource ~cycle_model ~ii ~max_nodes ~stop ~scratch ~nodes_out:nodes g with
        | Feasible s ->
            finish
              (if all_refuted then Proved_optimal else Feasible_unproved)
              s ii !nodes (ii - mii)
        | Infeasible -> go (ii + 1) all_refuted
        | Gave_up -> go (ii + 1) false
    in
    go mii true
  end
