(** Iterative modulo scheduling (Rau, MICRO-27) with an HRMS-flavoured
    placement rule.

    For each candidate II starting at the MII, the scheduler repeatedly
    picks the highest-priority unscheduled operation (priority: nodes
    on the most critical recurrences first, then greater height — the
    Hypernode Reduction ordering principle of scheduling an operation
    next to its already-placed neighbours), computes its legal window
    from already-scheduled predecessors and successors, and places it:

    {ul
    {- with scheduled successors but no scheduled predecessors it is
       placed as late as possible (next to its consumers);}
    {- otherwise as early as possible (next to its producers) —
       both rules shorten lifetimes, which is what makes the heuristic
       register-pressure sensitive;}
    {- when no slot in the window has a free resource, it is {e forced}
       in, evicting the operations that conflict; evicted operations
       return to the work queue.  A budget bounds total placements; on
       exhaustion the scheduler retries with II + 1.}} *)

type result = {
  schedule : Schedule.t;
  mii : int;
  res_mii : int;
  rec_mii : int;
  placements : int;  (** total placement steps over all II attempts *)
  evictions : int;  (** operations evicted back to the queue, all attempts *)
}

val run :
  Wr_machine.Resource.t ->
  cycle_model:Wr_machine.Cycle_model.t ->
  ?budget_ratio:int ->
  ?min_ii:int ->
  ?max_ii:int ->
  ?ordering:[ `Ims | `Sms ] ->
  Wr_ir.Ddg.t ->
  result
(** Schedules the graph.  [budget_ratio] (default 8) bounds placements
    per II attempt at [budget_ratio * num_ops].  [min_ii] forces the
    search to start above the MII — the register-pressure reduction
    lever of Llosa's register-constrained heuristics (slowing the loop
    down shrinks the number of concurrently live iterations).  [max_ii] defaults to a
    generous bound (total resource occupancy plus total dependence
    delay) at which scheduling always succeeds; if even that fails,
    raises [Failure] (indicates a bug rather than an unschedulable
    input, since every graph accepted by {!Wr_ir.Ddg.create} has a
    valid schedule).  [ordering] picks the priority order: [`Ims]
    (default, critical-recurrence/height) or [`Sms]
    ({!Sms_order}). *)

val empty_schedule : cycle_model:Wr_machine.Cycle_model.t -> Schedule.t
(** Schedule of the empty graph (II = 1). *)

val heights : cycle_model:Wr_machine.Cycle_model.t -> Wr_ir.Ddg.t -> ii:int -> int array
(** The scheduler's priority heights at a given II: the least fixpoint
    of [h(v) = max(0, max over out-edges (delay - II*distance + h(dst)))].
    Exposed for the tests that cross-check the flat-edge kernels against
    the reference list traversal. *)
