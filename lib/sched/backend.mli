(** Scheduler backend seam.

    Every pipeline consumer (the register-allocation driver, the
    unschedulable fallback in [Core.Evaluate], the CLI schedule
    command) requests schedules through {!run} instead of calling
    {!Modulo.run} directly, so the scheduler implementation is
    swappable per process:

    {ul
    {- [Heuristic] (default) — the HRMS-flavoured iterative modulo
       scheduler, a verbatim {!Modulo.run} call: study output is
       byte-identical to the pre-seam pipeline;}
    {- [Exact] — heuristic first, then {!Exact.solve} refines it or
       proves it optimal within a node + wall budget, falling back to
       the heuristic result on expiry;}
    {- [Portfolio] — both lanes race on {!Wr_util.Pool}; the exact
       result wins only when it strictly beats the heuristic II.}}

    Selection: {!set} (wired to [--backend] in the CLIs) or the
    [WR_SCHED_BACKEND] environment variable
    ([heuristic|exact|portfolio], malformed values warn once and keep
    the default). *)

type kind = Heuristic | Exact | Portfolio

val to_string : kind -> string

val of_string : string -> kind option
(** Accepts the canonical names plus the [hrms]/[bnb]/[race] aliases,
    case-insensitively. *)

val all : kind list

val set : kind -> unit
val current : unit -> kind

(** {1 Per-point tally}

    Provenance capture needs per-point backend statistics (how many
    schedule requests a point made, how the exact lane fared), and the
    dependency arrow points from [Core] to this library — so the
    accumulator lives here.  {!with_tally} installs a domain-local
    tally for the dynamic extent of one point's evaluation; every
    {!run} in that extent adds to it.  Nesting is safe (save/restore),
    and the disabled mode costs {!run} one atomic load. *)

type tally = {
  mutable runs : int;  (** {!run} calls (heuristic or portfolio-merged) *)
  mutable evictions : int;  (** scheduler evictions summed over runs *)
  mutable solves : int;  (** exact-lane solves *)
  mutable proved : int;  (** ... that proved the heuristic optimal *)
  mutable unproved : int;  (** ... that improved without a proof *)
  mutable fallback : int;  (** ... that expired their budget *)
  mutable nodes : int;  (** exact search nodes summed over solves *)
  mutable iis_refuted : int;  (** IIs refuted below the heuristic's *)
}

val empty_tally : unit -> tally
(** An all-zero tally (also what an untallied context would report). *)

val with_tally : (unit -> 'a) -> 'a * tally
(** [with_tally f] runs [f] with a fresh tally installed on the
    calling domain and returns [f]'s result alongside the filled
    tally.  Portfolio lanes run on pool domains, but their outcome is
    noted on the calling domain after the merge, so the tally is
    complete when [f] returns. *)

val run :
  Wr_machine.Resource.t ->
  cycle_model:Wr_machine.Cycle_model.t ->
  ?budget_ratio:int ->
  ?min_ii:int ->
  ?max_ii:int ->
  ?ordering:[ `Ims | `Sms ] ->
  Wr_ir.Ddg.t ->
  Modulo.result
(** Schedule through the selected backend.  The signature (and with
    the default backend, the behaviour) is exactly {!Modulo.run}'s;
    non-default backends only ever substitute a schedule with an II no
    worse than the heuristic's, so downstream II-monotonicity
    assumptions hold for every backend. *)
