(** Scheduler backend seam.

    Every pipeline consumer (the register-allocation driver, the
    unschedulable fallback in [Core.Evaluate], the CLI schedule
    command) requests schedules through {!run} instead of calling
    {!Modulo.run} directly, so the scheduler implementation is
    swappable per process:

    {ul
    {- [Heuristic] (default) — the HRMS-flavoured iterative modulo
       scheduler, a verbatim {!Modulo.run} call: study output is
       byte-identical to the pre-seam pipeline;}
    {- [Exact] — heuristic first, then {!Exact.solve} refines it or
       proves it optimal within a node + wall budget, falling back to
       the heuristic result on expiry;}
    {- [Portfolio] — both lanes race on {!Wr_util.Pool}; the exact
       result wins only when it strictly beats the heuristic II.}}

    Selection: {!set} (wired to [--backend] in the CLIs) or the
    [WR_SCHED_BACKEND] environment variable
    ([heuristic|exact|portfolio], malformed values warn once and keep
    the default). *)

type kind = Heuristic | Exact | Portfolio

val to_string : kind -> string

val of_string : string -> kind option
(** Accepts the canonical names plus the [hrms]/[bnb]/[race] aliases,
    case-insensitively. *)

val all : kind list

val set : kind -> unit
val current : unit -> kind

val run :
  Wr_machine.Resource.t ->
  cycle_model:Wr_machine.Cycle_model.t ->
  ?budget_ratio:int ->
  ?min_ii:int ->
  ?max_ii:int ->
  ?ordering:[ `Ims | `Sms ] ->
  Wr_ir.Ddg.t ->
  Modulo.result
(** Schedule through the selected backend.  The signature (and with
    the default backend, the behaviour) is exactly {!Modulo.run}'s;
    non-default backends only ever substitute a schedule with an II no
    worse than the heuristic's, so downstream II-monotonicity
    assumptions hold for every backend. *)
