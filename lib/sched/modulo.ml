module Ddg = Wr_ir.Ddg
module Dependence = Wr_ir.Dependence
module Operation = Wr_ir.Operation
module Opcode = Wr_ir.Opcode
module Cycle_model = Wr_machine.Cycle_model
module Resource = Wr_machine.Resource

type result = {
  schedule : Schedule.t;
  mii : int;
  res_mii : int;
  rec_mii : int;
  placements : int;
}

let empty_schedule ~cycle_model = Schedule.make ~ii:1 ~times:[||] ~cycle_model

let delay ~cycle_model g (e : Dependence.t) =
  let src = Ddg.op g e.src in
  Dependence.delay_rule e.kind
    ~producer_latency:(Cycle_model.latency_of_op cycle_model src.Operation.opcode)

(* height(v): longest weighted path out of v at the given II; the
   classic IMS priority.  Weights [delay - II * distance] admit no
   positive cycle once II >= RecMII, so value iteration converges in at
   most n passes. *)
let heights ~cycle_model g ~ii =
  let n = Ddg.num_ops g in
  let h = Array.make n 0 in
  let changed = ref true in
  let pass = ref 0 in
  while !changed && !pass <= n do
    changed := false;
    List.iter
      (fun (e : Dependence.t) ->
        let w = delay ~cycle_model g e - (ii * e.distance) in
        if w + h.(e.dst) > h.(e.src) then begin
          h.(e.src) <- w + h.(e.dst);
          changed := true
        end)
      (Ddg.edges g);
    incr pass
  done;
  h

(* One scheduling attempt at a fixed II.  Returns the times array and
   the number of placements used, or None on budget exhaustion. *)
let attempt resource ~cycle_model g ~ii ~critical ~budget ~ordering =
  let n = Ddg.num_ops g in
  let h = heights ~cycle_model g ~ii in
  let mrt = Mrt.create ~ii resource in
  let time = Array.make n (-1) in
  let prev_time = Array.make n (-1) in
  let scheduled = Array.make n false in
  let num_scheduled = ref 0 in
  let placements = ref 0 in
  let cls i = Opcode.resource_class (Ddg.op g i).Operation.opcode in
  let occ i = Cycle_model.occupancy cycle_model (Ddg.op g i).Operation.opcode in
  (* Static priority order.  IMS: critical recurrences first, then
     greater height, then lower id for determinism.  SMS: the
     lifetime-sensitive swing order.  A cursor walks the order;
     evictions rewind it, so pick() is O(1) amortized instead of a
     linear scan per placement. *)
  let order =
    match ordering with
    | `Sms -> Sms_order.compute ~cycle_model g ~ii
    | `Ims ->
        let order = Array.init n (fun i -> i) in
        Array.sort
          (fun a b ->
            match compare critical.(b) critical.(a) with
            | 0 -> ( match compare h.(b) h.(a) with 0 -> compare a b | c -> c)
            | c -> c)
          order;
        order
  in
  let position = Array.make n 0 in
  Array.iteri (fun pos i -> position.(i) <- pos) order;
  let cursor = ref 0 in
  let unschedule q =
    Mrt.remove mrt (cls q) ~time:time.(q) ~occupancy:(occ q);
    scheduled.(q) <- false;
    decr num_scheduled;
    if position.(q) < !cursor then cursor := position.(q)
  in
  let pick () =
    while !cursor < n && scheduled.(order.(!cursor)) do
      incr cursor
    done;
    order.(!cursor)
  in
  let estart op =
    List.fold_left
      (fun acc (e : Dependence.t) ->
        if e.src <> op && scheduled.(e.src) then
          Stdlib.max acc (time.(e.src) + delay ~cycle_model g e - (ii * e.distance))
        else acc)
      0 (Ddg.preds g op)
  in
  let lend op =
    List.fold_left
      (fun acc (e : Dependence.t) ->
        if e.dst <> op && scheduled.(e.dst) then
          let bound = time.(e.dst) - delay ~cycle_model g e + (ii * e.distance) in
          match acc with None -> Some bound | Some b -> Some (Stdlib.min b bound)
        else acc)
      None (Ddg.succs g op)
  in
  let try_place op t =
    if t < 0 then false
    else if Mrt.can_place mrt (cls op) ~time:t ~occupancy:(occ op) then begin
      Mrt.place mrt (cls op) ~time:t ~occupancy:(occ op);
      time.(op) <- t;
      prev_time.(op) <- t;
      scheduled.(op) <- true;
      incr num_scheduled;
      true
    end
    else false
  in
  (* After placing [op] at [t], unschedule any scheduled successor the
     placement pushed out of legality (Rau's eviction rule). *)
  let evict_violated_succs op t =
    List.iter
      (fun (e : Dependence.t) ->
        if e.dst <> op && scheduled.(e.dst) then
          if time.(e.dst) < t + delay ~cycle_model g e - (ii * e.distance) then
            unschedule e.dst)
      (Ddg.succs g op)
  in
  let force op t =
    (* Evict same-class operations until the slot frees up, then any
       scheduled successor whose constraint the new placement breaks. *)
    let t = Stdlib.max t 0 in
    let evictable = ref [] in
    for q = 0 to n - 1 do
      if q <> op && scheduled.(q) && cls q = cls op then evictable := q :: !evictable
    done;
    (* Evict lower-priority victims first. *)
    let victims =
      List.sort (fun a b -> compare (critical.(a), h.(a)) (critical.(b), h.(b))) !evictable
    in
    let rec evict = function
      | [] -> ()
      | q :: rest ->
          if not (Mrt.can_place mrt (cls op) ~time:t ~occupancy:(occ op)) then begin
            unschedule q;
            evict rest
          end
      in
    evict victims;
    if not (try_place op t) then
      (* Should be impossible: with every same-class op evicted the
         table is empty for this class. *)
      failwith "Modulo.force: could not place after full eviction";
    evict_violated_succs op t
  in
  let debug = Sys.getenv_opt "WR_SCHED_DEBUG" <> None in
  let per_op = if debug then Array.make n 0 else [||] in
  let ok = ref true in
  while !ok && !num_scheduled < n do
    if !placements >= budget then begin
      if debug then begin
        Printf.eprintf "[sched] II=%d budget out: %d/%d scheduled after %d placements\n%!" ii
          !num_scheduled n !placements;
        let hot = Array.mapi (fun i c -> (c, i)) per_op in
        Array.sort (fun a b -> compare b a) hot;
        Array.iteri
          (fun k (c, i) ->
            if k < 6 && c > 0 then
              Printf.eprintf "  hot op%d: %d placements, %s, time=%d h=%d crit=%b\n%!" i c
                (Operation.to_string (Ddg.op g i))
                time.(i) h.(i) critical.(i))
          hot
      end;
      ok := false
    end
    else begin
      incr placements;
      let op = pick () in
      if debug then per_op.(op) <- per_op.(op) + 1;
      let lo = estart op in
      let has_sched_pred =
        List.exists (fun (e : Dependence.t) -> e.src <> op && scheduled.(e.src)) (Ddg.preds g op)
      in
      (* Preferred window respects scheduled successors (keeps
         lifetimes short, HRMS-style); if it has no free slot, fall
         back to Rau's full [Estart, Estart+II-1] resource scan and
         evict the successors the placement invalidates — without this
         fallback, an op whose consumers sit early can only creep
         forward one slot per visit and the budget drains without
         progress.  Forcing is the last resort. *)
      let fallback () =
        let hi = lo + ii - 1 in
        let rec up t = if t > hi then None else if try_place op t then Some t else up (t + 1) in
        match up lo with
        | Some t -> evict_violated_succs op t
        | None ->
            force op (if prev_time.(op) >= 0 then Stdlib.max lo (prev_time.(op) + 1) else lo)
      in
      (match lend op with
      | Some hi when not has_sched_pred ->
          (* Only consumers are placed: sit as close below them as
             possible (ALAP) to shorten the produced lifetime. *)
          let lo' = Stdlib.max lo (hi - ii + 1) in
          let rec down t = if t < lo' then None else if try_place op t then Some () else down (t - 1) in
          (match down hi with Some () -> () | None -> fallback ())
      | maybe_hi ->
          let hi =
            match maybe_hi with
            | Some h_bound -> Stdlib.min h_bound (lo + ii - 1)
            | None -> lo + ii - 1
          in
          let rec up t = if t > hi then None else if try_place op t then Some () else up (t + 1) in
          (match up lo with Some () -> () | None -> fallback ()))
    end
  done;
  if !ok then Some (time, !placements) else None

let run resource ~cycle_model ?(budget_ratio = 8) ?(min_ii = 1) ?max_ii ?(ordering = `Ims) g =
  let n = Ddg.num_ops g in
  let res_mii = Mii.res_mii resource ~cycle_model g in
  let rec_mii = Mii.rec_mii ~cycle_model g in
  let mii = Stdlib.max res_mii rec_mii in
  if min_ii < 1 then invalid_arg "Modulo.run: min_ii must be positive";
  if n = 0 then
    { schedule = empty_schedule ~cycle_model; mii = 1; res_mii; rec_mii; placements = 0 }
  else begin
    let default_max =
      let bus, fpu = Resource.total_slot_demand resource ~cycle_model g in
      let total_delay =
        List.fold_left (fun acc e -> acc + delay ~cycle_model g e) 0 (Ddg.edges g)
      in
      bus + fpu + total_delay + Stdlib.max mii min_ii + 1
    in
    let max_ii = match max_ii with Some m -> m | None -> default_max in
    let critical = Mii.critical_recurrence_ops ~cycle_model g ~ii:rec_mii in
    let budget = Stdlib.max 32 (budget_ratio * n) in
    let total_placements = ref 0 in
    let rec loop ii =
      if ii > max_ii then
        failwith
          (Printf.sprintf "Modulo.run: no schedule found up to II=%d (%d ops)" max_ii n)
      else
        (* The swing order has no backtracking discipline of its own;
           if it cannot close a schedule near the MII, fall back to the
           eviction-hardened IMS priority for the larger IIs. *)
        let ordering = if ordering = `Sms && ii > mii + 4 then `Ims else ordering in
        match attempt resource ~cycle_model g ~ii ~critical ~budget ~ordering with
        | Some (times, p) ->
            total_placements := !total_placements + p;
            let schedule = Schedule.make ~ii ~times ~cycle_model in
            (match Schedule.validate g resource schedule with
            | Ok () -> schedule
            | Error msg -> failwith ("Modulo.run: invalid schedule produced: " ^ msg))
        | None ->
            total_placements := !total_placements + budget;
            loop (ii + 1)
    in
    let schedule = loop (Stdlib.max mii min_ii) in
    { schedule; mii; res_mii; rec_mii; placements = !total_placements }
  end
