module Ddg = Wr_ir.Ddg
module Operation = Wr_ir.Operation
module Opcode = Wr_ir.Opcode
module Cycle_model = Wr_machine.Cycle_model
module Resource = Wr_machine.Resource
module Obs = Wr_obs.Obs

type result = {
  schedule : Schedule.t;
  mii : int;
  res_mii : int;
  rec_mii : int;
  placements : int;
  evictions : int;
}

let empty_schedule ~cycle_model = Schedule.make ~ii:1 ~times:[||] ~cycle_model

(* WR_SCHED_DEBUG follows the same warn-once-on-invalid discipline as
   WR_JOBS / WR_VERIFY (Wr_util.Env); forced lazily so a process that
   never schedules pays nothing and the warning lands at most once. *)
let sched_debug = lazy (Wr_util.Env.bool "WR_SCHED_DEBUG" ~default:false)

(* height(v): longest weighted path out of v at the given II; the
   classic IMS priority.  Weights [delay - II * distance] admit no
   positive cycle once II >= RecMII, so upward value iteration from
   zero converges to the least fixpoint in at most n passes. *)
let cold_heights (view : Ddg.edge_view) delays ~ii ~n h =
  Array.fill h 0 n 0;
  let changed = ref true in
  let pass = ref 0 in
  while !changed && !pass <= n do
    changed := false;
    for e = 0 to view.Ddg.n_edges - 1 do
      let w = delays.(e) - (ii * view.Ddg.e_dist.(e)) in
      if w + h.(view.Ddg.e_dst.(e)) > h.(view.Ddg.e_src.(e)) then begin
        h.(view.Ddg.e_src.(e)) <- w + h.(view.Ddg.e_dst.(e));
        changed := true
      end
    done;
    incr pass
  done

let heights ~cycle_model g ~ii =
  let n = Ddg.num_ops g in
  let h = Array.make n 0 in
  cold_heights (Ddg.edge_view g) (Mii.edge_delays ~cycle_model g) ~ii ~n h;
  h

(* Reusable per-run working set: the II-escalation loop re-arms these
   buffers instead of allocating a fresh set per attempt. *)
type scratch = {
  n : int;
  h : int array;
  mutable h_ii : int;  (* II the heights currently describe; -1 = none *)
  time : int array;
  prev_time : int array;
  scheduled : bool array;
  order : int array;
  position : int array;
  op_cls : Opcode.resource_class array;
  op_occ : int array;
  mrt : Mrt.t;
}

let make_scratch resource ~cycle_model g =
  let n = Ddg.num_ops g in
  let ops = Ddg.ops g in
  {
    n;
    h = Array.make n 0;
    h_ii = -1;
    time = Array.make n (-1);
    prev_time = Array.make n (-1);
    scheduled = Array.make n false;
    order = Array.init n (fun i -> i);
    position = Array.make n 0;
    op_cls =
      Array.map (fun (o : Operation.t) -> Opcode.resource_class o.Operation.opcode) ops;
    op_occ =
      Array.map
        (fun (o : Operation.t) -> Cycle_model.occupancy cycle_model o.Operation.opcode)
        ops;
    mrt = Mrt.create ~ii:1 resource;
  }

(* Bring [s.h] to the heights for [ii].  When the scratch already holds
   the heights of a smaller II and [ii > rec_mii], warm-start instead of
   recomputing from zero: larger II means smaller edge weights, so the
   previous fixpoint h0 satisfies F(h0) <= h0, and Gauss-Seidel
   per-node recomputation from it decreases monotonically to the
   fixpoint — which is unique above RecMII (every cycle weight is
   strictly negative), hence exactly the cold-start least fixpoint.
   The pass cap is a safety net only; on hitting it we recompute cold,
   so the result never depends on the warm path converging. *)
let heights_into (view : Ddg.edge_view) delays ~ii ~rec_mii s =
  if s.h_ii <> ii then begin
    let n = s.n and h = s.h in
    let warm = s.h_ii >= 0 && s.h_ii < ii && ii > rec_mii in
    let converged = ref false in
    if warm then begin
      let changed = ref true in
      let pass = ref 0 in
      while !changed && !pass <= n do
        changed := false;
        for v = 0 to n - 1 do
          let nh = ref 0 in
          for k = view.Ddg.succ_off.(v) to view.Ddg.succ_off.(v + 1) - 1 do
            let e = view.Ddg.succ_edges.(k) in
            let c = delays.(e) - (ii * view.Ddg.e_dist.(e)) + h.(view.Ddg.e_dst.(e)) in
            if c > !nh then nh := c
          done;
          if !nh <> h.(v) then begin
            h.(v) <- !nh;
            changed := true
          end
        done;
        incr pass
      done;
      converged := not !changed
    end;
    if not !converged then cold_heights view delays ~ii ~n h;
    s.h_ii <- ii
  end

(* One scheduling attempt at a fixed II.  Returns the times array and
   the number of placements used, or None on budget exhaustion. *)
let attempt ~cycle_model g ~view ~delays ~ii ~rec_mii ~critical ~budget ~ordering s =
  let n = s.n in
  heights_into view delays ~ii ~rec_mii s;
  let h = s.h in
  Mrt.reset s.mrt ~ii;
  let mrt = s.mrt in
  let time = s.time
  and prev_time = s.prev_time
  and scheduled = s.scheduled
  and op_cls = s.op_cls
  and op_occ = s.op_occ in
  Array.fill time 0 n (-1);
  Array.fill prev_time 0 n (-1);
  Array.fill scheduled 0 n false;
  let num_scheduled = ref 0 in
  let placements = ref 0 in
  (* Telemetry tallies are kept in plain refs and flushed once per
     attempt, so the placement loop pays nothing for them. *)
  let evictions = ref 0 in
  let forces = ref 0 in
  (* Static priority order.  IMS: critical recurrences first, then
     greater height, then lower id for determinism.  SMS: the
     lifetime-sensitive swing order.  A cursor walks the order;
     evictions rewind it, so pick() is O(1) amortized instead of a
     linear scan per placement. *)
  let order = s.order in
  (match ordering with
  | `Sms -> Array.blit (Sms_order.compute ~cycle_model g ~ii) 0 order 0 n
  | `Ims ->
      (* The comparator is a total order, so sorting whatever
         permutation the previous attempt left behind is
         deterministic. *)
      Array.sort
        (fun a b ->
          match compare critical.(b) critical.(a) with
          | 0 -> ( match compare h.(b) h.(a) with 0 -> compare a b | c -> c)
          | c -> c)
        order);
  let position = s.position in
  Array.iteri (fun pos i -> position.(i) <- pos) order;
  let cursor = ref 0 in
  let unschedule q =
    Mrt.remove mrt op_cls.(q) ~time:time.(q) ~occupancy:op_occ.(q);
    scheduled.(q) <- false;
    decr num_scheduled;
    incr evictions;
    if position.(q) < !cursor then cursor := position.(q)
  in
  let pick () =
    while !cursor < n && scheduled.(order.(!cursor)) do
      incr cursor
    done;
    order.(!cursor)
  in
  let estart op =
    let acc = ref 0 in
    for k = view.Ddg.pred_off.(op) to view.Ddg.pred_off.(op + 1) - 1 do
      let e = view.Ddg.pred_edges.(k) in
      let src = view.Ddg.e_src.(e) in
      if src <> op && scheduled.(src) then begin
        let b = time.(src) + delays.(e) - (ii * view.Ddg.e_dist.(e)) in
        if b > !acc then acc := b
      end
    done;
    !acc
  in
  (* max_int means "no scheduled successor". *)
  let lend op =
    let acc = ref max_int in
    for k = view.Ddg.succ_off.(op) to view.Ddg.succ_off.(op + 1) - 1 do
      let e = view.Ddg.succ_edges.(k) in
      let dst = view.Ddg.e_dst.(e) in
      if dst <> op && scheduled.(dst) then begin
        let b = time.(dst) - delays.(e) + (ii * view.Ddg.e_dist.(e)) in
        if b < !acc then acc := b
      end
    done;
    !acc
  in
  let has_sched_pred op =
    let rec go k =
      k < view.Ddg.pred_off.(op + 1)
      &&
      let src = view.Ddg.e_src.(view.Ddg.pred_edges.(k)) in
      (src <> op && scheduled.(src)) || go (k + 1)
    in
    go view.Ddg.pred_off.(op)
  in
  let try_place op t =
    if t < 0 then false
    else if Mrt.can_place mrt op_cls.(op) ~time:t ~occupancy:op_occ.(op) then begin
      Mrt.place mrt op_cls.(op) ~time:t ~occupancy:op_occ.(op);
      time.(op) <- t;
      prev_time.(op) <- t;
      scheduled.(op) <- true;
      incr num_scheduled;
      true
    end
    else false
  in
  (* After placing [op] at [t], unschedule any scheduled successor the
     placement pushed out of legality (Rau's eviction rule). *)
  let evict_violated_succs op t =
    for k = view.Ddg.succ_off.(op) to view.Ddg.succ_off.(op + 1) - 1 do
      let e = view.Ddg.succ_edges.(k) in
      let dst = view.Ddg.e_dst.(e) in
      if
        dst <> op && scheduled.(dst)
        && time.(dst) < t + delays.(e) - (ii * view.Ddg.e_dist.(e))
      then unschedule dst
    done
  in
  let force op t =
    (* Evict same-class operations until the slot frees up, then any
       scheduled successor whose constraint the new placement breaks. *)
    incr forces;
    let t = Stdlib.max t 0 in
    let evictable = ref [] in
    for q = 0 to n - 1 do
      if q <> op && scheduled.(q) && op_cls.(q) = op_cls.(op) then evictable := q :: !evictable
    done;
    (* Evict lower-priority victims first. *)
    let victims =
      List.sort (fun a b -> compare (critical.(a), h.(a)) (critical.(b), h.(b))) !evictable
    in
    let rec evict = function
      | [] -> ()
      | q :: rest ->
          if not (Mrt.can_place mrt op_cls.(op) ~time:t ~occupancy:op_occ.(op)) then begin
            unschedule q;
            evict rest
          end
      in
    evict victims;
    if not (try_place op t) then
      (* Should be impossible: with every same-class op evicted the
         table is empty for this class. *)
      failwith "Modulo.force: could not place after full eviction";
    evict_violated_succs op t
  in
  let debug = Lazy.force sched_debug in
  let per_op = if debug then Array.make n 0 else [||] in
  let ok = ref true in
  while !ok && !num_scheduled < n do
    if !placements >= budget then begin
      if debug then begin
        Printf.eprintf "[sched] II=%d budget out: %d/%d scheduled after %d placements\n%!" ii
          !num_scheduled n !placements;
        let hot = Array.mapi (fun i c -> (c, i)) per_op in
        Array.sort (fun a b -> compare b a) hot;
        Array.iteri
          (fun k (c, i) ->
            if k < 6 && c > 0 then
              Printf.eprintf "  hot op%d: %d placements, %s, time=%d h=%d crit=%b\n%!" i c
                (Operation.to_string (Ddg.op g i))
                time.(i) h.(i) critical.(i))
          hot
      end;
      ok := false
    end
    else begin
      incr placements;
      let op = pick () in
      if debug then per_op.(op) <- per_op.(op) + 1;
      let lo = estart op in
      (* Preferred window respects scheduled successors (keeps
         lifetimes short, HRMS-style); if it has no free slot, fall
         back to Rau's full [Estart, Estart+II-1] resource scan and
         evict the successors the placement invalidates — without this
         fallback, an op whose consumers sit early can only creep
         forward one slot per visit and the budget drains without
         progress.  Forcing is the last resort. *)
      let fallback () =
        let hi = lo + ii - 1 in
        let rec up t = if t > hi then None else if try_place op t then Some t else up (t + 1) in
        match up lo with
        | Some t -> evict_violated_succs op t
        | None ->
            force op (if prev_time.(op) >= 0 then Stdlib.max lo (prev_time.(op) + 1) else lo)
      in
      let le = lend op in
      if le <> max_int && not (has_sched_pred op) then begin
        (* Only consumers are placed: sit as close below them as
           possible (ALAP) to shorten the produced lifetime. *)
        let lo' = Stdlib.max lo (le - ii + 1) in
        let rec down t =
          if t < lo' then None else if try_place op t then Some () else down (t - 1)
        in
        match down le with Some () -> () | None -> fallback ()
      end
      else begin
        let hi = if le <> max_int then Stdlib.min le (lo + ii - 1) else lo + ii - 1 in
        let rec up t = if t > hi then None else if try_place op t then Some () else up (t + 1) in
        match up lo with Some () -> () | None -> fallback ()
      end
    end
  done;
  if Obs.enabled () then begin
    Obs.incr "sched/attempts";
    Obs.add "sched/evictions" !evictions;
    Obs.add "sched/forces" !forces;
    if not !ok then Obs.incr "sched/budget_exhausted"
  end;
  ((if !ok then Some (Array.copy time) else None), !placements, !evictions)

let run resource ~cycle_model ?(budget_ratio = 8) ?(min_ii = 1) ?max_ii ?(ordering = `Ims) g =
  let n = Ddg.num_ops g in
  let res_mii = Mii.res_mii resource ~cycle_model g in
  let rec_mii = Mii.rec_mii ~cycle_model g in
  let mii = Stdlib.max res_mii rec_mii in
  if min_ii < 1 then invalid_arg "Modulo.run: min_ii must be positive";
  if n = 0 then
    {
      schedule = empty_schedule ~cycle_model;
      mii = 1;
      res_mii;
      rec_mii;
      placements = 0;
      evictions = 0;
    }
  else begin
    let view = Ddg.edge_view g in
    let delays = Mii.edge_delays ~cycle_model g in
    let default_max =
      let bus, fpu = Resource.total_slot_demand resource ~cycle_model g in
      let total_delay = Array.fold_left ( + ) 0 delays in
      bus + fpu + total_delay + Stdlib.max mii min_ii + 1
    in
    let max_ii = match max_ii with Some m -> m | None -> default_max in
    let critical = Mii.critical_recurrence_ops ~cycle_model g ~ii:rec_mii in
    let budget = Stdlib.max 32 (budget_ratio * n) in
    let s = make_scratch resource ~cycle_model g in
    let total_placements = ref 0 in
    let total_evictions = ref 0 in
    let rec loop ii =
      (* II-escalation boundary: a budgeted evaluation gives up here,
         between self-contained attempts. *)
      Wr_util.Deadline.check ();
      if ii > max_ii then
        failwith
          (Printf.sprintf "Modulo.run: no schedule found up to II=%d (%d ops)" max_ii n)
      else
        (* The swing order has no backtracking discipline of its own;
           if it cannot close a schedule near the MII, fall back to the
           eviction-hardened IMS priority for the larger IIs. *)
        let ordering = if ordering = `Sms && ii > mii + 4 then `Ims else ordering in
        match attempt ~cycle_model g ~view ~delays ~ii ~rec_mii ~critical ~budget ~ordering s with
        | Some times, p, e ->
            total_placements := !total_placements + p;
            total_evictions := !total_evictions + e;
            let schedule = Schedule.make ~ii ~times ~cycle_model in
            (match Schedule.validate g resource schedule with
            | Ok () -> schedule
            | Error msg -> failwith ("Modulo.run: invalid schedule produced: " ^ msg))
        | None, _, e ->
            total_placements := !total_placements + budget;
            total_evictions := !total_evictions + e;
            loop (ii + 1)
    in
    let start_ii = Stdlib.max mii min_ii in
    let schedule = Obs.span "sched/modulo" (fun () -> loop start_ii) in
    if Obs.enabled () then begin
      Obs.incr "sched/runs";
      (* II escalation above the first II tried: the paper's retry
         distribution (0 = scheduled at the MII).  Clamped: pathological
         escalations land in one overflow bucket instead of spraying
         bins. *)
      Obs.observe_clamped "sched/ii_minus_start" ~top:64 (schedule.Schedule.ii - start_ii);
      Obs.add "sched/placements" !total_placements
    end;
    {
      schedule;
      mii;
      res_mii;
      rec_mii;
      placements = !total_placements;
      evictions = !total_evictions;
    }
  end
