module Ddg = Wr_ir.Ddg
module Dependence = Wr_ir.Dependence
module Scc = Wr_ir.Scc

(* ASAP/ALAP at the given II: longest paths over weights
   [delay - II*dist]; no positive cycles at II >= RecMII, so value
   iteration converges.  Runs on the flat edge arrays. *)
let asap_alap ~cycle_model g ~ii =
  let n = Ddg.num_ops g in
  let view = Ddg.edge_view g in
  let delays = Mii.edge_delays ~cycle_model g in
  let asap = Array.make n 0 in
  let changed = ref true and pass = ref 0 in
  while !changed && !pass <= n do
    changed := false;
    for e = 0 to view.Ddg.n_edges - 1 do
      let w = delays.(e) - (ii * view.Ddg.e_dist.(e)) in
      if asap.(view.Ddg.e_src.(e)) + w > asap.(view.Ddg.e_dst.(e)) then begin
        asap.(view.Ddg.e_dst.(e)) <- asap.(view.Ddg.e_src.(e)) + w;
        changed := true
      end
    done;
    incr pass
  done;
  let horizon = Array.fold_left Stdlib.max 0 asap in
  let alap = Array.make n horizon in
  let changed = ref true and pass = ref 0 in
  while !changed && !pass <= n do
    changed := false;
    for e = 0 to view.Ddg.n_edges - 1 do
      let w = delays.(e) - (ii * view.Ddg.e_dist.(e)) in
      if alap.(view.Ddg.e_dst.(e)) - w < alap.(view.Ddg.e_src.(e)) then begin
        alap.(view.Ddg.e_src.(e)) <- alap.(view.Ddg.e_dst.(e)) - w;
        changed := true
      end
    done;
    incr pass
  done;
  (asap, alap)

let compute ~cycle_model g ~ii =
  let n = Ddg.num_ops g in
  let asap, alap = asap_alap ~cycle_model g ~ii in
  let mobility = Array.init n (fun v -> alap.(v) - asap.(v)) in
  (* Groups: SCC components ordered by criticality (component RecMII
     approximated by the component's span tightness: components with a
     cycle first, then by ascending total mobility). *)
  let scc = Ddg.scc g in
  let comps = Scc.members scc in
  let has_cycle = Array.make scc.Scc.count false in
  List.iter
    (fun (e : Dependence.t) ->
      if scc.Scc.component.(e.src) = scc.Scc.component.(e.dst) then
        has_cycle.(scc.Scc.component.(e.src)) <- true)
    (Ddg.edges g);
  let group_key c =
    let members = comps.(c) in
    let mob = List.fold_left (fun acc v -> acc + mobility.(v)) 0 members in
    (* Recurrences first (0 sorts before 1), then tighter groups. *)
    ((if has_cycle.(c) then 0 else 1), mob, c)
  in
  let group_order =
    List.sort
      (fun a b -> compare (group_key a) (group_key b))
      (List.init scc.Scc.count (fun c -> c))
  in
  let ordered = Array.make n false in
  let order = ref [] in
  let append v =
    if not ordered.(v) then begin
      ordered.(v) <- true;
      order := v :: !order
    end
  in
  (* Unordered predecessors/successors of the ordered set, restricted
     to a node subset. *)
  let frontier ~preds subset =
    List.filter
      (fun v ->
        (not ordered.(v))
        && List.exists
             (fun (e : Dependence.t) ->
               let nbr = if preds then e.dst else e.src in
               nbr <> v && ordered.(nbr))
             (if preds then Ddg.succs g v else Ddg.preds g v))
      subset
  in
  let pick_top_down candidates =
    (* Lowest ALAP first (most urgent w.r.t. consumers); ties: higher
       mobility last (prefer constrained nodes). *)
    List.fold_left
      (fun best v ->
        match best with
        | None -> Some v
        | Some b -> if (alap.(v), mobility.(v), v) < (alap.(b), mobility.(b), b) then Some v else best)
      None candidates
  in
  let pick_bottom_up candidates =
    (* Highest ASAP first (closest below its producers). *)
    List.fold_left
      (fun best v ->
        match best with
        | None -> Some v
        | Some b ->
            if (-asap.(v), mobility.(v), v) < (-asap.(b), mobility.(b), b) then Some v else best)
      None candidates
  in
  List.iter
    (fun c ->
      let subset = List.filter (fun v -> not ordered.(v)) comps.(c) in
      match subset with
      | [] -> ()
      | _ ->
          (* Seed: if the group touches the ordered set, start from the
             touching side; otherwise from the group's most urgent
             node. *)
          let rec swing remaining =
            if remaining <> [] then begin
              let pred_side = frontier ~preds:true remaining in
              let succ_side = frontier ~preds:false remaining in
              let direction, candidates =
                if succ_side <> [] then (`Top_down, succ_side)
                else if pred_side <> [] then (`Bottom_up, pred_side)
                else (`Top_down, remaining)
              in
              (* Consume one side fully before swinging. *)
              let rec sweep candidates remaining =
                match
                  ( candidates,
                    match direction with
                    | `Top_down -> pick_top_down candidates
                    | `Bottom_up -> pick_bottom_up candidates )
                with
                | [], _ | _, None -> remaining
                | _, Some v ->
                    append v;
                    let remaining = List.filter (fun w -> w <> v) remaining in
                    let next =
                      match direction with
                      | `Top_down -> frontier ~preds:false remaining
                      | `Bottom_up -> frontier ~preds:true remaining
                    in
                    sweep next remaining
              in
              let remaining = sweep candidates remaining in
              swing remaining
            end
          in
          swing subset)
    group_order;
  Array.of_list (List.rev !order)
