module Ddg = Wr_ir.Ddg
module Dependence = Wr_ir.Dependence
module Operation = Wr_ir.Operation
module Opcode = Wr_ir.Opcode
module Cycle_model = Wr_machine.Cycle_model
module Resource = Wr_machine.Resource

type t = { ii : int; times : int array; cycle_model : Cycle_model.t }

let make ~ii ~times ~cycle_model =
  if ii <= 0 then invalid_arg "Schedule.make: ii must be positive";
  Array.iter (fun t -> if t < 0 then invalid_arg "Schedule.make: negative time") times;
  { ii; times; cycle_model }

let stage_count t =
  if Array.length t.times = 0 then 0
  else 1 + (Array.fold_left Stdlib.max 0 t.times / t.ii)

let kernel_slot t i = t.times.(i) mod t.ii

let stage t i = t.times.(i) / t.ii

let span t =
  if Array.length t.times = 0 then 0
  else
    let mx = Array.fold_left Stdlib.max t.times.(0) t.times in
    let mn = Array.fold_left Stdlib.min t.times.(0) t.times in
    mx - mn + 1

let validate g resource t =
  let n = Ddg.num_ops g in
  if Array.length t.times <> n then Error "schedule length mismatch"
  else begin
    let dep_error = ref None in
    List.iter
      (fun (e : Dependence.t) ->
        let src = Ddg.op g e.src in
        let d =
          Dependence.delay_rule e.kind
            ~producer_latency:(Cycle_model.latency_of_op t.cycle_model src.Operation.opcode)
        in
        if t.times.(e.dst) < t.times.(e.src) + d - (t.ii * e.distance) then
          match !dep_error with
          | None ->
              dep_error :=
                Some
                  (Printf.sprintf "dependence violated: op%d@%d -> op%d@%d (delay %d, dist %d, ii %d)"
                     e.src t.times.(e.src) e.dst t.times.(e.dst) d e.distance t.ii)
          | Some _ -> ())
      (Ddg.edges g);
    match !dep_error with
    | Some msg -> Error msg
    | None ->
        (* Rebuild the reservation table and look for over-subscription.
           [Mrt.can_place] is queried before every [Mrt.place], so a
           failure here is a genuine capacity violation — an
           [Invalid_argument] escaping [place] would indicate misuse of
           the table (bad II, negative occupancy), not an illegal
           schedule, and is deliberately left to propagate. *)
        let mrt = Mrt.create ~ii:t.ii resource in
        let res_error = ref None in
        Array.iter
          (fun (o : Operation.t) ->
            let cls = Opcode.resource_class o.Operation.opcode in
            let occupancy = Cycle_model.occupancy t.cycle_model o.Operation.opcode in
            let time = t.times.(o.Operation.id) in
            if Mrt.can_place mrt cls ~time ~occupancy then
              Mrt.place mrt cls ~time ~occupancy
            else
              match !res_error with
              | None ->
                  res_error :=
                    Some
                      (Printf.sprintf
                         "resource over-subscribed: op%d (%s, occupancy %d) at time %d \
                          exceeds the %d %s slot(s) of kernel slot %d (II %d)"
                         o.Operation.id
                         (Opcode.to_string o.Operation.opcode)
                         occupancy time
                         (Resource.slots resource cls)
                         (match cls with Opcode.Bus -> "bus" | Opcode.Fpu -> "FPU")
                         (((time mod t.ii) + t.ii) mod t.ii)
                         t.ii)
              | Some _ -> ())
          (Ddg.ops g);
        (match !res_error with Some msg -> Error msg | None -> Ok ())
  end

(* Steady state launches one iteration per II; the last iteration
   retires [span] cycles after its launch, so a T-trip execution takes
   (T-1)*II + span — which degenerates correctly at the edges the
   plain II*T accounting got wrong: 0 trips cost 0 (II*T said 0 too,
   but only by accident of multiplication), and a single trip costs the
   full fill+drain span of one iteration, not one II. *)
let cycles t ~trip_count =
  if trip_count < 0 then
    invalid_arg (Printf.sprintf "Schedule.cycles: negative trip_count %d" trip_count)
  else if trip_count = 0 || Array.length t.times = 0 then 0
  else ((trip_count - 1) * t.ii) + span t

let kernel_view g resource t =
  let buf = Buffer.create 1024 in
  let bus_cap = Resource.slots resource Opcode.Bus in
  let fpu_cap = Resource.slots resource Opcode.Fpu in
  Buffer.add_string buf
    (Printf.sprintf "kernel: II=%d, %d stages, %d/%d bus/FPU slots per cycle\n" t.ii
       (stage_count t) bus_cap fpu_cap);
  for slot = 0 to t.ii - 1 do
    let here =
      List.filter
        (fun (o : Operation.t) -> t.times.(o.Operation.id) mod t.ii = slot)
        (Array.to_list (Ddg.ops g))
    in
    let count cls =
      List.length
        (List.filter
           (fun (o : Operation.t) -> Opcode.resource_class o.Operation.opcode = cls)
           here)
    in
    Buffer.add_string buf
      (Printf.sprintf "  slot %2d [bus %d/%d, fpu %d/%d]: %s\n" slot (count Opcode.Bus)
         bus_cap (count Opcode.Fpu) fpu_cap
         (String.concat "; "
            (List.map
               (fun (o : Operation.t) ->
                 Printf.sprintf "op%d:%s(s%d)" o.Operation.id
                   (Opcode.to_string o.Operation.opcode)
                   (t.times.(o.Operation.id) / t.ii))
               here)))
  done;
  Buffer.contents buf

let pp fmt t =
  Format.fprintf fmt "@[<v>schedule: II=%d, stages=%d@," t.ii (stage_count t);
  Array.iteri
    (fun i time ->
      Format.fprintf fmt "  op%d @ %d (slot %d, stage %d)@," i time (time mod t.ii)
        (time / t.ii))
    t.times;
  Format.fprintf fmt "@]"
