(** Exact modulo scheduler: branch-and-bound search over the CSR edge
    view and the MRT, with the SMT-paper encoding (per-operation start
    times, pairwise dependence inequalities, modulo resource
    constraints) as the spec.

    Unlike the historical window search, [Infeasible] here is a
    {e proof}: component anchors range over [0, II-1], every other
    operation over its full transitive dependence window clamped to a
    completeness box of (n+1) * (max_delay + II) slots — large enough
    that a normalized solution must fall inside it whenever any
    solution exists (see the argument in [exact.ml]).  The price is
    that refutations can be expensive; the node budget and the optional
    wall budget turn "too expensive" into [Gave_up], which claims
    nothing. *)

type outcome = Feasible of Schedule.t | Infeasible | Gave_up

type status =
  | Proved_optimal
      (** The returned II is minimal: every II in [[MII, ii - 1]] was
          refuted (vacuously so when the heuristic already hit the
          MII). *)
  | Feasible_unproved
      (** A schedule strictly better than the heuristic's was found,
          but at least one lower II attempt ran out of budget, so
          optimality is not established. *)
  | Fallback
      (** The search budget expired before deciding anything beyond the
          heuristic result, which is returned unchanged — the
          documented timeout behaviour. *)

type t = {
  base : Modulo.result;  (** the heuristic run used as upper bound and fallback *)
  schedule : Schedule.t;  (** best known schedule (= [base]'s unless improved) *)
  ii : int;
  mii : int;
  status : status;
  nodes : int;  (** search nodes over all II attempts *)
  iis_refuted : int;  (** how many IIs below [ii] were proved infeasible *)
}

val at_ii :
  Wr_machine.Resource.t ->
  cycle_model:Wr_machine.Cycle_model.t ->
  ii:int ->
  ?max_nodes:int ->
  ?stop:(unit -> bool) ->
  ?scratch:int array array ->
  ?nodes_out:int ref ->
  Wr_ir.Ddg.t ->
  outcome
(** Search for a schedule at exactly the given II.  [max_nodes]
    (default 200_000) bounds backtracking nodes; [stop] is polled every
    1024 nodes and turns the search into [Gave_up] when it fires (wall
    budgets hang off this).  [scratch], if given, is an at-least
    [n x n] matrix reused (and fully overwritten) for the all-pairs
    path bounds; [nodes_out] accumulates node counts across calls. *)

val min_ii :
  Wr_machine.Resource.t ->
  cycle_model:Wr_machine.Cycle_model.t ->
  ?max_nodes:int ->
  Wr_ir.Ddg.t ->
  (int * Schedule.t) option
(** Smallest II (starting at the MII) at which {!at_ii} finds a
    schedule; [None] if every attempt up to a generous bound gave
    up.  From-scratch search, no heuristic involved — the shape the
    portfolio races against the heuristic. *)

val solve :
  Wr_machine.Resource.t ->
  cycle_model:Wr_machine.Cycle_model.t ->
  ?max_nodes:int ->
  ?budget_ms:int ->
  ?min_ii:int ->
  ?max_ii:int ->
  ?base:Modulo.result ->
  Wr_ir.Ddg.t ->
  t
(** Refinement driver: run (or reuse, via [base]) the heuristic, then
    decide the IIs in [[MII, heuristic II - 1]] bottom-up.  Refuting
    all of them proves the heuristic optimal; finding a schedule at one
    improves it.  [max_nodes] bounds each II attempt, [budget_ms]
    bounds the whole solve in wall-clock time (checked between nodes
    and at II boundaries); on expiry the heuristic result comes back
    with [status = Fallback].  The result's II is never worse than the
    heuristic's.  [min_ii]/[max_ii] are forwarded to the heuristic run
    and [min_ii] also floors the exact search, so register-pressure
    II floors behave identically across backends. *)
