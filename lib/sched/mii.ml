module Ddg = Wr_ir.Ddg
module Dependence = Wr_ir.Dependence
module Operation = Wr_ir.Operation
module Cycle_model = Wr_machine.Cycle_model
module Resource = Wr_machine.Resource
module Scc = Wr_ir.Scc

let delay ~cycle_model g (e : Dependence.t) =
  let src = Ddg.op g e.src in
  Dependence.delay_rule e.kind
    ~producer_latency:(Cycle_model.latency_of_op cycle_model src.Operation.opcode)

let res_mii resource ~cycle_model g =
  let bus, fpu = Resource.total_slot_demand resource ~cycle_model g in
  let per_class demand slots = (demand + slots - 1) / slots in
  Stdlib.max 1
    (Stdlib.max
       (per_class bus (Resource.slots resource Wr_ir.Opcode.Bus))
       (per_class fpu (Resource.slots resource Wr_ir.Opcode.Fpu)))

(* Positive-cycle detection on weights [delay - ii * distance],
   restricted to the given vertex subset (component).  Bellman-Ford
   with all-zero initial potentials: a relaxation still possible after
   |subset| passes exposes a positive cycle. *)
let feasible ~cycle_model g ~subset ~edges ~ii =
  let n = Ddg.num_ops g in
  let dist = Array.make n 0 in
  let count = List.length subset in
  let changed = ref true in
  let pass = ref 0 in
  while !changed && !pass <= count do
    changed := false;
    List.iter
      (fun (e : Dependence.t) ->
        let w = delay ~cycle_model g e - (ii * e.distance) in
        if dist.(e.src) + w > dist.(e.dst) then begin
          dist.(e.dst) <- dist.(e.src) + w;
          changed := true
        end)
      edges;
    incr pass
  done;
  not !changed

let rec_mii_of_component ~cycle_model g ~subset ~edges =
  match edges with
  | [] -> 1
  | _ ->
      let hi =
        Stdlib.max 1 (List.fold_left (fun acc e -> acc + delay ~cycle_model g e) 0 edges)
      in
      let rec search lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          if feasible ~cycle_model g ~subset ~edges ~ii:mid then search lo mid
          else search (mid + 1) hi
      in
      search 1 hi

(* Recurrence work is confined to strongly connected components, so we
   bound each component separately: the graph-wide RecMII is the
   maximum over components, and the component-level values also feed
   the scheduler's criticality ordering. *)
let component_rec_miis ~cycle_model g =
  let r = Ddg.scc g in
  let comps = Scc.members r in
  let edges_of = Array.make r.Scc.count [] in
  List.iter
    (fun (e : Dependence.t) ->
      let c = r.Scc.component.(e.src) in
      if c = r.Scc.component.(e.dst) then edges_of.(c) <- e :: edges_of.(c))
    (Ddg.edges g);
  let values =
    Array.mapi
      (fun c subset -> rec_mii_of_component ~cycle_model g ~subset ~edges:edges_of.(c))
      comps
  in
  (r, values)

let rec_mii ~cycle_model g =
  let _, values = component_rec_miis ~cycle_model g in
  Array.fold_left Stdlib.max 1 values

let mii resource ~cycle_model g =
  Stdlib.max (res_mii resource ~cycle_model g) (rec_mii ~cycle_model g)

(* Fractional feasibility: no cycle with sum(delay) - rate*sum(dist) > 0. *)
let feasible_rate ~cycle_model g ~subset ~edges ~rate =
  let n = Ddg.num_ops g in
  let dist = Array.make n 0.0 in
  let count = List.length subset in
  let changed = ref true in
  let pass = ref 0 in
  while !changed && !pass <= count do
    changed := false;
    List.iter
      (fun (e : Dependence.t) ->
        let w = float_of_int (delay ~cycle_model g e) -. (rate *. float_of_int e.distance) in
        if dist.(e.src) +. w > dist.(e.dst) +. 1e-9 then begin
          dist.(e.dst) <- dist.(e.src) +. w;
          changed := true
        end)
      edges;
    incr pass
  done;
  not !changed

let rec_rate ~cycle_model g =
  let r = Ddg.scc g in
  let comps = Scc.members r in
  let edges_of = Array.make r.Scc.count [] in
  List.iter
    (fun (e : Dependence.t) ->
      let c = r.Scc.component.(e.src) in
      if c = r.Scc.component.(e.dst) then edges_of.(c) <- e :: edges_of.(c))
    (Ddg.edges g);
  let component_rate c subset =
    match edges_of.(c) with
    | [] -> 0.0
    | edges ->
        let hi =
          Stdlib.max 1.0
            (float_of_int (List.fold_left (fun acc e -> acc + delay ~cycle_model g e) 0 edges))
        in
        let rec search lo hi iters =
          if iters = 0 then hi
          else
            let mid = (lo +. hi) /. 2.0 in
            if feasible_rate ~cycle_model g ~subset ~edges ~rate:mid then search lo mid (iters - 1)
            else search mid hi (iters - 1)
        in
        search 0.0 hi 40
  in
  let best = ref 0.0 in
  Array.iteri (fun c subset -> best := Stdlib.max !best (component_rate c subset)) comps;
  !best

let critical_recurrence_ops ~cycle_model g ~ii =
  let r, values = component_rec_miis ~cycle_model g in
  Array.map (fun c -> values.(c) >= ii && values.(c) > 1) r.Scc.component
