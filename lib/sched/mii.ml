module Ddg = Wr_ir.Ddg
module Dependence = Wr_ir.Dependence
module Operation = Wr_ir.Operation
module Cycle_model = Wr_machine.Cycle_model
module Resource = Wr_machine.Resource
module Scc = Wr_ir.Scc

let edge_delays ~cycle_model g =
  Ddg.edge_delays g
    ~key:(Cycle_model.cycles cycle_model)
    ~producer_latency:(fun (op : Operation.t) ->
      Cycle_model.latency_of_op cycle_model op.Operation.opcode)

let res_mii resource ~cycle_model g =
  let bus, fpu = Resource.total_slot_demand resource ~cycle_model g in
  let per_class demand slots = (demand + slots - 1) / slots in
  Stdlib.max 1
    (Stdlib.max
       (per_class bus (Resource.slots resource Wr_ir.Opcode.Bus))
       (per_class fpu (Resource.slots resource Wr_ir.Opcode.Fpu)))

(* Positive-cycle detection on weights [delay - ii * distance],
   restricted to one strongly connected component.  Bellman-Ford with
   all-zero initial potentials over the flat edge arrays: a relaxation
   still possible after [count] passes exposes a positive cycle; a pass
   that changes nothing ends the scan early.  [dist] is caller-owned
   scratch (only the [subset] entries are touched). *)
let feasible (view : Ddg.edge_view) delays ~dist ~subset ~count ~edge_ids ~ii =
  List.iter (fun v -> dist.(v) <- 0) subset;
  let m = Array.length edge_ids in
  let changed = ref true in
  let pass = ref 0 in
  while !changed && !pass <= count do
    changed := false;
    for k = 0 to m - 1 do
      let e = edge_ids.(k) in
      let nd = dist.(view.Ddg.e_src.(e)) + delays.(e) - (ii * view.Ddg.e_dist.(e)) in
      if nd > dist.(view.Ddg.e_dst.(e)) then begin
        dist.(view.Ddg.e_dst.(e)) <- nd;
        changed := true
      end
    done;
    incr pass
  done;
  not !changed

let rec_mii_of_component view delays ~dist ~subset ~edge_ids =
  if Array.length edge_ids = 0 then 1
  else begin
    (* The binary search probes share [dist] and the precomputed
       [count]; nothing is allocated per probe. *)
    let count = List.length subset in
    let hi =
      Stdlib.max 1 (Array.fold_left (fun acc e -> acc + delays.(e)) 0 edge_ids)
    in
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if feasible view delays ~dist ~subset ~count ~edge_ids ~ii:mid then search lo mid
        else search (mid + 1) hi
    in
    search 1 hi
  end

(* Intra-component edge ids, CSR-packed by component (ascending edge id
   within each component). *)
let component_edges (r : Scc.result) (view : Ddg.edge_view) =
  let off = Array.make (r.Scc.count + 1) 0 in
  for e = 0 to view.Ddg.n_edges - 1 do
    let c = r.Scc.component.(view.Ddg.e_src.(e)) in
    if c = r.Scc.component.(view.Ddg.e_dst.(e)) then off.(c + 1) <- off.(c + 1) + 1
  done;
  for c = 0 to r.Scc.count - 1 do
    off.(c + 1) <- off.(c + 1) + off.(c)
  done;
  let ids = Array.make off.(r.Scc.count) 0 in
  let cursor = Array.copy off in
  for e = 0 to view.Ddg.n_edges - 1 do
    let c = r.Scc.component.(view.Ddg.e_src.(e)) in
    if c = r.Scc.component.(view.Ddg.e_dst.(e)) then begin
      ids.(cursor.(c)) <- e;
      cursor.(c) <- cursor.(c) + 1
    end
  done;
  fun c -> Array.sub ids off.(c) (off.(c + 1) - off.(c))

(* Recurrence work is confined to strongly connected components, so we
   bound each component separately: the graph-wide RecMII is the
   maximum over components, and the component-level values also feed
   the scheduler's criticality ordering. *)
let component_rec_miis ~cycle_model g =
  let r = Ddg.scc g in
  let view = Ddg.edge_view g in
  let delays = edge_delays ~cycle_model g in
  let comps = Scc.members r in
  let edges_of = component_edges r view in
  let dist = Array.make (Ddg.num_ops g) 0 in
  let values =
    Array.mapi
      (fun c subset -> rec_mii_of_component view delays ~dist ~subset ~edge_ids:(edges_of c))
      comps
  in
  (r, values)

(* RecMII and the per-op component RecMII, memoized on the graph per
   cycle model: Driver.run's II-escalation and spill loops re-enter the
   scheduler on one body many times, and the recurrence analysis is
   identical each time. *)
let rec_info ~cycle_model g =
  Ddg.cached_rec_info g
    ~key:(Cycle_model.cycles cycle_model)
    ~compute:(fun () ->
      let r, values = component_rec_miis ~cycle_model g in
      let rec_mii = Array.fold_left Stdlib.max 1 values in
      let per_op = Array.map (fun c -> values.(c)) r.Scc.component in
      (rec_mii, per_op))

let rec_mii ~cycle_model g = fst (rec_info ~cycle_model g)

let mii resource ~cycle_model g =
  Stdlib.max (res_mii resource ~cycle_model g) (rec_mii ~cycle_model g)

(* Fractional feasibility: no cycle with sum(delay) - rate*sum(dist) > 0. *)
let feasible_rate (view : Ddg.edge_view) delays ~dist ~subset ~count ~edge_ids ~rate =
  List.iter (fun v -> dist.(v) <- 0.0) subset;
  let m = Array.length edge_ids in
  let changed = ref true in
  let pass = ref 0 in
  while !changed && !pass <= count do
    changed := false;
    for k = 0 to m - 1 do
      let e = edge_ids.(k) in
      let w =
        float_of_int delays.(e) -. (rate *. float_of_int view.Ddg.e_dist.(e))
      in
      let nd = dist.(view.Ddg.e_src.(e)) +. w in
      if nd > dist.(view.Ddg.e_dst.(e)) +. 1e-9 then begin
        dist.(view.Ddg.e_dst.(e)) <- nd;
        changed := true
      end
    done;
    incr pass
  done;
  not !changed

let rec_rate ~cycle_model g =
  let r = Ddg.scc g in
  let view = Ddg.edge_view g in
  let delays = edge_delays ~cycle_model g in
  let comps = Scc.members r in
  let edges_of = component_edges r view in
  let dist = Array.make (Ddg.num_ops g) 0.0 in
  let component_rate subset edge_ids =
    if Array.length edge_ids = 0 then 0.0
    else begin
      let count = List.length subset in
      let hi =
        Stdlib.max 1.0
          (float_of_int (Array.fold_left (fun acc e -> acc + delays.(e)) 0 edge_ids))
      in
      let rec search lo hi iters =
        if iters = 0 then hi
        else
          let mid = (lo +. hi) /. 2.0 in
          if feasible_rate view delays ~dist ~subset ~count ~edge_ids ~rate:mid then
            search lo mid (iters - 1)
          else search mid hi (iters - 1)
      in
      search 0.0 hi 40
    end
  in
  let best = ref 0.0 in
  Array.iteri
    (fun c subset -> best := Stdlib.max !best (component_rate subset (edges_of c)))
    comps;
  !best

let critical_recurrence_ops ~cycle_model g ~ii =
  let _, per_op = rec_info ~cycle_model g in
  Array.map (fun v -> v >= ii && v > 1) per_op
