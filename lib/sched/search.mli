(** Historical entry points of the backtracking modulo scheduler, now a
    thin wrapper over the exact backend ({!Exact}).  [at_ii] performs
    the exhaustive branch-and-bound search (so [Infeasible] is a proof
    and [Gave_up] means the node budget ran out); [min_ii] is the
    from-scratch II climb used to cross-check the heuristic scheduler's
    II quality on small loops. *)

type outcome = Exact.outcome = Feasible of Schedule.t | Infeasible | Gave_up

val at_ii :
  Wr_machine.Resource.t ->
  cycle_model:Wr_machine.Cycle_model.t ->
  ii:int ->
  ?max_nodes:int ->
  ?scratch:int array array ->
  Wr_ir.Ddg.t ->
  outcome
(** See {!Exact.at_ii}. *)

val min_ii :
  Wr_machine.Resource.t ->
  cycle_model:Wr_machine.Cycle_model.t ->
  ?max_nodes:int ->
  Wr_ir.Ddg.t ->
  (int * Schedule.t) option
(** See {!Exact.min_ii}. *)
