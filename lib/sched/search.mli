(** Backtracking modulo scheduler: exhaustive window search with a node
    budget, used to cross-check the heuristic scheduler's II quality on
    small loops.

    The search assigns operations in priority order; each operation
    tries every slot of its current dependence window (clipped to II
    consecutive slots) that the reservation table admits, and
    backtracks on dead ends.  [`Feasible] results are definitive (the
    schedule is validated); [`Infeasible] means no schedule exists
    {e within the explored windows}; [`Gave_up] means the node budget
    ran out.  On the small graphs this is meant for (tens of
    operations) the search is effectively exhaustive. *)

type outcome =
  | Feasible of Schedule.t
  | Infeasible
  | Gave_up

val at_ii :
  Wr_machine.Resource.t ->
  cycle_model:Wr_machine.Cycle_model.t ->
  ii:int ->
  ?max_nodes:int ->
  ?scratch:int array array ->
  Wr_ir.Ddg.t ->
  outcome
(** Search for a schedule at exactly the given II.  [max_nodes]
    (default 200_000) bounds backtracking nodes.  [scratch], if given,
    is an at-least [n x n] matrix reused (and fully overwritten) for
    the all-pairs path bounds, so a retry loop like {!min_ii} avoids
    re-allocating O(n{^ 2}) per attempt. *)

val min_ii :
  Wr_machine.Resource.t ->
  cycle_model:Wr_machine.Cycle_model.t ->
  ?max_nodes:int ->
  Wr_ir.Ddg.t ->
  (int * Schedule.t) option
(** Smallest II (starting at the MII) at which {!at_ii} finds a
    schedule; [None] if every attempt up to a generous bound gave
    up. *)
