(** A modulo schedule: an initiation interval plus an issue time for
    every operation of the loop body.

    Times are absolute within the flat schedule of one iteration; the
    steady-state kernel issues operation [i] at slot [times.(i) mod ii]
    of stage [times.(i) / ii]. *)

type t = {
  ii : int;
  times : int array;  (** indexed by operation id *)
  cycle_model : Wr_machine.Cycle_model.t;
}

val make : ii:int -> times:int array -> cycle_model:Wr_machine.Cycle_model.t -> t

val stage_count : t -> int
(** Number of kernel stages (pipeline depth of the software pipeline):
    [1 + max times / ii]; 0 for an empty loop. *)

val kernel_slot : t -> int -> int
val stage : t -> int -> int

val span : t -> int
(** [max time - min time + 1]; 0 for an empty loop. *)

val validate :
  Wr_ir.Ddg.t -> Wr_machine.Resource.t -> t -> (unit, string) result
(** Full legality check, used by tests and assertions: every dependence
    satisfies [t(dst) >= t(src) + delay - II * distance] and no kernel
    slot over-subscribes a resource class (occupancy included). *)

val cycles : t -> trip_count:int -> int
(** Execution cycles attributed to the loop:
    [(trip_count - 1) * II + span] — the paper's steady-state [II]
    per iteration, plus the fill/drain span of the last iteration.
    Degenerate trips are exact rather than accidental: 0 trips (a loop
    widened past its trip count) cost 0 cycles, 1 trip costs the span
    of a single un-overlapped iteration.  Raises [Invalid_argument] on
    a negative trip count.  (The study drivers amortize prologue/
    epilogue away and charge [II * trip_count] inline, as the paper
    does; this accessor is the micro-architecturally honest count used
    by consumers that care about short trips.) *)

val pp : Format.formatter -> t -> unit

val kernel_view : Wr_ir.Ddg.t -> Wr_machine.Resource.t -> t -> string
(** A human-readable occupancy table of the steady-state kernel: one
    row per kernel slot, the operations issued there, and the bus/FPU
    usage against the machine's capacity. *)
