(** Modulo reservation table.

    Tracks, for each of the II slots of the steady-state kernel, how
    many issue slots of each resource class are in use.  A non-pipelined
    operation (division, square root) reserves its unit for its full
    occupancy, wrapping modulo II. *)

type t

val create : ii:int -> Wr_machine.Resource.t -> t

val reset : t -> ii:int -> unit
(** Clear the table and re-arm it at a new II, reusing the row storage
    when capacity allows.  Lets the scheduler's II-escalation loop keep
    one table instead of allocating per attempt. *)

val ii : t -> int

val can_place : t -> Wr_ir.Opcode.resource_class -> time:int -> occupancy:int -> bool
(** Whether one more operation of the class fits starting at
    [time mod II] for [occupancy] consecutive (modulo) cycles. *)

val place : t -> Wr_ir.Opcode.resource_class -> time:int -> occupancy:int -> unit
(** Reserve the slots.  Raises [Invalid_argument] if the reservation
    would exceed capacity (callers must check {!can_place}, except when
    forcing an eviction through {!conflicts}). *)

val remove : t -> Wr_ir.Opcode.resource_class -> time:int -> occupancy:int -> unit
(** Release a previous reservation. *)

val usage : t -> Wr_ir.Opcode.resource_class -> slot:int -> int
(** Current occupancy of a kernel slot. *)
