(** Lower bounds on the initiation interval.

    A modulo schedule initiates one iteration every II cycles; II is
    bounded below by resource usage (ResMII) and by recurrences
    (RecMII) — paper Section 1 and the classic modulo scheduling
    literature (Rau, MICRO-27). *)

val edge_delays :
  cycle_model:Wr_machine.Cycle_model.t -> Wr_ir.Ddg.t -> int array
(** Per-edge dependence delays under a cycle model, indexed by edge id
    (position in [Ddg.edges]); memoized on the graph.  Shared by every
    scheduler kernel that walks the flat {!Wr_ir.Ddg.edge_view}.  The
    returned array must not be mutated. *)

val res_mii :
  Wr_machine.Resource.t -> cycle_model:Wr_machine.Cycle_model.t -> Wr_ir.Ddg.t -> int
(** Resource-constrained bound: for each resource class, the total
    occupancy the body imposes divided by the slots available per
    cycle, rounded up; at least 1. *)

val rec_mii : cycle_model:Wr_machine.Cycle_model.t -> Wr_ir.Ddg.t -> int
(** Recurrence-constrained bound: the smallest II such that every
    dependence cycle [C] satisfies [sum(delay) <= II * sum(distance)].
    Computed by binary search on II with positive-cycle detection
    (Bellman-Ford) on edge weights [delay - II * distance]; exact.
    1 for an acyclic graph. *)

val mii :
  Wr_machine.Resource.t -> cycle_model:Wr_machine.Cycle_model.t -> Wr_ir.Ddg.t -> int
(** [max (res_mii ...) (rec_mii ...)]. *)

val rec_rate : cycle_model:Wr_machine.Cycle_model.t -> Wr_ir.Ddg.t -> float
(** The fractional recurrence bound: the maximum over dependence cycles
    of [sum(delay) / sum(distance)] — the asymptotic minimum number of
    cycles per source iteration a perfect schedule of unbounded
    resources can reach (unrolling hides the II >= 1 quantization, so
    the study's ILP-limit figures use this rational rate).  0 for an
    acyclic graph. *)

val critical_recurrence_ops :
  cycle_model:Wr_machine.Cycle_model.t -> Wr_ir.Ddg.t -> ii:int -> bool array
(** Operations lying on a recurrence whose ratio achieves the given
    [ii] (used by the scheduler's priority ordering to place critical
    cycles first). *)
