module Resource = Wr_machine.Resource
module Opcode = Wr_ir.Opcode

(* [ii] is mutable so one table can serve the whole II-escalation loop:
   [reset] re-arms it at a new II, growing the rows only when the
   capacity is exceeded. *)
type t = {
  mutable ii : int;
  mutable bus : int array;
  mutable fpu : int array;
  resource : Resource.t;
}

let create ~ii resource =
  if ii <= 0 then invalid_arg "Mrt.create: ii must be positive";
  { ii; bus = Array.make ii 0; fpu = Array.make ii 0; resource }

let reset t ~ii =
  if ii <= 0 then invalid_arg "Mrt.reset: ii must be positive";
  if ii > Array.length t.bus then begin
    t.bus <- Array.make ii 0;
    t.fpu <- Array.make ii 0
  end
  else begin
    Array.fill t.bus 0 ii 0;
    Array.fill t.fpu 0 ii 0
  end;
  t.ii <- ii

let ii t = t.ii

let row t = function Opcode.Bus -> t.bus | Opcode.Fpu -> t.fpu

let norm t time = ((time mod t.ii) + t.ii) mod t.ii

(* A reservation of [occupancy] cycles starting at [time] covers every
   kernel slot [occupancy / II] times, plus once more for the
   [occupancy mod II] slots starting at [time mod II].  (An occupancy
   larger than II arises for unpipelined divides/square roots at small
   II: in steady state several units serve interleaved iterations, and
   the per-slot count below charges them all.) *)
let demand t ~time ~occupancy slot =
  let full = occupancy / t.ii and rem = occupancy mod t.ii in
  let start = norm t time in
  let in_window =
    if rem = 0 then false
    else
      let offset = (slot - start + t.ii) mod t.ii in
      offset < rem
  in
  full + if in_window then 1 else 0

let can_place t cls ~time ~occupancy =
  let slots = Resource.slots t.resource cls in
  let r = row t cls in
  let full = occupancy / t.ii and rem = occupancy mod t.ii in
  if full = 0 then begin
    (* Common case (pipelined ops, short occupancies): only the
       [occupancy] slots of the window are touched, and the scan stops
       at the first full slot. *)
    let start = norm t time in
    let rec fits k =
      k >= rem || (r.((start + k) mod t.ii) < slots && fits (k + 1))
    in
    fits 0
  end
  else begin
    (* occupancy >= II implies II <= occupancy (bounded by the largest
       latency), so the full scan stays cheap; still exits on the first
       over-subscribed slot. *)
    let rec fits s =
      s >= t.ii || (r.(s) + demand t ~time ~occupancy s <= slots && fits (s + 1))
    in
    fits 0
  end

(* Place/remove touch only the slots whose demand is non-zero: for a
   pipelined reservation (occupancy < II) that is the [occupancy]-slot
   window, not the whole kernel — the all-slots walk made every
   reservation O(II), which dominated high-II runs (escalated and
   span-scheduled loops).  Failure leaves the table unchanged. *)
let place t cls ~time ~occupancy =
  let slots = Resource.slots t.resource cls in
  let r = row t cls in
  let full = occupancy / t.ii and rem = occupancy mod t.ii in
  if full = 0 then begin
    let start = norm t time in
    let rec fits k = k >= rem || (r.((start + k) mod t.ii) < slots && fits (k + 1)) in
    if not (fits 0) then invalid_arg "Mrt.place: slot over-subscribed";
    for k = 0 to rem - 1 do
      let s = (start + k) mod t.ii in
      r.(s) <- r.(s) + 1
    done
  end
  else begin
    let rec fits s =
      s >= t.ii || (r.(s) + demand t ~time ~occupancy s <= slots && fits (s + 1))
    in
    if not (fits 0) then invalid_arg "Mrt.place: slot over-subscribed";
    for s = 0 to t.ii - 1 do
      r.(s) <- r.(s) + demand t ~time ~occupancy s
    done
  end

(* A remove that does not match a prior place would silently underflow
   the occupancy counts (and corrupt every later can_place answer), so
   it fails loudly — and diagnostically: the message names the class,
   the requested time and its kernel slot, the occupancy, the II, and
   the first slot whose count is too small to support the removal. *)
let remove_underflow t cls ~time ~occupancy ~slot ~have ~need =
  invalid_arg
    (Printf.sprintf
       "Mrt.remove: no matching reservation (%s, time %d -> kernel slot %d, occupancy %d, \
        II %d): slot %d holds %d, removal needs %d"
       (match cls with Opcode.Bus -> "bus" | Opcode.Fpu -> "fpu")
       time (norm t time) occupancy t.ii slot have need)

let remove t cls ~time ~occupancy =
  let r = row t cls in
  let full = occupancy / t.ii and rem = occupancy mod t.ii in
  if full = 0 then begin
    let start = norm t time in
    let rec check k =
      if k < rem then begin
        let s = (start + k) mod t.ii in
        if r.(s) < 1 then remove_underflow t cls ~time ~occupancy ~slot:s ~have:r.(s) ~need:1;
        check (k + 1)
      end
    in
    check 0;
    for k = 0 to rem - 1 do
      let s = (start + k) mod t.ii in
      r.(s) <- r.(s) - 1
    done
  end
  else begin
    let rec check s =
      if s < t.ii then begin
        let need = demand t ~time ~occupancy s in
        if r.(s) < need then remove_underflow t cls ~time ~occupancy ~slot:s ~have:r.(s) ~need;
        check (s + 1)
      end
    in
    check 0;
    for s = 0 to t.ii - 1 do
      r.(s) <- r.(s) - demand t ~time ~occupancy s
    done
  end

let usage t cls ~slot = (row t cls).(norm t slot)
