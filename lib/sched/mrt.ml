module Resource = Wr_machine.Resource
module Opcode = Wr_ir.Opcode

type t = { ii : int; bus : int array; fpu : int array; resource : Resource.t }

let create ~ii resource =
  if ii <= 0 then invalid_arg "Mrt.create: ii must be positive";
  { ii; bus = Array.make ii 0; fpu = Array.make ii 0; resource }

let ii t = t.ii

let row t = function Opcode.Bus -> t.bus | Opcode.Fpu -> t.fpu

let norm t time = ((time mod t.ii) + t.ii) mod t.ii

(* A reservation of [occupancy] cycles starting at [time] covers every
   kernel slot [occupancy / II] times, plus once more for the
   [occupancy mod II] slots starting at [time mod II].  (An occupancy
   larger than II arises for unpipelined divides/square roots at small
   II: in steady state several units serve interleaved iterations, and
   the per-slot count below charges them all.) *)
let demand t ~time ~occupancy slot =
  let full = occupancy / t.ii and rem = occupancy mod t.ii in
  let start = norm t time in
  let in_window =
    if rem = 0 then false
    else
      let offset = (slot - start + t.ii) mod t.ii in
      offset < rem
  in
  full + if in_window then 1 else 0

let can_place t cls ~time ~occupancy =
  let slots = Resource.slots t.resource cls in
  let r = row t cls in
  let full = occupancy / t.ii and rem = occupancy mod t.ii in
  if full = 0 then begin
    (* Common case (pipelined ops, short occupancies): only the
       [occupancy] slots of the window are touched — O(occupancy). *)
    let start = norm t time in
    let ok = ref true in
    for k = 0 to rem - 1 do
      if r.((start + k) mod t.ii) + 1 > slots then ok := false
    done;
    !ok
  end
  else begin
    (* occupancy >= II implies II <= occupancy (bounded by the largest
       latency), so the full scan stays cheap. *)
    let ok = ref true in
    for s = 0 to t.ii - 1 do
      if r.(s) + demand t ~time ~occupancy s > slots then ok := false
    done;
    !ok
  end

let place t cls ~time ~occupancy =
  let slots = Resource.slots t.resource cls in
  let r = row t cls in
  for s = 0 to t.ii - 1 do
    let d = demand t ~time ~occupancy s in
    if r.(s) + d > slots then begin
      for s' = 0 to s - 1 do
        r.(s') <- r.(s') - demand t ~time ~occupancy s'
      done;
      invalid_arg "Mrt.place: slot over-subscribed"
    end;
    r.(s) <- r.(s) + d
  done

let remove t cls ~time ~occupancy =
  let r = row t cls in
  for s = 0 to t.ii - 1 do
    let d = demand t ~time ~occupancy s in
    if r.(s) < d then invalid_arg "Mrt.remove: empty slot";
    r.(s) <- r.(s) - d
  done

let usage t cls ~slot = (row t cls).(norm t slot)
