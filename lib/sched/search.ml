(* Compatibility wrapper: the backtracking search grew into the exact
   backend ({!Exact}); this module keeps the historical [Search]
   entry points alive for existing cross-check tests and callers. *)

type outcome = Exact.outcome = Feasible of Schedule.t | Infeasible | Gave_up

let at_ii resource ~cycle_model ~ii ?max_nodes ?scratch g =
  Exact.at_ii resource ~cycle_model ~ii ?max_nodes ?scratch g

let min_ii = Exact.min_ii
