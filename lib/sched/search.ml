module Ddg = Wr_ir.Ddg
module Dependence = Wr_ir.Dependence
module Operation = Wr_ir.Operation
module Opcode = Wr_ir.Opcode
module Cycle_model = Wr_machine.Cycle_model
module Resource = Wr_machine.Resource
module Obs = Wr_obs.Obs

type outcome = Feasible of Schedule.t | Infeasible | Gave_up

exception Out_of_budget

let neg_inf = min_int / 4

(* The scratch matrix must be at least n x n; rows are reset here, so a
   caller (min_ii) can hand the same buffer to every II attempt instead
   of paying an O(n^2) allocation per retry. *)
let path_matrix ?scratch n =
  match scratch with
  | Some m when Array.length m >= n && (n = 0 || Array.length m.(0) >= n) ->
      for i = 0 to n - 1 do
        Array.fill m.(i) 0 n neg_inf
      done;
      m
  | _ -> Array.make_matrix n n neg_inf

let at_ii resource ~cycle_model ~ii ?(max_nodes = 200_000) ?scratch g =
  let n = Ddg.num_ops g in
  if n = 0 then Feasible (Schedule.make ~ii ~times:[||] ~cycle_model)
  else begin
    (* Assignment order: critical recurrences, then height — the same
       priority the heuristic uses, which keeps windows tight early. *)
    let critical = Mii.critical_recurrence_ops ~cycle_model g ~ii:(Mii.rec_mii ~cycle_model g) in
    let h = Modulo.heights ~cycle_model g ~ii in
    let priority = Array.init n (fun i -> i) in
    Array.sort
      (fun a b ->
        match compare critical.(b) critical.(a) with
        | 0 -> ( match compare h.(b) h.(a) with 0 -> compare a b | c -> c)
        | c -> c)
      priority;
    (* Assignment order: traverse each weakly-connected component
       contiguously (BFS over undirected adjacency from the
       highest-priority seed), so every operation after a component's
       anchor has an assigned neighbour and therefore a finite
       dependence window. *)
    let order = Array.make n 0 in
    let visited = Array.make n false in
    let pos = ref 0 in
    let neighbours v =
      List.map (fun (e : Dependence.t) -> e.dst) (Ddg.succs g v)
      @ List.map (fun (e : Dependence.t) -> e.src) (Ddg.preds g v)
    in
    Array.iter
      (fun seed ->
        if not visited.(seed) then begin
          let queue = Queue.create () in
          Queue.add seed queue;
          visited.(seed) <- true;
          while not (Queue.is_empty queue) do
            let v = Queue.pop queue in
            order.(!pos) <- v;
            incr pos;
            List.iter
              (fun w ->
                if not visited.(w) then begin
                  visited.(w) <- true;
                  Queue.add w queue
                end)
              (neighbours v)
          done
        end)
      priority;
    let time = Array.make n (-1) in
    let assigned = Array.make n false in
    let mrt = Mrt.create ~ii resource in
    let nodes = ref 0 in
    let cls i = Opcode.resource_class (Ddg.op g i).Operation.opcode in
    let occ i = Cycle_model.occupancy cycle_model (Ddg.op g i).Operation.opcode in
    (* All-pairs longest dependence paths at this II (max-plus
       Floyd-Warshall over weights [delay - II*distance]; no positive
       cycles at II >= RecMII).  Windows below use the TRANSITIVE
       bounds — an operation's window accounts for chains through
       still-unassigned intermediates, which direct-neighbour bounds
       miss. *)
    let path = path_matrix ?scratch n in
    for v = 0 to n - 1 do
      path.(v).(v) <- 0
    done;
    let view = Ddg.edge_view g in
    let delays = Mii.edge_delays ~cycle_model g in
    for e = 0 to view.Ddg.n_edges - 1 do
      let w = delays.(e) - (ii * view.Ddg.e_dist.(e)) in
      if w > path.(view.Ddg.e_src.(e)).(view.Ddg.e_dst.(e)) then
        path.(view.Ddg.e_src.(e)).(view.Ddg.e_dst.(e)) <- w
    done;
    for k = 0 to n - 1 do
      for i = 0 to n - 1 do
        if path.(i).(k) > neg_inf then
          for j = 0 to n - 1 do
            if path.(k).(j) > neg_inf && path.(i).(k) + path.(k).(j) > path.(i).(j) then
              path.(i).(j) <- path.(i).(k) + path.(k).(j)
          done
      done
    done;
    (* Window of [op] given the assigned set: times may go negative (a
       producer assigned after its consumer sits below it); the final
       schedule is shifted to non-negative.  An op with no dependence
       relation to any assigned op anchors a fresh region at
       [0, II-1]. *)
    let window op =
      let lo = ref None and hi = ref None in
      for v = 0 to n - 1 do
        if assigned.(v) then begin
          if path.(v).(op) > neg_inf then
            lo :=
              Some
                (Stdlib.max (Option.value ~default:min_int !lo) (time.(v) + path.(v).(op)));
          if path.(op).(v) > neg_inf then
            hi :=
              Some
                (Stdlib.min (Option.value ~default:max_int !hi) (time.(v) - path.(op).(v)))
        end
      done;
      match (!lo, !hi) with
      | None, None -> (0, ii - 1)
      | Some lo, None -> (lo, lo + ii - 1)
      | None, Some hi -> (hi - ii + 1, hi)
      | Some lo, Some hi -> (lo, Stdlib.min hi (lo + ii - 1))
    in
    let rec assign k =
      if k = n then true
      else begin
        let op = order.(k) in
        let lo, hi = window op in
        let rec try_time t =
          if t > hi then false
          else begin
            incr nodes;
            if !nodes > max_nodes then raise Out_of_budget;
            if Mrt.can_place mrt (cls op) ~time:t ~occupancy:(occ op) then begin
              Mrt.place mrt (cls op) ~time:t ~occupancy:(occ op);
              time.(op) <- t;
              assigned.(op) <- true;
              if assign (k + 1) then true
              else begin
                Mrt.remove mrt (cls op) ~time:t ~occupancy:(occ op);
                assigned.(op) <- false;
                try_time (t + 1)
              end
            end
            else try_time (t + 1)
          end
        in
        try_time lo
      end
    in
    let flush outcome_counter =
      if Obs.enabled () then begin
        Obs.incr "search/at_ii";
        Obs.add "search/nodes" !nodes;
        Obs.incr outcome_counter
      end
    in
    match assign 0 with
    | exception Out_of_budget ->
        flush "search/gave_up";
        Gave_up
    | false ->
        flush "search/infeasible";
        Infeasible
    | true -> (
        flush "search/feasible";
        (* Normalize to non-negative times: a uniform shift preserves
           dependences and rotates the reservation table consistently. *)
        let lowest = Array.fold_left Stdlib.min time.(0) time in
        let shift = if lowest < 0 then -lowest else 0 in
        let time = Array.map (fun t -> t + shift) time in
        let schedule = Schedule.make ~ii ~times:time ~cycle_model in
        match Schedule.validate g resource schedule with
        | Ok () -> Feasible schedule
        | Error msg -> failwith ("Search.at_ii: produced an invalid schedule: " ^ msg))
  end

let min_ii resource ~cycle_model ?max_nodes g =
  let mii = Mii.mii resource ~cycle_model g in
  (* One scratch path matrix shared by all (up to 32) II attempts. *)
  let n = Ddg.num_ops g in
  let scratch = Array.make_matrix n n neg_inf in
  let rec go ii attempts_left =
    (* Scheduler-attempt boundary: each at_ii call is already bounded
       by max_nodes, so a wall-clock budget only needs to fire between
       attempts. *)
    Wr_util.Deadline.check ();
    if attempts_left = 0 then None
    else
      match at_ii resource ~cycle_model ~ii ?max_nodes ~scratch g with
      | Feasible s -> Some (ii, s)
      | Infeasible | Gave_up -> go (ii + 1) (attempts_left - 1)
  in
  let r = Obs.span "search/min_ii" (fun () -> go mii 32) in
  if Obs.enabled () then begin
    Obs.incr "search/runs";
    match r with
    | Some (ii, _) -> Obs.observe "search/ii_minus_mii" (ii - mii)
    | None -> Obs.incr "search/exhausted"
  end;
  r
