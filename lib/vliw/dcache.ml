module Ddg = Wr_ir.Ddg
module Operation = Wr_ir.Operation
module Opcode = Wr_ir.Opcode
module Memref = Wr_ir.Memref
module Schedule = Wr_sched.Schedule

type t = { line_bytes : int; num_sets : int; tags : int array }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let make ?(line_bytes = 32) ~size_bytes () =
  if (not (is_pow2 line_bytes)) || not (is_pow2 size_bytes) then
    invalid_arg "Dcache.make: sizes must be powers of two";
  if line_bytes > size_bytes then invalid_arg "Dcache.make: line larger than cache";
  let num_sets = size_bytes / line_bytes in
  { line_bytes; num_sets; tags = Array.make num_sets (-1) }

type stats = { accesses : int; words : int; misses : int; loads : int }

(* Each array gets its own 128M-word region so distinct arrays never
   alias; a per-array hash staggers the bases so streams do not start
   set-aligned (real allocators do not hand out cache-aligned arrays in
   lockstep).  Word addresses are 8 bytes. *)
let byte_address ~array_id ~word =
  let stagger = Hashtbl.hash (array_id, "base") land 0x3FFF in
  (((array_id * 0x8000000) + stagger) + word) * 8

let touch t ~is_load ~array_id ~word ~lanes stats =
  let first_line = byte_address ~array_id ~word / t.line_bytes in
  let last_line = byte_address ~array_id ~word:(word + lanes - 1) / t.line_bytes in
  let acc = ref stats in
  for line = first_line to last_line do
    (* Prehistory reads (negative offsets in early iterations) produce
       negative addresses; normalize the set index. *)
    let set = ((line mod t.num_sets) + t.num_sets) mod t.num_sets in
    let hit = t.tags.(set) = line in
    (if is_load && not hit then t.tags.(set) <- line);
    acc :=
      {
        accesses = !acc.accesses + 1;
        words = !acc.words;
        misses = (!acc.misses + if is_load && not hit then 1 else 0);
        loads = (!acc.loads + if is_load then 1 else 0);
      }
  done;
  { !acc with words = !acc.words + lanes }

let replay t g (s : Schedule.t) ~iterations =
  if iterations < 0 then invalid_arg "Dcache.replay: negative iterations";
  let mem_ops =
    Array.to_list (Ddg.ops g)
    |> List.filter_map (fun (o : Operation.t) ->
           match o.Operation.mem with
           | Some m ->
               Some
                 ( s.Schedule.times.(o.Operation.id),
                   o.Operation.opcode = Opcode.Load,
                   m,
                   o.Operation.lanes )
           | None -> None)
  in
  (* All instances in global issue order. *)
  let instances =
    List.concat_map
      (fun (time, is_load, m, lanes) ->
        List.init iterations (fun i -> (time + (i * s.Schedule.ii), is_load, m, lanes, i)))
      mem_ops
    |> List.sort compare
  in
  List.fold_left
    (fun stats (_, is_load, (m : Memref.t), lanes, i) ->
      let word = Memref.address_at m ~iteration:i in
      touch t ~is_load ~array_id:m.Memref.array_id ~word ~lanes stats)
    { accesses = 0; words = 0; misses = 0; loads = 0 }
    instances

let miss_rate st = if st.loads = 0 then 0.0 else float_of_int st.misses /. float_of_int st.loads
