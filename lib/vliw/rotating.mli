(** Rotating register file allocation (the Cydra-5 / IA-64 mechanism
    the paper's PLDI-92 allocator targets).

    A rotating file of [R] registers renames once per initiation
    interval: the value a loop body names [r] is physically
    [(r - iteration) mod R], so consecutive iterations' instances of
    the same virtual register land in different physical registers and
    no kernel unrolling is needed (contrast {!Codegen}'s MVE).

    Allocation reduces to cyclic-arc packing: instance [(v, i)] lives
    in physical [(r_v - i) mod R] during
    [\[start_v + i*II, start_v + i*II + L_v)]; two values collide
    exactly when their arcs [\[r_v*II + start_v, +L_v)] overlap on a
    circle of circumference [R * II].  The allocator places arcs
    longest-first with first-fit over the [R] admissible positions
    (each value's position is fixed modulo II by its schedule slot) and
    grows [R] until everything fits. *)

type allocation = {
  num_rotating : int;  (** [R] *)
  virtual_of : int array;  (** vreg -> rotating register number, -1 if none *)
  live_in_of : (int, int) Hashtbl.t;  (** live-in vreg -> static register *)
  num_static : int;  (** static registers (live-ins) *)
  total_registers : int;  (** [num_rotating + num_static] *)
}

val allocate : Wr_ir.Ddg.t -> Wr_sched.Schedule.t -> allocation

val physical_of_instance : allocation -> vreg:int -> iteration:int -> int
(** Physical register of the value of [vreg] produced at [iteration];
    live-ins resolve to their static register.  Rotating registers are
    numbered after the static ones. *)

val lower_bound : Wr_ir.Ddg.t -> Wr_sched.Schedule.t -> int
(** [max (ceil (sum L / II)) (ceil (max L / II))] — the slot-occupancy
    bound the allocator can at best achieve. *)
