module Ddg = Wr_ir.Ddg
module Operation = Wr_ir.Operation
module Schedule = Wr_sched.Schedule
module Lifetime = Wr_regalloc.Lifetime

type allocation = {
  num_rotating : int;
  virtual_of : int array;
  live_in_of : (int, int) Hashtbl.t;
  num_static : int;
  total_registers : int;
}

let lower_bound g (s : Schedule.t) =
  let ii = s.Schedule.ii in
  let lifetimes = Lifetime.of_schedule g s in
  let total = List.fold_left (fun acc lt -> acc + Lifetime.length lt) 0 lifetimes in
  let longest = List.fold_left (fun acc lt -> Stdlib.max acc (Lifetime.length lt)) 0 lifetimes in
  Stdlib.max ((total + ii - 1) / ii) ((longest + ii - 1) / ii)

(* Try to pack every lifetime's arc on a circle of circumference R*II;
   value v may sit at positions (k*II + start_v mod II) for k in
   [0, R). *)
let try_pack ~ii ~r lifetimes =
  let circumference = r * ii in
  let occupied = Array.make circumference false in
  let placements = ref [] in
  let fits pos len =
    len <= circumference
    &&
    let rec check k = k = len || ((not occupied.((pos + k) mod circumference)) && check (k + 1)) in
    check 0
  in
  let mark pos len =
    for k = 0 to len - 1 do
      occupied.((pos + k) mod circumference) <- true
    done
  in
  (* Longest arcs are the hardest to place: anchor them first. *)
  let ordered =
    List.sort (fun a b -> compare (Lifetime.length b) (Lifetime.length a)) lifetimes
  in
  let ok =
    List.for_all
      (fun (lt : Lifetime.t) ->
        let len = Lifetime.length lt in
        let slot = ((lt.Lifetime.start mod ii) + ii) mod ii in
        let rec attempt k =
          if k = r then false
          else
            let pos = (k * ii) + slot in
            if fits pos len then begin
              mark pos len;
              (* The arc position index [k] counts whole turns from the
                 value's absolute start; the virtual register number
                 must discount the defining operation's stage so that
                 phys = (virtual - iteration) mod R reproduces the
                 packed position (arc at (virtual + stage)*II + slot). *)
              let stage = lt.Lifetime.start / ii in
              placements := (lt.Lifetime.vreg, k - stage) :: !placements;
              true
            end
            else attempt (k + 1)
        in
        attempt 0)
      ordered
  in
  if ok then Some !placements else None

let allocate g (s : Schedule.t) =
  let ii = s.Schedule.ii in
  let lifetimes = Lifetime.of_schedule g s in
  let nv = Ddg.num_vregs g in
  let virtual_of = Array.make nv (-1) in
  let num_rotating =
    match lifetimes with
    | [] -> 0
    | _ ->
        let lo = Stdlib.max 1 (lower_bound g s) in
        let rec search r =
          (* First-fit packing is not optimal, but a linear scan from
             the occupancy bound converges in a handful of steps. *)
          if r > (4 * lo) + 64 then
            invalid_arg "Rotating.allocate: packing failed (unexpectedly fragmented)"
          else
            match try_pack ~ii ~r lifetimes with
            | Some placements ->
                List.iter (fun (v, k) -> virtual_of.(v) <- ((k mod r) + r) mod r) placements;
                r
            | None -> search (r + 1)
        in
        search lo
  in
  (* Live-ins are loop-invariant: they live in static registers outside
     the rotating region, numbered in first-use order. *)
  let live_in_of = Hashtbl.create 8 in
  Array.iter
    (fun (o : Operation.t) ->
      List.iter
        (fun r ->
          if Ddg.def_site g r = None && not (Hashtbl.mem live_in_of r) then
            Hashtbl.add live_in_of r (Hashtbl.length live_in_of))
        o.Operation.uses)
    (Ddg.ops g);
  let num_static = Hashtbl.length live_in_of in
  {
    num_rotating;
    virtual_of;
    live_in_of;
    num_static;
    total_registers = num_rotating + num_static;
  }

let physical_of_instance a ~vreg ~iteration =
  match Hashtbl.find_opt a.live_in_of vreg with
  | Some r -> r
  | None ->
      let v = a.virtual_of.(vreg) in
      if v < 0 then invalid_arg "Rotating.physical_of_instance: unallocated vreg";
      let r = a.num_rotating in
      a.num_static + ((((v - iteration) mod r) + r) mod r)
