(** VLIW code generation for a modulo-scheduled loop on a conventional
    (non-rotating) register file: modulo variable expansion (MVE) plus
    kernel unrolling.

    A value whose lifetime exceeds one initiation interval is alive in
    several concurrent iterations at once, so on a conventional
    register file each such value needs [ceil(L / II)] registers used
    round-robin, and the kernel must be unrolled so that every
    instance of the loop body names its registers statically.  We round
    each value's register count up to a power of two and unroll by the
    maximum, so every period divides the unroll degree (the classic
    engineering compromise: at most 2x the registers of an ideal
    rotating file, in exchange for simple code).

    This module is the conventional-file counterpart of
    {!Wr_regalloc.Alloc}, whose wands model prices a {e rotating}
    register file (the Cydra-5/PLDI-92 setting the paper's allocator
    comes from) — comparing the two is the rotating-file ablation in
    the bench harness. *)

type allocation = {
  unroll : int;  (** kernel unroll degree [U]; every period divides it *)
  base : int array;  (** vreg -> first physical register of its block *)
  period : int array;  (** vreg -> registers in its round-robin block *)
  live_in_base : int;  (** live-ins occupy [live_in_base ..] *)
  live_in_of : (int, int) Hashtbl.t;  (** live-in vreg -> physical register *)
  total_registers : int;  (** loop variants + live-ins *)
}

val allocate : Wr_ir.Ddg.t -> Wr_sched.Schedule.t -> allocation
(** MVE register assignment for the schedule. *)

val physical_of_instance : allocation -> vreg:int -> iteration:int -> int
(** The physical register holding the value of [vreg] produced at the
    given iteration (live-ins: their dedicated register, any
    iteration). *)

type counts = {
  prologue_words : int;
  kernel_words : int;  (** [unroll * II] *)
  epilogue_words : int;
  nop_slots : int;  (** empty issue slots across the whole program *)
  filled_slots : int;
}

val word_counts :
  Wr_ir.Ddg.t -> Wr_sched.Schedule.t -> allocation -> Wr_machine.Config.t -> counts
(** Static code accounting including pipeline fill and drain — the
    overhead Figure 7's kernel-only model ignores. *)

val emit :
  Wr_ir.Ddg.t ->
  Wr_sched.Schedule.t ->
  allocation ->
  Wr_machine.Config.t ->
  string
(** Human-readable assembly listing of the unrolled steady-state
    kernel, one line per instruction word, slots separated by [ || ]. *)

val emit_program :
  Wr_ir.Ddg.t ->
  Wr_sched.Schedule.t ->
  allocation ->
  Wr_machine.Config.t ->
  iterations:int ->
  string
(** The complete flat program for a concrete iteration count: pipeline
    fill (prologue), the steady-state region (annotated with where the
    hardware would loop), and the drain (epilogue).  Iteration counts
    are concrete, so every word is shown as the machine would execute
    it; mainly a debugging and teaching aid — real code would branch
    over the kernel. *)
