module Ddg = Wr_ir.Ddg
module Operation = Wr_ir.Operation
module Opcode = Wr_ir.Opcode
module Memref = Wr_ir.Memref
module Loop = Wr_ir.Loop
module Schedule = Wr_sched.Schedule
module Cycle_model = Wr_machine.Cycle_model
module Config = Wr_machine.Config
module Resource = Wr_machine.Resource

type mapping = { total_registers : int; physical : vreg:int -> iteration:int -> int }

let mve_mapping (a : Codegen.allocation) =
  {
    total_registers = a.Codegen.total_registers;
    physical = (fun ~vreg ~iteration -> Codegen.physical_of_instance a ~vreg ~iteration);
  }

let rotating_mapping (a : Rotating.allocation) =
  {
    total_registers = a.Rotating.total_registers;
    physical = (fun ~vreg ~iteration -> Rotating.physical_of_instance a ~vreg ~iteration);
  }

type result = {
  cycles : int;
  kernel_cycles : int;
  memory : Interp.memory_image;
  issued : int;
}

exception Hazard of string

let hazard fmt = Printf.ksprintf (fun s -> raise (Hazard s)) fmt

let apply_unary opc a =
  let f =
    match opc with
    | Opcode.Fneg -> fun x -> -.x
    | Opcode.Fabs -> Float.abs
    | Opcode.Fsqrt -> fun x -> sqrt (Float.abs x)
    | Opcode.Fcopy -> fun x -> x
    | _ -> invalid_arg "Sim: not unary"
  in
  Array.map f a

let apply_binary opc a b =
  let f =
    match opc with
    | Opcode.Fadd -> ( +. )
    | Opcode.Fsub -> ( -. )
    | Opcode.Fmul -> ( *. )
    | Opcode.Fdiv -> ( /. )
    | _ -> invalid_arg "Sim: not binary"
  in
  Array.init (Array.length a) (fun k -> f a.(k) b.(k))

let run g (s : Schedule.t) (a : mapping) (c : Config.t) ~iterations =
  if iterations < 0 then invalid_arg "Sim.run: negative iterations";
  let n = Ddg.num_ops g in
  let ii = s.Schedule.ii in
  let cm = s.Schedule.cycle_model in
  let operands = Array.init n (fun v -> Array.of_list (Ddg.operands g v)) in
  (* Physical register file: vectors, initialized to the prehistory
     constant (length-1 vectors broadcast on read). *)
  let regs = Array.make (Stdlib.max 1 a.total_registers) [| Interp.prehistory |] in
  (* Live-ins are architectural state set up before the loop;
     first-use order matches Interp's enumeration. *)
  let live_in_position = ref 0 in
  let live_in_seen = Hashtbl.create 8 in
  Array.iter
    (fun (o : Operation.t) ->
      List.iter
        (fun r ->
          if Ddg.def_site g r = None then begin
            let phys = a.physical ~vreg:r ~iteration:0 in
            if not (Hashtbl.mem live_in_seen phys) then begin
              Hashtbl.add live_in_seen phys ();
              regs.(phys) <- [| Interp.live_in_value !live_in_position |];
              incr live_in_position
            end
          end)
        o.Operation.uses)
    (Ddg.ops g);
  let memory : (int * int, float) Hashtbl.t = Hashtbl.create 1024 in
  let read_memory arr addr =
    match Hashtbl.find_opt memory (arr, addr) with
    | Some v -> v
    | None -> if addr < 0 then Interp.prehistory else Interp.initial_memory_value arr addr
  in
  (* Pending effects, bucketed by cycle. *)
  let reg_writes : (int, (int * float array) list) Hashtbl.t = Hashtbl.create 256 in
  let mem_writes : (int, (int * int * float) list) Hashtbl.t = Hashtbl.create 256 in
  let push tbl t x = Hashtbl.replace tbl t (x :: Option.value ~default:[] (Hashtbl.find_opt tbl t)) in
  (* Structural hazard tracking: unit-cycles in use, per class. *)
  let bus_use : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let fpu_use : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let reserve tbl slots cls_name t occ =
    for k = t to t + occ - 1 do
      let u = 1 + Option.value ~default:0 (Hashtbl.find_opt tbl k) in
      if u > slots then hazard "%s over-subscribed at cycle %d (%d > %d)" cls_name k u slots;
      Hashtbl.replace tbl k u
    done
  in
  (* Register-file port tracking: the area/timing models price
     2 reads + 1 write per FPU and 1 read + 1 write per bus; the
     executed program must fit those ports cycle by cycle. *)
  let read_ports = Config.read_ports c and write_ports = Config.write_ports c in
  let port_reads : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let port_writes : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let use_ports tbl limit what t k =
    let u = k + Option.value ~default:0 (Hashtbl.find_opt tbl t) in
    if u > limit then hazard "register %s ports over-subscribed at cycle %d (%d > %d)" what t u limit;
    Hashtbl.replace tbl t u
  in
  let span = if n = 0 then 0 else Schedule.span s in
  let t_max = if iterations = 0 then 0 else ((iterations - 1) * ii) + span + 40 in
  let issued = ref 0 in
  let last_effect = ref 0 in
  let operand_value ~lanes (x : Ddg.operand) ~iteration =
    (* A carried use of an iteration before the first reads the value
       the compiler's prologue set up — the prehistory constant.  This
       must not go through the register file: on a rotating file the
       physical register of a never-written instance is shared with
       other (dead) values and would expose stale data. *)
    if Ddg.def_site g x.Ddg.reg <> None && iteration - x.Ddg.distance < 0 then
      Array.make lanes Interp.prehistory
    else begin
    let phys = a.physical ~vreg:x.Ddg.reg ~iteration:(iteration - x.Ddg.distance) in
    let vec = regs.(phys) in
    match x.Ddg.lane with
    | Some k ->
        if Array.length vec = 1 then [| vec.(0) |]
        else if k < Array.length vec then [| vec.(k) |]
        else hazard "lane %d out of range of r%d" k phys
    | None ->
        if Array.length vec = lanes then vec
        else if Array.length vec = 1 then Array.make lanes vec.(0)
        else hazard "width mismatch reading r%d" phys
    end
  in
  for t = 0 to t_max do
    (* 1. Write-backs scheduled for this cycle land before issue. *)
    (match Hashtbl.find_opt reg_writes t with
    | Some ws ->
        List.iter (fun (r, v) -> regs.(r) <- v) (List.rev ws);
        Hashtbl.remove reg_writes t
    | None -> ());
    (match Hashtbl.find_opt mem_writes t with
    | Some ws ->
        List.iter (fun (arr, addr, v) -> Hashtbl.replace memory (arr, addr) v) (List.rev ws);
        Hashtbl.remove mem_writes t
    | None -> ());
    (* 2. Issue every instance scheduled at this cycle. *)
    for u = 0 to n - 1 do
      let d = t - s.Schedule.times.(u) in
      if d >= 0 && d mod ii = 0 then begin
        let iteration = d / ii in
        if iteration < iterations then begin
          let o = Ddg.op g u in
          incr issued;
          let occ = Cycle_model.occupancy cm o.Operation.opcode in
          (match Opcode.resource_class o.Operation.opcode with
          | Opcode.Bus -> reserve bus_use c.Config.buses "bus" t occ
          | Opcode.Fpu -> reserve fpu_use c.Config.fpus "fpu" t occ);
          (* Port usage: operand reads at issue, result write at
             write-back.  Fma's addend arrives on the FPU's dedicated
             accumulator port — the priced file has two general read
             ports per FPU, so only the two multiplicands contend for
             them. *)
          let port_uses =
            match o.Operation.opcode with
            | Opcode.Fma -> 2
            | _ -> List.length o.Operation.uses
          in
          use_ports port_reads read_ports "read" t port_uses;
          (match o.Operation.def with
          | Some _ ->
              use_ports port_writes write_ports "write"
                (t + Cycle_model.latency_of_op cm o.Operation.opcode)
                1
          | None -> ());
          let lanes = o.Operation.lanes in
          let latency = Cycle_model.latency_of_op cm o.Operation.opcode in
          match o.Operation.opcode with
          | Opcode.Load ->
              let m = Option.get o.Operation.mem in
              let base = Memref.address_at m ~iteration in
              let vec = Array.init lanes (fun k -> read_memory m.Memref.array_id (base + k)) in
              let dst = a.physical ~vreg:(Option.get o.Operation.def) ~iteration in
              push reg_writes (t + latency) (dst, vec);
              last_effect := Stdlib.max !last_effect (t + latency)
          | Opcode.Store ->
              let m = Option.get o.Operation.mem in
              let base = Memref.address_at m ~iteration in
              let data = operand_value ~lanes operands.(u).(0) ~iteration in
              Array.iteri
                (fun k x -> push mem_writes (t + 1) (m.Memref.array_id, base + k, x))
                data;
              last_effect := Stdlib.max !last_effect (t + 1)
          | (Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fdiv) as opc ->
              let x = operand_value ~lanes operands.(u).(0) ~iteration in
              let y = operand_value ~lanes operands.(u).(1) ~iteration in
              let dst = a.physical ~vreg:(Option.get o.Operation.def) ~iteration in
              push reg_writes (t + latency) (dst, apply_binary opc x y);
              last_effect := Stdlib.max !last_effect (t + latency)
          | (Opcode.Fneg | Opcode.Fabs | Opcode.Fsqrt | Opcode.Fcopy) as opc ->
              let x = operand_value ~lanes operands.(u).(0) ~iteration in
              let dst = a.physical ~vreg:(Option.get o.Operation.def) ~iteration in
              push reg_writes (t + latency) (dst, apply_unary opc x);
              last_effect := Stdlib.max !last_effect (t + latency)
          | Opcode.Fma ->
              let x = operand_value ~lanes operands.(u).(0) ~iteration in
              let y = operand_value ~lanes operands.(u).(1) ~iteration in
              let z = operand_value ~lanes operands.(u).(2) ~iteration in
              let dst = a.physical ~vreg:(Option.get o.Operation.def) ~iteration in
              push reg_writes (t + latency)
                (dst, Array.init lanes (fun k -> Float.fma x.(k) y.(k) z.(k)));
              last_effect := Stdlib.max !last_effect (t + latency)
        end
      end
    done
  done;
  (* Flush any effects past t_max (drain). *)
  let flush tbl apply =
    let times = Hashtbl.fold (fun t _ acc -> t :: acc) tbl [] in
    List.iter
      (fun t ->
        match Hashtbl.find_opt tbl t with
        | Some ws ->
            List.iter apply (List.rev ws);
            Hashtbl.remove tbl t
        | None -> ())
      (List.sort compare times)
  in
  flush reg_writes (fun (r, v) -> regs.(r) <- v);
  flush mem_writes (fun (arr, addr, v) -> Hashtbl.replace memory (arr, addr) v);
  let memory_image =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) memory [])
  in
  {
    cycles = !last_effect + 1;
    kernel_cycles = ii * iterations;
    memory = memory_image;
    issued = !issued;
  }

let check_against_reference ?(file = `Conventional) (loop : Loop.t) (c : Config.t) ~iterations =
  let wide, _ = Wr_widen.Transform.widen loop ~width:c.Config.width in
  let g = wide.Loop.ddg in
  let cm = Cycle_model.Cycles_4 in
  let sched = (Wr_sched.Modulo.run (Resource.of_config c) ~cycle_model:cm g).Wr_sched.Modulo.schedule in
  let sched = { sched with Schedule.cycle_model = cm } in
  let alloc =
    match file with
    | `Conventional -> mve_mapping (Codegen.allocate g sched)
    | `Rotating -> rotating_mapping (Rotating.allocate g sched)
  in
  match run g sched alloc c ~iterations with
  | exception Hazard msg -> Error ("hazard: " ^ msg)
  | sim ->
      let reference = Interp.run ~iterations wide in
      let sim_image = { Interp.memory = sim.memory; loads = 0; stores = 0; flops = 0 } in
      if Interp.equal_memory reference sim_image then Ok sim
      else begin
        let diffs = Interp.diff_memory reference sim_image in
        Error
          (Printf.sprintf "%d memory locations differ (first: %s)" (List.length diffs)
             (match diffs with
             | ((arr, addr), l, r) :: _ ->
                 Printf.sprintf "A%d[%d] ref=%s sim=%s" arr addr
                   (match l with Some v -> string_of_float v | None -> "-")
                   (match r with Some v -> string_of_float v | None -> "-")
             | [] -> "?"))
      end
