(** Data-cache model and schedule-order trace analysis.

    The paper assumes perfect memory; its companion work (López et al.,
    ICS-97, wide buses) studies the memory side.  This module supplies
    a direct-mapped, write-through/no-allocate data cache — a typical
    late-90s L1 — and replays the {e memory access trace a modulo
    schedule actually produces} (operations in issue order, iterations
    interleaved by the software pipeline) to measure miss rates.

    The trace matters: a software-pipelined loop interleaves accesses
    of several iterations, and spill code adds iteration-indexed slot
    arrays that compete for cache sets with the program's own streams —
    the pollution cost of Figure 3's spill traffic. *)

type t

val make : ?line_bytes:int -> size_bytes:int -> unit -> t
(** Direct-mapped; default 32-byte lines.  Raises [Invalid_argument]
    on non-positive or non-power-of-two geometry. *)

type stats = {
  accesses : int;  (** transactions (a wide access is one transaction) *)
  words : int;  (** scalar words moved *)
  misses : int;  (** load transactions that missed (stores write through) *)
  loads : int;
}

val replay :
  t ->
  Wr_ir.Ddg.t ->
  Wr_sched.Schedule.t ->
  iterations:int ->
  stats
(** Replays the loop's memory accesses in schedule order for the given
    number of iterations.  A [lanes]-wide access touches its
    consecutive words and counts one transaction per cache line
    spanned.  The cache starts cold and is not reset between
    iterations. *)

val miss_rate : stats -> float
(** Load misses per load transaction; 0 when there are no loads. *)
