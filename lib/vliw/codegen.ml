module Ddg = Wr_ir.Ddg
module Operation = Wr_ir.Operation
module Opcode = Wr_ir.Opcode
module Memref = Wr_ir.Memref
module Schedule = Wr_sched.Schedule
module Lifetime = Wr_regalloc.Lifetime
module Config = Wr_machine.Config

type allocation = {
  unroll : int;
  base : int array;
  period : int array;
  live_in_base : int;
  live_in_of : (int, int) Hashtbl.t;
  total_registers : int;
}

let rec next_pow2 n k = if k >= n then k else next_pow2 n (2 * k)

let allocate g (s : Schedule.t) =
  let ii = s.Schedule.ii in
  let lifetimes = Lifetime.of_schedule g s in
  let nv = Ddg.num_vregs g in
  let base = Array.make nv (-1) and period = Array.make nv 0 in
  (* Period per defined vreg: smallest power of two >= ceil(L/II), so
     every period divides the common unroll degree. *)
  let unroll = ref 1 in
  List.iter
    (fun (lt : Lifetime.t) ->
      let k = (Lifetime.length lt + ii - 1) / ii in
      let k = next_pow2 (Stdlib.max 1 k) 1 in
      period.(lt.Lifetime.vreg) <- k;
      if k > !unroll then unroll := k)
    lifetimes;
  let next = ref 0 in
  List.iter
    (fun (lt : Lifetime.t) ->
      base.(lt.Lifetime.vreg) <- !next;
      next := !next + period.(lt.Lifetime.vreg))
    (List.sort (fun (a : Lifetime.t) b -> compare a.Lifetime.vreg b.Lifetime.vreg) lifetimes);
  let live_in_base = !next in
  let live_in_of = Hashtbl.create 8 in
  (* First-use order, as everywhere else. *)
  Array.iter
    (fun (o : Operation.t) ->
      List.iter
        (fun r ->
          if Ddg.def_site g r = None && not (Hashtbl.mem live_in_of r) then begin
            Hashtbl.add live_in_of r !next;
            incr next
          end)
        o.Operation.uses)
    (Ddg.ops g);
  {
    unroll = !unroll;
    base;
    period;
    live_in_base;
    live_in_of;
    total_registers = !next;
  }

let physical_of_instance a ~vreg ~iteration =
  match Hashtbl.find_opt a.live_in_of vreg with
  | Some r -> r
  | None ->
      if a.base.(vreg) < 0 then invalid_arg "Codegen.physical_of_instance: dead vreg";
      a.base.(vreg) + (((iteration mod a.period.(vreg)) + a.period.(vreg)) mod a.period.(vreg))

type counts = {
  prologue_words : int;
  kernel_words : int;
  epilogue_words : int;
  nop_slots : int;
  filled_slots : int;
}

let word_counts g (s : Schedule.t) a (c : Config.t) =
  let ii = s.Schedule.ii in
  let stages = Schedule.stage_count s in
  let kernel_words = a.unroll * ii in
  (* Fill: stages-1 iterations start before steady state; drain: the
     same number finish after it.  Each ramp word is one instruction
     word of the same width. *)
  let prologue_words = (stages - 1) * ii in
  let epilogue_words = Stdlib.max 0 (Schedule.span s - ii) in
  let slots_per_word = c.Config.buses + c.Config.fpus in
  let total_words = prologue_words + kernel_words + epilogue_words in
  (* Slot occupancy: kernel packs every op once per unrolled copy;
     ramps hold partial iterations — count ramp slots as the triangular
     sum of per-stage ops. *)
  let ops_per_iteration = Ddg.num_ops g in
  let kernel_filled = ops_per_iteration * a.unroll in
  let ramp_filled =
    (* Prologue issues iterations 0..stages-2 partially; by symmetry the
       epilogue drains the same amount. *)
    let per_stage = Array.make stages 0 in
    Array.iter
      (fun (o : Operation.t) ->
        let st = Schedule.stage s o.Operation.id in
        per_stage.(st) <- per_stage.(st) + 1)
      (Ddg.ops g);
    let acc = ref 0 in
    for k = 0 to stages - 2 do
      (* Iteration starting at kernel instance k has its first k+1
         stages executed in the prologue. *)
      for st = 0 to k do
        acc := !acc + per_stage.(st)
      done
    done;
    2 * !acc
  in
  let filled_slots = kernel_filled + ramp_filled in
  let nop_slots = (total_words * slots_per_word) - filled_slots in
  { prologue_words; kernel_words; epilogue_words; nop_slots; filled_slots = kernel_filled + ramp_filled }
  |> fun x -> { x with nop_slots = Stdlib.max 0 nop_slots }

(* Text of one operation instance at a concrete iteration. *)
let instance_text g a (o : Operation.t) ~iteration =
  let u = o.Operation.id in
  let operand k r =
    let x = List.nth (Ddg.operands g u) k in
    let reg =
      physical_of_instance a ~vreg:r ~iteration:(iteration - x.Ddg.distance)
    in
    match x.Ddg.lane with
    | None -> Printf.sprintf "r%d" reg
    | Some lane -> Printf.sprintf "r%d[%d]" reg lane
  in
  let dst =
    match o.Operation.def with
    | Some r -> Printf.sprintf "r%d <- " (physical_of_instance a ~vreg:r ~iteration)
    | None -> ""
  in
  let srcs = List.mapi operand o.Operation.uses in
  let mem =
    match o.Operation.mem with
    | Some mr ->
        [
          Printf.sprintf "A%d[%d]" mr.Memref.array_id
            (Memref.address_at mr ~iteration);
        ]
    | None -> []
  in
  let base = Opcode.to_string o.Operation.opcode in
  let base = if o.Operation.lanes > 1 then Printf.sprintf "%s.w%d" base o.Operation.lanes else base in
  Printf.sprintf "%s%s %s" dst base (String.concat ", " (srcs @ mem))

let emit_program g (s : Schedule.t) a (c : Config.t) ~iterations =
  if iterations <= 0 then invalid_arg "Codegen.emit_program: iterations must be positive";
  let ii = s.Schedule.ii in
  let stages = Schedule.stage_count s in
  let last = ((iterations - 1) * ii) + Schedule.span s in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Printf.sprintf "; %s: %d iterations, II=%d, %d stages, %d physical registers\n"
       (Config.label c) iterations ii stages a.total_registers);
  let steady_from = (stages - 1) * ii in
  let steady_to = iterations * ii in
  for t = 0 to last - 1 do
    if t = steady_from && steady_from < steady_to then
      Buffer.add_string buf "; --- steady state (hardware loops over this region) ---\n";
    if t = steady_to && steady_to > steady_from then
      Buffer.add_string buf "; --- drain ---\n";
    let slots = ref [] in
    Array.iter
      (fun (o : Operation.t) ->
        let d = t - s.Schedule.times.(o.Operation.id) in
        if d >= 0 && d mod ii = 0 then begin
          let i = d / ii in
          if i < iterations then
            slots := instance_text g a o ~iteration:i :: !slots
        end)
      (Ddg.ops g);
    Buffer.add_string buf
      (Printf.sprintf "%4d: %s\n" t
         (if !slots = [] then "nop" else String.concat "  ||  " (List.rev !slots)))
  done;
  Buffer.contents buf

let mnemonic (o : Operation.t) =
  let base = Opcode.to_string o.Operation.opcode in
  if o.Operation.lanes > 1 then Printf.sprintf "%s.w%d" base o.Operation.lanes else base

let emit g (s : Schedule.t) a (c : Config.t) =
  let ii = s.Schedule.ii in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "; kernel for %s: II=%d, unroll=%d, %d physical registers (%d for live-ins)\n"
       (Config.label c) ii a.unroll a.total_registers
       (a.total_registers - a.live_in_base));
  (* Instances: (word, slot text).  Kernel copy m holds the body of
     iteration class m; op u of class m sits in word
     (time(u) + m*II) mod (unroll*II). *)
  let words = Array.make (a.unroll * ii) [] in
  for m = a.unroll - 1 downto 0 do
    Array.iter
      (fun (o : Operation.t) ->
        let u = o.Operation.id in
        let w = (s.Schedule.times.(u) + (m * ii)) mod (a.unroll * ii) in
        let operand k r =
          let x = List.nth (Ddg.operands g u) k in
          let reg =
            match x.Ddg.producer with
            | None -> physical_of_instance a ~vreg:r ~iteration:m
            | Some _ -> physical_of_instance a ~vreg:r ~iteration:(m - x.Ddg.distance)
          in
          match x.Ddg.lane with
          | None -> Printf.sprintf "r%d" reg
          | Some lane -> Printf.sprintf "r%d[%d]" reg lane
        in
        let dst =
          match o.Operation.def with
          | Some r -> Printf.sprintf "r%d <- " (physical_of_instance a ~vreg:r ~iteration:m)
          | None -> ""
        in
        let srcs = List.mapi operand o.Operation.uses in
        let mem =
          match o.Operation.mem with
          | Some mr ->
              [ Printf.sprintf "A%d[%d*i%+d]" mr.Memref.array_id mr.Memref.stride mr.Memref.offset ]
          | None -> []
        in
        let text =
          Printf.sprintf "%s%s %s" dst (mnemonic o) (String.concat ", " (srcs @ mem))
        in
        words.(w) <- text :: words.(w))
      (Ddg.ops g)
  done;
  Array.iteri
    (fun w slots ->
      Buffer.add_string buf
        (Printf.sprintf "%4d: %s\n" w
           (if slots = [] then "nop" else String.concat "  ||  " slots)))
    words;
  Buffer.contents buf
