(** Reference interpreter: executes a loop's dependence graph
    sequentially, iteration by iteration, with full floating-point
    semantics.

    This is the functional oracle for the compiler stack: a transformed
    loop (widened, unrolled, spilled) must leave exactly the same
    memory image as the original when run for the corresponding number
    of iterations — [widen ~width:y] executes [y] source iterations per
    graph iteration, [Spill.apply] none the fewer.  Comparisons are
    exact (bit-level): the transforms never reassociate arithmetic, so
    even floating point must agree.

    Two engines implement one semantics:

    {ul
    {- the {e reference engine} ({!run_reference}) interprets the graph
       directly — per-operand allocation, a Hashtbl for memory — and is
       the semantic anchor;}
    {- the {e flat kernel} ({!compile} + {!run_plan}, what {!run} uses)
       lowers the graph once to a scalar micro-op tape over flat
       [int]/[float] arrays with per-array memory arenas, executes with
       no per-iteration allocation, and is differentially tested to be
       bit-identical to the reference (including the [loads]/[stores]/
       [flops] counters).  Setting [WR_INTERP_SAFE=1] routes every run
       through the reference engine instead.}}

    Conventions that make the semantics transform-invariant:

    {ul
    {- {b memory}: word [addr >= 0] of array [a] initially holds a
       value derived from [(a, addr)] by hashing (in [\[1, 2)]); words
       at negative addresses hold the {e prehistory constant} 1.5 —
       pre-loop reads ([x(i-4)] during the first iterations) land there
       in the original and every transformed graph alike;}
    {- {b registers}: a value consumed from an iteration before the
       first holds the same prehistory constant (so recurrences start
       identically whether the value lives in a register or, after
       spilling, in an iteration-indexed slot at a negative address);}
    {- {b live-ins}: enumerated in first-use order (which the
       transforms preserve) and valued by hashing their position.}}

    [Fma] executes with [Float.fma] semantics (single rounding), in
    both engines and in the cycle-level simulator. *)

type memory_image = ((int * int) * float) list
(** Sorted [(array, address) -> value] association list of every word
    written. *)

type result = {
  memory : memory_image;
  loads : int;  (** scalar words read (a wide load of L lanes counts L) *)
  stores : int;  (** scalar words written *)
  flops : int;  (** scalar arithmetic operations executed *)
}

type plan
(** A loop compiled to the flat micro-op tape.  Iteration-count
    independent (memory arenas are sized per run), so one plan serves
    every {!run_plan} call; plans are immutable and safe to share
    across domains. *)

val compile : Wr_ir.Loop.t -> plan
(** One-time lowering: topological order, operand slot/distance tables,
    live-in values, circular-buffer layout, and per-lane memory
    coefficients, all resolved into dense arrays.  Raises
    [Invalid_argument] on graphs the transforms never produce (e.g. a
    lane selection out of the producer's range) — eagerly, where the
    reference engine would only raise once the offending operand is
    executed. *)

val run_plan : ?iterations:int -> plan -> result
(** Executes a compiled plan for [iterations] graph iterations
    (default: the source loop's trip count). *)

val run : ?iterations:int -> Wr_ir.Loop.t -> result
(** [compile] + [run_plan] (or the reference engine under
    [WR_INTERP_SAFE=1]).  Executes the loop for [iterations] graph
    iterations (default: the loop's trip count).  Raises
    [Invalid_argument] if the graph uses an operand shape the
    transforms never produce.  [iterations = 0] returns the empty
    result without building any side table. *)

val run_reference : ?iterations:int -> Wr_ir.Loop.t -> result
(** The retained direct interpreter — the differential-testing anchor
    for the flat kernel. *)

val equal_memory : result -> result -> bool
(** Bit-exact comparison of the written memory images. *)

val diff_memory : result -> result -> ((int * int) * float option * float option) list
(** Locations whose contents differ (for test diagnostics): [(key,
    left, right)] with [None] when a side never wrote the location. *)

val arrays_of : Wr_ir.Loop.t -> int list
(** Distinct array ids referenced by the loop, ascending. *)

val restrict : result -> arrays:int list -> result
(** Drop memory locations outside the given arrays — used to compare a
    spilled loop (which also writes its spill slots) against the
    original on the program-visible arrays only.  Linear in the image
    size (sorted merge). *)

val prehistory : float
(** The pre-loop constant (1.5). *)

val initial_memory_value : int -> int -> float
(** Initial contents of a non-negative address (shared with the
    cycle-level simulator so their memory images are comparable). *)

val live_in_value : int -> float
(** Value of the k-th live-in in first-use order (shared with the
    simulator). *)
