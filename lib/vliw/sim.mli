(** Cycle-level simulator of a modulo-scheduled loop on an [XwY]
    datapath with a conventional register file.

    Executes every instance [(operation, iteration)] at its scheduled
    cycle [time(op) + iteration * II], reading physical registers (MVE
    assignment from {!Codegen}, or rotating assignment from
    {!Rotating}) at issue and writing results back after
    the operation's latency — exactly the contract the scheduler's
    dependence delays promise.  Memory follows the same initial-value
    conventions as {!Interp}, so the final memory image of a simulation
    must equal the reference interpreter's, bit for bit: one check
    covers the scheduler (timing), the allocator (no clobbered
    registers), the transforms (semantics) and the code generator
    (operand addressing) at once.

    The simulator also verifies, cycle by cycle, that issue never
    exceeds the configuration's bus/FPU slots and that unpipelined
    units are not re-entered — an independent re-check of the modulo
    reservation table. *)

type mapping = {
  total_registers : int;
  physical : vreg:int -> iteration:int -> int;
}
(** Abstract register assignment: {!mve_mapping} for a conventional
    file (kernel-unrolled round-robin blocks), {!rotating_mapping} for
    a rotating file (hardware renaming, no unrolling). *)

val mve_mapping : Codegen.allocation -> mapping
val rotating_mapping : Rotating.allocation -> mapping

type result = {
  cycles : int;  (** first cycle after the last write-back *)
  kernel_cycles : int;  (** [II * iterations] — the steady-state cost model *)
  memory : Interp.memory_image;
  issued : int;  (** operation instances executed *)
}

exception Hazard of string
(** Raised when the program breaks a structural rule during simulation:
    slot over-subscription, unpipelined unit conflict, or a register
    read of a value that has not been written.  A correct
    schedule/allocation never triggers it. *)

val run :
  Wr_ir.Ddg.t ->
  Wr_sched.Schedule.t ->
  mapping ->
  Wr_machine.Config.t ->
  iterations:int ->
  result

val check_against_reference :
  ?file:[ `Conventional | `Rotating ] ->
  Wr_ir.Loop.t ->
  Wr_machine.Config.t ->
  iterations:int ->
  (result, string) Stdlib.result
(** End-to-end harness: widen the loop for the configuration, schedule
    it with enough registers, allocate MVE, simulate
    [iterations] {e wide} iterations, and compare the memory image with
    the reference interpreter run of the widened loop (same graph, so
    the source-iteration correspondence is exact).  [Error] carries a
    description of the first divergence. *)
