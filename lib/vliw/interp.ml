module Ddg = Wr_ir.Ddg
module Operation = Wr_ir.Operation
module Opcode = Wr_ir.Opcode
module Memref = Wr_ir.Memref
module Dependence = Wr_ir.Dependence
module Loop = Wr_ir.Loop

type memory_image = ((int * int) * float) list

type result = { memory : memory_image; loads : int; stores : int; flops : int }

let empty_result = { memory = []; loads = 0; stores = 0; flops = 0 }

let prehistory = 1.5

(* Deterministic initial contents of memory word (array, addr >= 0):
   a value in [1, 2) that differs across words, so lane or address
   mix-ups change the result. *)
let initial_memory_value array_id addr =
  let h = Hashtbl.hash (array_id, addr, "mem") land 0xFFFFF in
  1.0 +. (float_of_int h /. 1048576.0)

let live_in_value position =
  let h = Hashtbl.hash (position, "livein") land 0xFFFFF in
  1.0 +. (float_of_int h /. 1048576.0)

(* Evaluation order within an iteration: topological on the
   distance-0 edges (which include the same-iteration memory ordering
   edges), ties by operation id.  Reloads inserted by spilling have
   high ids but must run before their consumers, so plain id order is
   not enough. *)
let intra_iteration_order g =
  let n = Ddg.num_ops g in
  let indegree = Array.make n 0 in
  let succs0 = Array.make n [] in
  List.iter
    (fun (e : Dependence.t) ->
      if e.distance = 0 then begin
        indegree.(e.dst) <- indegree.(e.dst) + 1;
        succs0.(e.src) <- e.dst :: succs0.(e.src)
      end)
    (Ddg.edges g);
  let module IS = Set.Make (Int) in
  let ready = ref IS.empty in
  for v = 0 to n - 1 do
    if indegree.(v) = 0 then ready := IS.add v !ready
  done;
  let order = Array.make n 0 in
  for k = 0 to n - 1 do
    match IS.min_elt_opt !ready with
    | None -> invalid_arg "Interp: distance-0 cycle (invalid graph)"
    | Some v ->
        ready := IS.remove v !ready;
        order.(k) <- v;
        List.iter
          (fun w ->
            indegree.(w) <- indegree.(w) - 1;
            if indegree.(w) = 0 then ready := IS.add w !ready)
          succs0.(v)
  done;
  order

let unary_fn = function
  | Opcode.Fneg -> fun x -> -.x
  | Opcode.Fabs -> Float.abs
  | Opcode.Fsqrt -> fun x -> sqrt (Float.abs x)  (* total: synthetic data may go negative *)
  | Opcode.Fcopy -> fun x -> x
  | _ -> invalid_arg "Interp: not a unary opcode"

let binary_fn = function
  | Opcode.Fadd -> ( +. )
  | Opcode.Fsub -> ( -. )
  | Opcode.Fmul -> ( *. )
  | Opcode.Fdiv -> ( /. )
  | _ -> invalid_arg "Interp: not a binary opcode"

(* --- reference engine --------------------------------------------------

   The original straight-line interpreter: per-operand float-array
   allocation, a polymorphic Hashtbl for memory, side tables rebuilt on
   every call.  Retained verbatim (plus [Fma]) as the semantic anchor
   the flat kernel below is differentially tested against, and as the
   always-safe execution path ([WR_INTERP_SAFE]). *)

let run_reference ?iterations (loop : Loop.t) =
  let g = loop.Loop.ddg in
  let n = Ddg.num_ops g in
  let iterations = match iterations with Some i -> i | None -> loop.Loop.trip_count in
  if iterations < 0 then invalid_arg "Interp.run: negative iteration count";
  if iterations = 0 then empty_result
  else begin
    let order = intra_iteration_order g in
    let operands = Array.init n (fun v -> Array.of_list (Ddg.operands g v)) in
    (* Live-in values, keyed in first-use order (scanning operations in
       id order matches how the transforms renumber live-ins). *)
    let live_ins = Hashtbl.create 8 in
    Array.iter
      (fun (o : Operation.t) ->
        List.iter
          (fun r ->
            if Ddg.def_site g r = None && not (Hashtbl.mem live_ins r) then
              Hashtbl.add live_ins r (live_in_value (Hashtbl.length live_ins)))
          o.Operation.uses)
      (Ddg.ops g);
    (* Value store: values.(op) is a circular buffer over iterations
       (depth = max carried distance + 1), one float array (lanes) per
       slot; [None] marks prehistory. *)
    let max_distance =
      List.fold_left (fun acc (e : Dependence.t) -> Stdlib.max acc e.distance) 0 (Ddg.edges g)
    in
    let depth = max_distance + 1 in
    let values = Array.init n (fun _ -> Array.make depth None) in
    let memory : (int * int, float) Hashtbl.t = Hashtbl.create 1024 in
    let loads = ref 0 and stores = ref 0 and flops = ref 0 in
    let read_memory array_id addr =
      incr loads;
      match Hashtbl.find_opt memory (array_id, addr) with
      | Some v -> v
      | None -> if addr < 0 then prehistory else initial_memory_value array_id addr
    in
    let write_memory array_id addr v =
      incr stores;
      Hashtbl.replace memory (array_id, addr) v
    in
    (* Value of the operand [x] of an op with [lanes] lanes at iteration
       [iter]. *)
    let operand_value ~lanes iter (x : Ddg.operand) =
      let producer_vector =
        match x.Ddg.producer with
        | None -> [| Hashtbl.find live_ins x.Ddg.reg |]
        | Some p ->
            let src_iter = iter - x.Ddg.distance in
            if src_iter < 0 then
              [| prehistory |]  (* any lane of the prehistory is the constant *)
            else begin
              match values.(p).(src_iter mod depth) with
              | Some v -> v
              | None -> invalid_arg "Interp: read of value not yet computed (invalid order)"
            end
      in
      match x.Ddg.lane with
      | Some k ->
          if Array.length producer_vector = 1 then [| producer_vector.(0) |]
          else if k < Array.length producer_vector then [| producer_vector.(k) |]
          else invalid_arg "Interp: lane out of range"
      | None ->
          if Array.length producer_vector = lanes then producer_vector
          else if Array.length producer_vector = 1 then Array.make lanes producer_vector.(0)
          else invalid_arg "Interp: operand width mismatch"
    in
    for iter = 0 to iterations - 1 do
      Array.iter
        (fun v ->
          let o = Ddg.op g v in
          let lanes = o.Operation.lanes in
          let result =
            match o.Operation.opcode with
            | Opcode.Load ->
                let m = Option.get o.Operation.mem in
                let base = Memref.address_at m ~iteration:iter in
                Some (Array.init lanes (fun k -> read_memory m.Memref.array_id (base + k)))
            | Opcode.Store ->
                let m = Option.get o.Operation.mem in
                let base = Memref.address_at m ~iteration:iter in
                let data = operand_value ~lanes iter operands.(v).(0) in
                Array.iteri (fun k x -> write_memory m.Memref.array_id (base + k) x) data;
                None
            | (Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fdiv) as opc ->
                let f = binary_fn opc in
                let a = operand_value ~lanes iter operands.(v).(0) in
                let b = operand_value ~lanes iter operands.(v).(1) in
                flops := !flops + lanes;
                Some (Array.init lanes (fun k -> f a.(k) b.(k)))
            | Opcode.Fma ->
                let a = operand_value ~lanes iter operands.(v).(0) in
                let b = operand_value ~lanes iter operands.(v).(1) in
                let c = operand_value ~lanes iter operands.(v).(2) in
                flops := !flops + lanes;
                Some (Array.init lanes (fun k -> Float.fma a.(k) b.(k) c.(k)))
            | (Opcode.Fneg | Opcode.Fabs | Opcode.Fsqrt | Opcode.Fcopy) as opc ->
                let f = unary_fn opc in
                let a = operand_value ~lanes iter operands.(v).(0) in
                flops := !flops + lanes;
                Some (Array.map f a)
          in
          match result with
          | Some vec -> values.(v).(iter mod depth) <- Some vec
          | None -> ())
        order
    done;
    let memory =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) memory [])
    in
    { memory; loads = !loads; stores = !stores; flops = !flops }
  end

(* --- flat kernel -------------------------------------------------------

   [compile] lowers a dependence graph once into a scalar micro-op tape
   (one micro-op per lane of each operation, in intra-iteration
   topological order) over dense [int] arrays, with every operand
   resolved at compile time to a (value slot, iteration distance) pair.
   [run_plan] then executes the tape with no per-iteration allocation:

   - Values live in one flat [float array] of [depth + 1] phases of
     [n_slots] scalar slots, where [depth] is the circular-buffer depth
     (max carried distance + 1).  Phase [(iter - d) mod depth] holds the
     values produced [d] iterations ago; the extra phase at the end is
     a constant block pre-filled with the prehistory value, and
     [pbase.(d)] is pointed at it whenever [iter < d] — so prehistory
     reads cost nothing in the steady state and the inner loop has no
     per-operand branch at all.
   - Live-in values are written into their slot in every real phase up
     front, so a live-in read is an ordinary distance-0 slot read.
   - Memory is a set of per-array arenas.  Every access is affine
     ([stride * iter + offset], offset pre-adjusted per lane), so the
     exact address range of a run is known from the plan and the
     iteration count; in-range arrays get a dense [float array] plus a
     state byte per word (untouched / read-initialized / written), and
     pathologically large ranges spill over to a Hashtbl keyed by
     address with identical semantics.

   Indices are validated once at the end of [compile] ([validate]), so
   the [unsafe_get]/[unsafe_set] in the inner loop are in bounds by
   construction; [WR_INTERP_SAFE=1] additionally routes every [run]
   through the reference engine above. *)

(* Micro-opcode encoding on the tape. *)
let uop_load = 0
let uop_store = 1
let uop_fadd = 2
let uop_fsub = 3
let uop_fmul = 4
let uop_fdiv = 5
let uop_fsqrt = 6
let uop_fneg = 7
let uop_fabs = 8
let uop_fcopy = 9
let uop_fma = 10

type plan = {
  source : Loop.t;  (** the loop this plan was compiled from *)
  n_micro : int;
  code : int array;  (** micro-opcode per tape entry *)
  dst : int array;  (** destination slot (stores: unused 0) *)
  src1 : int array;  (** first source slot *)
  d1 : int array;  (** first source iteration distance *)
  src2 : int array;
  d2 : int array;
  src3 : int array;
  d3 : int array;
  m_arena : int array;  (** arena index for memory micro-ops, -1 otherwise *)
  m_stride : int array;
  m_offset : int array;  (** per-lane offset: memref offset + lane *)
  n_slots : int;  (** scalar value slots per phase *)
  depth : int;  (** circular-buffer depth = max carried distance + 1 *)
  live_in_slots : int array;
  live_in_vals : float array;
  arena_ids : int array;  (** program array id per arena, ascending *)
  loads_per_iter : int;
  stores_per_iter : int;
  flops_per_iter : int;
}

let validate p =
  let bad msg = invalid_arg ("Interp.compile: internal validation failed: " ^ msg) in
  let n = p.n_micro in
  if
    Array.length p.code <> n || Array.length p.dst <> n || Array.length p.src1 <> n
    || Array.length p.d1 <> n || Array.length p.src2 <> n || Array.length p.d2 <> n
    || Array.length p.src3 <> n || Array.length p.d3 <> n || Array.length p.m_arena <> n
    || Array.length p.m_stride <> n || Array.length p.m_offset <> n
  then bad "tape arrays disagree on length";
  let slot_ok s = s >= 0 && s < p.n_slots in
  let dist_ok d = d >= 0 && d < p.depth in
  for j = 0 to n - 1 do
    let c = p.code.(j) in
    if c < uop_load || c > uop_fma then bad "unknown micro-opcode";
    if c <> uop_store && not (slot_ok p.dst.(j)) then bad "destination slot out of range";
    if c <> uop_load && (not (slot_ok p.src1.(j)) || not (dist_ok p.d1.(j))) then
      bad "first operand out of range";
    if not (slot_ok p.src2.(j)) || not (dist_ok p.d2.(j)) then bad "second operand out of range";
    if not (slot_ok p.src3.(j)) || not (dist_ok p.d3.(j)) then bad "third operand out of range";
    if c = uop_load || c = uop_store then begin
      if p.m_arena.(j) < 0 || p.m_arena.(j) >= Array.length p.arena_ids then
        bad "arena index out of range"
    end
  done;
  Array.iter (fun s -> if not (slot_ok s) then bad "live-in slot out of range") p.live_in_slots;
  if Array.length p.live_in_slots <> Array.length p.live_in_vals then bad "live-in tables disagree"

let compile (loop : Loop.t) =
  let g = loop.Loop.ddg in
  let n = Ddg.num_ops g in
  let order = intra_iteration_order g in
  let ops = Ddg.ops g in
  (* Scalar slot assignment: [lanes] consecutive slots per
     value-producing operation, then one per live-in. *)
  let slot_base = Array.make n (-1) in
  let next_slot = ref 0 in
  Array.iter
    (fun (o : Operation.t) ->
      if o.Operation.opcode <> Opcode.Store then begin
        slot_base.(o.Operation.id) <- !next_slot;
        next_slot := !next_slot + o.Operation.lanes
      end)
    ops;
  (* Live-ins in first-use order over id-ordered operations — the same
     enumeration as the reference engine, so values agree. *)
  let live_slot = Hashtbl.create 8 in
  let live_rev = ref [] in
  Array.iter
    (fun (o : Operation.t) ->
      List.iter
        (fun r ->
          if Ddg.def_site g r = None && not (Hashtbl.mem live_slot r) then begin
            let v = live_in_value (Hashtbl.length live_slot) in
            Hashtbl.add live_slot r !next_slot;
            live_rev := (!next_slot, v) :: !live_rev;
            incr next_slot
          end)
        o.Operation.uses)
    ops;
  let live = Array.of_list (List.rev !live_rev) in
  let n_slots = !next_slot in
  let max_distance =
    List.fold_left (fun acc (e : Dependence.t) -> Stdlib.max acc e.distance) 0 (Ddg.edges g)
  in
  let depth = max_distance + 1 in
  (* Arenas: one per distinct array id, ascending. *)
  let arena_tbl = Hashtbl.create 8 in
  Array.iter
    (fun (o : Operation.t) ->
      match o.Operation.mem with
      | Some m -> Hashtbl.replace arena_tbl m.Memref.array_id ()
      | None -> ())
    ops;
  let arena_ids =
    Array.of_list (List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) arena_tbl []))
  in
  let arena_index = Hashtbl.create 8 in
  Array.iteri (fun i a -> Hashtbl.add arena_index a i) arena_ids;
  (* Tape emission, one micro-op per lane in topological order. *)
  let n_micro = Array.fold_left (fun acc (o : Operation.t) -> acc + o.Operation.lanes) 0 ops in
  let code = Array.make n_micro 0 in
  let dst = Array.make n_micro 0 in
  let src1 = Array.make n_micro 0 and d1 = Array.make n_micro 0 in
  let src2 = Array.make n_micro 0 and d2 = Array.make n_micro 0 in
  let src3 = Array.make n_micro 0 and d3 = Array.make n_micro 0 in
  let m_arena = Array.make n_micro (-1) in
  let m_stride = Array.make n_micro 0 in
  let m_offset = Array.make n_micro 0 in
  let loads = ref 0 and stores = ref 0 and flops = ref 0 in
  (* Compile-time operand resolution: mirrors the reference engine's
     [operand_value] lane logic exactly, but once instead of per
     iteration. *)
  let resolve ~lanes k (x : Ddg.operand) =
    match x.Ddg.producer with
    | None -> (Hashtbl.find live_slot x.Ddg.reg, 0)
    | Some p ->
        let pl = (Ddg.op g p).Operation.lanes in
        let lane =
          match x.Ddg.lane with
          | Some j ->
              if pl = 1 then 0
              else if j < pl then j
              else invalid_arg "Interp: lane out of range"
          | None ->
              if pl = lanes then k
              else if pl = 1 then 0
              else invalid_arg "Interp: operand width mismatch"
        in
        (slot_base.(p) + lane, x.Ddg.distance)
  in
  let j = ref 0 in
  Array.iter
    (fun v ->
      let o = Ddg.op g v in
      let lanes = o.Operation.lanes in
      let operands = Array.of_list (Ddg.operands g v) in
      let emit c ~k =
        let i = !j in
        incr j;
        code.(i) <- c;
        if c <> uop_store then dst.(i) <- slot_base.(v) + k;
        (match o.Operation.mem with
        | Some m when c = uop_load || c = uop_store ->
            m_arena.(i) <- Hashtbl.find arena_index m.Memref.array_id;
            m_stride.(i) <- m.Memref.stride;
            m_offset.(i) <- m.Memref.offset + k
        | _ -> ());
        i
      in
      let set1 i (s, d) = src1.(i) <- s; d1.(i) <- d in
      let set2 i (s, d) = src2.(i) <- s; d2.(i) <- d in
      let set3 i (s, d) = src3.(i) <- s; d3.(i) <- d in
      match o.Operation.opcode with
      | Opcode.Load ->
          loads := !loads + lanes;
          for k = 0 to lanes - 1 do
            ignore (emit uop_load ~k)
          done
      | Opcode.Store ->
          stores := !stores + lanes;
          for k = 0 to lanes - 1 do
            let i = emit uop_store ~k in
            set1 i (resolve ~lanes k operands.(0))
          done
      | (Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fdiv) as opc ->
          let c =
            match opc with
            | Opcode.Fadd -> uop_fadd
            | Opcode.Fsub -> uop_fsub
            | Opcode.Fmul -> uop_fmul
            | _ -> uop_fdiv
          in
          flops := !flops + lanes;
          for k = 0 to lanes - 1 do
            let i = emit c ~k in
            set1 i (resolve ~lanes k operands.(0));
            set2 i (resolve ~lanes k operands.(1))
          done
      | Opcode.Fma ->
          flops := !flops + lanes;
          for k = 0 to lanes - 1 do
            let i = emit uop_fma ~k in
            set1 i (resolve ~lanes k operands.(0));
            set2 i (resolve ~lanes k operands.(1));
            set3 i (resolve ~lanes k operands.(2))
          done
      | (Opcode.Fneg | Opcode.Fabs | Opcode.Fsqrt | Opcode.Fcopy) as opc ->
          let c =
            match opc with
            | Opcode.Fneg -> uop_fneg
            | Opcode.Fabs -> uop_fabs
            | Opcode.Fsqrt -> uop_fsqrt
            | _ -> uop_fcopy
          in
          flops := !flops + lanes;
          for k = 0 to lanes - 1 do
            let i = emit c ~k in
            set1 i (resolve ~lanes k operands.(0))
          done)
    order;
  let p =
    {
      source = loop;
      n_micro;
      code;
      dst;
      src1;
      d1;
      src2;
      d2;
      src3;
      d3;
      m_arena;
      m_stride;
      m_offset;
      n_slots;
      depth;
      live_in_slots = Array.map fst live;
      live_in_vals = Array.map snd live;
      arena_ids;
      loads_per_iter = !loads;
      stores_per_iter = !stores;
      flops_per_iter = !flops;
    }
  in
  validate p;
  p

(* Memory arenas.  The dense backend stores one float and one state
   byte per word of the (exactly known) address range; ranges larger
   than the cap fall back to a per-array Hashtbl with the same
   semantics.  Only written words ([st_written]) enter the memory
   image, matching the reference engine's Hashtbl of stores; reads of
   untouched dense words cache the computed initial value
   ([st_read]) so the hash is paid once per word, not per read. *)

let st_untouched = '\000'
let st_read = '\001'
let st_written = '\002'

(* 32 MB of floats per array; synthetic trip counts keep real runs far
   below this, so the cap only guards degenerate stride/offset mixes. *)
let dense_cap = 1 lsl 22

type backend =
  | Dense of { base : int; store : float array; state : Bytes.t }
  | Sparse of (int, float) Hashtbl.t

type arena = { arr_id : int; backend : backend }

let build_arenas p ~iterations =
  let na = Array.length p.arena_ids in
  let lo = Array.make na max_int and hi = Array.make na min_int in
  for j = 0 to p.n_micro - 1 do
    let a = p.m_arena.(j) in
    if a >= 0 then begin
      (* Affine addresses: the range over a run is spanned by the two
         endpoint iterations. *)
      let e0 = p.m_offset.(j) in
      let e1 = (p.m_stride.(j) * (iterations - 1)) + p.m_offset.(j) in
      let l = Stdlib.min e0 e1 and h = Stdlib.max e0 e1 in
      if l < lo.(a) then lo.(a) <- l;
      if h > hi.(a) then hi.(a) <- h
    end
  done;
  Array.init na (fun a ->
      let backend =
        if hi.(a) < lo.(a) then Sparse (Hashtbl.create 1)  (* declared but never accessed *)
        else
          let size = hi.(a) - lo.(a) + 1 in
          if size <= dense_cap then
            Dense { base = lo.(a); store = Array.make size 0.0; state = Bytes.make size st_untouched }
          else Sparse (Hashtbl.create 1024)
      in
      { arr_id = p.arena_ids.(a); backend })

let arena_read a addr =
  match a.backend with
  | Dense d ->
      let i = addr - d.base in
      if Bytes.get d.state i = st_untouched then begin
        let v = if addr < 0 then prehistory else initial_memory_value a.arr_id addr in
        d.store.(i) <- v;
        Bytes.set d.state i st_read;
        v
      end
      else d.store.(i)
  | Sparse t -> (
      match Hashtbl.find_opt t addr with
      | Some v -> v
      | None -> if addr < 0 then prehistory else initial_memory_value a.arr_id addr)

let arena_write a addr v =
  match a.backend with
  | Dense d ->
      let i = addr - d.base in
      d.store.(i) <- v;
      Bytes.set d.state i st_written
  | Sparse t -> Hashtbl.replace t addr v

(* Written words, sorted ascending by (array, address) — bit-identical
   to the reference engine's sorted Hashtbl fold (keys are unique, so
   the value never participates in the comparison). *)
let image_of_arenas arenas =
  let acc = ref [] in
  for a = Array.length arenas - 1 downto 0 do
    let ar = arenas.(a) in
    match ar.backend with
    | Dense d ->
        for i = Array.length d.store - 1 downto 0 do
          if Bytes.get d.state i = st_written then
            acc := ((ar.arr_id, d.base + i), d.store.(i)) :: !acc
        done
    | Sparse t ->
        let entries = Hashtbl.fold (fun addr v l -> ((ar.arr_id, addr), v) :: l) t [] in
        acc := List.sort compare entries @ !acc
  done;
  !acc

let safe_mode = lazy (Wr_util.Env.bool "WR_INTERP_SAFE" ~default:false)

(* One iteration of the tape.  [pbase.(d)] is the flat base offset of
   the phase holding values produced [d] iterations ago, or of the
   constant prehistory block when [iter < d]; all slot and distance
   indices were bounds-checked by [validate] at compile time, so the
   unsafe accesses cannot go out of range. *)
let exec_iteration p vals arenas pbase ~iter =
  let code = p.code and dst = p.dst in
  let s1 = p.src1 and e1 = p.d1 in
  let s2 = p.src2 and e2 = p.d2 in
  let s3 = p.src3 and e3 = p.d3 in
  let ma = p.m_arena and ms = p.m_stride and mo = p.m_offset in
  let cur = Array.unsafe_get pbase 0 in
  let rd1 j =
    Array.unsafe_get vals
      (Array.unsafe_get pbase (Array.unsafe_get e1 j) + Array.unsafe_get s1 j)
  in
  let rd2 j =
    Array.unsafe_get vals
      (Array.unsafe_get pbase (Array.unsafe_get e2 j) + Array.unsafe_get s2 j)
  in
  let rd3 j =
    Array.unsafe_get vals
      (Array.unsafe_get pbase (Array.unsafe_get e3 j) + Array.unsafe_get s3 j)
  in
  let wr j v = Array.unsafe_set vals (cur + Array.unsafe_get dst j) v in
  for j = 0 to p.n_micro - 1 do
    let c = Array.unsafe_get code j in
    if c = uop_load then begin
      let addr = (Array.unsafe_get ms j * iter) + Array.unsafe_get mo j in
      wr j (arena_read (Array.unsafe_get arenas (Array.unsafe_get ma j)) addr)
    end
    else if c = uop_store then begin
      let addr = (Array.unsafe_get ms j * iter) + Array.unsafe_get mo j in
      arena_write (Array.unsafe_get arenas (Array.unsafe_get ma j)) addr (rd1 j)
    end
    else if c = uop_fadd then wr j (rd1 j +. rd2 j)
    else if c = uop_fsub then wr j (rd1 j -. rd2 j)
    else if c = uop_fmul then wr j (rd1 j *. rd2 j)
    else if c = uop_fdiv then wr j (rd1 j /. rd2 j)
    else if c = uop_fma then wr j (Float.fma (rd1 j) (rd2 j) (rd3 j))
    else if c = uop_fsqrt then wr j (sqrt (Float.abs (rd1 j)))
    else if c = uop_fneg then wr j (-.rd1 j)
    else if c = uop_fabs then wr j (Float.abs (rd1 j))
    else wr j (rd1 j)
  done

let run_plan ?iterations (p : plan) =
  let iterations =
    match iterations with Some i -> i | None -> p.source.Loop.trip_count
  in
  if iterations < 0 then invalid_arg "Interp.run: negative iteration count";
  if iterations = 0 then empty_result
  else if Lazy.force safe_mode then run_reference ~iterations p.source
  else begin
    let n_slots = p.n_slots in
    let vals = Array.make ((p.depth + 1) * n_slots) prehistory in
    (* Live-ins are iteration-invariant: write them into every real
       phase once, so a live-in read needs no special case. *)
    for ph = 0 to p.depth - 1 do
      let base = ph * n_slots in
      Array.iteri
        (fun i s -> vals.(base + s) <- Array.unsafe_get p.live_in_vals i)
        p.live_in_slots
    done;
    let arenas = build_arenas p ~iterations in
    let pbase = Array.make p.depth 0 in
    let preh_base = p.depth * n_slots in
    for iter = 0 to iterations - 1 do
      for d = 0 to p.depth - 1 do
        pbase.(d) <- (if iter >= d then (iter - d) mod p.depth * n_slots else preh_base)
      done;
      exec_iteration p vals arenas pbase ~iter
    done;
    {
      memory = image_of_arenas arenas;
      loads = p.loads_per_iter * iterations;
      stores = p.stores_per_iter * iterations;
      flops = p.flops_per_iter * iterations;
    }
  end

let run ?iterations (loop : Loop.t) =
  let iterations = match iterations with Some i -> i | None -> loop.Loop.trip_count in
  if iterations < 0 then invalid_arg "Interp.run: negative iteration count";
  if iterations = 0 then empty_result
  else if Lazy.force safe_mode then run_reference ~iterations loop
  else run_plan ~iterations (compile loop)

let arrays_of (loop : Loop.t) =
  let ids = Hashtbl.create 8 in
  Array.iter
    (fun (o : Operation.t) ->
      match o.Operation.mem with
      | Some m -> Hashtbl.replace ids m.Memref.array_id ()
      | None -> ())
    (Ddg.ops loop.Loop.ddg);
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) ids [])

let restrict result ~arrays =
  (* The image is sorted by (array, address); merge against the sorted
     array-id list instead of running [List.mem] per entry. *)
  let arrays = List.sort_uniq compare arrays in
  let rec merge acc mem arrays =
    match (mem, arrays) with
    | [], _ | _, [] -> List.rev acc
    | ((((a, _), _) as entry) :: rest), (a0 :: arest as all) ->
        if a < a0 then merge acc rest all
        else if a = a0 then merge (entry :: acc) rest all
        else merge acc mem arest
  in
  { result with memory = merge [] result.memory arrays }

let float_bits_equal a b = Int64.bits_of_float a = Int64.bits_of_float b

let equal_memory a b =
  (* Single walk: length mismatch surfaces as a constructor mismatch. *)
  let rec eq xs ys =
    match (xs, ys) with
    | [], [] -> true
    | (ka, va) :: xs', (kb, vb) :: ys' -> ka = kb && float_bits_equal va vb && eq xs' ys'
    | _ -> false
  in
  eq a.memory b.memory

let diff_memory a b =
  let ta = Hashtbl.create 64 and tb = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace ta k v) a.memory;
  List.iter (fun (k, v) -> Hashtbl.replace tb k v) b.memory;
  let keys = Hashtbl.create 64 in
  List.iter (fun (k, _) -> Hashtbl.replace keys k ()) a.memory;
  List.iter (fun (k, _) -> Hashtbl.replace keys k ()) b.memory;
  Hashtbl.fold
    (fun k () acc ->
      let va = Hashtbl.find_opt ta k and vb = Hashtbl.find_opt tb k in
      match (va, vb) with
      | Some x, Some y when float_bits_equal x y -> acc
      | _ -> (k, va, vb) :: acc)
    keys []
  |> List.sort compare
