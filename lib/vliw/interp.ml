module Ddg = Wr_ir.Ddg
module Operation = Wr_ir.Operation
module Opcode = Wr_ir.Opcode
module Memref = Wr_ir.Memref
module Dependence = Wr_ir.Dependence
module Loop = Wr_ir.Loop

type memory_image = ((int * int) * float) list

type result = { memory : memory_image; loads : int; stores : int; flops : int }

let prehistory = 1.5

(* Deterministic initial contents of memory word (array, addr >= 0):
   a value in [1, 2) that differs across words, so lane or address
   mix-ups change the result. *)
let initial_memory_value array_id addr =
  let h = Hashtbl.hash (array_id, addr, "mem") land 0xFFFFF in
  1.0 +. (float_of_int h /. 1048576.0)

let live_in_value position =
  let h = Hashtbl.hash (position, "livein") land 0xFFFFF in
  1.0 +. (float_of_int h /. 1048576.0)

(* Evaluation order within an iteration: topological on the
   distance-0 edges (which include the same-iteration memory ordering
   edges), ties by operation id.  Reloads inserted by spilling have
   high ids but must run before their consumers, so plain id order is
   not enough. *)
let intra_iteration_order g =
  let n = Ddg.num_ops g in
  let indegree = Array.make n 0 in
  let succs0 = Array.make n [] in
  List.iter
    (fun (e : Dependence.t) ->
      if e.distance = 0 then begin
        indegree.(e.dst) <- indegree.(e.dst) + 1;
        succs0.(e.src) <- e.dst :: succs0.(e.src)
      end)
    (Ddg.edges g);
  let module IS = Set.Make (Int) in
  let ready = ref IS.empty in
  for v = 0 to n - 1 do
    if indegree.(v) = 0 then ready := IS.add v !ready
  done;
  let order = Array.make n 0 in
  for k = 0 to n - 1 do
    match IS.min_elt_opt !ready with
    | None -> invalid_arg "Interp: distance-0 cycle (invalid graph)"
    | Some v ->
        ready := IS.remove v !ready;
        order.(k) <- v;
        List.iter
          (fun w ->
            indegree.(w) <- indegree.(w) - 1;
            if indegree.(w) = 0 then ready := IS.add w !ready)
          succs0.(v)
  done;
  order

let unary_fn = function
  | Opcode.Fneg -> fun x -> -.x
  | Opcode.Fabs -> Float.abs
  | Opcode.Fsqrt -> fun x -> sqrt (Float.abs x)  (* total: synthetic data may go negative *)
  | Opcode.Fcopy -> fun x -> x
  | _ -> invalid_arg "Interp: not a unary opcode"

let binary_fn = function
  | Opcode.Fadd -> ( +. )
  | Opcode.Fsub -> ( -. )
  | Opcode.Fmul -> ( *. )
  | Opcode.Fdiv -> ( /. )
  | _ -> invalid_arg "Interp: not a binary opcode"

let run ?iterations (loop : Loop.t) =
  let g = loop.Loop.ddg in
  let n = Ddg.num_ops g in
  let iterations = match iterations with Some i -> i | None -> loop.Loop.trip_count in
  if iterations < 0 then invalid_arg "Interp.run: negative iteration count";
  let order = intra_iteration_order g in
  let operands = Array.init n (fun v -> Array.of_list (Ddg.operands g v)) in
  (* Live-in values, keyed in first-use order (scanning operations in
     id order matches how the transforms renumber live-ins). *)
  let live_ins = Hashtbl.create 8 in
  Array.iter
    (fun (o : Operation.t) ->
      List.iter
        (fun r ->
          if Ddg.def_site g r = None && not (Hashtbl.mem live_ins r) then
            Hashtbl.add live_ins r (live_in_value (Hashtbl.length live_ins)))
        o.Operation.uses)
    (Ddg.ops g);
  (* Value store: values.(op) is a circular buffer over iterations
     (depth = max carried distance + 1), one float array (lanes) per
     slot; [None] marks prehistory. *)
  let max_distance =
    List.fold_left (fun acc (e : Dependence.t) -> Stdlib.max acc e.distance) 0 (Ddg.edges g)
  in
  let depth = max_distance + 1 in
  let values = Array.init n (fun _ -> Array.make depth None) in
  let memory : (int * int, float) Hashtbl.t = Hashtbl.create 1024 in
  let loads = ref 0 and stores = ref 0 and flops = ref 0 in
  let read_memory array_id addr =
    incr loads;
    match Hashtbl.find_opt memory (array_id, addr) with
    | Some v -> v
    | None -> if addr < 0 then prehistory else initial_memory_value array_id addr
  in
  let write_memory array_id addr v =
    incr stores;
    Hashtbl.replace memory (array_id, addr) v
  in
  (* Value of the operand [x] of an op with [lanes] lanes at iteration
     [iter]. *)
  let operand_value ~lanes iter (x : Ddg.operand) =
    let producer_vector =
      match x.Ddg.producer with
      | None -> [| Hashtbl.find live_ins x.Ddg.reg |]
      | Some p ->
          let src_iter = iter - x.Ddg.distance in
          if src_iter < 0 then
            [| prehistory |]  (* any lane of the prehistory is the constant *)
          else begin
            match values.(p).(src_iter mod depth) with
            | Some v -> v
            | None -> invalid_arg "Interp: read of value not yet computed (invalid order)"
          end
    in
    match x.Ddg.lane with
    | Some k ->
        if Array.length producer_vector = 1 then [| producer_vector.(0) |]
        else if k < Array.length producer_vector then [| producer_vector.(k) |]
        else invalid_arg "Interp: lane out of range"
    | None ->
        if Array.length producer_vector = lanes then producer_vector
        else if Array.length producer_vector = 1 then Array.make lanes producer_vector.(0)
        else invalid_arg "Interp: operand width mismatch"
  in
  for iter = 0 to iterations - 1 do
    Array.iter
      (fun v ->
        let o = Ddg.op g v in
        let lanes = o.Operation.lanes in
        let result =
          match o.Operation.opcode with
          | Opcode.Load ->
              let m = Option.get o.Operation.mem in
              let base = Memref.address_at m ~iteration:iter in
              Some (Array.init lanes (fun k -> read_memory m.Memref.array_id (base + k)))
          | Opcode.Store ->
              let m = Option.get o.Operation.mem in
              let base = Memref.address_at m ~iteration:iter in
              let data = operand_value ~lanes iter operands.(v).(0) in
              Array.iteri (fun k x -> write_memory m.Memref.array_id (base + k) x) data;
              None
          | (Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fdiv) as opc ->
              let f = binary_fn opc in
              let a = operand_value ~lanes iter operands.(v).(0) in
              let b = operand_value ~lanes iter operands.(v).(1) in
              flops := !flops + lanes;
              Some (Array.init lanes (fun k -> f a.(k) b.(k)))
          | (Opcode.Fneg | Opcode.Fabs | Opcode.Fsqrt | Opcode.Fcopy) as opc ->
              let f = unary_fn opc in
              let a = operand_value ~lanes iter operands.(v).(0) in
              flops := !flops + lanes;
              Some (Array.map f a)
        in
        match result with
        | Some vec -> values.(v).(iter mod depth) <- Some vec
        | None -> ())
      order
  done;
  let memory =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) memory [])
  in
  { memory; loads = !loads; stores = !stores; flops = !flops }

let arrays_of (loop : Loop.t) =
  let ids = Hashtbl.create 8 in
  Array.iter
    (fun (o : Operation.t) ->
      match o.Operation.mem with
      | Some m -> Hashtbl.replace ids m.Memref.array_id ()
      | None -> ())
    (Ddg.ops loop.Loop.ddg);
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) ids [])

let restrict result ~arrays =
  { result with memory = List.filter (fun ((a, _), _) -> List.mem a arrays) result.memory }

let float_bits_equal a b = Int64.bits_of_float a = Int64.bits_of_float b

let equal_memory a b =
  List.length a.memory = List.length b.memory
  && List.for_all2
       (fun (ka, va) (kb, vb) -> ka = kb && float_bits_equal va vb)
       a.memory b.memory

let diff_memory a b =
  let ta = Hashtbl.create 64 and tb = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace ta k v) a.memory;
  List.iter (fun (k, v) -> Hashtbl.replace tb k v) b.memory;
  let keys = Hashtbl.create 64 in
  List.iter (fun (k, _) -> Hashtbl.replace keys k ()) a.memory;
  List.iter (fun (k, _) -> Hashtbl.replace keys k ()) b.memory;
  Hashtbl.fold
    (fun k () acc ->
      let va = Hashtbl.find_opt ta k and vb = Hashtbl.find_opt tb k in
      match (va, vb) with
      | Some x, Some y when float_bits_equal x y -> acc
      | _ -> (k, va, vb) :: acc)
    keys []
  |> List.sort compare
