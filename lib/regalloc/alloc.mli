(** Wands-only register allocation with end-fit and adjacency ordering
    (Rau, Lee, Tirumalai & Schlansker, PLDI-92 — the paper's
    allocator).

    In a modulo-scheduled loop every lifetime recurs each II cycles, so
    a lifetime of length [L] consumes [L / II] whole registers plus —
    when [L mod II > 0] — an arc of length [L mod II] on the cyclic
    register-time ring of circumference II.  Allocation packs the
    residual arcs into registers:

    {ul
    {- {e adjacency ordering}: arcs are processed by ascending start
       slot (adjacent lifetimes meet end-to-start);}
    {- {e end-fit}: each arc goes to the compatible register whose most
       recent occupant ends closest to the arc's start, minimizing
       wasted ring space; a fresh register is opened when no placed
       register is compatible.}}

    The achieved requirement is within a register or two of the
    MaxLives lower bound on real schedules, matching the behaviour the
    PLDI-92 paper reports. *)

type assignment = {
  vreg : int;
  register : int;  (** register index the residual arc lives in, or -1 if no residual *)
  whole_registers : int;  (** [length / II] full registers also consumed *)
}

type t = {
  required : int;  (** total registers needed by the loop variants *)
  max_lives : int;  (** the lower bound, for reporting *)
  assignments : assignment list;
  ii : int;
}

val allocate : ii:int -> Lifetime.t list -> t

val fits : t -> available:int -> bool

val pp : Format.formatter -> t -> unit
