module Ddg = Wr_ir.Ddg
module Dependence = Wr_ir.Dependence
module Operation = Wr_ir.Operation
module Opcode = Wr_ir.Opcode
module Memref = Wr_ir.Memref
module Obs = Wr_obs.Obs

type plan = { vregs : int list; estimated_savings : int }

let choose ~ii ~lifetimes ~already_spilled ~deficit =
  if deficit <= 0 then None
  else begin
    (* A lifetime is worth spilling when it holds a register across at
       least one full kernel revolution (length > II) and spans more
       than the reload round trip (length > 4). *)
    let threshold = Stdlib.max 4 ii in
    let candidates =
      List.filter
        (fun (lt : Lifetime.t) ->
          (not (already_spilled lt.Lifetime.vreg)) && Lifetime.length lt > threshold)
        lifetimes
    in
    let ordered =
      List.sort
        (fun a b -> compare (Lifetime.length b) (Lifetime.length a))
        candidates
    in
    (* Overshoot the deficit: rescheduling after spilling lengthens
       the remaining lifetimes (the kernel stretches), so aiming
       exactly at the deficit under-delivers and wastes rounds. *)
    let target = deficit + Stdlib.max 2 (deficit / 2) in
    let rec take acc savings = function
      | [] -> (acc, savings)
      | lt :: rest ->
          if savings > target then (acc, savings)
          else
            let gain = Stdlib.max 1 (Lifetime.length lt / Stdlib.max 1 ii) in
            take (lt.Lifetime.vreg :: acc) (savings + gain) rest
    in
    match take [] 0 ordered with
    | [], _ -> None
    | vregs, savings -> Some { vregs = List.rev vregs; estimated_savings = savings }
  end

type result = {
  graph : Ddg.t;
  spilled : int list;
  reload_vregs : int list;
  stores_added : int;
  loads_added : int;
}

let apply_impl g ~vregs =
  let memo_hits = ref 0 in
  let spill_set = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match Ddg.def_site g r with
      | None -> invalid_arg (Printf.sprintf "Spill.apply: vreg %d has no definition" r)
      | Some _ -> Hashtbl.replace spill_set r ())
    vregs;
  let is_spilled r = Hashtbl.mem spill_set r in
  let n = Ddg.num_ops g in
  (* Fresh spill arrays start past every existing array id. *)
  let max_array =
    Array.fold_left
      (fun acc (o : Operation.t) ->
        match o.Operation.mem with
        | Some m -> Stdlib.max acc m.Memref.array_id
        | None -> acc)
      (-1) (Ddg.ops g)
  in
  let next_array = ref (max_array + 1) in
  let next_vreg = ref (Ddg.num_vregs g) in
  let next_id = ref n in
  let new_ops = ref [] in
  let new_edges = ref [] in
  let reload_vregs = ref [] in
  let stores_added = ref 0 in
  let loads_added = ref 0 in
  (* Per spilled vreg: its slot array and the producer's lane count
     (wide values spill as wide stores/reloads). *)
  let slot_info = Hashtbl.create 8 in
  let slot_of r =
    match Hashtbl.find_opt slot_info r with
    | Some info -> info
    | None ->
        let d = Option.get (Ddg.def_site g r) in
        let producer = Ddg.op g d in
        let lanes = producer.Operation.lanes in
        let array_id = !next_array in
        incr next_array;
        (* One slot per iteration: stride = lanes words so consecutive
           iterations never collide (no serializing memory recurrence),
           and a wide store covers its lanes. *)
        let store_id = !next_id in
        incr next_id;
        incr stores_added;
        let store =
          Operation.make ~id:store_id ~opcode:Opcode.Store ~uses:[ r ]
            ~mem:(Memref.make ~array_id ~stride:lanes ~offset:0)
            ~lanes ()
        in
        new_ops := store :: !new_ops;
        new_edges :=
          Dependence.make ~src:d ~dst:store_id ~kind:Dependence.Flow ~distance:0
          :: !new_edges;
        let info = (array_id, lanes, store_id) in
        Hashtbl.add slot_info r info;
        info
  in
  (* Rewrite consumers: each read of a spilled register becomes a read
     of a fresh reload. *)
  let rewritten =
    Array.map
      (fun (o : Operation.t) ->
        let ops_operands = Ddg.operands g o.Operation.id in
        let needs_rewrite = List.exists (fun (x : Ddg.operand) -> is_spilled x.Ddg.reg) ops_operands in
        if not needs_rewrite then o
        else
          (* One reload serves every operand of this consumer that reads
             the same spilled vreg at the same distance — without the
             memo an op like [fmul x x] got two identical loads,
             inflating spill traffic and code size. *)
          let reload_memo = Hashtbl.create 2 in
          let new_uses =
            List.map
              (fun (x : Ddg.operand) ->
                if not (is_spilled x.Ddg.reg) then x.Ddg.reg
                else
                  match Hashtbl.find_opt reload_memo (x.Ddg.reg, x.Ddg.distance) with
                  | Some rv ->
                      incr memo_hits;
                      rv
                  | None ->
                  let array_id, lanes, store_id = slot_of x.Ddg.reg in
                  let rv = !next_vreg in
                  incr next_vreg;
                  reload_vregs := rv :: !reload_vregs;
                  let load_id = !next_id in
                  incr next_id;
                  incr loads_added;
                  let dist = x.Ddg.distance in
                  let load =
                    Operation.make ~id:load_id ~opcode:Opcode.Load ~def:rv
                      ~mem:
                        (Memref.make ~array_id ~stride:lanes ~offset:(-dist * lanes))
                      ~lanes ()
                  in
                  new_ops := load :: !new_ops;
                  (* The reload reads what the store wrote [dist]
                     iterations earlier. *)
                  new_edges :=
                    Dependence.make ~src:store_id ~dst:load_id ~kind:Dependence.Memory
                      ~distance:dist
                    :: Dependence.make ~src:load_id ~dst:o.Operation.id
                         ~kind:Dependence.Flow ~distance:0
                    :: !new_edges;
                  Hashtbl.add reload_memo (x.Ddg.reg, x.Ddg.distance) rv;
                  rv)
              ops_operands
          in
          Operation.make ~id:o.Operation.id ~opcode:o.Operation.opcode
            ?def:o.Operation.def ~uses:new_uses
            ~lane_sel:(List.map (fun (x : Ddg.operand) -> x.Ddg.lane) ops_operands)
            ?mem:o.Operation.mem ~lanes:o.Operation.lanes ())
      (Ddg.ops g)
  in
  (* Surviving original edges: everything except the flow edges that
     carried the spilled values to their consumers. *)
  let kept_edges =
    List.filter
      (fun (e : Dependence.t) ->
        match e.kind with
        | Dependence.Flow -> (
            match (Ddg.op g e.src).Operation.def with
            | Some r -> not (is_spilled r)
            | None -> true)
        | Dependence.Anti | Dependence.Output | Dependence.Memory -> true)
      (Ddg.edges g)
  in
  let ops = Array.append rewritten (Array.of_list (List.rev !new_ops)) in
  (* New ops were assigned ids sequentially; sort to match positions. *)
  Array.sort (fun (a : Operation.t) b -> compare a.Operation.id b.Operation.id) ops;
  let graph =
    Ddg.create ~num_vregs:!next_vreg ~ops ~edges:(kept_edges @ !new_edges)
  in
  if Obs.enabled () then begin
    Obs.add "spill/vregs_spilled" (List.length vregs);
    Obs.add "spill/stores_added" !stores_added;
    Obs.add "spill/loads_added" !loads_added;
    Obs.add "spill/reloads_memoized" !memo_hits
  end;
  {
    graph;
    spilled = vregs;
    reload_vregs = !reload_vregs;
    stores_added = !stores_added;
    loads_added = !loads_added;
  }

let apply g ~vregs = Obs.span "spill/apply" (fun () -> apply_impl g ~vregs)
