(** Register-constrained software pipelining: schedule, allocate, and
    iterate with spill code until the loop fits the register file
    (paper, Section 3.2: "when a loop requires more than the available
    number of registers, spill code is added and the loop is
    rescheduled"). *)

type success = {
  graph : Wr_ir.Ddg.t;  (** final body, including any spill code *)
  schedule : Wr_sched.Schedule.t;
  alloc : Alloc.t;
  spill_rounds : int;
  stores_added : int;
  loads_added : int;
  mii : int;  (** MII of the final graph *)
}

type outcome =
  | Scheduled of success
  | Unschedulable of string
      (** the register pressure cannot be brought under the file size —
          the paper hits this for 8w1 with a 32-register file *)

type policy =
  | Combined  (** try both levers, keep the faster loop (default) *)
  | Spill_only  (** MICRO-29 lever 1 only: add spill code *)
  | Escalate_only  (** MICRO-29 lever 2 only: increase the II *)

val run :
  Wr_machine.Resource.t ->
  cycle_model:Wr_machine.Cycle_model.t ->
  registers:int ->
  ?max_rounds:int ->
  ?policy:policy ->
  Wr_ir.Ddg.t ->
  outcome
(** [registers] is the number of architectural registers available to
    loop variants.  [max_rounds] (default 16) bounds spill
    iterations.  [policy] selects which register-pressure levers the
    driver may pull (used by the ablation study). *)
