module Ddg = Wr_ir.Ddg
module Dependence = Wr_ir.Dependence
module Operation = Wr_ir.Operation
module Schedule = Wr_sched.Schedule
module Cycle_model = Wr_machine.Cycle_model

type t = { vreg : int; def_op : int; start : int; stop : int }

let length t = t.stop - t.start

let of_schedule g (s : Schedule.t) =
  let lifetimes = ref [] in
  for r = Ddg.num_vregs g - 1 downto 0 do
    match Ddg.def_site g r with
    | None -> ()  (* live-in: not a loop variant *)
    | Some d ->
        let start = s.Schedule.times.(d) in
        let latency =
          Cycle_model.latency_of_op s.Schedule.cycle_model (Ddg.op g d).Operation.opcode
        in
        (* Last read: flow successors of the defining operation that
           read this register, at their issue time plus II per
           iteration of dependence distance. *)
        let last_read =
          List.fold_left
            (fun acc (e : Dependence.t) ->
              if e.kind = Dependence.Flow then
                let dst = Ddg.op g e.dst in
                if List.mem r dst.Operation.uses then
                  Stdlib.max acc (s.Schedule.times.(e.dst) + (s.Schedule.ii * e.distance))
                else acc
              else acc)
            (-1) (Ddg.succs g d)
        in
        let stop = if last_read < 0 then start + latency else last_read + 1 in
        let stop = Stdlib.max stop (start + 1) in
        lifetimes := { vreg = r; def_op = d; start; stop } :: !lifetimes
  done;
  !lifetimes

let max_lives ~ii lifetimes =
  if ii <= 0 then invalid_arg "Lifetime.max_lives: ii must be positive";
  let cover = Array.make ii 0 in
  List.iter
    (fun lt ->
      let len = length lt in
      let full = len / ii and rem = len mod ii in
      for s = 0 to ii - 1 do
        cover.(s) <- cover.(s) + full
      done;
      let base = ((lt.start mod ii) + ii) mod ii in
      for k = 0 to rem - 1 do
        let s = (base + k) mod ii in
        cover.(s) <- cover.(s) + 1
      done)
    lifetimes;
  Array.fold_left Stdlib.max 0 cover

let pp fmt t =
  Format.fprintf fmt "v%d: [%d, %d) by op%d (len %d)" t.vreg t.start t.stop t.def_op (length t)
