(** Spill-code insertion for modulo-scheduled loops (Llosa, Valero &
    Ayguadé, MICRO-29 — the heuristics the paper cites for
    register-constrained software pipelining).

    Spilling a loop variant stores it right after its producer and
    reloads it in front of every consumer.  Because consecutive
    iterations of a software-pipelined loop are in flight
    simultaneously, the spill slot cannot be a single stack cell — each
    iteration gets its own slot (an iteration-indexed spill array, the
    moral equivalent of spilling to a rotating memory buffer), so the
    spill traffic adds {e bus} pressure but no serializing memory
    recurrence.  A consumer reading the value [d] iterations after the
    producer reloads from the slot written [d] iterations earlier. *)

type plan = {
  vregs : int list;  (** loop variants chosen for spilling *)
  estimated_savings : int;
}

val choose :
  ii:int ->
  lifetimes:Lifetime.t list ->
  already_spilled:(int -> bool) ->
  deficit:int ->
  plan option
(** Pick lifetimes to spill, longest first (they hold registers across
    the most concurrent iterations), skipping reload-produced values
    and lifetimes too short to pay for their spill traffic.  [None]
    when no candidate remains. *)

type result = {
  graph : Wr_ir.Ddg.t;
  spilled : int list;  (** original vregs spilled (for bookkeeping) *)
  reload_vregs : int list;  (** vregs defined by inserted reloads, in the new graph *)
  stores_added : int;
  loads_added : int;
}

val apply : Wr_ir.Ddg.t -> vregs:int list -> result
(** Rewrites the graph with spill stores and reloads for the given
    variants.  Raises [Invalid_argument] when a listed vreg has no
    definition or no lifetime to spill. *)
