(** Lifetimes of loop variants under a modulo schedule.

    Following the conventions of the register-pressure literature the
    paper builds on (Rau et al., PLDI-92; Llosa et al.), the lifetime
    of a loop variant starts when its producer issues (the register is
    reserved at issue so the in-flight result always has a home) and
    ends one cycle after its last consumer issues — a consumer reading
    the value [d] iterations later reads at [time(consumer) + d * II].
    Loop invariants (live-in values) are not loop variants and get no
    lifetime: the paper's {e wands-only} strategy allocates them
    outside the software-pipelined register demand. *)

type t = {
  vreg : int;
  def_op : int;
  start : int;  (** issue time of the producer *)
  stop : int;  (** exclusive: first cycle the register is free again *)
}

val length : t -> int

val of_schedule : Wr_ir.Ddg.t -> Wr_sched.Schedule.t -> t list
(** One lifetime per virtual register defined in the loop, in
    ascending [vreg] order.  A value never read lives until its result
    latency has elapsed (the write must still land). *)

val max_lives : ii:int -> t list -> int
(** MaxLives: the maximum number of simultaneously live values over the
    II kernel slots, counting each variant once per concurrently live
    iteration — the classic lower bound on the register requirement. *)

val pp : Format.formatter -> t -> unit
