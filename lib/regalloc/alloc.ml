type assignment = { vreg : int; register : int; whole_registers : int }

type t = { required : int; max_lives : int; assignments : assignment list; ii : int }

let allocate ~ii lifetimes =
  let max_lives = Lifetime.max_lives ~ii lifetimes in
  (* Split every lifetime into whole registers plus a residual arc. *)
  let items =
    List.map
      (fun (lt : Lifetime.t) ->
        let len = Lifetime.length lt in
        let whole = len / ii and rem = len mod ii in
        let start = ((lt.Lifetime.start mod ii) + ii) mod ii in
        (lt.Lifetime.vreg, whole, if rem = 0 then None else Some (start, rem)))
      lifetimes
  in
  (* Adjacency ordering with end-fit (PLDI-92): build each register as
     a chain of arcs, always appending the remaining arc whose start
     follows the chain's current end with the smallest gap, until no
     arc fits in the ring space the register has left.  This keeps the
     fragmentation per register to the chain's terminal gap, so the
     total stays within a few registers of MaxLives. *)
  let with_arcs =
    List.filter_map
      (fun (v, w, arc) -> match arc with Some a -> Some (v, w, a) | None -> None)
      items
  in
  let pending = ref (List.sort (fun (_, _, a1) (_, _, a2) -> compare a1 a2) with_arcs) in
  let num_registers = ref 0 in
  let arc_assignments = ref [] in
  while !pending <> [] do
    let reg = !num_registers in
    incr num_registers;
    (* Seed the chain with the earliest-starting remaining arc. *)
    (match !pending with
    | [] -> ()
    | ((v0, w0, (s0, l0)) as seed) :: _ ->
        pending := List.filter (fun x -> x != seed) !pending;
        arc_assignments := (v0, { vreg = v0; register = reg; whole_registers = w0 }) :: !arc_assignments;
        (* Unwrapped chain coordinates: the register is full once the
           chain has consumed II slots past s0. *)
        let used = ref l0 in
        let current_end = ref ((s0 + l0) mod ii) in
        let continue_chain = ref true in
        while !continue_chain do
          (* Smallest forward gap from the chain end that still fits. *)
          let best = ref None in
          List.iter
            (fun ((_, _, (s, l)) as cand) ->
              let gap = ((s - !current_end) mod ii + ii) mod ii in
              if !used + gap + l <= ii then
                match !best with
                | Some (_, best_gap) when best_gap <= gap -> ()
                | _ -> best := Some (cand, gap))
            !pending;
          match !best with
          | None -> continue_chain := false
          | Some (((v, w, (s, l)) as cand), gap) ->
              pending := List.filter (fun x -> x != cand) !pending;
              arc_assignments :=
                (v, { vreg = v; register = reg; whole_registers = w }) :: !arc_assignments;
              used := !used + gap + l;
              current_end := (s + l) mod ii
        done)
  done;
  let arc_assignments = !arc_assignments in
  let no_arc_assignments =
    List.filter_map
      (fun (v, w, arc) ->
        match arc with None -> Some (v, { vreg = v; register = -1; whole_registers = w }) | Some _ -> None)
      items
  in
  let assignments =
    List.map snd
      (List.sort
         (fun (v1, _) (v2, _) -> compare v1 v2)
         (arc_assignments @ no_arc_assignments))
  in
  let whole_total = List.fold_left (fun acc a -> acc + a.whole_registers) 0 assignments in
  { required = whole_total + !num_registers; max_lives; assignments; ii }

let fits t ~available = t.required <= available

let pp fmt t =
  Format.fprintf fmt "alloc: %d registers required (MaxLives %d, II %d)" t.required t.max_lives
    t.ii
