module Ddg = Wr_ir.Ddg
module Schedule = Wr_sched.Schedule
module Modulo = Wr_sched.Modulo
module Backend = Wr_sched.Backend
module Obs = Wr_obs.Obs

type success = {
  graph : Ddg.t;
  schedule : Schedule.t;
  alloc : Alloc.t;
  spill_rounds : int;
  stores_added : int;
  loads_added : int;
  mii : int;
}

type outcome = Scheduled of success | Unschedulable of string

type policy = Combined | Spill_only | Escalate_only

(* One schedule-and-allocate probe.  The Fault.hit sites are inert
   unless WR_FAULT is configured and an evaluation context is in scope
   (see Wr_util.Fault); they exist so the resilience tests can prove
   that a crash here degrades one point instead of killing a study. *)
let probe resource ~cycle_model ~min_ii g =
  Wr_util.Fault.hit "sched";
  let result = Backend.run resource ~cycle_model ~min_ii g in
  Wr_util.Fault.hit "alloc";
  let lifetimes, alloc =
    Obs.span "alloc" (fun () ->
        let lifetimes = Lifetime.of_schedule g result.Modulo.schedule in
        (lifetimes, Alloc.allocate ~ii:result.Modulo.schedule.Schedule.ii lifetimes))
  in
  if Obs.enabled () then Obs.incr "driver/probes";
  (result, lifetimes, alloc)

(* Lever 1 (Llosa, MICRO-29): increase the II.  A slower loop overlaps
   fewer iterations, so the register requirement decreases
   monotonically (up to scheduler noise).  Binary-search the smallest
   II within [lo, cap] that fits; the cap encodes "the compiler gives
   up": a loop that cannot fit even 4x slower than its MII is declared
   unschedulable at this register file size (the paper's 8w1/32). *)
let escalate resource ~cycle_model ~registers ~lo ~cap g =
  Obs.span "driver/escalate" @@ fun () ->
  let fits_at ii =
    Wr_util.Deadline.check ();
    let result, _, alloc = probe resource ~cycle_model ~min_ii:ii g in
    if Alloc.fits alloc ~available:registers then Some (result, alloc) else None
  in
  match fits_at cap with
  | None -> None
  | Some best ->
      (* Binary-search window is [lo+1, cap]: the caller only reaches
         here after probing at lo (the MII-anchored first schedule) and
         finding it does not fit, so lo itself is known-failed and the
         smallest candidate worth probing is lo+1.  The probe at cap
         above anchors the other end: fits_at is monotone in II (more
         slack, fewer overlapped lifetimes), so a fit at cap guarantees
         the search converges on the smallest fitting II. *)
      let best = ref best in
      let lo = ref (lo + 1) and hi = ref cap in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        match fits_at mid with
        | Some r ->
            best := r;
            hi := mid
        | None -> lo := mid + 1
      done;
      Some !best

(* Lever 2: spill.  Store pressure-heavy values and reload them before
   use, rescheduling after every round; stop when the requirement
   plateaus. *)
let spill_loop resource ~cycle_model ~registers ~max_rounds g =
  Obs.span "driver/spill_loop" @@ fun () ->
  let spilled_ever = Hashtbl.create 16 in
  let reload_regs = Hashtbl.create 16 in
  let rec iterate g round stores loads prev_required stall =
    (* Spill-round boundary: a budgeted loop bails out between rounds,
       never mid-reschedule. *)
    Wr_util.Deadline.check ();
    let result, lifetimes, alloc = probe resource ~cycle_model ~min_ii:1 g in
    if Alloc.fits alloc ~available:registers then begin
      if Obs.enabled () then Obs.observe "spill/rounds_to_fit" round;
      Some (g, result, alloc, round, stores, loads)
    end
    else if round >= max_rounds then None
    else begin
      let stall = if alloc.Alloc.required >= prev_required then stall + 1 else 0 in
      if stall >= 2 then None
      else
        let already_spilled r = Hashtbl.mem spilled_ever r || Hashtbl.mem reload_regs r in
        let deficit = alloc.Alloc.required - registers in
        match
          Spill.choose ~ii:result.Modulo.schedule.Schedule.ii ~lifetimes ~already_spilled
            ~deficit
        with
        | None -> None
        | Some plan ->
            Wr_util.Fault.hit "spill";
            let spill = Spill.apply g ~vregs:plan.Spill.vregs in
            List.iter (fun r -> Hashtbl.replace spilled_ever r ()) plan.Spill.vregs;
            List.iter (fun r -> Hashtbl.replace reload_regs r ()) spill.Spill.reload_vregs;
            iterate spill.Spill.graph (round + 1)
              (stores + spill.Spill.stores_added)
              (loads + spill.Spill.loads_added)
              alloc.Alloc.required stall
    end
  in
  iterate g 0 0 0 max_int 0

let run resource ~cycle_model ~registers ?(max_rounds = 16) ?(policy = Combined) g =
  if registers <= 0 then invalid_arg "Driver.run: registers must be positive";
  let result0, _, alloc0 = probe resource ~cycle_model ~min_ii:1 g in
  if Alloc.fits alloc0 ~available:registers then
    Scheduled
      {
        graph = g;
        schedule = result0.Modulo.schedule;
        alloc = alloc0;
        spill_rounds = 0;
        stores_added = 0;
        loads_added = 0;
        mii = result0.Modulo.mii;
      }
  else begin
    let ii0 = result0.Modulo.schedule.Schedule.ii in
    let cap = 4 * Stdlib.max 1 result0.Modulo.mii in
    let escalated =
      if policy <> Spill_only && cap > ii0 then
        escalate resource ~cycle_model ~registers ~lo:ii0 ~cap g
      else None
    in
    (* When a tiny slowdown already fits, spilling cannot beat it. *)
    let cheap_escalation =
      match escalated with
      | Some (r, _) -> r.Modulo.schedule.Schedule.ii <= ii0 + Stdlib.max 1 (ii0 / 8)
      | None -> false
    in
    let spilled =
      if policy = Escalate_only || cheap_escalation then None
      else spill_loop resource ~cycle_model ~registers ~max_rounds g
    in
    match (escalated, spilled) with
    | Some (r, alloc), None ->
        Scheduled
          {
            graph = g;
            schedule = r.Modulo.schedule;
            alloc;
            spill_rounds = 0;
            stores_added = 0;
            loads_added = 0;
            mii = result0.Modulo.mii;
          }
    | None, Some (g', r, alloc, rounds, stores, loads) ->
        Scheduled
          {
            graph = g';
            schedule = r.Modulo.schedule;
            alloc;
            spill_rounds = rounds;
            stores_added = stores;
            loads_added = loads;
            mii = result0.Modulo.mii;
          }
    | Some (re, alloc_e), Some (g', rs, alloc_s, rounds, stores, loads) ->
        (* Both levers work: keep the faster loop. *)
        if rs.Modulo.schedule.Schedule.ii <= re.Modulo.schedule.Schedule.ii then
          Scheduled
            {
              graph = g';
              schedule = rs.Modulo.schedule;
              alloc = alloc_s;
              spill_rounds = rounds;
              stores_added = stores;
              loads_added = loads;
              mii = result0.Modulo.mii;
            }
        else
          Scheduled
            {
              graph = g;
              schedule = re.Modulo.schedule;
              alloc = alloc_e;
              spill_rounds = 0;
              stores_added = 0;
              loads_added = 0;
              mii = result0.Modulo.mii;
            }
    | None, None ->
        Unschedulable
          (Printf.sprintf
             "needs %d registers (available %d): spilling plateaued and II escalation to %d failed"
             alloc0.Alloc.required registers cap)
  end
