(* Integration tests for the study itself (lib/core): analytic rates,
   the evaluation pipeline, and each experiment's headline properties
   on a deterministic subsample of the suite. *)

module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Loop = Wr_ir.Loop
module K = Wr_workload.Kernels

let cm = Cycle_model.Cycles_4

let sample = lazy (Wr_workload.Suite.sample 60)

let suite_id = "test-sample60"

(* --- rates ---------------------------------------------------------------- *)

let test_rates_daxpy () =
  let loop = K.daxpy () in
  let r = Core.Rates.of_loop (Config.xwy ~x:1 ~y:1 ()) ~cycle_model:cm loop in
  (* 3 memory ops on one bus dominate. *)
  Alcotest.(check (float 1e-6)) "bus rate" 3.0 r.Core.Rates.bus_rate;
  Alcotest.(check (float 1e-6)) "cycles/iter" 3.0 r.Core.Rates.cycles_per_iteration;
  let r8 = Core.Rates.of_loop (Config.xwy ~x:8 ~y:1 ()) ~cycle_model:cm loop in
  Alcotest.(check (float 1e-6)) "8 buses" (3.0 /. 8.0) r8.Core.Rates.bus_rate

let test_rates_widening_compactable () =
  let loop = K.daxpy () in
  let r = Core.Rates.of_loop (Config.xwy ~x:1 ~y:4 ()) ~cycle_model:cm loop in
  (* Fully compactable: width divides the demand. *)
  Alcotest.(check (float 1e-6)) "bus rate" (3.0 /. 4.0) r.Core.Rates.bus_rate

let test_rates_widening_noncompactable () =
  let loop = K.strided_gather () in
  let r1 = Core.Rates.of_loop (Config.xwy ~x:1 ~y:1 ()) ~cycle_model:cm loop in
  let r8 = Core.Rates.of_loop (Config.xwy ~x:1 ~y:8 ()) ~cycle_model:cm loop in
  (* The strided load and its dependents stay scalar: widening gains
     less than 8x. *)
  Alcotest.(check bool) "some gain" true
    (r8.Core.Rates.cycles_per_iteration < r1.Core.Rates.cycles_per_iteration);
  Alcotest.(check bool) "less than 8x" true
    (r8.Core.Rates.cycles_per_iteration > r1.Core.Rates.cycles_per_iteration /. 8.0)

let test_rates_recurrence_floor () =
  let loop = K.dot_product () in
  List.iter
    (fun (x, y) ->
      let r = Core.Rates.of_loop (Config.xwy ~x ~y ()) ~cycle_model:cm loop in
      Alcotest.(check bool) "floor 4" true (r.Core.Rates.cycles_per_iteration >= 4.0 -. 1e-9))
    [ (1, 1); (8, 1); (1, 8); (4, 4) ]

(* --- evaluate -------------------------------------------------------------- *)

let test_evaluate_daxpy () =
  let loop = K.daxpy () in
  let r = Core.Evaluate.loop_on (Config.xwy ~x:1 ~y:1 ()) ~cycle_model:cm ~registers:64 loop in
  Alcotest.(check bool) "pipelined" true r.Core.Evaluate.pipelined;
  Alcotest.(check int) "ii 3" 3 r.Core.Evaluate.ii

let test_evaluate_fallback () =
  (* 2 registers cannot hold anything: the loop compiles without
     pipelining but still gets a finite cost. *)
  let loop = K.banded_matvec () in
  let r = Core.Evaluate.loop_on (Config.xwy ~x:8 ~y:1 ()) ~cycle_model:cm ~registers:2 loop in
  Alcotest.(check bool) "not pipelined" false r.Core.Evaluate.pipelined;
  Alcotest.(check bool) "finite cost" true (r.Core.Evaluate.cycles > 0.0);
  (* Sequential execution is much slower than the pipelined II=2. *)
  Alcotest.(check bool) "slower than pipelined" true (r.Core.Evaluate.ii > 5)

let test_evaluate_suite_memoized () =
  let loops = Lazy.force sample in
  let c = Config.xwy ~registers:64 ~x:2 ~y:1 () in
  let a = Core.Evaluate.suite_on ~suite_id c ~cycle_model:cm ~registers:64 loops in
  let b = Core.Evaluate.suite_on ~suite_id c ~cycle_model:cm ~registers:64 loops in
  Alcotest.(check bool) "same stats" true (a = b);
  Alcotest.(check int) "all loops" 60 a.Core.Evaluate.loops

let test_evaluate_parallel_deterministic () =
  (* The engine's central contract: a 1-domain and a 4-domain pool
     produce bit-identical aggregates (same float accumulation order,
     same counters) on a 50-loop sample across several grid points. *)
  let loops = Wr_workload.Suite.sample 50 in
  let p1 = Wr_util.Pool.create ~jobs:1 () in
  let p4 = Wr_util.Pool.create ~jobs:4 () in
  Fun.protect
    ~finally:(fun () ->
      Wr_util.Pool.shutdown p1;
      Wr_util.Pool.shutdown p4)
    (fun () ->
      List.iter
        (fun (x, y, z) ->
          let c = Config.xwy ~registers:z ~x ~y () in
          Core.Evaluate.clear_cache ();
          let seq =
            Core.Evaluate.suite_on ~pool:p1 ~suite_id:"det50" c ~cycle_model:cm ~registers:z
              loops
          in
          Core.Evaluate.clear_cache ();
          let par =
            Core.Evaluate.suite_on ~pool:p4 ~suite_id:"det50" c ~cycle_model:cm ~registers:z
              loops
          in
          Alcotest.(check bool)
            (Printf.sprintf "aggregates bit-identical on %dw%d(%d)" x y z)
            true (seq = par))
        [ (1, 1, 64); (4, 2, 64); (8, 1, 32); (2, 4, 128) ];
      Core.Evaluate.clear_cache ())

(* --- loop-level cache -------------------------------------------------------- *)

let test_loop_cache_returns_same_record () =
  Core.Evaluate.clear_cache ();
  let loop = K.daxpy () in
  let c = Config.xwy ~registers:64 ~x:2 ~y:1 () in
  let before = Core.Evaluate.evaluations () in
  let a =
    Core.Evaluate.loop_cached ~suite_id:"cache-unit" ~index:0 c ~cycle_model:cm ~registers:64
      loop
  in
  Alcotest.(check int) "first call runs the pipeline" (before + 1)
    (Core.Evaluate.evaluations ());
  let b =
    Core.Evaluate.loop_cached ~suite_id:"cache-unit" ~index:0 c ~cycle_model:cm ~registers:64
      loop
  in
  Alcotest.(check bool) "physically the same record" true (a == b);
  Alcotest.(check int) "second call is a pure hit" (before + 1)
    (Core.Evaluate.evaluations ())

let test_loop_cache_shared_across_studies () =
  (* Two studies visiting the same (suite, loop, machine point) share
     the schedule-and-allocate work: after [suite_on] has filled the
     loop cache, per-loop lookups under the same suite id never
     re-invoke the scheduler. *)
  Core.Evaluate.clear_cache ();
  let loops = Lazy.force sample in
  let c = Config.xwy ~registers:64 ~x:2 ~y:1 () in
  let agg = Core.Evaluate.suite_on ~suite_id:"cache-share" c ~cycle_model:cm ~registers:64 loops in
  let n = Core.Evaluate.evaluations () in
  let results =
    Array.mapi
      (fun i loop ->
        Core.Evaluate.loop_cached ~suite_id:"cache-share" ~index:i c ~cycle_model:cm
          ~registers:64 loop)
      loops
  in
  Alcotest.(check int) "no re-evaluations" n (Core.Evaluate.evaluations ());
  let total = Array.fold_left (fun acc r -> acc +. r.Core.Evaluate.cycles) 0.0 results in
  Alcotest.(check (float 1e-9)) "aggregate agrees with cached loops"
    agg.Core.Evaluate.total_cycles total

let test_clear_cache_drops_both_levels () =
  Core.Evaluate.clear_cache ();
  let loop = K.daxpy () in
  let c = Config.xwy ~registers:64 ~x:1 ~y:1 () in
  let eval () =
    ignore
      (Core.Evaluate.loop_cached ~suite_id:"cache-clear" ~index:0 c ~cycle_model:cm
         ~registers:64 loop);
    ignore
      (Core.Evaluate.suite_on ~suite_id:"cache-clear" c ~cycle_model:cm ~registers:64
         [| loop |])
  in
  eval ();
  let n = Core.Evaluate.evaluations () in
  (* Warm: both levels answer from the tables. *)
  eval ();
  Alcotest.(check int) "warm caches: no pipeline runs" n (Core.Evaluate.evaluations ());
  Core.Evaluate.clear_cache ();
  eval ();
  Alcotest.(check bool) "cleared: the pipeline runs again" true
    (Core.Evaluate.evaluations () > n)

(* --- peak study (figure 2) -------------------------------------------------- *)

let test_peak_monotone_in_factor () =
  let loops = Lazy.force sample in
  let t = Core.Peak_study.run ~max_factor:32 loops in
  (* Within the pure replication series, speed-up never decreases. *)
  let xw1 =
    List.filter_map
      (fun (_, points) ->
        List.find_opt (fun p -> p.Core.Peak_study.config.Config.width = 1) points)
      t
  in
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "monotone" true
          (b.Core.Peak_study.speedup >= a.Core.Peak_study.speedup -. 1e-9);
        check rest
    | _ -> ()
  in
  check xw1

let test_peak_replication_beats_widening () =
  (* Paper, Section 3.1: under optimal conditions pure replication has
     the best theoretical performance at every factor. *)
  let loops = Lazy.force sample in
  let t = Core.Peak_study.run ~max_factor:32 loops in
  List.iter
    (fun (factor, points) ->
      match points with
      | repl :: rest when factor >= 4 ->
          List.iter
            (fun p ->
              Alcotest.(check bool)
                (Printf.sprintf "x%d: %s <= %s" factor
                   (Config.label_short p.Core.Peak_study.config)
                   (Config.label_short repl.Core.Peak_study.config))
                true
                (p.Core.Peak_study.speedup <= repl.Core.Peak_study.speedup +. 1e-6))
            rest
      | _ -> ())
    t

let test_peak_baseline_is_one () =
  let loops = Lazy.force sample in
  let t = Core.Peak_study.run ~max_factor:2 loops in
  match t with
  | (2, points) :: _ ->
      List.iter
        (fun p -> Alcotest.(check bool) "above 1" true (p.Core.Peak_study.speedup > 1.0))
        points
  | _ -> Alcotest.fail "missing factor 2"

(* --- spill study (figure 3) -------------------------------------------------- *)

let spill_result = lazy (Core.Spill_study.run ~suite_id (Lazy.force sample))

let find_cell t x y z =
  let row =
    List.find
      (fun r ->
        r.Core.Spill_study.config.Config.buses = x && r.Core.Spill_study.config.Config.width = y)
      t
  in
  List.assoc z row.Core.Spill_study.cells

let test_spill_more_registers_never_hurt () =
  let t = Lazy.force spill_result in
  List.iter
    (fun r ->
      let values =
        List.filter_map
          (fun (_, c) -> match c with Core.Spill_study.Speedup s -> Some s | _ -> None)
          r.Core.Spill_study.cells
      in
      let rec check = function
        | a :: (b :: _ as rest) ->
            Alcotest.(check bool) "monotone in RF" true (b >= a -. 0.02);
            check rest
        | _ -> ()
      in
      check values)
    t

let test_spill_crossover_4w2_vs_8w1 () =
  (* The paper's central observation: with moderate register files the
     widened 4w2 beats the replicated 8w1 despite 8w1's higher peak. *)
  let t = Lazy.force spill_result in
  match (find_cell t 4 2 128, find_cell t 8 1 128) with
  | Core.Spill_study.Speedup s42, Core.Spill_study.Speedup s81 ->
      Alcotest.(check bool)
        (Printf.sprintf "4w2(128)=%.2f > 8w1(128)=%.2f" s42 s81)
        true (s42 > s81)
  | _ -> Alcotest.fail "cells missing"

let test_spill_8w1_32_unschedulable () =
  let t = Lazy.force spill_result in
  match find_cell t 8 1 32 with
  | Core.Spill_study.Not_schedulable -> ()
  | Core.Spill_study.Speedup s -> Alcotest.fail (Printf.sprintf "expected n/a, got %.2f" s)

let test_spill_wide_rf_capacity_effect () =
  (* At 32 registers the widened configurations of factor 4 beat pure
     replication: wide registers hold more values. *)
  let t = Lazy.force spill_result in
  match (find_cell t 2 2 32, find_cell t 4 1 32) with
  | Core.Spill_study.Speedup s22, Core.Spill_study.Speedup s41 ->
      Alcotest.(check bool) (Printf.sprintf "2w2=%.2f >= 4w1=%.2f" s22 s41) true (s22 >= s41)
  | Core.Spill_study.Speedup _, Core.Spill_study.Not_schedulable -> ()
  | _ -> Alcotest.fail "unexpected n/a for 2w2 at 32"

(* --- cost tables -------------------------------------------------------------- *)

let test_cost_tables_render () =
  List.iter
    (fun (name, s) ->
      Alcotest.(check bool) (name ^ " non-empty") true (String.length s > 80))
    [
      ("table1", Core.Cost_tables.table1 ());
      ("table2", Core.Cost_tables.table2 ());
      ("table3", Core.Cost_tables.table3 ());
      ("table4", Core.Cost_tables.table4 ());
      ("table6", Core.Cost_tables.table6 ());
      ("figure4", Core.Cost_tables.figure4 ());
      ("figure6", Core.Cost_tables.figure6 ());
    ]

(* --- implementability (table 5) ------------------------------------------------ *)

let test_implementability_anchors () =
  let rows = Core.Implementability.run () in
  let find x y = List.find (fun r -> r.Core.Implementability.x = x && r.Core.Implementability.y = y) rows in
  let cell r z n =
    (List.find
       (fun (c : Core.Implementability.cell) -> c.Core.Implementability.registers = z && c.Core.Implementability.partitions = n)
       r.Core.Implementability.cells)
      .Core.Implementability.verdict
  in
  (* 1w1 at 32 registers: buildable from the first generation. *)
  (match cell (find 1 1) 32 1 with
  | Core.Implementability.First_at 1998 -> ()
  | _ -> Alcotest.fail "1w1(32:1) should be buildable in 1998");
  (* Partitioning beyond the bus count is not applicable. *)
  (match cell (find 1 1) 32 2 with
  | Core.Implementability.Not_applicable -> ()
  | _ -> Alcotest.fail "1w1 cannot be 2-partitioned");
  (* 16w1 with 256 registers: not buildable in any generation
     considered (paper's '5' symbol). *)
  (match cell (find 16 1) 256 1 with
  | Core.Implementability.Never -> ()
  | _ -> Alcotest.fail "16w1(256:1) should never be implementable")

let test_implementability_configs_nonempty () =
  List.iter
    (fun g ->
      let configs = Core.Implementability.implementable_configs g in
      Alcotest.(check bool) "candidates exist" true (List.length configs > 0))
    Wr_cost.Sia.generations

(* --- code size (figure 7) ------------------------------------------------------- *)

let test_code_size_best_case_series () =
  let t = Core.Code_size_study.run ~suite_id (Lazy.force sample) in
  List.iter
    (fun (factor, entries) ->
      List.iter
        (fun (e : Core.Code_size_study.entry) ->
          let expected =
            float_of_int e.Core.Code_size_study.config.Config.buses /. float_of_int factor
          in
          Alcotest.(check (float 1e-9)) "word ratio" expected e.Core.Code_size_study.best_case)
        entries)
    t

let test_code_size_measured_bounded () =
  let t = Core.Code_size_study.run ~suite_id (Lazy.force sample) in
  List.iter
    (fun (_, entries) ->
      List.iter
        (fun (e : Core.Code_size_study.entry) ->
          Alcotest.(check bool) "measured between best case and 2" true
            (e.Core.Code_size_study.measured >= e.Core.Code_size_study.best_case -. 1e-9
            && e.Core.Code_size_study.measured < 2.0))
        entries)
    t

(* --- trade-off (figures 8 and 9) -------------------------------------------------- *)

let test_tradeoff_point () =
  let loops = Lazy.force sample in
  match Core.Tradeoff.evaluate ~suite_id loops (Config.xwy ~registers:32 ~x:1 ~y:1 ()) with
  | Some p ->
      Alcotest.(check (float 1e-9)) "baseline speedup 1" 1.0 p.Core.Tradeoff.speedup;
      Alcotest.(check (float 1e-9)) "baseline tc 1" 1.0 p.Core.Tradeoff.tc
  | None -> Alcotest.fail "baseline must evaluate"

let test_tradeoff_figure9_nonempty () =
  let loops = Lazy.force sample in
  let results = Core.Tradeoff.figure9 ~suite_id ~top:3 loops in
  Alcotest.(check int) "five generations" 5 (List.length results);
  List.iter
    (fun ((g : Wr_cost.Sia.generation), points) ->
      Alcotest.(check bool)
        (Printf.sprintf "top list at %d" g.Wr_cost.Sia.year)
        true
        (List.length points > 0);
      (* Later generations reach higher speed-ups. *)
      List.iter
        (fun p -> Alcotest.(check bool) "positive speedup" true (p.Core.Tradeoff.speedup > 0.0))
        points)
    results

let test_tradeoff_conclusion_direction () =
  (* 4w2(128) must beat 8w1(128) in performance per area under the
     technology-limited comparison. *)
  let loops = Lazy.force sample in
  let best x y =
    List.filter_map
      (fun n ->
        if x mod n = 0 && n <= x then
          Core.Tradeoff.evaluate ~suite_id loops (Config.xwy ~registers:128 ~partitions:n ~x ~y ())
        else None)
      [ 1; 2; 4; 8 ]
    |> List.sort (fun a b -> compare b.Core.Tradeoff.speedup a.Core.Tradeoff.speedup)
    |> function
    | best :: _ -> best
    | [] -> Alcotest.fail "no point"
  in
  let p42 = best 4 2 and p81 = best 8 1 in
  Alcotest.(check bool)
    (Printf.sprintf "4w2 %.2f > 8w1 %.2f" p42.Core.Tradeoff.speedup p81.Core.Tradeoff.speedup)
    true
    (p42.Core.Tradeoff.speedup > p81.Core.Tradeoff.speedup);
  Alcotest.(check bool) "in less area" true (p42.Core.Tradeoff.area < p81.Core.Tradeoff.area)

(* --- extension studies ------------------------------------------------------ *)

let test_icache_study_ordering () =
  (* At each factor, the widened configuration must fit small caches at
     least as often as the replicated one. *)
  let t = Core.Icache_study.run ~cache_sizes_kb:[ 4 ] (Wr_workload.Suite.sample 40) in
  let share x y =
    (List.find
       (fun (c : Core.Icache_study.cell) ->
         c.Core.Icache_study.config.Config.buses = x
         && c.Core.Icache_study.config.Config.width = y)
       t)
      .Core.Icache_study.over_capacity_share
  in
  Alcotest.(check bool) "1w4 fits more than 4w1" true (share 1 4 <= share 4 1);
  Alcotest.(check bool) "1w8 fits more than 8w1" true (share 1 8 <= share 8 1);
  Alcotest.(check bool) "2w4 fits more than 8w1" true (share 2 4 <= share 8 1)

let test_ablation_rotating_text () =
  let s = Core.Ablation.rotating_file (Wr_workload.Suite.sample 15) in
  Alcotest.(check bool) "renders" true (String.length s > 200)

let test_ablation_levers_text () =
  let s = Core.Ablation.pressure_levers (Wr_workload.Suite.sample 20) in
  Alcotest.(check bool) "renders with policies" true (String.length s > 200)

let () =
  Alcotest.run "core"
    [
      ( "rates",
        [
          Alcotest.test_case "daxpy" `Quick test_rates_daxpy;
          Alcotest.test_case "widening compactable" `Quick test_rates_widening_compactable;
          Alcotest.test_case "widening noncompactable" `Quick test_rates_widening_noncompactable;
          Alcotest.test_case "recurrence floor" `Quick test_rates_recurrence_floor;
        ] );
      ( "evaluate",
        [
          Alcotest.test_case "daxpy" `Quick test_evaluate_daxpy;
          Alcotest.test_case "fallback" `Quick test_evaluate_fallback;
          Alcotest.test_case "memoized" `Quick test_evaluate_suite_memoized;
          Alcotest.test_case "parallel determinism" `Slow test_evaluate_parallel_deterministic;
        ] );
      ( "loop_cache",
        [
          Alcotest.test_case "same record, no re-run" `Quick test_loop_cache_returns_same_record;
          Alcotest.test_case "shared across studies" `Slow test_loop_cache_shared_across_studies;
          Alcotest.test_case "clear drops both levels" `Quick test_clear_cache_drops_both_levels;
        ] );
      ( "peak_study",
        [
          Alcotest.test_case "monotone in factor" `Slow test_peak_monotone_in_factor;
          Alcotest.test_case "replication peaks highest" `Slow test_peak_replication_beats_widening;
          Alcotest.test_case "baseline" `Slow test_peak_baseline_is_one;
        ] );
      ( "spill_study",
        [
          Alcotest.test_case "monotone in RF" `Slow test_spill_more_registers_never_hurt;
          Alcotest.test_case "4w2 beats 8w1 at 128" `Slow test_spill_crossover_4w2_vs_8w1;
          Alcotest.test_case "8w1/32 unschedulable" `Slow test_spill_8w1_32_unschedulable;
          Alcotest.test_case "wide RF capacity" `Slow test_spill_wide_rf_capacity_effect;
        ] );
      ("cost_tables", [ Alcotest.test_case "render" `Quick test_cost_tables_render ]);
      ( "implementability",
        [
          Alcotest.test_case "anchors" `Quick test_implementability_anchors;
          Alcotest.test_case "candidates" `Quick test_implementability_configs_nonempty;
        ] );
      ( "code_size",
        [
          Alcotest.test_case "best case series" `Slow test_code_size_best_case_series;
          Alcotest.test_case "measured bounded" `Slow test_code_size_measured_bounded;
        ] );
      ( "tradeoff",
        [
          Alcotest.test_case "baseline point" `Slow test_tradeoff_point;
          Alcotest.test_case "figure 9" `Slow test_tradeoff_figure9_nonempty;
          Alcotest.test_case "conclusion direction" `Slow test_tradeoff_conclusion_direction;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "icache ordering" `Slow test_icache_study_ordering;
          Alcotest.test_case "ablation rotating" `Slow test_ablation_rotating_text;
          Alcotest.test_case "ablation levers" `Slow test_ablation_levers_text;
        ] );
    ]
