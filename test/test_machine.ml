(* Tests for wr_machine: configurations, cycle models, resources. *)

module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Resource = Wr_machine.Resource
module Opcode = Wr_ir.Opcode

let test_config_xwy () =
  let c = Config.xwy ~registers:128 ~partitions:2 ~x:4 ~y:2 () in
  Alcotest.(check int) "buses" 4 c.Config.buses;
  Alcotest.(check int) "fpus" 8 c.Config.fpus;
  Alcotest.(check int) "width" 2 c.Config.width;
  Alcotest.(check int) "factor" 8 (Config.factor c);
  Alcotest.(check int) "bits" 128 (Config.bits_per_register c)

let test_config_ports () =
  (* 2 reads + 1 write per FPU, 1 read + 1 write per bus: XwY has
     5X reads and 3X writes (paper, Table 3). *)
  List.iter
    (fun x ->
      let c = Config.xwy ~x ~y:1 () in
      Alcotest.(check int) "reads" (5 * x) (Config.read_ports c);
      Alcotest.(check int) "writes" (3 * x) (Config.write_ports c))
    [ 1; 2; 4; 8; 16 ]

let test_config_partition_ports () =
  (* Paper Section 4.2: 8w1 as two copies has 20R+24W per copy. *)
  let c = Config.xwy ~registers:64 ~partitions:2 ~x:8 ~y:1 () in
  Alcotest.(check int) "reads per copy" 20 (Config.read_ports_per_partition c);
  Alcotest.(check int) "writes per copy" 24 (Config.write_ports_per_partition c)

let test_config_validation () =
  Alcotest.(check bool) "partitions must divide buses" true
    (try
       ignore (Config.make ~buses:4 ~fpus:8 ~width:1 ~registers:64 ~partitions:3 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "partitions cannot exceed buses" true
    (try
       ignore (Config.make ~buses:2 ~fpus:4 ~width:1 ~registers:64 ~partitions:4 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "positive width" true
    (try
       ignore (Config.make ~buses:1 ~fpus:2 ~width:0 ~registers:64 ());
       false
     with Invalid_argument _ -> true)

let test_config_label_parse_roundtrip () =
  let cases = [ "4w2(128:2)"; "1w1(32)"; "8w1(64:8)"; "2w4" ] in
  List.iter
    (fun s ->
      match Config.parse s with
      | Ok c -> Alcotest.(check string) ("roundtrip " ^ s) s (Config.label c)
      | Error e -> Alcotest.fail e)
    cases

let test_config_parse_rejects () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("reject " ^ s) true (Result.is_error (Config.parse s)))
    [ "w2"; "4x2"; "4w"; "4w2(128:3)"; "0w2"; "4w2(0)"; "garbage" ]

let test_config_grid () =
  let grid = Config.paper_grid ~max_factor:8 ~registers:[ 64 ] in
  let labels = List.map Config.label_short grid in
  Alcotest.(check (list string)) "paper order"
    [ "2w1"; "1w2"; "4w1"; "2w2"; "1w4"; "8w1"; "4w2"; "2w4"; "1w8" ]
    labels

let test_config_valid_partitions () =
  let c = Config.xwy ~x:8 ~y:1 () in
  Alcotest.(check (list int)) "divisors" [ 1; 2; 4; 8 ] (Config.valid_partitions c)

let test_cycle_model_table6 () =
  (* The exact Table 6. *)
  let check cm (store, short, div, sqrt) =
    Alcotest.(check int) "store" store (Cycle_model.latency cm Opcode.Store_op);
    Alcotest.(check int) "short" short (Cycle_model.latency cm Opcode.Short_op);
    Alcotest.(check int) "div" div (Cycle_model.latency cm Opcode.Div_op);
    Alcotest.(check int) "sqrt" sqrt (Cycle_model.latency cm Opcode.Sqrt_op)
  in
  check Cycle_model.Cycles_4 (1, 4, 19, 27);
  check Cycle_model.Cycles_3 (1, 3, 15, 21);
  check Cycle_model.Cycles_2 (1, 2, 10, 14);
  check Cycle_model.Cycles_1 (1, 1, 5, 7)

let test_cycle_model_classification () =
  (* The paper's worked examples (Section 5.2): Tc=1.85 -> 3-cycles,
     Tc=2.09 -> 2-cycles, Tc=1.80 -> 3-cycles. *)
  Alcotest.(check int) "1.85" 3 (Cycle_model.cycles (Cycle_model.of_relative_cycle_time 1.85));
  Alcotest.(check int) "2.09" 2 (Cycle_model.cycles (Cycle_model.of_relative_cycle_time 2.09));
  Alcotest.(check int) "1.80" 3 (Cycle_model.cycles (Cycle_model.of_relative_cycle_time 1.80));
  Alcotest.(check int) "1.0 stays 4" 4 (Cycle_model.cycles (Cycle_model.of_relative_cycle_time 1.0));
  Alcotest.(check int) "faster clamps to 4" 4
    (Cycle_model.cycles (Cycle_model.of_relative_cycle_time 0.5));
  Alcotest.(check int) "very slow clamps to 1" 1
    (Cycle_model.cycles (Cycle_model.of_relative_cycle_time 10.0))

let test_cycle_model_occupancy () =
  Alcotest.(check int) "pipelined mul occupies 1" 1
    (Cycle_model.occupancy Cycle_model.Cycles_4 Opcode.Fmul);
  Alcotest.(check int) "div occupies its latency" 19
    (Cycle_model.occupancy Cycle_model.Cycles_4 Opcode.Fdiv);
  Alcotest.(check int) "sqrt under 2-cycles" 14
    (Cycle_model.occupancy Cycle_model.Cycles_2 Opcode.Fsqrt)

let test_resource_slots () =
  let c = Config.xwy ~x:4 ~y:2 () in
  let r = Resource.of_config c in
  Alcotest.(check int) "bus slots" 4 (Resource.slots r Opcode.Bus);
  Alcotest.(check int) "fpu slots" 8 (Resource.slots r Opcode.Fpu)

let test_resource_demand () =
  let loop = Wr_workload.Kernels.daxpy () in
  let r = Resource.of_config (Config.xwy ~x:1 ~y:1 ()) in
  let bus, fpu =
    Resource.total_slot_demand r ~cycle_model:Cycle_model.Cycles_4 loop.Wr_ir.Loop.ddg
  in
  (* daxpy: 2 loads + 1 store on the bus, mul + add on FPUs. *)
  Alcotest.(check int) "bus demand" 3 bus;
  Alcotest.(check int) "fpu demand" 2 fpu

let prop_parse_never_crashes =
  QCheck.Test.make ~name:"Config.parse is total" ~count:500
    (QCheck.make ~print:(Printf.sprintf "%S") QCheck.Gen.(string_size (int_bound 12)))
    (fun s -> match Config.parse s with Ok _ | Error _ -> true)

let prop_label_parse_roundtrip =
  QCheck.Test.make ~name:"label/parse roundtrip on random grid configs" ~count:200
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000))
    (fun seed ->
      let rng = Wr_util.Rng.create ~seed:(Int64.of_int (seed + 9)) in
      let x = 1 lsl Wr_util.Rng.int rng 5 in
      let y = 1 lsl Wr_util.Rng.int rng 5 in
      let z = [| 32; 64; 128; 256 |].(Wr_util.Rng.int rng 4) in
      let parts = List.nth (Config.valid_partitions (Config.xwy ~x ~y ()))
          (Wr_util.Rng.int rng (List.length (Config.valid_partitions (Config.xwy ~x ~y ())))) in
      let c = Config.xwy ~registers:z ~partitions:parts ~x ~y () in
      match Config.parse (Config.label c) with
      | Ok c' -> Config.equal c c'
      | Error _ -> false)

let () =
  Alcotest.run "wr_machine"
    [
      ( "config",
        [
          Alcotest.test_case "xwy" `Quick test_config_xwy;
          Alcotest.test_case "ports" `Quick test_config_ports;
          Alcotest.test_case "partition ports" `Quick test_config_partition_ports;
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "label/parse roundtrip" `Quick test_config_label_parse_roundtrip;
          Alcotest.test_case "parse rejects" `Quick test_config_parse_rejects;
          Alcotest.test_case "paper grid" `Quick test_config_grid;
          Alcotest.test_case "valid partitions" `Quick test_config_valid_partitions;
        ] );
      ( "cycle_model",
        [
          Alcotest.test_case "table 6" `Quick test_cycle_model_table6;
          Alcotest.test_case "classification" `Quick test_cycle_model_classification;
          Alcotest.test_case "occupancy" `Quick test_cycle_model_occupancy;
        ] );
      ( "resource",
        [
          Alcotest.test_case "slots" `Quick test_resource_slots;
          Alcotest.test_case "demand" `Quick test_resource_demand;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_parse_never_crashes; prop_label_parse_roundtrip ] );
    ]
