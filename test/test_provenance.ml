(* Run ledger and decision provenance: per-point records are emitted
   exactly once, ledger files are byte-identical for any pool size and
   checksum-verified on load, the observatory classifies divergences
   between two runs, and the versioned bench schema round-trips the
   committed BENCH_*.json artifacts. *)

module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Evaluate = Core.Evaluate
module Provenance = Core.Provenance
module Observatory = Core.Observatory
module B = Core.Bench_schema
module Ledger = Wr_obs.Ledger
module Fault = Wr_util.Fault
module Pool = Wr_util.Pool

let cm = Cycle_model.Cycles_4

let cfg = Config.xwy ~registers:64 ~x:2 ~y:2 ()

let loops = Wr_workload.Suite.sample 8

let fresh () =
  Fault.configure [];
  Provenance.set_capture false;
  Provenance.set_wall false;
  Provenance.reset ();
  Evaluate.reset_quarantine ();
  Evaluate.clear_cache ()

let with_clean_state f = fresh (); Fun.protect ~finally:fresh f

let with_pool jobs f =
  let pool = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let with_tmp_file f =
  let path = Filename.temp_file "wr_ledger" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1)
  in
  go 0

let contains s sub = find_sub s sub <> None

let run_suite ~suite_id jobs =
  Evaluate.clear_cache ();
  Provenance.reset ();
  with_pool jobs @@ fun pool ->
  ignore (Evaluate.suite_on ~pool ~suite_id cfg ~cycle_model:cm ~registers:64 loops);
  Provenance.records ()

(* --- ledger files ---------------------------------------------------------- *)

let test_ledger_deterministic_across_jobs () =
  with_clean_state @@ fun () ->
  Provenance.set_capture true;
  let read path = In_channel.with_open_bin path In_channel.input_all in
  with_tmp_file @@ fun p1 ->
  with_tmp_file @@ fun p4 ->
  ignore (run_suite ~suite_id:"prov-det" 1);
  Provenance.write p1;
  ignore (run_suite ~suite_id:"prov-det" 4);
  Provenance.write p4;
  Alcotest.(check bool) "ledger bytes identical for jobs 1 and 4" true
    (String.equal (read p1) (read p4));
  (* And the file round-trips: every record, every field. *)
  match Provenance.load p1 with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok records ->
      Alcotest.(check int) "one record per (loop, point)" (Array.length loops)
        (List.length records);
      List.iter
        (fun (r : Provenance.t) ->
          Alcotest.(check string) "suite" "prov-det" r.Provenance.suite;
          Alcotest.(check bool) "hash nonzero" true (r.Provenance.hash <> 0L);
          Alcotest.(check bool) "no wall time by default" true (r.Provenance.wall_us = None))
        records

let test_ledger_detects_corruption () =
  with_clean_state @@ fun () ->
  Provenance.set_capture true;
  ignore (run_suite ~suite_id:"prov-corrupt" 1);
  with_tmp_file @@ fun path ->
  Provenance.write path;
  let s = In_channel.with_open_bin path In_channel.input_all in
  (* Flip one digit inside a payload: the line checksum must catch it. *)
  let i =
    match find_sub s {|"cycles": |} with
    | Some i -> i + String.length {|"cycles": |}
    | None -> Alcotest.fail "no cycles field in the ledger"
  in
  let b = Bytes.of_string s in
  Bytes.set b i (if Bytes.get b i = '9' then '8' else '9');
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b);
  match Provenance.load path with
  | Ok _ -> Alcotest.fail "corrupted ledger loaded"
  | Error e -> Alcotest.(check bool) "error is descriptive" true (String.length e > 0)

let test_point_hash_keys_full_input () =
  let loop = loops.(0) in
  let h ?(registers = 64) ?(index = 0) ?(suite_id = "s") () =
    Provenance.point_hash ~suite_id ~index ~config:cfg ~registers ~cycle_model:cm loop
  in
  Alcotest.(check bool) "stable" true (h () = h ());
  Alcotest.(check bool) "registers change the hash" true (h () <> h ~registers:32 ());
  Alcotest.(check bool) "index changes the hash" true (h () <> h ~index:1 ());
  Alcotest.(check bool) "suite changes the hash" true (h () <> h ~suite_id:"t" ())

let test_wall_opt_in () =
  with_clean_state @@ fun () ->
  Provenance.set_capture true;
  Provenance.set_wall true;
  let records = run_suite ~suite_id:"prov-wall" 1 in
  Alcotest.(check bool) "wall time present when opted in" true
    (List.for_all (fun (r : Provenance.t) -> r.Provenance.wall_us <> None) records)

(* --- quarantine provenance -------------------------------------------------- *)

let test_quarantine_tag_in_provenance () =
  with_clean_state @@ fun () ->
  Provenance.set_capture true;
  Fault.configure [ { Fault.site = "widen"; prob = 1.0; seed = 0xFA17L; action = Fault.Raise } ];
  let records = run_suite ~suite_id:"prov-quar" 2 in
  Alcotest.(check int) "every point still recorded" (Array.length loops)
    (List.length records);
  List.iter
    (fun (r : Provenance.t) ->
      Alcotest.(check bool) "marked quarantined" true r.Provenance.quarantined;
      Alcotest.(check bool) "carries the exception tag" true
        (String.length r.Provenance.tag > 0);
      Alcotest.(check bool) "degraded points are unpipelined" false r.Provenance.pipelined)
    records

(* --- observatory ------------------------------------------------------------ *)

let base_records () =
  with_clean_state @@ fun () ->
  Provenance.set_capture true;
  run_suite ~suite_id:"prov-diff" 1

let test_self_diff_empty () =
  let records = base_records () in
  let ds = Observatory.diff records records in
  Alcotest.(check int) "self-diff has no divergences" 0 (List.length ds);
  Alcotest.(check bool) "no regressions" false (Observatory.has_regressions ds);
  Alcotest.(check string) "render" "no divergences\n" (Observatory.render_diff ds)

let test_diff_classification () =
  let records = base_records () in
  match records with
  | r0 :: r1 :: r2 :: rest ->
      let perturbed =
        { r0 with Provenance.cycles = r0.Provenance.cycles *. 2.0 }
        :: { r1 with Provenance.ii = r1.Provenance.ii + 1 }
        :: { r2 with Provenance.quarantined = true; tag = "Injected" }
        :: List.tl rest
        (* drop one record: it must surface as vanished *)
      in
      let ds = Observatory.diff records perturbed in
      let classes = List.map (fun d -> d.Observatory.d_class) ds in
      let has c = List.mem c classes in
      Alcotest.(check bool) "cycles regression flagged" true (has "cycles_regression");
      Alcotest.(check bool) "II change flagged" true (has "ii_changed");
      Alcotest.(check bool) "quarantine flagged" true (has "verdict_changed");
      Alcotest.(check bool) "vanished point flagged" true (has "vanished");
      Alcotest.(check bool) "regressions gate" true (Observatory.has_regressions ds);
      (* The same doubled cycles pass under a generous threshold. *)
      let lenient =
        Observatory.diff ~threshold_pct:150.0 records
          [ { r0 with Provenance.cycles = r0.Provenance.cycles *. 2.0 } ]
      in
      Alcotest.(check bool) "threshold suppresses the cycles class" true
        (not
           (List.exists
              (fun d -> d.Observatory.d_class = "cycles_regression")
              lenient))
  | _ -> Alcotest.fail "suite too small"

let test_improvements_are_benign () =
  let records = base_records () in
  match records with
  | r0 :: _ ->
      let ds =
        Observatory.diff [ r0 ]
          [ { r0 with Provenance.cycles = r0.Provenance.cycles /. 2.0 } ]
      in
      Alcotest.(check int) "one divergence" 1 (List.length ds);
      Alcotest.(check bool) "improvement does not gate" false
        (Observatory.has_regressions ds);
      (* A point appearing in the new run only is likewise benign. *)
      let appeared = Observatory.diff [] [ r0 ] in
      Alcotest.(check bool) "appeared is benign" false
        (Observatory.has_regressions appeared)
  | _ -> Alcotest.fail "suite too small"

let test_report_renders () =
  let records = base_records () in
  let s = Observatory.report records in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "report mentions %S" needle) true
        (contains s needle))
    [ "prov-diff"; "II over MII"; "Backend breakdown"; "heuristic"; "slowest" ]

(* --- bench schema ------------------------------------------------------------ *)

let bench_files = [ "BENCH_gap.json"; "BENCH_interp.json"; "BENCH_sched.json" ]

let bench_path name = Filename.concat "../" name

let test_bench_schema_roundtrip () =
  List.iter
    (fun name ->
      match B.load_file (bench_path name) with
      | Error e -> Alcotest.failf "%s: %s" name e
      | Ok j -> (
          (match B.validate j with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "%s invalid: %s" name e);
          (* Print and re-parse: the value survives, numbers verbatim. *)
          match B.parse (B.to_file_string j) with
          | Error e -> Alcotest.failf "%s re-parse: %s" name e
          | Ok j2 ->
              Alcotest.(check string)
                (name ^ " round-trips")
                (B.to_string j) (B.to_string j2)))
    bench_files

let test_bench_diff_gap () =
  let row family loop config heur_ii exact_ii status =
    B.Obj
      [
        ("family", B.str family); ("loop", B.str loop); ("config", B.str config);
        ("mii", B.int 2); ("heur_ii", B.int heur_ii); ("exact_ii", B.int exact_ii);
        ("gap", B.int (heur_ii - exact_ii)); ("status", B.str status); ("nodes", B.int 5);
      ]
  in
  let artifact rows =
    B.envelope ~kind:"gap"
      [
        ("suite", B.str "t"); ("points", B.int (List.length rows));
        ("proved_optimal", B.int 0); ("rows", B.List rows);
      ]
  in
  let old_j = artifact [ row "f" "l1" "2w1" 3 3 "proved_optimal"; row "f" "l2" "2w1" 4 3 "proved_optimal" ] in
  let new_j = artifact [ row "f" "l1" "2w1" 4 3 "improved_unproved"; row "f" "l2" "2w1" 4 3 "proved_optimal" ] in
  match Observatory.diff_bench old_j new_j with
  | Error e -> Alcotest.failf "diff_bench: %s" e
  | Ok ds ->
      Alcotest.(check bool) "heuristic II increase gates" true
        (Observatory.has_regressions ds);
      Alcotest.(check bool) "status weakening classified" true
        (List.exists (fun d -> d.Observatory.d_class = "verdict_changed") ds);
      (* Self-diff of either artifact is empty. *)
      (match Observatory.diff_bench old_j old_j with
      | Ok [] -> ()
      | Ok ds -> Alcotest.failf "self-diff: %d divergence(s)" (List.length ds)
      | Error e -> Alcotest.failf "self-diff: %s" e)

let test_bench_diff_kind_mismatch () =
  let sched =
    B.envelope ~kind:"sched"
      [ ("suite", B.str "t"); ("reps", B.int 1); ("loops", B.List []); ("total_s", B.float 0.0) ]
  in
  let gap =
    B.envelope ~kind:"gap"
      [ ("suite", B.str "t"); ("points", B.int 0); ("proved_optimal", B.int 0);
        ("rows", B.List []) ]
  in
  match Observatory.diff_bench sched gap with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "kind mismatch accepted"

(* --- raw ledger line discipline ---------------------------------------------- *)

let test_ledger_line_roundtrip () =
  with_tmp_file @@ fun path ->
  let header = {|{"schema": "test/1"}|} in
  let payloads = [ {|{"a": 1}|}; {|{"b": [1, 2]}|} ] in
  Ledger.write ~path ~header ~records:payloads;
  (match Ledger.load path with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok (h, ps) ->
      Alcotest.(check string) "header" header h;
      Alcotest.(check (list string)) "payloads" payloads ps);
  (* Truncate mid-line: strict load refuses the file. *)
  let s = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub s 0 (String.length s - 3)));
  match Ledger.load path with
  | Ok _ -> Alcotest.fail "torn ledger loaded"
  | Error _ -> ()

let () =
  Alcotest.run "provenance"
    [
      ( "ledger",
        [
          Alcotest.test_case "byte-identical across pool sizes" `Quick
            test_ledger_deterministic_across_jobs;
          Alcotest.test_case "corruption detected on load" `Quick
            test_ledger_detects_corruption;
          Alcotest.test_case "point hash keys the full input" `Quick
            test_point_hash_keys_full_input;
          Alcotest.test_case "wall time is opt-in" `Quick test_wall_opt_in;
          Alcotest.test_case "line discipline round-trips" `Quick
            test_ledger_line_roundtrip;
        ] );
      ( "quarantine",
        [
          Alcotest.test_case "exception tag flows into provenance" `Quick
            test_quarantine_tag_in_provenance;
        ] );
      ( "observatory",
        [
          Alcotest.test_case "self-diff empty" `Quick test_self_diff_empty;
          Alcotest.test_case "divergence classification" `Quick test_diff_classification;
          Alcotest.test_case "improvements are benign" `Quick test_improvements_are_benign;
          Alcotest.test_case "report renders" `Quick test_report_renders;
        ] );
      ( "bench-schema",
        [
          Alcotest.test_case "committed artifacts round-trip" `Quick
            test_bench_schema_roundtrip;
          Alcotest.test_case "gap diff classification" `Quick test_bench_diff_gap;
          Alcotest.test_case "kind mismatch rejected" `Quick test_bench_diff_kind_mismatch;
        ] );
    ]
