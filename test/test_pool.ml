(* Unit tests for the domain-pool executor: ordering, exception
   propagation, nested maps, and pool lifecycle. *)

module Pool = Wr_util.Pool

let with_pool jobs f =
  let pool = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_ordering () =
  with_pool 4 (fun pool ->
      let input = Array.init 1000 (fun i -> i) in
      let out = Pool.parallel_map ~pool input ~f:(fun x -> x * x) in
      Alcotest.(check int) "length" 1000 (Array.length out);
      Array.iteri
        (fun i v -> if v <> i * i then Alcotest.failf "out.(%d) = %d, want %d" i v (i * i))
        out)

let test_matches_sequential () =
  with_pool 3 (fun pool ->
      let input = Array.init 257 (fun i -> float_of_int i /. 7.0) in
      let f x = sin x +. (x *. x) in
      Alcotest.(check bool) "same as Array.map" true
        (Pool.parallel_map ~pool input ~f = Array.map f input))

let test_empty_and_singleton () =
  with_pool 4 (fun pool ->
      Alcotest.(check int) "empty" 0 (Array.length (Pool.parallel_map ~pool [||] ~f:succ));
      let one = Pool.parallel_map ~pool [| 41 |] ~f:succ in
      Alcotest.(check bool) "singleton" true (one = [| 42 |]))

let test_jobs_one_is_sequential () =
  with_pool 1 (fun pool ->
      (* A size-1 pool spawns no domains: f runs in the calling domain,
         in order. *)
      let trace = ref [] in
      let out =
        Pool.parallel_map ~pool
          (Array.init 20 (fun i -> i))
          ~f:(fun i ->
            trace := i :: !trace;
            i + 1)
      in
      Alcotest.(check (list int)) "in-order execution" (List.init 20 (fun i -> 19 - i)) !trace;
      Alcotest.(check bool) "values" true (out = Array.init 20 (fun i -> i + 1)))

exception Boom of int

let test_exception_propagation () =
  with_pool 4 (fun pool ->
      match
        Pool.parallel_map ~pool
          (Array.init 100 (fun i -> i))
          ~f:(fun i -> if i = 63 then raise (Boom i) else i)
      with
      | _ -> Alcotest.fail "expected Batch_failure"
      | exception Pool.Batch_failure [ (63, Boom 63, _) ] -> ()
      | exception Pool.Batch_failure l ->
          Alcotest.failf "wrong failure list (%d entries)" (List.length l))

let test_all_failures_recorded () =
  (* Every failing item is reported — not just the first —
     with its input index, sorted ascending. *)
  with_pool 4 (fun pool ->
      match
        Pool.parallel_map ~pool
          (Array.init 100 (fun i -> i))
          ~f:(fun i -> if i mod 10 = 3 then raise (Boom i) else i)
      with
      | _ -> Alcotest.fail "expected Batch_failure"
      | exception Pool.Batch_failure failures ->
          let indices = List.map (fun (i, _, _) -> i) failures in
          Alcotest.(check (list int)) "all failing indices, sorted"
            [ 3; 13; 23; 33; 43; 53; 63; 73; 83; 93 ]
            indices;
          List.iter
            (fun (i, e, _) ->
              match e with
              | Boom j when j = i -> ()
              | e -> Alcotest.failf "index %d carries %s" i (Printexc.to_string e))
            failures)

let test_failures_match_sequential () =
  (* jobs=1 and jobs=N agree on the failure report, same as they agree
     on results. *)
  let run jobs =
    with_pool jobs (fun pool ->
        match
          Pool.parallel_map ~pool
            (Array.init 40 (fun i -> i))
            ~f:(fun i -> if i mod 7 = 0 then raise (Boom i) else i)
        with
        | _ -> Alcotest.fail "expected Batch_failure"
        | exception Pool.Batch_failure failures ->
            List.map (fun (i, e, _) -> (i, Printexc.to_string e)) failures)
  in
  Alcotest.(check (list (pair int string))) "jobs=1 = jobs=4" (run 1) (run 4)

let test_exception_leaves_pool_usable () =
  with_pool 4 (fun pool ->
      (match Pool.parallel_map ~pool [| 0; 1; 2 |] ~f:(fun _ -> failwith "boom") with
      | _ -> Alcotest.fail "expected Batch_failure"
      | exception Pool.Batch_failure failures ->
          Alcotest.(check int) "all three failures recorded" 3 (List.length failures));
      let out = Pool.parallel_map ~pool (Array.init 50 (fun i -> i)) ~f:(fun i -> 2 * i) in
      Alcotest.(check bool) "pool still works" true (out = Array.init 50 (fun i -> 2 * i)))

let test_nested_maps () =
  (* Inner maps run on the same pool from within worker tasks; the
     helping waiters make this deadlock-free even on a tiny pool. *)
  with_pool 2 (fun pool ->
      let out =
        Pool.parallel_map ~pool
          (Array.init 8 (fun i -> i))
          ~f:(fun i ->
            let inner =
              Pool.parallel_map ~pool (Array.init 50 (fun j -> j)) ~f:(fun j -> (i * 50) + j)
            in
            Array.fold_left ( + ) 0 inner)
      in
      let expected i = Array.fold_left ( + ) 0 (Array.init 50 (fun j -> (i * 50) + j)) in
      Alcotest.(check bool) "nested sums" true (out = Array.init 8 expected))

let test_list_map () =
  with_pool 4 (fun pool ->
      let l = List.init 333 (fun i -> i) in
      Alcotest.(check (list int)) "order preserved" (List.map succ l)
        (Pool.parallel_list_map ~pool l ~f:succ))

let test_create_rejects_zero () =
  match Pool.create ~jobs:0 () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_jobs_accessor () =
  with_pool 5 (fun pool -> Alcotest.(check int) "jobs" 5 (Pool.jobs pool));
  Alcotest.(check bool) "default_jobs positive" true (Pool.default_jobs () >= 1)

let test_shutdown_idempotent () =
  let pool = Pool.create ~jobs:3 () in
  Pool.shutdown pool;
  Pool.shutdown pool

let test_submit_after_shutdown_raises () =
  let pool = Pool.create ~jobs:2 () in
  Pool.shutdown pool;
  match Pool.submit pool (fun () -> ()) with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_shutdown_drains_accepted_tasks () =
  (* A size-1 pool has no workers, so the only thing that can run the
     queued tasks is shutdown's own drain. *)
  let pool = Pool.create ~jobs:1 () in
  let ran = ref 0 in
  for _ = 1 to 5 do
    Pool.submit pool (fun () -> incr ran)
  done;
  Pool.shutdown pool;
  Alcotest.(check int) "every accepted task ran" 5 !ran

let test_default_swap_race () =
  (* Regression for the set_default_jobs race: a second domain hammers
     the old default pool with submits while the main domain swaps it
     out.  Every submit must either be accepted (and then run — the
     swap drains the old pool) or fail with the explicit error; none
     may be dropped on the floor. *)
  Pool.set_default_jobs 2;
  let old = Pool.default () in
  let ran = Atomic.make 0 and accepted = Atomic.make 0 and rejected = Atomic.make 0 in
  let gate = Atomic.make false in
  let bomber =
    Domain.spawn (fun () ->
        while not (Atomic.get gate) do
          Domain.cpu_relax ()
        done;
        for _ = 1 to 2000 do
          match Pool.submit old (fun () -> Atomic.incr ran) with
          | () -> Atomic.incr accepted
          | exception Invalid_argument _ -> Atomic.incr rejected
        done)
  in
  (* Release the bomber first so the submits genuinely race the swap. *)
  Atomic.set gate true;
  Pool.set_default_jobs 2;
  Domain.join bomber;
  Alcotest.(check int) "all submits accounted for" 2000
    (Atomic.get accepted + Atomic.get rejected);
  Alcotest.(check int) "every accepted task ran" (Atomic.get accepted) (Atomic.get ran)

let () =
  Alcotest.run "pool"
    [
      ( "parallel_map",
        [
          Alcotest.test_case "preserves order" `Quick test_ordering;
          Alcotest.test_case "matches Array.map" `Quick test_matches_sequential;
          Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
          Alcotest.test_case "jobs=1 sequential" `Quick test_jobs_one_is_sequential;
          Alcotest.test_case "list map" `Quick test_list_map;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "propagates" `Quick test_exception_propagation;
          Alcotest.test_case "all failures recorded" `Quick test_all_failures_recorded;
          Alcotest.test_case "failure report deterministic" `Quick
            test_failures_match_sequential;
          Alcotest.test_case "pool survives" `Quick test_exception_leaves_pool_usable;
        ] );
      ("nesting", [ Alcotest.test_case "nested maps" `Quick test_nested_maps ]);
      ( "lifecycle",
        [
          Alcotest.test_case "jobs >= 1 enforced" `Quick test_create_rejects_zero;
          Alcotest.test_case "jobs accessor" `Quick test_jobs_accessor;
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
          Alcotest.test_case "submit after shutdown raises" `Quick
            test_submit_after_shutdown_raises;
          Alcotest.test_case "shutdown drains accepted tasks" `Quick
            test_shutdown_drains_accepted_tasks;
          Alcotest.test_case "default swap vs concurrent submit" `Quick
            test_default_swap_race;
        ] );
    ]
