(* Tests for wr_vliw.Interp and the functional correctness of the
   compiler transforms: widening, unrolling and spilling must preserve
   the loop's memory semantics bit-for-bit. *)

module Ddg = Wr_ir.Ddg
module Loop = Wr_ir.Loop
module Operation = Wr_ir.Operation
module B = Wr_ir.Builder
module Interp = Wr_vliw.Interp
module Transform = Wr_widen.Transform
module Spill = Wr_regalloc.Spill
module K = Wr_workload.Kernels

(* --- direct interpreter checks ------------------------------------------- *)

let test_interp_vector_scale () =
  (* b(i) = s * a(i): every output word must be s * initial(a, i). *)
  let loop = K.vector_scale () in
  let r = Interp.run ~iterations:5 loop in
  Alcotest.(check int) "five stores" 5 (List.length r.Interp.memory);
  (* All outputs are products of two values in [1,2): in [1,4). *)
  List.iter
    (fun ((arr, addr), v) ->
      Alcotest.(check int) "output array" 1 arr;
      Alcotest.(check bool) "address in range" true (addr >= 0 && addr < 5);
      Alcotest.(check bool) "value in range" true (v >= 1.0 && v < 4.0))
    r.Interp.memory

let test_interp_counts () =
  let loop = K.daxpy () in
  let r = Interp.run ~iterations:10 loop in
  (* 2 loads + 1 store per iteration, 2 flops. *)
  Alcotest.(check int) "loads" 20 r.Interp.loads;
  Alcotest.(check int) "stores" 10 r.Interp.stores;
  Alcotest.(check int) "flops" 20 r.Interp.flops

let test_interp_recurrence_accumulates () =
  (* x(i) = x(i-1) + y(i) with x(-1) = prehistory: the stored prefix
     sums must be strictly increasing (all y > 0). *)
  let loop = K.linear_recurrence () in
  let r = Interp.run ~iterations:8 loop in
  let outputs = List.map snd r.Interp.memory in
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "increasing" true (b > a);
        check rest
    | _ -> ()
  in
  check outputs;
  (* First value = prehistory + y(0) > prehistory. *)
  Alcotest.(check bool) "starts above prehistory" true (List.hd outputs > Interp.prehistory)

let test_interp_negative_offset_prehistory () =
  (* load A0[i-1] at i=0 reads address -1: the prehistory constant. *)
  let b = B.create () in
  let x = B.load b ~array_id:0 ~offset:(-1) () in
  B.store b ~array_id:1 () (B.fcopy b x);
  let loop = B.finish b ~trip_count:4 () in
  let r = Interp.run ~iterations:1 loop in
  match r.Interp.memory with
  | [ ((1, 0), v) ] -> Alcotest.(check (float 0.0)) "prehistory" Interp.prehistory v
  | _ -> Alcotest.fail "expected exactly one store"

let test_interp_deterministic () =
  let loop = K.state_equation () in
  let a = Interp.run ~iterations:16 loop in
  let b = Interp.run ~iterations:16 loop in
  Alcotest.(check bool) "same memory" true (Interp.equal_memory a b)

let test_interp_store_load_ordering () =
  (* store A0[i] then load A0[i] in the same iteration: the load must
     see the stored value (read-modify-write chains). *)
  let b = B.create () in
  let x = B.load b ~array_id:1 () in
  B.store b ~array_id:0 () x;
  let y = B.load b ~array_id:0 () in
  B.store b ~array_id:2 () (B.fcopy b y);
  let loop = B.finish b ~trip_count:3 () in
  let r = Interp.run ~iterations:3 loop in
  let find arr addr = List.assoc (arr, addr) r.Interp.memory in
  for i = 0 to 2 do
    Alcotest.(check (float 0.0)) "load saw store" (find 0 i) (find 2 i)
  done

(* --- transform equivalence ------------------------------------------------ *)

let check_equiv ?(label = "") original transformed ~factor ~iterations =
  let ref_result = Interp.run ~iterations:(iterations * factor) original in
  let got = Interp.run ~iterations transformed in
  let arrays = Interp.arrays_of original in
  let got = Interp.restrict got ~arrays in
  let ref_result = Interp.restrict ref_result ~arrays in
  if not (Interp.equal_memory ref_result got) then begin
    let diffs = Interp.diff_memory ref_result got in
    let show ((a, ad), l, r) =
      Printf.sprintf "A%d[%d]: ref=%s got=%s" a ad
        (match l with Some v -> string_of_float v | None -> "-")
        (match r with Some v -> string_of_float v | None -> "-")
    in
    Alcotest.fail
      (Printf.sprintf "%s: %d differing locations; first: %s" label (List.length diffs)
         (match diffs with d :: _ -> show d | [] -> "?"))
  end

let test_widen_equiv_kernels () =
  List.iter
    (fun (name, loop) ->
      List.iter
        (fun y ->
          let wide, _ = Transform.widen loop ~width:y in
          check_equiv ~label:(Printf.sprintf "%s@w%d" name y) loop wide ~factor:y
            ~iterations:6)
        [ 2; 4; 8 ])
    (K.all ())

let test_unroll_equiv_kernels () =
  List.iter
    (fun (name, loop) ->
      List.iter
        (fun k ->
          let u = Transform.unroll loop ~factor:k in
          check_equiv ~label:(Printf.sprintf "%s@u%d" name k) loop u ~factor:k ~iterations:5)
        [ 2; 3; 4 ])
    (K.all ())

let test_widen_then_unroll_equiv () =
  List.iter
    (fun (name, loop) ->
      let wide, _ = Transform.widen loop ~width:2 in
      let wu = Transform.unroll wide ~factor:3 in
      check_equiv ~label:(name ^ "@w2u3") loop wu ~factor:6 ~iterations:4)
    (K.all ())

let test_spill_equiv_kernels () =
  List.iter
    (fun (name, loop) ->
      let g = loop.Loop.ddg in
      (* Spill every spillable defined register (harshest case). *)
      let vregs =
        List.filter_map
          (fun (o : Operation.t) ->
            match o.Operation.def with
            | Some r when Ddg.users g r <> [] -> Some r
            | _ -> None)
          (Array.to_list (Ddg.ops g))
      in
      if vregs <> [] then begin
        let res = Spill.apply g ~vregs in
        let spilled =
          Loop.make ~name:(name ^ "@spill") ~ddg:res.Spill.graph
            ~trip_count:loop.Loop.trip_count ()
        in
        check_equiv ~label:(name ^ "@spill-all") loop spilled ~factor:1 ~iterations:8
      end)
    (K.all ())

(* --- property tests over the generator ------------------------------------ *)

let random_loop seed =
  let rng = Wr_util.Rng.create ~seed:(Int64.of_int (seed + 31337)) in
  Wr_workload.Generator.generate_one rng Wr_workload.Generator.default ~index:seed

let gen_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 2500)

let prop_widen_preserves_semantics =
  QCheck.Test.make ~name:"widen preserves memory semantics" ~count:40 gen_seed (fun seed ->
      let loop = random_loop seed in
      List.for_all
        (fun y ->
          let wide, _ = Transform.widen loop ~width:y in
          let arrays = Interp.arrays_of loop in
          let a = Interp.restrict (Interp.run ~iterations:(4 * y) loop) ~arrays in
          let b = Interp.restrict (Interp.run ~iterations:4 wide) ~arrays in
          Interp.equal_memory a b)
        [ 2; 4 ])

let prop_unroll_preserves_semantics =
  QCheck.Test.make ~name:"unroll preserves memory semantics" ~count:40 gen_seed (fun seed ->
      let loop = random_loop seed in
      let u = Transform.unroll loop ~factor:3 in
      let arrays = Interp.arrays_of loop in
      let a = Interp.restrict (Interp.run ~iterations:12 loop) ~arrays in
      let b = Interp.restrict (Interp.run ~iterations:4 u) ~arrays in
      Interp.equal_memory a b)

let prop_spill_preserves_semantics =
  QCheck.Test.make ~name:"spilling preserves memory semantics" ~count:40 gen_seed (fun seed ->
      let loop = random_loop seed in
      let g = loop.Loop.ddg in
      (* Spill the three longest-named (deterministic) candidates. *)
      let vregs =
        List.filteri (fun i _ -> i < 3)
          (List.filter_map
             (fun (o : Operation.t) ->
               match o.Operation.def with
               | Some r when Ddg.users g r <> [] -> Some r
               | _ -> None)
             (Array.to_list (Ddg.ops g)))
      in
      if vregs = [] then true
      else begin
        let res = Spill.apply g ~vregs in
        let spilled =
          Loop.make ~name:"spilled" ~ddg:res.Spill.graph ~trip_count:loop.Loop.trip_count ()
        in
        let arrays = Interp.arrays_of loop in
        let a = Interp.restrict (Interp.run ~iterations:10 loop) ~arrays in
        let b = Interp.restrict (Interp.run ~iterations:10 spilled) ~arrays in
        Interp.equal_memory a b
      end)

let prop_widen_spill_compose =
  QCheck.Test.make ~name:"widen then spill preserves semantics" ~count:25 gen_seed
    (fun seed ->
      let loop = random_loop seed in
      let wide, _ = Transform.widen loop ~width:2 in
      let g = wide.Loop.ddg in
      let vregs =
        List.filteri (fun i _ -> i < 2)
          (List.filter_map
             (fun (o : Operation.t) ->
               match o.Operation.def with
               | Some r when Ddg.users g r <> [] -> Some r
               | _ -> None)
             (Array.to_list (Ddg.ops g)))
      in
      let final =
        if vregs = [] then wide
        else
          Loop.make ~name:"ws" ~ddg:(Spill.apply g ~vregs).Spill.graph
            ~trip_count:wide.Loop.trip_count ()
      in
      let arrays = Interp.arrays_of loop in
      let a = Interp.restrict (Interp.run ~iterations:12 loop) ~arrays in
      let b = Interp.restrict (Interp.run ~iterations:6 final) ~arrays in
      Interp.equal_memory a b)

(* --- codegen + cycle-level simulation -------------------------------------- *)

module Codegen = Wr_vliw.Codegen
module Sim = Wr_vliw.Sim
module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Resource = Wr_machine.Resource
module Schedule = Wr_sched.Schedule

let schedule_for loop (c : Config.t) =
  let wide, _ = Transform.widen loop ~width:c.Config.width in
  let g = wide.Loop.ddg in
  let r = Wr_sched.Modulo.run (Resource.of_config c) ~cycle_model:Cycle_model.Cycles_4 g in
  (wide, g, r.Wr_sched.Modulo.schedule)

let test_codegen_mve_periods () =
  let loop = K.daxpy () in
  let _, g, s = schedule_for loop (Config.xwy ~x:1 ~y:1 ()) in
  let a = Codegen.allocate g s in
  (* Every period is a power of two dividing the unroll degree. *)
  Array.iter
    (fun p ->
      if p > 0 then
        Alcotest.(check int) "period divides unroll" 0 (a.Codegen.unroll mod p))
    a.Codegen.period;
  Alcotest.(check bool) "needs registers" true (a.Codegen.total_registers > 0)

let test_codegen_mve_vs_wands () =
  (* The conventional-file MVE assignment can never beat the rotating
     file's wands requirement, and stays within its 2x bound plus
     live-ins. *)
  List.iter
    (fun (_, loop) ->
      let _, g, s = schedule_for loop (Config.xwy ~x:2 ~y:1 ()) in
      let a = Codegen.allocate g s in
      let lts = Wr_regalloc.Lifetime.of_schedule g s in
      let wands = Wr_regalloc.Alloc.allocate ~ii:s.Schedule.ii lts in
      let live_ins = a.Codegen.total_registers - a.Codegen.live_in_base in
      let mve_variants = a.Codegen.live_in_base in
      Alcotest.(check bool) "mve >= wands" true
        (mve_variants >= wands.Wr_regalloc.Alloc.required);
      Alcotest.(check bool) "mve within 2x + slack" true
        (mve_variants <= (2 * wands.Wr_regalloc.Alloc.required) + live_ins + 4))
    (K.all ())

let test_codegen_emit () =
  let loop = K.daxpy () in
  let cfg = Config.xwy ~x:2 ~y:2 () in
  let _, g, s = schedule_for loop cfg in
  let a = Codegen.allocate g s in
  let text = Codegen.emit g s a cfg in
  Alcotest.(check bool) "mentions kernel" true (String.length text > 100);
  let counts = Codegen.word_counts g s a cfg in
  Alcotest.(check int) "kernel words" (a.Codegen.unroll * s.Schedule.ii)
    counts.Codegen.kernel_words;
  Alcotest.(check bool) "some slots filled" true (counts.Codegen.filled_slots > 0)

let test_sim_kernels_end_to_end () =
  (* The gold check: schedule + MVE + cycle simulation reproduces the
     reference interpreter exactly, for every kernel on several
     machines. *)
  List.iter
    (fun (name, loop) ->
      List.iter
        (fun (x, y) ->
          let cfg = Config.xwy ~x ~y () in
          match Sim.check_against_reference loop cfg ~iterations:7 with
          | Ok sim ->
              Alcotest.(check bool)
                (Printf.sprintf "%s on %s issued work" name (Config.label_short cfg))
                true
                (sim.Sim.issued > 0 && sim.Sim.cycles >= sim.Sim.kernel_cycles)
          | Error msg ->
              Alcotest.fail (Printf.sprintf "%s on %s: %s" name (Config.label_short cfg) msg))
        [ (1, 1); (2, 1); (1, 2); (4, 2); (2, 4) ])
    (K.all ())

let test_sim_cycle_accounting () =
  let loop = K.daxpy () in
  let cfg = Config.xwy ~x:1 ~y:1 () in
  let _, g, s = schedule_for loop cfg in
  let a = Sim.mve_mapping (Codegen.allocate g s) in
  let iterations = 50 in
  let sim = Sim.run g s a cfg ~iterations in
  (* Total cycles = fill + steady state + drain: within span + latency
     of the II * iterations model. *)
  Alcotest.(check bool) "cycles close to II*N" true
    (sim.Sim.cycles >= s.Schedule.ii * iterations
    && sim.Sim.cycles <= (s.Schedule.ii * iterations) + Schedule.span s + 8);
  Alcotest.(check int) "all instances issued" (5 * iterations) sim.Sim.issued

let test_sim_detects_oversubscription () =
  (* Feed the simulator an illegal schedule: everything at cycle 0. *)
  let loop = K.daxpy () in
  let cfg = Config.xwy ~x:1 ~y:1 () in
  let _, g, s = schedule_for loop cfg in
  let times = Array.map (fun _ -> 0) s.Schedule.times in
  let bad = Schedule.make ~ii:s.Schedule.ii ~times ~cycle_model:s.Schedule.cycle_model in
  let a = Sim.mve_mapping (Codegen.allocate g bad) in
  Alcotest.(check bool) "hazard raised" true
    (try
       ignore (Sim.run g bad a cfg ~iterations:3);
       false
     with Sim.Hazard _ -> true)

(* --- rotating register file ------------------------------------------------ *)

module Rotating = Wr_vliw.Rotating

let test_rotating_requirement_bounds () =
  List.iter
    (fun (name, loop) ->
      let _, g, s = schedule_for loop (Config.xwy ~x:2 ~y:1 ()) in
      let a = Rotating.allocate g s in
      let lb = Rotating.lower_bound g s in
      let lts = Wr_regalloc.Lifetime.of_schedule g s in
      let wands = Wr_regalloc.Alloc.allocate ~ii:s.Schedule.ii lts in
      Alcotest.(check bool) (name ^ " above occupancy bound") true
        (a.Rotating.num_rotating >= lb);
      (* The spiral packer and the wands model price the same hardware:
         they must land within a few registers of each other. *)
      Alcotest.(check bool)
        (Printf.sprintf "%s rotating=%d ~ wands=%d" name a.Rotating.num_rotating
           wands.Wr_regalloc.Alloc.required)
        true
        (abs (a.Rotating.num_rotating - wands.Wr_regalloc.Alloc.required) <= 6))
    (K.all ())

let test_rotating_end_to_end () =
  (* The rotating assignment must execute correctly: same gold check as
     MVE but with hardware renaming. *)
  List.iter
    (fun (name, loop) ->
      List.iter
        (fun (x, y) ->
          let cfg = Config.xwy ~x ~y () in
          match Sim.check_against_reference ~file:`Rotating loop cfg ~iterations:7 with
          | Ok _ -> ()
          | Error msg ->
              Alcotest.fail (Printf.sprintf "%s on %s: %s" name (Config.label_short cfg) msg))
        [ (1, 1); (2, 1); (2, 2); (4, 2) ])
    (K.all ())

let test_rotating_fewer_registers_than_mve () =
  (* On loop variants the rotating file never needs more registers than
     MVE's power-of-two blocks. *)
  List.iter
    (fun (_, loop) ->
      let _, g, s = schedule_for loop (Config.xwy ~x:4 ~y:1 ()) in
      let rot = Rotating.allocate g s in
      let mve = Codegen.allocate g s in
      (* First-fit at schedule-fixed slots can fragment slightly, but
         the rotating file must stay in the same ballpark or below the
         power-of-two MVE blocks. *)
      Alcotest.(check bool) "rotating <= mve + 2" true
        (rot.Rotating.num_rotating <= mve.Codegen.live_in_base + 2))
    (K.all ())

let prop_perturbed_schedules_sound =
  (* Failure injection: jitter one operation's issue time.  If the
     validator still accepts the schedule, executing it must still be
     correct — i.e. Schedule.validate is sound, not merely a syntactic
     check. *)
  QCheck.Test.make ~name:"validated perturbed schedules still execute correctly" ~count:60
    (QCheck.pair gen_seed (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1000)))
    (fun (seed, jitter_seed) ->
      let loop = random_loop seed in
      let cfg = Config.xwy ~x:2 ~y:1 () in
      let wide, _ = Transform.widen loop ~width:1 in
      let g = wide.Loop.ddg in
      let resource = Resource.of_config cfg in
      let r = Wr_sched.Modulo.run resource ~cycle_model:Cycle_model.Cycles_4 g in
      let s = r.Wr_sched.Modulo.schedule in
      let n = Array.length s.Schedule.times in
      if n = 0 then true
      else begin
        let rng = Wr_util.Rng.create ~seed:(Int64.of_int (jitter_seed + 999)) in
        let times = Array.copy s.Schedule.times in
        let victim = Wr_util.Rng.int rng n in
        times.(victim) <- Stdlib.max 0 (times.(victim) + Wr_util.Rng.int_in rng (-3) 3);
        let mutated = Schedule.make ~ii:s.Schedule.ii ~times ~cycle_model:Cycle_model.Cycles_4 in
        match Schedule.validate g resource mutated with
        | Error _ -> true  (* correctly rejected *)
        | Ok () -> (
            (* Accepted: executing it must match the reference. *)
            let alloc = Sim.mve_mapping (Codegen.allocate g mutated) in
            match Sim.run g mutated alloc cfg ~iterations:5 with
            | exception Sim.Hazard _ -> false
            | sim ->
                let reference = Interp.run ~iterations:5 wide in
                let sim_image =
                  { Interp.memory = sim.Sim.memory; loads = 0; stores = 0; flops = 0 }
                in
                Interp.equal_memory reference sim_image)
      end)

let prop_rotating_sim_matches_reference =
  QCheck.Test.make ~name:"rotating-file simulation matches the reference" ~count:30 gen_seed
    (fun seed ->
      let loop = random_loop seed in
      match
        Sim.check_against_reference ~file:`Rotating loop (Config.xwy ~x:2 ~y:2 ())
          ~iterations:5
      with
      | Ok _ -> true
      | Error _ -> false)

let prop_sim_matches_reference =
  QCheck.Test.make ~name:"simulation matches the reference interpreter" ~count:30 gen_seed
    (fun seed ->
      let loop = random_loop seed in
      let cfg = Config.xwy ~x:2 ~y:2 () in
      match Sim.check_against_reference loop cfg ~iterations:5 with
      | Ok _ -> true
      | Error _ -> false)

let test_interp_total_on_suite () =
  (* The interpreter must execute every suite loop without raising —
     totality of the semantics over the whole workload. *)
  Array.iter
    (fun (l : Loop.t) -> ignore (Interp.run ~iterations:3 l))
    (Wr_workload.Suite.sample 200)

(* --- data cache --------------------------------------------------------------- *)

module Dcache = Wr_vliw.Dcache

let test_dcache_stride1_reuse () =
  (* A scalar stride-1 load stream with 32-byte lines: one miss per 4
     words. *)
  let loop = K.vector_scale () in
  let cfg = Config.xwy ~x:1 ~y:1 () in
  let _, g, s = schedule_for loop cfg in
  let cache = Dcache.make ~size_bytes:16384 () in
  let st = Dcache.replay cache g s ~iterations:128 in
  let rate = Dcache.miss_rate st in
  Alcotest.(check bool) (Printf.sprintf "rate %.3f ~ 0.25" rate) true
    (rate > 0.2 && rate < 0.35)

let test_dcache_wide_access_fewer_transactions () =
  let loop = K.vector_scale () in
  let count y =
    let cfg = Config.xwy ~x:1 ~y () in
    let _, g, s = schedule_for loop cfg in
    let cache = Dcache.make ~size_bytes:16384 () in
    (* One wide iteration covers y source iterations. *)
    (Dcache.replay cache g s ~iterations:(128 / y)).Dcache.accesses
  in
  let scalar = count 1 and wide = count 4 in
  Alcotest.(check bool)
    (Printf.sprintf "wide %d < scalar %d transactions" wide scalar)
    true (wide < scalar);
  (* A 4-word access can straddle two 32-byte lines when the staggered
     array base is unaligned, so the reduction is 2-4x. *)
  Alcotest.(check bool) "at least 2x fewer" true (scalar / wide >= 2)

let test_dcache_same_words_moved () =
  let loop = K.daxpy () in
  let words y =
    let cfg = Config.xwy ~x:1 ~y () in
    let _, g, s = schedule_for loop cfg in
    let cache = Dcache.make ~size_bytes:16384 () in
    (Dcache.replay cache g s ~iterations:(64 / y)).Dcache.words
  in
  Alcotest.(check int) "same data volume" (words 1) (words 2)

let test_dcache_validation () =
  Alcotest.(check bool) "non-pow2 rejected" true
    (try
       ignore (Dcache.make ~size_bytes:1000 ());
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "wr_vliw"
    [
      ( "interp",
        [
          Alcotest.test_case "vector scale" `Quick test_interp_vector_scale;
          Alcotest.test_case "counts" `Quick test_interp_counts;
          Alcotest.test_case "recurrence" `Quick test_interp_recurrence_accumulates;
          Alcotest.test_case "prehistory" `Quick test_interp_negative_offset_prehistory;
          Alcotest.test_case "deterministic" `Quick test_interp_deterministic;
          Alcotest.test_case "store/load order" `Quick test_interp_store_load_ordering;
          Alcotest.test_case "total on suite" `Slow test_interp_total_on_suite;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "widen kernels" `Quick test_widen_equiv_kernels;
          Alcotest.test_case "unroll kernels" `Quick test_unroll_equiv_kernels;
          Alcotest.test_case "widen+unroll" `Quick test_widen_then_unroll_equiv;
          Alcotest.test_case "spill kernels" `Quick test_spill_equiv_kernels;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "mve periods" `Quick test_codegen_mve_periods;
          Alcotest.test_case "mve vs wands" `Quick test_codegen_mve_vs_wands;
          Alcotest.test_case "emit" `Quick test_codegen_emit;
        ] );
      ( "sim",
        [
          Alcotest.test_case "kernels end-to-end" `Quick test_sim_kernels_end_to_end;
          Alcotest.test_case "cycle accounting" `Quick test_sim_cycle_accounting;
          Alcotest.test_case "oversubscription hazard" `Quick test_sim_detects_oversubscription;
        ] );
      ( "dcache",
        [
          Alcotest.test_case "stride-1 reuse" `Quick test_dcache_stride1_reuse;
          Alcotest.test_case "wide transactions" `Quick test_dcache_wide_access_fewer_transactions;
          Alcotest.test_case "data volume" `Quick test_dcache_same_words_moved;
          Alcotest.test_case "validation" `Quick test_dcache_validation;
        ] );
      ( "rotating",
        [
          Alcotest.test_case "requirement bounds" `Quick test_rotating_requirement_bounds;
          Alcotest.test_case "end-to-end" `Quick test_rotating_end_to_end;
          Alcotest.test_case "vs MVE" `Quick test_rotating_fewer_registers_than_mve;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_widen_preserves_semantics;
            prop_unroll_preserves_semantics;
            prop_spill_preserves_semantics;
            prop_widen_spill_compose;
            prop_sim_matches_reference;
            prop_rotating_sim_matches_reference;
            prop_perturbed_schedules_sound;
          ] );
    ]
