(* Tests for wr_sched: MII bounds, the modulo reservation table, and
   the iterative modulo scheduler (including schedule-legality
   properties over random loops and configurations). *)

module Ddg = Wr_ir.Ddg
module Loop = Wr_ir.Loop
module Opcode = Wr_ir.Opcode
module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Resource = Wr_machine.Resource
module Mii = Wr_sched.Mii
module Mrt = Wr_sched.Mrt
module Modulo = Wr_sched.Modulo
module Schedule = Wr_sched.Schedule
module K = Wr_workload.Kernels

let cm = Cycle_model.Cycles_4

let resource_1w1 = Resource.of_config (Config.xwy ~x:1 ~y:1 ())

(* --- MII ----------------------------------------------------------------- *)

let test_res_mii_daxpy () =
  let loop = K.daxpy () in
  (* 3 memory ops on 1 bus. *)
  Alcotest.(check int) "1w1 bus bound" 3 (Mii.res_mii resource_1w1 ~cycle_model:cm loop.Loop.ddg);
  let r4 = Resource.of_config (Config.xwy ~x:4 ~y:1 ()) in
  Alcotest.(check int) "4w1" 1 (Mii.res_mii r4 ~cycle_model:cm loop.Loop.ddg)

let test_res_mii_divide_occupancy () =
  let loop = K.pointwise_divide () in
  (* One unpipelined divide occupies an FPU for 19 cycles; 2 FPUs. *)
  let expected = (19 + 1) / 2 in
  Alcotest.(check int) "div occupancy" expected
    (Mii.res_mii resource_1w1 ~cycle_model:cm loop.Loop.ddg)

let test_rec_mii_acyclic () =
  let loop = K.daxpy () in
  Alcotest.(check int) "acyclic rec_mii" 1 (Mii.rec_mii ~cycle_model:cm loop.Loop.ddg);
  Alcotest.(check (float 1e-9)) "acyclic rate" 0.0 (Mii.rec_rate ~cycle_model:cm loop.Loop.ddg)

let test_rec_mii_accumulator () =
  let loop = K.dot_product () in
  (* s += p through a latency-4 fadd at distance 1. *)
  Alcotest.(check int) "rec_mii 4" 4 (Mii.rec_mii ~cycle_model:cm loop.Loop.ddg);
  Alcotest.(check (float 1e-6)) "rate 4" 4.0 (Mii.rec_rate ~cycle_model:cm loop.Loop.ddg)

let test_rec_mii_divide_recurrence () =
  let loop = K.prefix_max_ratio () in
  (* m(i) = m(i-1)/y(i): a 19-cycle divide on the cycle. *)
  Alcotest.(check int) "rec_mii 19" 19 (Mii.rec_mii ~cycle_model:cm loop.Loop.ddg)

let test_rec_mii_under_faster_model () =
  let loop = K.prefix_max_ratio () in
  Alcotest.(check int) "2-cycles model div=10" 10
    (Mii.rec_mii ~cycle_model:Cycle_model.Cycles_2 loop.Loop.ddg)

let test_rec_mii_distance_2 () =
  let b = Wr_ir.Builder.create () in
  let x = Wr_ir.Builder.load b ~array_id:0 () in
  let _s = Wr_ir.Builder.feedback b ~distance:2 ~f:(fun prev -> Wr_ir.Builder.fadd b prev x) in
  let loop = Wr_ir.Builder.finish b ~trip_count:10 () in
  (* latency 4 over distance 2. *)
  Alcotest.(check int) "ceil(4/2)" 2 (Mii.rec_mii ~cycle_model:cm loop.Loop.ddg);
  Alcotest.(check (float 1e-6)) "rate 2" 2.0 (Mii.rec_rate ~cycle_model:cm loop.Loop.ddg)

(* --- MRT ----------------------------------------------------------------- *)

let test_mrt_basic () =
  let mrt = Mrt.create ~ii:4 resource_1w1 in
  Alcotest.(check bool) "empty accepts" true (Mrt.can_place mrt Opcode.Bus ~time:2 ~occupancy:1);
  Mrt.place mrt Opcode.Bus ~time:2 ~occupancy:1;
  Alcotest.(check bool) "slot full" false (Mrt.can_place mrt Opcode.Bus ~time:6 ~occupancy:1);
  Alcotest.(check bool) "other slot free" true (Mrt.can_place mrt Opcode.Bus ~time:3 ~occupancy:1);
  Mrt.remove mrt Opcode.Bus ~time:2 ~occupancy:1;
  Alcotest.(check bool) "freed" true (Mrt.can_place mrt Opcode.Bus ~time:6 ~occupancy:1)

let test_mrt_occupancy_wrap () =
  (* occupancy 19 at II 8 covers every slot at least twice, some thrice. *)
  let r2 = Resource.of_config (Config.xwy ~x:1 ~y:1 ()) in
  (* 2 FPUs *)
  let mrt = Mrt.create ~ii:8 r2 in
  Alcotest.(check bool) "19-cycle divide needs 3 high slots" false
    (Mrt.can_place mrt Opcode.Fpu ~time:0 ~occupancy:19);
  Alcotest.(check bool) "16 cycles exactly fills both units" true
    (Mrt.can_place mrt Opcode.Fpu ~time:0 ~occupancy:16)

let test_mrt_negative_time () =
  let mrt = Mrt.create ~ii:5 resource_1w1 in
  Mrt.place mrt Opcode.Bus ~time:(-3) ~occupancy:1;
  Alcotest.(check int) "wraps to slot 2" 1 (Mrt.usage mrt Opcode.Bus ~slot:2)

let test_mrt_over_subscription_raises () =
  let mrt = Mrt.create ~ii:2 resource_1w1 in
  Mrt.place mrt Opcode.Bus ~time:0 ~occupancy:1;
  Alcotest.(check bool) "raises" true
    (try
       Mrt.place mrt Opcode.Bus ~time:2 ~occupancy:1;
       false
     with Invalid_argument _ -> true)

let test_mrt_reset_reuses_table () =
  let mrt = Mrt.create ~ii:4 resource_1w1 in
  Mrt.place mrt Opcode.Bus ~time:1 ~occupancy:1;
  Mrt.reset mrt ~ii:6;
  Alcotest.(check int) "new ii" 6 (Mrt.ii mrt);
  for s = 0 to 5 do
    Alcotest.(check int) (Printf.sprintf "slot %d clean" s) 0 (Mrt.usage mrt Opcode.Bus ~slot:s)
  done;
  (* Shrinking re-arms the same arrays; stale counts beyond the old II
     must not leak back in. *)
  Mrt.place mrt Opcode.Bus ~time:5 ~occupancy:1;
  Mrt.reset mrt ~ii:3;
  for s = 0 to 2 do
    Alcotest.(check int) (Printf.sprintf "shrunk slot %d clean" s) 0
      (Mrt.usage mrt Opcode.Bus ~slot:s)
  done

(* --- flat edge view vs the list representation --------------------------- *)

(* The scheduler's hot kernels run over [Ddg.edge_view]'s CSR arrays;
   these tests pin them to the [Ddg.edges] list they were compiled
   from, on the handwritten kernels and on generated loops. *)

let cross_check_loops () =
  List.map snd (K.all ())
  @ List.init 25 (fun seed ->
        let rng = Wr_util.Rng.create ~seed:(Int64.of_int (seed + 4321)) in
        Wr_workload.Generator.generate_one rng Wr_workload.Generator.default ~index:seed)

let edge_delay g (e : Wr_ir.Dependence.t) =
  Wr_ir.Dependence.delay_rule e.Wr_ir.Dependence.kind
    ~producer_latency:
      (Cycle_model.latency_of_op cm
         (Ddg.op g e.Wr_ir.Dependence.src).Wr_ir.Operation.opcode)

let test_edge_view_matches_edge_list () =
  List.iter
    (fun (loop : Loop.t) ->
      let g = loop.Loop.ddg in
      let v = Ddg.edge_view g in
      let edges = Ddg.edges g in
      Alcotest.(check int) "edge count" (List.length edges) v.Ddg.n_edges;
      let delays = Mii.edge_delays ~cycle_model:cm g in
      List.iteri
        (fun i (e : Wr_ir.Dependence.t) ->
          Alcotest.(check int) "src" e.Wr_ir.Dependence.src v.Ddg.e_src.(i);
          Alcotest.(check int) "dst" e.Wr_ir.Dependence.dst v.Ddg.e_dst.(i);
          Alcotest.(check int) "distance" e.Wr_ir.Dependence.distance v.Ddg.e_dist.(i);
          Alcotest.(check int) "delay" (edge_delay g e) delays.(i))
        edges)
    (cross_check_loops ())

(* Reference heights: fixpoint iteration straight off the edge list. *)
let reference_heights g ~ii =
  let h = Array.make (Ddg.num_ops g) 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (e : Wr_ir.Dependence.t) ->
        let v =
          edge_delay g e - (ii * e.Wr_ir.Dependence.distance) + h.(e.Wr_ir.Dependence.dst)
        in
        if v > h.(e.Wr_ir.Dependence.src) then begin
          h.(e.Wr_ir.Dependence.src) <- v;
          changed := true
        end)
      (Ddg.edges g)
  done;
  h

let test_heights_match_reference () =
  List.iter
    (fun (loop : Loop.t) ->
      let g = loop.Loop.ddg in
      let rec_mii = Mii.rec_mii ~cycle_model:cm g in
      List.iter
        (fun ii ->
          Alcotest.(check (array int))
            (Printf.sprintf "heights at ii=%d" ii)
            (reference_heights g ~ii)
            (Modulo.heights ~cycle_model:cm g ~ii))
        [ rec_mii; rec_mii + 1; rec_mii + 3 ])
    (cross_check_loops ())

(* Reference RecMII: linear scan over candidate IIs, positive-cycle
   detection by Bellman-Ford on the edge list. *)
let reference_rec_mii g =
  let n = Ddg.num_ops g in
  let feasible ii =
    let dist = Array.make n 0 in
    let changed = ref true and pass = ref 0 in
    while !changed && !pass <= n do
      changed := false;
      incr pass;
      List.iter
        (fun (e : Wr_ir.Dependence.t) ->
          let v =
            dist.(e.Wr_ir.Dependence.src)
            + edge_delay g e
            - (ii * e.Wr_ir.Dependence.distance)
          in
          if v > dist.(e.Wr_ir.Dependence.dst) then begin
            dist.(e.Wr_ir.Dependence.dst) <- v;
            changed := true
          end)
        (Ddg.edges g)
    done;
    not !changed
  in
  let rec scan ii = if feasible ii then ii else scan (ii + 1) in
  scan 1

let test_rec_mii_matches_reference () =
  List.iter
    (fun (loop : Loop.t) ->
      let g = loop.Loop.ddg in
      Alcotest.(check int) "rec_mii" (reference_rec_mii g) (Mii.rec_mii ~cycle_model:cm g))
    (cross_check_loops ())

(* --- scheduling on kernels ------------------------------------------------ *)

let schedule_kernel loop config =
  let r = Resource.of_config config in
  Modulo.run r ~cycle_model:cm loop.Loop.ddg

let test_schedule_daxpy_1w1 () =
  let result = schedule_kernel (K.daxpy ()) (Config.xwy ~x:1 ~y:1 ()) in
  Alcotest.(check int) "II = MII = 3" 3 result.Modulo.schedule.Schedule.ii

let test_schedule_reaches_mii_on_kernels () =
  (* On these small kernels the scheduler should always achieve the
     MII. *)
  List.iter
    (fun (name, loop) ->
      let result = schedule_kernel loop (Config.xwy ~x:2 ~y:1 ()) in
      Alcotest.(check int) (name ^ " ii=mii") result.Modulo.mii
        result.Modulo.schedule.Schedule.ii)
    (K.all ())

let test_schedule_empty_graph () =
  let g = Ddg.create ~num_vregs:0 ~ops:[||] ~edges:[] in
  let result = Modulo.run resource_1w1 ~cycle_model:cm g in
  Alcotest.(check int) "empty II" 1 result.Modulo.schedule.Schedule.ii

let test_schedule_min_ii () =
  let loop = K.daxpy () in
  let result = Modulo.run resource_1w1 ~cycle_model:cm ~min_ii:10 loop.Loop.ddg in
  Alcotest.(check int) "forced II" 10 result.Modulo.schedule.Schedule.ii;
  Alcotest.(check bool) "still valid" true
    (Result.is_ok (Schedule.validate loop.Loop.ddg resource_1w1 result.Modulo.schedule))

let test_schedule_stage_count () =
  let loop = K.horner () in
  let result = schedule_kernel loop (Config.xwy ~x:4 ~y:1 ()) in
  (* Horner has a long dependent chain: the pipeline must be deep. *)
  Alcotest.(check bool) "multiple stages" true
    (Schedule.stage_count result.Modulo.schedule > 2)

let test_validate_catches_bad_schedule () =
  let loop = K.daxpy () in
  let result = schedule_kernel loop (Config.xwy ~x:1 ~y:1 ()) in
  let times = Array.copy result.Modulo.schedule.Schedule.times in
  (* Clobber: put everything at cycle 0 — resources and deps break. *)
  Array.fill times 0 (Array.length times) 0;
  let bad = Schedule.make ~ii:result.Modulo.schedule.Schedule.ii ~times ~cycle_model:cm in
  Alcotest.(check bool) "invalid detected" true
    (Result.is_error (Schedule.validate loop.Loop.ddg resource_1w1 bad))

(* --- SMS ordering ----------------------------------------------------------- *)

let test_sms_order_is_permutation () =
  List.iter
    (fun (_, loop) ->
      let g = loop.Loop.ddg in
      let ii = Mii.rec_mii ~cycle_model:cm g in
      let order = Wr_sched.Sms_order.compute ~cycle_model:cm g ~ii in
      let sorted = Array.copy order in
      Array.sort compare sorted;
      Alcotest.(check (array int)) "permutation" (Array.init (Ddg.num_ops g) (fun i -> i)) sorted)
    (K.all ())

let test_sms_schedules_kernels () =
  List.iter
    (fun (name, loop) ->
      let result =
        Modulo.run resource_1w1 ~cycle_model:cm ~ordering:`Sms loop.Loop.ddg
      in
      Alcotest.(check bool) (name ^ " valid") true
        (Result.is_ok (Schedule.validate loop.Loop.ddg resource_1w1 result.Modulo.schedule)))
    (K.all ())

let test_sms_register_friendly () =
  (* The published SMS claim on our workload: at equal II it needs no
     more registers than the height ordering, usually fewer. *)
  let loops = Wr_workload.Suite.sample 40 in
  let resource = Resource.of_config (Config.xwy ~x:2 ~y:1 ()) in
  let total ordering =
    Array.fold_left
      (fun acc (l : Loop.t) ->
        let r = Modulo.run resource ~cycle_model:cm ~ordering l.Loop.ddg in
        let lts = Wr_regalloc.Lifetime.of_schedule l.Loop.ddg r.Modulo.schedule in
        acc + (Wr_regalloc.Alloc.allocate ~ii:r.Modulo.schedule.Schedule.ii lts).Wr_regalloc.Alloc.required)
      0 loops
  in
  let ims = total `Ims and sms = total `Sms in
  Alcotest.(check bool) (Printf.sprintf "sms %d <= ims %d" sms ims) true (sms <= ims)

(* --- exhaustive search cross-check ------------------------------------------ *)

module Search = Wr_sched.Search

let test_search_kernels_at_mii () =
  (* The backtracking search confirms the kernels are schedulable at
     the MII — so when the heuristic reports II = MII it is optimal. *)
  List.iter
    (fun (name, loop) ->
      let g = loop.Loop.ddg in
      let mii = Mii.mii resource_1w1 ~cycle_model:cm g in
      match Search.at_ii resource_1w1 ~cycle_model:cm ~ii:mii g with
      | Search.Feasible _ -> ()
      | Search.Infeasible -> Alcotest.fail (name ^ ": MII infeasible?")
      | Search.Gave_up -> Alcotest.fail (name ^ ": search budget too small"))
    (K.all ())

let test_search_agrees_with_heuristic () =
  (* On small random loops the heuristic must achieve the same minimal
     II the exhaustive search finds. *)
  let checked = ref 0 in
  for seed = 0 to 120 do
    let rng = Wr_util.Rng.create ~seed:(Int64.of_int (seed + 777)) in
    let loop = Wr_workload.Generator.generate_one rng Wr_workload.Generator.default ~index:seed in
    if Ddg.num_ops loop.Loop.ddg <= 14 then begin
      incr checked;
      let g = loop.Loop.ddg in
      match Search.min_ii resource_1w1 ~cycle_model:cm g with
      | None -> ()
      | Some (best_ii, _) ->
          let r = Modulo.run resource_1w1 ~cycle_model:cm g in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: heuristic %d vs optimal %d" seed
               r.Modulo.schedule.Schedule.ii best_ii)
            true
            (r.Modulo.schedule.Schedule.ii <= best_ii + 1)
    end
  done;
  Alcotest.(check bool) "enough samples" true (!checked > 20)

let test_search_detects_infeasible () =
  (* daxpy needs 3 bus slots per iteration: II=2 on one bus is
     impossible, and the search must prove it. *)
  let loop = K.daxpy () in
  match Search.at_ii resource_1w1 ~cycle_model:cm ~ii:2 loop.Loop.ddg with
  | Search.Infeasible -> ()
  | Search.Feasible _ -> Alcotest.fail "II=2 cannot fit 3 memory ops on one bus"
  | Search.Gave_up -> Alcotest.fail "budget too small for a 5-op loop"

(* --- exact backend -------------------------------------------------------- *)

module Exact = Wr_sched.Exact
module Backend = Wr_sched.Backend

let test_exact_refines_kernels () =
  (* The refinement invariants on every kernel: MII <= exact II <=
     heuristic II, and the schedule passes both the internal validator
     and the independent oracle. *)
  List.iter
    (fun (name, loop) ->
      let g = loop.Loop.ddg in
      let r = Exact.solve resource_1w1 ~cycle_model:cm g in
      let mii = Mii.mii resource_1w1 ~cycle_model:cm g in
      Alcotest.(check bool)
        (Printf.sprintf "%s: II %d >= MII %d" name r.Exact.ii mii)
        true (r.Exact.ii >= mii);
      Alcotest.(check bool)
        (Printf.sprintf "%s: II %d <= heuristic %d" name r.Exact.ii
           r.Exact.base.Modulo.schedule.Schedule.ii)
        true
        (r.Exact.ii <= r.Exact.base.Modulo.schedule.Schedule.ii);
      (match Schedule.validate g resource_1w1 r.Exact.schedule with
      | Ok () -> ()
      | Error m -> Alcotest.fail (name ^ ": exact schedule invalid: " ^ m));
      match Wr_check.Oracle.check_schedule g resource_1w1 r.Exact.schedule with
      | [] -> ()
      | vs -> Alcotest.fail (name ^ ": " ^ Wr_check.Oracle.to_string vs))
    (K.all ())

let test_exact_proves_kernels_optimal () =
  (* Every handwritten kernel is schedulable at its MII on 1w1, so the
     exact backend must prove the heuristic's result optimal. *)
  List.iter
    (fun (name, loop) ->
      let r = Exact.solve resource_1w1 ~cycle_model:cm loop.Loop.ddg in
      match r.Exact.status with
      | Exact.Proved_optimal -> ()
      | Exact.Feasible_unproved -> Alcotest.fail (name ^ ": optimality left unproved")
      | Exact.Fallback -> Alcotest.fail (name ^ ": search gave up on a small kernel"))
    (K.all ())

let test_exact_budget_expired_falls_back () =
  (* A zero wall budget expires before the first II attempt: the exact
     backend must return the heuristic schedule unchanged (Fallback),
     and do so deterministically under different pool sizes — the
     stop-closure is checked in the solver itself, never in pool
     workers. *)
  let loop = K.banded_matvec () in
  let g = loop.Loop.ddg in
  (* Slow the base down so the refinement window [mii, heur_ii - 1] is
     non-empty — a base already at the MII is proved optimal without
     any search, budget or not. *)
  let mii = Mii.mii resource_1w1 ~cycle_model:cm g in
  let heur = Modulo.run resource_1w1 ~cycle_model:cm ~min_ii:(mii + 2) g in
  let solve_under ~jobs =
    let pool = Wr_util.Pool.create ~jobs () in
    let results =
      Wr_util.Pool.parallel_list_map ~pool [ 0; 1; 2 ] ~f:(fun _ ->
          Exact.solve resource_1w1 ~cycle_model:cm ~budget_ms:0 ~base:heur g)
    in
    Wr_util.Pool.shutdown pool;
    results
  in
  let all = solve_under ~jobs:1 @ solve_under ~jobs:4 in
  List.iter
    (fun (r : Exact.t) ->
      Alcotest.(check bool) "fallback status" true (r.Exact.status = Exact.Fallback);
      Alcotest.(check int) "heuristic II preserved" heur.Modulo.schedule.Schedule.ii
        r.Exact.ii;
      Alcotest.(check bool) "heuristic times preserved" true
        (r.Exact.schedule.Schedule.times = heur.Modulo.schedule.Schedule.times))
    all

let test_exact_improves_forced_suboptimal () =
  (* Feed the exact backend a deliberately slowed heuristic result
     (min_ii forces II = MII + 3): the search must recover the optimum
     and report a positive gap closed, never a regression. *)
  let loop = K.daxpy () in
  let g = loop.Loop.ddg in
  let mii = Mii.mii resource_1w1 ~cycle_model:cm g in
  let slow = Modulo.run resource_1w1 ~cycle_model:cm ~min_ii:(mii + 3) g in
  let r = Exact.solve resource_1w1 ~cycle_model:cm ~base:slow g in
  Alcotest.(check int) "recovers the MII" mii r.Exact.ii;
  Alcotest.(check bool) "proved" true (r.Exact.status = Exact.Proved_optimal)

let test_backend_of_string () =
  Alcotest.(check bool) "exact" true (Backend.of_string "exact" = Some Backend.Exact);
  Alcotest.(check bool) "bnb alias" true (Backend.of_string "BnB" = Some Backend.Exact);
  Alcotest.(check bool) "hrms alias" true (Backend.of_string "hrms" = Some Backend.Heuristic);
  Alcotest.(check bool) "race alias" true (Backend.of_string "race" = Some Backend.Portfolio);
  Alcotest.(check bool) "junk rejected" true (Backend.of_string "simulated-annealing" = None)

let test_backend_run_matches_modulo () =
  (* The heuristic backend is the byte-identical default; the exact and
     portfolio backends must never be slower than it. *)
  let saved = Backend.current () in
  Fun.protect
    ~finally:(fun () -> Backend.set saved)
    (fun () ->
      List.iter
        (fun (name, loop) ->
          let g = loop.Loop.ddg in
          let reference = Modulo.run resource_1w1 ~cycle_model:cm g in
          Backend.set Backend.Heuristic;
          let h = Backend.run resource_1w1 ~cycle_model:cm g in
          Alcotest.(check bool)
            (name ^ ": heuristic backend is Modulo.run")
            true
            (h.Modulo.schedule.Schedule.times = reference.Modulo.schedule.Schedule.times
            && h.Modulo.schedule.Schedule.ii = reference.Modulo.schedule.Schedule.ii);
          Backend.set Backend.Exact;
          let e = Backend.run resource_1w1 ~cycle_model:cm g in
          Alcotest.(check bool)
            (name ^ ": exact backend no slower")
            true
            (e.Modulo.schedule.Schedule.ii <= reference.Modulo.schedule.Schedule.ii);
          Backend.set Backend.Portfolio;
          let p = Backend.run resource_1w1 ~cycle_model:cm g in
          Alcotest.(check bool)
            (name ^ ": portfolio no slower")
            true
            (p.Modulo.schedule.Schedule.ii <= reference.Modulo.schedule.Schedule.ii))
        (K.all ()))

(* --- drain/fill and diagnostic regressions -------------------------------- *)

let test_schedule_cycles_short_trips () =
  (* Regression: cycles once returned ii * trip_count, which undercounts
     the pipeline drain for real trip counts and overcounts trip 0. *)
  let loop = K.daxpy () in
  let r = Modulo.run resource_1w1 ~cycle_model:cm loop.Loop.ddg in
  let s = r.Modulo.schedule in
  Alcotest.(check int) "trip 0 costs nothing" 0 (Schedule.cycles s ~trip_count:0);
  Alcotest.(check int) "trip 1 is the full span" (Schedule.span s)
    (Schedule.cycles s ~trip_count:1);
  Alcotest.(check int) "trip 5 adds 4 IIs"
    ((4 * s.Schedule.ii) + Schedule.span s)
    (Schedule.cycles s ~trip_count:5);
  Alcotest.(check bool) "negative trip rejected" true
    (try
       ignore (Schedule.cycles s ~trip_count:(-1));
       false
     with Invalid_argument _ -> true)

let test_mrt_remove_underflow_diagnoses () =
  (* Regression: removing a reservation that was never placed silently
     drove the usage count negative; it must now name the offender. *)
  let mrt = Mrt.create ~ii:4 resource_1w1 in
  Mrt.place mrt Opcode.Bus ~time:1 ~occupancy:1;
  Alcotest.(check bool) "phantom removal diagnosed" true
    (try
       Mrt.remove mrt Opcode.Bus ~time:2 ~occupancy:1;
       false
     with Invalid_argument msg ->
       (* The diagnostic must identify the class and the slot. *)
       let has sub =
         let n = String.length sub and m = String.length msg in
         let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
         go 0
       in
       has "Mrt.remove" && has "slot");
  (* The placed reservation must still be removable afterwards. *)
  Mrt.remove mrt Opcode.Bus ~time:1 ~occupancy:1;
  Alcotest.(check int) "table drained" 0 (Mrt.usage mrt Opcode.Bus ~slot:1)

(* --- property: every schedule is legal ------------------------------------ *)

let random_loop seed =
  let rng = Wr_util.Rng.create ~seed:(Int64.of_int (seed + 1234)) in
  Wr_workload.Generator.generate_one rng Wr_workload.Generator.default ~index:seed

let gen_case =
  QCheck.make
    ~print:(fun (seed, xi, yi, cmi) ->
      Printf.sprintf "(seed=%d, x=%d, y=%d, cm=%d)" seed xi yi cmi)
    QCheck.Gen.(quad (int_bound 3000) (int_bound 3) (int_bound 3) (int_bound 3))

let configs = [| (1, 1); (2, 1); (4, 1); (8, 1) |]

let prop_sms_schedules_are_legal =
  QCheck.Test.make ~name:"SMS schedules satisfy deps and resources" ~count:50 gen_case
    (fun (seed, xi, _, _) ->
      let x, _ = configs.(xi) in
      let loop = random_loop seed in
      let resource = Resource.of_config (Config.xwy ~x ~y:1 ()) in
      let result = Modulo.run resource ~cycle_model:cm ~ordering:`Sms loop.Loop.ddg in
      Result.is_ok (Schedule.validate loop.Loop.ddg resource result.Modulo.schedule))

let prop_schedules_are_legal =
  QCheck.Test.make ~name:"modulo schedules satisfy deps and resources" ~count:80 gen_case
    (fun (seed, xi, yi, cmi) ->
      let x, _ = configs.(xi) in
      let y = 1 lsl yi in
      let cycle_model =
        match cmi with 0 -> Cycle_model.Cycles_1 | 1 -> Cycle_model.Cycles_2 | 2 -> Cycle_model.Cycles_3 | _ -> Cycle_model.Cycles_4
      in
      let loop = random_loop seed in
      let wide, _ = Wr_widen.Transform.widen loop ~width:y in
      let resource = Resource.of_config (Config.xwy ~x ~y ()) in
      let result = Modulo.run resource ~cycle_model wide.Loop.ddg in
      match Schedule.validate wide.Loop.ddg resource result.Modulo.schedule with
      | Ok () -> true
      | Error _ -> false)

let prop_ii_at_least_mii =
  QCheck.Test.make ~name:"achieved II >= MII" ~count:80 gen_case (fun (seed, xi, _, _) ->
      let x, _ = configs.(xi) in
      let loop = random_loop seed in
      let resource = Resource.of_config (Config.xwy ~x ~y:1 ()) in
      let result = Modulo.run resource ~cycle_model:cm loop.Loop.ddg in
      result.Modulo.schedule.Schedule.ii >= result.Modulo.mii)

let prop_ii_close_to_mii =
  QCheck.Test.make ~name:"achieved II within 2x MII (quality)" ~count:60 gen_case
    (fun (seed, xi, _, _) ->
      let x, _ = configs.(xi) in
      let loop = random_loop seed in
      let resource = Resource.of_config (Config.xwy ~x ~y:1 ()) in
      let result = Modulo.run resource ~cycle_model:cm loop.Loop.ddg in
      result.Modulo.schedule.Schedule.ii <= (2 * result.Modulo.mii) + 2)

let prop_rec_mii_independent_of_resources =
  QCheck.Test.make ~name:"rec_mii does not depend on the machine" ~count:40
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 3000))
    (fun seed ->
      let loop = random_loop seed in
      let a = Mii.rec_mii ~cycle_model:cm loop.Loop.ddg in
      let b = Mii.rec_mii ~cycle_model:cm loop.Loop.ddg in
      a = b && a >= 1)

let prop_rec_rate_bounds_rec_mii =
  QCheck.Test.make ~name:"ceil(rec_rate) = rec_mii" ~count:60
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 3000))
    (fun seed ->
      let loop = random_loop seed in
      let rate = Mii.rec_rate ~cycle_model:cm loop.Loop.ddg in
      let mii = Mii.rec_mii ~cycle_model:cm loop.Loop.ddg in
      if rate = 0.0 then mii = 1
      else
        (* The integer bound is the rounded-up rate (within binary
           search tolerance). *)
        Float.abs (ceil (rate -. 1e-6) -. float_of_int mii) <= 1.0)

let () =
  Alcotest.run "wr_sched"
    [
      ( "mii",
        [
          Alcotest.test_case "res_mii daxpy" `Quick test_res_mii_daxpy;
          Alcotest.test_case "divide occupancy" `Quick test_res_mii_divide_occupancy;
          Alcotest.test_case "acyclic" `Quick test_rec_mii_acyclic;
          Alcotest.test_case "accumulator" `Quick test_rec_mii_accumulator;
          Alcotest.test_case "divide recurrence" `Quick test_rec_mii_divide_recurrence;
          Alcotest.test_case "faster model" `Quick test_rec_mii_under_faster_model;
          Alcotest.test_case "distance 2" `Quick test_rec_mii_distance_2;
        ] );
      ( "mrt",
        [
          Alcotest.test_case "basic" `Quick test_mrt_basic;
          Alcotest.test_case "occupancy wrap" `Quick test_mrt_occupancy_wrap;
          Alcotest.test_case "negative time" `Quick test_mrt_negative_time;
          Alcotest.test_case "over-subscription" `Quick test_mrt_over_subscription_raises;
          Alcotest.test_case "reset reuses table" `Quick test_mrt_reset_reuses_table;
        ] );
      ( "edge_view",
        [
          Alcotest.test_case "matches edge list" `Quick test_edge_view_matches_edge_list;
          Alcotest.test_case "heights vs reference" `Quick test_heights_match_reference;
          Alcotest.test_case "rec_mii vs reference" `Quick test_rec_mii_matches_reference;
        ] );
      ( "modulo",
        [
          Alcotest.test_case "daxpy 1w1" `Quick test_schedule_daxpy_1w1;
          Alcotest.test_case "kernels reach MII" `Quick test_schedule_reaches_mii_on_kernels;
          Alcotest.test_case "empty graph" `Quick test_schedule_empty_graph;
          Alcotest.test_case "min_ii" `Quick test_schedule_min_ii;
          Alcotest.test_case "stage count" `Quick test_schedule_stage_count;
          Alcotest.test_case "validate detects bad" `Quick test_validate_catches_bad_schedule;
        ] );
      ( "search",
        [
          Alcotest.test_case "kernels at MII" `Quick test_search_kernels_at_mii;
          Alcotest.test_case "agrees with heuristic" `Slow test_search_agrees_with_heuristic;
          Alcotest.test_case "detects infeasible" `Quick test_search_detects_infeasible;
        ] );
      ( "exact",
        [
          Alcotest.test_case "refinement invariants" `Quick test_exact_refines_kernels;
          Alcotest.test_case "proves kernels optimal" `Quick test_exact_proves_kernels_optimal;
          Alcotest.test_case "budget-expired fallback" `Quick test_exact_budget_expired_falls_back;
          Alcotest.test_case "improves forced suboptimal" `Quick
            test_exact_improves_forced_suboptimal;
          Alcotest.test_case "backend of_string" `Quick test_backend_of_string;
          Alcotest.test_case "backend run vs modulo" `Quick test_backend_run_matches_modulo;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "cycles short trips" `Quick test_schedule_cycles_short_trips;
          Alcotest.test_case "mrt remove underflow" `Quick test_mrt_remove_underflow_diagnoses;
        ] );
      ( "sms",
        [
          Alcotest.test_case "permutation" `Quick test_sms_order_is_permutation;
          Alcotest.test_case "schedules kernels" `Quick test_sms_schedules_kernels;
          Alcotest.test_case "register friendly" `Quick test_sms_register_friendly;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_schedules_are_legal;
            prop_ii_at_least_mii;
            prop_ii_close_to_mii;
            prop_sms_schedules_are_legal;
            prop_rec_mii_independent_of_resources;
            prop_rec_rate_bounds_rec_mii;
          ] );
    ]
