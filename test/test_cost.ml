(* Tests for wr_cost: SIA data, register-cell geometry (exact Table 2),
   area (exact Table 3), access time (Table 4 within fitted tolerance),
   partitioning, implementability and code size. *)

module Config = Wr_machine.Config
module Sia = Wr_cost.Sia
module Register_cell = Wr_cost.Register_cell
module Area = Wr_cost.Area
module Access_time = Wr_cost.Access_time
module Code_size = Wr_cost.Code_size

let test_sia_table1 () =
  Alcotest.(check int) "five generations" 5 (List.length Sia.generations);
  (match Sia.by_year 1998 with
  | Some g ->
      Alcotest.(check (float 1e-9)) "lambda" 0.25 g.Sia.lambda_um;
      Alcotest.(check (float 1.0)) "capacity" 4800.0e6 g.Sia.lambda2_per_chip
  | None -> Alcotest.fail "1998 missing");
  (match Sia.by_lambda 0.07 with
  | Some g -> Alcotest.(check int) "2010" 2010 g.Sia.year
  | None -> Alcotest.fail "0.07 missing");
  Alcotest.(check bool) "unknown year" true (Sia.by_year 1999 = None)

let test_register_cell_exact_table2 () =
  (* The model must reproduce every published cell exactly. *)
  List.iter
    (fun ((r, w), (pw, ph)) ->
      let d = Register_cell.dimensions ~reads:r ~writes:w in
      Alcotest.(check (float 0.51))
        (Printf.sprintf "width %dR%dW" r w)
        (float_of_int pw) d.Register_cell.width;
      Alcotest.(check (float 0.51))
        (Printf.sprintf "height %dR%dW" r w)
        (float_of_int ph) d.Register_cell.height)
    Register_cell.paper_table

let test_register_cell_monotone () =
  (* More ports never shrink the cell. *)
  let area r w = Register_cell.area ~reads:r ~writes:w in
  let prev = ref 0.0 in
  List.iter
    (fun (r, w) ->
      let a = area r w in
      Alcotest.(check bool) "monotone" true (a >= !prev);
      prev := a)
    [ (1, 1); (2, 1); (5, 3); (10, 6); (20, 12); (40, 24); (80, 48) ]

let test_register_cell_rejects () =
  Alcotest.(check bool) "rejects zero ports" true
    (try
       ignore (Register_cell.dimensions ~reads:0 ~writes:1);
       false
     with Invalid_argument _ -> true)

let test_area_table3 () =
  (* Table 3: total RF area for 64 registers. *)
  let check x y expected_millions =
    let c = Config.xwy ~registers:64 ~x ~y () in
    let area = Area.rf_area c /. 1e6 in
    Alcotest.(check bool)
      (Printf.sprintf "%dw%d area %.0f ~ %.0f" x y area expected_millions)
      true
      (Float.abs (area -. expected_millions) /. expected_millions < 0.01)
  in
  check 4 1 598.0;
  check 2 2 375.0;
  check 1 4 215.0

let test_area_fpu () =
  let c = Config.xwy ~x:1 ~y:1 () in
  (* 2 scalar FPUs at 192e6 each. *)
  Alcotest.(check (float 1.0)) "fpu area" 384.0e6 (Area.fpu_area c);
  let w4 = Config.xwy ~x:1 ~y:4 () in
  Alcotest.(check (float 1.0)) "width scales fpus" (4.0 *. 384.0e6) (Area.fpu_area w4)

let test_area_same_fpu_cost_at_equal_factor () =
  (* Paper, Table 3 note: 4w1, 2w2 and 1w4 need the same FPU hardware. *)
  let a = Area.fpu_area (Config.xwy ~x:4 ~y:1 ()) in
  let b = Area.fpu_area (Config.xwy ~x:2 ~y:2 ()) in
  let c = Area.fpu_area (Config.xwy ~x:1 ~y:4 ()) in
  Alcotest.(check (float 1.0)) "4w1=2w2" a b;
  Alcotest.(check (float 1.0)) "2w2=1w4" b c

let test_area_replication_costs_more_than_widening () =
  (* At equal factor and register count, the RF of the replicated
     machine is the most expensive (more ports per cell). *)
  let rf x y = Area.rf_area (Config.xwy ~registers:64 ~x ~y ()) in
  Alcotest.(check bool) "4w1 > 2w2" true (rf 4 1 > rf 2 2);
  Alcotest.(check bool) "2w2 > 1w4" true (rf 2 2 > rf 1 4)

let test_access_time_table4_tolerance () =
  (* The fitted model reproduces the 60 published entries within 10%
     each and 5% rms. *)
  let pairs = Core.Cost_tables.table4_pairs () in
  Alcotest.(check int) "60 entries" 60 (List.length pairs);
  let sq_sum = ref 0.0 in
  List.iter
    (fun ((x, y, z), model, paper) ->
      let rel = Float.abs (model -. paper) /. paper in
      sq_sum := !sq_sum +. (rel *. rel);
      Alcotest.(check bool)
        (Printf.sprintf "%dw%d/%d: %.2f vs %.2f" x y z model paper)
        true (rel < 0.10))
    pairs;
  let rms = sqrt (!sq_sum /. 60.0) in
  Alcotest.(check bool) (Printf.sprintf "rms %.3f < 0.05" rms) true (rms < 0.05)

let test_access_time_baseline_is_one () =
  Alcotest.(check (float 1e-9)) "baseline" 1.0
    (Access_time.relative (Config.xwy ~registers:32 ~x:1 ~y:1 ()))

let test_access_time_monotone_in_registers () =
  List.iter
    (fun (x, y) ->
      let t z = Access_time.relative (Config.xwy ~registers:z ~x ~y ()) in
      Alcotest.(check bool) "32<64" true (t 32 < t 64);
      Alcotest.(check bool) "64<128" true (t 64 < t 128);
      Alcotest.(check bool) "128<256" true (t 128 < t 256))
    [ (1, 1); (4, 2); (1, 8) ]

let test_access_time_partitioning_faster_but_bigger () =
  (* Figure 6: partitioning an 8w1 64-RF trades area for speed. *)
  let at n = Config.xwy ~registers:64 ~partitions:n ~x:8 ~y:1 () in
  let t n = Access_time.raw_time (at n) in
  let a n = Area.rf_area (at n) in
  List.iter
    (fun (n, m) ->
      Alcotest.(check bool) (Printf.sprintf "time %d > %d" n m) true (t n > t m);
      Alcotest.(check bool) (Printf.sprintf "area %d < %d" n m) true (a n < a m))
    [ (1, 2); (2, 4); (4, 8) ];
  (* Magnitudes: 8 partitions roughly double the area and roughly halve
     the access time (paper's Figure 6 shape). *)
  Alcotest.(check bool) "area growth in [1.5, 3.5]" true
    (a 8 /. a 1 > 1.5 && a 8 /. a 1 < 3.5);
  Alcotest.(check bool) "time reduction in [0.4, 0.7]" true
    (t 8 /. t 1 > 0.4 && t 8 /. t 1 < 0.7)

let test_implementable_monotone_in_generation () =
  (* Anything the 1998 process can build, the 2010 process can too. *)
  let g98 = Option.get (Sia.by_year 1998) in
  let g10 = Option.get (Sia.by_year 2010) in
  List.iter
    (fun (x, y, z) ->
      let c = Config.xwy ~registers:z ~x ~y () in
      if Area.implementable c g98 then
        Alcotest.(check bool) "2010 superset" true (Area.implementable c g10))
    [ (1, 1, 32); (2, 1, 64); (1, 2, 256); (4, 2, 128); (8, 1, 64) ]

let test_implementable_1w1_1998 () =
  let g98 = Option.get (Sia.by_year 1998) in
  Alcotest.(check bool) "1w1/32 buildable in 1998" true
    (Area.implementable (Config.xwy ~registers:32 ~x:1 ~y:1 ()) g98);
  Alcotest.(check bool) "16w1/256 not buildable in 1998" false
    (Area.implementable (Config.xwy ~registers:256 ~x:16 ~y:1 ()) g98)

let test_icache_residency () =
  let c = Wr_cost.Icache.make ~size_bytes:4096 () in
  Alcotest.(check bool) "small fits" true (Wr_cost.Icache.resident c ~code_bytes:4096);
  Alcotest.(check bool) "big thrashes" false (Wr_cost.Icache.resident c ~code_bytes:4097)

let test_icache_cold_vs_thrash () =
  let c = Wr_cost.Icache.make ~size_bytes:1024 ~line_bytes:32 ~miss_penalty:10 () in
  (* Resident: cold misses only, independent of pass count. *)
  Alcotest.(check int) "cold misses" (32 * 10)
    (Wr_cost.Icache.fetch_stall_cycles c ~code_bytes:1024 ~kernel_passes:100);
  (* Oversized: every pass refetches every line. *)
  Alcotest.(check int) "streaming thrash" (64 * 100 * 10)
    (Wr_cost.Icache.fetch_stall_cycles c ~code_bytes:2048 ~kernel_passes:100)

let test_icache_validation () =
  Alcotest.(check bool) "line > cache rejected" true
    (try
       ignore (Wr_cost.Icache.make ~size_bytes:16 ~line_bytes:32 ());
       false
     with Invalid_argument _ -> true);
  let c = Wr_cost.Icache.make ~size_bytes:1024 () in
  Alcotest.(check int) "zero code" 0
    (Wr_cost.Icache.fetch_stall_cycles c ~code_bytes:0 ~kernel_passes:5)

let test_code_size_word_lengths () =
  (* Paper, Section 4.3: the word of 4w1 is 2x the word of 2w2 and 4x
     the word of 1w4. *)
  let w x y = Code_size.word_bits (Config.xwy ~x ~y ()) in
  Alcotest.(check int) "4w1 = 2 * 2w2" (w 4 1) (2 * w 2 2);
  Alcotest.(check int) "4w1 = 4 * 1w4" (w 4 1) (4 * w 1 4)

let test_code_size_relative () =
  let c41 = Config.xwy ~x:4 ~y:1 () and c14 = Config.xwy ~x:1 ~y:4 () in
  Alcotest.(check (float 1e-9)) "equal II gives width ratio" 0.25
    (Code_size.relative c14 ~ii:10 ~baseline:c41 ~baseline_ii:10)

let () =
  Alcotest.run "wr_cost"
    [
      ("sia", [ Alcotest.test_case "table 1" `Quick test_sia_table1 ]);
      ( "register_cell",
        [
          Alcotest.test_case "table 2 exact" `Quick test_register_cell_exact_table2;
          Alcotest.test_case "monotone" `Quick test_register_cell_monotone;
          Alcotest.test_case "rejects" `Quick test_register_cell_rejects;
        ] );
      ( "area",
        [
          Alcotest.test_case "table 3" `Quick test_area_table3;
          Alcotest.test_case "fpu" `Quick test_area_fpu;
          Alcotest.test_case "equal factor fpus" `Quick test_area_same_fpu_cost_at_equal_factor;
          Alcotest.test_case "replication dearer" `Quick test_area_replication_costs_more_than_widening;
        ] );
      ( "access_time",
        [
          Alcotest.test_case "table 4 tolerance" `Quick test_access_time_table4_tolerance;
          Alcotest.test_case "baseline" `Quick test_access_time_baseline_is_one;
          Alcotest.test_case "monotone in Z" `Quick test_access_time_monotone_in_registers;
          Alcotest.test_case "partitioning" `Quick test_access_time_partitioning_faster_but_bigger;
        ] );
      ( "implementability",
        [
          Alcotest.test_case "monotone" `Quick test_implementable_monotone_in_generation;
          Alcotest.test_case "1998 anchors" `Quick test_implementable_1w1_1998;
        ] );
      ( "code_size",
        [
          Alcotest.test_case "word lengths" `Quick test_code_size_word_lengths;
          Alcotest.test_case "relative" `Quick test_code_size_relative;
        ] );
      ( "icache",
        [
          Alcotest.test_case "residency" `Quick test_icache_residency;
          Alcotest.test_case "cold vs thrash" `Quick test_icache_cold_vs_thrash;
          Alcotest.test_case "validation" `Quick test_icache_validation;
        ] );
    ]
