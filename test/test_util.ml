(* Tests for wr_util: deterministic RNG, statistics, table rendering. *)

module Rng = Wr_util.Rng
module Stats = Wr_util.Stats
module Table = Wr_util.Table

let test_rng_determinism () =
  let a = Rng.create ~seed:42L and b = Rng.create ~seed:42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1L and b = Rng.create ~seed:2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next_int64 a = Rng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_split_independence () =
  let parent = Rng.create ~seed:7L in
  let child = Rng.split parent in
  (* Consuming from the child must not perturb the parent's stream
     relative to a parent that split but never used the child. *)
  let parent' = Rng.create ~seed:7L in
  let _child' = Rng.split parent' in
  for _ = 1 to 10 do
    ignore (Rng.next_int64 child)
  done;
  Alcotest.(check int64) "parent unaffected" (Rng.next_int64 parent') (Rng.next_int64 parent)

let test_rng_int_bounds () =
  let t = Rng.create ~seed:99L in
  for _ = 1 to 10_000 do
    let v = Rng.int t 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done

let test_rng_int_in () =
  let t = Rng.create ~seed:5L in
  for _ = 1 to 1000 do
    let v = Rng.int_in t (-4) 10 in
    Alcotest.(check bool) "in closed range" true (v >= -4 && v <= 10)
  done

let test_rng_float_bounds () =
  let t = Rng.create ~seed:11L in
  for _ = 1 to 10_000 do
    let v = Rng.float t 3.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 3.5)
  done

let test_rng_bernoulli_bias () =
  let t = Rng.create ~seed:13L in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.bernoulli t 0.25 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "close to 0.25" true (Float.abs (freq -. 0.25) < 0.02)

let test_rng_choose_weighted () =
  let t = Rng.create ~seed:17L in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 30_000 do
    let v = Rng.choose_weighted t [| ("a", 1.0); ("b", 2.0); ("c", 1.0) |] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let freq k = float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts k)) /. 30_000.0 in
  Alcotest.(check bool) "b twice as likely" true (Float.abs (freq "b" -. 0.5) < 0.03);
  Alcotest.(check bool) "a and c equal" true (Float.abs (freq "a" -. freq "c") < 0.03)

let test_rng_shuffle_permutes () =
  let t = Rng.create ~seed:23L in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle t arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 (fun i -> i)) sorted

let test_rng_geometric_mean () =
  let t = Rng.create ~seed:31L in
  let n = 20_000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Rng.geometric t ~p:0.5
  done;
  let mean = float_of_int !total /. float_of_int n in
  (* mean of geometric(0.5) failures-before-success = 1.0 *)
  Alcotest.(check bool) "mean near 1" true (Float.abs (mean -. 1.0) < 0.1)

let test_stats_mean_median () =
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  Alcotest.(check (float 1e-9)) "median even" 2.5 (Stats.median [| 4.0; 1.0; 3.0; 2.0 |]);
  Alcotest.(check (float 1e-9)) "median odd" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |])

let test_stats_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0 |])

let test_stats_weighted_mean () =
  Alcotest.(check (float 1e-9)) "weighted" 3.0
    (Stats.weighted_mean [| (1.0, 1.0); (4.0, 2.0) |])

let test_stats_percentile () =
  let xs = Array.init 101 (fun i -> float_of_int i) in
  Alcotest.(check (float 1e-9)) "p0" 0.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile xs 100.0)

let test_stats_stddev () =
  Alcotest.(check (float 1e-9)) "constant has zero stddev" 0.0
    (Stats.stddev [| 3.0; 3.0; 3.0 |]);
  Alcotest.(check (float 1e-6)) "known stddev" 2.0 (Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |])

let test_stats_kahan_sum () =
  (* Sum many tiny values against one big one: naive summation drifts. *)
  let xs = Array.make 10_000_001 1e-8 in
  xs.(0) <- 1.0e8;
  let expected = 1.0e8 +. 0.1 in
  Alcotest.(check (float 1e-4)) "compensated" expected (Stats.sum xs)

let test_stats_errors () =
  Alcotest.check_raises "geomean rejects zero" (Invalid_argument "Stats.geomean: non-positive value")
    (fun () -> ignore (Stats.geomean [| 1.0; 0.0 |]));
  Alcotest.check_raises "median empty" (Invalid_argument "Stats.median: empty array") (fun () ->
      ignore (Stats.median [||]))

let test_table_render () =
  let s = Table.render ~headers:[ "a"; "b" ] [ [ "1"; "2" ]; [ "3"; "44" ] ] in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "contains cell" true (contains s "44")

let test_table_render_missing_cells () =
  (* A short row must render with empty padding, not raise. *)
  let s = Table.render ~headers:[ "a"; "b"; "c" ] [ [ "1" ] ] in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_bar_chart () =
  let s = Table.bar_chart [ ("x", 1.0); ("y", 2.0) ] in
  Alcotest.(check bool) "bar chart renders" true (String.length s > 0);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Table.bar_chart: negative value") (fun () ->
      ignore (Table.bar_chart [ ("x", -1.0) ]))

let test_scatter () =
  let s = Table.scatter [ ("p1", 1.0, 2.0); ("q2", 3.0, 4.0) ] in
  Alcotest.(check bool) "scatter renders with legend" true (String.length s > 100)

let () =
  Alcotest.run "wr_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "bernoulli bias" `Quick test_rng_bernoulli_bias;
          Alcotest.test_case "choose_weighted" `Quick test_rng_choose_weighted;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "geometric mean" `Quick test_rng_geometric_mean;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/median" `Quick test_stats_mean_median;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
          Alcotest.test_case "weighted mean" `Quick test_stats_weighted_mean;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "kahan sum" `Quick test_stats_kahan_sum;
          Alcotest.test_case "errors" `Quick test_stats_errors;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "missing cells" `Quick test_table_render_missing_cells;
          Alcotest.test_case "bar chart" `Quick test_bar_chart;
          Alcotest.test_case "scatter" `Quick test_scatter;
        ] );
    ]
