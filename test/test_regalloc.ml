(* Tests for wr_regalloc: lifetimes, MaxLives, the wands/end-fit
   allocator, spill insertion and the register-constrained driver. *)

module Ddg = Wr_ir.Ddg
module Loop = Wr_ir.Loop
module Operation = Wr_ir.Operation
module Opcode = Wr_ir.Opcode
module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Resource = Wr_machine.Resource
module Modulo = Wr_sched.Modulo
module Schedule = Wr_sched.Schedule
module Lifetime = Wr_regalloc.Lifetime
module Alloc = Wr_regalloc.Alloc
module Spill = Wr_regalloc.Spill
module Driver = Wr_regalloc.Driver
module K = Wr_workload.Kernels

let cm = Cycle_model.Cycles_4

let sched loop config =
  let r = Resource.of_config config in
  (Modulo.run r ~cycle_model:cm loop.Loop.ddg).Modulo.schedule

(* --- lifetimes ------------------------------------------------------------ *)

let test_lifetimes_daxpy () =
  let loop = K.daxpy () in
  let s = sched loop (Config.xwy ~x:1 ~y:1 ()) in
  let lts = Lifetime.of_schedule loop.Loop.ddg s in
  (* 4 loop variants (2 loads, mul, add); the live-in scalar has none. *)
  Alcotest.(check int) "variant count" 4 (List.length lts);
  List.iter
    (fun lt ->
      Alcotest.(check bool) "positive length" true (Lifetime.length lt >= 1);
      Alcotest.(check bool) "starts at def" true
        (lt.Lifetime.start = s.Schedule.times.(lt.Lifetime.def_op)))
    lts

let test_lifetime_carried_use_extends () =
  (* A value consumed 2 iterations later lives at least 2*II cycles. *)
  let b = Wr_ir.Builder.create () in
  let x = Wr_ir.Builder.load b ~array_id:0 () in
  let y = Wr_ir.Builder.fneg b (Wr_ir.Builder.carried x ~distance:2) in
  Wr_ir.Builder.store b ~array_id:1 () y;
  let loop = Wr_ir.Builder.finish b ~trip_count:10 () in
  let s = sched loop (Config.xwy ~x:1 ~y:1 ()) in
  let lts = Lifetime.of_schedule loop.Loop.ddg s in
  let x_lt = List.find (fun lt -> lt.Lifetime.def_op = 0) lts in
  Alcotest.(check bool) "spans 2 iterations" true
    (Lifetime.length x_lt >= 2 * s.Schedule.ii)

let test_lifetime_dead_value () =
  (* A value never read still holds its register until write-back. *)
  let b = Wr_ir.Builder.create () in
  let x = Wr_ir.Builder.load b ~array_id:0 () in
  let _dead = Wr_ir.Builder.fneg b x in
  Wr_ir.Builder.store b ~array_id:1 () x;
  let loop = Wr_ir.Builder.finish b ~trip_count:10 () in
  let s = sched loop (Config.xwy ~x:1 ~y:1 ()) in
  let lts = Lifetime.of_schedule loop.Loop.ddg s in
  let dead = List.find (fun lt -> lt.Lifetime.def_op = 1) lts in
  Alcotest.(check int) "lives for its latency" 4 (Lifetime.length dead)

let test_max_lives_simple () =
  (* Two lifetimes of length 2 at II=2 overlapping everywhere: 2 live. *)
  let lts =
    [
      { Lifetime.vreg = 0; def_op = 0; start = 0; stop = 2 };
      { Lifetime.vreg = 1; def_op = 1; start = 0; stop = 2 };
    ]
  in
  Alcotest.(check int) "two live" 2 (Lifetime.max_lives ~ii:2 lts)

let test_max_lives_long_lifetime () =
  (* One lifetime of length 10 at II=2 keeps 5 values live. *)
  let lts = [ { Lifetime.vreg = 0; def_op = 0; start = 0; stop = 10 } ] in
  Alcotest.(check int) "five concurrent" 5 (Lifetime.max_lives ~ii:2 lts)

(* --- allocation ------------------------------------------------------------ *)

let test_alloc_requirement_ge_maxlives () =
  let loop = K.banded_matvec () in
  let s = sched loop (Config.xwy ~x:2 ~y:1 ()) in
  let lts = Lifetime.of_schedule loop.Loop.ddg s in
  let a = Alloc.allocate ~ii:s.Schedule.ii lts in
  Alcotest.(check bool) "req >= maxlives" true (a.Alloc.required >= a.Alloc.max_lives);
  Alcotest.(check bool) "req close to maxlives" true
    (a.Alloc.required <= a.Alloc.max_lives + 6)

let test_alloc_assignment_no_overlap () =
  (* Residual arcs in the same register must be pairwise disjoint on
     the ring: verify via per-slot occupancy counts. *)
  let loop = K.state_equation () in
  let s = sched loop (Config.xwy ~x:2 ~y:1 ()) in
  let lts = Lifetime.of_schedule loop.Loop.ddg s in
  let ii = s.Schedule.ii in
  let a = Alloc.allocate ~ii lts in
  let by_reg = Hashtbl.create 16 in
  List.iter
    (fun (asg : Alloc.assignment) ->
      if asg.Alloc.register >= 0 then begin
        let lt = List.find (fun l -> l.Lifetime.vreg = asg.Alloc.vreg) lts in
        let len = Lifetime.length lt mod ii in
        let start = ((lt.Lifetime.start mod ii) + ii) mod ii in
        let existing = Option.value ~default:[] (Hashtbl.find_opt by_reg asg.Alloc.register) in
        Hashtbl.replace by_reg asg.Alloc.register ((start, len) :: existing)
      end)
    a.Alloc.assignments;
  Hashtbl.iter
    (fun _reg arcs ->
      let cover = Array.make ii 0 in
      List.iter
        (fun (s0, len) ->
          for k = 0 to len - 1 do
            let slot = (s0 + k) mod ii in
            cover.(slot) <- cover.(slot) + 1
          done)
        arcs;
      Array.iter (fun c -> Alcotest.(check bool) "no double booking" true (c <= 1)) cover)
    by_reg

let test_alloc_empty () =
  let a = Alloc.allocate ~ii:4 [] in
  Alcotest.(check int) "no registers" 0 a.Alloc.required

(* --- spill ------------------------------------------------------------------ *)

let test_spill_choose_picks_longest () =
  let lts =
    [
      { Lifetime.vreg = 0; def_op = 0; start = 0; stop = 30 };
      { Lifetime.vreg = 1; def_op = 1; start = 0; stop = 6 };
      { Lifetime.vreg = 2; def_op = 2; start = 0; stop = 20 };
    ]
  in
  match Spill.choose ~ii:3 ~lifetimes:lts ~already_spilled:(fun _ -> false) ~deficit:1 with
  | Some plan ->
      Alcotest.(check bool) "longest first" true (List.hd plan.Spill.vregs = 0)
  | None -> Alcotest.fail "expected a plan"

let test_spill_choose_respects_already_spilled () =
  let lts = [ { Lifetime.vreg = 0; def_op = 0; start = 0; stop = 30 } ] in
  Alcotest.(check bool) "nothing left" true
    (Spill.choose ~ii:3 ~lifetimes:lts ~already_spilled:(fun _ -> true) ~deficit:1 = None)

let test_spill_choose_threshold_tracks_ii () =
  (* Regression: the worth-spilling threshold is max(4, II), not a flat
     4 — a lifetime must span a full kernel revolution before spilling
     it can save a register. *)
  let lts = [ { Lifetime.vreg = 0; def_op = 0; start = 0; stop = 8 } ] in
  Alcotest.(check bool) "length 8 saves nothing at II 10" true
    (Spill.choose ~ii:10 ~lifetimes:lts ~already_spilled:(fun _ -> false) ~deficit:1 = None);
  Alcotest.(check bool) "length 8 is worth spilling at II 3" true
    (Spill.choose ~ii:3 ~lifetimes:lts ~already_spilled:(fun _ -> false) ~deficit:1 <> None)

let test_spill_apply_memoizes_reloads () =
  (* Regression: a consumer reading the same spilled vreg twice at the
     same distance (fmul x x) gets one shared reload, not two identical
     loads. *)
  let square () =
    let b = Wr_ir.Builder.create () in
    let x = Wr_ir.Builder.load b ~array_id:0 () in
    let y = Wr_ir.Builder.fmul b x x in
    Wr_ir.Builder.store b ~array_id:1 () y;
    Wr_ir.Builder.finish b ~trip_count:10 ()
  in
  let loop = square () in
  let g = loop.Loop.ddg in
  let r = Option.get (Ddg.op g 0).Operation.def in
  let res = Spill.apply g ~vregs:[ r ] in
  Alcotest.(check int) "one reload serves both operands" 1 res.Spill.loads_added;
  (* Reads at distinct distances still need distinct reloads: the slot
     written [d] iterations earlier is a different address. *)
  let b = Wr_ir.Builder.create () in
  let x = Wr_ir.Builder.load b ~array_id:0 () in
  let y = Wr_ir.Builder.fmul b x (Wr_ir.Builder.carried x ~distance:1) in
  Wr_ir.Builder.store b ~array_id:1 () y;
  let loop = Wr_ir.Builder.finish b ~trip_count:10 () in
  let g = loop.Loop.ddg in
  let r = Option.get (Ddg.op g 0).Operation.def in
  let res = Spill.apply g ~vregs:[ r ] in
  Alcotest.(check int) "distance-distinct reads keep separate reloads" 2 res.Spill.loads_added

let test_spill_apply_structure () =
  let loop = K.banded_matvec () in
  let g = loop.Loop.ddg in
  (* Spill the first load's result (vreg of op 0). *)
  let r = Option.get (Ddg.op g 0).Operation.def in
  let res = Spill.apply g ~vregs:[ r ] in
  Alcotest.(check int) "one store added" 1 res.Spill.stores_added;
  Alcotest.(check bool) "loads added per use" true (res.Spill.loads_added >= 1);
  Alcotest.(check int) "op count grows" (Ddg.num_ops g + 1 + res.Spill.loads_added)
    (Ddg.num_ops res.Spill.graph);
  (* The spilled register now has exactly one consumer: the store. *)
  Alcotest.(check int) "only the store reads it" 1 (List.length (Ddg.users res.Spill.graph r))

let test_spill_apply_preserves_schedulability () =
  let loop = K.state_equation () in
  let g = loop.Loop.ddg in
  let r = Option.get (Ddg.op g 0).Operation.def in
  let res = Spill.apply g ~vregs:[ r ] in
  let resource = Resource.of_config (Config.xwy ~x:2 ~y:1 ()) in
  let result = Modulo.run resource ~cycle_model:cm res.Spill.graph in
  Alcotest.(check bool) "spilled graph schedules" true
    (Result.is_ok (Schedule.validate res.Spill.graph resource result.Modulo.schedule))

let test_spill_reduces_pressure () =
  let loop = K.state_equation () in
  let cfg = Config.xwy ~x:4 ~y:1 () in
  let s0 = sched loop cfg in
  let lts0 = Lifetime.of_schedule loop.Loop.ddg s0 in
  let a0 = Alloc.allocate ~ii:s0.Schedule.ii lts0 in
  (* Spill the two longest lifetimes and reschedule at the same II. *)
  match
    Spill.choose ~ii:s0.Schedule.ii ~lifetimes:lts0 ~already_spilled:(fun _ -> false)
      ~deficit:2
  with
  | None -> Alcotest.fail "expected spill candidates"
  | Some plan ->
      let res = Spill.apply loop.Loop.ddg ~vregs:plan.Spill.vregs in
      let resource = Resource.of_config cfg in
      let r1 = Modulo.run resource ~cycle_model:cm ~min_ii:s0.Schedule.ii res.Spill.graph in
      let lts1 = Lifetime.of_schedule res.Spill.graph r1.Modulo.schedule in
      let a1 = Alloc.allocate ~ii:r1.Modulo.schedule.Schedule.ii lts1 in
      Alcotest.(check bool)
        (Printf.sprintf "pressure drops or holds (%d -> %d)" a0.Alloc.required a1.Alloc.required)
        true
        (a1.Alloc.required <= a0.Alloc.required + 1)

(* --- driver ------------------------------------------------------------------ *)

let test_driver_no_spill_when_fits () =
  let loop = K.daxpy () in
  let resource = Resource.of_config (Config.xwy ~x:1 ~y:1 ()) in
  match Driver.run resource ~cycle_model:cm ~registers:64 loop.Loop.ddg with
  | Driver.Scheduled s ->
      Alcotest.(check int) "no spill" 0 s.Driver.stores_added;
      Alcotest.(check int) "no rounds" 0 s.Driver.spill_rounds
  | Driver.Unschedulable m -> Alcotest.fail m

let test_driver_spills_under_pressure () =
  (* 8 buses/16 FPUs at 24 registers forces action on a parallel kernel. *)
  let loop = K.banded_matvec () in
  let resource = Resource.of_config (Config.xwy ~x:8 ~y:1 ()) in
  match Driver.run resource ~cycle_model:cm ~registers:24 loop.Loop.ddg with
  | Driver.Scheduled s ->
      Alcotest.(check bool) "fits the file" true
        (s.Driver.alloc.Wr_regalloc.Alloc.required <= 24);
      Alcotest.(check bool) "paid something for it" true
        (s.Driver.stores_added > 0 || s.Driver.schedule.Schedule.ii > s.Driver.mii)
  | Driver.Unschedulable _ ->
      (* Also acceptable: the file is genuinely too small.  But 24
         registers should be reachable by slowing down. *)
      Alcotest.fail "expected the driver to converge at 24 registers"

let test_driver_gives_up_eventually () =
  let loop = K.banded_matvec () in
  let resource = Resource.of_config (Config.xwy ~x:8 ~y:1 ()) in
  match Driver.run resource ~cycle_model:cm ~registers:2 loop.Loop.ddg with
  | Driver.Scheduled _ -> Alcotest.fail "2 registers cannot hold a banded matvec"
  | Driver.Unschedulable _ -> ()

let test_driver_rejects_bad_registers () =
  let loop = K.daxpy () in
  let resource = Resource.of_config (Config.xwy ~x:1 ~y:1 ()) in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Driver.run resource ~cycle_model:cm ~registers:0 loop.Loop.ddg);
       false
     with Invalid_argument _ -> true)

(* --- properties --------------------------------------------------------------- *)

let random_loop seed =
  let rng = Wr_util.Rng.create ~seed:(Int64.of_int (seed + 4321)) in
  Wr_workload.Generator.generate_one rng Wr_workload.Generator.default ~index:seed

let gen_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 3000)

let prop_alloc_within_bound =
  (* MaxLives is only the density lower bound: on a ring of
     circumference II, arcs longer than II/2 pairwise intersect, so the
     chromatic number can exceed the density (classic circular-arc
     fact).  The allocator must stay between the density bound and the
     trivial one-register-per-arc upper bound, and within 2x density +
     slack. *)
  QCheck.Test.make ~name:"end-fit between MaxLives and trivial bounds" ~count:60 gen_seed
    (fun seed ->
      let loop = random_loop seed in
      let s = sched loop (Config.xwy ~x:2 ~y:1 ()) in
      let lts = Lifetime.of_schedule loop.Loop.ddg s in
      let a = Alloc.allocate ~ii:s.Schedule.ii lts in
      let trivial =
        List.fold_left
          (fun acc lt -> acc + ((Lifetime.length lt + s.Schedule.ii - 1) / s.Schedule.ii))
          0 lts
      in
      a.Alloc.required >= a.Alloc.max_lives
      && a.Alloc.required <= trivial
      && a.Alloc.required <= (2 * a.Alloc.max_lives) + 4)

let prop_driver_result_fits =
  QCheck.Test.make ~name:"driver success implies requirement <= file" ~count:40 gen_seed
    (fun seed ->
      let loop = random_loop seed in
      let resource = Resource.of_config (Config.xwy ~x:4 ~y:1 ()) in
      match Driver.run resource ~cycle_model:cm ~registers:48 loop.Loop.ddg with
      | Driver.Scheduled s ->
          s.Driver.alloc.Wr_regalloc.Alloc.required <= 48
          && Result.is_ok
               (Schedule.validate s.Driver.graph resource s.Driver.schedule)
      | Driver.Unschedulable _ -> true)

let prop_spilled_graph_valid =
  QCheck.Test.make ~name:"spill rewriting yields valid graphs" ~count:40 gen_seed (fun seed ->
      let loop = random_loop seed in
      let g = loop.Loop.ddg in
      let s = sched loop (Config.xwy ~x:2 ~y:1 ()) in
      let lts = Lifetime.of_schedule g s in
      match
        Spill.choose ~ii:s.Schedule.ii ~lifetimes:lts ~already_spilled:(fun _ -> false)
          ~deficit:3
      with
      | None -> true
      | Some plan ->
          let res = Spill.apply g ~vregs:plan.Spill.vregs in
          (* Ddg.create inside apply validates; sanity-check counters. *)
          res.Spill.stores_added = List.length res.Spill.spilled
          || res.Spill.stores_added <= List.length res.Spill.spilled)

let () =
  Alcotest.run "wr_regalloc"
    [
      ( "lifetime",
        [
          Alcotest.test_case "daxpy" `Quick test_lifetimes_daxpy;
          Alcotest.test_case "carried use" `Quick test_lifetime_carried_use_extends;
          Alcotest.test_case "dead value" `Quick test_lifetime_dead_value;
          Alcotest.test_case "max_lives simple" `Quick test_max_lives_simple;
          Alcotest.test_case "max_lives long" `Quick test_max_lives_long_lifetime;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "requirement bound" `Quick test_alloc_requirement_ge_maxlives;
          Alcotest.test_case "no overlap" `Quick test_alloc_assignment_no_overlap;
          Alcotest.test_case "empty" `Quick test_alloc_empty;
        ] );
      ( "spill",
        [
          Alcotest.test_case "choose longest" `Quick test_spill_choose_picks_longest;
          Alcotest.test_case "already spilled" `Quick test_spill_choose_respects_already_spilled;
          Alcotest.test_case "threshold tracks II" `Quick test_spill_choose_threshold_tracks_ii;
          Alcotest.test_case "memoized reloads" `Quick test_spill_apply_memoizes_reloads;
          Alcotest.test_case "apply structure" `Quick test_spill_apply_structure;
          Alcotest.test_case "schedulable after" `Quick test_spill_apply_preserves_schedulability;
          Alcotest.test_case "reduces pressure" `Quick test_spill_reduces_pressure;
        ] );
      ( "driver",
        [
          Alcotest.test_case "no spill when fits" `Quick test_driver_no_spill_when_fits;
          Alcotest.test_case "spills under pressure" `Quick test_driver_spills_under_pressure;
          Alcotest.test_case "gives up eventually" `Quick test_driver_gives_up_eventually;
          Alcotest.test_case "rejects bad registers" `Quick test_driver_rejects_bad_registers;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_alloc_within_bound; prop_driver_result_fits; prop_spilled_graph_valid ] );
    ]
