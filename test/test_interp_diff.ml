(* Differential tests for the two interpreter engines: the flat kernel
   (Interp.compile + run_plan, the default) must be bit-identical to
   the retained reference engine — memory image, loads, stores, flops —
   on every loop the transforms can produce: original, widened,
   unrolled, spilled, and the fma-bearing stencil family.  Plus
   regression tests for the satellite fixes (iterations = 0 fast path,
   restrict's sorted merge, equal_memory's single walk) and the
   determinism of verified runs across pool sizes. *)

module Ddg = Wr_ir.Ddg
module Loop = Wr_ir.Loop
module Operation = Wr_ir.Operation
module B = Wr_ir.Builder
module Interp = Wr_vliw.Interp
module Transform = Wr_widen.Transform
module Spill = Wr_regalloc.Spill
module Generator = Wr_workload.Generator
module Stencil = Wr_workload.Stencil

(* --- the differential check ---------------------------------------------- *)

let diff_check ~label ~iterations loop =
  let refr = Interp.run_reference ~iterations loop in
  let plan = Interp.compile loop in
  let flat = Interp.run_plan ~iterations plan in
  if not (Interp.equal_memory refr flat) then begin
    let diffs = Interp.diff_memory refr flat in
    let show ((a, ad), l, r) =
      Printf.sprintf "A%d[%d]: ref=%s flat=%s" a ad
        (match l with Some v -> Printf.sprintf "%h" v | None -> "-")
        (match r with Some v -> Printf.sprintf "%h" v | None -> "-")
    in
    Alcotest.fail
      (Printf.sprintf "%s: %d differing locations; first: %s" label (List.length diffs)
         (match diffs with d :: _ -> show d | [] -> "?"))
  end;
  Alcotest.(check int) (label ^ " loads") refr.Interp.loads flat.Interp.loads;
  Alcotest.(check int) (label ^ " stores") refr.Interp.stores flat.Interp.stores;
  Alcotest.(check int) (label ^ " flops") refr.Interp.flops flat.Interp.flops;
  (* A plan is reusable: a second run from the same plan must rebuild
     its arenas from scratch and reproduce the image exactly. *)
  let again = Interp.run_plan ~iterations plan in
  Alcotest.(check bool) (label ^ " plan reuse") true (Interp.equal_memory flat again)

(* Seeded generator loops, cycling parameter variants that stress the
   paths where the engines could diverge: non-compactable strides, big
   bodies (deep slot tables), and fused multiply-adds. *)
let variants =
  let d = Generator.default in
  [|
    d;
    { d with Generator.stride1_prob = 0.6 };
    { d with Generator.statements_mean = 6.0; statements_max = 20 };
    { d with Generator.fma_prob = 0.30 };
  |]

let seeded_loop seed =
  let rng = Wr_util.Rng.create ~seed:(Int64.of_int (seed + 7001)) in
  Generator.generate_one rng variants.(seed mod Array.length variants) ~index:seed

let spill_some loop n =
  let g = loop.Loop.ddg in
  let vregs =
    List.filteri (fun i _ -> i < n)
      (List.filter_map
         (fun (o : Operation.t) ->
           match o.Operation.def with
           | Some r when Ddg.users g r <> [] -> Some r
           | _ -> None)
         (Array.to_list (Ddg.ops g)))
  in
  if vregs = [] then None
  else
    Some
      (Loop.make
         ~name:(loop.Loop.name ^ "@spill")
         ~ddg:(Spill.apply g ~vregs).Spill.graph ~trip_count:loop.Loop.trip_count ())

let test_differential_fuzz () =
  for seed = 0 to 29 do
    let loop = seeded_loop seed in
    let tag fmt = Printf.sprintf fmt loop.Loop.name in
    diff_check ~label:(tag "%s") ~iterations:9 loop;
    List.iter
      (fun y ->
        let wide, _ = Transform.widen loop ~width:y in
        diff_check ~label:(tag "%s@w" ^ string_of_int y) ~iterations:5 wide)
      [ 2; 4 ];
    diff_check ~label:(tag "%s@u3") ~iterations:4 (Transform.unroll loop ~factor:3);
    let wide, _ = Transform.widen loop ~width:2 in
    Option.iter
      (fun spilled -> diff_check ~label:(tag "%s@w2spill") ~iterations:6 spilled)
      (spill_some wide 2)
  done

let test_differential_stencils () =
  List.iter
    (fun (name, loop) ->
      diff_check ~label:name ~iterations:12 loop;
      let wide, _ = Transform.widen loop ~width:4 in
      diff_check ~label:(name ^ "@w4") ~iterations:4 wide)
    (Stencil.all ())

(* --- iterations = 0 / 1 fast paths ---------------------------------------- *)

let test_zero_iterations () =
  let loop = Wr_workload.Kernels.daxpy () in
  List.iter
    (fun (label, r) ->
      Alcotest.(check int) (label ^ " loads") 0 r.Interp.loads;
      Alcotest.(check int) (label ^ " stores") 0 r.Interp.stores;
      Alcotest.(check int) (label ^ " flops") 0 r.Interp.flops;
      Alcotest.(check bool) (label ^ " empty image") true (r.Interp.memory = []))
    [
      ("run", Interp.run ~iterations:0 loop);
      ("reference", Interp.run_reference ~iterations:0 loop);
      ("plan", Interp.run_plan ~iterations:0 (Interp.compile loop));
    ]

let test_one_iteration () =
  List.iter
    (fun (name, loop) -> diff_check ~label:(name ^ "@1iter") ~iterations:1 loop)
    (Wr_workload.Kernels.all ())

(* --- Fma semantics --------------------------------------------------------- *)

let test_fma_single_rounding () =
  (* d(i) = fma(a(i), b(i), c(i)) over the hash-derived initial memory:
     the stored word must be Float.fma of the three inputs — single
     rounding, not multiply-then-add. *)
  let b = B.create () in
  let x = B.load b ~array_id:0 () in
  let y = B.load b ~array_id:1 () in
  let z = B.load b ~array_id:2 () in
  B.store b ~array_id:3 () (B.fma b x y z);
  let loop = B.finish b ~trip_count:4 () in
  let r = Interp.run ~iterations:4 loop in
  for i = 0 to 3 do
    let expected =
      Float.fma
        (Interp.initial_memory_value 0 i)
        (Interp.initial_memory_value 1 i)
        (Interp.initial_memory_value 2 i)
    in
    Alcotest.(check (float 0.0))
      (Printf.sprintf "fma word %d" i)
      expected
      (List.assoc (3, i) r.Interp.memory)
  done;
  Alcotest.(check int) "fma loads" 12 r.Interp.loads;
  Alcotest.(check int) "fma flops" 4 r.Interp.flops

let test_fma_simulates () =
  (* The cycle-level simulator executes Fma too: the gold check on the
     stencil family, which is fma-dense by construction. *)
  List.iter
    (fun (name, loop) ->
      List.iter
        (fun (x, y) ->
          let cfg = Wr_machine.Config.xwy ~x ~y () in
          match Wr_vliw.Sim.check_against_reference loop cfg ~iterations:6 with
          | Ok _ -> ()
          | Error msg ->
              Alcotest.fail
                (Printf.sprintf "%s on %s: %s" name (Wr_machine.Config.label_short cfg) msg))
        [ (1, 1); (2, 2) ])
    (Stencil.all ())

let test_fma_in_generator () =
  (* With fma_prob on, the generator must actually emit Fma ops (and
     the loops must execute — covered by the differential fuzz above,
     whose variant cycle includes this one). *)
  let count_fma loop =
    Array.fold_left
      (fun acc (o : Operation.t) ->
        if o.Operation.opcode = Wr_ir.Opcode.Fma then acc + 1 else acc)
      0
      (Ddg.ops loop.Loop.ddg)
  in
  let rng = Wr_util.Rng.create ~seed:99L in
  let total = ref 0 in
  for i = 0 to 19 do
    total :=
      !total
      + count_fma
          (Generator.generate_one rng
             { Generator.default with Generator.fma_prob = 0.5 }
             ~index:i)
  done;
  Alcotest.(check bool) "generator emits fmas" true (!total > 0)

(* --- satellite regressions ------------------------------------------------- *)

let mk_result memory = { Interp.memory; loads = 0; stores = 0; flops = 0 }

let test_restrict_sorted_merge () =
  let r =
    mk_result [ ((0, 0), 1.0); ((1, 0), 2.0); ((1, 7), 2.5); ((2, 5), 3.0); ((3, 1), 4.0) ]
  in
  let keys res = List.map fst res.Interp.memory in
  Alcotest.(check (list (pair int int)))
    "keeps only requested arrays, in order"
    [ (1, 0); (1, 7); (3, 1) ]
    (keys (Interp.restrict r ~arrays:[ 1; 3 ]));
  (* Unsorted and duplicated array lists are normalized. *)
  Alcotest.(check (list (pair int int)))
    "normalizes the array list"
    [ (1, 0); (1, 7); (3, 1) ]
    (keys (Interp.restrict r ~arrays:[ 3; 1; 1 ]));
  Alcotest.(check (list (pair int int))) "empty arrays" [] (keys (Interp.restrict r ~arrays:[]));
  Alcotest.(check (list (pair int int)))
    "disjoint arrays" []
    (keys (Interp.restrict r ~arrays:[ 9 ]))

let test_equal_memory_bitwise () =
  Alcotest.(check bool) "equal" true
    (Interp.equal_memory (mk_result [ ((0, 0), 1.5) ]) (mk_result [ ((0, 0), 1.5) ]));
  Alcotest.(check bool) "value differs" false
    (Interp.equal_memory (mk_result [ ((0, 0), 1.5) ]) (mk_result [ ((0, 0), 1.25) ]));
  Alcotest.(check bool) "key differs" false
    (Interp.equal_memory (mk_result [ ((0, 0), 1.5) ]) (mk_result [ ((0, 1), 1.5) ]));
  Alcotest.(check bool) "length differs" false
    (Interp.equal_memory (mk_result [ ((0, 0), 1.5) ]) (mk_result []));
  (* Bit-level, not (=): identical NaNs compare equal, 0.0 <> -0.0. *)
  Alcotest.(check bool) "nan = nan" true
    (Interp.equal_memory (mk_result [ ((0, 0), Float.nan) ]) (mk_result [ ((0, 0), Float.nan) ]));
  Alcotest.(check bool) "0.0 <> -0.0" false
    (Interp.equal_memory (mk_result [ ((0, 0), 0.0) ]) (mk_result [ ((0, 0), -0.0) ]))

(* --- workload family cut --------------------------------------------------- *)

let test_families_cut () =
  let fams = Wr_workload.Suite.families () in
  Alcotest.(check (list string)) "family names" [ "synthetic"; "real" ] (List.map fst fams);
  let real = List.assoc "real" fams in
  Alcotest.(check bool) "real family is non-trivial" true (Array.length real >= 12);
  (* Every real kernel interprets (totality) and the stencils are in. *)
  Array.iter (fun l -> ignore (Interp.run ~iterations:2 l)) real;
  let names = Array.to_list (Array.map (fun (l : Loop.t) -> l.Loop.name) real) in
  List.iter
    (fun (n, _) -> Alcotest.(check bool) (n ^ " present") true (List.mem n names))
    (Stencil.all ())

(* --- verified runs are deterministic across pool sizes ---------------------- *)

let test_verified_deterministic_across_jobs () =
  let loops = Wr_workload.Suite.sample 10 in
  Core.Evaluate.set_verify true;
  let run jobs =
    Wr_util.Pool.set_default_jobs jobs;
    Core.Evaluate.clear_cache ();
    Core.Spill_study.to_text
      (Core.Spill_study.run ~suite_id:(Printf.sprintf "diffjobs%d" jobs) loops)
  in
  let a = run 1 in
  let b = run 4 in
  Core.Evaluate.set_verify false;
  Wr_util.Pool.set_default_jobs 1;
  Core.Evaluate.clear_cache ();
  Alcotest.(check string) "verified study identical at jobs=1 and jobs=4" a b

let () =
  Alcotest.run "interp_diff"
    [
      ( "differential",
        [
          Alcotest.test_case "seeded transforms" `Quick test_differential_fuzz;
          Alcotest.test_case "stencil family" `Quick test_differential_stencils;
          Alcotest.test_case "one iteration" `Quick test_one_iteration;
        ] );
      ( "fast paths",
        [ Alcotest.test_case "zero iterations" `Quick test_zero_iterations ] );
      ( "fma",
        [
          Alcotest.test_case "single rounding" `Quick test_fma_single_rounding;
          Alcotest.test_case "simulates" `Quick test_fma_simulates;
          Alcotest.test_case "generator emits" `Quick test_fma_in_generator;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "restrict merge" `Quick test_restrict_sorted_merge;
          Alcotest.test_case "equal_memory bitwise" `Quick test_equal_memory_bitwise;
          Alcotest.test_case "families cut" `Quick test_families_cut;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "verified jobs=1 vs jobs=4" `Slow
            test_verified_deterministic_across_jobs;
        ] );
    ]
