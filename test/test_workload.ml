(* Tests for wr_workload: the kernel library and the synthetic suite
   generator (determinism, statistics, structural sanity). *)

module Ddg = Wr_ir.Ddg
module Loop = Wr_ir.Loop
module Operation = Wr_ir.Operation
module Opcode = Wr_ir.Opcode
module K = Wr_workload.Kernels
module Generator = Wr_workload.Generator
module Suite = Wr_workload.Suite

let test_kernels_all_valid () =
  (* Construction already validates; check each has ops and a store or
     a recurrence (some observable result). *)
  List.iter
    (fun (name, loop) ->
      Alcotest.(check bool) (name ^ " non-empty") true (Loop.num_ops loop > 0);
      let has_store =
        Array.exists
          (fun (o : Operation.t) -> o.Operation.opcode = Opcode.Store)
          (Ddg.ops loop.Loop.ddg)
      in
      Alcotest.(check bool)
        (name ^ " has store or recurrence")
        true
        (has_store || Ddg.has_recurrence loop.Loop.ddg))
    (K.all ())

let test_kernel_count () =
  Alcotest.(check int) "20 kernels" 20 (List.length (K.all ()))

let test_kernels_expected_recurrences () =
  let recurrent = [ "dot_product"; "tridiag_elimination"; "linear_recurrence"; "norm2"; "prefix_max_ratio" ] in
  List.iter
    (fun (name, loop) ->
      let expected = List.mem name recurrent in
      Alcotest.(check bool) (name ^ " recurrence flag") expected
        (Ddg.has_recurrence loop.Loop.ddg))
    (K.all ())

let test_generator_deterministic () =
  let a = Generator.generate { Generator.default with Generator.num_loops = 25 } in
  let b = Generator.generate { Generator.default with Generator.num_loops = 25 } in
  Alcotest.(check int) "same count" (Array.length a) (Array.length b);
  Array.iteri
    (fun i la ->
      let lb = b.(i) in
      Alcotest.(check int) "same ops" (Loop.num_ops la) (Loop.num_ops lb);
      Alcotest.(check int) "same trip" la.Loop.trip_count lb.Loop.trip_count;
      Alcotest.(check (float 1e-12)) "same weight" la.Loop.weight lb.Loop.weight;
      Alcotest.(check int) "same edges"
        (List.length (Ddg.edges la.Loop.ddg))
        (List.length (Ddg.edges lb.Loop.ddg)))
    a

let test_generator_seed_changes_suite () =
  let a = Generator.generate { Generator.default with Generator.num_loops = 30 } in
  let b =
    Generator.generate { Generator.default with Generator.num_loops = 30; Generator.seed = 99L }
  in
  let sizes loops = Array.map Loop.num_ops loops in
  Alcotest.(check bool) "different shapes" true (sizes a <> sizes b)

let test_generator_respects_bounds () =
  let p = { Generator.default with Generator.num_loops = 100 } in
  let loops = Generator.generate p in
  Array.iter
    (fun (l : Loop.t) ->
      Alcotest.(check bool) "trip bounds" true (l.Loop.trip_count >= p.Generator.trip_min);
      Alcotest.(check bool) "weight positive" true (l.Loop.weight > 0.0);
      (* A one-op body (a bare reduction) is degenerate but legal. *)
      Alcotest.(check bool) "non-trivial body" true (Loop.num_ops l >= 1))
    loops

let test_generator_mix_statistics () =
  (* On a decent sample the op mix must hit the calibrated region:
     memory share 35-55%, recurrence loops 20-45%. *)
  let loops = Generator.generate { Generator.default with Generator.num_loops = 300 } in
  let mem = ref 0 and total = ref 0 and rec_loops = ref 0 in
  Array.iter
    (fun (l : Loop.t) ->
      if Ddg.has_recurrence l.Loop.ddg then incr rec_loops;
      Array.iter
        (fun (o : Operation.t) ->
          incr total;
          if Opcode.is_memory o.Operation.opcode then incr mem)
        (Ddg.ops l.Loop.ddg))
    loops;
  let mem_share = float_of_int !mem /. float_of_int !total in
  let rec_share = float_of_int !rec_loops /. 300.0 in
  Alcotest.(check bool) (Printf.sprintf "memory share %.2f" mem_share) true
    (mem_share > 0.30 && mem_share < 0.55);
  Alcotest.(check bool) (Printf.sprintf "recurrence share %.2f" rec_share) true
    (rec_share > 0.15 && rec_share < 0.45)

let test_suite_size_and_memoization () =
  let a = Suite.perfect_club_like () in
  let b = Suite.perfect_club_like () in
  Alcotest.(check int) "1180 loops" 1180 (Array.length a);
  Alcotest.(check bool) "memoized" true (a == b)

let test_suite_sample () =
  let s = Suite.sample 50 in
  Alcotest.(check bool) "about 50" true (Array.length s >= 45 && Array.length s <= 55);
  Alcotest.(check bool) "subset of suite" true
    (Array.for_all
       (fun (l : Loop.t) ->
         Array.exists (fun (m : Loop.t) -> m == l) (Suite.perfect_club_like ()))
       s)

let test_suite_statistics_text () =
  let s = Suite.statistics (Suite.sample 30) in
  Alcotest.(check bool) "mentions loops" true (String.length s > 40)

let test_with_kernels () =
  let all = Suite.with_kernels () in
  Alcotest.(check int) "suite + 20 kernels" (1180 + 20) (Array.length all)

(* --- Livermore kernels ------------------------------------------------------ *)

module L = Wr_workload.Livermore

let test_livermore_count () =
  Alcotest.(check int) "16 kernels" 16 (List.length (L.all ()));
  Alcotest.(check int) "suite size" 16 (Array.length (L.suite ()))

let test_livermore_recurrence_flags () =
  let recurrent = [ "k3"; "k5"; "k11"; "k19"; "k20"; "k23" ] in
  List.iter
    (fun (name, loop) ->
      Alcotest.(check bool) (name ^ " recurrence flag") (List.mem name recurrent)
        (Ddg.has_recurrence loop.Loop.ddg))
    (L.all ())

let test_livermore_known_rec_rates () =
  let cm = Wr_machine.Cycle_model.Cycles_4 in
  let rate name =
    Wr_sched.Mii.rec_rate ~cycle_model:cm (List.assoc name (L.all ())).Loop.ddg
  in
  (* k11: one latency-4 add at distance 1. *)
  Alcotest.(check (float 1e-6)) "k11 rate" 4.0 (rate "k11");
  (* k5: subtract then multiply, both latency 4. *)
  Alcotest.(check (float 1e-6)) "k5 rate" 8.0 (rate "k5");
  (* k19: multiply then add. *)
  Alcotest.(check (float 1e-6)) "k19 rate" 8.0 (rate "k19");
  (* k20's critical cycle: multiply (4), add (4), divide (19), final
     multiply (4). *)
  Alcotest.(check (float 1e-6)) "k20 rate" 31.0 (rate "k20")

let test_livermore_all_schedulable () =
  let resource = Wr_machine.Resource.of_config (Wr_machine.Config.xwy ~x:2 ~y:1 ()) in
  List.iter
    (fun (name, loop) ->
      let r =
        Wr_sched.Modulo.run resource ~cycle_model:Wr_machine.Cycle_model.Cycles_4
          loop.Loop.ddg
      in
      Alcotest.(check int) (name ^ " reaches MII") r.Wr_sched.Modulo.mii
        r.Wr_sched.Modulo.schedule.Wr_sched.Schedule.ii)
    (L.all ())

let test_livermore_widen_equivalence () =
  List.iter
    (fun (name, loop) ->
      List.iter
        (fun y ->
          let wide, _ = Wr_widen.Transform.widen loop ~width:y in
          let arrays = Wr_vliw.Interp.arrays_of loop in
          let a =
            Wr_vliw.Interp.restrict (Wr_vliw.Interp.run ~iterations:(6 * y) loop) ~arrays
          in
          let b = Wr_vliw.Interp.restrict (Wr_vliw.Interp.run ~iterations:6 wide) ~arrays in
          Alcotest.(check bool)
            (Printf.sprintf "%s@w%d semantics" name y)
            true
            (Wr_vliw.Interp.equal_memory a b))
        [ 2; 4 ])
    (L.all ())

let () =
  Alcotest.run "wr_workload"
    [
      ( "kernels",
        [
          Alcotest.test_case "all valid" `Quick test_kernels_all_valid;
          Alcotest.test_case "count" `Quick test_kernel_count;
          Alcotest.test_case "recurrence flags" `Quick test_kernels_expected_recurrences;
        ] );
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_generator_seed_changes_suite;
          Alcotest.test_case "bounds" `Quick test_generator_respects_bounds;
          Alcotest.test_case "mix statistics" `Quick test_generator_mix_statistics;
        ] );
      ( "livermore",
        [
          Alcotest.test_case "count" `Quick test_livermore_count;
          Alcotest.test_case "recurrence flags" `Quick test_livermore_recurrence_flags;
          Alcotest.test_case "known rec rates" `Quick test_livermore_known_rec_rates;
          Alcotest.test_case "all schedulable" `Quick test_livermore_all_schedulable;
          Alcotest.test_case "widen equivalence" `Quick test_livermore_widen_equivalence;
        ] );
      ( "suite",
        [
          Alcotest.test_case "size/memoization" `Quick test_suite_size_and_memoization;
          Alcotest.test_case "sample" `Quick test_suite_sample;
          Alcotest.test_case "statistics" `Quick test_suite_statistics_text;
          Alcotest.test_case "with kernels" `Quick test_with_kernels;
        ] );
    ]
