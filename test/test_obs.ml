(* Tests for the telemetry layer (lib/obs) and its integration with the
   evaluation engine: disabled mode is free, merged counters and
   histograms are pool-size independent, the hand-rolled serializers
   emit valid JSON, and the evaluation caches report and reset their
   hit/miss statistics. *)

module Obs = Wr_obs.Obs
module Pool = Wr_util.Pool
module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module K = Wr_workload.Kernels

let cm = Cycle_model.Cycles_4

(* --- disabled mode ---------------------------------------------------------- *)

let nop () = ()

(* Top-level so the burst itself closes over nothing; any allocation
   measured below is the library's, not the test harness's. *)
let record_burst () =
  for _ = 1 to 10_000 do
    Obs.incr "disabled/counter";
    Obs.add "disabled/counter" 2;
    Obs.observe "disabled/hist" 3;
    Obs.runtime_add "disabled/rt_counter" 1;
    Obs.runtime_observe "disabled/rt_hist" 5;
    Obs.span "disabled/span" nop
  done

let test_disabled_is_free () =
  Obs.set_enabled false;
  Obs.reset ();
  record_burst ();
  (* warmed up *)
  let a0 = Gc.allocated_bytes () in
  record_burst ();
  let a1 = Gc.allocated_bytes () in
  (* The two [Gc.allocated_bytes] calls box their float results; allow
     that constant and nothing more.  60k recording calls that each
     allocated even one word would blow far past this. *)
  Alcotest.(check bool)
    (Printf.sprintf "no allocation when disabled (delta %.0f bytes)" (a1 -. a0))
    true
    (a1 -. a0 <= 256.0);
  let s = Obs.snapshot () in
  Alcotest.(check int) "no counters" 0 (List.length s.Obs.counters);
  Alcotest.(check int) "no histograms" 0 (List.length s.Obs.histograms);
  Alcotest.(check int) "no spans" 0 (List.length s.Obs.spans);
  Alcotest.(check int) "no events" 0 (List.length (Obs.events ()))

(* --- basic recording --------------------------------------------------------- *)

let with_enabled f =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

let test_record_and_snapshot () =
  with_enabled (fun () ->
      Obs.incr "a";
      Obs.add "a" 41;
      Obs.observe "h" 7;
      Obs.observe "h" 7;
      Obs.observe "h" 3;
      let v = Obs.span "s" (fun () -> 42) in
      Alcotest.(check int) "span returns f's value" 42 v;
      (match Obs.span "s" (fun () -> failwith "boom") with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "span must re-raise");
      let s = Obs.snapshot () in
      Alcotest.(check int) "counter" 42 (List.assoc "a" s.Obs.counters);
      Alcotest.(check bool) "histogram" true ([ (3, 1); (7, 2) ] = List.assoc "h" s.Obs.histograms);
      let st = List.assoc "s" s.Obs.spans in
      Alcotest.(check int) "span count includes exceptional exit" 2 st.Obs.span_count;
      Alcotest.(check int) "two events" 2 (List.length (Obs.events ()));
      Obs.reset ();
      let s = Obs.snapshot () in
      Alcotest.(check int) "reset clears counters" 0 (List.length s.Obs.counters);
      Alcotest.(check int) "reset clears events" 0 (List.length (Obs.events ())))

(* --- clamped histograms ------------------------------------------------------ *)

let test_observe_clamped_overflow () =
  with_enabled (fun () ->
      Obs.observe_clamped "clamped" ~top:8 3;
      Obs.observe_clamped "clamped" ~top:8 8;
      (* Everything above [top] lands in one overflow bin at [top + 1]:
         no count is lost, however extreme the value. *)
      Obs.observe_clamped "clamped" ~top:8 9;
      Obs.observe_clamped "clamped" ~top:8 100_000;
      (* Cross-domain merge sums the overflow bin like any other. *)
      let d = Domain.spawn (fun () -> Obs.observe_clamped "clamped" ~top:8 500) in
      Domain.join d;
      let bins = List.assoc "clamped" (Obs.snapshot ()).Obs.histograms in
      Alcotest.(check bool) "exact bins kept, overflow merged at top+1" true
        ([ (3, 1); (8, 1); (9, 3) ] = bins);
      Alcotest.(check int) "no count lost" 5
        (List.fold_left (fun acc (_, c) -> acc + c) 0 bins))

(* --- determinism across pool sizes ------------------------------------------- *)

(* The determinism contract: counters and histograms merge by summation
   over per-domain sinks, so a study produces identical merged values
   for any pool size.  Span timings and the per-lane runtime section
   are placement-dependent and excluded. *)
let test_merged_metrics_pool_size_independent () =
  let loops = Wr_workload.Suite.sample 30 in
  let grid = [ (2, 2, 32); (4, 1, 64) ] in
  let study pool =
    Core.Evaluate.clear_cache ();
    Obs.reset ();
    List.iter
      (fun (x, y, z) ->
        let c = Config.xwy ~registers:z ~x ~y () in
        ignore (Core.Evaluate.suite_on ~pool ~suite_id:"obs-det30" c ~cycle_model:cm ~registers:z loops))
      grid;
    let s = Obs.snapshot () in
    (s.Obs.counters, s.Obs.histograms)
  in
  with_enabled (fun () ->
      let p1 = Pool.create ~jobs:1 () in
      let p4 = Pool.create ~jobs:4 () in
      Fun.protect
        ~finally:(fun () ->
          Pool.shutdown p1;
          Pool.shutdown p4;
          Core.Evaluate.clear_cache ())
        (fun () ->
          let c1, h1 = study p1 in
          let c4, h4 = study p4 in
          Alcotest.(check bool) "some counters recorded" true (c1 <> []);
          Alcotest.(check bool) "some histograms recorded" true (h1 <> []);
          Alcotest.(check bool) "merged counters identical at jobs 1 and 4" true (c1 = c4);
          Alcotest.(check bool) "merged histograms identical at jobs 1 and 4" true (h1 = h4)))

(* --- JSON validity ----------------------------------------------------------- *)

(* Minimal strict JSON recognizer.  The serializers are hand-rolled
   (no JSON library in the build), so validity is asserted against an
   independently written grammar rather than by trusting their output
   shape. *)
let check_json label s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Alcotest.failf "%s: invalid JSON at offset %d: %s" label !pos msg in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let skip_ws () =
    while match peek () with Some (' ' | '\t' | '\n' | '\r') -> true | _ -> false do
      advance ()
    done
  in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done;
              go ()
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "unescaped control character"
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  in
  let digits () =
    let saw = ref false in
    while match peek () with Some '0' .. '9' -> true | _ -> false do
      saw := true;
      advance ()
    done;
    if not !saw then fail "expected digit"
  in
  let number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    digits ();
    (match peek () with
    | Some '.' ->
        advance ();
        digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' -> (
        advance ();
        skip_ws ();
        match peek () with
        | Some '}' -> advance ()
        | _ ->
            let rec members () =
              skip_ws ();
              string_lit ();
              skip_ws ();
              expect ':';
              value ();
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ()
              | Some '}' -> advance ()
              | _ -> fail "expected ',' or '}'"
            in
            members ())
    | Some '[' -> (
        advance ();
        skip_ws ();
        match peek () with
        | Some ']' -> advance ()
        | _ ->
            let rec elements () =
              value ();
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements ()
              | Some ']' -> advance ()
              | _ -> fail "expected ',' or ']'"
            in
            elements ())
    | Some '"' -> string_lit ()
    | Some 't' -> String.iter expect "true"
    | Some 'f' -> String.iter expect "false"
    | Some 'n' -> String.iter expect "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "expected a value");
    skip_ws ()
  in
  value ();
  if !pos <> n then fail "trailing garbage"

let test_serializers_emit_valid_json () =
  with_enabled (fun () ->
      (* Names and args with every character class the escaper must
         handle: quote, backslash, newline, tab, a raw control byte,
         and multi-byte UTF-8 passed through as-is. *)
      Obs.incr "tricky \"name\" with \\ and \t";
      Obs.observe "hist/π" 3;
      Obs.observe "hist/π" (-2);
      Obs.span "stage/inner"
        ~args:[ ("msg", "quote\" back\\slash\nnewline \001ctl"); ("loop", "liv.7") ]
        nop;
      Obs.span "stage/outer" (fun () -> Obs.span "stage/inner" nop);
      let trace = Obs.trace_json () in
      let metrics = Obs.metrics_json () in
      check_json "trace_json" trace;
      check_json "metrics_json" metrics;
      (* Chrome trace shape: complete events plus lane-name metadata. *)
      let contains sub str =
        let ls = String.length sub and ln = String.length str in
        let rec at i = i + ls <= ln && (String.sub str i ls = sub || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) "trace has complete events" true (contains "\"ph\": \"X\"" trace);
      Alcotest.(check bool) "trace names lanes" true (contains "thread_name" trace);
      Alcotest.(check bool) "metrics has counters" true (contains "\"counters\"" metrics);
      Alcotest.(check bool) "metrics has runtime section" true (contains "\"runtime\"" metrics))

(* --- evaluation cache statistics --------------------------------------------- *)

let test_cache_stats_count_and_reset () =
  Core.Evaluate.clear_cache ();
  let z = Core.Evaluate.cache_stats `Loop in
  Alcotest.(check bool) "loop stats start at zero" true (z.Core.Evaluate.hits = 0 && z.misses = 0);
  let loop = K.daxpy () in
  let c = Config.xwy ~registers:64 ~x:2 ~y:1 () in
  let eval () =
    ignore (Core.Evaluate.loop_cached ~suite_id:"obs-cache" ~index:0 c ~cycle_model:cm ~registers:64 loop)
  in
  eval ();
  eval ();
  eval ();
  let s = Core.Evaluate.cache_stats `Loop in
  Alcotest.(check int) "one loop miss" 1 s.Core.Evaluate.misses;
  Alcotest.(check int) "two loop hits" 2 s.Core.Evaluate.hits;
  let loops = [| loop |] in
  let run () =
    ignore (Core.Evaluate.suite_on ~suite_id:"obs-cache-suite" c ~cycle_model:cm ~registers:64 loops)
  in
  run ();
  run ();
  let s = Core.Evaluate.cache_stats `Suite in
  Alcotest.(check int) "one suite miss" 1 s.Core.Evaluate.misses;
  Alcotest.(check int) "one suite hit" 1 s.Core.Evaluate.hits;
  Core.Evaluate.clear_cache ();
  let s_loop = Core.Evaluate.cache_stats `Loop in
  let s_suite = Core.Evaluate.cache_stats `Suite in
  Alcotest.(check bool) "clear_cache resets both levels" true
    (s_loop.Core.Evaluate.hits = 0 && s_loop.misses = 0 && s_suite.hits = 0 && s_suite.misses = 0)

(* --- WR_JOBS fallback --------------------------------------------------------- *)

let test_bad_wr_jobs_falls_back () =
  let restore = string_of_int (Domain.recommended_domain_count ()) in
  Fun.protect
    ~finally:(fun () -> Unix.putenv "WR_JOBS" restore)
    (fun () ->
      Unix.putenv "WR_JOBS" "3";
      Alcotest.(check int) "valid WR_JOBS honoured" 3 (Pool.default_jobs ());
      Unix.putenv "WR_JOBS" "four";
      (* Warns once on stderr and falls back; the return value is the
         observable contract here. *)
      Alcotest.(check int) "invalid WR_JOBS falls back to core count"
        (Domain.recommended_domain_count ())
        (Pool.default_jobs ());
      Unix.putenv "WR_JOBS" "-4";
      Alcotest.(check int) "negative WR_JOBS falls back too"
        (Domain.recommended_domain_count ())
        (Pool.default_jobs ()))

let () =
  Alcotest.run "obs"
    [
      ( "disabled",
        [ Alcotest.test_case "recording is free and records nothing" `Quick test_disabled_is_free ] );
      ( "recording",
        [ Alcotest.test_case "counters, histograms, spans, reset" `Quick test_record_and_snapshot;
          Alcotest.test_case "clamped histograms keep overflow counts" `Quick
            test_observe_clamped_overflow ] );
      ( "determinism",
        [
          Alcotest.test_case "merged metrics identical at jobs 1 vs 4" `Quick
            test_merged_metrics_pool_size_independent;
        ] );
      ("json", [ Alcotest.test_case "trace and metrics are valid JSON" `Quick test_serializers_emit_valid_json ]);
      ( "cache",
        [ Alcotest.test_case "cache_stats counts and clear_cache resets" `Quick test_cache_stats_count_and_reset ]
      );
      ("env", [ Alcotest.test_case "WR_JOBS fallback on bad values" `Quick test_bad_wr_jobs_falls_back ]);
    ]
