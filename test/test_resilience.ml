(* Resilience layer: supervised evaluation (quarantine + degraded
   fallback), deterministic fault injection, cooperative budgets, and
   the journaled checkpoint/resume path. *)

module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Evaluate = Core.Evaluate
module Journal = Core.Journal
module Store = Core.Store
module Fault = Wr_util.Fault
module Pool = Wr_util.Pool

let cm = Cycle_model.Cycles_4

let cfg = Config.xwy ~registers:64 ~x:2 ~y:2 ()

let loops = Wr_workload.Suite.sample 6

(* Each test starts from a clean slate and leaves one behind: the
   supervision knobs are process-global. *)
let fresh () =
  Fault.configure [];
  Evaluate.set_strict false;
  Evaluate.set_loop_budget_ms None;
  Evaluate.detach_journal ();
  Evaluate.detach_store ();
  Evaluate.reset_quarantine ();
  Evaluate.clear_cache ()

let with_clean_state f = fresh (); Fun.protect ~finally:fresh f

let with_pool jobs f =
  let pool = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let raise_all_spec = { Fault.site = "widen"; prob = 1.0; seed = 0xFA17L; action = Fault.Raise }

let test_injection_degrades_not_kills () =
  with_clean_state @@ fun () ->
  Fault.configure [ raise_all_spec ];
  with_pool 2 @@ fun pool ->
  let agg = Evaluate.suite_on ~pool ~suite_id:"res-degrade" cfg ~cycle_model:cm ~registers:64 loops in
  Alcotest.(check int) "every loop degraded" (Array.length loops) agg.Evaluate.unpipelined;
  Alcotest.(check int) "every point quarantined" (Array.length loops)
    (Evaluate.quarantined_count ());
  List.iter
    (fun (q : Evaluate.quarantine_record) ->
      Alcotest.(check string) "suite named" "res-degrade" q.Evaluate.q_suite;
      Alcotest.(check bool) "reason names the injection" true
        (String.length q.Evaluate.q_reason > 0))
    (Evaluate.quarantined ())

let test_no_context_no_injection () =
  with_clean_state @@ fun () ->
  Fault.configure [ raise_all_spec ];
  (* Direct loop_on runs outside any evaluation context: a stray
     WR_FAULT must not perturb CLI scheduling or unit tests. *)
  let r = Evaluate.loop_on cfg ~cycle_model:cm ~registers:64 loops.(0) in
  Alcotest.(check bool) "pipelined normally" true r.Evaluate.pipelined

let quarantined_indices () =
  List.map (fun (q : Evaluate.quarantine_record) -> q.Evaluate.q_index)
    (Evaluate.quarantined ())

let test_injection_deterministic_across_jobs () =
  with_clean_state @@ fun () ->
  Fault.configure [ { Fault.site = "sched"; prob = 0.4; seed = 0x5EEDL; action = Fault.Raise } ];
  let run jobs =
    Evaluate.clear_cache ();
    Evaluate.reset_quarantine ();
    with_pool jobs @@ fun pool ->
    let agg =
      Evaluate.suite_on ~pool ~suite_id:"res-det" cfg ~cycle_model:cm ~registers:64
        (Wr_workload.Suite.sample 12)
    in
    (agg, quarantined_indices ())
  in
  let agg1, q1 = run 1 in
  let agg4, q4 = run 4 in
  Alcotest.(check bool) "some but not all points faulted" true
    (q1 <> [] && List.length q1 < 12);
  Alcotest.(check (list int)) "same quarantined points at any pool size" q1 q4;
  Alcotest.(check bool) "bit-identical aggregate" true (agg1 = agg4)

let test_strict_mode_fails_fast () =
  with_clean_state @@ fun () ->
  Fault.configure [ raise_all_spec ];
  Evaluate.set_strict true;
  with_pool 2 @@ fun pool ->
  (match
     Evaluate.suite_on ~pool ~suite_id:"res-strict" cfg ~cycle_model:cm ~registers:64 loops
   with
  | _ -> Alcotest.fail "expected Batch_failure"
  | exception Pool.Batch_failure failures ->
      Alcotest.(check bool) "failures carry the injection" true
        (List.exists (fun (_, e, _) -> match e with Fault.Injected _ -> true | _ -> false)
           failures));
  Alcotest.(check int) "nothing quarantined in strict mode" 0 (Evaluate.quarantined_count ())

let test_budget_overrun_degrades () =
  with_clean_state @@ fun () ->
  (* A deterministic overrun: the widen-site fault spins 50ms, then the
     first cooperative check (II-escalation boundary) trips the 1ms
     budget.  No reliance on the scheduler actually being slow. *)
  Fault.configure
    [ { Fault.site = "widen"; prob = 1.0; seed = 1L; action = Fault.Delay_ms 50 } ];
  Evaluate.set_loop_budget_ms (Some 1);
  with_pool 2 @@ fun pool ->
  let small = Wr_workload.Suite.sample 3 in
  let agg = Evaluate.suite_on ~pool ~suite_id:"res-budget" cfg ~cycle_model:cm ~registers:64 small in
  Alcotest.(check int) "every loop degraded" (Array.length small) agg.Evaluate.unpipelined;
  Alcotest.(check int) "every point quarantined" (Array.length small)
    (Evaluate.quarantined_count ())

let read_file path = In_channel.with_open_bin path In_channel.input_all

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let write_file path s = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let with_tmp_journal f =
  let path = Filename.temp_file "wrj-test" ".journal" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_journal_roundtrip () =
  with_clean_state @@ fun () ->
  with_tmp_journal @@ fun path ->
  with_pool 2 @@ fun pool ->
  let replayed0 = Evaluate.attach_journal path in
  Alcotest.(check int) "fresh journal replays nothing" 0 replayed0;
  let agg1 = Evaluate.suite_on ~pool ~suite_id:"res-journal" cfg ~cycle_model:cm ~registers:64 loops in
  Evaluate.detach_journal ();
  let evals = Evaluate.evaluations () in
  (* Cold cache + journal: every point must come back from the replay,
     with the scheduler never invoked. *)
  Evaluate.clear_cache ();
  let replayed = Evaluate.attach_journal path in
  Alcotest.(check int) "all points replayed" (Array.length loops) replayed;
  let agg2 = Evaluate.suite_on ~pool ~suite_id:"res-journal" cfg ~cycle_model:cm ~registers:64 loops in
  Evaluate.detach_journal ();
  Alcotest.(check int) "no re-evaluation after replay" evals (Evaluate.evaluations ());
  Alcotest.(check bool) "bit-identical aggregate from replay" true (agg1 = agg2)

let test_journal_torn_tail () =
  with_clean_state @@ fun () ->
  with_tmp_journal @@ fun path ->
  with_pool 2 @@ fun pool ->
  ignore (Evaluate.attach_journal path);
  let agg1 = Evaluate.suite_on ~pool ~suite_id:"res-torn" cfg ~cycle_model:cm ~registers:64 loops in
  Evaluate.detach_journal ();
  let intact = read_file path in
  (* Simulate a crash mid-write: chop the last record in half.  Replay
     must keep the intact prefix, drop the torn line, and recompute
     exactly the lost point. *)
  write_file path (String.sub intact 0 (String.length intact - 7));
  Evaluate.clear_cache ();
  let replayed = Evaluate.attach_journal path in
  Alcotest.(check int) "one record lost to the torn tail" (Array.length loops - 1) replayed;
  let agg2 = Evaluate.suite_on ~pool ~suite_id:"res-torn" cfg ~cycle_model:cm ~registers:64 loops in
  Evaluate.detach_journal ();
  Alcotest.(check bool) "resumed run matches the uninterrupted one" true (agg1 = agg2);
  (* Garbage appended by a corrupt writer is likewise discarded. *)
  let healthy = read_file path in
  write_file path (healthy ^ "wrj1 not a real record\n\x00\x01partial");
  Evaluate.clear_cache ();
  let replayed = Evaluate.attach_journal path in
  Evaluate.detach_journal ();
  Alcotest.(check int) "garbage tail discarded" (Array.length loops) replayed

let test_quarantined_points_not_journaled () =
  with_clean_state @@ fun () ->
  with_tmp_journal @@ fun path ->
  with_pool 2 @@ fun pool ->
  Fault.configure [ raise_all_spec ];
  ignore (Evaluate.attach_journal path);
  ignore (Evaluate.suite_on ~pool ~suite_id:"res-q-journal" cfg ~cycle_model:cm ~registers:64 loops);
  Evaluate.detach_journal ();
  Alcotest.(check int) "faulted run quarantined everything" (Array.length loops)
    (Evaluate.quarantined_count ());
  (* Resume without the fault: the degraded points were not journaled,
     so they are retried and now succeed. *)
  Fault.configure [];
  Evaluate.reset_quarantine ();
  Evaluate.clear_cache ();
  let replayed = Evaluate.attach_journal path in
  Alcotest.(check int) "degraded points were not checkpointed" 0 replayed;
  let agg = Evaluate.suite_on ~pool ~suite_id:"res-q-journal" cfg ~cycle_model:cm ~registers:64 loops in
  Evaluate.detach_journal ();
  Alcotest.(check int) "retried points now pipeline" 0 agg.Evaluate.unpipelined

let test_journal_second_attach_locked () =
  with_clean_state @@ fun () ->
  with_tmp_journal @@ fun path ->
  ignore (Evaluate.attach_journal path);
  (* A second writer would interleave appends and corrupt the record
     stream silently; the lockfile turns it into a diagnostic.  A raw
     second handle in this process stands in for the second process. *)
  (match Journal.open_for_resume path with
  | exception Journal.Locked msg ->
      Alcotest.(check bool) "diagnostic names the journal" true (contains msg path)
  | t, _ ->
      Journal.close t;
      Alcotest.fail "second attach succeeded");
  Evaluate.detach_journal ();
  (* Released on detach: attaching again works. *)
  ignore (Evaluate.attach_journal path);
  Evaluate.detach_journal ()

(* --- persistent content-addressed store -------------------------------- *)

let with_tmp_dir f =
  let dir = Filename.temp_file "wrs-test" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> try rm dir with Sys_error _ | Unix.Unix_error _ -> ())
    (fun () -> f dir)

let mk_entry i =
  {
    Store.hash = Int64.of_int (0x1000 + i);
    ii = 1 + (i mod 7);
    cycles_bits = Int64.bits_of_float (1.5 *. float_of_int i);
    required_regs = 8 + i;
    spill_stores = i mod 3;
    spill_loads = i mod 2;
    spill_rounds = i mod 2;
    pipelined = i mod 5 <> 0;
    mii = 1 + (i mod 7);
    trip_count = 10 + i;
  }

(* 10 entries at 4 records/segment: seg1 holds 0-3, seg2 holds 4-7,
   seg3 (newest, active) holds 8-9. *)
let seed_store dir =
  let t, _ = Store.open_dir ~segment_records:4 dir in
  for i = 0 to 9 do
    Store.add t (mk_entry i)
  done;
  Store.close t

let seg dir n = Filename.concat dir (Printf.sprintf "seg-%06d.wrs" n)

let check_present t ~present ~absent =
  List.iter
    (fun i ->
      match Store.find t (Int64.of_int (0x1000 + i)) with
      | Some e -> Alcotest.(check bool) (Printf.sprintf "entry %d intact" i) true (e = mk_entry i)
      | None -> Alcotest.failf "entry %d missing" i)
    present;
  List.iter
    (fun i ->
      if Store.find t (Int64.of_int (0x1000 + i)) <> None then
        Alcotest.failf "entry %d should be lost" i)
    absent

let range a b = List.init (b - a + 1) (fun i -> a + i)

let test_store_roundtrip () =
  with_tmp_dir @@ fun dir ->
  seed_store dir;
  let t, r = Store.open_dir ~segment_records:4 dir in
  Alcotest.(check int) "all entries recovered" 10 r.Store.entries;
  Alcotest.(check int) "three segments" 3 r.Store.segments;
  Alcotest.(check int) "nothing quarantined" 0 r.Store.quarantined_segments;
  Alcotest.(check int) "no torn tail" 0 r.Store.truncated_bytes;
  check_present t ~present:(range 0 9) ~absent:[];
  Store.add t (mk_entry 0);
  Alcotest.(check int) "duplicate hash ignored" 0 (Store.appended t);
  Store.close t

let corrupt_checksum path line_no =
  let lines = String.split_on_char '\n' (read_file path) in
  let lines =
    List.mapi
      (fun i l ->
        if i <> line_no - 1 then l
        else
          (* Flip the final checksum character; length is preserved so
             only the self-check can notice. *)
          let last = String.length l - 1 in
          String.sub l 0 last ^ if l.[last] = '0' then "1" else "0")
      lines
  in
  write_file path (String.concat "\n" lines)

let test_store_bit_flip_quarantines_suffix () =
  with_tmp_dir @@ fun dir ->
  seed_store dir;
  (* Damage record 2 of the sealed first segment (line 1 is the version
     header).  Recovery must park the damaged original, keep the intact
     prefix (entry 0), and leave the other segments untouched. *)
  corrupt_checksum (seg dir 1) 3;
  let t, r = Store.open_dir ~segment_records:4 dir in
  Alcotest.(check int) "damaged segment quarantined" 1 r.Store.quarantined_segments;
  Alcotest.(check int) "prefix + later segments survive" 7 r.Store.entries;
  check_present t ~present:(0 :: range 4 9) ~absent:(range 1 3);
  Store.close t;
  Alcotest.(check bool) "damaged original parked as evidence" true
    (Sys.file_exists (seg dir 1 ^ ".quarantined"))

let test_store_torn_tail_truncated () =
  with_tmp_dir @@ fun dir ->
  seed_store dir;
  (* Chop the newest segment mid-record, as a crash during a write
     would.  Recovery truncates the torn bytes and keeps the rest. *)
  let newest = seg dir 3 in
  let bytes = read_file newest in
  write_file newest (String.sub bytes 0 (String.length bytes - 7));
  let t, r = Store.open_dir ~segment_records:4 dir in
  Alcotest.(check bool) "torn bytes truncated" true (r.Store.truncated_bytes > 0);
  Alcotest.(check int) "nothing quarantined" 0 r.Store.quarantined_segments;
  Alcotest.(check int) "only the torn record lost" 9 r.Store.entries;
  check_present t ~present:(range 0 8) ~absent:[ 9 ];
  Store.close t;
  (* The truncation is persistent: a second open is clean. *)
  let t, r = Store.open_dir ~segment_records:4 dir in
  Alcotest.(check int) "second open sees a clean store" 0 r.Store.truncated_bytes;
  Alcotest.(check int) "entries stable" 9 r.Store.entries;
  Store.close t

let test_store_stale_version_header () =
  with_tmp_dir @@ fun dir ->
  seed_store dir;
  (* A segment from some future format version must be quarantined
     whole, not misparsed. *)
  let s2 = read_file (seg dir 2) in
  write_file (seg dir 2)
    ("wrstore/9" ^ String.sub s2 (String.length Store.version_tag) (String.length s2 - String.length Store.version_tag));
  let t, r = Store.open_dir ~segment_records:4 dir in
  Alcotest.(check int) "stale-version segment quarantined" 1 r.Store.quarantined_segments;
  Alcotest.(check int) "other segments survive" 6 r.Store.entries;
  check_present t ~present:(range 0 3 @ range 8 9) ~absent:(range 4 7);
  Store.close t;
  Alcotest.(check bool) "stale original parked" true
    (Sys.file_exists (seg dir 2 ^ ".quarantined"))

let test_store_mixed_corruption () =
  with_tmp_dir @@ fun dir ->
  seed_store dir;
  corrupt_checksum (seg dir 1) 3;
  let s2 = read_file (seg dir 2) in
  write_file (seg dir 2)
    ("wrstore/9" ^ String.sub s2 (String.length Store.version_tag) (String.length s2 - String.length Store.version_tag));
  let t, r = Store.open_dir ~segment_records:4 dir in
  Alcotest.(check int) "both damaged segments quarantined" 2 r.Store.quarantined_segments;
  Alcotest.(check int) "intact prefix and newest survive" 3 r.Store.entries;
  check_present t ~present:(0 :: range 8 9) ~absent:(range 1 7);
  (* The recovered store keeps working: lost points re-append. *)
  Store.add t (mk_entry 1);
  Store.close t;
  let t, r = Store.open_dir ~segment_records:4 dir in
  Alcotest.(check int) "re-appended entry persisted" 4 r.Store.entries;
  check_present t ~present:[ 0; 1; 8; 9 ] ~absent:(range 2 7);
  Store.close t

let test_store_second_open_locked () =
  with_tmp_dir @@ fun dir ->
  let t, _ = Store.open_dir dir in
  (match Store.open_dir dir with
  | exception Store.Locked msg ->
      Alcotest.(check bool) "diagnostic names a pid" true
        (contains msg (string_of_int (Unix.getpid ())))
  | t2, _ ->
      Store.close t2;
      Alcotest.fail "second open succeeded");
  Store.close t;
  let t, _ = Store.open_dir dir in
  Store.close t

let test_store_compact_canonical_bytes () =
  with_tmp_dir @@ fun dir1 ->
  with_tmp_dir @@ fun dir2 ->
  (* Same entry set, opposite arrival orders, different segmentation:
     after compaction the files are byte-identical. *)
  let t1, _ = Store.open_dir ~segment_records:3 dir1 in
  for i = 0 to 19 do Store.add t1 (mk_entry i) done;
  Store.compact t1;
  Store.close t1;
  let t2, _ = Store.open_dir ~segment_records:7 dir2 in
  for i = 19 downto 0 do Store.add t2 (mk_entry i) done;
  Store.compact t2;
  Store.close t2;
  Alcotest.(check bool) "canonical segment bytes identical" true
    (read_file (seg dir1 1) = read_file (seg dir2 1));
  Alcotest.(check bool) "compacted to a single segment" false (Sys.file_exists (seg dir1 2));
  let t, r = Store.open_dir dir1 in
  Alcotest.(check int) "compaction lost nothing" 20 r.Store.entries;
  check_present t ~present:(range 0 19) ~absent:[];
  Store.close t

let test_store_warm_start_zero_evaluations () =
  with_clean_state @@ fun () ->
  with_tmp_dir @@ fun root ->
  let dir = Filename.concat root "store" in
  with_pool 2 @@ fun pool ->
  ignore (Evaluate.attach_store dir);
  let agg1 = Evaluate.suite_on ~pool ~suite_id:"res-store" cfg ~cycle_model:cm ~registers:64 loops in
  Evaluate.detach_store ();
  let evals = Evaluate.evaluations () in
  (* Cold caches, same store: every point must come back from disk with
     the scheduler never invoked. *)
  Evaluate.clear_cache ();
  let r = Evaluate.attach_store dir in
  Alcotest.(check int) "every point persisted" (Array.length loops) r.Store.entries;
  let agg2 = Evaluate.suite_on ~pool ~suite_id:"res-store" cfg ~cycle_model:cm ~registers:64 loops in
  Evaluate.detach_store ();
  Alcotest.(check int) "zero re-evaluations from the store" evals (Evaluate.evaluations ());
  Alcotest.(check bool) "bit-identical aggregate" true (agg1 = agg2);
  let s = Evaluate.cache_stats `Store in
  Alcotest.(check int) "every point a store hit" (Array.length loops) s.Evaluate.hits

let test_store_quarantined_points_not_stored () =
  with_clean_state @@ fun () ->
  with_tmp_dir @@ fun root ->
  let dir = Filename.concat root "store" in
  with_pool 2 @@ fun pool ->
  Fault.configure [ raise_all_spec ];
  ignore (Evaluate.attach_store dir);
  ignore (Evaluate.suite_on ~pool ~suite_id:"res-store-q" cfg ~cycle_model:cm ~registers:64 loops);
  Evaluate.detach_store ();
  Alcotest.(check int) "faulted run quarantined everything" (Array.length loops)
    (Evaluate.quarantined_count ());
  (* Degraded results must not poison the cross-run cache: the store is
     empty, and a healthy rerun computes and persists real results. *)
  Fault.configure [];
  Evaluate.reset_quarantine ();
  Evaluate.clear_cache ();
  let r = Evaluate.attach_store dir in
  Alcotest.(check int) "no degraded result persisted" 0 r.Store.entries;
  let agg = Evaluate.suite_on ~pool ~suite_id:"res-store-q" cfg ~cycle_model:cm ~registers:64 loops in
  Evaluate.detach_store ();
  Alcotest.(check int) "retried points now pipeline" 0 agg.Evaluate.unpipelined;
  let r = Evaluate.attach_store dir in
  Alcotest.(check int) "healthy results persisted" (Array.length loops) r.Store.entries;
  Evaluate.detach_store ()

let test_store_jobs_independent_canonical_bytes () =
  with_clean_state @@ fun () ->
  with_tmp_dir @@ fun root ->
  let run jobs sub =
    Evaluate.clear_cache ();
    let dir = Filename.concat root sub in
    ignore (Evaluate.attach_store dir);
    with_pool jobs (fun pool ->
        ignore
          (Evaluate.suite_on ~pool ~suite_id:"res-store-jobs" cfg ~cycle_model:cm ~registers:64
             (Wr_workload.Suite.sample 12)));
    Evaluate.detach_store ();
    let t, _ = Store.open_dir dir in
    Store.compact t;
    Store.close t;
    read_file (Filename.concat dir "seg-000001.wrs")
  in
  let b1 = run 1 "j1" in
  let b4 = run 4 "j4" in
  Alcotest.(check bool) "jobs=1 and jobs=4 compact to identical bytes" true (b1 = b4)

let test_fault_parse () =
  (match Fault.parse "sched:0.01:0x5EED" with
  | Ok [ { Fault.site = "sched"; prob = 0.01; seed = 0x5EEDL; action = Fault.Raise } ] -> ()
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error e -> Alcotest.fail e);
  (match Fault.parse "widen:1:7:delay=25,spill:0.5:9" with
  | Ok
      [
        { Fault.site = "widen"; prob = 1.0; seed = 7L; action = Fault.Delay_ms 25 };
        { Fault.site = "spill"; prob = 0.5; seed = 9L; action = Fault.Raise };
      ] -> ()
  | Ok _ -> Alcotest.fail "wrong multi-spec parse"
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Fault.parse bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [ "sched"; "sched:2.0:1"; "sched:-0.1:1"; "sched:0.5:notanumber"; "sched:0.5:1:delay=x" ]

let () =
  Alcotest.run "resilience"
    [
      ( "supervision",
        [
          Alcotest.test_case "injection degrades, run completes" `Quick
            test_injection_degrades_not_kills;
          Alcotest.test_case "no context, no injection" `Quick test_no_context_no_injection;
          Alcotest.test_case "deterministic across pool sizes" `Quick
            test_injection_deterministic_across_jobs;
          Alcotest.test_case "strict mode fails fast" `Quick test_strict_mode_fails_fast;
          Alcotest.test_case "budget overrun degrades" `Quick test_budget_overrun_degrades;
        ] );
      ( "journal",
        [
          Alcotest.test_case "roundtrip replay" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail tolerated" `Quick test_journal_torn_tail;
          Alcotest.test_case "quarantined points retried on resume" `Quick
            test_quarantined_points_not_journaled;
          Alcotest.test_case "second attach fails loudly" `Quick
            test_journal_second_attach_locked;
        ] );
      ( "store",
        [
          Alcotest.test_case "roundtrip across segments" `Quick test_store_roundtrip;
          Alcotest.test_case "bit flip quarantines damaged suffix" `Quick
            test_store_bit_flip_quarantines_suffix;
          Alcotest.test_case "torn tail truncated" `Quick test_store_torn_tail_truncated;
          Alcotest.test_case "stale version header quarantined" `Quick
            test_store_stale_version_header;
          Alcotest.test_case "mixed intact and corrupt segments" `Quick
            test_store_mixed_corruption;
          Alcotest.test_case "second open fails loudly" `Quick test_store_second_open_locked;
          Alcotest.test_case "compaction is canonical" `Quick
            test_store_compact_canonical_bytes;
          Alcotest.test_case "warm start re-evaluates nothing" `Quick
            test_store_warm_start_zero_evaluations;
          Alcotest.test_case "quarantined points not persisted" `Quick
            test_store_quarantined_points_not_stored;
          Alcotest.test_case "canonical bytes independent of jobs" `Quick
            test_store_jobs_independent_canonical_bytes;
        ] );
      ("spec", [ Alcotest.test_case "WR_FAULT parsing" `Quick test_fault_parse ]);
    ]
