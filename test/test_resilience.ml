(* Resilience layer: supervised evaluation (quarantine + degraded
   fallback), deterministic fault injection, cooperative budgets, and
   the journaled checkpoint/resume path. *)

module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Evaluate = Core.Evaluate
module Fault = Wr_util.Fault
module Pool = Wr_util.Pool

let cm = Cycle_model.Cycles_4

let cfg = Config.xwy ~registers:64 ~x:2 ~y:2 ()

let loops = Wr_workload.Suite.sample 6

(* Each test starts from a clean slate and leaves one behind: the
   supervision knobs are process-global. *)
let fresh () =
  Fault.configure [];
  Evaluate.set_strict false;
  Evaluate.set_loop_budget_ms None;
  Evaluate.detach_journal ();
  Evaluate.reset_quarantine ();
  Evaluate.clear_cache ()

let with_clean_state f = fresh (); Fun.protect ~finally:fresh f

let with_pool jobs f =
  let pool = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let raise_all_spec = { Fault.site = "widen"; prob = 1.0; seed = 0xFA17L; action = Fault.Raise }

let test_injection_degrades_not_kills () =
  with_clean_state @@ fun () ->
  Fault.configure [ raise_all_spec ];
  with_pool 2 @@ fun pool ->
  let agg = Evaluate.suite_on ~pool ~suite_id:"res-degrade" cfg ~cycle_model:cm ~registers:64 loops in
  Alcotest.(check int) "every loop degraded" (Array.length loops) agg.Evaluate.unpipelined;
  Alcotest.(check int) "every point quarantined" (Array.length loops)
    (Evaluate.quarantined_count ());
  List.iter
    (fun (q : Evaluate.quarantine_record) ->
      Alcotest.(check string) "suite named" "res-degrade" q.Evaluate.q_suite;
      Alcotest.(check bool) "reason names the injection" true
        (String.length q.Evaluate.q_reason > 0))
    (Evaluate.quarantined ())

let test_no_context_no_injection () =
  with_clean_state @@ fun () ->
  Fault.configure [ raise_all_spec ];
  (* Direct loop_on runs outside any evaluation context: a stray
     WR_FAULT must not perturb CLI scheduling or unit tests. *)
  let r = Evaluate.loop_on cfg ~cycle_model:cm ~registers:64 loops.(0) in
  Alcotest.(check bool) "pipelined normally" true r.Evaluate.pipelined

let quarantined_indices () =
  List.map (fun (q : Evaluate.quarantine_record) -> q.Evaluate.q_index)
    (Evaluate.quarantined ())

let test_injection_deterministic_across_jobs () =
  with_clean_state @@ fun () ->
  Fault.configure [ { Fault.site = "sched"; prob = 0.4; seed = 0x5EEDL; action = Fault.Raise } ];
  let run jobs =
    Evaluate.clear_cache ();
    Evaluate.reset_quarantine ();
    with_pool jobs @@ fun pool ->
    let agg =
      Evaluate.suite_on ~pool ~suite_id:"res-det" cfg ~cycle_model:cm ~registers:64
        (Wr_workload.Suite.sample 12)
    in
    (agg, quarantined_indices ())
  in
  let agg1, q1 = run 1 in
  let agg4, q4 = run 4 in
  Alcotest.(check bool) "some but not all points faulted" true
    (q1 <> [] && List.length q1 < 12);
  Alcotest.(check (list int)) "same quarantined points at any pool size" q1 q4;
  Alcotest.(check bool) "bit-identical aggregate" true (agg1 = agg4)

let test_strict_mode_fails_fast () =
  with_clean_state @@ fun () ->
  Fault.configure [ raise_all_spec ];
  Evaluate.set_strict true;
  with_pool 2 @@ fun pool ->
  (match
     Evaluate.suite_on ~pool ~suite_id:"res-strict" cfg ~cycle_model:cm ~registers:64 loops
   with
  | _ -> Alcotest.fail "expected Batch_failure"
  | exception Pool.Batch_failure failures ->
      Alcotest.(check bool) "failures carry the injection" true
        (List.exists (fun (_, e, _) -> match e with Fault.Injected _ -> true | _ -> false)
           failures));
  Alcotest.(check int) "nothing quarantined in strict mode" 0 (Evaluate.quarantined_count ())

let test_budget_overrun_degrades () =
  with_clean_state @@ fun () ->
  (* A deterministic overrun: the widen-site fault spins 50ms, then the
     first cooperative check (II-escalation boundary) trips the 1ms
     budget.  No reliance on the scheduler actually being slow. *)
  Fault.configure
    [ { Fault.site = "widen"; prob = 1.0; seed = 1L; action = Fault.Delay_ms 50 } ];
  Evaluate.set_loop_budget_ms (Some 1);
  with_pool 2 @@ fun pool ->
  let small = Wr_workload.Suite.sample 3 in
  let agg = Evaluate.suite_on ~pool ~suite_id:"res-budget" cfg ~cycle_model:cm ~registers:64 small in
  Alcotest.(check int) "every loop degraded" (Array.length small) agg.Evaluate.unpipelined;
  Alcotest.(check int) "every point quarantined" (Array.length small)
    (Evaluate.quarantined_count ())

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let with_tmp_journal f =
  let path = Filename.temp_file "wrj-test" ".journal" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_journal_roundtrip () =
  with_clean_state @@ fun () ->
  with_tmp_journal @@ fun path ->
  with_pool 2 @@ fun pool ->
  let replayed0 = Evaluate.attach_journal path in
  Alcotest.(check int) "fresh journal replays nothing" 0 replayed0;
  let agg1 = Evaluate.suite_on ~pool ~suite_id:"res-journal" cfg ~cycle_model:cm ~registers:64 loops in
  Evaluate.detach_journal ();
  let evals = Evaluate.evaluations () in
  (* Cold cache + journal: every point must come back from the replay,
     with the scheduler never invoked. *)
  Evaluate.clear_cache ();
  let replayed = Evaluate.attach_journal path in
  Alcotest.(check int) "all points replayed" (Array.length loops) replayed;
  let agg2 = Evaluate.suite_on ~pool ~suite_id:"res-journal" cfg ~cycle_model:cm ~registers:64 loops in
  Evaluate.detach_journal ();
  Alcotest.(check int) "no re-evaluation after replay" evals (Evaluate.evaluations ());
  Alcotest.(check bool) "bit-identical aggregate from replay" true (agg1 = agg2)

let test_journal_torn_tail () =
  with_clean_state @@ fun () ->
  with_tmp_journal @@ fun path ->
  with_pool 2 @@ fun pool ->
  ignore (Evaluate.attach_journal path);
  let agg1 = Evaluate.suite_on ~pool ~suite_id:"res-torn" cfg ~cycle_model:cm ~registers:64 loops in
  Evaluate.detach_journal ();
  let intact = read_file path in
  (* Simulate a crash mid-write: chop the last record in half.  Replay
     must keep the intact prefix, drop the torn line, and recompute
     exactly the lost point. *)
  write_file path (String.sub intact 0 (String.length intact - 7));
  Evaluate.clear_cache ();
  let replayed = Evaluate.attach_journal path in
  Alcotest.(check int) "one record lost to the torn tail" (Array.length loops - 1) replayed;
  let agg2 = Evaluate.suite_on ~pool ~suite_id:"res-torn" cfg ~cycle_model:cm ~registers:64 loops in
  Evaluate.detach_journal ();
  Alcotest.(check bool) "resumed run matches the uninterrupted one" true (agg1 = agg2);
  (* Garbage appended by a corrupt writer is likewise discarded. *)
  let healthy = read_file path in
  write_file path (healthy ^ "wrj1 not a real record\n\x00\x01partial");
  Evaluate.clear_cache ();
  let replayed = Evaluate.attach_journal path in
  Evaluate.detach_journal ();
  Alcotest.(check int) "garbage tail discarded" (Array.length loops) replayed

let test_quarantined_points_not_journaled () =
  with_clean_state @@ fun () ->
  with_tmp_journal @@ fun path ->
  with_pool 2 @@ fun pool ->
  Fault.configure [ raise_all_spec ];
  ignore (Evaluate.attach_journal path);
  ignore (Evaluate.suite_on ~pool ~suite_id:"res-q-journal" cfg ~cycle_model:cm ~registers:64 loops);
  Evaluate.detach_journal ();
  Alcotest.(check int) "faulted run quarantined everything" (Array.length loops)
    (Evaluate.quarantined_count ());
  (* Resume without the fault: the degraded points were not journaled,
     so they are retried and now succeed. *)
  Fault.configure [];
  Evaluate.reset_quarantine ();
  Evaluate.clear_cache ();
  let replayed = Evaluate.attach_journal path in
  Alcotest.(check int) "degraded points were not checkpointed" 0 replayed;
  let agg = Evaluate.suite_on ~pool ~suite_id:"res-q-journal" cfg ~cycle_model:cm ~registers:64 loops in
  Evaluate.detach_journal ();
  Alcotest.(check int) "retried points now pipeline" 0 agg.Evaluate.unpipelined

let test_fault_parse () =
  (match Fault.parse "sched:0.01:0x5EED" with
  | Ok [ { Fault.site = "sched"; prob = 0.01; seed = 0x5EEDL; action = Fault.Raise } ] -> ()
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error e -> Alcotest.fail e);
  (match Fault.parse "widen:1:7:delay=25,spill:0.5:9" with
  | Ok
      [
        { Fault.site = "widen"; prob = 1.0; seed = 7L; action = Fault.Delay_ms 25 };
        { Fault.site = "spill"; prob = 0.5; seed = 9L; action = Fault.Raise };
      ] -> ()
  | Ok _ -> Alcotest.fail "wrong multi-spec parse"
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Fault.parse bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [ "sched"; "sched:2.0:1"; "sched:-0.1:1"; "sched:0.5:notanumber"; "sched:0.5:1:delay=x" ]

let () =
  Alcotest.run "resilience"
    [
      ( "supervision",
        [
          Alcotest.test_case "injection degrades, run completes" `Quick
            test_injection_degrades_not_kills;
          Alcotest.test_case "no context, no injection" `Quick test_no_context_no_injection;
          Alcotest.test_case "deterministic across pool sizes" `Quick
            test_injection_deterministic_across_jobs;
          Alcotest.test_case "strict mode fails fast" `Quick test_strict_mode_fails_fast;
          Alcotest.test_case "budget overrun degrades" `Quick test_budget_overrun_degrades;
        ] );
      ( "journal",
        [
          Alcotest.test_case "roundtrip replay" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail tolerated" `Quick test_journal_torn_tail;
          Alcotest.test_case "quarantined points retried on resume" `Quick
            test_quarantined_points_not_journaled;
        ] );
      ("spec", [ Alcotest.test_case "WR_FAULT parsing" `Quick test_fault_parse ]);
    ]
