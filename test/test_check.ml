(* Tests for wr_check and the scheduler invariants it guards: the Mrt
   against a naive all-slots reference, Schedule.validate's
   over-subscription rejection, the oracles on real and corrupted
   pipeline results, and fuzz determinism. *)

module Ddg = Wr_ir.Ddg
module Loop = Wr_ir.Loop
module Opcode = Wr_ir.Opcode
module Operation = Wr_ir.Operation
module Memref = Wr_ir.Memref
module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Resource = Wr_machine.Resource
module Mrt = Wr_sched.Mrt
module Modulo = Wr_sched.Modulo
module Schedule = Wr_sched.Schedule
module Lifetime = Wr_regalloc.Lifetime
module Alloc = Wr_regalloc.Alloc
module Spill = Wr_regalloc.Spill
module Oracle = Wr_check.Oracle
module Fuzz = Wr_check.Fuzz
module K = Wr_workload.Kernels
module Suite = Wr_workload.Suite
module Rng = Wr_util.Rng

let cm = Cycle_model.Cycles_4

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let sched loop config =
  let r = Resource.of_config config in
  (Modulo.run r ~cycle_model:cm loop.Loop.ddg).Modulo.schedule

(* --- Mrt vs a naive all-slots reference ----------------------------------- *)

(* The reference model: one plain int array per resource class, every
   reservation walked slot by slot — exactly what Mrt's windowed
   representation is optimized away from. *)
let classes = [| Opcode.Bus; Opcode.Fpu |]

let class_index = function Opcode.Bus -> 0 | Opcode.Fpu -> 1

let naive_can (naive : int array array) resource ~ii cls ~time ~occupancy =
  (* Walk the reservation cycle by cycle into a scratch copy: an
     occupancy beyond II lands on the same slot more than once and each
     landing charges a unit (interleaved iterations in steady state). *)
  let row = Array.copy naive.(class_index cls) in
  let cap = Resource.slots resource cls in
  let ok = ref true in
  for k = 0 to occupancy - 1 do
    let slot = ((time + k) mod ii + ii) mod ii in
    row.(slot) <- row.(slot) + 1;
    if row.(slot) > cap then ok := false
  done;
  !ok

let naive_bump (naive : int array array) ~ii cls ~time ~occupancy delta =
  let row = naive.(class_index cls) in
  for k = 0 to occupancy - 1 do
    let slot = ((time + k) mod ii + ii) mod ii in
    row.(slot) <- row.(slot) + delta
  done

let check_usage_matches t naive ~ii =
  Array.iter
    (fun cls ->
      for slot = 0 to ii - 1 do
        if Mrt.usage t cls ~slot <> naive.(class_index cls).(slot) then
          QCheck.Test.fail_reportf "usage mismatch: class %d slot %d: mrt %d, naive %d"
            (class_index cls) slot (Mrt.usage t cls ~slot)
            naive.(class_index cls).(slot)
      done)
    classes

let gen_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 5000)

let prop_mrt_matches_naive =
  QCheck.Test.make ~name:"Mrt matches naive all-slots reference" ~count:120 gen_seed
    (fun seed ->
      let rng = Rng.create ~seed:(Int64.of_int (seed + 77)) in
      let ii = 1 + Rng.int rng 12 in
      let resource = Resource.of_config (Config.xwy ~x:(1 + Rng.int rng 4) ~y:1 ()) in
      let t = Mrt.create ~ii resource in
      let naive = [| Array.make ii 0; Array.make ii 0 |] in
      let placed = ref [] in
      for _ = 0 to 39 do
        if Rng.bernoulli rng 0.25 && !placed <> [] then begin
          (* Remove a random prior reservation (one instance only —
             duplicates may legitimately coexist). *)
          let cls, time, occupancy = Rng.choose rng (Array.of_list !placed) in
          let dropped = ref false in
          placed :=
            List.filter
              (fun x ->
                if (not !dropped) && x = (cls, time, occupancy) then begin
                  dropped := true;
                  false
                end
                else true)
              !placed;
          Mrt.remove t cls ~time ~occupancy;
          naive_bump naive ~ii cls ~time ~occupancy (-1)
        end
        else begin
          let cls = Rng.choose rng classes in
          let time = Rng.int rng (3 * ii) in
          (* Occupancies beyond II exercise the wraparound saturation
             path (an unpipelined op longer than the kernel). *)
          let occupancy = 1 + Rng.int rng (2 * ii) in
          let expected = naive_can naive resource ~ii cls ~time ~occupancy in
          if Mrt.can_place t cls ~time ~occupancy <> expected then
            QCheck.Test.fail_reportf "can_place disagrees (ii %d, time %d, occ %d): naive %b"
              ii time occupancy expected;
          if expected then begin
            Mrt.place t cls ~time ~occupancy;
            naive_bump naive ~ii cls ~time ~occupancy 1;
            placed := (cls, time, occupancy) :: !placed
          end
          else begin
            (* A rejected reservation must raise if forced, and leave
               the table untouched. *)
            (match Mrt.place t cls ~time ~occupancy with
            | () -> QCheck.Test.fail_reportf "place succeeded where can_place said no"
            | exception Invalid_argument _ -> ());
            check_usage_matches t naive ~ii
          end
        end;
        check_usage_matches t naive ~ii
      done;
      true)

let prop_mrt_reset_clears =
  QCheck.Test.make ~name:"Mrt reset clears to empty at the new II" ~count:60 gen_seed
    (fun seed ->
      let rng = Rng.create ~seed:(Int64.of_int (seed + 13)) in
      let resource = Resource.of_config (Config.xwy ~x:2 ~y:1 ()) in
      let ii0 = 1 + Rng.int rng 8 in
      let t = Mrt.create ~ii:ii0 resource in
      for _ = 0 to 5 do
        let cls = Rng.choose rng classes in
        let time = Rng.int rng (2 * ii0) in
        let occupancy = 1 + Rng.int rng ii0 in
        if Mrt.can_place t cls ~time ~occupancy then Mrt.place t cls ~time ~occupancy
      done;
      let ii1 = 1 + Rng.int rng 12 in
      Mrt.reset t ~ii:ii1;
      Mrt.ii t = ii1
      && Array.for_all
           (fun cls ->
             let ok = ref true in
             for slot = 0 to ii1 - 1 do
               if Mrt.usage t cls ~slot <> 0 then ok := false
             done;
             !ok)
           classes)

(* --- Schedule.validate over-subscription rejection ------------------------- *)

let test_validate_rejects_oversubscribed () =
  (* Two independent loads forced into the same kernel slot of a 1-bus
     machine: validate must reject with the over-subscription message
     instead of tripping Mrt.place's assertion. *)
  let mem offset = Memref.make ~array_id:0 ~stride:1 ~offset in
  let ops =
    [|
      Operation.make ~id:0 ~opcode:Opcode.Load ~def:0 ~mem:(mem 0) ();
      Operation.make ~id:1 ~opcode:Opcode.Load ~def:1 ~mem:(mem 1) ();
    |]
  in
  let g = Ddg.create ~num_vregs:2 ~ops ~edges:[] in
  let resource = Resource.of_config (Config.xwy ~x:1 ~y:1 ()) in
  let s = Schedule.make ~ii:1 ~times:[| 0; 0 |] ~cycle_model:cm in
  (match Schedule.validate g resource s with
  | Ok () -> Alcotest.fail "expected over-subscription to be rejected"
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "message names the conflict: %s" msg)
        true
        (contains msg "resource over-subscribed"));
  (* The oracle's independent reservation walk agrees. *)
  let violations = Oracle.check_schedule g resource s in
  Alcotest.(check bool) "oracle flags it too" true
    (List.exists (fun v -> v.Oracle.oracle = "schedule.resource") violations)

let test_validate_accepts_staggered () =
  (* Same graph, conflict resolved by staggering: both checks go green. *)
  let mem offset = Memref.make ~array_id:0 ~stride:1 ~offset in
  let ops =
    [|
      Operation.make ~id:0 ~opcode:Opcode.Load ~def:0 ~mem:(mem 0) ();
      Operation.make ~id:1 ~opcode:Opcode.Load ~def:1 ~mem:(mem 1) ();
    |]
  in
  let g = Ddg.create ~num_vregs:2 ~ops ~edges:[] in
  let resource = Resource.of_config (Config.xwy ~x:1 ~y:1 ()) in
  let s = Schedule.make ~ii:2 ~times:[| 0; 1 |] ~cycle_model:cm in
  Alcotest.(check bool) "validate ok" true (Result.is_ok (Schedule.validate g resource s));
  Alcotest.(check int) "oracle clean" 0 (List.length (Oracle.check_schedule g resource s))

(* --- full-suite validate sweep --------------------------------------------- *)

let sweep_config config =
  let resource = Resource.of_config config in
  Array.iter
    (fun loop ->
      let prepared, _ = Wr_widen.Transform.widen loop ~width:config.Config.width in
      let s = (Modulo.run resource ~cycle_model:cm prepared.Loop.ddg).Modulo.schedule in
      (match Schedule.validate prepared.Loop.ddg resource s with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s at %s: %s" loop.Loop.name (Config.label config) msg);
      match Oracle.check_schedule prepared.Loop.ddg resource s with
      | [] -> ()
      | vs ->
          Alcotest.failf "%s at %s: %s" loop.Loop.name (Config.label config)
            (Oracle.to_string vs))
    (Suite.sample 120)

let test_sweep_4w2 () = sweep_config (Config.xwy ~x:4 ~y:2 ())
let test_sweep_8w1 () = sweep_config (Config.xwy ~x:8 ~y:1 ())

(* --- oracles on real pipeline results -------------------------------------- *)

let test_oracle_schedule_clean () =
  List.iter
    (fun (name, loop) ->
      let resource = Resource.of_config (Config.xwy ~x:2 ~y:1 ()) in
      let s = (Modulo.run resource ~cycle_model:cm loop.Loop.ddg).Modulo.schedule in
      match Oracle.check_schedule loop.Loop.ddg resource s with
      | [] -> ()
      | vs -> Alcotest.failf "%s: %s" name (Oracle.to_string vs))
    (K.all ())

let test_oracle_schedule_catches_corruption () =
  (* Collapse a legal schedule to all-zero times: dependences with a
     real delay break, and so does any resource class with more ops
     than slots. *)
  let loop = K.state_equation () in
  let resource = Resource.of_config (Config.xwy ~x:2 ~y:1 ()) in
  let s = sched loop (Config.xwy ~x:2 ~y:1 ()) in
  let corrupt =
    Schedule.make ~ii:s.Schedule.ii
      ~times:(Array.map (fun _ -> 0) s.Schedule.times)
      ~cycle_model:cm
  in
  let vs = Oracle.check_schedule loop.Loop.ddg resource corrupt in
  Alcotest.(check bool) "violations found" true (vs <> []);
  Alcotest.(check bool) "a dependence violation among them" true
    (List.exists (fun v -> v.Oracle.oracle = "schedule.dependence") vs)

let test_oracle_alloc_clean_and_file_check () =
  let loop = K.banded_matvec () in
  let s = sched loop (Config.xwy ~x:2 ~y:1 ()) in
  let lts = Lifetime.of_schedule loop.Loop.ddg s in
  let a = Alloc.allocate ~ii:s.Schedule.ii lts in
  Alcotest.(check int) "clean on the real allocation" 0
    (List.length (Oracle.check_alloc loop.Loop.ddg s a ~available:(Some a.Alloc.required)));
  (* A file one register too small must trip the fit oracle. *)
  let vs = Oracle.check_alloc loop.Loop.ddg s a ~available:(Some (a.Alloc.required - 1)) in
  Alcotest.(check bool) "too-small file flagged" true
    (List.exists
       (fun v -> v.Oracle.oracle = "alloc.file" || v.Oracle.oracle = "alloc.maxlives")
       vs)

let test_oracle_widening_clean () =
  List.iter
    (fun (name, loop) ->
      let widened, _ = Wr_widen.Transform.widen loop ~width:2 in
      match Oracle.check_widening ~original:loop ~widened ~width:2 () with
      | [] -> ()
      | vs -> Alcotest.failf "%s: %s" name (Oracle.to_string vs))
    [ ("daxpy", K.daxpy ()); ("triad", K.stream_triad ()); ("horner", K.horner ()) ]

let test_oracle_widening_catches_mismatch () =
  (* Handing the oracle a widening of a different loop must fail: the
     census, the trip count or the interpreter comparison gives it away. *)
  let original = K.daxpy () in
  let widened, _ = Wr_widen.Transform.widen (K.vector_add ()) ~width:2 in
  Alcotest.(check bool) "mismatched pair flagged" true
    (Oracle.check_widening ~original ~widened ~width:2 () <> [])

let test_oracle_spill_clean () =
  let loop = K.banded_matvec () in
  let g = loop.Loop.ddg in
  let r = Option.get (Ddg.op g 0).Operation.def in
  let res = Spill.apply g ~vregs:[ r ] in
  Alcotest.(check int) "spill preserves semantics" 0
    (List.length (Oracle.check_spill ~pre:loop ~post:res.Spill.graph ()))

let test_check_point_kernels () =
  (* End-to-end: every named kernel at a mid-grid point with a small
     file verifies cleanly, whatever path (spill/escalate) it takes. *)
  let config = Config.xwy ~registers:32 ~x:4 ~y:2 () in
  List.iter
    (fun (name, loop) ->
      let report = Oracle.check_point config ~cycle_model:cm ~registers:32 loop in
      match report.Oracle.violations with
      | [] -> ()
      | vs -> Alcotest.failf "%s: %s" name (Oracle.to_string vs))
    (K.all ())

(* --- fuzz harness ----------------------------------------------------------- *)

let test_fuzz_clean_and_deterministic () =
  let run () = Fuzz.run ~seed:0x5EEDL ~cases:60 () in
  let a = run () in
  let b = run () in
  Alcotest.(check string) "same seed, same summary" (Fuzz.summary a) (Fuzz.summary b);
  Alcotest.(check int) "cases" 60 a.Fuzz.cases;
  Alcotest.(check int) "no oracle failures" 0 (List.length a.Fuzz.failures);
  Alcotest.(check int) "every case accounted for" 60 (a.Fuzz.schedulable + a.Fuzz.unschedulable)

let test_fuzz_reproducer_renders () =
  (* A synthetic failure record must render a parseable reproducer even
     though nothing actually failed. *)
  let loop = K.daxpy () in
  let f =
    {
      Fuzz.case = 7;
      loop;
      config = Config.xwy ~registers:32 ~x:2 ~y:2 ();
      cycle_model = cm;
      registers = 32;
      policy = Wr_regalloc.Driver.Spill_only;
      violations = [ { Oracle.oracle = "schedule.dependence"; detail = "synthetic" } ];
    }
  in
  let text = Fuzz.reproducer f in
  Alcotest.(check bool) "names the case" true (contains text "fuzz case 7");
  Alcotest.(check bool) "carries the replay line" true (contains text "widening-cli check");
  Alcotest.(check bool) "carries the violation" true (contains text "schedule.dependence")

let () =
  Alcotest.run "wr_check"
    [
      ( "mrt",
        List.map QCheck_alcotest.to_alcotest [ prop_mrt_matches_naive; prop_mrt_reset_clears ]
      );
      ( "validate",
        [
          Alcotest.test_case "rejects over-subscription" `Quick
            test_validate_rejects_oversubscribed;
          Alcotest.test_case "accepts staggered" `Quick test_validate_accepts_staggered;
          Alcotest.test_case "sample-120 sweep at 4w2" `Slow test_sweep_4w2;
          Alcotest.test_case "sample-120 sweep at 8w1" `Slow test_sweep_8w1;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "schedule clean on kernels" `Quick test_oracle_schedule_clean;
          Alcotest.test_case "schedule catches corruption" `Quick
            test_oracle_schedule_catches_corruption;
          Alcotest.test_case "alloc clean + file check" `Quick
            test_oracle_alloc_clean_and_file_check;
          Alcotest.test_case "widening clean" `Quick test_oracle_widening_clean;
          Alcotest.test_case "widening catches mismatch" `Quick
            test_oracle_widening_catches_mismatch;
          Alcotest.test_case "spill semantics clean" `Quick test_oracle_spill_clean;
          Alcotest.test_case "check_point on kernels" `Slow test_check_point_kernels;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "clean and deterministic" `Slow test_fuzz_clean_and_deterministic;
          Alcotest.test_case "reproducer renders" `Quick test_fuzz_reproducer_renders;
        ] );
    ]
